// Benchmarks: one testing.B benchmark per paper table/figure. Each runs the
// corresponding experiment at a reduced, laptop-friendly scale and reports
// the headline simulated metrics via b.ReportMetric (virtual microseconds,
// overlap percentages, normalized ratios). cmd/offloadbench regenerates the
// full tables; EXPERIMENTS.md records paper-vs-measured at figure scale.
package repro_test

import (
	"testing"

	"repro/internal/baseline"
	"repro/internal/bench"
	"repro/internal/fft"
	"repro/internal/figures"
	"repro/internal/hpl"
	"repro/internal/stencil"
)

func BenchmarkFig02RDMALatency(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := bench.MeasureRDMALatency([]int{8, 2048}, 10)
		b.ReportMetric(rows[0].HostHost.Micros(), "host-us")
		b.ReportMetric(rows[0].HostDPU.Micros(), "dpu-us")
	}
}

func BenchmarkFig03RDMABandwidth(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := bench.MeasureRDMABandwidth([]int{4096, 4 << 20}, 64, 2)
		b.ReportMetric(rows[0].Normalized, "small-msg-norm")
		b.ReportMetric(rows[1].Normalized, "large-msg-norm")
	}
}

func BenchmarkFig04StagingPingpong(b *testing.B) {
	staging := baseline.StagingNoWarmupConfig()
	for i := 0; i < b.N; i++ {
		host := bench.MeasurePingpongNB(bench.Options{Nodes: 2, PPN: 1, Scheme: baseline.NameIntelMPI}, 256<<10, 2, 5)
		staged := bench.MeasurePingpongNB(bench.Options{Nodes: 2, PPN: 1, Scheme: baseline.NameBluesMPI, Core: &staging}, 256<<10, 2, 5)
		b.ReportMetric(host.Micros(), "host-us")
		b.ReportMetric(staged.Micros(), "staged-us")
		b.ReportMetric(float64(staged)/float64(host), "degradation")
	}
}

func BenchmarkFig05Registration(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := bench.MeasureRegistration([]int{64 << 10})
		b.ReportMetric(rows[0].HostReg.Micros(), "hostreg-us")
		b.ReportMetric(rows[0].CrossReg.Micros(), "crossreg-us")
	}
}

func BenchmarkFig11Stencil(b *testing.B) {
	for i := 0; i < b.N; i++ {
		host := stencil.Run(bench.Options{Nodes: 4, PPN: 4, Scheme: baseline.NameIntelMPI}, 512, 1, 2)
		prop := stencil.Run(bench.Options{Nodes: 4, PPN: 4, Scheme: baseline.NameProposed}, 512, 1, 2)
		b.ReportMetric(float64(prop.Overall)/float64(host.Overall), "norm-time")
	}
}

func BenchmarkFig12StencilOverlap(b *testing.B) {
	for i := 0; i < b.N; i++ {
		prop := stencil.Run(bench.Options{Nodes: 4, PPN: 4, Scheme: baseline.NameProposed}, 512, 1, 2)
		b.ReportMetric(prop.Overlap, "overlap-pct")
	}
}

func BenchmarkFig13Ialltoall(b *testing.B) {
	for i := 0; i < b.N; i++ {
		var overall [3]float64
		for j, scheme := range []string{baseline.NameBluesMPI, baseline.NameProposed, baseline.NameIntelMPI} {
			r := bench.MeasureIalltoall(bench.Options{Nodes: 4, PPN: 4, Scheme: scheme}, 64<<10, 4, 2)
			overall[j] = r.Overall.Micros()
		}
		b.ReportMetric(overall[0], "bluesmpi-us")
		b.ReportMetric(overall[1], "proposed-us")
		b.ReportMetric(overall[2], "intelmpi-us")
	}
}

func BenchmarkFig14IalltoallOverlap(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := bench.MeasureIalltoall(bench.Options{Nodes: 4, PPN: 4, Scheme: baseline.NameProposed}, 64<<10, 4, 2)
		b.ReportMetric(r.Overlap, "overlap-pct")
	}
}

func BenchmarkFig15SimpleVsGroup(b *testing.B) {
	for i := 0; i < b.N; i++ {
		opt := bench.Options{Nodes: 4, PPN: 8, Scheme: baseline.NameProposed}
		simple := bench.MeasureScatterDest(opt, 16<<10, 2, 2, true)
		group := bench.MeasureScatterDest(opt, 16<<10, 2, 2, false)
		b.ReportMetric(simple.Overall.Micros(), "simple-us")
		b.ReportMetric(group.Overall.Micros(), "group-us")
	}
}

func BenchmarkFig16P3DFFT(b *testing.B) {
	for i := 0; i < b.N; i++ {
		var totals [3]float64
		for j, scheme := range []string{baseline.NameBluesMPI, baseline.NameProposed, baseline.NameIntelMPI} {
			r := fft.RunBench(bench.Options{Nodes: 4, PPN: 4, Scheme: scheme}, 64, 64, 128, 0, 2)
			totals[j] = float64(r.Total)
		}
		b.ReportMetric(totals[0]/totals[2], "bluesmpi-norm")
		b.ReportMetric(totals[1]/totals[2], "proposed-norm")
	}
}

func BenchmarkFig16cProfile(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := fft.RunBench(bench.Options{Nodes: 4, PPN: 4, Scheme: baseline.NameProposed}, 64, 64, 128, 0, 2)
		b.ReportMetric(r.Compute.Micros(), "compute-us")
		b.ReportMetric(r.MPITime.Micros(), "mpi-us")
	}
}

func BenchmarkFig17HPL(b *testing.B) {
	const n, nb = 4096, 256
	for i := 0; i < b.N; i++ {
		var totals []float64
		for _, v := range figures.HPLVariants {
			par := hpl.DefaultParams(n, nb, v.Variant)
			r := hpl.Run(bench.Options{Nodes: 4, PPN: 4, Scheme: v.Scheme}, par)
			totals = append(totals, float64(r.Total))
		}
		b.ReportMetric(totals[1]/totals[0], "ibcast-norm")
		b.ReportMetric(totals[2]/totals[0], "bluesmpi-norm")
		b.ReportMetric(totals[3]/totals[0], "proposed-norm")
	}
}

// Ablation benchmarks for the design choices DESIGN.md calls out.

func BenchmarkAblationRegCache(b *testing.B) {
	on := baseline.ProposedConfig()
	off := baseline.ProposedConfig()
	off.RegCaches = false
	for i := 0; i < b.N; i++ {
		a := bench.MeasureScatterDest(bench.Options{Nodes: 2, PPN: 4, Scheme: baseline.NameProposed, Core: &on}, 64<<10, 2, 2, true)
		c := bench.MeasureScatterDest(bench.Options{Nodes: 2, PPN: 4, Scheme: baseline.NameProposed, Core: &off}, 64<<10, 2, 2, true)
		b.ReportMetric(a.Overall.Micros(), "cached-us")
		b.ReportMetric(c.Overall.Micros(), "uncached-us")
	}
}

func BenchmarkAblationGroupCache(b *testing.B) {
	on := baseline.ProposedConfig()
	off := baseline.ProposedConfig()
	off.GroupCache = false
	for i := 0; i < b.N; i++ {
		a := bench.MeasureScatterDest(bench.Options{Nodes: 2, PPN: 4, Scheme: baseline.NameProposed, Core: &on}, 16<<10, 2, 2, false)
		c := bench.MeasureScatterDest(bench.Options{Nodes: 2, PPN: 4, Scheme: baseline.NameProposed, Core: &off}, 16<<10, 2, 2, false)
		b.ReportMetric(a.Overall.Micros(), "cached-us")
		b.ReportMetric(c.Overall.Micros(), "uncached-us")
	}
}

func BenchmarkAblationMechanism(b *testing.B) {
	stg := baseline.StagingNoWarmupConfig()
	for i := 0; i < b.N; i++ {
		gvmi := bench.MeasureIalltoall(bench.Options{Nodes: 2, PPN: 4, Scheme: baseline.NameProposed}, 64<<10, 2, 2)
		staged := bench.MeasureIalltoall(bench.Options{Nodes: 2, PPN: 4, Scheme: baseline.NameBluesMPI, Core: &stg}, 64<<10, 2, 2)
		b.ReportMetric(gvmi.PureComm.Micros(), "gvmi-us")
		b.ReportMetric(staged.PureComm.Micros(), "staging-us")
	}
}

func BenchmarkAblationProxies(b *testing.B) {
	for _, n := range []int{1, 4, 8} {
		n := n
		b.Run(bench.SizeLabel(n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				r := bench.MeasureIalltoall(bench.Options{
					Nodes: 2, PPN: 8, Scheme: baseline.NameProposed, ProxiesPerDPU: n,
				}, 64<<10, 2, 2)
				b.ReportMetric(r.Overall.Micros(), "overall-us")
			}
		})
	}
}

// Substrate micro-benchmarks: raw simulator throughput (real time, not
// virtual), useful when tuning the DES kernel.

func BenchmarkSimKernelEventThroughput(b *testing.B) {
	k := newBusyKernel(b.N)
	b.ReportAllocs()
	b.ResetTimer()
	k.Run()
}

func BenchmarkSimProcContextSwitch(b *testing.B) {
	k := newPingPongProcs(b.N)
	b.ReportAllocs()
	b.ResetTimer()
	k.Run()
}
