package repro_test

import "repro/internal/sim"

// newBusyKernel schedules n chained events.
func newBusyKernel(n int) *sim.Kernel {
	k := sim.NewKernel()
	var fire func()
	left := n
	fire = func() {
		left--
		if left > 0 {
			k.At(1, fire)
		}
	}
	k.At(1, fire)
	return k
}

// newPingPongProcs bounces control between two processes n times.
func newPingPongProcs(n int) *sim.Kernel {
	k := sim.NewKernel()
	var c1, c2 sim.Cond
	turn := 0
	k.Spawn("a", func(p *sim.Proc) {
		for i := 0; i < n; i++ {
			for turn%2 != 0 {
				c1.Wait(p)
			}
			turn++
			c2.Broadcast()
		}
	})
	k.Spawn("b", func(p *sim.Proc) {
		for i := 0; i < n; i++ {
			for turn%2 != 1 {
				c2.Wait(p)
			}
			turn++
			c1.Broadcast()
		}
	})
	return k
}
