// Alltoall runs the OMB-style MPI_Ialltoall overlap benchmark across the
// three library schemes (IntelMPI-like host, BluesMPI-like staging offload,
// and the proposed cross-GVMI group offload) and prints an OMB-shaped
// table: pure communication latency, overall time with compute, overlap %.
package main

import (
	"flag"
	"fmt"

	"repro/internal/baseline"
	"repro/internal/bench"
)

func main() {
	nodes := flag.Int("nodes", 4, "nodes")
	ppn := flag.Int("ppn", 8, "processes per node")
	iters := flag.Int("iters", 2, "iterations")
	flag.Parse()

	fmt.Printf("MPI_Ialltoall overlap, %d nodes x %d PPN (OMB methodology)\n", *nodes, *ppn)
	fmt.Printf("%-8s  %-10s  %12s  %12s  %9s\n", "scheme", "size", "pure (us)", "overall (us)", "overlap")
	for _, size := range []int{8 << 10, 64 << 10, 256 << 10} {
		for _, scheme := range []string{baseline.NameIntelMPI, baseline.NameBluesMPI, baseline.NameProposed} {
			res := bench.MeasureIalltoall(bench.Options{
				Nodes: *nodes, PPN: *ppn, Scheme: scheme,
			}, size, 5, *iters)
			fmt.Printf("%-8s  %-10s  %12.2f  %12.2f  %8.1f%%\n",
				scheme, bench.SizeLabel(size), res.PureComm.Micros(), res.Overall.Micros(), res.Overlap)
		}
		fmt.Println()
	}
}
