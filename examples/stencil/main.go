// Stencil runs the 3D near-neighbour halo-exchange benchmark (Section
// VIII-A) with host MPI versus the Basic-primitive offload and prints the
// overall time and achieved overlap for a sweep of problem sizes.
package main

import (
	"flag"
	"fmt"

	"repro/internal/baseline"
	"repro/internal/bench"
	"repro/internal/stencil"
)

func main() {
	nodes := flag.Int("nodes", 4, "nodes")
	ppn := flag.Int("ppn", 8, "processes per node")
	iters := flag.Int("iters", 3, "iterations")
	flag.Parse()

	g := stencil.Decompose3(*nodes * *ppn)
	fmt.Printf("3D stencil, %d nodes x %d PPN, process grid %dx%dx%d\n",
		*nodes, *ppn, g.PX, g.PY, g.PZ)
	fmt.Printf("%-10s  %-10s  %12s  %12s  %9s\n", "problem", "scheme", "pure (us)", "overall (us)", "overlap")
	for _, n := range []int{256, 512, 1024} {
		for _, scheme := range []string{baseline.NameIntelMPI, baseline.NameProposed} {
			res := stencil.Run(bench.Options{Nodes: *nodes, PPN: *ppn, Scheme: scheme}, n, 1, *iters)
			fmt.Printf("%-10s  %-10s  %12.2f  %12.2f  %8.1f%%\n",
				fmt.Sprintf("%d^3", n), scheme, res.Pure.Micros(), res.Overall.Micros(), res.Overlap)
		}
		fmt.Println()
	}
}
