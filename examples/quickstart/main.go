// Quickstart: build a 2-node simulated BlueField cluster, offload a
// point-to-point transfer to the DPU with the Basic primitives, and show
// that it completes while the host computes.
//
// This walkthrough gives one job the whole cluster for clarity; the
// simulator is not single-job — internal/tenant runs N concurrent jobs
// on a shared fabric with per-tenant proxy fairness (try
// `go run ./cmd/patternsim -preset ring -np 4 -ppn 2 -tenants 2`).
package main

import (
	"fmt"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/sim"
)

func main() {
	// A 2-node cluster, one host process per node, 8 proxies per DPU.
	ccfg := cluster.DefaultConfig(2, 1)
	cl := cluster.New(ccfg)

	// Attachment points for the two host processes.
	sites := []*cluster.Site{
		cl.NewHostSite(0, "rank0"),
		cl.NewHostSite(1, "rank1"),
	}

	// The offload framework: cross-GVMI mechanism, caches on.
	fw := core.New(cl, core.DefaultConfig(), sites)
	fw.Start()

	const size = 1 << 20 // 1 MiB
	const compute = 2 * sim.Millisecond

	// Rank 0: Send_Offload, then compute, then Wait.
	cl.K.Spawn("rank0", func(p *sim.Proc) {
		h := fw.Host(0)
		h.Bind(p)
		buf := sites[0].Space.Alloc(size, true)
		for i := range buf.Bytes() {
			buf.Bytes()[i] = byte(i)
		}
		req := h.SendOffload(buf.Addr(), size, 1, 0)
		p.AdvanceBusy(compute) // the DPU progresses the transfer meanwhile
		t0 := p.Now()
		h.Wait(req)
		fmt.Printf("rank0: Wait returned after %v of blocking (transfer overlapped %v of compute)\n",
			p.Now()-t0, compute)
	})

	// Rank 1: Recv_Offload with the same overlap structure.
	cl.K.Spawn("rank1", func(p *sim.Proc) {
		h := fw.Host(1)
		h.Bind(p)
		buf := sites[1].Space.Alloc(size, true)
		req := h.RecvOffload(buf.Addr(), size, 0, 0)
		p.AdvanceBusy(compute)
		t0 := p.Now()
		h.Wait(req)
		fmt.Printf("rank1: Wait blocked %v; first/last payload bytes: %d %d\n",
			p.Now()-t0, buf.Bytes()[0], buf.Bytes()[size-1])
	})

	end := cl.K.Run()
	fmt.Printf("simulation finished at t=%v (virtual)\n", end)
}
