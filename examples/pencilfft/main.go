// Pencilfft runs the 2D pencil-decomposed 3D FFT (what real P3DFFT does)
// on a P1 x P2 process grid, comparing host-MPI transposes against
// transposes offloaded to the DPU proxies through communicator-scoped
// group all-to-alls. The transform is computed with real complex128
// arithmetic and verified by a forward+backward round trip.
package main

import (
	"flag"
	"fmt"
	"math/cmplx"
	"math/rand"

	"repro/internal/baseline"
	"repro/internal/bench"
	"repro/internal/coll"
	"repro/internal/fft"
	"repro/internal/mem"
	"repro/internal/mpi"
	"repro/internal/sim"
)

func main() {
	p1 := flag.Int("p1", 2, "process-grid rows")
	p2 := flag.Int("p2", 2, "process-grid cols")
	n := flag.Int("n", 16, "cube edge (power of two)")
	flag.Parse()

	for _, offload := range []bool{false, true} {
		label := "host transposes    "
		scheme := baseline.NameIntelMPI
		if offload {
			label = "offloaded transposes"
			scheme = baseline.NameProposed
		}
		np := *p1 * *p2
		e := bench.Build(bench.Options{Nodes: np / 2, PPN: 2, Scheme: scheme, Backed: true})
		var worst float64
		var elapsed sim.Time
		e.Launch(func(r *mpi.Rank, ops coll.Ops, _ coll.P2P) {
			var pl *fft.PencilPlan
			var err error
			if offload {
				oo := ops.(*coll.OffloadOps)
				a2a := func(slot int) func(c *mpi.Comm, s, d mem.Addr, per int) {
					return func(c *mpi.Comm, s, d mem.Addr, per int) {
						oo.Wait(oo.IalltoallOn(c, slot, s, d, per))
					}
				}
				pl, err = fft.NewPencilPlanOffload(r, *p1, *p2, *n, *n, *n, a2a(3), a2a(4))
			} else {
				pl, err = fft.NewPencilPlan(r, *p1, *p2, *n, *n, *n)
			}
			if err != nil {
				panic(err)
			}
			rng := rand.New(rand.NewSource(int64(r.RankID())))
			orig := make([]complex128, len(pl.Data))
			for i := range pl.Data {
				v := complex(rng.NormFloat64(), rng.NormFloat64())
				pl.Data[i], orig[i] = v, v
			}
			t0 := r.Now()
			pl.Forward()
			pl.Backward()
			if d := r.Now() - t0; d > elapsed {
				elapsed = d
			}
			for i := range pl.Data {
				if e := cmplx.Abs(pl.Data[i] - orig[i]); e > worst {
					worst = e
				}
			}
		})
		fmt.Printf("%s  grid %dx%d, %d^3: fwd+bwd in %v, max round-trip error %.2e\n",
			label, *p1, *p2, *n, elapsed, worst)
	}
}
