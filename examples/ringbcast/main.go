// Ringbcast reproduces the paper's Figure 1: a ring broadcast with a data
// dependency per hop, implemented three ways —
//
//  1. host MPI nonblocking point-to-point, where each forwarding step waits
//     for the CPU to come back from compute (Listing 1);
//  2. the offload framework's Group primitives over the staging mechanism;
//  3. the Group primitives over cross-GVMI (the proposed design).
//
// Every rank computes while the broadcast is in flight; the printed
// completion times show the CPU-intervention penalty of case 1 and the
// staging penalty of case 2.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/baseline"
	"repro/internal/bench"
	"repro/internal/coll"
	"repro/internal/core"
	"repro/internal/mpi"
	"repro/internal/sim"
	"repro/internal/trace"
)

const (
	nodes   = 8
	ppn     = 1
	size    = 256 << 10
	compute = 200 * sim.Microsecond
	tag     = 4
)

var traceFlag = flag.Bool("trace", false, "print the GVMI case's protocol timeline (Figure 1 as data)")

func main() {
	flag.Parse()
	fmt.Printf("ring broadcast of %d KiB over %d ranks, each rank computing %v\n\n",
		size>>10, nodes*ppn, compute)
	hostMPI()
	offload("staged offload (case 2) ", baseline.StagingNoWarmupConfig())
	offload("GVMI offload (case 3)   ", baseline.ProposedConfig())
}

// hostMPI is case 1: the ring forwarded by the CPU, which is busy
// computing; MPI_Test polls give it a chance every 100us.
func hostMPI() {
	e := bench.Build(bench.Options{Nodes: nodes, PPN: ppn, Scheme: baseline.NameIntelMPI})
	np := e.Cl.Cfg.NP()
	done := make([]sim.Time, np)
	e.Launch(func(r *mpi.Rank, _ coll.Ops, _ coll.P2P) {
		me := r.RankID()
		buf := r.Alloc(size)
		right := (me + 1) % np
		var sq, rq *mpi.Request
		if me == 0 {
			sq = r.Isend(buf.Addr(), size, right, tag)
		} else {
			rq = r.Irecv(buf.Addr(), size, me-1, tag)
		}
		remaining := compute
		forwarded := me == 0 || right == 0
		for remaining > 0 {
			r.Compute(50 * sim.Microsecond)
			remaining -= 50 * sim.Microsecond
			if rq != nil && !forwarded && r.Test(rq) {
				sq = r.Isend(buf.Addr(), size, right, tag) // forward
				forwarded = true
			}
		}
		if rq != nil {
			r.Wait(rq)
			if !forwarded {
				sq = r.Isend(buf.Addr(), size, right, tag)
			}
		}
		if sq != nil {
			r.Wait(sq)
		}
		done[me] = r.Now()
	})
	report("host MPI (case 1)       ", done)
}

// offload runs cases 2 and 3: the whole ring recorded as one group request
// per rank and executed by the proxies while the hosts compute.
func offload(label string, cfg core.Config) {
	e := bench.Build(bench.Options{
		Nodes: nodes, PPN: ppn, Scheme: baseline.NameProposed, Core: &cfg,
	})
	if *traceFlag && cfg.Mechanism == core.MechGVMI {
		e.Cl.Trace = trace.New(80)
	}
	np := e.Cl.Cfg.NP()
	done := make([]sim.Time, np)
	e.Launch(func(r *mpi.Rank, _ coll.Ops, _ coll.P2P) {
		me := r.RankID()
		h := e.Fw.Host(me)
		buf := r.Alloc(size)
		right := (me + 1) % np
		g := h.GroupStart()
		if me == 0 {
			g.Send(buf.Addr(), size, right, tag)
		} else {
			g.Recv(buf.Addr(), size, me-1, tag)
			g.LocalBarrier()
			if right != 0 {
				g.Send(buf.Addr(), size, right, tag)
			}
		}
		g.End()
		h.GroupCall(g)
		r.Compute(compute)
		h.GroupWait(g)
		done[me] = r.Now()
	})
	report(label, done)
	if e.Cl.Trace.Enabled() {
		fmt.Println("\nprotocol timeline (first events):")
		if err := e.Cl.Trace.Timeline(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "ringbcast: timeline:", err)
			os.Exit(1)
		}
	}
}

func report(label string, done []sim.Time) {
	var last sim.Time
	for _, d := range done {
		if d > last {
			last = d
		}
	}
	fmt.Printf("%s last rank finished at %v (+%v beyond the %v compute)\n",
		label, last, last-compute, compute)
}
