// Shmem demonstrates the framework's programming-model agnosticism: an
// OpenSHMEM-style one-sided Put/Get API over the same DPU offload
// machinery. Each PE puts a block into its right neighbour's symmetric
// heap and gets one from its left neighbour — all transfers served by the
// proxies while every PE computes.
package main

import (
	"fmt"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/shmem"
	"repro/internal/sim"
)

func main() {
	const (
		nodes   = 2
		ppn     = 2
		n       = 256 << 10
		compute = 1 * sim.Millisecond
	)
	cl := cluster.New(cluster.DefaultConfig(nodes, ppn))
	np := cl.Cfg.NP()
	sites := make([]*cluster.Site, np)
	for i := range sites {
		sites[i] = cl.NewHostSite(cl.NodeOfRank(i), fmt.Sprintf("pe%d", i))
	}
	fw := core.New(cl, core.DefaultConfig(), sites)
	fw.Start()
	w := shmem.New(fw, sites, 4*n)

	for i := 0; i < np; i++ {
		pe := w.PE(i)
		cl.K.Spawn(fmt.Sprintf("pe%d", i), func(p *sim.Proc) {
			pe.Bind(p)
			src := pe.Malloc(n)
			inbox := pe.Malloc(n)
			fetched := pe.Malloc(n)

			d := pe.Bytes(src, n)
			for j := range d {
				d[j] = byte(pe.ID())
			}

			right := (pe.ID() + 1) % np
			left := (pe.ID() - 1 + np) % np
			pe.Put(inbox, src, n, right)  // push to the right
			pe.Get(fetched, src, n, left) // pull from the left
			pe.Compute(compute)           // proxies move the data meanwhile
			t0 := p.Now()
			pe.Quiet()
			fmt.Printf("PE %d: Quiet blocked %v; inbox[0]=%d (want %d), fetched[0]=%d (want %d)\n",
				pe.ID(), p.Now()-t0, peByte(pe, inbox), left, peByte(pe, fetched), left)
		})
	}
	end := cl.K.Run()
	fmt.Printf("done at t=%v\n", end)
}

func peByte(pe *shmem.PE, a shmem.SymAddr) byte { return pe.Bytes(a, 1)[0] }
