// Command omb is an OSU-Micro-Benchmarks-style driver for the simulated
// cluster — the measurement tool the paper's evaluation uses (ref [12]),
// pointed at the simulated testbed instead of real hardware.
//
// Usage:
//
//	omb <benchmark> [flags]
//
// Benchmarks:
//
//	latency     pingpong one-way latency (verbs level, host- or DPU-posted)
//	bw          streaming RDMA-write bandwidth
//	pingpong    nonblocking two-way isend/irecv + waitall (Figure 4 shape)
//	ialltoall   OMB NBC alltoall: pure, overall, overlap%
//	iallgather  OMB NBC allgather
//	ibcast      OMB NBC broadcast
//	tenants     multi-tenant: foreground Ialltoall latency vs background
//	            bulk jobs sharing one proxy worker per node (-bgjobs N;
//	            -policy picks the foreground policy, recommended
//	            -nodes 2 -ppn 2 for quick runs)
//	drift       mid-run drift: foreground latency before/after chatty
//	            background tenants arrive on a FIFO proxy (-policy picks
//	            the foreground, default feedback; -iters counts foreground
//	            iterations, recommended -nodes 2 -ppn 2 -iters 80)
//
// The -scheme flag selects Proposed / BluesMPI / IntelMPI for the NBC
// benchmarks. All numbers are virtual time and deterministic.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/baseline"
	"repro/internal/bench"
	"repro/internal/sim"
	"repro/internal/tenant"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	// `omb -device list` / `-fleet help` are flag-only queries: no
	// benchmark word, print the capability matrix / grammar and exit 0.
	args := os.Args[1:]
	name := args[0]
	if len(name) > 0 && name[0] == '-' {
		name = ""
	} else {
		args = args[1:]
	}
	fs := flag.NewFlagSet("omb", flag.ExitOnError)
	var (
		nodes  = fs.Int("nodes", 4, "nodes")
		ppn    = fs.Int("ppn", 8, "processes per node")
		scheme = fs.String("scheme", baseline.NameProposed, "Proposed | BluesMPI | IntelMPI")
		minS   = fs.Int("min", 4<<10, "smallest message size")
		maxS   = fs.Int("max", 512<<10, "largest message size")
		warmup = fs.Int("warmup", 4, "warmup iterations")
		iters  = fs.Int("iters", 3, "measured iterations")
		bgjobs = fs.Int("bgjobs", 3, "tenants: largest background bulk-job count swept")
	)
	cf := bench.RegisterCommonFlags(fs)
	if err := fs.Parse(args); err != nil {
		os.Exit(2)
	}
	cf.Activate()
	if cf.HandleDeviceQuery(os.Stdout) {
		return // -device list / -fleet help: documented exit 0
	}
	if name == "" {
		usage()
		os.Exit(2)
	}
	opt := bench.Options{Nodes: *nodes, PPN: *ppn, Scheme: *scheme, Policy: cf.Policy}
	backend := *scheme
	if cf.Policy != "" {
		backend = "policy=" + cf.Policy
	}
	sizes := bench.Pow2Sizes(*minS, *maxS)

	nbc := func(measure func(bench.Options, int, int, int) bench.NBCResult, title string) {
		fmt.Printf("# OMB %s, %d nodes x %d PPN, %s (virtual time)\n", title, *nodes, *ppn, backend)
		fmt.Printf("%-10s %14s %14s %14s %9s\n", "size", "pure (us)", "compute (us)", "overall (us)", "overlap")
		for _, size := range sizes {
			r := measure(opt, size, *warmup, *iters)
			fmt.Printf("%-10s %14.2f %14.2f %14.2f %8.1f%%\n",
				bench.SizeLabel(size), r.PureComm.Micros(), r.Compute.Micros(), r.Overall.Micros(), r.Overlap)
		}
	}

	switch name {
	case "latency":
		fmt.Println("# RDMA-write one-way latency (us): host-posted vs DPU-posted")
		fmt.Printf("%-10s %12s %12s\n", "size", "host", "dpu")
		for _, row := range bench.MeasureRDMALatency(bench.Pow2Sizes(2, 8<<10), *iters*5) {
			fmt.Printf("%-10s %12.2f %12.2f\n", bench.SizeLabel(row.Size), row.HostHost.Micros(), row.HostDPU.Micros())
		}
	case "bw":
		fmt.Println("# RDMA-write streaming bandwidth (GB/s): host-posted vs DPU-posted")
		fmt.Printf("%-10s %12s %12s %12s\n", "size", "host", "dpu", "normalized")
		for _, row := range bench.MeasureRDMABandwidth(bench.Pow2Sizes(2, 4<<20), 64, *iters) {
			fmt.Printf("%-10s %12.2f %12.2f %12.2f\n", bench.SizeLabel(row.Size), row.HostHost, row.HostDPU, row.Normalized)
		}
	case "pingpong":
		fmt.Printf("# Nonblocking pingpong (us), %s\n", backend)
		fmt.Printf("%-10s %12s\n", "size", "latency")
		for _, size := range sizes {
			lat := bench.MeasurePingpongNB(bench.Options{Nodes: 2, PPN: 1, Scheme: *scheme, Policy: cf.Policy}, size, *warmup, *iters)
			fmt.Printf("%-10s %12.2f\n", bench.SizeLabel(size), lat.Micros())
		}
	case "tenants":
		pol := cf.Policy
		if pol == "" {
			pol = "gvmi"
		}
		fmt.Printf("# Multi-tenant: foreground Ialltoall vs background bulk jobs, %d nodes x %d PPN/job, fg policy=%s, 1 proxy/DPU\n",
			*nodes, *ppn, pol)
		fmt.Printf("%-8s %14s %14s %14s %14s\n", "bg jobs", "fg p50 (us)", "fg p99 (us)", "goodput GB/s", "makespan (us)")
		results := make([]*tenant.Result, *bgjobs+1)
		bench.Sweep(*bgjobs+1, func(i int, env bench.SweepEnv) {
			cfg := bench.TenantsCase(*nodes, *ppn, i, pol, *iters)
			cfg.Metrics = env.Met
			cfg.Spans = env.Sp
			r, err := tenant.Run(cfg)
			if err != nil {
				panic(fmt.Sprintf("omb: tenants bg=%d: %v", i, err))
			}
			results[i] = r
		})
		for i, r := range results {
			fg := r.Job("fg")
			fmt.Printf("%-8d %14.2f %14.2f %14.2f %14.2f\n",
				i, fg.P50.Micros(), fg.P99.Micros(), r.GoodputGBps(), r.Makespan.Micros())
		}
	case "drift":
		pol := cf.Policy
		if pol == "" {
			pol = "feedback"
		}
		fmt.Printf("# Drift: foreground Ialltoall latency before/after chatty background tenants arrive, %d nodes x %d PPN/job, fg policy=%s, 1 FIFO proxy/DPU\n",
			*nodes, *ppn, pol)
		cfg := bench.DriftCase(*nodes, *ppn, *iters, pol)
		r, err := tenant.Run(cfg)
		if err != nil {
			fmt.Fprintln(os.Stderr, "omb: drift:", err)
			os.Exit(1)
		}
		fg := r.Job("fg")
		pre, post := bench.SplitDrift(fg.Samples, bench.DriftArrival, bench.DriftSettle)
		reprobes := r.Metrics.CounterT("policy", pol, "reason_reprobe", "fg").Value()
		fmt.Printf("%-8s %8s %14s %14s\n", "window", "iters", "p50 (us)", "p99 (us)")
		for _, w := range []struct {
			name string
			ds   []sim.Time
		}{{"pre", pre}, {"post", post}} {
			fmt.Printf("%-8s %8d %14.2f %14.2f\n", w.name, len(w.ds),
				bench.Percentile(w.ds, 50).Micros(), bench.Percentile(w.ds, 99).Micros())
		}
		fmt.Printf("re-probe decisions: %d\n", reprobes)
	case "ialltoall":
		nbc(bench.MeasureIalltoall, "Ialltoall")
	case "iallgather":
		nbc(bench.MeasureIallgather, "Iallgather")
	case "ibcast":
		nbc(bench.MeasureIbcast, "Ibcast")
	default:
		fmt.Fprintf(os.Stderr, "unknown benchmark %q\n", name)
		usage()
		os.Exit(2)
	}
	if err := cf.Finish(os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "omb:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: omb <latency|bw|pingpong|ialltoall|iallgather|ibcast|tenants|drift> [flags]
flags: -nodes N -ppn N -scheme Proposed|BluesMPI|IntelMPI -min B -max B -warmup N -iters N
       -policy NAME (offload policy: gvmi|staged|bluesmpi|hostdirect|adaptive|measure|feedback; overrides -scheme)
       -bgjobs N (tenants: largest background bulk-job count swept)
       -metrics PATH -spans PATH -parallel N`)
}
