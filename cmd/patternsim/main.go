// Command patternsim offloads an arbitrary, user-defined communication
// pattern to the simulated DPU cluster and reports completion times and
// framework statistics — the "generic communication pattern" workflow the
// paper's Group primitives enable.
//
// Usage:
//
//	patternsim -preset ring -np 8 -size 256K -mech gvmi -compute 1ms
//	patternsim -file pattern.txt -calls 3 -nogroupcache
//	patternsim -preset alltoall -policy adaptive -calls 4
//	patternsim -preset ring -np 4 -tenants 4 -bgstart 500us -policy feedback
//
// Spec format (one op per line): "<rank> send <dst> <size> [tag]",
// "<rank> recv <src> <size> [tag]", "<rank> barrier"; # comments.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/pattern"
	"repro/internal/sim"
	"repro/internal/tenant"
)

func main() {
	var (
		file       = flag.String("file", "", "pattern spec file ('-' = stdin)")
		preset     = flag.String("preset", "", "built-in pattern: ring | alltoall | neighbor")
		np         = flag.Int("np", 8, "ranks for presets")
		sizeStr    = flag.String("size", "64K", "transfer size for presets")
		nodes      = flag.Int("nodes", 0, "nodes (0 = derive from ranks and ppn)")
		ppn        = flag.Int("ppn", 8, "host processes per node")
		mech       = flag.String("mech", "gvmi", "mechanism: gvmi | staging")
		noRegCache = flag.Bool("noregcache", false, "disable registration caches")
		noGrpCache = flag.Bool("nogroupcache", false, "disable the group-request cache")
		computeStr = flag.String("compute", "0", "overlapped compute per call (e.g. 1ms)")
		calls      = flag.Int("calls", 1, "GroupCall repetitions")
		verify     = flag.Bool("verify", true, "payload-backed buffers with data checks")
		tenants    = flag.Int("tenants", 1, "replicate the pattern across N tenant jobs sharing the fabric and one proxy worker per node (-policy applies; incompatible with -mech staging, -compute, cache flags)")
		bgStartStr = flag.String("bgstart", "0", "stagger tenant arrivals: job i starts at i x this delay (e.g. 500us; mid-run arrivals drive feedback-policy re-probing)")
	)
	cf := bench.RegisterCommonFlags(flag.CommandLine)
	flag.Parse()
	cf.Activate()
	if cf.HandleDeviceQuery(os.Stdout) {
		return // -device list / -fleet help: documented exit 0
	}

	spec, err := loadSpec(*file, *preset, *np, *sizeStr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "patternsim:", err)
		os.Exit(1)
	}

	if *tenants > 1 {
		if *mech != "gvmi" || *noRegCache || *noGrpCache || *computeStr != "0" {
			fmt.Fprintln(os.Stderr, "patternsim: -tenants runs on the shared proposed core (no -mech staging, cache flags, or -compute)")
			os.Exit(1)
		}
		bgStart, err := time.ParseDuration(*bgStartStr)
		if (err != nil && *bgStartStr != "0") || bgStart < 0 {
			fmt.Fprintln(os.Stderr, "patternsim: bad -bgstart:", err)
			os.Exit(1)
		}
		if err := runTenants(spec, *tenants, *nodes, *ppn, *calls, sim.Time(bgStart.Nanoseconds()), cf); err != nil {
			fmt.Fprintln(os.Stderr, "patternsim:", err)
			os.Exit(1)
		}
		if err := cf.Finish(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "patternsim:", err)
			os.Exit(1)
		}
		return
	}

	cfg := core.DefaultConfig()
	if *mech == "staging" {
		cfg.Mechanism = core.MechStaging
	} else if *mech != "gvmi" {
		fmt.Fprintln(os.Stderr, "patternsim: unknown mechanism", *mech)
		os.Exit(1)
	}
	cfg.RegCaches = !*noRegCache
	cfg.GroupCache = !*noGrpCache

	compute, err := time.ParseDuration(*computeStr)
	if err != nil && *computeStr != "0" {
		fmt.Fprintln(os.Stderr, "patternsim: bad -compute:", err)
		os.Exit(1)
	}

	// -policy overrides -mech: the bundle supplies both the core config and
	// the per-call datapath decision.
	res, err := pattern.Run(spec, pattern.RunOptions{
		Nodes: *nodes, PPN: *ppn, Core: cfg,
		Compute: sim.Time(compute.Nanoseconds()),
		Calls:   *calls, Backed: *verify,
		Policy:  cf.Policy,
		Metrics: cf.Registry(), Spans: cf.Spans(),
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "patternsim:", err)
		os.Exit(1)
	}

	if cf.Policy != "" {
		fmt.Printf("pattern: %d ranks, %d ops, policy=%s regcache=%v groupcache=%v calls=%d\n",
			res.NRanks, len(spec.Ops), cf.Policy, cfg.RegCaches, cfg.GroupCache, *calls)
	} else {
		fmt.Printf("pattern: %d ranks, %d ops, mechanism=%v regcache=%v groupcache=%v calls=%d\n",
			res.NRanks, len(spec.Ops), cfg.Mechanism, cfg.RegCaches, cfg.GroupCache, *calls)
	}
	for r, t := range res.PerRank {
		fmt.Printf("  rank %-3d done at %v\n", r, t)
	}
	fmt.Printf("slowest rank: %v\n", res.Last)
	if *verify {
		status := "OK"
		if !res.DataOK {
			status = "CORRUPTED"
		}
		fmt.Printf("data integrity: %s (%d receives checked)\n", status, res.DataChecks)
	}
	fmt.Printf("stats: %v\n", res.Stats)
	if err := cf.Finish(os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "patternsim:", err)
		os.Exit(1)
	}
}

// runTenants replays the pattern as n concurrent tenant jobs on one shared
// cluster with a single proxy worker per node, reporting per-tenant call
// latencies and the aggregate makespan. A non-zero bgStart staggers the
// jobs: job i sleeps i x bgStart before its first call, so later tenants
// arrive mid-run from the earlier tenants' point of view (the drift that
// feedback policies re-probe under).
func runTenants(spec *pattern.Spec, n, nodes, ppn, calls int, bgStart sim.Time, cf *bench.CommonFlags) error {
	pol := cf.Policy
	if pol == "" {
		pol = "gvmi"
	}
	if nodes == 0 {
		nodes = (spec.NRanks + ppn - 1) / ppn
	}
	jobs := make([]tenant.JobSpec, n)
	for i := range jobs {
		jobs[i] = tenant.JobSpec{
			Name: fmt.Sprintf("t%d", i), PPN: ppn, Policy: pol,
			Workload: tenant.Workload{
				Kind: tenant.Pattern, Spec: spec, Iters: calls, Warmup: -1,
				Start: sim.Time(i) * bgStart,
			},
		}
	}
	res, err := tenant.Run(tenant.Config{
		Nodes: nodes, ProxiesPerDPU: 1, Jobs: jobs,
		Metrics: cf.Registry(), Spans: cf.Spans(),
	})
	if err != nil {
		return err
	}
	fmt.Printf("tenants: %d jobs x %d ranks, %d ops each, policy=%s, %d nodes, 1 proxy/DPU, calls=%d\n",
		n, spec.NRanks, len(spec.Ops), pol, nodes, calls)
	for _, jr := range res.Jobs {
		fmt.Printf("  job %-4s p50=%v p99=%v finish=%v\n", jr.Name, jr.P50, jr.P99, jr.Finish)
	}
	fmt.Printf("makespan: %v, aggregate goodput: %.2f GB/s\n", res.Makespan, res.GoodputGBps())
	return nil
}

func loadSpec(file, preset string, np int, sizeStr string) (*pattern.Spec, error) {
	size, err := pattern.ParseSize(sizeStr)
	if err != nil {
		return nil, err
	}
	switch {
	case file == "-":
		return pattern.Parse(os.Stdin)
	case file != "":
		f, err := os.Open(file)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return pattern.Parse(f)
	case preset == "ring":
		return pattern.Ring(np, size), nil
	case preset == "alltoall":
		return pattern.Alltoall(np, size), nil
	case preset == "neighbor":
		return pattern.Neighbor(np, size), nil
	default:
		return nil, fmt.Errorf("need -file or -preset (ring|alltoall|neighbor)")
	}
}
