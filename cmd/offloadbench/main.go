// Command offloadbench regenerates every table and figure of the paper's
// evaluation on the simulated BlueField cluster.
//
// Usage:
//
//	offloadbench <figure> [flags]
//
// Figures: fig2 fig3 fig4 fig5 fig11 fig12 fig13 fig14 fig15 fig16a fig16b
// fig16c fig17 ablation chaos all
//
// Defaults are scaled to finish in minutes on a laptop (fewer iterations
// and, for the applications, a reduced PPN); fig17 is the slowest at
// roughly 15 minutes. Pass -ppn 32 -full for paper-scale runs. All times
// are virtual (simulated) nanosecond-resolution measurements and are fully
// deterministic.
package main

import (
	"bytes"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"time"

	"repro/internal/baseline"
	"repro/internal/bench"
	"repro/internal/fault"
	"repro/internal/figures"
	"repro/internal/sim"
	"repro/internal/span"
	"repro/internal/telemetry"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	// `offloadbench -device list` / `-fleet help` are flag-only queries: no
	// figure word, print the capability matrix / fleet grammar and exit 0.
	args := os.Args[1:]
	fig := args[0]
	if len(fig) > 0 && fig[0] == '-' {
		fig = ""
	} else {
		args = args[1:]
	}
	fs := flag.NewFlagSet("offloadbench", flag.ExitOnError)
	var (
		ppn    = fs.Int("ppn", 0, "processes per node (0 = figure default)")
		iters  = fs.Int("iters", 0, "measured iterations (0 = figure default)")
		warmup = fs.Int("warmup", 4, "warmup iterations (benchmark level; apps run with none)")
		full   = fs.Bool("full", false, "paper-scale parameters (slow)")
		memGB  = fs.Int("memgb", 0, "HPL memory per node in GB (0 = default)")
		nb     = fs.Int("nb", 256, "HPL block size")
		seed   = fs.Int64("seed", 42, "chaos fault-injection seed")
		size   = fs.Int("size", 32<<10, "chaos/scale message size in bytes")
		maxrk  = fs.Int("maxranks", 0, "scale: largest rank count of the sweep (0 = full 128..1024)")
		outp   = fs.String("o", "", "output path (bench-snapshot: BENCH_fig13.json, wallclock: BENCH_wallclock.json)")
		cprof  = fs.String("cpuprofile", "", "write a pprof CPU profile of the run to <path>")
		mprof  = fs.String("memprofile", "", "write a pprof heap profile after the run to <path>")
	)
	cf := bench.RegisterCommonFlags(fs)
	if err := fs.Parse(args); err != nil {
		os.Exit(2)
	}
	workers := cf.Activate()
	if cf.HandleDeviceQuery(os.Stdout) {
		return // -device list / -fleet help: documented exit 0
	}
	if fig == "" {
		usage()
		os.Exit(2)
	}

	if *cprof != "" {
		f, err := os.Create(*cprof)
		if err != nil {
			fatal(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal(err)
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *mprof != "" {
		defer func() {
			f, err := os.Create(*mprof)
			if err != nil {
				fatal(err)
			}
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fatal(err)
			}
			f.Close()
		}()
	}

	p := params{ppn: *ppn, iters: *iters, warmup: *warmup, full: *full, memGB: *memGB, nb: *nb,
		seed: *seed, size: *size}
	out := os.Stdout

	if fig == "bench-snapshot" {
		path := *outp
		if path == "" {
			path = "BENCH_fig13.json"
		}
		snap := bench.Fig13Snapshot()
		if err := snap.Validate(); err != nil {
			fatal(err)
		}
		f, err := os.Create(path)
		if err != nil {
			fatal(err)
		}
		if err := bench.WriteBenchSnapshot(f, snap); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Fprintf(out, "wrote %s (%d series, %d counter series)\n",
			path, len(snap.Series), len(snap.Metrics.Counters))
		return
	}

	if fig == "bench-tenants" {
		path := *outp
		if path == "" {
			path = "BENCH_tenants.json"
		}
		snap := bench.MeasureTenants()
		if err := snap.Validate(); err != nil {
			fatal(err)
		}
		f, err := os.Create(path)
		if err != nil {
			fatal(err)
		}
		if err := bench.WriteTenantsSnapshot(f, snap); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Fprintf(out, "wrote %s (%d points, crossover verified, %d counter series)\n",
			path, len(snap.Series), len(snap.Metrics.Counters))
		return
	}

	if fig == "bench-drift" {
		path := *outp
		if path == "" {
			path = "BENCH_drift.json"
		}
		snap := bench.MeasureDrift()
		if err := snap.Validate(); err != nil {
			fatal(err)
		}
		f, err := os.Create(path)
		if err != nil {
			fatal(err)
		}
		if err := bench.WriteDriftSnapshot(f, snap); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Fprintf(out, "wrote %s (%d points, re-route verified, %d counter series)\n",
			path, len(snap.Series), len(snap.Metrics.Counters))
		return
	}

	if fig == "bench-fleet" {
		path := *outp
		if path == "" {
			path = "BENCH_fleet.json"
		}
		figData, err := os.ReadFile("BENCH_fig13.json")
		if err != nil {
			fatal(fmt.Errorf("bench-fleet validates against the fig13 baseline: %w", err))
		}
		figSnap, err := bench.ParseBenchSnapshot(figData)
		if err != nil {
			fatal(err)
		}
		snap := bench.MeasureFleet()
		if err := snap.Validate(figSnap); err != nil {
			fatal(err)
		}
		figures.FleetTable(snap).Fprint(out)
		f, err := os.Create(path)
		if err != nil {
			fatal(err)
		}
		if err := bench.WriteFleetSnapshot(f, snap); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Fprintf(out, "wrote %s (%d policies on %s, homogeneous bf2 == fig13, crossover verified, %d counter series)\n",
			path, len(snap.Mixed), snap.Fleet, len(snap.Metrics.Counters))
		return
	}

	if fig == "scale" {
		path := *outp
		if path == "" {
			path = "BENCH_scale.json"
		}
		cfg := bench.DefaultScaleConfig()
		if p.ppn > 0 {
			cfg.PPN = p.ppn
		}
		cfg.Size = p.size
		if p.iters > 0 {
			cfg.Iters = p.iters
		}
		if *maxrk > 0 {
			var ranks []int
			for _, r := range cfg.Ranks {
				if r <= *maxrk {
					ranks = append(ranks, r)
				}
			}
			if len(ranks) == 0 {
				fatal(fmt.Errorf("scale: -maxranks %d keeps no rank count of %v", *maxrk, cfg.Ranks))
			}
			cfg.Ranks = ranks
		}
		t0 := time.Now()
		snap := bench.MeasureScale(cfg)
		wall := time.Since(t0)
		if err := snap.Validate(); err != nil {
			fatal(err)
		}
		figures.ScaleTable(snap).Fprint(out)
		f, err := os.Create(path)
		if err != nil {
			fatal(err)
		}
		if err := bench.WriteScaleSnapshot(f, snap); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Fprintf(out, "wrote %s (%d rank counts up to %d, claims validated, %s wall, shards=%d)\n",
			path, len(snap.Series), snap.Series[len(snap.Series)-1].Ranks, wall.Round(time.Millisecond), cf.Shards)
		return
	}

	if fig == "wallclock" {
		path := *outp
		if path == "" {
			path = "BENCH_wallclock.json"
		}
		if cf.Parallel == 1 {
			// A serial-vs-serial comparison proves nothing; default the
			// parallel arm to the acceptance configuration.
			workers = 4
		}
		if n := runtime.NumCPU(); n < bench.MinSpeedupCores && workers > n {
			// More workers than cores measures scheduler thrash, not the
			// runner: record the honest configuration for this host and let
			// Validate's core-count gate waive the speedup floor.
			workers = n
		}
		runWallclock(out, p, path, workers)
		return
	}

	if fig == "critical-path" {
		criticalPath(out, p)
		return
	}

	if fig == "timeline" {
		runTimeline(out, p, *outp)
		return
	}

	run := func(name string) {
		switch name {
		case "policy":
			figures.PolicyAblation(4, p.a2aPPN(), p.a2aSizes(), *warmup, p.it(2), cf.Policy).Fprint(out)
		case "fig2":
			figures.Fig2(p.it(20)).Fprint(out)
		case "fig3":
			figures.Fig3(64, p.it(4)).Fprint(out)
		case "fig4":
			figures.Fig4(*warmup, p.it(10)).Fprint(out)
		case "fig5":
			figures.Fig5().Fprint(out)
		case "fig11", "fig12":
			t11, t12 := figures.Fig11And12(16, p.appPPN(), *warmup, p.it(3), p.stencilProblems())
			if name == "fig11" {
				t11.Fprint(out)
			} else {
				t12.Fprint(out)
			}
		case "fig13", "fig14":
			t13s, t14s := figures.Fig13And14([]int{4, 8, 16}, p.a2aPPN(), p.a2aSizes(), *warmup, p.it(2))
			ts := t13s
			if name == "fig14" {
				ts = t14s
			}
			for _, t := range ts {
				t.Fprint(out)
			}
		case "fig15":
			figures.Fig15(8, p.a2aPPN(), p.fig15Sizes(), *warmup, p.it(3), true).Fprint(out)
		case "fig16a":
			figures.Fig16(8, p.appPPN(), 256, []int{512, 1024, 2048}, p.it(2)).Fprint(out)
		case "fig16b":
			figures.Fig16(16, p.appPPN(), 512, []int{1024, 2048, 4096}, p.it(2)).Fprint(out)
		case "fig16c":
			figures.Fig16C(8, p.appPPN(), 256, 512, p.it(2)).Fprint(out)
		case "fig17":
			figures.Fig17(16, p.hplPPN(), p.hplMemGB(), *nb, []int{5, 10, 25, 50, 75}).Fprint(out)
		case "ablation":
			for _, t := range figures.Ablations(p.a2aPPN(), *warmup, p.it(2)) {
				t.Fprint(out)
			}
		case "ext-bf3":
			figures.ExtBF3(4, p.a2aPPN(), p.a2aSizes(), *warmup, p.it(2)).Fprint(out)
		case "ext-allgather":
			figures.ExtIallgather(4, p.a2aPPN(), p.a2aSizes(), *warmup, p.it(2)).Fprint(out)
		case "chaos":
			figures.FigChaos(2, p.a2aPPN(), p.seed, figures.ChaosRates, p.size, *warmup, p.it(2)).Fprint(out)
		case "tenants":
			figures.Tenants(2, p.tenantPPN(), p.it(8)).Fprint(out)
		case "drift":
			figures.Drift(2, p.tenantPPN(), p.it(80)).Fprint(out)
			figures.DriftAttribution(2, p.tenantPPN(), p.it(80)).Fprint(out)
		case "fleet":
			figures.FleetTable(bench.MeasureFleet()).Fprint(out)
		default:
			fmt.Fprintf(os.Stderr, "unknown figure %q\n", name)
			usage()
			os.Exit(2)
		}
	}

	if fig == "all" {
		for _, name := range []string{"fig2", "fig3", "fig4", "fig5", "fig11", "fig12",
			"fig13", "fig14", "fig15", "fig16a", "fig16b", "fig16c", "fig17", "ablation", "policy", "ext-bf3", "ext-allgather", "chaos", "tenants", "drift"} {
			run(name)
		}
	} else {
		run(fig)
	}
	if err := cf.Finish(out); err != nil {
		fatal(err)
	}
}

// runWallclock times the fig13 figure sweep serially and with the parallel
// runner, verifies the two rendered outputs byte-identical (determinism is
// the hard requirement), and records the wall-clock baseline.
func runWallclock(out *os.File, p params, path string, workers int) {
	render := func() []byte {
		var buf bytes.Buffer
		t13s, t14s := figures.Fig13And14([]int{4, 8, 16}, p.a2aPPN(), p.a2aSizes(), p.warmup, p.it(2))
		for _, t := range t13s {
			t.Fprint(&buf)
		}
		for _, t := range t14s {
			t.Fprint(&buf)
		}
		return buf.Bytes()
	}

	bench.Parallelism = 1
	t0 := time.Now()
	serialOut := render()
	serialNS := time.Since(t0).Nanoseconds()

	bench.Parallelism = workers
	t0 = time.Now()
	parOut := render()
	parNS := time.Since(t0).Nanoseconds()

	snap := bench.WallclockSnapshot{
		Schema:     bench.WallclockSchema,
		Figure:     "fig13",
		Cores:      runtime.NumCPU(),
		Parallel:   workers,
		SerialNS:   serialNS,
		ParallelNS: parNS,
		Speedup:    float64(serialNS) / float64(parNS),
		Identical:  bytes.Equal(serialOut, parOut),
	}
	if err := snap.Validate(); err != nil {
		fatal(err)
	}
	f, err := os.Create(path)
	if err != nil {
		fatal(err)
	}
	if err := bench.WriteWallclock(f, snap); err != nil {
		fatal(err)
	}
	if err := f.Close(); err != nil {
		fatal(err)
	}
	fmt.Fprintf(out, "wrote %s: serial %s, parallel(%d) %s, speedup %.2fx on %d cores, outputs identical=%v\n",
		path, time.Duration(serialNS), workers, time.Duration(parNS), snap.Speedup, snap.Cores, snap.Identical)
}

// runTimeline runs the drift scenario for every foreground policy with the
// virtual-time flight recorder attached (and span tracing for the two
// policies whose gap is the re-route win), exports the time series, and
// prints the drift-attribution table plus a per-policy SLO summary.
func runTimeline(out *os.File, p params, path string) {
	if path == "" {
		path = "TIMELINE"
	}
	const nodes = 2
	ppn := p.tenantPPN()
	iters := p.it(80)
	policies := []string{"gvmi", "hostdirect", "measure", "feedback"}
	spansFor := map[string]bool{"measure": true, "feedback": true}
	runs := bench.CollectDriftTimelines(nodes, ppn, iters, policies, spansFor)

	recs := make([]*telemetry.Recorder, len(runs))
	for i := range runs {
		recs[i] = runs[i].Rec
	}
	writeTo := func(name string, fn func(io.Writer) error) {
		f, err := os.Create(name)
		if err != nil {
			fatal(err)
		}
		if err := fn(f); err != nil {
			f.Close()
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
	}
	writeTo(path+".jsonl", func(w io.Writer) error { return telemetry.WriteJSONL(w, recs...) })
	writeTo(path+".prom", func(w io.Writer) error { return telemetry.WritePrometheusTS(w, recs...) })
	fmt.Fprintf(out, "timeseries: %s.jsonl, %s.prom (%d runs)\n", path, path, len(runs))

	var atts []bench.DriftAttribution
	for _, run := range runs {
		if run.Spans == nil {
			continue
		}
		// One trace per traced policy: the policy's span tracks plus its
		// recorder's counter tracks in a single Chrome trace file.
		trace := fmt.Sprintf("%s.%s.trace.json", path, run.Policy)
		sc := run.Spans
		extra := run.Rec.ChromeCounterLines()
		writeTo(trace, func(w io.Writer) error { return sc.WriteChromeTraceWith(w, extra) })
		fmt.Fprintf(out, "trace: %s (%d spans, %d counter samples)\n", trace, sc.Len(), len(extra))
		a, err := bench.AttributeDrift(run)
		if err != nil {
			fatal(err)
		}
		atts = append(atts, a)
	}
	figures.DriftAttributionTable(atts).Fprint(out)

	fmt.Fprintf(out, "\nSLO (objective %s, foreground job):\n", bench.DriftSLOObjective)
	for _, run := range runs {
		met := run.Res.Metrics
		samples := met.CounterT("slo", "latency", "samples", "fg").Value()
		viol := met.CounterT("slo", "latency", "violations", "fg").Value()
		burnMax := met.GaugeT("slo", "latency", "burn_rate_max", "fg").Value()
		fmt.Fprintf(out, "  %-10s %4d/%4d iterations violated, worst window burn %.1fx budget\n",
			run.Policy, viol, samples, burnMax)
	}
}

// criticalPath runs the fig13 Ialltoall loop plus a chaos run with span
// collection on, and prints a representative critical path and the
// per-layer latency-attribution table for each.
func criticalPath(out *os.File, p params) {
	opt := bench.Options{Nodes: 2, PPN: p.a2aPPN(), Scheme: baseline.NameProposed}
	size := p.size

	fmt.Fprintf(out, "=== critical path: ialltoall np=%d size=%d (proposed) ===\n",
		opt.Nodes*opt.PPN, size)
	sc, r := bench.CollectSpans(opt, size, p.warmup, p.it(2))
	printAttribution(out, sc)
	fmt.Fprintf(out, "pure_comm=%s overall=%s\n\n", r.PureComm, r.Overall)

	fmt.Fprintf(out, "=== critical path: ialltoall under chaos (rate 1e-3, seed %d) ===\n", p.seed)
	csc, cr := bench.CollectChaosSpans(opt, fault.Scaled(p.seed, 1e-3), 1e-3, size, p.warmup, p.it(2))
	printAttribution(out, csc)
	fmt.Fprintf(out, "overall=%s verified=%v retries=%d\n", cr.Overall, cr.Verified, cr.Fault.Retries)
}

// printAttribution prints the critical path of the last completed
// collective root (the steady-state iteration) and the attribution table
// aggregated over every collective root.
func printAttribution(out *os.File, sc *span.Collector) {
	roots := sc.RootsNamed("coll", "ialltoall")
	if len(roots) == 0 {
		fmt.Fprintln(out, "no collective roots recorded")
		return
	}
	last := roots[len(roots)-1]
	fmt.Fprint(out, sc.FormatPath(last))
	var total sim.Time
	for _, id := range roots {
		if s, ok := sc.Get(id); ok && s.Ended {
			total += s.Dur()
		}
	}
	fmt.Fprintf(out, "\nattribution over %d roots:\n%s", len(roots),
		span.FormatAttribution(sc.Attribution(roots), total))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "offloadbench:", err)
	os.Exit(1)
}

// params resolves per-figure defaults vs the -full flag.
type params struct {
	ppn, iters, warmup int
	full               bool
	memGB, nb          int
	seed               int64
	size               int
}

// it picks the iteration count.
func (p params) it(def int) int {
	if p.iters > 0 {
		return p.iters
	}
	if p.full {
		return def * 3
	}
	return def
}

// a2aPPN is the PPN for alltoall microbenchmarks (paper: 32).
func (p params) a2aPPN() int {
	if p.ppn > 0 {
		return p.ppn
	}
	if p.full {
		return 32
	}
	return 8
}

// appPPN is the PPN for application runs (paper: 32).
func (p params) appPPN() int {
	if p.ppn > 0 {
		return p.ppn
	}
	if p.full {
		return 32
	}
	return 8
}

// hplPPN keeps HPL runs tractable by default. The broadcast-vs-update race
// the paper studies needs enough ranks that the panel ring is comparable to
// the local update; 16 PPN with 2 GB/node reproduces the shape in minutes.
func (p params) hplPPN() int {
	if p.ppn > 0 {
		return p.ppn
	}
	if p.full {
		return 32
	}
	return 16
}

// hplMemGB scales the HPL problem (paper: 256 GB/node).
func (p params) hplMemGB() int {
	if p.memGB > 0 {
		return p.memGB
	}
	if p.full {
		return 256
	}
	return 16
}

// tenantPPN is the per-job PPN of the multi-tenant sweep: every job places
// this many ranks on every node, so the shared proxy serves jobs × PPN
// ranks per node.
func (p params) tenantPPN() int {
	if p.ppn > 0 {
		return p.ppn
	}
	if p.full {
		return 4
	}
	return 2
}

func (p params) a2aSizes() []int {
	if p.full {
		return []int{4 << 10, 16 << 10, 64 << 10, 256 << 10, 1 << 20}
	}
	return []int{8 << 10, 32 << 10, 128 << 10}
}

func (p params) fig15Sizes() []int {
	if p.full {
		return []int{1 << 10, 4 << 10, 16 << 10, 64 << 10}
	}
	return []int{4 << 10, 16 << 10, 64 << 10}
}

func (p params) stencilProblems() []int {
	if p.full {
		return []int{512, 1024, 2048}
	}
	return []int{256, 512, 1024}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: offloadbench <figure> [flags]

figures:
  fig2     RDMA-write latency, host vs DPU posting
  fig3     RDMA-write bandwidth, normalized
  fig4     nonblocking pingpong, host vs staging offload
  fig5     cross-GVMI registration overheads
  fig11    3D stencil normalized overall time
  fig12    3D stencil overlap %
  fig13    Ialltoall overall time (4/8/16 nodes)
  fig14    Ialltoall overlap %
  fig15    scatter-destination: Simple vs Group primitives
  fig16a   P3DFFT normalized runtime, 8 nodes
  fig16b   P3DFFT normalized runtime, 16 nodes
  fig16c   P3DFFT single-phase compute/MPI profile
  fig17    HPL normalized runtime vs memory fraction (~15 min)
  ablation design-choice ablations (caches, mechanism, proxies)
  policy   offload-policy ablation: fixed datapaths vs adaptive vs measuring
           (-policy NAME restricts to one bundle)
  ext-bf3  future-work extension: BlueField-3 + NDR platform
  ext-allgather  Iallgather (ref [9] workload) across schemes
  chaos    Ialltoall under fault injection (rates 0, 1e-4, 1e-3, 1e-2)
  tenants  multi-tenant crossover: fg tail latency & aggregate goodput vs
           background bulk jobs on a shared single-worker proxy
  drift    mid-run drift: fg latency before/after chatty background tenants
           arrive and saturate the proxy (feedback policy re-routes)
  fleet    mixed-fleet policy comparison on a half-BF2/half-BF3 cluster:
           fixed paths vs capability-blind adaptive vs capability-aware
  all      everything above
  scale    fig13 collective shapes at 128/256/512/1024 ranks, validating the
           paper's ordering/overlap claims at scale; writes BENCH_scale.json
           (-o path, -maxranks N for a reduced prefix, -size/-ppn/-iters)
  bench-snapshot  regenerate the BENCH_fig13.json perf baseline (-o path)
  bench-tenants   regenerate the BENCH_tenants.json multi-tenant baseline (-o path)
  bench-drift     regenerate the BENCH_drift.json drift baseline (-o path)
  bench-fleet     regenerate the BENCH_fleet.json mixed-fleet baseline (-o path);
                  validates against BENCH_fig13.json in the working directory
  wallclock       time the fig13 sweep serial vs parallel, verify the outputs
                  byte-identical, and write the BENCH_wallclock.json baseline
  critical-path   span-based critical path + latency attribution for the
                  fig13 Ialltoall loop and a chaos run (-ppn, -size, -seed)
  timeline        drift scenario with the virtual-time flight recorder: time
                  series per policy (-o prefix: .jsonl, .prom, per-policy
                  .trace.json), the drift-attribution table, and SLO summary

flags: -ppn N -iters N -warmup N -full -memgb N -nb N -seed N -size N
       -parallel N (sweep workers; 0 = all CPUs, 1 = serial; output identical at any value)
       -shards N (lookahead-sharded kernel execution; 0 = one shard per node,
                  1 = serial loop; output identical at any value)
       -policy NAME (offload policy: gvmi|staged|bluesmpi|hostdirect|adaptive|aware|measure|feedback)
       -device NAME (device profile for every node: bf2|bf3|ipu-e2100|dsa-offpath;
                  "list" prints the capability matrix and exits)
       -fleet SPEC (per-node profiles "name[:count],...", e.g. bf2:2,bf3:2;
                  "help" prints the grammar and matrix and exits; overrides -device)
       -metrics PATH (export run metrics: JSON to PATH, Prometheus to PATH.prom)
       -spans PATH (export span trace: Chrome JSON to PATH, plus PATH.folded, PATH.jsonl)
       -timeseries PATH (record watched metrics as bucketed virtual-time series:
                  PATH.jsonl, PATH.prom; with -spans, counter tracks join the trace)
       -cpuprofile PATH / -memprofile PATH (pprof capture of the run)
       -o PATH (bench-snapshot / wallclock / timeline output)`)
}
