# Repro build/test entry points. `make check` is the full gate: static
# analysis, a clean build, the test suite under the race detector, and
# schema validation of the checked-in perf baseline.

GO ?= go

.PHONY: all build test vet race check bench bench-snapshot snapshot-check

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

check: vet build race snapshot-check

bench:
	$(GO) test -bench=. -benchtime=1x -run=^$$ ./internal/bench/

# Regenerate the checked-in perf baseline after an intentional timing change.
bench-snapshot:
	$(GO) run ./cmd/offloadbench bench-snapshot -o BENCH_fig13.json
	$(GO) test -run TestCheckedInBenchSnapshotValid ./internal/bench/

# Validate the checked-in baseline's schema and pinned timings.
snapshot-check:
	$(GO) test -run 'TestCheckedInBenchSnapshotValid|TestFig13SnapshotMatchesPinnedGuards' ./internal/bench/
