# Repro build/test entry points. `make check` is the full gate: static
# analysis, a clean build, the test suite under the race detector, and
# schema validation of the checked-in perf baseline.

GO ?= go

.PHONY: all build test vet staticcheck race check bench bench-snapshot snapshot-check bench-smoke bench-tenants tenant-smoke bench-drift drift-smoke timeline-smoke scale-smoke bench-scale bench-fleet fleet-smoke wallclock

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# Runs staticcheck when it is on PATH and skips (loudly) when it is not:
# dev containers without network access cannot `go install` it, but CI does
# and must not skip.
staticcheck:
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "staticcheck: not installed, skipping (go install honnef.co/go/tools/cmd/staticcheck@latest)"; \
	fi

race:
	$(GO) test -race ./...

check: vet staticcheck build race snapshot-check tenant-smoke drift-smoke timeline-smoke scale-smoke fleet-smoke

bench:
	$(GO) test -bench=. -benchtime=1x -benchmem -run=^$$ . ./internal/bench/ ./internal/sim/

# Regenerate the checked-in perf baseline after an intentional timing change.
bench-snapshot:
	$(GO) run ./cmd/offloadbench bench-snapshot -o BENCH_fig13.json
	$(GO) test -run TestCheckedInBenchSnapshotValid ./internal/bench/

# Validate the checked-in baseline's schema and pinned timings.
snapshot-check:
	$(GO) test -run 'TestCheckedInBenchSnapshotValid|TestFig13SnapshotMatchesPinnedGuards' ./internal/bench/

# Perf smoke: allocation budgets on the event core hot paths, the
# serial-vs-parallel determinism guard, and a byte-level diff of a
# parallel-runner snapshot against the checked-in baseline.
bench-smoke:
	$(GO) test -run 'AllocFree|TestSweepSerialParallelIdentical|TestCheckedInWallclockValid' -v ./internal/sim/ ./internal/trace/ ./internal/bench/
	$(GO) run ./cmd/offloadbench bench-snapshot -parallel 4 -o .bench_fig13.parallel.json
	cmp BENCH_fig13.json .bench_fig13.parallel.json
	rm -f .bench_fig13.parallel.json

# Regenerate the checked-in multi-tenant crossover baseline after an
# intentional timing or scheduling change.
bench-tenants:
	$(GO) run ./cmd/offloadbench bench-tenants -o BENCH_tenants.json
	$(GO) test -run TestCheckedInTenantsSnapshotValid ./internal/bench/

# Tenant smoke: validate the checked-in crossover baseline and prove the
# shared-fabric sweep (latency-bound foreground + background bulk jobs on
# one proxy worker per DPU) renders byte-identically serial vs parallel.
tenant-smoke:
	$(GO) test -run 'TestCheckedInTenantsSnapshotValid|TestTenantsSweepParallelIdentical' ./internal/bench/
	$(GO) run ./cmd/offloadbench tenants -parallel 1 > .tenants.p1.out
	$(GO) run ./cmd/offloadbench tenants -parallel 4 > .tenants.p4.out
	cmp .tenants.p1.out .tenants.p4.out
	rm -f .tenants.p1.out .tenants.p4.out

# Regenerate the checked-in mid-run-drift baseline (feedback-policy
# re-route vs frozen Measuring) after an intentional behaviour change.
bench-drift:
	$(GO) run ./cmd/offloadbench bench-drift -o BENCH_drift.json
	$(GO) test -run TestCheckedInDriftSnapshotValid ./internal/bench/

# Drift smoke: validate the checked-in drift baseline (which asserts the
# re-route claim: frozen measure degrades >= 1.5x post-arrival while
# feedback re-probes and ties host-direct) and prove the drift figure
# renders byte-identically serial vs parallel.
drift-smoke:
	$(GO) test -run 'TestCheckedInDriftSnapshotValid|TestSplitDriftWindows' ./internal/bench/
	$(GO) test -run TestDriftFigureDeterministicAcrossParallelism ./internal/figures/

# Timeline smoke: the flight-recorder zero-overhead guards (a live and a
# nil recorder both reproduce the pinned fig13 timings bit for bit), then
# the timeline subcommand at -parallel 1 vs 4 with every export — time
# series JSONL/Prometheus, per-policy Chrome traces, and the rendered
# drift-attribution table (paths stripped) — compared byte for byte.
timeline-smoke:
	$(GO) test -run 'TestTimelineRecorderMatchesFig13Exactly|TestTimelineNilRecorderMatchesFig13Exactly|TestTimelineSweepParallelIdentical' ./internal/bench/
	$(GO) run ./cmd/offloadbench timeline -iters 16 -parallel 1 -o .timeline.p1 > .timeline.p1.out
	$(GO) run ./cmd/offloadbench timeline -iters 16 -parallel 4 -o .timeline.p4 > .timeline.p4.out
	cmp .timeline.p1.jsonl .timeline.p4.jsonl
	cmp .timeline.p1.prom .timeline.p4.prom
	cmp .timeline.p1.measure.trace.json .timeline.p4.measure.trace.json
	cmp .timeline.p1.feedback.trace.json .timeline.p4.feedback.trace.json
	grep -v '^timeseries: \|^trace: ' .timeline.p1.out > .timeline.p1.tbl
	grep -v '^timeseries: \|^trace: ' .timeline.p4.out > .timeline.p4.tbl
	cmp .timeline.p1.tbl .timeline.p4.tbl
	rm -f .timeline.p1.* .timeline.p4.*

# Scale smoke: the sharded-kernel determinism guards (full fig13 snapshot
# bytes at -shards {0,2,4} vs serial), schema validation of the checked-in
# 1024-rank baseline, then a reduced 256-rank scale run at -shards 4 vs
# serial, byte-compared — the two-sided guard at the scale shape itself.
scale-smoke:
	$(GO) test -run 'TestSharded|TestCheckedInScaleSnapshotValid' ./internal/sim/ ./internal/bench/
	$(GO) run ./cmd/offloadbench scale -maxranks 256 -shards 1 -o .scale.s1.json > .scale.s1.out
	$(GO) run ./cmd/offloadbench scale -maxranks 256 -shards 4 -o .scale.s4.json > .scale.s4.out
	cmp .scale.s1.json .scale.s4.json
	rm -f .scale.s1.json .scale.s4.json .scale.s1.out .scale.s4.out

# Regenerate the checked-in 1024-rank scaling baseline after an intentional
# timing change (a few minutes of wall clock: the 1024-rank alltoall posts
# ~1M RDMA writes per iteration).
bench-scale:
	$(GO) run ./cmd/offloadbench scale -shards 0 -o BENCH_scale.json
	$(GO) test -run TestCheckedInScaleSnapshotValid ./internal/bench/

# Regenerate the checked-in mixed-fleet crossover baseline (homogeneous
# bf2 == fig13 guard + capability-aware-beats-blind margin) after an
# intentional timing or policy change.
bench-fleet:
	$(GO) run ./cmd/offloadbench bench-fleet -o BENCH_fleet.json
	$(GO) test -run TestCheckedInFleetSnapshotValid ./internal/bench/

# Fleet smoke: validate the checked-in mixed-fleet baseline (homogeneity +
# crossover claims) and prove bench-fleet regenerates it byte for byte —
# the fleet bench is deterministic, so any diff is a real change that must
# be committed deliberately via `make bench-fleet`.
fleet-smoke:
	$(GO) test -run 'TestCheckedInFleetSnapshotValid|TestFleetValidateRejects|TestNoRawPortConstantsOutsideDevice' ./internal/bench/ ./internal/device/
	$(GO) run ./cmd/offloadbench bench-fleet -o .fleet.json > .fleet.out
	cmp BENCH_fleet.json .fleet.json
	rm -f .fleet.json .fleet.out

# Re-record the wall-clock baseline (serial vs parallel fig13 sweep) on
# this host. Host-dependent: commit only from a representative machine.
wallclock:
	$(GO) run ./cmd/offloadbench wallclock -o BENCH_wallclock.json
