# Repro build/test entry points. `make check` is the full gate: static
# analysis, a clean build, and the test suite under the race detector.

GO ?= go

.PHONY: all build test vet race check bench

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

check: vet build race

bench:
	$(GO) test -bench=. -benchtime=1x -run=^$$ ./internal/bench/
