package pattern

import (
	"fmt"

	"repro/internal/baseline"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/datapath"
	"repro/internal/mem"
	"repro/internal/metrics"
	"repro/internal/policy"
	"repro/internal/sim"
	"repro/internal/span"
)

// RunOptions configure pattern execution.
type RunOptions struct {
	Nodes   int
	PPN     int // 0 = pack all ranks on as few nodes as PPN allows
	Core    core.Config
	Compute sim.Time // overlapped compute per call on every rank
	Calls   int      // GroupCall repetitions (cache behaviour shows at >1)
	Backed  bool     // payload-backed buffers (verifies data integrity)

	// Policy names an offload-policy bundle (baseline.PolicyBundle): the
	// bundle's core config replaces Core and its policy picks the datapath
	// per call. Patterns always run on proxies, so "hostdirect" is invalid.
	Policy string

	// Metrics / Spans attach observability to the run's cluster (both are
	// free in virtual time).
	Metrics *metrics.Registry
	Spans   *span.Collector
}

// RunResult reports one execution.
type RunResult struct {
	NRanks     int
	PerRank    []sim.Time // completion time per rank
	Last       sim.Time   // completion of the slowest rank
	Stats      core.Stats
	DataOK     bool // send/recv payload round-trips verified (Backed only)
	DataChecks int
}

// Run executes the spec on a fresh simulated cluster.
func Run(spec *Spec, opt RunOptions) (*RunResult, error) {
	if opt.Calls <= 0 {
		opt.Calls = 1
	}
	var eng *policy.Engine
	maxSize := 0 // spec-global, so every rank decides from the same size
	if opt.Policy != "" {
		bundle, err := baseline.PolicyBundle(opt.Policy)
		if err != nil {
			return nil, err
		}
		if !bundle.Framework {
			return nil, fmt.Errorf("pattern: policy %q needs no proxies; patterns always run on proxies", opt.Policy)
		}
		opt.Core = bundle.Core()
		eng = policy.NewEngine(bundle.New(), opt.Metrics)
		for _, op := range spec.Ops {
			if op.Size > maxSize {
				maxSize = op.Size
			}
		}
	}
	ppn := opt.PPN
	if ppn <= 0 {
		ppn = 8
	}
	nodes := opt.Nodes
	if nodes <= 0 {
		nodes = (spec.NRanks + ppn - 1) / ppn
	}
	ccfg := cluster.DefaultConfig(nodes, ppn)
	ccfg.BackedPayload = opt.Backed
	ccfg.Metrics = opt.Metrics
	ccfg.Spans = opt.Spans
	cl := cluster.New(ccfg)
	if ccfg.NP() < spec.NRanks {
		return nil, fmt.Errorf("pattern: %d ranks need more than %d nodes x %d ppn", spec.NRanks, nodes, ppn)
	}
	sites := make([]*cluster.Site, ccfg.NP())
	for i := range sites {
		sites[i] = cl.NewHostSite(cl.NodeOfRank(i), fmt.Sprintf("rank%d", i))
	}
	fw := core.New(cl, opt.Core, sites)
	fw.Start()

	res := &RunResult{NRanks: spec.NRanks, PerRank: make([]sim.Time, spec.NRanks), DataOK: true}
	for r := 0; r < spec.NRanks; r++ {
		r := r
		ops := spec.RankOps(r)
		h := fw.Host(r)
		proc := cl.K.Spawn(fmt.Sprintf("rank%d", r), func(p *sim.Proc) {
			h.Bind(p)
			bufs := make([]*mem.Buffer, len(ops))
			for i, op := range ops {
				switch op.Type {
				case core.OpSend:
					bufs[i] = sites[r].Space.Alloc(op.Size, opt.Backed)
					if opt.Backed {
						fillPattern(bufs[i].Bytes(), r, op.Tag)
					}
				case core.OpRecv:
					bufs[i] = sites[r].Space.Alloc(op.Size, opt.Backed)
				}
			}
			// One recorded group per datapath actually used: without a policy
			// that is exactly one; a measuring policy records a second group
			// when it probes the other proxy path (both replay through the
			// group caches on later calls).
			groups := make(map[datapath.Kind]*core.GroupRequest)
			groupFor := func(k datapath.Kind) *core.GroupRequest {
				g := groups[k]
				if g == nil {
					g = h.GroupStartVia(k)
					for i, op := range ops {
						switch op.Type {
						case core.OpSend:
							g.Send(bufs[i].Addr(), op.Size, op.Peer, op.Tag)
						case core.OpRecv:
							g.Recv(bufs[i].Addr(), op.Size, op.Peer, op.Tag)
						case core.OpBarrier:
							g.LocalBarrier()
						}
					}
					g.End()
					groups[k] = g
				}
				return g
			}
			for c := 0; c < opt.Calls; c++ {
				kind := h.DefaultPath()
				var q policy.Request
				if eng != nil {
					q = policy.Request{Class: policy.ClassGroup, Size: maxSize, Call: c}
					kind = eng.Decide(q).Path
					if kind == datapath.KindHostDirect {
						// Patterns only run on proxies: clamp host-direct
						// decisions (small adaptive sizes) to the default path.
						kind = h.DefaultPath()
					}
				}
				g := groupFor(kind)
				t0 := p.Now()
				h.GroupCall(g)
				if opt.Compute > 0 {
					p.AdvanceBusy(opt.Compute)
				}
				h.GroupWait(g)
				if eng != nil {
					eng.Observe(q, kind, p.Now()-t0)
				}
			}
			res.PerRank[r] = p.Now()
			if opt.Backed {
				for i, op := range ops {
					if op.Type != core.OpRecv {
						continue
					}
					res.DataChecks++
					if !checkPattern(bufs[i].Bytes(), op.Peer, op.Tag) {
						res.DataOK = false
					}
				}
			}
		})
		proc.SetShard(cl.K.ShardIndex(cl.NodeOfRank(r)))
	}
	cl.K.Run()
	if n := len(cl.K.Deadlocked); n > 0 {
		return nil, fmt.Errorf("pattern: deadlocked with %d blocked ranks (circular barrier dependency?)", n)
	}
	for _, t := range res.PerRank {
		if t > res.Last {
			res.Last = t
		}
	}
	res.Stats = fw.Stats()
	return res, nil
}

// fillPattern writes a (sender, tag)-derived byte pattern. Note: data
// checks only hold for specs where receives are not forwarded from other
// receives (each recv's matching send has a freshly filled buffer).
func fillPattern(b []byte, sender, tag int) {
	for i := range b {
		b[i] = byte(sender*13 + tag*7 + i)
	}
}

func checkPattern(b []byte, sender, tag int) bool {
	if b == nil {
		return true
	}
	for i := range b {
		if b[i] != byte(sender*13+tag*7+i) {
			return false
		}
	}
	return true
}
