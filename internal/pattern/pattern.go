// Package pattern parses and executes user-defined communication patterns
// on the offload framework — the "any generic communication pattern" the
// paper's API was designed for. A pattern is a text spec, one operation per
// line:
//
//	# ring broadcast over 4 ranks
//	0 send 1 256K 4
//	1 recv 0 256K 4
//	1 barrier
//	1 send 2 256K 4
//	...
//
// Fields: <rank> send <dst> <size> [tag] | <rank> recv <src> <size> [tag]
// | <rank> barrier. Sizes accept K/M suffixes. cmd/patternsim runs a spec
// (or a built-in preset) under a chosen mechanism and reports per-rank
// completion times and framework statistics.
package pattern

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"repro/internal/core"
)

// Op is one parsed operation.
type Op struct {
	Rank int
	Type core.OpType
	Peer int
	Size int
	Tag  int
}

// Spec is a parsed pattern.
type Spec struct {
	Ops    []Op
	NRanks int // highest rank mentioned + 1
}

// Parse reads a pattern spec.
func Parse(r io.Reader) (*Spec, error) {
	s := &Spec{}
	sc := bufio.NewScanner(r)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		op, err := parseLine(line)
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", lineNo, err)
		}
		s.Ops = append(s.Ops, op)
		if op.Rank+1 > s.NRanks {
			s.NRanks = op.Rank + 1
		}
		if op.Type != core.OpBarrier && op.Peer+1 > s.NRanks {
			s.NRanks = op.Peer + 1
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return s, nil
}

func parseLine(line string) (Op, error) {
	f := strings.Fields(line)
	if len(f) < 2 {
		return Op{}, fmt.Errorf("too few fields in %q", line)
	}
	rank, err := strconv.Atoi(f[0])
	if err != nil || rank < 0 {
		return Op{}, fmt.Errorf("bad rank %q", f[0])
	}
	switch f[1] {
	case "barrier":
		return Op{Rank: rank, Type: core.OpBarrier}, nil
	case "send", "recv":
		if len(f) < 4 {
			return Op{}, fmt.Errorf("%s needs <peer> <size> [tag]", f[1])
		}
		peer, err := strconv.Atoi(f[2])
		if err != nil || peer < 0 {
			return Op{}, fmt.Errorf("bad peer %q", f[2])
		}
		size, err := ParseSize(f[3])
		if err != nil {
			return Op{}, err
		}
		tag := 0
		if len(f) >= 5 {
			if tag, err = strconv.Atoi(f[4]); err != nil {
				return Op{}, fmt.Errorf("bad tag %q", f[4])
			}
		}
		typ := core.OpSend
		if f[1] == "recv" {
			typ = core.OpRecv
		}
		return Op{Rank: rank, Type: typ, Peer: peer, Size: size, Tag: tag}, nil
	default:
		return Op{}, fmt.Errorf("unknown op %q", f[1])
	}
}

// ParseSize parses "4096", "64K", "2M".
func ParseSize(s string) (int, error) {
	mult := 1
	switch {
	case strings.HasSuffix(s, "K"), strings.HasSuffix(s, "k"):
		mult, s = 1<<10, s[:len(s)-1]
	case strings.HasSuffix(s, "M"), strings.HasSuffix(s, "m"):
		mult, s = 1<<20, s[:len(s)-1]
	}
	v, err := strconv.Atoi(s)
	if err != nil || v <= 0 {
		return 0, fmt.Errorf("bad size %q", s)
	}
	return v * mult, nil
}

// Validate checks that every send has a matching recv (same pair, tag and
// size, in order) — the framework requirement "for every Send_Offload there
// should be a matching Receive_Offload".
func (s *Spec) Validate() error {
	type key struct{ src, dst, tag int }
	sends := map[key][]int{}
	recvs := map[key][]int{}
	for _, op := range s.Ops {
		switch op.Type {
		case core.OpSend:
			k := key{op.Rank, op.Peer, op.Tag}
			sends[k] = append(sends[k], op.Size)
		case core.OpRecv:
			k := key{op.Peer, op.Rank, op.Tag}
			recvs[k] = append(recvs[k], op.Size)
		}
	}
	for k, ss := range sends {
		rs := recvs[k]
		if len(rs) != len(ss) {
			return fmt.Errorf("unmatched transfers %d->%d tag %d: %d sends, %d recvs",
				k.src, k.dst, k.tag, len(ss), len(rs))
		}
		for i := range ss {
			if ss[i] != rs[i] {
				return fmt.Errorf("size mismatch %d->%d tag %d: send %d vs recv %d",
					k.src, k.dst, k.tag, ss[i], rs[i])
			}
		}
	}
	for k, rs := range recvs {
		if len(sends[k]) != len(rs) {
			return fmt.Errorf("recv without send %d->%d tag %d", k.src, k.dst, k.tag)
		}
	}
	return nil
}

// RankOps returns the operations of one rank, in spec order.
func (s *Spec) RankOps(rank int) []Op {
	var out []Op
	for _, op := range s.Ops {
		if op.Rank == rank {
			out = append(out, op)
		}
	}
	return out
}

// Presets generate common patterns.

// Ring returns a ring broadcast over np ranks rooted at 0 (Listing 5).
func Ring(np, size int) *Spec {
	s := &Spec{NRanks: np}
	add := func(op Op) { s.Ops = append(s.Ops, op) }
	for r := 0; r < np; r++ {
		right := (r + 1) % np
		if r == 0 {
			add(Op{Rank: 0, Type: core.OpSend, Peer: right, Size: size})
			add(Op{Rank: 0, Type: core.OpBarrier})
		} else {
			add(Op{Rank: r, Type: core.OpRecv, Peer: r - 1, Size: size})
			add(Op{Rank: r, Type: core.OpBarrier})
			if right != 0 {
				add(Op{Rank: r, Type: core.OpSend, Peer: right, Size: size})
			}
		}
	}
	return s
}

// Alltoall returns a scatter-destination personalized exchange.
func Alltoall(np, size int) *Spec {
	s := &Spec{NRanks: np}
	for r := 0; r < np; r++ {
		for i := 1; i < np; i++ {
			src := (r - i + np) % np
			s.Ops = append(s.Ops, Op{Rank: r, Type: core.OpRecv, Peer: src, Size: size, Tag: src})
		}
		for i := 1; i < np; i++ {
			dst := (r + i) % np
			s.Ops = append(s.Ops, Op{Rank: r, Type: core.OpSend, Peer: dst, Size: size, Tag: r})
		}
	}
	return s
}

// Chatty returns a ring exchange where every rank sends k tagged messages
// of size bytes to its right neighbour and receives k from its left. With
// small sizes the group is bound by per-op proxy handling and injection
// overhead rather than payload bytes — the load shape that saturates a DPU
// worker while leaving host ports nearly idle (the drift bench's background
// traffic).
func Chatty(np, k, size int) *Spec {
	s := &Spec{NRanks: np}
	for r := 0; r < np; r++ {
		right := (r + 1) % np
		left := (r - 1 + np) % np
		for i := 0; i < k; i++ {
			s.Ops = append(s.Ops,
				Op{Rank: r, Type: core.OpSend, Peer: right, Size: size, Tag: i},
				Op{Rank: r, Type: core.OpRecv, Peer: left, Size: size, Tag: i})
		}
	}
	return s
}

// Neighbor returns a 1D nearest-neighbour halo exchange.
func Neighbor(np, size int) *Spec {
	s := &Spec{NRanks: np}
	for r := 0; r < np; r++ {
		if r > 0 {
			s.Ops = append(s.Ops,
				Op{Rank: r, Type: core.OpSend, Peer: r - 1, Size: size, Tag: 1},
				Op{Rank: r, Type: core.OpRecv, Peer: r - 1, Size: size, Tag: 2})
		}
		if r < np-1 {
			s.Ops = append(s.Ops,
				Op{Rank: r, Type: core.OpSend, Peer: r + 1, Size: size, Tag: 2},
				Op{Rank: r, Type: core.OpRecv, Peer: r + 1, Size: size, Tag: 1})
		}
	}
	return s
}
