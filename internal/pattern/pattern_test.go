package pattern

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/sim"
)

func TestParseBasics(t *testing.T) {
	spec, err := Parse(strings.NewReader(`
# ring fragment
0 send 1 64K 4
1 recv 0 64K 4
1 barrier
`))
	if err != nil {
		t.Fatal(err)
	}
	if spec.NRanks != 2 || len(spec.Ops) != 3 {
		t.Fatalf("NRanks=%d ops=%d", spec.NRanks, len(spec.Ops))
	}
	if spec.Ops[0].Type != core.OpSend || spec.Ops[0].Size != 64<<10 || spec.Ops[0].Tag != 4 {
		t.Fatalf("bad first op: %+v", spec.Ops[0])
	}
	if spec.Ops[2].Type != core.OpBarrier {
		t.Fatal("barrier not parsed")
	}
}

func TestParseSizeSuffixes(t *testing.T) {
	cases := map[string]int{"512": 512, "4K": 4096, "4k": 4096, "2M": 2 << 20}
	for in, want := range cases {
		got, err := ParseSize(in)
		if err != nil || got != want {
			t.Fatalf("ParseSize(%q) = %d, %v; want %d", in, got, err, want)
		}
	}
	for _, bad := range []string{"", "-4", "0", "4X", "K"} {
		if _, err := ParseSize(bad); err == nil {
			t.Fatalf("ParseSize(%q) accepted", bad)
		}
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"x send 1 4K",   // bad rank
		"0 frobnicate",  // unknown op
		"0 send 1",      // missing size
		"0 send -1 4K",  // bad peer
		"0 send 1 4K q", // bad tag
	}
	for _, c := range cases {
		if _, err := Parse(strings.NewReader(c)); err == nil {
			t.Fatalf("accepted %q", c)
		}
	}
}

func TestValidateRejectsUnmatched(t *testing.T) {
	if _, err := Parse(strings.NewReader("0 send 1 4K")); err == nil {
		t.Fatal("unmatched send accepted")
	}
	if _, err := Parse(strings.NewReader("1 recv 0 4K")); err == nil {
		t.Fatal("unmatched recv accepted")
	}
	if _, err := Parse(strings.NewReader("0 send 1 4K\n1 recv 0 8K")); err == nil {
		t.Fatal("size mismatch accepted")
	}
}

func TestPresetsValid(t *testing.T) {
	for name, spec := range map[string]*Spec{
		"ring":     Ring(5, 4096),
		"alltoall": Alltoall(4, 4096),
		"neighbor": Neighbor(6, 4096),
	} {
		if err := spec.Validate(); err != nil {
			t.Fatalf("%s preset invalid: %v", name, err)
		}
	}
}

func TestRunRingIntegrityAndOverlap(t *testing.T) {
	spec := Ring(6, 64<<10)
	res, err := Run(spec, RunOptions{
		PPN: 2, Core: core.DefaultConfig(),
		Compute: 2 * sim.Millisecond, Calls: 2, Backed: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.DataOK {
		t.Fatal("data corrupted")
	}
	// The whole double-call run must take barely more than the compute
	// (2 calls x 2ms): the ring progresses on the proxies.
	if res.Last > 2*2*sim.Millisecond+500*sim.Microsecond {
		t.Fatalf("ring not overlapped: finished at %v", res.Last)
	}
	if res.Stats.GroupHits == 0 {
		t.Fatal("second call should hit the group cache")
	}
}

func TestRunAlltoallBothMechanisms(t *testing.T) {
	for _, mech := range []core.Mechanism{core.MechGVMI, core.MechStaging} {
		cfg := core.DefaultConfig()
		cfg.Mechanism = mech
		res, err := Run(Alltoall(6, 8<<10), RunOptions{PPN: 3, Core: cfg, Backed: true})
		if err != nil {
			t.Fatalf("%v: %v", mech, err)
		}
		if !res.DataOK || res.DataChecks != 6*5 {
			t.Fatalf("%v: integrity %v, checks %d", mech, res.DataOK, res.DataChecks)
		}
		if mech == core.MechStaging && res.Stats.StagedOps == 0 {
			t.Fatal("staging mechanism did not stage")
		}
	}
}

func TestRunRejectsOversubscription(t *testing.T) {
	if _, err := Run(Ring(16, 1024), RunOptions{Nodes: 1, PPN: 2, Core: core.DefaultConfig()}); err == nil {
		t.Fatal("expected capacity error")
	}
}
