// Package hpl implements the High-Performance-Linpack-like workload of
// Section VIII-D: a right-looking blocked LU factorization whose panel
// broadcast is overlapped with the trailing-matrix update through a
// look-ahead, in four library variants:
//
//   - Ring1: the stock HPL-1ring algorithm — a ring broadcast written with
//     MPI_Isend/Irecv and progressed by polling MPI_Test between compute
//     chunks (the paper's Listing 1; forwarding is delayed by up to one
//     compute chunk per hop);
//   - HostIbcast: MPI_Ibcast (binomial) progressed the same way
//     ("IntelMPI-Ibcast");
//   - Offload: the framework's ring Ibcast recorded with Group primitives
//     and progressed by DPU proxies — no CPU intervention ("Proposed" with
//     the GVMI mechanism, "BluesMPI" with the staging preset).
//
// The matrix is distributed column-block-cyclically over all ranks (a 1D
// layout; the paper's HPL uses a PxQ grid, but the pattern under study —
// an ordered panel broadcast racing a local update — is one-dimensional
// along the broadcast ring, see DESIGN.md). With payload-backed buffers the
// factorization is performed with real float64 arithmetic and validated
// against a serial reference; figure-scale runs model the compute and move
// size-only panels.
package hpl

import (
	"fmt"
	"math"

	"repro/internal/bench"
	"repro/internal/coll"
	"repro/internal/mem"
	"repro/internal/mpi"
	"repro/internal/sim"
)

// Variant selects the broadcast implementation.
type Variant int

// Broadcast variants.
const (
	Ring1      Variant = iota // MPI point-to-point ring with Test polling
	HostIbcast                // MPI_Ibcast with Test polling
	Offload                   // framework Group-primitive ring on the DPU
)

// String implements fmt.Stringer.
func (v Variant) String() string {
	switch v {
	case Ring1:
		return "1ring"
	case HostIbcast:
		return "ibcast"
	default:
		return "offload"
	}
}

// Params configures one run.
type Params struct {
	N  int // matrix order
	NB int // block size
	// FlopRate is the modelled per-core DGEMM throughput in flops/ns.
	FlopRate float64
	// PollChunk is the compute granularity between MPI_Test polls for the
	// host variants (Listing 1's do_compute unit).
	PollChunk sim.Time
	// MaxPollsPerUpdate caps the number of poll slices per trailing update
	// (bounds simulation cost for huge problems; the effective chunk is
	// max(PollChunk, update/MaxPollsPerUpdate)).
	MaxPollsPerUpdate int
	// Variant selects the broadcast implementation.
	Variant Variant
}

// DefaultParams returns Broadwell-ish settings: ~40 GFLOP/s per core is
// MKL DGEMM territory on a 3.4 GHz AVX2 part.
func DefaultParams(n, nb int, v Variant) Params {
	return Params{N: n, NB: nb, FlopRate: 40.0, PollChunk: 50 * sim.Microsecond, MaxPollsPerUpdate: 64, Variant: v}
}

// Result summarizes one run.
type Result struct {
	Scheme  string
	Variant Variant
	N, NB   int
	Nodes   int
	PPN     int
	Total   sim.Time
	GFlops  float64 // modelled achieved rate: (2/3 N^3) / Total
}

// rank-local state for the factorization.
type state struct {
	r    *mpi.Rank
	ops  coll.Ops
	par  Params
	np   int
	me   int
	nblk int

	// Real-math mode: local columns (full length N each), indexed by global
	// column; nil entries for remote columns. Nil in modelled mode.
	cols [][]float64

	// Panel exchange buffers (double-buffered for look-ahead).
	panels [2]*mem.Buffer
}

// ownerOf returns the rank owning block k.
func (s *state) ownerOf(k int) int { return k % s.np }

// rowsAt returns the panel height at step k.
func (s *state) rowsAt(k int) int { return s.par.N - k*s.par.NB }

// panelBytes returns the broadcast payload at step k.
func (s *state) panelBytes(k int) int { return s.rowsAt(k) * s.par.NB * 8 }

// localTrailingCols counts this rank's columns in blocks > k.
func (s *state) localTrailingCols(k int) int {
	n := 0
	for b := k + 1; b < s.nblk; b++ {
		if s.ownerOf(b) == s.me {
			n += s.blockWidth(b)
		}
	}
	return n
}

func (s *state) blockWidth(b int) int {
	w := s.par.N - b*s.par.NB
	if w > s.par.NB {
		w = s.par.NB
	}
	return w
}

// Run executes the benchmark for one scheme/variant on a fresh environment.
func Run(opt bench.Options, par Params) Result {
	e := bench.Build(opt)
	np := e.Cl.Cfg.NP()
	totals := make([]sim.Time, np)

	e.Launch(func(r *mpi.Rank, ops coll.Ops, _ coll.P2P) {
		s := newState(r, ops, par)
		r.Barrier()
		t0 := r.Now()
		s.factorize()
		r.Barrier()
		totals[r.RankID()] = r.Now() - t0
	})

	res := Result{
		Scheme: opt.Scheme, Variant: par.Variant, N: par.N, NB: par.NB,
		Nodes: opt.Nodes, PPN: opt.PPN,
	}
	for _, t := range totals {
		if t > res.Total {
			res.Total = t
		}
	}
	if res.Total > 0 {
		res.GFlops = 2.0 / 3.0 * float64(par.N) * float64(par.N) * float64(par.N) / float64(res.Total)
	}
	return res
}

func newState(r *mpi.Rank, ops coll.Ops, par Params) *state {
	if par.N%par.NB != 0 {
		panic(fmt.Sprintf("hpl: N=%d not a multiple of NB=%d", par.N, par.NB))
	}
	s := &state{
		r: r, ops: ops, par: par,
		np: r.Size(), me: r.RankID(),
		nblk: par.N / par.NB,
	}
	cap := par.N * par.NB * 8
	s.panels[0] = r.Alloc(cap)
	s.panels[1] = r.Alloc(cap)
	if s.panels[0].Backed() {
		s.initMatrix()
	}
	return s
}

// initMatrix builds the deterministic, diagonally dominant test matrix
// (LU without pivoting stays stable): A[i][j] = seed(i,j) + N·[i==j].
func (s *state) initMatrix() {
	n := s.par.N
	s.cols = make([][]float64, n)
	for c := 0; c < n; c++ {
		if s.ownerOf(c/s.par.NB) != s.me {
			continue
		}
		col := make([]float64, n)
		for i := 0; i < n; i++ {
			col[i] = Entry(n, i, c)
		}
		s.cols[c] = col
	}
}

// Entry is the deterministic test-matrix generator shared with the serial
// reference.
func Entry(n, i, j int) float64 {
	v := math.Sin(float64(i*131+j*7+1)) * 0.5
	if i == j {
		v += float64(n)
	}
	return v
}

// factorize runs the right-looking blocked LU with depth-1 look-ahead:
// while panel k is broadcast, ranks update their trailing columns with
// panel k-1.
func (s *state) factorize() {
	var prev *mem.Buffer // panel k-1 as received
	var prevK = -1
	for k := 0; k < s.nblk; k++ {
		owner := s.ownerOf(k)
		cur := s.panels[k%2]

		// The owner must bring panel k's columns up to date with panel k-1
		// before factoring (the look-ahead's critical-path update).
		if s.me == owner {
			if prevK >= 0 {
				s.updateBlock(prevK, prev, k)
			}
			s.factorPanel(k, cur)
		}

		bc := s.startBcast(k, cur, owner)

		// Overlap: trailing update with panel k-1 races broadcast k.
		if prevK >= 0 {
			s.updateTrailing(prevK, prev, k, bc.poll)
		}
		s.waitBcast(bc)

		prev, prevK = cur, k
	}
}

// compute advances modelled compute time for the given flops.
func (s *state) compute(flops float64) {
	s.r.Compute(sim.Time(flops / s.par.FlopRate))
}

// computePolled advances modelled compute in PollChunk slices, invoking
// poll() between slices (the Listing 1 pattern).
func (s *state) computePolled(flops float64, poll func()) {
	total := sim.Time(flops / s.par.FlopRate)
	chunk := s.par.PollChunk
	if s.par.MaxPollsPerUpdate > 0 {
		if c := total / sim.Time(s.par.MaxPollsPerUpdate); c > chunk {
			chunk = c
		}
	}
	for total > 0 {
		c := chunk
		if poll == nil || c > total {
			c = total
		}
		s.r.Compute(c)
		total -= c
		if poll != nil {
			poll()
		}
	}
}

// factorFlops models the panel factorization cost.
func (s *state) factorFlops(k int) float64 {
	rows := float64(s.rowsAt(k))
	nb := float64(s.par.NB)
	return rows * nb * nb
}

// updateFlops models the trailing update cost for ncols local columns.
func (s *state) updateFlops(k, ncols int) float64 {
	rows := float64(s.rowsAt(k) - s.par.NB) // rows below panel k's diagonal block
	if rows < 0 {
		rows = 0
	}
	nb := float64(s.par.NB)
	c := float64(ncols)
	return c*nb*nb + 2*rows*nb*c // triangular solves + GEMM
}
