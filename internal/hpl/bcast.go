package hpl

import (
	"repro/internal/coll"
	"repro/internal/mem"
	"repro/internal/mpi"
)

// bcastHandle tracks one in-flight panel broadcast in whichever variant.
type bcastHandle struct {
	s     *state
	k     int
	owner int
	buf   *mem.Buffer
	bytes int

	// Ring1 state.
	rq        *mpi.Request
	sq        *mpi.Request
	forwarded bool

	// HostIbcast state.
	cq *mpi.CollRequest

	// Offload state.
	oq coll.Request
}

// ringTag separates per-step ring traffic from other MPI activity.
func ringTag(k int) int { return 4096 + k }

// startBcast begins the panel broadcast for step k. For Ring1 the owner
// sends to its right neighbour and everyone else posts the receive from the
// left; forwarding happens in poll(), only when the CPU gets there — the
// Listing 1 limitation. The offload variant hands the whole ring to the
// proxies.
func (s *state) startBcast(k int, buf *mem.Buffer, owner int) *bcastHandle {
	bc := &bcastHandle{s: s, k: k, owner: owner, buf: buf, bytes: s.panelBytes(k)}
	if s.np == 1 {
		return bc
	}
	switch s.par.Variant {
	case Ring1:
		right := (s.me + 1) % s.np
		if s.me == owner {
			if right != owner {
				bc.sq = s.r.Isend(buf.Addr(), bc.bytes, right, ringTag(k))
			}
			bc.forwarded = true
		} else {
			left := (s.me - 1 + s.np) % s.np
			bc.rq = s.r.Irecv(buf.Addr(), bc.bytes, left, ringTag(k))
		}
	case HostIbcast:
		bc.cq = s.r.Ibcast(buf.Addr(), bc.bytes, owner)
	case Offload:
		bc.oq = s.ops.Ibcast(0, buf.Addr(), bc.bytes, owner)
	}
	return bc
}

// poll progresses the broadcast from the host CPU (between compute chunks).
// Ring1 forwards the panel to the right neighbour once it has arrived.
func (bc *bcastHandle) poll() {
	s := bc.s
	if s.np == 1 {
		return
	}
	switch s.par.Variant {
	case Ring1:
		if bc.rq != nil && !bc.forwarded && s.r.Test(bc.rq) {
			right := (s.me + 1) % s.np
			if right != bc.owner {
				bc.sq = s.r.Isend(bc.buf.Addr(), bc.bytes, right, ringTag(bc.k))
			}
			bc.forwarded = true
		}
	case HostIbcast:
		s.r.TestColl(bc.cq)
	case Offload:
		// Progresses on the DPU; nothing for the CPU to do.
	}
}

// waitBcast completes the broadcast: the rank must hold the panel, and any
// forwarding it owes the ring must be finished before the buffer can be
// reused.
func (s *state) waitBcast(bc *bcastHandle) {
	if s.np == 1 {
		return
	}
	switch s.par.Variant {
	case Ring1:
		if bc.rq != nil {
			s.r.Wait(bc.rq)
			if !bc.forwarded {
				right := (s.me + 1) % s.np
				if right != bc.owner {
					bc.sq = s.r.Isend(bc.buf.Addr(), bc.bytes, right, ringTag(bc.k))
				}
				bc.forwarded = true
			}
		}
		if bc.sq != nil {
			s.r.Wait(bc.sq)
		}
	case HostIbcast:
		s.r.WaitColl(bc.cq)
	case Offload:
		s.ops.Wait(bc.oq)
	}
}
