package hpl

import (
	"math"
	"testing"

	"repro/internal/baseline"
	"repro/internal/bench"
	"repro/internal/coll"
	"repro/internal/mpi"
	"repro/internal/sim"
)

// TestSerialLUReconstructs checks that L·U rebuilds the generator matrix:
// L is unit lower triangular (L[i][k] = cols[k][i] for i > k), U is upper
// triangular (U[k][j] = cols[j][k] for k <= j).
func TestSerialLUReconstructs(t *testing.T) {
	const n, nb = 32, 4
	cols := SerialLU(n, nb)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			var sum float64
			for k := 0; k <= min(i, j); k++ {
				l := 1.0
				if k < i {
					l = cols[k][i]
				}
				sum += l * cols[j][k]
			}
			want := Entry(n, i, j)
			if math.Abs(sum-want) > 1e-8*float64(n) {
				t.Fatalf("LU[%d][%d] = %v, want %v", i, j, sum, want)
			}
		}
	}
}

// runLU runs the distributed factorization with real math and compares the
// resulting factors against the serial reference.
func runLU(t *testing.T, scheme string, variant Variant, nodes, ppn, n, nb int) Result {
	t.Helper()
	e := bench.Build(bench.Options{Nodes: nodes, PPN: ppn, Scheme: scheme, Backed: true})
	ref := SerialLU(n, nb)
	par := DefaultParams(n, nb, variant)
	par.PollChunk = 5 * sim.Microsecond
	np := e.Cl.Cfg.NP()
	totals := make([]sim.Time, np)

	e.Launch(func(r *mpi.Rank, ops coll.Ops, _ coll.P2P) {
		s := newState(r, ops, par)
		r.Barrier()
		t0 := r.Now()
		s.factorize()
		r.Barrier()
		totals[r.RankID()] = r.Now() - t0
		// Compare local columns with the reference factors.
		for c := 0; c < n; c++ {
			if s.cols[c] == nil {
				continue
			}
			for i := 0; i < n; i++ {
				if math.Abs(s.cols[c][i]-ref[c][i]) > 1e-8*float64(n) {
					t.Errorf("%s/%v: rank %d col %d row %d = %v, want %v",
						scheme, variant, r.RankID(), c, i, s.cols[c][i], ref[c][i])
					return
				}
			}
		}
	})
	res := Result{Scheme: scheme, Variant: variant, N: n, NB: nb}
	for _, d := range totals {
		if d > res.Total {
			res.Total = d
		}
	}
	return res
}

func TestDistributedLURing1(t *testing.T) {
	runLU(t, baseline.NameIntelMPI, Ring1, 2, 2, 64, 8)
}

func TestDistributedLUHostIbcast(t *testing.T) {
	runLU(t, baseline.NameIntelMPI, HostIbcast, 2, 2, 64, 8)
}

func TestDistributedLUOffloadGVMI(t *testing.T) {
	runLU(t, baseline.NameProposed, Offload, 2, 2, 64, 8)
}

func TestDistributedLUOffloadStaging(t *testing.T) {
	runLU(t, baseline.NameBluesMPI, Offload, 2, 2, 64, 8)
}

func TestDistributedLUUnevenRanks(t *testing.T) {
	// 3 ranks, 8 blocks: uneven cyclic distribution.
	runLU(t, baseline.NameProposed, Offload, 3, 1, 64, 8)
}

func TestModeledRunProducesTimes(t *testing.T) {
	for _, v := range []Variant{Ring1, HostIbcast, Offload} {
		scheme := baseline.NameIntelMPI
		if v == Offload {
			scheme = baseline.NameProposed
		}
		res := Run(bench.Options{Nodes: 2, PPN: 2, Scheme: scheme}, DefaultParams(1024, 128, v))
		if res.Total <= 0 || res.GFlops <= 0 {
			t.Fatalf("%v: bad result %+v", v, res)
		}
		t.Logf("%v: total=%v gflops=%.2f", v, res.Total, res.GFlops)
	}
}

func TestVariantStrings(t *testing.T) {
	if Ring1.String() != "1ring" || HostIbcast.String() != "ibcast" || Offload.String() != "offload" {
		t.Fatal("variant names wrong")
	}
}
