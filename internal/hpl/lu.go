package hpl

import (
	"encoding/binary"
	"math"

	"repro/internal/mem"
)

// Panel wire format: column-major rectangle of rowsAt(k) x NB float64s,
// rows k*NB .. N-1 of the factored panel columns (L11+U11 block plus L21).

func putF64(b []byte, v float64) { binary.LittleEndian.PutUint64(b, math.Float64bits(v)) }
func getF64(b []byte) float64    { return math.Float64frombits(binary.LittleEndian.Uint64(b)) }

// panelElem reads element (i, j) of the packed panel for step k, where i is
// the global row (>= k*NB) and j the panel column index.
func (s *state) panelElem(buf *mem.Buffer, k, i, j int) float64 {
	rows := s.rowsAt(k)
	off := (j*rows + (i - k*s.par.NB)) * 8
	return getF64(buf.Bytes()[off:])
}

// factorPanel factorizes block column k in place (real-math mode) and packs
// it into buf; in modelled mode it only charges the compute time.
func (s *state) factorPanel(k int, buf *mem.Buffer) {
	s.compute(s.factorFlops(k))
	if s.cols == nil {
		return
	}
	n, nb := s.par.N, s.par.NB
	base := k * nb
	for j := 0; j < nb; j++ {
		col := s.cols[base+j]
		piv := col[base+j]
		for i := base + j + 1; i < n; i++ {
			col[i] /= piv
		}
		for m := j + 1; m < nb; m++ {
			cm := s.cols[base+m]
			mult := cm[base+j]
			if mult == 0 {
				continue
			}
			for i := base + j + 1; i < n; i++ {
				cm[i] -= col[i] * mult
			}
		}
	}
	// Pack rows base..n-1 of the nb panel columns.
	rows := s.rowsAt(k)
	b := buf.Bytes()
	for j := 0; j < nb; j++ {
		col := s.cols[base+j]
		off := j * rows * 8
		for i := base; i < n; i++ {
			putF64(b[off+(i-base)*8:], col[i])
		}
	}
}

// updateColumn applies panel k to one local column c:
// a triangular solve for the U block followed by a GEMV on the rows below.
func (s *state) updateColumn(panel *mem.Buffer, k, c int) {
	n, nb := s.par.N, s.par.NB
	base := k * nb
	col := s.cols[c]
	// Forward substitution with the unit-lower L11: u_j = a_j - sum L[j,m] u_m.
	for j := 0; j < nb; j++ {
		sum := col[base+j]
		for m := 0; m < j; m++ {
			sum -= s.panelElem(panel, k, base+j, m) * col[base+m]
		}
		col[base+j] = sum
	}
	// Rows below the panel: a_i -= L21[i,:] * u.
	for i := base + nb; i < n; i++ {
		sum := col[i]
		for j := 0; j < nb; j++ {
			sum -= s.panelElem(panel, k, i, j) * col[base+j]
		}
		col[i] = sum
	}
}

// updateBlock updates this rank's columns of block b with panel k
// (the look-ahead's critical-path update before factoring b).
func (s *state) updateBlock(k int, panel *mem.Buffer, b int) {
	w := s.blockWidth(b)
	s.compute(s.updateFlops(k, w))
	if s.cols == nil {
		return
	}
	for j := 0; j < w; j++ {
		s.updateColumn(panel, k, b*s.par.NB+j)
	}
}

// updateTrailing applies panel k to all of this rank's columns in blocks
// > k, except block skip (already updated on the look-ahead path). The
// modelled compute is chunked with poll() in between (Listing 1's pattern);
// poll may be nil.
func (s *state) updateTrailing(k int, panel *mem.Buffer, skip int, poll func()) {
	ncols := 0
	for b := k + 1; b < s.nblk; b++ {
		if b != skip && s.ownerOf(b) == s.me {
			ncols += s.blockWidth(b)
		}
	}
	if ncols > 0 {
		s.computePolled(s.updateFlops(k, ncols), poll)
		if s.cols != nil {
			for b := k + 1; b < s.nblk; b++ {
				if b == skip || s.ownerOf(b) != s.me {
					continue
				}
				for j := 0; j < s.blockWidth(b); j++ {
					s.updateColumn(panel, k, b*s.par.NB+j)
				}
			}
		}
	} else if poll != nil {
		// Nothing to compute: still give the broadcast a poll.
		poll()
	}
}

// SerialLU is the reference factorization used by tests: the same blocked
// right-looking algorithm on a full local matrix (column-major).
func SerialLU(n, nb int) [][]float64 {
	cols := make([][]float64, n)
	for c := 0; c < n; c++ {
		col := make([]float64, n)
		for i := 0; i < n; i++ {
			col[i] = Entry(n, i, c)
		}
		cols[c] = col
	}
	for k := 0; k < n/nb; k++ {
		base := k * nb
		// Panel factorization.
		for j := 0; j < nb; j++ {
			col := cols[base+j]
			piv := col[base+j]
			for i := base + j + 1; i < n; i++ {
				col[i] /= piv
			}
			for m := j + 1; m < nb; m++ {
				cm := cols[base+m]
				mult := cm[base+j]
				for i := base + j + 1; i < n; i++ {
					cm[i] -= col[i] * mult
				}
			}
		}
		// Trailing update.
		for c := base + nb; c < n; c++ {
			col := cols[c]
			for j := 0; j < nb; j++ {
				sum := col[base+j]
				for m := 0; m < j; m++ {
					sum -= cols[base+m][base+j] * col[base+m]
				}
				col[base+j] = sum
			}
			for i := base + nb; i < n; i++ {
				sum := col[i]
				for j := 0; j < nb; j++ {
					sum -= cols[base+j][i] * col[base+j]
				}
				col[i] = sum
			}
		}
	}
	return cols
}
