package stencil

import (
	"testing"

	"repro/internal/baseline"
	"repro/internal/bench"
)

func TestDecompose3Factors(t *testing.T) {
	for _, np := range []int{1, 2, 3, 4, 8, 12, 64, 512} {
		g := Decompose3(np)
		if g.PX*g.PY*g.PZ != np {
			t.Fatalf("np=%d: %v does not multiply out", np, g)
		}
	}
	if g := Decompose3(64); g.PX != 4 || g.PY != 4 || g.PZ != 4 {
		t.Fatalf("Decompose3(64) = %v, want cubic 4x4x4", g)
	}
	if g := Decompose3(512); g.PX != 8 || g.PY != 8 || g.PZ != 8 {
		t.Fatalf("Decompose3(512) = %v, want 8x8x8", g)
	}
}

func TestCoordsRoundTrip(t *testing.T) {
	g := Decompose3(24)
	for r := 0; r < 24; r++ {
		x, y, z := g.Coords(r)
		if g.RankAt(x, y, z) != r {
			t.Fatalf("rank %d -> (%d,%d,%d) -> %d", r, x, y, z, g.RankAt(x, y, z))
		}
	}
}

func TestNeighboursSymmetric(t *testing.T) {
	g := Decompose3(27)
	for r := 0; r < 27; r++ {
		for _, nb := range g.neighbours(r) {
			found := false
			for _, back := range g.neighbours(nb) {
				if back == r {
					found = true
				}
			}
			if !found {
				t.Fatalf("neighbour relation not symmetric: %d -> %d", r, nb)
			}
		}
	}
	// Interior rank of a 3x3x3 grid has all 6 neighbours.
	if n := len(g.neighbours(g.RankAt(1, 1, 1))); n != 6 {
		t.Fatalf("interior rank has %d neighbours, want 6", n)
	}
	// Corner has 3.
	if n := len(g.neighbours(g.RankAt(0, 0, 0))); n != 3 {
		t.Fatalf("corner rank has %d neighbours, want 3", n)
	}
}

func TestRunSchemes(t *testing.T) {
	for _, scheme := range []string{baseline.NameIntelMPI, baseline.NameProposed} {
		res := Run(bench.Options{Nodes: 2, PPN: 4, Scheme: scheme}, 128, 1, 2)
		if res.Pure <= 0 || res.Overall <= 0 {
			t.Fatalf("%s: bad result %+v", scheme, res)
		}
		t.Logf("%s: pure=%v overall=%v overlap=%.1f%%", scheme, res.Pure, res.Overall, res.Overlap)
	}
}

func TestOffloadOverlapBeatsHost(t *testing.T) {
	// With large faces (rendezvous territory) the offloaded stencil must
	// overlap better than the host baseline (Figures 11/12).
	host := Run(bench.Options{Nodes: 4, PPN: 2, Scheme: baseline.NameIntelMPI}, 512, 1, 2)
	off := Run(bench.Options{Nodes: 4, PPN: 2, Scheme: baseline.NameProposed}, 512, 1, 2)
	if off.Overlap <= host.Overlap {
		t.Fatalf("offload overlap %.1f%% <= host overlap %.1f%%", off.Overlap, host.Overlap)
	}
	if off.Overall >= host.Overall {
		t.Fatalf("offload overall %v >= host overall %v", off.Overall, host.Overall)
	}
}
