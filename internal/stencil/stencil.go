// Package stencil implements the in-house 3D-Stencil overlap benchmark of
// Section VIII-A: a near-neighbour halo exchange (up to 6 neighbours in a
// 3D process grid) posted with nonblocking point-to-point operations and
// overlapped with dummy compute, measured OMB-style.
//
// With the Basic-primitive backend, inter-node faces are progressed by DPU
// proxies while intra-node faces fall back to host MPI — which is why the
// offloaded overlap plateaus near 78% rather than 100% (the paper makes the
// same observation).
package stencil

import (
	"repro/internal/bench"
	"repro/internal/coll"
	"repro/internal/mem"
	"repro/internal/mpi"
	"repro/internal/sim"
)

// Result summarizes one stencil run.
type Result struct {
	Scheme  string
	N       int // global cube edge
	Nodes   int
	PPN     int
	Iters   int
	Pure    sim.Time // halo exchange alone, per iteration (max over ranks)
	Compute sim.Time // injected compute per iteration
	Overall sim.Time // exchange + compute overlapped, per iteration
	Overlap float64  // percent, OMB formula
}

// Grid3 is the 3D process-grid decomposition of np ranks.
type Grid3 struct {
	PX, PY, PZ int
}

// Decompose3 factors np into three near-equal factors (largest first).
func Decompose3(np int) Grid3 {
	best := Grid3{np, 1, 1}
	bestScore := score3(best)
	for px := 1; px <= np; px++ {
		if np%px != 0 {
			continue
		}
		rem := np / px
		for py := 1; py <= rem; py++ {
			if rem%py != 0 {
				continue
			}
			g := Grid3{px, py, rem / py}
			if s := score3(g); s < bestScore {
				best, bestScore = g, s
			}
		}
	}
	return best
}

// score3 prefers cubic grids (minimal surface).
func score3(g Grid3) int {
	max := g.PX
	if g.PY > max {
		max = g.PY
	}
	if g.PZ > max {
		max = g.PZ
	}
	min := g.PX
	if g.PY < min {
		min = g.PY
	}
	if g.PZ < min {
		min = g.PZ
	}
	return max - min
}

// Coords returns the rank's (x,y,z) position in the grid.
func (g Grid3) Coords(rank int) (x, y, z int) {
	x = rank % g.PX
	y = (rank / g.PX) % g.PY
	z = rank / (g.PX * g.PY)
	return
}

// RankAt is the inverse of Coords.
func (g Grid3) RankAt(x, y, z int) int {
	return x + y*g.PX + z*g.PX*g.PY
}

// neighbours lists the rank's face neighbours (at most 6, non-periodic).
func (g Grid3) neighbours(rank int) []int {
	x, y, z := g.Coords(rank)
	var out []int
	if x > 0 {
		out = append(out, g.RankAt(x-1, y, z))
	}
	if x < g.PX-1 {
		out = append(out, g.RankAt(x+1, y, z))
	}
	if y > 0 {
		out = append(out, g.RankAt(x, y-1, z))
	}
	if y < g.PY-1 {
		out = append(out, g.RankAt(x, y+1, z))
	}
	if z > 0 {
		out = append(out, g.RankAt(x, y, z-1))
	}
	if z < g.PZ-1 {
		out = append(out, g.RankAt(x, y, z+1))
	}
	return out
}

// faceBytes returns the halo face size for each dimension pair given the
// global edge N and the grid (8-byte cells, one-cell-deep halo).
func faceBytes(n int, g Grid3) [3]int {
	lx, ly, lz := n/g.PX, n/g.PY, n/g.PZ
	return [3]int{ly * lz * 8, lx * lz * 8, lx * ly * 8}
}

// dimOf classifies a neighbour offset into its dimension (0=x, 1=y, 2=z).
func dimOf(g Grid3, a, b int) int {
	ax, ay, _ := g.Coords(a)
	bx, by, _ := g.Coords(b)
	switch {
	case ax != bx:
		return 0
	case ay != by:
		return 1
	default:
		return 2
	}
}

// Run executes the benchmark on a freshly built environment: warmup+iters
// halo exchanges to measure the pure exchange time, then the same number
// overlapped with compute equal to the pure time (OMB methodology).
func Run(opt bench.Options, n, warmup, iters int) Result {
	e := bench.Build(opt)
	np := e.Cl.Cfg.NP()
	g := Decompose3(np)
	fb := faceBytes(n, g)

	pure := make([]sim.Time, np)
	overall := make([]sim.Time, np)

	e.Launch(func(r *mpi.Rank, _ coll.Ops, p2p coll.P2P) {
		me := r.RankID()
		nbrs := g.neighbours(me)
		send := make([]*mem.Buffer, len(nbrs))
		recv := make([]*mem.Buffer, len(nbrs))
		for i, nb := range nbrs {
			size := fb[dimOf(g, me, nb)]
			send[i] = r.Alloc(size)
			recv[i] = r.Alloc(size)
		}
		exchange := func() {
			reqs := make([]coll.Request, 0, 2*len(nbrs))
			for i, nb := range nbrs {
				size := fb[dimOf(g, me, nb)]
				reqs = append(reqs, p2p.Irecv(recv[i].Addr(), size, nb, 7))
			}
			for i, nb := range nbrs {
				size := fb[dimOf(g, me, nb)]
				reqs = append(reqs, p2p.Isend(send[i].Addr(), size, nb, 7))
			}
			p2p.WaitAll(reqs)
		}
		overlapped := func(compute sim.Time) {
			reqs := make([]coll.Request, 0, 2*len(nbrs))
			for i, nb := range nbrs {
				size := fb[dimOf(g, me, nb)]
				reqs = append(reqs, p2p.Irecv(recv[i].Addr(), size, nb, 7))
			}
			for i, nb := range nbrs {
				size := fb[dimOf(g, me, nb)]
				reqs = append(reqs, p2p.Isend(send[i].Addr(), size, nb, 7))
			}
			r.Compute(compute)
			p2p.WaitAll(reqs)
		}

		for it := 0; it < warmup; it++ {
			exchange()
			r.Barrier()
		}
		var acc sim.Time
		for it := 0; it < iters; it++ {
			t0 := r.Now()
			exchange()
			acc += r.Now() - t0
			r.Barrier()
		}
		pure[me] = acc / sim.Time(iters)

		compute := pure[me]
		acc = 0
		for it := 0; it < iters; it++ {
			t0 := r.Now()
			overlapped(compute)
			acc += r.Now() - t0
			r.Barrier()
		}
		overall[me] = acc / sim.Time(iters)
	})

	res := Result{Scheme: opt.Scheme, N: n, Nodes: opt.Nodes, PPN: opt.PPN, Iters: iters}
	for i := 0; i < np; i++ {
		if pure[i] > res.Pure {
			res.Pure = pure[i]
		}
		if overall[i] > res.Overall {
			res.Overall = overall[i]
		}
	}
	res.Compute = res.Pure
	res.Overlap = bench.OverlapPct(res.Pure, res.Compute, res.Overall)
	return res
}
