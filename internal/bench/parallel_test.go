package bench

import (
	"os"
	"reflect"
	"runtime"
	"sync/atomic"
	"testing"

	"repro/internal/metrics"
	"repro/internal/span"
)

// withParallelism runs fn with the package-level worker count overridden,
// restoring the previous value (tests share the global like offloadbench
// does).
func withParallelism(t *testing.T, n int, fn func()) {
	t.Helper()
	prev := Parallelism
	Parallelism = n
	defer func() { Parallelism = prev }()
	fn()
}

// The determinism contract of the sweep runner: the same sweep must produce
// identical results and an identical merged metrics snapshot at any worker
// count. Jobs here run real simulations (one kernel per job), the exact
// shape the figure sweeps use.
func TestSweepSerialParallelIdentical(t *testing.T) {
	sizes := []int{1 << 10, 8 << 10, 64 << 10}
	run := func(workers int) ([]NBCResult, metrics.Snapshot) {
		met := metrics.NewRegistry()
		res := make([]NBCResult, len(sizes))
		withParallelism(t, workers, func() {
			SweepInto(met, len(sizes), func(i int, env SweepEnv) {
				opt := env.Attach(guardOpt())
				res[i] = MeasureIalltoall(opt, sizes[i], 1, 2)
			})
		})
		return res, met.Snapshot()
	}

	serialRes, serialMet := run(1)
	parallelRes, parallelMet := run(4)

	if !reflect.DeepEqual(serialRes, parallelRes) {
		t.Fatalf("results diverge between serial and parallel sweeps:\nserial:   %+v\nparallel: %+v",
			serialRes, parallelRes)
	}
	if !reflect.DeepEqual(serialMet, parallelMet) {
		t.Fatal("merged metrics snapshot diverges between serial and parallel sweeps")
	}
}

// Results land at their sweep index regardless of completion order, and
// every job runs exactly once.
func TestSweepIndexOrdering(t *testing.T) {
	const n = 100
	out := make([]int, n)
	withParallelism(t, 8, func() {
		Sweep(n, func(i int, _ SweepEnv) { out[i] = i + 1 })
	})
	for i, v := range out {
		if v != i+1 {
			t.Fatalf("out[%d] = %d, want %d", i, v, i+1)
		}
	}
}

// Worker-pool sizing clamps to the job count: a 4-job sweep at -parallel 16
// must spin up at most 4 worker goroutines, not 16 idle ones. The jobs gate
// on each other so all clamped workers are provably alive at the sample
// point, then the goroutine census bounds the pool size.
func TestSweepClampsWorkersToJobCount(t *testing.T) {
	const jobs = 4
	baseline := runtime.NumGoroutine()
	var started atomic.Int64
	release := make(chan struct{})
	sampled := make(chan int, 1)
	withParallelism(t, 16, func() {
		Sweep(jobs, func(i int, _ SweepEnv) {
			if started.Add(1) == jobs {
				// Every job is now parked inside a distinct worker; any
				// goroutine beyond baseline+jobs would be an idle worker.
				sampled <- runtime.NumGoroutine()
				close(release)
			}
			<-release
		})
	})
	extra := <-sampled - baseline
	if extra > jobs {
		t.Fatalf("sweep of %d jobs ran %d extra goroutines; want at most %d (workers must clamp to the job count)",
			jobs, extra, jobs)
	}
}

// A panicking job must surface after the sweep drains, not crash a worker
// goroutine (which would abort the whole test binary).
func TestSweepPropagatesPanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("sweep swallowed the job panic")
		}
	}()
	withParallelism(t, 4, func() {
		Sweep(8, func(i int, _ SweepEnv) {
			if i == 5 {
				panic("job failure")
			}
		})
	})
}

// Span collection assigns IDs sequentially, so a sweep with a live span
// collector must fall back to serial execution rather than race on it.
func TestSweepWithSpansStaysSerial(t *testing.T) {
	prev := DefaultSpans
	DefaultSpans = span.New(0)
	defer func() { DefaultSpans = prev }()
	// The guard tests in spans_guard_test.go pin span determinism; here it is
	// enough that the sweep under a collector still visits every index once.
	seen := make([]bool, 16)
	withParallelism(t, 4, func() {
		Sweep(len(seen), func(i int, _ SweepEnv) { seen[i] = true })
	})
	for i, ok := range seen {
		if !ok {
			t.Fatalf("job %d never ran", i)
		}
	}
}

// The checked-in wall-clock baseline must parse and validate, and must
// record byte-identical serial/parallel outputs for the fig13 sweep.
func TestCheckedInWallclockValid(t *testing.T) {
	data, err := os.ReadFile("../../BENCH_wallclock.json")
	if err != nil {
		t.Fatalf("missing wall-clock baseline (run `offloadbench wallclock`): %v", err)
	}
	s, err := ParseWallclock(data)
	if err != nil {
		t.Fatal(err)
	}
	if s.Figure != "fig13" {
		t.Fatalf("baseline times %q, want fig13", s.Figure)
	}
	if !s.Identical {
		t.Fatal("baseline recorded non-identical serial/parallel outputs")
	}
}

// Wallclock validation rejects the failure modes the baseline guards
// against: schema drift, divergent outputs, and a missing speedup on a
// multi-core recording host.
func TestWallclockValidateRejects(t *testing.T) {
	good := WallclockSnapshot{
		Schema: WallclockSchema, Figure: "fig13", Cores: 8, Parallel: 4,
		SerialNS: 4e9, ParallelNS: 1e9, Speedup: 4.0, Identical: true,
	}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid snapshot rejected: %v", err)
	}
	cases := map[string]func(*WallclockSnapshot){
		"schema":         func(s *WallclockSnapshot) { s.Schema = "offload-wallclock/v0" },
		"figure":         func(s *WallclockSnapshot) { s.Figure = "" },
		"not identical":  func(s *WallclockSnapshot) { s.Identical = false },
		"speedup floor":  func(s *WallclockSnapshot) { s.ParallelNS = 3e9; s.Speedup = 4.0 / 3.0 },
		"inconsistent":   func(s *WallclockSnapshot) { s.Speedup = 2.0 },
		"bad timings":    func(s *WallclockSnapshot) { s.SerialNS = 0 },
		"bad core count": func(s *WallclockSnapshot) { s.Cores = 0 },
	}
	for name, mutate := range cases {
		s := good
		mutate(&s)
		if err := s.Validate(); err == nil {
			t.Errorf("%s: corrupted snapshot validated", name)
		}
	}
	// A 1-core recording is exempt from the speedup floor: no speedup is
	// physically possible there, identical outputs are the requirement.
	oneCore := good
	oneCore.Cores = 1
	oneCore.ParallelNS = 5e9
	oneCore.Speedup = 0.8
	if err := oneCore.Validate(); err != nil {
		t.Errorf("1-core sub-1x recording rejected: %v", err)
	}
}
