package bench

import (
	"encoding/json"
	"fmt"
	"io"
)

// WallclockSchema is the schema tag of the wall-clock baseline file
// (BENCH_wallclock.json); bump it when the layout changes incompatibly.
const WallclockSchema = "offload-wallclock/v1"

// WallclockSnapshot is the checked-in wall-clock baseline: how long the
// reference sweep took serially and with the parallel runner on the machine
// that produced it. Unlike the virtual timings of BENCH_fig13.json these
// numbers are host-dependent, so the file records the core count and
// validation scales its expectations: on a multi-core box (>= 4 cores) the
// parallel run must be at least 2x faster, while a single-core recording
// only has to prove the outputs stayed byte-identical.
type WallclockSnapshot struct {
	Schema     string  `json:"schema"`
	Figure     string  `json:"figure"`      // the sweep that was timed
	Cores      int     `json:"cores"`       // runtime.NumCPU() on the recording host
	Parallel   int     `json:"parallel"`    // worker count of the parallel run
	SerialNS   int64   `json:"serial_ns"`   // wall-clock of the serial run
	ParallelNS int64   `json:"parallel_ns"` // wall-clock of the parallel run
	Speedup    float64 `json:"speedup"`     // SerialNS / ParallelNS
	Identical  bool    `json:"identical"`   // serial and parallel outputs matched byte for byte
}

// MinParallelSpeedup is the speedup the parallel runner must deliver on a
// host with at least MinSpeedupCores cores.
const (
	MinParallelSpeedup = 2.0
	MinSpeedupCores    = 4
)

// WriteWallclock writes the snapshot as indented JSON.
func WriteWallclock(w io.Writer, s WallclockSnapshot) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// ParseWallclock decodes and validates a JSON wall-clock baseline.
func ParseWallclock(data []byte) (WallclockSnapshot, error) {
	var s WallclockSnapshot
	if err := json.Unmarshal(data, &s); err != nil {
		return s, fmt.Errorf("bench: invalid wallclock JSON: %w", err)
	}
	if err := s.Validate(); err != nil {
		return s, err
	}
	return s, nil
}

// Validate checks schema conformance and — determinism being the hard
// requirement — that the recorded serial and parallel outputs matched. The
// speedup floor only binds when the recording host had enough cores for a
// speedup to be physically possible.
func (s WallclockSnapshot) Validate() error {
	if s.Schema != WallclockSchema {
		return fmt.Errorf("bench: wallclock schema %q, want %q", s.Schema, WallclockSchema)
	}
	if s.Figure == "" {
		return fmt.Errorf("bench: wallclock snapshot has no figure name")
	}
	if s.Cores < 1 || s.Parallel < 1 {
		return fmt.Errorf("bench: wallclock cores=%d parallel=%d out of range", s.Cores, s.Parallel)
	}
	if s.SerialNS <= 0 || s.ParallelNS <= 0 {
		return fmt.Errorf("bench: wallclock non-positive timings %+v", s)
	}
	if want := float64(s.SerialNS) / float64(s.ParallelNS); s.Speedup < want*0.99 || s.Speedup > want*1.01 {
		return fmt.Errorf("bench: wallclock speedup %.3f inconsistent with timings (want %.3f)", s.Speedup, want)
	}
	if !s.Identical {
		return fmt.Errorf("bench: wallclock recording had non-identical serial/parallel outputs")
	}
	if s.Cores >= MinSpeedupCores && s.Parallel >= MinSpeedupCores && s.Speedup < MinParallelSpeedup {
		return fmt.Errorf("bench: wallclock speedup %.2fx below the %.1fx floor on a %d-core host",
			s.Speedup, MinParallelSpeedup, s.Cores)
	}
	return nil
}
