package bench

import (
	"bytes"
	"os"
	"reflect"
	"strings"
	"testing"

	"repro/internal/sim"
	"repro/internal/tenant"
)

// The drift measurement must validate (which asserts the headline
// re-route claim: pre-drift the offload path wins, post-drift the frozen
// Measuring policy is stuck >= 1.5x worse than host-direct while the
// feedback policy re-probes and ties it), reproduce byte-identically at
// any sweep worker count, and round-trip through the JSON writer/parser.
func TestDriftSnapshotValidDeterministicAndParallel(t *testing.T) {
	old := Parallelism
	defer func() { Parallelism = old }()

	Parallelism = 1
	serial := MeasureDrift()
	if err := serial.Validate(); err != nil {
		t.Fatal(err)
	}
	Parallelism = 4
	par := MeasureDrift()

	var sb, pb bytes.Buffer
	if err := WriteDriftSnapshot(&sb, serial); err != nil {
		t.Fatal(err)
	}
	if err := WriteDriftSnapshot(&pb, par); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(sb.Bytes(), pb.Bytes()) {
		t.Fatal("drift sweep output differs between -parallel 1 and -parallel 4")
	}

	back, err := ParseDriftSnapshot(sb.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial, back) {
		t.Fatal("drift snapshot did not round-trip through JSON")
	}

	// Rank agreement across re-probes: every rank of the foreground job
	// contributes one decision per call, so with lockstep intact each call
	// adds the full rank count to exactly one per-path counter — any
	// diverged rank shows up as a remainder.
	np := int64(serial.Config.Nodes * serial.Config.PPN)
	checked := 0
	for _, c := range serial.Metrics.Counters {
		if c.Layer != "policy" || c.Tenant != "fg" || !strings.HasPrefix(c.Name, "decide_") {
			continue
		}
		checked++
		if c.Value%np != 0 {
			t.Errorf("decide counter %s/%s = %d not divisible by %d ranks (lockstep broken)",
				c.Entity, c.Name, c.Value, np)
		}
	}
	if checked == 0 {
		t.Fatal("no foreground decide counters in the snapshot metrics")
	}
}

// The checked-in baseline must stay parseable and valid (including the
// re-route claim); regenerate it with `make bench-drift` after an
// intentional behaviour change.
func TestCheckedInDriftSnapshotValid(t *testing.T) {
	data, err := os.ReadFile("../../BENCH_drift.json")
	if err != nil {
		t.Fatalf("missing drift baseline (run `make bench-drift`): %v", err)
	}
	if _, err := ParseDriftSnapshot(data); err != nil {
		t.Fatal(err)
	}
}

// Windowing around the drift: iterations that complete before arrival are
// "pre", iterations that start after arrival+settle are "post", and
// transition iterations spanning either boundary belong to neither.
func TestSplitDriftWindows(t *testing.T) {
	samples := []struct{ at, dur int64 }{
		{900, 100},   // ends exactly at arrival: pre
		{1100, 300},  // spans the arrival: neither
		{8900, 100},  // post window not yet open (starts before 9000): neither
		{9100, 100},  // starts exactly at arrival+settle: post
		{9500, 200},  // post
		{10000, 100}, // post
	}
	in := make([]tenant.IterSample, 0, len(samples))
	for _, s := range samples {
		in = append(in, tenant.IterSample{At: sim.Time(s.at), Dur: sim.Time(s.dur)})
	}
	pre, post := SplitDrift(in, 1000, 8000)
	if len(pre) != 1 || pre[0] != 100 {
		t.Fatalf("pre window %v, want [100]", pre)
	}
	if len(post) != 3 {
		t.Fatalf("post window %v, want 3 samples", post)
	}
	for i := 1; i < len(post); i++ {
		if post[i-1] > post[i] {
			t.Fatalf("post window not sorted: %v", post)
		}
	}
	// Nearest-rank with floor indexing (the tenant layer's convention):
	// over [100 100 200], p50 and p99 floor to the middle sample and only
	// p100 reaches the maximum.
	if Percentile(post, 50) != 100 || Percentile(post, 99) != 100 || Percentile(post, 100) != 200 {
		t.Fatalf("percentiles p50=%v p99=%v p100=%v, want 100/100/200",
			Percentile(post, 50), Percentile(post, 99), Percentile(post, 100))
	}
	if Percentile(nil, 99) != 0 {
		t.Fatal("empty percentile must be 0")
	}
}
