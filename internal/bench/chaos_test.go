package bench

import (
	"reflect"
	"testing"

	"repro/internal/baseline"
	"repro/internal/cluster"
	"repro/internal/coll"
	"repro/internal/fault"
	"repro/internal/mem"
	"repro/internal/mpi"
	"repro/internal/sim"
	"repro/internal/trace"
)

// Frozen fig13 measurement values for the seed configuration (Proposed,
// 2 nodes x 4 PPN, warmup 1, iters 2). The fault/reliability subsystem must
// not move these by a single nanosecond when no fault plan is attached —
// and neither may a rate-zero plan.
const (
	guardPure8K    = sim.Time(52508)
	guardOverall8K = sim.Time(53953)

	guardPure64K    = sim.Time(160049)
	guardOverall64K = sim.Time(171051)

	guardPure4KBacked    = sim.Time(44841)
	guardOverall4KBacked = sim.Time(45603)
)

func guardOpt() Options {
	return Options{Nodes: 2, PPN: 4, Scheme: baseline.NameProposed}
}

// Zero-overhead guard: with no fault plan the timings are bit-identical to
// the values captured before the fault subsystem existed.
func TestFig13TimingsBitIdenticalToSeed(t *testing.T) {
	r := MeasureIalltoall(guardOpt(), 8192, 1, 2)
	if r.PureComm != guardPure8K || r.Overall != guardOverall8K {
		t.Fatalf("8K timings moved: pure=%d overall=%d, want %d/%d",
			r.PureComm, r.Overall, guardPure8K, guardOverall8K)
	}
	r = MeasureIalltoall(guardOpt(), 65536, 1, 2)
	if r.PureComm != guardPure64K || r.Overall != guardOverall64K {
		t.Fatalf("64K timings moved: pure=%d overall=%d, want %d/%d",
			r.PureComm, r.Overall, guardPure64K, guardOverall64K)
	}
	opt := guardOpt()
	opt.Backed = true
	r = MeasureIalltoall(opt, 4096, 1, 2)
	if r.PureComm != guardPure4KBacked || r.Overall != guardOverall4KBacked {
		t.Fatalf("backed 4K timings moved: pure=%d overall=%d, want %d/%d",
			r.PureComm, r.Overall, guardPure4KBacked, guardOverall4KBacked)
	}
}

// A rate-zero fault plan must take the silent fast paths: same timings as
// no plan at all, for both a nil config and Scaled(seed, 0).
func TestRateZeroChaosMatchesFig13Exactly(t *testing.T) {
	for _, fcfg := range []*fault.Config{nil, fault.Scaled(42, 0)} {
		r := MeasureChaosIalltoall(guardOpt(), fcfg, 0, 8192, 1, 2)
		if r.PureComm != guardPure8K || r.Overall != guardOverall8K {
			t.Fatalf("cfg=%+v: pure=%d overall=%d, want %d/%d",
				fcfg, r.PureComm, r.Overall, guardPure8K, guardOverall8K)
		}
		if !r.Verified || r.Mismatches != 0 {
			t.Fatalf("cfg=%+v: payload verification failed (%d mismatches)", fcfg, r.Mismatches)
		}
		if r.Fault != (fault.Stats{}) {
			t.Fatalf("cfg=%+v: silent plan injected faults: %+v", fcfg, r.Fault)
		}
	}
}

// The acceptance sweep: every rate completes with verified payloads; the
// rate-0 row equals fig13; the top rate actually injects and retries.
func TestChaosSweepAllRatesVerified(t *testing.T) {
	rates := []float64{0, 1e-4, 1e-3, 1e-2}
	results := ChaosSweep(guardOpt(), 42, rates, 8192, 1, 2)
	if len(results) != len(rates) {
		t.Fatalf("got %d results", len(results))
	}
	for i, r := range results {
		if !r.Verified {
			t.Fatalf("rate %g: %d payload mismatches", rates[i], r.Mismatches)
		}
	}
	if r0 := results[0]; r0.PureComm != guardPure8K || r0.Overall != guardOverall8K {
		t.Fatalf("rate-0 row diverged from fig13: pure=%d overall=%d", r0.PureComm, r0.Overall)
	}
	top := results[len(results)-1]
	injected := top.Fault.Drops + top.Fault.Corrupts + top.Fault.Delays + top.Fault.CQErrors
	if injected == 0 {
		t.Fatalf("rate 1e-2 injected nothing: %+v", top.Fault)
	}
	if top.Fault.Retries == 0 {
		t.Fatalf("drops/CQEs without retries: %+v", top.Fault)
	}
	if top.Fault.Exhausted != 0 {
		t.Fatalf("retry budget exhausted during sweep: %+v", top.Fault)
	}
	if top.Overall <= results[0].Overall {
		t.Fatalf("faults at 1e-2 did not degrade overall time: %d <= %d",
			top.Overall, results[0].Overall)
	}
}

// Determinism regression: the same chaos scenario run twice with the same
// seed produces identical traces and identical end times.
func TestChaosRunsAreDeterministic(t *testing.T) {
	run := func() ChaosResult {
		return MeasureChaosIalltoall(guardOpt(), fault.Scaled(7, 1e-2), 1e-2, 8192, 1, 2)
	}
	a, b := run(), run()
	if a.PureComm != b.PureComm || a.Overall != b.Overall || a.EndTime != b.EndTime {
		t.Fatalf("timings diverged: %d/%d/%d vs %d/%d/%d",
			a.PureComm, a.Overall, a.EndTime, b.PureComm, b.Overall, b.EndTime)
	}
	if a.Fault != b.Fault {
		t.Fatalf("fault stats diverged: %+v vs %+v", a.Fault, b.Fault)
	}
	ea, eb := a.Trace.Events(), b.Trace.Events()
	if len(ea) == 0 {
		t.Fatal("no trace events recorded")
	}
	if !reflect.DeepEqual(ea, eb) {
		t.Fatalf("traces diverged: %d vs %d events", len(ea), len(eb))
	}
}

// Killing a proxy mid-group-offload: every rank it served fails over to
// host-progressed execution, all payloads still arrive intact, and the
// trace records crash -> heartbeat-loss -> failover in causal order.
func TestProxyCrashFailsOverWithCorrectPayloads(t *testing.T) {
	fcfg := fault.DefaultConfig(1)
	fcfg.Crashes = []fault.Crash{{Proxy: 0, At: 10 * sim.Microsecond}}
	ccfg := cluster.DefaultConfig(2, 2)
	ccfg.Fault = fcfg
	opt := Options{
		Nodes: 2, PPN: 2, Scheme: baseline.NameProposed,
		Backed: true, ProxiesPerDPU: 1, Cluster: &ccfg,
	}
	e := Build(opt)
	e.Cl.Trace = trace.New(0)
	np := e.Cl.Cfg.NP()
	const msgSize = 8192
	const iters = 3
	mismatches := make([]int, np)

	e.Launch(func(r *mpi.Rank, ops coll.Ops, _ coll.P2P) {
		me := r.RankID()
		sp := r.Space()
		send := r.Alloc(np * msgSize)
		recv := r.Alloc(np * msgSize)
		for seq := 0; seq < iters; seq++ {
			blk := make([]byte, msgSize)
			for dst := 0; dst < np; dst++ {
				for i := range blk {
					blk[i] = chaosPattern(me, dst, seq, i)
				}
				sp.WriteAt(send.Addr()+mem.Addr(dst*msgSize), blk, msgSize)
			}
			q := ops.Ialltoall(0, send.Addr(), recv.Addr(), msgSize)
			r.Compute(20 * sim.Microsecond) // keep the collective in flight across the crash
			ops.Wait(q)
			for src := 0; src < np; src++ {
				got := sp.ReadAt(recv.Addr()+mem.Addr(src*msgSize), msgSize)
				ok := got != nil
				for i := 0; ok && i < msgSize; i++ {
					if got[i] != chaosPattern(src, me, seq, i) {
						ok = false
					}
				}
				if !ok {
					mismatches[me]++
				}
			}
			r.Barrier()
		}
	})

	for me, m := range mismatches {
		if m != 0 {
			t.Errorf("rank %d: %d corrupted blocks after failover", me, m)
		}
	}
	if e.Cl.Inj.Stats.Crashes != 1 {
		t.Fatalf("Crashes = %d, want 1", e.Cl.Inj.Stats.Crashes)
	}
	st := e.Fw.Stats()
	if st.Failovers != 2 {
		t.Fatalf("Failovers = %d, want 2 (both ranks of node 0)", st.Failovers)
	}
	if st.FallbackGroupCalls == 0 || st.FallbackWrites == 0 {
		t.Fatalf("no fallback execution recorded: %+v", st)
	}

	// The trace must show the causal chain in order.
	events := e.Cl.Trace.Events()
	idx := map[string]int{"crash": -1, "heartbeat-loss": -1, "failover": -1}
	at := map[string]sim.Time{}
	for i, ev := range events {
		if j, ok := idx[ev.Action]; ok && j < 0 {
			idx[ev.Action] = i
			at[ev.Action] = ev.At
		}
	}
	for _, action := range []string{"crash", "heartbeat-loss", "failover"} {
		if idx[action] < 0 {
			t.Fatalf("trace missing %q; events: %d", action, len(events))
		}
	}
	if !(idx["crash"] < idx["heartbeat-loss"] && idx["heartbeat-loss"] <= idx["failover"]) {
		t.Fatalf("causal order violated: crash@%d hb-loss@%d failover@%d",
			idx["crash"], idx["heartbeat-loss"], idx["failover"])
	}
	if at["heartbeat-loss"] < at["crash"]+fcfg.HeartbeatTimeout {
		t.Fatalf("heartbeat loss declared after %v, before the %v timeout elapsed",
			at["heartbeat-loss"]-at["crash"], fcfg.HeartbeatTimeout)
	}
}

// A crashed proxy that restarts comes back with empty state; hosts that
// already failed over stay on the fallback path and payloads stay correct.
func TestProxyCrashWithRestartStillCorrect(t *testing.T) {
	fcfg := fault.DefaultConfig(2)
	fcfg.Crashes = []fault.Crash{{Proxy: 0, At: 10 * sim.Microsecond, RestartAfter: 15 * sim.Microsecond}}
	ccfg := cluster.DefaultConfig(2, 2)
	ccfg.Fault = fcfg
	opt := Options{
		Nodes: 2, PPN: 2, Scheme: baseline.NameProposed,
		Backed: true, ProxiesPerDPU: 1, Cluster: &ccfg,
	}
	r := MeasureChaosIalltoall(opt, fcfg, 0, 8192, 1, 2)
	if !r.Verified {
		t.Fatalf("%d payload mismatches across crash+restart", r.Mismatches)
	}
	if r.Fault.Crashes != 1 || r.Fault.Restarts != 1 {
		t.Fatalf("crash/restart not executed: %+v", r.Fault)
	}
}

func BenchmarkFig13Ialltoall8K(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := MeasureIalltoall(guardOpt(), 8192, 1, 2)
		if r.PureComm != guardPure8K {
			b.Fatalf("timing moved: %d", r.PureComm)
		}
	}
}

func BenchmarkChaosIalltoall8K(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := MeasureChaosIalltoall(guardOpt(), fault.Scaled(42, 1e-2), 1e-2, 8192, 1, 2)
		if !r.Verified {
			b.Fatal("payload mismatch")
		}
	}
}
