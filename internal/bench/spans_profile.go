package bench

import (
	"repro/internal/fault"
	"repro/internal/span"
)

// CollectSpans runs the OMB Ialltoall measurement with a fresh span
// collector attached and returns the collector alongside the timings. The
// collector holds the full causal record of the run — every collective root
// with its proxy, verbs and fabric descendants — ready for critical-path
// extraction or export.
func CollectSpans(opt Options, msgSize, warmup, iters int) (*span.Collector, NBCResult) {
	sc := span.New(0)
	opt.Spans = sc
	r := MeasureIalltoall(opt, msgSize, warmup, iters)
	return sc, r
}

// CollectChaosSpans is CollectSpans under deterministic fault injection:
// the span record then includes retransmitted flights, fallback execution
// and failover control traffic, attributed to the original roots.
func CollectChaosSpans(opt Options, fcfg *fault.Config, rate float64, msgSize, warmup, iters int) (*span.Collector, ChaosResult) {
	sc := span.New(0)
	opt.Spans = sc
	r := MeasureChaosIalltoall(opt, fcfg, rate, msgSize, warmup, iters)
	return sc, r
}
