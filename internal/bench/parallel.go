package bench

import (
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/metrics"
	"repro/internal/span"
)

// Parallelism is the worker count the sweep runners use. 1 (the default)
// runs every job inline on the calling goroutine — the exact code path the
// pre-parallel tree had. Values above 1 run sweep jobs on a worker pool of
// that many goroutines; cmd/offloadbench sets it from the -parallel flag.
//
// Every simulation in a sweep owns a private Kernel, so jobs share no
// simulator state; determinism is preserved because results are always
// stored by sweep index and per-job metric registries are merged back in
// ascending index order (see Sweep). Span collection forces serial
// execution: span IDs are assigned sequentially across an entire run, so
// interleaving two simulations would renumber them.
var Parallelism = 1

// DefaultParallelism returns the worker count meant by "parallel 0": one
// worker per available CPU.
func DefaultParallelism() int { return runtime.GOMAXPROCS(0) }

// SweepEnv is what a sweep job is given instead of the process-wide
// DefaultMetrics/DefaultSpans globals: under parallel execution Met is a
// private registry (merged into the sweep target after the join) and Sp is
// nil; under serial execution they are the sweep's own sinks. Jobs must
// route them into every environment they build — Attach does it for an
// Options value.
type SweepEnv struct {
	Met *metrics.Registry
	Sp  *span.Collector
}

// Attach returns opt with the env's sinks filled in, so a sweep job reads
//
//	r := MeasureIalltoall(env.Attach(Options{...}), size, warmup, iters)
func (env SweepEnv) Attach(opt Options) Options {
	opt.Metrics = env.Met
	opt.Spans = env.Sp
	return opt
}

// Sweep runs n independent simulation jobs — one per index — against the
// process-wide DefaultMetrics/DefaultSpans sinks. With Parallelism <= 1 (or
// with a live span collector, which needs sequential ID assignment) the
// jobs run inline in index order; otherwise they are distributed over a
// worker pool. Jobs must be independent: each builds its own environment
// (own Kernel) from the SweepEnv it receives and writes its result into a
// caller-owned slot addressed by its index, so result ordering never
// depends on completion order.
func Sweep(n int, job func(i int, env SweepEnv)) {
	sweep(DefaultMetrics, DefaultSpans, n, job)
}

// SweepInto is Sweep with an explicit metrics target instead of
// DefaultMetrics, for callers that aggregate into their own registry
// (Fig13Snapshot).
func SweepInto(target *metrics.Registry, n int, job func(i int, env SweepEnv)) {
	sweep(target, DefaultSpans, n, job)
}

func sweep(met *metrics.Registry, sp *span.Collector, n int, job func(i int, env SweepEnv)) {
	workers := Parallelism
	if workers > n {
		workers = n
	}
	// Spans and timelines both force serial execution: span IDs and
	// recorder labels are assigned sequentially across the whole run.
	if workers <= 1 || sp != nil || DefaultTimeline != nil {
		for i := 0; i < n; i++ {
			job(i, SweepEnv{Met: met, Sp: sp})
		}
		return
	}

	// Per-job registries keep recording race-free; merging them back in
	// ascending index order reproduces the state a single shared registry
	// reaches serially (counters/histograms are additive, Set-gauges take
	// the last writer in index order, SetMax-gauges the maximum).
	regs := make([]*metrics.Registry, n)
	if met != nil {
		for i := range regs {
			regs[i] = metrics.NewRegistry()
		}
	}

	var (
		next     int64 = -1
		wg       sync.WaitGroup
		panicMu  sync.Mutex
		panicked any
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(atomic.AddInt64(&next, 1))
				if i >= n {
					return
				}
				func() {
					defer func() {
						if r := recover(); r != nil {
							panicMu.Lock()
							if panicked == nil {
								panicked = r
							}
							panicMu.Unlock()
						}
					}()
					job(i, SweepEnv{Met: regs[i]})
				}()
			}
		}()
	}
	wg.Wait()
	if panicked != nil {
		panic(panicked)
	}
	if met != nil {
		for i := 0; i < n; i++ {
			met.Merge(regs[i])
		}
	}
}
