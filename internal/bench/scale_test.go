package bench

import (
	"os"
	"testing"
)

// The checked-in 1024-rank scaling baseline must parse, validate every
// fig-shape claim (fig13 ordering, fig14 overlap shape, non-shrinking
// advantage), and actually reach 1024 ranks — the point of ROADMAP item 1.
func TestCheckedInScaleSnapshotValid(t *testing.T) {
	data, err := os.ReadFile("../../BENCH_scale.json")
	if err != nil {
		t.Fatalf("missing scale baseline (run `make bench-scale`): %v", err)
	}
	s, err := ParseScaleSnapshot(data)
	if err != nil {
		t.Fatal(err)
	}
	if s.Figure != "scale" {
		t.Fatalf("baseline figure %q, want scale", s.Figure)
	}
	if last := s.Series[len(s.Series)-1].Ranks; last < 1024 {
		t.Fatalf("baseline tops out at %d ranks, want >= 1024", last)
	}
}

// Validate rejects the failure modes the scale baseline guards against:
// schema drift, a lost fig13 ordering, a collapsed overlap, and an
// advantage that shrinks with scale.
func TestScaleValidateRejects(t *testing.T) {
	mk := func() ScaleSnapshot {
		point := func(ranks int, propOverall int64, vsBlues float64) ScalePoint {
			return ScalePoint{
				Ranks: ranks, Nodes: ranks / 8, PPN: 8,
				Schemes: []ScaleSchemeResult{
					{Scheme: "BluesMPI", PureNS: 900, ComputeNS: 900, OverallNS: 2000, OverlapPct: 95},
					{Scheme: "Proposed", PureNS: 800, ComputeNS: 800, OverallNS: propOverall, OverlapPct: 99},
					{Scheme: "IntelMPI", PureNS: 850, ComputeNS: 850, OverallNS: 1500, OverlapPct: 40},
				},
				VsBluesMPIPct: vsBlues, VsIntelMPIPct: 30,
			}
		}
		return ScaleSnapshot{
			Schema: ScaleSchema, Figure: "scale",
			Config: ScaleConfig{PPN: 8, Size: 32 << 10, Warmup: 1, Iters: 1, Ranks: []int{128, 1024}},
			Series: []ScalePoint{point(128, 1000, 50), point(1024, 1000, 50)},
		}
	}
	if err := mk().Validate(); err != nil {
		t.Fatalf("valid snapshot rejected: %v", err)
	}
	cases := map[string]func(*ScaleSnapshot){
		"schema":          func(s *ScaleSnapshot) { s.Schema = "offload-scale/v0" },
		"figure":          func(s *ScaleSnapshot) { s.Figure = "" },
		"shape mismatch":  func(s *ScaleSnapshot) { s.Series[1].Nodes = 64 },
		"ordering lost":   func(s *ScaleSnapshot) { s.Series[1].Schemes[1].OverallNS = 2500 },
		"overlap shape":   func(s *ScaleSnapshot) { s.Series[1].Schemes[1].OverlapPct = 80 },
		"overlap vs host": func(s *ScaleSnapshot) { s.Series[1].Schemes[2].OverlapPct = 99.5 },
		"shrinking gain":  func(s *ScaleSnapshot) { s.Series[1].VsBluesMPIPct = 40 },
		"missing point":   func(s *ScaleSnapshot) { s.Series = s.Series[:1] },
		"bad timings":     func(s *ScaleSnapshot) { s.Series[0].Schemes[0].OverallNS = 0 },
	}
	for name, mutate := range cases {
		s := mk()
		mutate(&s)
		if err := s.Validate(); err == nil {
			t.Errorf("%s: corrupted snapshot validated", name)
		}
	}
}
