package bench

import (
	"repro/internal/coll"
	"repro/internal/mem"
	"repro/internal/mpi"
	"repro/internal/sim"
)

// NBCResult is one row of an OMB-style nonblocking-collective benchmark.
type NBCResult struct {
	Scheme  string
	Nodes   int
	PPN     int
	MsgSize int

	PureComm sim.Time // latency of collective+wait with no compute
	Compute  sim.Time // injected compute (set to PureComm, as in OMB)
	Overall  sim.Time // collective, compute, wait
	Overlap  float64  // percent
}

// MeasureIalltoall runs the OMB Ialltoall overlap benchmark for one scheme
// and message size (bytes per peer), with warmup+iters iterations of each
// phase. It reproduces the methodology behind Figures 13/14.
func MeasureIalltoall(opt Options, msgSize, warmup, iters int) NBCResult {
	e := Build(opt)
	np := e.Cl.Cfg.NP()
	pure := make([]sim.Time, np)
	comp := make([]sim.Time, np)
	overall := make([]sim.Time, np)

	e.Launch(func(r *mpi.Rank, ops coll.Ops, _ coll.P2P) {
		me := r.RankID()
		send := r.Alloc(np * msgSize)
		recv := r.Alloc(np * msgSize)

		for it := 0; it < warmup; it++ {
			ops.Wait(ops.Ialltoall(0, send.Addr(), recv.Addr(), msgSize))
			r.Barrier()
		}

		// Pure communication latency.
		var acc sim.Time
		for it := 0; it < iters; it++ {
			t0 := r.Now()
			ops.Wait(ops.Ialltoall(0, send.Addr(), recv.Addr(), msgSize))
			acc += r.Now() - t0
			r.Barrier()
		}
		pure[me] = acc / sim.Time(iters)

		// Overall time with compute sized to the pure latency (OMB).
		comp[me] = pure[me]
		acc = 0
		for it := 0; it < iters; it++ {
			t0 := r.Now()
			q := ops.Ialltoall(0, send.Addr(), recv.Addr(), msgSize)
			r.Compute(comp[me])
			ops.Wait(q)
			acc += r.Now() - t0
			r.Barrier()
		}
		overall[me] = acc / sim.Time(iters)
	})

	res := NBCResult{Scheme: opt.Scheme, Nodes: opt.Nodes, PPN: opt.PPN, MsgSize: msgSize}
	for i := 0; i < np; i++ {
		if pure[i] > res.PureComm {
			res.PureComm = pure[i]
		}
		if overall[i] > res.Overall {
			res.Overall = overall[i]
		}
		if comp[i] > res.Compute {
			res.Compute = comp[i]
		}
	}
	res.Overlap = OverlapPct(res.PureComm, res.Compute, res.Overall)
	return res
}

// MeasureIallgather runs the OMB-style Iallgather overlap benchmark
// (per bytes contributed by each rank).
func MeasureIallgather(opt Options, msgSize, warmup, iters int) NBCResult {
	e := Build(opt)
	np := e.Cl.Cfg.NP()
	pure := make([]sim.Time, np)
	overall := make([]sim.Time, np)

	e.Launch(func(r *mpi.Rank, ops coll.Ops, _ coll.P2P) {
		me := r.RankID()
		send := r.Alloc(msgSize)
		recv := r.Alloc(np * msgSize)

		for it := 0; it < warmup; it++ {
			ops.Wait(ops.Iallgather(0, send.Addr(), recv.Addr(), msgSize))
			r.Barrier()
		}
		var acc sim.Time
		for it := 0; it < iters; it++ {
			t0 := r.Now()
			ops.Wait(ops.Iallgather(0, send.Addr(), recv.Addr(), msgSize))
			acc += r.Now() - t0
			r.Barrier()
		}
		pure[me] = acc / sim.Time(iters)

		acc = 0
		for it := 0; it < iters; it++ {
			t0 := r.Now()
			q := ops.Iallgather(0, send.Addr(), recv.Addr(), msgSize)
			r.Compute(pure[me])
			ops.Wait(q)
			acc += r.Now() - t0
			r.Barrier()
		}
		overall[me] = acc / sim.Time(iters)
	})

	res := NBCResult{Scheme: opt.Scheme, Nodes: opt.Nodes, PPN: opt.PPN, MsgSize: msgSize}
	for i := 0; i < np; i++ {
		if pure[i] > res.PureComm {
			res.PureComm = pure[i]
		}
		if overall[i] > res.Overall {
			res.Overall = overall[i]
		}
	}
	res.Compute = res.PureComm
	res.Overlap = OverlapPct(res.PureComm, res.Compute, res.Overall)
	return res
}

// MeasureIbcast runs the OMB-style Ibcast overlap benchmark (root 0,
// size bytes).
func MeasureIbcast(opt Options, size, warmup, iters int) NBCResult {
	e := Build(opt)
	np := e.Cl.Cfg.NP()
	pure := make([]sim.Time, np)
	overall := make([]sim.Time, np)

	e.Launch(func(r *mpi.Rank, ops coll.Ops, _ coll.P2P) {
		me := r.RankID()
		buf := r.Alloc(size)

		for it := 0; it < warmup; it++ {
			ops.Wait(ops.Ibcast(0, buf.Addr(), size, 0))
			r.Barrier()
		}
		var acc sim.Time
		for it := 0; it < iters; it++ {
			t0 := r.Now()
			ops.Wait(ops.Ibcast(0, buf.Addr(), size, 0))
			acc += r.Now() - t0
			r.Barrier()
		}
		pure[me] = acc / sim.Time(iters)

		acc = 0
		for it := 0; it < iters; it++ {
			t0 := r.Now()
			q := ops.Ibcast(0, buf.Addr(), size, 0)
			r.Compute(pure[me])
			ops.Wait(q)
			acc += r.Now() - t0
			r.Barrier()
		}
		overall[me] = acc / sim.Time(iters)
	})

	res := NBCResult{Scheme: opt.Scheme, Nodes: opt.Nodes, PPN: opt.PPN, MsgSize: size}
	for i := 0; i < np; i++ {
		if pure[i] > res.PureComm {
			res.PureComm = pure[i]
		}
		if overall[i] > res.Overall {
			res.Overall = overall[i]
		}
	}
	res.Compute = res.PureComm
	res.Overlap = OverlapPct(res.PureComm, res.Compute, res.Overall)
	return res
}

// OverlapPct is the OMB overlap formula:
// 100 * (1 - (overall - compute) / pure), clamped to [0, 100].
func OverlapPct(pure, compute, overall sim.Time) float64 {
	if pure <= 0 {
		return 0
	}
	v := 100 * (1 - float64(overall-compute)/float64(pure))
	if v < 0 {
		v = 0
	}
	if v > 100 {
		v = 100
	}
	return v
}

// MeasureScatterDest measures the latency of one personalized
// scatter-destination exchange implemented with either the Simple (basic)
// primitives — four control messages per transfer — or the Group
// primitives, reproducing Figure 15. simple selects the implementation.
func MeasureScatterDest(opt Options, msgSize, warmup, iters int, simple bool) NBCResult {
	e := Build(opt)
	np := e.Cl.Cfg.NP()
	lat := make([]sim.Time, np)

	e.Launch(func(r *mpi.Rank, ops coll.Ops, p2p coll.P2P) {
		me := r.RankID()
		send := r.Alloc(np * msgSize)
		recv := r.Alloc(np * msgSize)

		exchange := func() {
			if simple {
				reqs := make([]coll.Request, 0, 2*(np-1))
				for i := 1; i < np; i++ {
					src := (me - i + np) % np
					reqs = append(reqs, p2p.Irecv(recv.Addr()+mem.Addr(src*msgSize), msgSize, src, 9))
				}
				for i := 1; i < np; i++ {
					dst := (me + i) % np
					reqs = append(reqs, p2p.Isend(send.Addr()+mem.Addr(dst*msgSize), msgSize, dst, 9))
				}
				p2p.WaitAll(reqs)
			} else {
				ops.Wait(ops.Ialltoall(0, send.Addr(), recv.Addr(), msgSize))
			}
		}

		for it := 0; it < warmup; it++ {
			exchange()
			r.Barrier()
		}
		var acc sim.Time
		for it := 0; it < iters; it++ {
			t0 := r.Now()
			exchange()
			acc += r.Now() - t0
			r.Barrier()
		}
		lat[me] = acc / sim.Time(iters)
	})

	res := NBCResult{Scheme: opt.Scheme, Nodes: opt.Nodes, PPN: opt.PPN, MsgSize: msgSize}
	for i := 0; i < np; i++ {
		if lat[i] > res.PureComm {
			res.PureComm = lat[i]
		}
	}
	res.Overall = res.PureComm
	return res
}

// MeasurePingpongNB measures the Figure 4 benchmark: concurrent two-way
// nonblocking send/receive between two ranks on different nodes, followed
// by a wait-all; reported as one-way latency.
func MeasurePingpongNB(opt Options, msgSize, warmup, iters int) sim.Time {
	e := Build(opt)
	lat := make([]sim.Time, 2)

	e.Launch(func(r *mpi.Rank, _ coll.Ops, p2p coll.P2P) {
		me := r.RankID()
		if me > 1 {
			return
		}
		peer := 1 - me
		sbuf := r.Alloc(msgSize)
		rbuf := r.Alloc(msgSize)
		round := func() {
			rq := p2p.Irecv(rbuf.Addr(), msgSize, peer, 1)
			sq := p2p.Isend(sbuf.Addr(), msgSize, peer, 1)
			p2p.WaitAll([]coll.Request{rq, sq})
		}
		for it := 0; it < warmup; it++ {
			round()
		}
		t0 := r.Now()
		for it := 0; it < iters; it++ {
			round()
		}
		lat[me] = (r.Now() - t0) / sim.Time(iters)
	})

	if lat[1] > lat[0] {
		return lat[1]
	}
	return lat[0]
}
