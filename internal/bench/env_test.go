package bench

import (
	"strings"
	"testing"

	"repro/internal/baseline"
	"repro/internal/coll"
	"repro/internal/core"
	"repro/internal/mpi"
	"repro/internal/sim"
)

func TestBuildSchemesFrameworkPresence(t *testing.T) {
	if e := Build(Options{Nodes: 2, PPN: 1, Scheme: baseline.NameIntelMPI}); e.Fw != nil {
		t.Fatal("host scheme must not build a framework")
	}
	if e := Build(Options{Nodes: 2, PPN: 1, Scheme: baseline.NameProposed}); e.Fw == nil {
		t.Fatal("proposed scheme needs a framework")
	}
	e := Build(Options{Nodes: 2, PPN: 1, Scheme: baseline.NameBluesMPI})
	if e.Fw == nil || e.Fw.Config().Mechanism != core.MechStaging {
		t.Fatal("BluesMPI scheme must stage")
	}
	// A Core override forces a framework even for a host-named scheme.
	cfg := baseline.StagingNoWarmupConfig()
	if e := Build(Options{Nodes: 2, PPN: 1, Scheme: baseline.NameIntelMPI, Core: &cfg}); e.Fw == nil {
		t.Fatal("Core override must build a framework")
	}
}

func TestLaunchBindsBackendsAndStopsProxies(t *testing.T) {
	e := Build(Options{Nodes: 2, PPN: 2, Scheme: baseline.NameProposed})
	names := make([]string, e.Cl.Cfg.NP())
	e.Launch(func(r *mpi.Rank, ops coll.Ops, p2p coll.P2P) {
		names[r.RankID()] = ops.Name() + "/" + p2p.Name()
	})
	for i, n := range names {
		if n != baseline.NameProposed+"/"+baseline.NameProposed {
			t.Fatalf("rank %d backends %q", i, n)
		}
	}
	// Proxies must have been shut down (no live daemons holding memory).
	if live := e.Cl.K.Live(); live != 0 {
		t.Fatalf("%d processes still live after Launch", live)
	}
}

func TestOverlapPctFormula(t *testing.T) {
	cases := []struct {
		pure, comp, overall sim.Time
		want                float64
	}{
		{100, 100, 100, 100}, // perfect overlap
		{100, 100, 200, 0},   // fully serialized
		{100, 100, 150, 50},
		{100, 100, 300, 0}, // clamped at 0
		{0, 0, 10, 0},      // degenerate
	}
	for _, c := range cases {
		if got := OverlapPct(c.pure, c.comp, c.overall); got != c.want {
			t.Fatalf("OverlapPct(%v,%v,%v) = %v, want %v", c.pure, c.comp, c.overall, got, c.want)
		}
	}
}

func TestSizeLabel(t *testing.T) {
	cases := map[int]string{100: "100", 1024: "1K", 65536: "64K", 1 << 20: "1M", 3 << 20: "3M"}
	for in, want := range cases {
		if got := SizeLabel(in); got != want {
			t.Fatalf("SizeLabel(%d) = %q, want %q", in, got, want)
		}
	}
}

func TestPow2Sizes(t *testing.T) {
	got := Pow2Sizes(4, 64)
	want := []int{4, 8, 16, 32, 64}
	if len(got) != len(want) {
		t.Fatalf("Pow2Sizes = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Pow2Sizes = %v", got)
		}
	}
}

func TestTableFprint(t *testing.T) {
	tab := &Table{Title: "T", Headers: []string{"a", "bb"}, Notes: []string{"n"}}
	tab.AddRow("1", "2")
	var sb strings.Builder
	tab.Fprint(&sb)
	out := sb.String()
	for _, want := range []string{"T", "a", "bb", "1", "note: n"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}

func TestMeasureIbcastAndIallgather(t *testing.T) {
	for _, scheme := range []string{baseline.NameIntelMPI, baseline.NameProposed} {
		opt := Options{Nodes: 2, PPN: 2, Scheme: scheme}
		b := MeasureIbcast(opt, 32<<10, 1, 2)
		g := MeasureIallgather(opt, 8<<10, 1, 2)
		if b.PureComm <= 0 || g.PureComm <= 0 {
			t.Fatalf("%s: zero latency: %+v %+v", scheme, b, g)
		}
		if b.Overlap < 0 || b.Overlap > 100 {
			t.Fatalf("%s: overlap out of range", scheme)
		}
	}
	// The offloaded broadcast must overlap where the host one cannot.
	host := MeasureIbcast(Options{Nodes: 4, PPN: 1, Scheme: baseline.NameIntelMPI}, 256<<10, 1, 2)
	off := MeasureIbcast(Options{Nodes: 4, PPN: 1, Scheme: baseline.NameProposed}, 256<<10, 1, 2)
	if off.Overlap <= host.Overlap {
		t.Fatalf("offloaded Ibcast overlap %.1f <= host %.1f", off.Overlap, host.Overlap)
	}
}

func TestMicroMeasurementsSane(t *testing.T) {
	rows := MeasureRDMALatency([]int{8, 1024}, 3)
	if len(rows) != 2 || rows[0].HostDPU <= rows[0].HostHost {
		t.Fatalf("latency rows wrong: %+v", rows)
	}
	bw := MeasureRDMABandwidth([]int{4096}, 16, 2)
	if bw[0].Normalized <= 0 || bw[0].Normalized >= 1 {
		t.Fatalf("small-message normalized bandwidth %v", bw[0].Normalized)
	}
	regs := MeasureRegistration([]int{4096, 65536})
	if regs[1].HostReg <= regs[0].HostReg || regs[1].CrossReg <= regs[1].HostReg {
		t.Fatalf("registration rows wrong: %+v", regs)
	}
	pp := MeasurePingpongNB(Options{Nodes: 2, PPN: 1, Scheme: baseline.NameIntelMPI}, 32<<10, 1, 2)
	if pp <= 0 {
		t.Fatal("pingpong zero")
	}
}

func TestScatterDestSimpleVsGroupRuns(t *testing.T) {
	opt := Options{Nodes: 2, PPN: 2, Scheme: baseline.NameProposed}
	s := MeasureScatterDest(opt, 8<<10, 1, 1, true)
	g := MeasureScatterDest(opt, 8<<10, 1, 1, false)
	if s.PureComm <= 0 || g.PureComm <= 0 {
		t.Fatalf("zero latencies: %v %v", s.PureComm, g.PureComm)
	}
}
