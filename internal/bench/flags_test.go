package bench

import (
	"flag"
	"testing"
)

// Subcommands that share one FlagSet each call RegisterCommonFlags; a second
// registration on the same set must return the original CommonFlags instead
// of panicking on duplicate flag definitions.
func TestRegisterCommonFlagsIdempotent(t *testing.T) {
	fs := flag.NewFlagSet("shared", flag.ContinueOnError)
	first := RegisterCommonFlags(fs)
	defer func() {
		if r := recover(); r != nil {
			t.Fatalf("duplicate registration panicked: %v", r)
		}
	}()
	second := RegisterCommonFlags(fs)
	if first != second {
		t.Fatal("second registration returned a different CommonFlags")
	}
	if err := fs.Parse([]string{"-parallel", "3", "-policy", "adaptive"}); err != nil {
		t.Fatal(err)
	}
	if first.Parallel != 3 || first.Policy != "adaptive" {
		t.Fatalf("parsed values missing from shared CommonFlags: %+v", first)
	}

	// Distinct FlagSets still get distinct CommonFlags.
	other := RegisterCommonFlags(flag.NewFlagSet("other", flag.ContinueOnError))
	if other == first {
		t.Fatal("distinct FlagSets shared one CommonFlags")
	}
}
