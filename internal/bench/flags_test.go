package bench

import (
	"flag"
	"strings"
	"testing"
)

// Subcommands that share one FlagSet each call RegisterCommonFlags; a second
// registration on the same set must return the original CommonFlags instead
// of panicking on duplicate flag definitions.
func TestRegisterCommonFlagsIdempotent(t *testing.T) {
	fs := flag.NewFlagSet("shared", flag.ContinueOnError)
	first := RegisterCommonFlags(fs)
	defer func() {
		if r := recover(); r != nil {
			t.Fatalf("duplicate registration panicked: %v", r)
		}
	}()
	second := RegisterCommonFlags(fs)
	if first != second {
		t.Fatal("second registration returned a different CommonFlags")
	}
	if err := fs.Parse([]string{"-parallel", "3", "-policy", "adaptive"}); err != nil {
		t.Fatal(err)
	}
	if first.Parallel != 3 || first.Policy != "adaptive" {
		t.Fatalf("parsed values missing from shared CommonFlags: %+v", first)
	}

	// Distinct FlagSets still get distinct CommonFlags.
	other := RegisterCommonFlags(flag.NewFlagSet("other", flag.ContinueOnError))
	if other == first {
		t.Fatal("distinct FlagSets shared one CommonFlags")
	}
}

// "-device list" and "-fleet help" are documentation queries: they print
// the capability matrix (the fleet variant adds the grammar) and report
// true, which every CLI translates into a clean exit-0 without running a
// benchmark. Anything else runs normally.
func TestHandleDeviceQuery(t *testing.T) {
	var buf strings.Builder
	cf := &CommonFlags{Device: "list"}
	if !cf.HandleDeviceQuery(&buf) {
		t.Fatal("-device list not treated as a query")
	}
	if !strings.Contains(buf.String(), "bf2") || !strings.Contains(buf.String(), "CROSS-GVMI") {
		t.Fatalf("-device list did not print the capability matrix:\n%s", buf.String())
	}

	buf.Reset()
	cf = &CommonFlags{Fleet: "help"}
	if !cf.HandleDeviceQuery(&buf) {
		t.Fatal("-fleet help not treated as a query")
	}
	if !strings.Contains(buf.String(), "name[:count]") || !strings.Contains(buf.String(), "bf3") {
		t.Fatalf("-fleet help did not print the grammar and matrix:\n%s", buf.String())
	}

	buf.Reset()
	for _, cf := range []*CommonFlags{{}, {Device: "bf3"}, {Fleet: "bf2:2,bf3:2"}} {
		if cf.HandleDeviceQuery(&buf) {
			t.Fatalf("%+v treated as a documentation query", cf)
		}
	}
	if buf.Len() != 0 {
		t.Fatalf("non-query flags printed output: %s", buf.String())
	}
}
