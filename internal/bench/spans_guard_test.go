package bench

import (
	"strings"
	"testing"

	"repro/internal/fault"
	"repro/internal/sim"
	"repro/internal/span"
)

// Zero-overhead guard (live side): attaching a live span collector must not
// move any virtual timestamp — the fig13 timings stay bit-identical to the
// pinned seed constants while the collector fills with spans from every
// instrumented layer.
func TestSpansLiveCollectorMatchesFig13Exactly(t *testing.T) {
	opt := guardOpt()
	sc, r := CollectSpans(opt, 8192, 1, 2)
	if r.PureComm != guardPure8K || r.Overall != guardOverall8K {
		t.Fatalf("8K timings moved under live spans: pure=%d overall=%d, want %d/%d",
			r.PureComm, r.Overall, guardPure8K, guardOverall8K)
	}
	sc64, r64 := CollectSpans(opt, 65536, 1, 2)
	if r64.PureComm != guardPure64K || r64.Overall != guardOverall64K {
		t.Fatalf("64K timings moved under live spans: pure=%d overall=%d, want %d/%d",
			r64.PureComm, r64.Overall, guardPure64K, guardOverall64K)
	}
	bopt := opt
	bopt.Backed = true
	scb, rb := CollectSpans(bopt, 4096, 1, 2)
	if rb.PureComm != guardPure4KBacked || rb.Overall != guardOverall4KBacked {
		t.Fatalf("backed 4K timings moved under live spans: pure=%d overall=%d, want %d/%d",
			rb.PureComm, rb.Overall, guardPure4KBacked, guardOverall4KBacked)
	}

	for _, c := range []*span.Collector{sc, sc64, scb} {
		if c.Len() == 0 {
			t.Fatal("live collector recorded no spans")
		}
		if len(c.RootsNamed("coll", "ialltoall")) == 0 {
			t.Error("no coll/ialltoall root spans recorded")
		}
		layers := map[string]bool{}
		for _, s := range c.Spans() {
			layers[s.Layer] = true
		}
		for _, l := range []string{"coll", "core", "verbs", "fabric"} {
			if !layers[l] {
				t.Errorf("no %s-layer spans recorded", l)
			}
		}
	}
}

// Zero-overhead guard (nil side): explicitly passing no collector takes the
// untouched fast paths and reproduces the same constants, keeping fig13
// bit-identical to BENCH_fig13.json.
func TestSpansNilCollectorMatchesFig13Exactly(t *testing.T) {
	opt := guardOpt()
	opt.Spans = nil
	r := MeasureIalltoall(opt, 8192, 1, 2)
	if r.PureComm != guardPure8K || r.Overall != guardOverall8K {
		t.Fatalf("8K timings moved: pure=%d overall=%d, want %d/%d",
			r.PureComm, r.Overall, guardPure8K, guardOverall8K)
	}
}

// DefaultSpans is how offloadbench attaches -spans without threading a
// collector through every figure function; Build must pick it up when the
// Options carry none, and timings must stay pinned.
func TestDefaultSpansAttachedByBuild(t *testing.T) {
	sc := span.New(0)
	DefaultSpans = sc
	defer func() { DefaultSpans = nil }()
	r := MeasureIalltoall(guardOpt(), 8192, 1, 2)
	if r.PureComm != guardPure8K || r.Overall != guardOverall8K {
		t.Fatalf("timings moved under DefaultSpans: pure=%d overall=%d, want %d/%d",
			r.PureComm, r.Overall, guardPure8K, guardOverall8K)
	}
	if sc.Len() == 0 {
		t.Fatal("DefaultSpans collector recorded nothing")
	}
}

// The core guarantee of critical-path extraction: for every ended root span
// of a fig13 run, the path segments tile the root's window exactly — their
// durations sum to the root's end-to-end latency, nanosecond for nanosecond.
func TestCriticalPathSumsToRootLatencyFig13(t *testing.T) {
	sc, _ := CollectSpans(guardOpt(), 8192, 1, 2)
	roots := sc.Roots()
	if len(roots) == 0 {
		t.Fatal("no root spans")
	}
	checked := 0
	for _, id := range roots {
		s, _ := sc.Get(id)
		if !s.Ended {
			continue
		}
		segs := sc.CriticalPath(id)
		if len(segs) == 0 {
			// Zero-duration roots (e.g. an eager intra-node isend that
			// completes at the instant it starts) tile trivially.
			if s.Dur() != 0 {
				t.Fatalf("root %d (%s/%s) has no critical path", id, s.Layer, s.Name)
			}
			checked++
			continue
		}
		var sum, cursor = sim.Time(0), s.Begin
		for i, seg := range segs {
			if seg.From != cursor {
				t.Fatalf("root %d segment %d starts at %d, want contiguous %d", id, i, seg.From, cursor)
			}
			if seg.To < seg.From {
				t.Fatalf("root %d segment %d negative [%d,%d)", id, i, seg.From, seg.To)
			}
			sum += sim.Time(seg.To - seg.From)
			cursor = seg.To
		}
		if cursor != s.End {
			t.Fatalf("root %d path ends at %d, want %d", id, cursor, s.End)
		}
		if sum != sim.Time(s.Dur()) {
			t.Fatalf("root %d (%s/%s): critical path sums to %d, latency is %d",
				id, s.Layer, s.Name, sum, s.Dur())
		}
		checked++
	}
	if checked == 0 {
		t.Fatal("no ended roots to check")
	}
}

// Span collection, analysis and formatting are deterministic: two identical
// runs produce byte-identical attribution tables, and the table contains
// the layers the collective's critical path passes through. This is the
// golden contract the critical-path subcommand prints.
func TestAttributionTableDeterministicGolden(t *testing.T) {
	render := func() string {
		sc, _ := CollectSpans(guardOpt(), 8192, 1, 2)
		roots := sc.RootsNamed("coll", "ialltoall")
		if len(roots) == 0 {
			t.Fatal("no ialltoall roots")
		}
		rows := sc.Attribution(roots)
		var total sim.Time
		for _, id := range roots {
			s, _ := sc.Get(id)
			if s.Ended {
				total += sim.Time(s.Dur())
			}
		}
		return span.FormatAttribution(rows, total)
	}
	a, b := render(), render()
	if a != b {
		t.Fatalf("attribution table not deterministic:\n--- run 1 ---\n%s--- run 2 ---\n%s", a, b)
	}
	for _, want := range []string{"coll", "core", "fabric", "group_exec", "wire", "total"} {
		if !strings.Contains(a, want) {
			t.Errorf("attribution table missing %q:\n%s", want, a)
		}
	}
}

// Chaos runs keep the causal record consistent: under fault injection every
// ended root still has an exactly-tiling critical path (retransmissions,
// failover control and fallback execution included).
func TestCriticalPathExactUnderChaos(t *testing.T) {
	opt := Options{Nodes: 2, PPN: 4, Scheme: guardOpt().Scheme}
	fcfg := fault.Scaled(7, 1e-3)
	sc, res := CollectChaosSpans(opt, fcfg, 1e-3, 8192, 1, 2)
	if !res.Verified {
		t.Fatalf("chaos run failed verification: %d mismatches", res.Mismatches)
	}
	for _, id := range sc.Roots() {
		s, _ := sc.Get(id)
		if !s.Ended {
			continue
		}
		var sum sim.Time
		for _, seg := range sc.CriticalPath(id) {
			sum += sim.Time(seg.To - seg.From)
		}
		if sum != sim.Time(s.Dur()) {
			t.Fatalf("chaos root %d (%s/%s): path sums to %d, latency is %d",
				id, s.Layer, s.Name, sum, s.Dur())
		}
	}
}
