package bench

import (
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/baseline"
	"repro/internal/metrics"
)

// BenchSchema is the schema tag of perf-regression snapshot files
// (BENCH_fig13.json); bump it when the layout changes incompatibly.
const BenchSchema = "offload-bench/v1"

// BenchPoint is one measured configuration of the snapshot's figure.
type BenchPoint struct {
	Size       int     `json:"size"`
	Backed     bool    `json:"backed"`
	PureNS     int64   `json:"pure_ns"`
	ComputeNS  int64   `json:"compute_ns"`
	OverallNS  int64   `json:"overall_ns"`
	OverlapPct float64 `json:"overlap_pct"`
}

// BenchConfig records the environment the series was measured under.
type BenchConfig struct {
	Nodes  int    `json:"nodes"`
	PPN    int    `json:"ppn"`
	Warmup int    `json:"warmup"`
	Iters  int    `json:"iters"`
	Scheme string `json:"scheme"`
}

// BenchSnapshot is the checked-in perf-regression baseline: the headline
// virtual timings of a figure plus the full metrics snapshot of the runs
// that produced them. Timings are deterministic, so any diff against the
// checked-in file is a real behaviour change.
type BenchSnapshot struct {
	Schema  string           `json:"schema"`
	Figure  string           `json:"figure"`
	Config  BenchConfig      `json:"config"`
	Series  []BenchPoint     `json:"series"`
	Metrics metrics.Snapshot `json:"metrics"`
}

// fig13SnapshotPoints are the measured configurations, chosen to match the
// pinned guard constants in chaos_test.go so the snapshot and the test
// suite can never drift apart silently.
var fig13SnapshotPoints = []struct {
	size   int
	backed bool
}{
	{8 << 10, false},
	{64 << 10, false},
	{4 << 10, true},
}

// Fig13Snapshot measures the fig13 guard configurations (Proposed scheme,
// 2 nodes x 4 PPN, warmup 1, iters 2) with a live metrics registry attached
// and packages timings plus metrics into a BenchSnapshot.
func Fig13Snapshot() BenchSnapshot {
	const warmup, iters = 1, 2
	met := metrics.NewRegistry()
	s := BenchSnapshot{
		Schema: BenchSchema,
		Figure: "fig13",
		Config: BenchConfig{Nodes: 2, PPN: 4, Warmup: warmup, Iters: iters,
			Scheme: baseline.NameProposed},
	}
	series := make([]BenchPoint, len(fig13SnapshotPoints))
	SweepInto(met, len(fig13SnapshotPoints), func(i int, env SweepEnv) {
		pt := fig13SnapshotPoints[i]
		opt := env.Attach(Options{Nodes: 2, PPN: 4, Scheme: baseline.NameProposed,
			Backed: pt.backed})
		r := MeasureIalltoall(opt, pt.size, warmup, iters)
		series[i] = BenchPoint{
			Size:       pt.size,
			Backed:     pt.backed,
			PureNS:     int64(r.PureComm),
			ComputeNS:  int64(r.Compute),
			OverallNS:  int64(r.Overall),
			OverlapPct: r.Overlap,
		}
	})
	s.Series = series
	s.Metrics = met.Snapshot()
	return s
}

// WriteBenchSnapshot writes the snapshot as indented JSON.
func WriteBenchSnapshot(w io.Writer, s BenchSnapshot) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// ParseBenchSnapshot decodes and validates a JSON snapshot (the round-trip
// inverse of WriteBenchSnapshot).
func ParseBenchSnapshot(data []byte) (BenchSnapshot, error) {
	var s BenchSnapshot
	if err := json.Unmarshal(data, &s); err != nil {
		return s, fmt.Errorf("bench: invalid snapshot JSON: %w", err)
	}
	if err := s.Validate(); err != nil {
		return s, err
	}
	return s, nil
}

// Validate checks schema conformance of the snapshot and of the embedded
// metrics section.
func (s BenchSnapshot) Validate() error {
	if s.Schema != BenchSchema {
		return fmt.Errorf("bench: schema %q, want %q", s.Schema, BenchSchema)
	}
	if s.Figure == "" {
		return fmt.Errorf("bench: snapshot has no figure name")
	}
	if s.Config.Nodes <= 0 || s.Config.PPN <= 0 || s.Config.Iters <= 0 || s.Config.Scheme == "" {
		return fmt.Errorf("bench: incomplete config %+v", s.Config)
	}
	if len(s.Series) == 0 {
		return fmt.Errorf("bench: snapshot has no series")
	}
	for i, p := range s.Series {
		if p.Size <= 0 {
			return fmt.Errorf("bench: series[%d] size %d", i, p.Size)
		}
		if p.PureNS <= 0 || p.OverallNS <= 0 || p.ComputeNS < 0 {
			return fmt.Errorf("bench: series[%d] non-positive timings %+v", i, p)
		}
		if p.OverlapPct < 0 || p.OverlapPct > 100 {
			return fmt.Errorf("bench: series[%d] overlap %g out of range", i, p.OverlapPct)
		}
	}
	return s.Metrics.Validate()
}
