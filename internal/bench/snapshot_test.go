package bench

import (
	"bytes"
	"os"
	"reflect"
	"testing"

	"repro/internal/sim"
)

// The generated snapshot must carry the pinned guard timings and round-trip
// through the JSON writer/parser unchanged.
func TestFig13SnapshotMatchesPinnedGuards(t *testing.T) {
	snap := Fig13Snapshot()
	if err := snap.Validate(); err != nil {
		t.Fatal(err)
	}
	assertGuardSeries(t, snap)
	for _, layer := range []string{"fabric", "verbs", "regcache", "core"} {
		if !snap.Metrics.Has(layer) {
			t.Errorf("snapshot metrics missing %s layer", layer)
		}
	}

	var buf bytes.Buffer
	if err := WriteBenchSnapshot(&buf, snap); err != nil {
		t.Fatal(err)
	}
	back, err := ParseBenchSnapshot(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(snap, back) {
		t.Fatal("snapshot did not round-trip through JSON")
	}
}

// The checked-in perf baseline must stay valid and in sync with the pinned
// guard constants; regenerate it with `make bench-snapshot` after an
// intentional timing change.
func TestCheckedInBenchSnapshotValid(t *testing.T) {
	data, err := os.ReadFile("../../BENCH_fig13.json")
	if err != nil {
		t.Fatalf("missing perf baseline (run `make bench-snapshot`): %v", err)
	}
	snap, err := ParseBenchSnapshot(data)
	if err != nil {
		t.Fatal(err)
	}
	assertGuardSeries(t, snap)
}

// assertGuardSeries checks the three headline points against the guard
// constants from chaos_test.go.
func assertGuardSeries(t *testing.T, snap BenchSnapshot) {
	t.Helper()
	want := []struct {
		size          int
		backed        bool
		pure, overall sim.Time
	}{
		{8 << 10, false, guardPure8K, guardOverall8K},
		{64 << 10, false, guardPure64K, guardOverall64K},
		{4 << 10, true, guardPure4KBacked, guardOverall4KBacked},
	}
	if len(snap.Series) != len(want) {
		t.Fatalf("snapshot has %d series, want %d", len(snap.Series), len(want))
	}
	for i, w := range want {
		p := snap.Series[i]
		if p.Size != w.size || p.Backed != w.backed {
			t.Fatalf("series[%d] is size=%d backed=%v, want %d/%v", i, p.Size, p.Backed, w.size, w.backed)
		}
		if p.PureNS != int64(w.pure) || p.OverallNS != int64(w.overall) {
			t.Fatalf("series[%d] pure=%d overall=%d, want %d/%d (regenerate with `make bench-snapshot` if intended)",
				i, p.PureNS, p.OverallNS, w.pure, w.overall)
		}
	}
}
