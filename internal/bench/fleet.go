// The fleet bench is the mixed-fleet acceptance scenario of the device
// substrate: half the nodes carry the baseline BlueField-2 part, half the
// BlueField-3 part, and ranks exchange cross-half point-to-point messages
// sized inside the window where the two parts disagree about host-vs-
// offload (above BlueField-3's scaled cutoff, at or below BlueField-2's).
// A capability-blind adaptive policy keeps every transfer on the host; a
// capability-aware policy offloads exactly the transfers whose sender owns
// the cheaper DPU, which is the measurable margin FleetSnapshot.Validate
// pins. The same snapshot also re-measures the fig13 guard configurations
// on an explicit homogeneous bf2 fleet and requires them byte-identical to
// the checked-in BENCH_fig13.json — the proof that the profile substrate
// did not move the legacy numbers.
package bench

import (
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/baseline"
	"repro/internal/coll"
	"repro/internal/metrics"
	"repro/internal/mpi"
	"repro/internal/sim"
)

// FleetSchema is the schema tag of BENCH_fleet.json; bump it when the
// layout changes incompatibly.
const FleetSchema = "offload-fleet/v1"

// Fleet bench shape: 4 nodes x 2 PPN, the first two nodes BlueField-2 and
// the last two BlueField-3, exchanging 6400-byte messages — above the
// BlueField-3 scaled cutoff (5430B), at or below the BlueField-2 one
// (8 KiB), and inside the window where the measured overlap-methodology
// breakevens of the two parts actually disagree on this cluster (the
// BlueField-3 half already wins by offloading, the BlueField-2 half still
// wins by staying on the host).
const (
	fleetSpec   = "bf2:2,bf3:2"
	fleetNodes  = 4
	fleetPPN    = 2
	fleetSize   = 6400
	fleetWarmup = 1
	fleetIters  = 5
)

// fleetPolicies are the policy bundles the mixed-fleet table compares. The
// two fixed paths bracket the decision space; "adaptive" is the
// capability-blind rule and "aware" the capability-aware one.
var fleetPolicies = []string{"hostdirect", "gvmi", "adaptive", "aware"}

// FleetPoint is one policy's measurement on the mixed fleet.
type FleetPoint struct {
	Policy     string  `json:"policy"`
	PureNS     int64   `json:"pure_ns"`
	ComputeNS  int64   `json:"compute_ns"`
	OverallNS  int64   `json:"overall_ns"`
	OverlapPct float64 `json:"overlap_pct"`
}

// FleetSnapshot is the checked-in mixed-fleet baseline: the homogeneous
// bf2 re-measurement of the fig13 guard points, the per-policy mixed-fleet
// table, and the full metrics snapshot of the runs that produced both.
type FleetSnapshot struct {
	Schema      string           `json:"schema"`
	Fleet       string           `json:"fleet"`
	Config      BenchConfig      `json:"config"`
	Size        int              `json:"size"`
	Homogeneous []BenchPoint     `json:"homogeneous"`
	Mixed       []FleetPoint     `json:"mixed"`
	Metrics     metrics.Snapshot `json:"metrics"`
}

// MeasureFleetExchange measures an inter-node pairwise exchange within
// each fleet half: every rank sends one message to (and receives one from)
// a rank on the *other node of its own half*, first bare (pure latency),
// then with compute sized to the rank's pure latency injected between
// issue and wait (the OMB overlap methodology). Pairing stays within a
// half so each device's host-vs-offload decision is measured on its own
// hardware — a cross-device pair would serialize the slower direction
// into both ranks' completion and blur the per-device margin. Reported
// values are the mean over ranks (the whole-fleet cost a scheduler sees),
// not the max, which on a mixed fleet is pinned to the slower half no
// matter what the faster half's policy does.
func MeasureFleetExchange(opt Options, msgSize, warmup, iters int) NBCResult {
	e := Build(opt)
	np := e.Cl.Cfg.NP()
	half := np / 2
	pure := make([]sim.Time, np)
	comp := make([]sim.Time, np)
	overall := make([]sim.Time, np)

	e.Launch(func(r *mpi.Rank, _ coll.Ops, p2p coll.P2P) {
		me := r.RankID()
		base := (me / half) * half
		peer := base + (me-base+opt.PPN)%half
		sbuf := r.Alloc(msgSize)
		rbuf := r.Alloc(msgSize)

		round := func(compute sim.Time) {
			rq := p2p.Irecv(rbuf.Addr(), msgSize, peer, 7)
			sq := p2p.Isend(sbuf.Addr(), msgSize, peer, 7)
			if compute > 0 {
				r.Compute(compute)
			}
			p2p.WaitAll([]coll.Request{rq, sq})
		}

		for it := 0; it < warmup; it++ {
			round(0)
			r.Barrier()
		}
		var acc sim.Time
		for it := 0; it < iters; it++ {
			t0 := r.Now()
			round(0)
			acc += r.Now() - t0
			r.Barrier()
		}
		pure[me] = acc / sim.Time(iters)

		comp[me] = pure[me]
		acc = 0
		for it := 0; it < iters; it++ {
			t0 := r.Now()
			round(comp[me])
			acc += r.Now() - t0
			r.Barrier()
		}
		overall[me] = acc / sim.Time(iters)
	})

	res := NBCResult{Scheme: opt.Policy, Nodes: opt.Nodes, PPN: opt.PPN, MsgSize: msgSize}
	for i := 0; i < np; i++ {
		res.PureComm += pure[i]
		res.Compute += comp[i]
		res.Overall += overall[i]
	}
	res.PureComm /= sim.Time(np)
	res.Compute /= sim.Time(np)
	res.Overall /= sim.Time(np)
	res.Overlap = OverlapPct(res.PureComm, res.Compute, res.Overall)
	return res
}

// MeasureFleet produces the checked-in fleet snapshot: the fig13 guard
// points on an explicit homogeneous bf2 fleet plus the mixed-fleet policy
// table, all under one metrics registry.
func MeasureFleet() FleetSnapshot {
	const warmup, iters = 1, 2 // fig13 guard parameters (must match Fig13Snapshot)
	met := metrics.NewRegistry()
	s := FleetSnapshot{
		Schema: FleetSchema,
		Fleet:  fleetSpec,
		Config: BenchConfig{Nodes: fleetNodes, PPN: fleetPPN, Warmup: fleetWarmup,
			Iters: fleetIters, Scheme: "policy-p2p"},
		Size: fleetSize,
	}
	homog := make([]BenchPoint, len(fig13SnapshotPoints))
	mixed := make([]FleetPoint, len(fleetPolicies))
	SweepInto(met, len(fig13SnapshotPoints)+len(fleetPolicies), func(i int, env SweepEnv) {
		if i < len(fig13SnapshotPoints) {
			pt := fig13SnapshotPoints[i]
			opt := env.Attach(Options{Nodes: 2, PPN: 4, Scheme: baseline.NameProposed,
				Backed: pt.backed, Device: "bf2"})
			r := MeasureIalltoall(opt, pt.size, warmup, iters)
			homog[i] = BenchPoint{
				Size:       pt.size,
				Backed:     pt.backed,
				PureNS:     int64(r.PureComm),
				ComputeNS:  int64(r.Compute),
				OverallNS:  int64(r.Overall),
				OverlapPct: r.Overlap,
			}
			return
		}
		pol := fleetPolicies[i-len(fig13SnapshotPoints)]
		opt := env.Attach(Options{Nodes: fleetNodes, PPN: fleetPPN, Scheme: baseline.NameProposed,
			Policy: pol, Fleet: fleetSpec})
		r := MeasureFleetExchange(opt, fleetSize, fleetWarmup, fleetIters)
		mixed[i-len(fig13SnapshotPoints)] = FleetPoint{
			Policy:     pol,
			PureNS:     int64(r.PureComm),
			ComputeNS:  int64(r.Compute),
			OverallNS:  int64(r.Overall),
			OverlapPct: r.Overlap,
		}
	})
	s.Homogeneous = homog
	s.Mixed = mixed
	s.Metrics = met.Snapshot()
	return s
}

// WriteFleetSnapshot writes the snapshot as indented JSON.
func WriteFleetSnapshot(w io.Writer, s FleetSnapshot) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// ParseFleetSnapshot decodes and validates a JSON fleet snapshot against
// the fig13 baseline it must agree with.
func ParseFleetSnapshot(data []byte, fig BenchSnapshot) (FleetSnapshot, error) {
	var s FleetSnapshot
	if err := json.Unmarshal(data, &s); err != nil {
		return s, fmt.Errorf("bench: invalid fleet snapshot JSON: %w", err)
	}
	if err := s.Validate(fig); err != nil {
		return s, err
	}
	return s, nil
}

// point returns the mixed-table entry of one policy.
func (s FleetSnapshot) point(policy string) (FleetPoint, error) {
	for _, p := range s.Mixed {
		if p.Policy == policy {
			return p, nil
		}
	}
	return FleetPoint{}, fmt.Errorf("bench: fleet snapshot has no %q point", policy)
}

// Validate checks schema conformance and the two headline claims of the
// fleet bench:
//
//  1. Homogeneity: the fig13 guard configurations measured on an explicit
//     all-bf2 fleet are identical — field for field — to the checked-in
//     BENCH_fig13.json series. Naming the baseline device must be a no-op.
//  2. Crossover: on the mixed fleet, the capability-aware policy is at
//     least as fast as the best fixed path and strictly faster than the
//     capability-blind adaptive policy (which leaves the BlueField-3
//     senders' offload window on the table).
func (s FleetSnapshot) Validate(fig BenchSnapshot) error {
	if s.Schema != FleetSchema {
		return fmt.Errorf("bench: fleet schema %q, want %q", s.Schema, FleetSchema)
	}
	if s.Fleet == "" || s.Size <= 0 {
		return fmt.Errorf("bench: incomplete fleet snapshot (fleet %q, size %d)", s.Fleet, s.Size)
	}
	if s.Config.Nodes <= 0 || s.Config.PPN <= 0 || s.Config.Iters <= 0 {
		return fmt.Errorf("bench: incomplete fleet config %+v", s.Config)
	}
	if len(s.Homogeneous) != len(fig.Series) {
		return fmt.Errorf("bench: homogeneous section has %d points, fig13 has %d",
			len(s.Homogeneous), len(fig.Series))
	}
	for i, p := range s.Homogeneous {
		if p != fig.Series[i] {
			return fmt.Errorf("bench: homogeneous bf2 point %d diverged from fig13: %+v != %+v",
				i, p, fig.Series[i])
		}
	}
	aware, err := s.point("aware")
	if err != nil {
		return err
	}
	blind, err := s.point("adaptive")
	if err != nil {
		return err
	}
	for _, fixed := range []string{"hostdirect", "gvmi"} {
		p, err := s.point(fixed)
		if err != nil {
			return err
		}
		if aware.OverallNS > p.OverallNS {
			return fmt.Errorf("bench: aware overall %dns slower than fixed %s %dns on the mixed fleet",
				aware.OverallNS, fixed, p.OverallNS)
		}
	}
	if aware.OverallNS >= blind.OverallNS {
		return fmt.Errorf("bench: aware overall %dns not strictly faster than capability-blind adaptive %dns",
			aware.OverallNS, blind.OverallNS)
	}
	for _, p := range s.Mixed {
		if p.PureNS <= 0 || p.OverallNS <= 0 || p.ComputeNS < 0 {
			return fmt.Errorf("bench: fleet point %q non-positive timings %+v", p.Policy, p)
		}
	}
	return s.Metrics.Validate()
}
