package bench

import (
	"strings"
	"testing"

	"repro/internal/metrics"
	"repro/internal/telemetry"
)

// Zero-overhead guard (live side): a live flight recorder samples the
// registry on every bucket boundary of the run, and the fig13 timings must
// stay bit-identical to the pinned seed constants — the tick hook observes,
// never schedules.
func TestTimelineRecorderMatchesFig13Exactly(t *testing.T) {
	met := metrics.NewRegistry()
	rec := telemetry.NewRecorder("guard", telemetry.Config{})
	opt := guardOpt()
	opt.Metrics = met
	opt.Timeline = rec
	r := MeasureIalltoall(opt, 8192, 1, 2)
	if r.PureComm != guardPure8K || r.Overall != guardOverall8K {
		t.Fatalf("8K timings moved under live recorder: pure=%d overall=%d, want %d/%d",
			r.PureComm, r.Overall, guardPure8K, guardOverall8K)
	}
	r = MeasureIalltoall(opt, 65536, 1, 2)
	if r.PureComm != guardPure64K || r.Overall != guardOverall64K {
		t.Fatalf("64K timings moved under live recorder: pure=%d overall=%d, want %d/%d",
			r.PureComm, r.Overall, guardPure64K, guardOverall64K)
	}
	// The recorder actually recorded: fabric counters became time series.
	found := false
	for _, s := range rec.Sorted() {
		if s.Key.Layer == "fabric" && s.Key.Name == "msgs_tx" && s.Kind == telemetry.KindCounter {
			found = true
			break
		}
	}
	if !found {
		t.Fatal("live recorder produced no fabric msgs_tx series")
	}
}

// Zero-overhead guard (nil side): an explicitly nil recorder takes the
// untouched fast paths and reproduces the same constants, so a future
// non-nil default cannot slip in.
func TestTimelineNilRecorderMatchesFig13Exactly(t *testing.T) {
	opt := guardOpt()
	opt.Timeline = nil
	r := MeasureIalltoall(opt, 8192, 1, 2)
	if r.PureComm != guardPure8K || r.Overall != guardOverall8K {
		t.Fatalf("8K timings moved: pure=%d overall=%d, want %d/%d",
			r.PureComm, r.Overall, guardPure8K, guardOverall8K)
	}
}

// DefaultTimeline is how offloadbench attaches -timeseries without
// threading a recorder through every figure function; Build must hand each
// environment a fresh recorder from it, and timings must stay pinned.
func TestDefaultTimelineAttachedByBuild(t *testing.T) {
	met := metrics.NewRegistry()
	tl := telemetry.NewTimeline(telemetry.Config{})
	DefaultMetrics = met
	DefaultTimeline = tl
	defer func() { DefaultMetrics = nil; DefaultTimeline = nil }()
	r := MeasureIalltoall(guardOpt(), 8192, 1, 2)
	if r.PureComm != guardPure8K || r.Overall != guardOverall8K {
		t.Fatalf("timings moved under DefaultTimeline: pure=%d overall=%d, want %d/%d",
			r.PureComm, r.Overall, guardPure8K, guardOverall8K)
	}
	recs := tl.Recorders()
	if len(recs) != 1 {
		t.Fatalf("timeline tracked %d recorders, want 1 per environment", len(recs))
	}
	if len(recs[0].Sorted()) == 0 {
		t.Fatal("the environment's recorder recorded nothing")
	}
}

// Timeline exports must be byte-identical at any sweep worker count — the
// determinism contract every bench artifact carries. Each drift run owns a
// private registry and recorder, so the parallel runner cannot reorder or
// interleave samples.
func TestTimelineSweepParallelIdentical(t *testing.T) {
	export := func(workers int) string {
		old := Parallelism
		Parallelism = workers
		defer func() { Parallelism = old }()
		runs := CollectDriftTimelines(2, 2, 10, []string{"measure", "feedback"}, nil)
		recs := make([]*telemetry.Recorder, len(runs))
		for i := range runs {
			recs[i] = runs[i].Rec
		}
		var sb strings.Builder
		if err := telemetry.WriteJSONL(&sb, recs...); err != nil {
			t.Fatal(err)
		}
		if err := telemetry.WritePrometheusTS(&sb, recs...); err != nil {
			t.Fatal(err)
		}
		return sb.String()
	}
	serial := export(1)
	parallel := export(4)
	if serial != parallel {
		t.Fatal("timeline exports diverge between worker counts")
	}
	if !strings.Contains(serial, `"run":"feedback"`) {
		t.Fatal("export is missing the feedback run's series")
	}
}

// The drift-attribution report must reproduce the BENCH_drift claims from
// first principles: per-phase critical paths that tile exactly (checked
// inside AttributeDrift), the feedback policy's re-probes landing in the
// degraded window, and the post-drift gap between the frozen Measuring
// policy and the re-routed feedback policy.
func TestDriftAttributionClaims(t *testing.T) {
	atts, runs, err := MeasureDriftAttribution(2, 2, 32)
	if err != nil {
		t.Fatal(err)
	}
	if len(runs) != len(atts) {
		t.Fatalf("%d runs for %d attributions", len(runs), len(atts))
	}
	byPolicy := map[string]DriftAttribution{}
	for _, a := range atts {
		byPolicy[a.Policy] = a
	}
	meas, ok := byPolicy["measure"]
	if !ok {
		t.Fatal("no attribution for measure")
	}
	fb, ok := byPolicy["feedback"]
	if !ok {
		t.Fatal("no attribution for feedback")
	}

	for _, a := range []DriftAttribution{meas, fb} {
		for _, ph := range DriftPhases {
			p := a.Phase(ph)
			if p == nil {
				t.Fatalf("%s: missing phase %s", a.Policy, ph)
			}
			if p.Roots == 0 {
				t.Fatalf("%s phase %s has no collective roots", a.Policy, ph)
			}
		}
		// Pre-drift the objective holds and the proxy is idle; degraded the
		// recorder sees the backlog explode over the same window.
		pre, deg := a.Phase("pre"), a.Phase("degraded")
		if pre.P99 > DriftSLOObjective {
			t.Fatalf("%s pre-drift p99 %v violates the %v objective", a.Policy, pre.P99, DriftSLOObjective)
		}
		if pre.SLOViolations != 0 {
			t.Fatalf("%s pre-drift has %d SLO violations", a.Policy, pre.SLOViolations)
		}
		if deg.MaxQueueDepth <= pre.MaxQueueDepth {
			t.Fatalf("%s degraded max queue %.0f not above pre %.0f",
				a.Policy, deg.MaxQueueDepth, pre.MaxQueueDepth)
		}
		if deg.SLOViolations == 0 {
			t.Fatalf("%s degraded window shows no SLO violations", a.Policy)
		}
	}

	// The re-probe is the degraded-phase event that explains the post-drift
	// gap: feedback re-probes there (and only there), measure never does.
	if got := fb.Phase("degraded").Reprobes; got < 1 {
		t.Fatalf("feedback re-probed %d times in the degraded phase, want >= 1", got)
	}
	if got := fb.Phase("pre").Reprobes; got != 0 {
		t.Fatalf("feedback re-probed %d times pre-drift", got)
	}
	for _, ph := range DriftPhases {
		if got := meas.Phase(ph).Reprobes; got != 0 {
			t.Fatalf("measure re-probed %d times in phase %s (freeze-once must not)", got, ph)
		}
	}

	// Post-drift: measure is frozen on the saturated proxy, feedback
	// re-routed — its p50 and p99 both beat measure's.
	mp, fp := meas.Phase("post"), fb.Phase("post")
	if fp.P50 >= mp.P50 || fp.P99 >= mp.P99 {
		t.Fatalf("post-drift feedback (p50 %v, p99 %v) does not beat frozen measure (p50 %v, p99 %v)",
			fp.P50, fp.P99, mp.P50, mp.P99)
	}
}
