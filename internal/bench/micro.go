package bench

import (
	"fmt"

	"repro/internal/cluster"
	"repro/internal/sim"
	"repro/internal/verbs"
)

// LatencyRow is one point of the Figure 2 microbenchmark.
type LatencyRow struct {
	Size     int
	HostHost sim.Time // writer runs on a host core
	HostDPU  sim.Time // writer runs on a BlueField ARM core
}

// BandwidthRow is one point of the Figure 3 microbenchmark. Values are in
// GB/s; Normalized is HostDPU/HostHost (the paper normalizes to host).
type BandwidthRow struct {
	Size       int
	HostHost   float64
	HostDPU    float64
	Normalized float64
}

// RegistrationRow is one point of the Figure 5 microbenchmark.
type RegistrationRow struct {
	Size     int
	HostReg  sim.Time // host-side GVMI registration
	CrossReg sim.Time // DPU-side cross-registration
}

// microRig is a 2-node testbed with a writable destination on node 1 and
// two possible writers on node 0: a host process and a DPU process.
type microRig struct {
	cl *cluster.Cluster
}

func newMicroRig() *microRig {
	return &microRig{cl: cluster.New(cluster.DefaultConfig(2, 1))}
}

// MeasureRDMALatency reproduces Figure 2: one-way RDMA-write latency when
// the writer is a host process versus a DPU (ARM) process. The latency is
// measured as half of a write-write pingpong. Each (size, writer) sample is
// an independent rig, so the sweep parallelizes; samples write disjoint
// fields of their pre-sized row.
func MeasureRDMALatency(sizes []int, iters int) []LatencyRow {
	rows := make([]LatencyRow, len(sizes))
	for i, size := range sizes {
		rows[i].Size = size
	}
	Sweep(2*len(sizes), func(j int, _ SweepEnv) {
		i := j / 2
		if j%2 == 0 {
			rows[i].HostHost = pingpongHalf(rows[i].Size, iters, false)
		} else {
			rows[i].HostDPU = pingpongHalf(rows[i].Size, iters, true)
		}
	})
	return rows
}

func pingpongHalf(size, iters int, writerOnDPU bool) sim.Time {
	rig := newMicroRig()
	cl := rig.cl
	var writerSite *cluster.Site
	if writerOnDPU {
		writerSite = cl.NewDPUSite(0, "writer")
	} else {
		writerSite = cl.NewHostSite(0, "writer")
	}
	echoSite := cl.NewHostSite(1, "echo")

	wbuf := writerSite.Space.Alloc(size, false)
	ebuf := echoSite.Space.Alloc(size, false)

	var half sim.Time
	total := iters + 1 // one warmup round
	var wmr, emr *verbs.MR

	// The echo side: on every arrival (write with immediate), post the
	// response from its own core.
	cl.K.Spawn("echo", func(p *sim.Proc) {
		emr = echoSite.Ctx.RegisterMR(p, ebuf.Addr(), size)
		for i := 0; i < total; i++ {
			echoSite.Ctx.AwaitInbox(p)
			echoSite.Ctx.PollInbox()
			err := echoSite.Ctx.PostWrite(p, verbs.WriteOp{
				LocalKey: emr.LKey(), LocalAddr: ebuf.Addr(),
				RemoteKey: wmr.RKey(), RemoteAddr: wbuf.Addr(), Size: size,
				Notify: &verbs.Packet{Kind: "pong"},
			})
			if err != nil {
				panic(err)
			}
		}
	})

	cl.K.Spawn("writer", func(p *sim.Proc) {
		wmr = writerSite.Ctx.RegisterMR(p, wbuf.Addr(), size)
		round := func() {
			err := writerSite.Ctx.PostWrite(p, verbs.WriteOp{
				LocalKey: wmr.LKey(), LocalAddr: wbuf.Addr(),
				RemoteKey: emr.RKey(), RemoteAddr: ebuf.Addr(), Size: size,
				Notify: &verbs.Packet{Kind: "ping"},
			})
			if err != nil {
				panic(err)
			}
			writerSite.Ctx.AwaitInbox(p)
			writerSite.Ctx.PollInbox()
		}
		round() // warmup
		t0 := p.Now()
		for i := 0; i < iters; i++ {
			round()
		}
		half = (p.Now() - t0) / sim.Time(2*iters)
	})
	cl.K.Run()
	cl.K.Shutdown()
	return half
}

// MeasureRDMABandwidth reproduces Figure 3: streaming RDMA-write bandwidth
// with a window of outstanding writes, for a host writer versus a DPU
// writer, normalized to the host writer.
func MeasureRDMABandwidth(sizes []int, window, iters int) []BandwidthRow {
	rows := make([]BandwidthRow, len(sizes))
	for i, size := range sizes {
		rows[i].Size = size
	}
	Sweep(2*len(sizes), func(j int, _ SweepEnv) {
		i := j / 2
		if j%2 == 0 {
			rows[i].HostHost = streamBW(rows[i].Size, window, iters, false)
		} else {
			rows[i].HostDPU = streamBW(rows[i].Size, window, iters, true)
		}
	})
	for i := range rows {
		rows[i].Normalized = rows[i].HostDPU / rows[i].HostHost
	}
	return rows
}

func streamBW(size, window, iters int, writerOnDPU bool) float64 {
	rig := newMicroRig()
	cl := rig.cl
	var writerSite *cluster.Site
	if writerOnDPU {
		writerSite = cl.NewDPUSite(0, "writer")
	} else {
		writerSite = cl.NewHostSite(0, "writer")
	}
	dstSite := cl.NewHostSite(1, "dst")

	wbuf := writerSite.Space.Alloc(size, false)
	dbuf := dstSite.Space.Alloc(size, false)

	var bw float64
	cl.K.Spawn("stream", func(p *sim.Proc) {
		wmr := writerSite.Ctx.RegisterMR(p, wbuf.Addr(), size)
		dmr := dstSite.Ctx.RegisterMR(p, dbuf.Addr(), size)
		total := window * iters
		done := 0
		t0 := p.Now()
		for i := 0; i < total; i++ {
			err := writerSite.Ctx.PostWrite(p, verbs.WriteOp{
				LocalKey: wmr.LKey(), LocalAddr: wbuf.Addr(),
				RemoteKey: dmr.RKey(), RemoteAddr: dbuf.Addr(), Size: size,
				OnRemoteComplete: func(sim.Time) { done++ },
			})
			if err != nil {
				panic(err)
			}
		}
		for done < total {
			p.Sleep(200)
		}
		elapsed := p.Now() - t0
		bw = float64(total*size) / float64(elapsed) // bytes per ns == GB/s
	})
	cl.K.Run()
	cl.K.Shutdown()
	return bw
}

// MeasureRegistration reproduces Figure 5: the cost of the host-side GVMI
// registration and of the DPU-side cross-registration as a function of
// buffer size. Fresh buffers are used for every sample so no cache hides
// the cost.
func MeasureRegistration(sizes []int) []RegistrationRow {
	rig := newMicroRig()
	cl := rig.cl
	host := cl.NewHostSite(0, "host")
	dpu := cl.NewDPUSite(0, "proxy")
	id := cl.GVMI.GenerateID(dpu.Ctx)

	rows := make([]RegistrationRow, 0, len(sizes))
	cl.K.Spawn("reg", func(p *sim.Proc) {
		for _, size := range sizes {
			buf := host.Space.Alloc(size, false)
			t0 := p.Now()
			info, err := cl.GVMI.RegisterHost(p, host.Ctx, buf.Addr(), size, id)
			if err != nil {
				panic(err)
			}
			hostCost := p.Now() - t0
			t0 = p.Now()
			if _, err := cl.GVMI.CrossRegister(p, dpu.Ctx, info); err != nil {
				panic(err)
			}
			crossCost := p.Now() - t0
			rows = append(rows, RegistrationRow{Size: size, HostReg: hostCost, CrossReg: crossCost})
		}
	})
	cl.K.Run()
	cl.K.Shutdown()
	return rows
}

// SizeLabel formats a byte count the way OMB tables do.
func SizeLabel(n int) string {
	switch {
	case n >= 1<<20 && n%(1<<20) == 0:
		return fmt.Sprintf("%dM", n>>20)
	case n >= 1<<10 && n%(1<<10) == 0:
		return fmt.Sprintf("%dK", n>>10)
	default:
		return fmt.Sprintf("%d", n)
	}
}

// Pow2Sizes returns powers of two from lo to hi inclusive.
func Pow2Sizes(lo, hi int) []int {
	var out []int
	for s := lo; s <= hi; s <<= 1 {
		out = append(out, s)
	}
	return out
}
