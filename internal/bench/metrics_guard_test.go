package bench

import (
	"testing"

	"repro/internal/metrics"
)

// Zero-overhead guard (live side): attaching a live metrics registry must
// not move any virtual timestamp — the fig13 timings stay bit-identical to
// the pinned seed constants while the registry fills with series from every
// instrumented layer.
func TestMetricsLiveRegistryMatchesFig13Exactly(t *testing.T) {
	met := metrics.NewRegistry()
	opt := guardOpt()
	opt.Metrics = met
	r := MeasureIalltoall(opt, 8192, 1, 2)
	if r.PureComm != guardPure8K || r.Overall != guardOverall8K {
		t.Fatalf("8K timings moved under live metrics: pure=%d overall=%d, want %d/%d",
			r.PureComm, r.Overall, guardPure8K, guardOverall8K)
	}
	r = MeasureIalltoall(opt, 65536, 1, 2)
	if r.PureComm != guardPure64K || r.Overall != guardOverall64K {
		t.Fatalf("64K timings moved under live metrics: pure=%d overall=%d, want %d/%d",
			r.PureComm, r.Overall, guardPure64K, guardOverall64K)
	}
	bopt := opt
	bopt.Backed = true
	r = MeasureIalltoall(bopt, 4096, 1, 2)
	if r.PureComm != guardPure4KBacked || r.Overall != guardOverall4KBacked {
		t.Fatalf("backed 4K timings moved under live metrics: pure=%d overall=%d, want %d/%d",
			r.PureComm, r.Overall, guardPure4KBacked, guardOverall4KBacked)
	}

	snap := met.Snapshot()
	for _, layer := range []string{"fabric", "verbs", "regcache", "core"} {
		if !snap.Has(layer) {
			t.Errorf("no %s series recorded", layer)
		}
	}
	if err := snap.Validate(); err != nil {
		t.Fatal(err)
	}
	var tx int64
	for _, c := range snap.Counters {
		if c.Layer == "fabric" && c.Name == "msgs_tx" {
			tx += c.Value
		}
	}
	if tx == 0 {
		t.Fatal("no fabric traffic counted across three runs")
	}
}

// Zero-overhead guard (nil side): explicitly passing no registry takes the
// untouched fast paths and reproduces the same constants. This is the
// configuration TestFig13TimingsBitIdenticalToSeed exercises implicitly;
// here the nil is explicit so a future non-nil default cannot slip in.
func TestMetricsNilRegistryMatchesFig13Exactly(t *testing.T) {
	opt := guardOpt()
	opt.Metrics = nil
	r := MeasureIalltoall(opt, 8192, 1, 2)
	if r.PureComm != guardPure8K || r.Overall != guardOverall8K {
		t.Fatalf("8K timings moved: pure=%d overall=%d, want %d/%d",
			r.PureComm, r.Overall, guardPure8K, guardOverall8K)
	}
}

// DefaultMetrics is how offloadbench attaches -metrics without threading a
// registry through every figure function; Build must pick it up when the
// Options carry none, and timings must stay pinned.
func TestDefaultMetricsAttachedByBuild(t *testing.T) {
	met := metrics.NewRegistry()
	DefaultMetrics = met
	defer func() { DefaultMetrics = nil }()
	r := MeasureIalltoall(guardOpt(), 8192, 1, 2)
	if r.PureComm != guardPure8K || r.Overall != guardOverall8K {
		t.Fatalf("timings moved under DefaultMetrics: pure=%d overall=%d, want %d/%d",
			r.PureComm, r.Overall, guardPure8K, guardOverall8K)
	}
	if !met.Snapshot().Has("fabric") {
		t.Fatal("DefaultMetrics registry recorded nothing")
	}
}
