package bench

import (
	"bytes"
	"os"
	"reflect"
	"testing"
)

// readFig13 loads the checked-in fig13 baseline the fleet snapshot
// validates against.
func readFig13(t *testing.T) BenchSnapshot {
	t.Helper()
	data, err := os.ReadFile("../../BENCH_fig13.json")
	if err != nil {
		t.Fatalf("missing perf baseline (run `make bench-snapshot`): %v", err)
	}
	fig, err := ParseBenchSnapshot(data)
	if err != nil {
		t.Fatal(err)
	}
	return fig
}

// The checked-in mixed-fleet baseline must parse, pass its own Validate
// (homogeneous bf2 == fig13 field for field, aware <= both fixed paths and
// strictly < blind adaptive), and be exactly reproducible: MeasureFleet is
// deterministic, so the snapshot regenerates identically or the file is
// stale. Regenerate with `make bench-fleet` after an intentional change.
func TestCheckedInFleetSnapshotValidAndReproducible(t *testing.T) {
	fig := readFig13(t)
	data, err := os.ReadFile("../../BENCH_fleet.json")
	if err != nil {
		t.Fatalf("missing fleet baseline (run `make bench-fleet`): %v", err)
	}
	checked, err := ParseFleetSnapshot(data, fig)
	if err != nil {
		t.Fatal(err)
	}

	fresh := MeasureFleet()
	if err := fresh.Validate(fig); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(checked, fresh) {
		t.Fatal("BENCH_fleet.json is stale: MeasureFleet no longer reproduces it (run `make bench-fleet`)")
	}

	var buf bytes.Buffer
	if err := WriteFleetSnapshot(&buf, fresh); err != nil {
		t.Fatal(err)
	}
	back, err := ParseFleetSnapshot(buf.Bytes(), fig)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(fresh, back) {
		t.Fatal("fleet snapshot did not round-trip through JSON")
	}
}

// Validate rejects the failure modes the fleet baseline guards against:
// schema drift, a homogeneous section that diverged from fig13, a lost
// crossover, and a missing policy point.
func TestFleetValidateRejects(t *testing.T) {
	fig := readFig13(t)
	data, err := os.ReadFile("../../BENCH_fleet.json")
	if err != nil {
		t.Fatal(err)
	}
	good, err := ParseFleetSnapshot(data, fig)
	if err != nil {
		t.Fatal(err)
	}
	corrupt := func(f func(*FleetSnapshot)) error {
		s := good
		s.Homogeneous = append([]BenchPoint(nil), good.Homogeneous...)
		s.Mixed = append([]FleetPoint(nil), good.Mixed...)
		f(&s)
		return s.Validate(fig)
	}
	if err := corrupt(func(s *FleetSnapshot) { s.Schema = "bogus/v0" }); err == nil {
		t.Error("schema drift accepted")
	}
	if err := corrupt(func(s *FleetSnapshot) { s.Homogeneous[0].OverallNS++ }); err == nil {
		t.Error("homogeneous divergence from fig13 accepted")
	}
	if err := corrupt(func(s *FleetSnapshot) {
		for i := range s.Mixed {
			if s.Mixed[i].Policy == "aware" {
				s.Mixed[i].OverallNS = good.Mixed[0].OverallNS + 1<<20
			}
		}
	}); err == nil {
		t.Error("lost crossover accepted")
	}
	if err := corrupt(func(s *FleetSnapshot) { s.Mixed = s.Mixed[:2] }); err == nil {
		t.Error("missing policy point accepted")
	}
	if err := corrupt(func(s *FleetSnapshot) { s.Mixed[0].PureNS = 0 }); err == nil {
		t.Error("non-positive timing accepted")
	}
}
