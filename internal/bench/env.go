// Package bench assembles benchmark environments (cluster + MPI world +
// offload framework per scheme) and implements the OMB-style measurement
// loops used to regenerate every figure of the paper's evaluation.
package bench

import (
	"fmt"

	"repro/internal/baseline"
	"repro/internal/cluster"
	"repro/internal/coll"
	"repro/internal/core"
	"repro/internal/device"
	"repro/internal/metrics"
	"repro/internal/mpi"
	"repro/internal/policy"
	"repro/internal/sim"
	"repro/internal/span"
	"repro/internal/telemetry"
)

// DefaultMetrics, when set, is attached to every environment Build creates
// that does not carry its own registry (Options.Metrics or a full cluster
// override). offloadbench sets it from the -metrics flag so all figure
// paths record without threading a registry through every signature.
var DefaultMetrics *metrics.Registry

// DefaultSpans is the span-collector analogue of DefaultMetrics: when set,
// Build attaches it to every environment that does not carry its own
// collector. offloadbench sets it from the -spans flag.
var DefaultSpans *span.Collector

// DefaultTimeline, when set, hands every environment Build creates (that
// does not carry its own recorder) a fresh telemetry recorder, so each
// simulated run becomes one labelled set of time series. offloadbench sets
// it from the -timeseries flag. Like spans, an installed timeline forces
// sweeps serial: recorder creation order is the export order of runs.
var DefaultTimeline *telemetry.Timeline

// DefaultDevice, when set, names the device profile Build configures every
// node of every environment with (unless the environment carries its own
// Device/Fleet/Cluster). offloadbench sets it from the -device flag; ""
// keeps the legacy baseline part.
var DefaultDevice string

// DefaultFleet is the -fleet analogue of DefaultDevice: a per-node profile
// spec in device.ExpandFleet grammar ("bf2:2,bf3:2"). It overrides
// DefaultDevice.
var DefaultFleet string

// Shards, when != 1, switches every environment Build creates (that does
// not carry its own cluster-level value) to lookahead-sharded kernel
// execution with that many shards (0 = one shard per node). offloadbench
// sets it from the -shards flag. Sharding changes how the event loop runs,
// never what it computes: results are byte-identical at any value (see
// cluster.Config.Shards and the two-sided guard in shards_guard_test.go).
var Shards = 1

// Options describe one benchmark environment.
type Options struct {
	Nodes         int
	PPN           int
	Scheme        string          // baseline.NameProposed / NameBluesMPI / NameIntelMPI
	Policy        string          // offload-policy bundle name (overrides Scheme's backend wiring)
	Backed        bool            // payload-backed buffers (correctness runs)
	ProxiesPerDPU int             // 0 = cluster default
	Device        string          // device profile for every node ("" = DefaultDevice, then baseline)
	Fleet         string          // per-node profile spec, device.ExpandFleet grammar (overrides Device)
	Cluster       *cluster.Config // full override (optional)
	Core          *core.Config    // framework override (optional)

	// Metrics attaches a registry to the environment's cluster. Metrics
	// never consume virtual time, so results are unchanged (guarded
	// bit-exactly by TestMetricsLiveRegistryMatchesFig13Exactly).
	Metrics *metrics.Registry

	// Spans attaches a span collector to the environment's cluster. Like
	// metrics, span collection never consumes virtual time (guarded
	// bit-exactly by TestSpansLiveCollectorMatchesFig13Exactly).
	Spans *span.Collector

	// Timeline attaches a telemetry recorder to the environment's cluster,
	// sampling the metrics registry into virtual-time buckets. Recording
	// never consumes virtual time (guarded bit-exactly by
	// TestTimelineRecorderMatchesFig13Exactly).
	Timeline *telemetry.Recorder
}

// Env is a ready-to-launch benchmark environment.
type Env struct {
	Opt Options
	Cl  *cluster.Cluster
	W   *mpi.World
	Fw  *core.Framework // nil for host-only schemes
	Pol *policy.Engine  // nil unless Options.Policy named a bundle
}

// needsFramework reports whether the scheme runs on DPU proxies.
func needsFramework(scheme string) bool {
	return scheme == baseline.NameProposed || scheme == baseline.NameBluesMPI
}

// Build constructs the environment.
func Build(opt Options) *Env {
	var ccfg cluster.Config
	dev, fleet := opt.Device, opt.Fleet
	if dev == "" {
		dev = DefaultDevice
	}
	if fleet == "" {
		fleet = DefaultFleet
	}
	switch {
	case opt.Cluster != nil:
		ccfg = *opt.Cluster
	case fleet != "":
		names, err := device.ExpandFleet(fleet, opt.Nodes)
		if err != nil {
			panic(fmt.Sprintf("bench: %v", err))
		}
		// The cluster-wide wire parameters come from the first node's
		// profile (fabrics are a cluster property, devices a node one);
		// per-node ports and capabilities come from NodeProfiles.
		ccfg = cluster.ProfileConfig(names[0], opt.Nodes, opt.PPN)
		ccfg.NodeProfiles = names
	case dev != "":
		ccfg = cluster.ProfileConfig(dev, opt.Nodes, opt.PPN)
		names := make([]string, opt.Nodes)
		for i := range names {
			names[i] = dev
		}
		ccfg.NodeProfiles = names
	default:
		ccfg = cluster.DefaultConfig(opt.Nodes, opt.PPN)
	}
	ccfg.BackedPayload = opt.Backed
	if opt.ProxiesPerDPU > 0 {
		ccfg.ProxiesPerDPU = opt.ProxiesPerDPU
	}
	if ccfg.Shards == 0 && Shards != 1 {
		if Shards <= 0 {
			ccfg.Shards = ccfg.Nodes
		} else {
			ccfg.Shards = Shards
		}
	}
	if ccfg.Metrics == nil {
		if opt.Metrics != nil {
			ccfg.Metrics = opt.Metrics
		} else {
			ccfg.Metrics = DefaultMetrics
		}
	}
	if ccfg.Spans == nil {
		if opt.Spans != nil {
			ccfg.Spans = opt.Spans
		} else {
			ccfg.Spans = DefaultSpans
		}
	}
	if ccfg.Timeline == nil {
		if opt.Timeline != nil {
			ccfg.Timeline = opt.Timeline
		} else {
			// One fresh recorder per simulated run; a nil DefaultTimeline
			// hands out a nil (inert) recorder.
			ccfg.Timeline = DefaultTimeline.NewRecorder("")
		}
	}
	cl := cluster.New(ccfg)
	w := mpi.NewWorld(cl, mpi.DefaultConfig())
	e := &Env{Opt: opt, Cl: cl, W: w}

	var bundle baseline.Bundle
	if opt.Policy != "" {
		var err error
		bundle, err = baseline.PolicyBundle(opt.Policy)
		if err != nil {
			panic(fmt.Sprintf("bench: %v", err))
		}
		// A fresh policy instance per environment: measuring policies must
		// not carry learned tables across runs.
		e.Pol = policy.NewEngine(bundle.New(), ccfg.Metrics)
	}

	wantFw := needsFramework(opt.Scheme) || opt.Core != nil
	if opt.Policy != "" {
		// The bundle decides the substrate; an explicit Core override still
		// wins on configuration.
		wantFw = bundle.Framework || opt.Core != nil
	}
	if wantFw {
		var fcfg core.Config
		switch {
		case opt.Core != nil:
			fcfg = *opt.Core
		case opt.Policy != "":
			fcfg = bundle.Core()
		case opt.Scheme == baseline.NameBluesMPI:
			fcfg = baseline.BluesMPIConfig()
		default:
			fcfg = baseline.ProposedConfig()
		}
		sites := make([]*cluster.Site, ccfg.NP())
		for i := range sites {
			sites[i] = w.Rank(i).Site()
		}
		e.Fw = core.New(cl, fcfg, sites)
		e.Fw.Start()
	}
	return e
}

// backendName labels the backends an environment binds: the policy name
// when one is active, the scheme otherwise.
func (e *Env) backendName() string {
	if e.Opt.Policy != "" {
		return e.Opt.Policy
	}
	return e.Opt.Scheme
}

// Launch spawns all ranks running fn with the scheme's collective and
// point-to-point backends bound, then runs the simulation to completion.
// It returns the final virtual time and panics on deadlock (a bug).
func (e *Env) Launch(fn func(r *mpi.Rank, ops coll.Ops, p2p coll.P2P)) sim.Time {
	e.W.Launch(func(r *mpi.Rank) {
		name := e.backendName()
		var ops coll.Ops
		var p2p coll.P2P
		switch {
		case e.Fw != nil && e.Pol != nil:
			h := e.Fw.Host(r.RankID())
			h.Bind(r.Proc())
			ops = coll.NewPolicyOps(name, r, h, e.Pol)
			p2p = coll.NewPolicyP2P(name, r, h, e.Pol)
		case e.Fw != nil:
			h := e.Fw.Host(r.RankID())
			h.Bind(r.Proc())
			ops = coll.NewOffloadOps(name, r, h)
			p2p = coll.NewOffloadP2P(name, r, h)
		default:
			ops = coll.NewHostOps(name, r)
			p2p = coll.NewHostP2P(name, r)
		}
		fn(r, ops, p2p)
	})
	end := e.Cl.K.Run()
	if len(e.Cl.K.Deadlocked) > 0 {
		var names []string
		for _, p := range e.Cl.K.Deadlocked {
			names = append(names, p.Name())
		}
		panic(fmt.Sprintf("bench: deadlocked processes: %v", names))
	}
	// Shut the proxy daemons down so this environment can be collected
	// (benchmark sweeps build many environments in one process).
	if e.Fw != nil {
		e.Fw.Stop()
		e.Cl.K.Run()
	}
	// Unwind any goroutine still parked on the kernel (daemons whose final
	// wakeup never came); without this every retired environment leaks its
	// blocked process goroutines for the life of the OS process.
	e.Cl.K.Shutdown()
	return end
}
