package bench

import (
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/baseline"
)

// ScaleSchema is the schema tag of the scaling snapshot (BENCH_scale.json);
// bump it when the layout changes incompatibly.
const ScaleSchema = "offload-scale/v1"

// ScaleRanks are the default rank counts of the scaling sweep. The paper's
// evaluation stops at 16 nodes x 32 PPN (512 ranks); ROADMAP item 1 asks
// whether the fig-shape claims survive at 1024+, which is what the largest
// point pins.
var ScaleRanks = []int{128, 256, 512, 1024}

// ScaleSchemeResult is one scheme's timings at one rank count.
type ScaleSchemeResult struct {
	Scheme     string  `json:"scheme"`
	PureNS     int64   `json:"pure_ns"`
	ComputeNS  int64   `json:"compute_ns"`
	OverallNS  int64   `json:"overall_ns"`
	OverlapPct float64 `json:"overlap_pct"`
}

// ScalePoint is one rank count of the sweep: the fig13 Ialltoall overlap
// benchmark measured for every scheme, plus the proposed scheme's headline
// improvements.
type ScalePoint struct {
	Ranks         int                 `json:"ranks"`
	Nodes         int                 `json:"nodes"`
	PPN           int                 `json:"ppn"`
	Schemes       []ScaleSchemeResult `json:"schemes"`
	VsBluesMPIPct float64             `json:"vs_bluesmpi_pct"` // proposed overall-time gain
	VsIntelMPIPct float64             `json:"vs_intelmpi_pct"`
}

// Scheme returns the named scheme's result (zero value when absent).
func (p ScalePoint) Scheme(name string) ScaleSchemeResult {
	for _, s := range p.Schemes {
		if s.Scheme == name {
			return s
		}
	}
	return ScaleSchemeResult{}
}

// ScaleConfig records the environment the series was measured under.
type ScaleConfig struct {
	PPN    int   `json:"ppn"`
	Size   int   `json:"size"`
	Warmup int   `json:"warmup"`
	Iters  int   `json:"iters"`
	Ranks  []int `json:"ranks"`
}

// ScaleSnapshot is the checked-in scaling baseline. Unlike the fig13 and
// tenants snapshots it carries no metrics section: a 1024-rank run exports
// on the order of a thousand per-proxy series, which would bloat the file
// without pinning anything the timings do not already pin.
type ScaleSnapshot struct {
	Schema string       `json:"schema"`
	Figure string       `json:"figure"`
	Config ScaleConfig  `json:"config"`
	Series []ScalePoint `json:"series"`
}

// scaleSchemes is the measurement order at each point (matching the fig13
// sweep's nesting so run order is deterministic).
var scaleSchemes = []string{baseline.NameBluesMPI, baseline.NameProposed, baseline.NameIntelMPI}

// ScaleSeries measures every (ranks, scheme) point of cfg. Runs are
// independent simulations distributed by the sweep runner, so results are
// byte-identical at any -parallel value — and, per simulation, at any
// -shards value (the two-sided guards enforce both).
func ScaleSeries(cfg ScaleConfig) []ScalePoint {
	nsch := len(scaleSchemes)
	res := make([]NBCResult, len(cfg.Ranks)*nsch)
	Sweep(len(res), func(j int, env SweepEnv) {
		ranks := cfg.Ranks[j/nsch]
		scheme := scaleSchemes[j%nsch]
		nodes := ranks / cfg.PPN
		res[j] = MeasureIalltoall(env.Attach(Options{
			Nodes: nodes, PPN: cfg.PPN, Scheme: scheme, Backed: false,
		}), cfg.Size, cfg.Warmup, cfg.Iters)
	})
	series := make([]ScalePoint, len(cfg.Ranks))
	for i, ranks := range cfg.Ranks {
		pt := ScalePoint{Ranks: ranks, Nodes: ranks / cfg.PPN, PPN: cfg.PPN}
		for k, scheme := range scaleSchemes {
			r := res[i*nsch+k]
			pt.Schemes = append(pt.Schemes, ScaleSchemeResult{
				Scheme: scheme,
				PureNS: int64(r.PureComm), ComputeNS: int64(r.Compute),
				OverallNS: int64(r.Overall), OverlapPct: r.Overlap,
			})
		}
		b := pt.Scheme(baseline.NameBluesMPI).OverallNS
		p := pt.Scheme(baseline.NameProposed).OverallNS
		in := pt.Scheme(baseline.NameIntelMPI).OverallNS
		pt.VsBluesMPIPct = 100 * (1 - float64(p)/float64(b))
		pt.VsIntelMPIPct = 100 * (1 - float64(p)/float64(in))
		series[i] = pt
	}
	return series
}

// DefaultScaleConfig is the checked-in baseline's configuration: the fig13
// shape (32 KB per peer, PPN 8) from 128 to 1024 ranks, one measured
// iteration after one warmup (a 1024-rank alltoall posts ~1M writes per
// iteration; more iterations change wall-clock, not virtual results, which
// are exact at any count).
func DefaultScaleConfig() ScaleConfig {
	return ScaleConfig{PPN: 8, Size: 32 << 10, Warmup: 1, Iters: 1, Ranks: ScaleRanks}
}

// MeasureScale runs the default scaling sweep and packages it.
func MeasureScale(cfg ScaleConfig) ScaleSnapshot {
	return ScaleSnapshot{
		Schema: ScaleSchema,
		Figure: "scale",
		Config: cfg,
		Series: ScaleSeries(cfg),
	}
}

// WriteScaleSnapshot writes the snapshot as indented JSON.
func WriteScaleSnapshot(w io.Writer, s ScaleSnapshot) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// ParseScaleSnapshot decodes and validates a JSON snapshot.
func ParseScaleSnapshot(data []byte) (ScaleSnapshot, error) {
	var s ScaleSnapshot
	if err := json.Unmarshal(data, &s); err != nil {
		return s, fmt.Errorf("bench: invalid scale snapshot JSON: %w", err)
	}
	if err := s.Validate(); err != nil {
		return s, err
	}
	return s, nil
}

// Validate checks schema conformance and the fig-shape claims at every
// measured rank count — the reason this snapshot exists:
//
//   - the proposed scheme beats both BluesMPI and IntelMPI on overall time
//     (Figure 13's ordering),
//   - offloaded progression keeps near-total overlap while the host-based
//     scheme cannot (Figure 14's shape: proposed ≥ 90%, and strictly above
//     IntelMPI),
//   - the proposed scheme's advantage does not shrink with scale: the gain
//     at the largest rank count is within 2 points of the gain at the
//     smallest or better (the paper reports 25/30/47% at 4/8/16 nodes,
//     growing with node count; in this simulator the gain saturates around
//     91% by 128 ranks, so the pin is "stays saturated", not "keeps
//     growing").
func (s ScaleSnapshot) Validate() error {
	if s.Schema != ScaleSchema {
		return fmt.Errorf("bench: scale schema %q, want %q", s.Schema, ScaleSchema)
	}
	if s.Figure == "" {
		return fmt.Errorf("bench: scale snapshot has no figure name")
	}
	c := s.Config
	if c.PPN <= 0 || c.Size <= 0 || c.Iters <= 0 || c.Warmup < 0 || len(c.Ranks) == 0 {
		return fmt.Errorf("bench: incomplete scale config %+v", c)
	}
	if len(s.Series) != len(c.Ranks) {
		return fmt.Errorf("bench: %d series points for %d rank counts", len(s.Series), len(c.Ranks))
	}
	for i, pt := range s.Series {
		if pt.Ranks != c.Ranks[i] || pt.Nodes*pt.PPN != pt.Ranks {
			return fmt.Errorf("bench: series[%d] shape %d ranks = %d nodes x %d ppn, config wants %d",
				i, pt.Ranks, pt.Nodes, pt.PPN, c.Ranks[i])
		}
		if len(pt.Schemes) != len(scaleSchemes) {
			return fmt.Errorf("bench: series[%d] has %d schemes, want %d", i, len(pt.Schemes), len(scaleSchemes))
		}
		b := pt.Scheme(baseline.NameBluesMPI)
		p := pt.Scheme(baseline.NameProposed)
		in := pt.Scheme(baseline.NameIntelMPI)
		for _, r := range []ScaleSchemeResult{b, p, in} {
			if r.PureNS <= 0 || r.OverallNS <= 0 || r.ComputeNS < 0 {
				return fmt.Errorf("bench: series[%d] non-positive timings for %q: %+v", i, r.Scheme, r)
			}
			if r.OverlapPct < 0 || r.OverlapPct > 100 {
				return fmt.Errorf("bench: series[%d] overlap %g out of range for %q", i, r.OverlapPct, r.Scheme)
			}
		}
		if p.OverallNS >= b.OverallNS || p.OverallNS >= in.OverallNS {
			return fmt.Errorf("bench: series[%d] (%d ranks) loses the fig13 ordering: proposed %d vs bluesmpi %d / intelmpi %d",
				i, pt.Ranks, p.OverallNS, b.OverallNS, in.OverallNS)
		}
		if p.OverlapPct < 90 {
			return fmt.Errorf("bench: series[%d] (%d ranks) proposed overlap %.1f%% below the fig14 shape (>= 90%%)",
				i, pt.Ranks, p.OverlapPct)
		}
		if p.OverlapPct <= in.OverlapPct {
			return fmt.Errorf("bench: series[%d] (%d ranks) proposed overlap %.1f%% does not beat intelmpi %.1f%%",
				i, pt.Ranks, p.OverlapPct, in.OverlapPct)
		}
	}
	first, last := s.Series[0], s.Series[len(s.Series)-1]
	if last.VsBluesMPIPct < first.VsBluesMPIPct-2 {
		return fmt.Errorf("bench: proposed advantage shrinks with scale: %.1f%% at %d ranks vs %.1f%% at %d ranks",
			last.VsBluesMPIPct, last.Ranks, first.VsBluesMPIPct, first.Ranks)
	}
	return nil
}
