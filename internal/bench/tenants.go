package bench

import (
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/metrics"
	"repro/internal/tenant"
)

// TenantsSchema is the schema tag of the multi-tenant crossover snapshot
// (BENCH_tenants.json); bump it when the layout changes incompatibly.
const TenantsSchema = "offload-tenants/v1"

// tenantsPolicies are the foreground policies the sweep compares at every
// background-load level: the fixed offload path, the pure host path, and
// the adaptive engine that is supposed to pick whichever wins.
var tenantsPolicies = []string{"gvmi", "hostdirect", "adaptive"}

// tenantsBgLevels are the background-job counts of the sweep: an idle
// fabric, light contention, and a loaded proxy.
var tenantsBgLevels = []int{0, 1, 3}

// TenantsCase builds one point of the crossover sweep: a latency-bound
// foreground job under fgPolicy sharing every node with bg bulk background
// jobs, all contending for a single proxy ARM worker per node (the
// configuration where proxy load is visible at all — the default 8 workers
// give every local rank a private proxy).
func TenantsCase(nodes, ppn, bg int, fgPolicy string, iters int) tenant.Config {
	jobs := []tenant.JobSpec{{
		Name: "fg", PPN: ppn, Policy: fgPolicy, Weight: 1,
		Workload: tenant.Workload{Kind: tenant.Latency, Iters: iters},
	}}
	for i := 0; i < bg; i++ {
		jobs = append(jobs, tenant.JobSpec{
			Name: fmt.Sprintf("bg%d", i), PPN: ppn, Policy: "gvmi", Weight: 1,
			Workload: tenant.Workload{Kind: tenant.Bulk, Iters: iters/2 + 1},
		})
	}
	return tenant.Config{Nodes: nodes, ProxiesPerDPU: 1, Jobs: jobs}
}

// TenantsJob is one job of one sweep point.
type TenantsJob struct {
	Name     string `json:"name"`
	Policy   string `json:"policy"`
	P50NS    int64  `json:"p50_ns"`
	P99NS    int64  `json:"p99_ns"`
	FinishNS int64  `json:"finish_ns"`
	Bytes    int64  `json:"bytes"`
}

// TenantsPoint is one measured configuration of the sweep.
type TenantsPoint struct {
	BgJobs      int          `json:"bg_jobs"`
	FgPolicy    string       `json:"fg_policy"`
	FgP50NS     int64        `json:"fg_p50_ns"`
	FgP99NS     int64        `json:"fg_p99_ns"`
	GoodputGBps float64      `json:"goodput_gbps"`
	MakespanNS  int64        `json:"makespan_ns"`
	Jobs        []TenantsJob `json:"jobs"`
}

// TenantsConfig records the environment the series was measured under.
type TenantsConfig struct {
	Nodes         int `json:"nodes"`
	PPN           int `json:"ppn"`
	ProxiesPerDPU int `json:"proxies_per_dpu"`
	Iters         int `json:"iters"`
}

// TenantsSnapshot is the checked-in multi-tenant baseline: per-tenant tail
// latency and aggregate goodput across the background-load × policy grid,
// plus the merged metrics of every run (which carries the tenant-labelled
// proxy attribution series). Timings are deterministic, so any diff against
// the checked-in file is a real behaviour change.
type TenantsSnapshot struct {
	Schema  string           `json:"schema"`
	Figure  string           `json:"figure"`
	Config  TenantsConfig    `json:"config"`
	Series  []TenantsPoint   `json:"series"`
	Metrics metrics.Snapshot `json:"metrics"`
}

// TenantsSeries sweeps the background-load × foreground-policy grid and
// returns one point per configuration, in grid order. Runs are independent
// simulations distributed by the sweep runner, so results are byte-identical
// at any -parallel value; per-run metrics merge into target (nil = the
// process-wide DefaultMetrics sink).
func TenantsSeries(target *metrics.Registry, nodes, ppn, iters int) []TenantsPoint {
	series := make([]TenantsPoint, len(tenantsBgLevels)*len(tenantsPolicies))
	job := func(i int, env SweepEnv) {
		bg := tenantsBgLevels[i/len(tenantsPolicies)]
		pol := tenantsPolicies[i%len(tenantsPolicies)]
		cfg := TenantsCase(nodes, ppn, bg, pol, iters)
		cfg.Metrics = env.Met
		cfg.Spans = env.Sp
		res, err := tenant.Run(cfg)
		if err != nil {
			panic(fmt.Sprintf("bench: tenants sweep bg=%d policy=%s: %v", bg, pol, err))
		}
		pt := TenantsPoint{
			BgJobs: bg, FgPolicy: pol,
			GoodputGBps: res.GoodputGBps(), MakespanNS: int64(res.Makespan),
		}
		for _, jr := range res.Jobs {
			pt.Jobs = append(pt.Jobs, TenantsJob{
				Name: jr.Name, Policy: jr.Policy,
				P50NS: int64(jr.P50), P99NS: int64(jr.P99),
				FinishNS: int64(jr.Finish), Bytes: jr.Bytes,
			})
		}
		fg := res.Job("fg")
		pt.FgP50NS, pt.FgP99NS = int64(fg.P50), int64(fg.P99)
		series[i] = pt
	}
	if target != nil {
		SweepInto(target, len(series), job)
	} else {
		Sweep(len(series), job)
	}
	return series
}

// MeasureTenants runs the full crossover sweep (2 nodes × 2 PPN per job,
// 8 measured iterations) with a live metrics registry attached and packages
// the series plus merged metrics into a TenantsSnapshot.
func MeasureTenants() TenantsSnapshot {
	const nodes, ppn, iters = 2, 2, 8
	met := metrics.NewRegistry()
	s := TenantsSnapshot{
		Schema: TenantsSchema,
		Figure: "tenants",
		Config: TenantsConfig{Nodes: nodes, PPN: ppn, ProxiesPerDPU: 1, Iters: iters},
	}
	s.Series = TenantsSeries(met, nodes, ppn, iters)
	s.Metrics = met.Snapshot()
	return s
}

// WriteTenantsSnapshot writes the snapshot as indented JSON.
func WriteTenantsSnapshot(w io.Writer, s TenantsSnapshot) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// ParseTenantsSnapshot decodes and validates a JSON snapshot.
func ParseTenantsSnapshot(data []byte) (TenantsSnapshot, error) {
	var s TenantsSnapshot
	if err := json.Unmarshal(data, &s); err != nil {
		return s, fmt.Errorf("bench: invalid tenants snapshot JSON: %w", err)
	}
	if err := s.Validate(); err != nil {
		return s, err
	}
	return s, nil
}

// Validate checks schema conformance and the headline claim: some
// background-load level must make the fixed offload path lose to
// host-direct on foreground tail latency while the adaptive policy ties or
// beats host-direct — the crossover where a loaded proxy flips the offload
// win, which is the reason this snapshot exists.
func (s TenantsSnapshot) Validate() error {
	if s.Schema != TenantsSchema {
		return fmt.Errorf("bench: tenants schema %q, want %q", s.Schema, TenantsSchema)
	}
	if s.Figure == "" {
		return fmt.Errorf("bench: tenants snapshot has no figure name")
	}
	if s.Config.Nodes <= 0 || s.Config.PPN <= 0 || s.Config.ProxiesPerDPU <= 0 || s.Config.Iters <= 0 {
		return fmt.Errorf("bench: incomplete tenants config %+v", s.Config)
	}
	if len(s.Series) == 0 {
		return fmt.Errorf("bench: tenants snapshot has no series")
	}
	p99 := map[[2]interface{}]int64{}
	for i, p := range s.Series {
		if p.FgPolicy == "" {
			return fmt.Errorf("bench: series[%d] has no policy", i)
		}
		if p.BgJobs < 0 || len(p.Jobs) != p.BgJobs+1 {
			return fmt.Errorf("bench: series[%d] has %d jobs for %d background jobs", i, len(p.Jobs), p.BgJobs)
		}
		if p.FgP50NS <= 0 || p.FgP99NS < p.FgP50NS {
			return fmt.Errorf("bench: series[%d] implausible fg latency %+v", i, p)
		}
		if p.MakespanNS <= 0 || p.GoodputGBps <= 0 {
			return fmt.Errorf("bench: series[%d] implausible aggregate %+v", i, p)
		}
		p99[[2]interface{}{p.BgJobs, p.FgPolicy}] = p.FgP99NS
	}
	crossover := false
	for _, bg := range tenantsBgLevels {
		gvmi, ok1 := p99[[2]interface{}{bg, "gvmi"}]
		host, ok2 := p99[[2]interface{}{bg, "hostdirect"}]
		adap, ok3 := p99[[2]interface{}{bg, "adaptive"}]
		if !ok1 || !ok2 || !ok3 {
			continue
		}
		if bg > 0 && gvmi > host && adap <= host {
			crossover = true
		}
	}
	if !crossover {
		return fmt.Errorf("bench: tenants series shows no offload crossover (no loaded level where fixed offload loses to host-direct and adaptive ties or wins)")
	}
	tenantSeries := false
	for _, c := range s.Metrics.Counters {
		if c.Tenant != "" {
			tenantSeries = true
			break
		}
	}
	if !tenantSeries {
		return fmt.Errorf("bench: tenants snapshot metrics carry no tenant-labelled series")
	}
	return s.Metrics.Validate()
}
