package bench

import (
	"fmt"
	"io"
	"strings"
)

// Table is a printable benchmark table (one per paper figure).
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
	Notes   []string
}

// AddRow appends one formatted row.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// Fprint renders the table with aligned columns.
func (t *Table) Fprint(w io.Writer) {
	fmt.Fprintf(w, "\n%s\n%s\n", t.Title, strings.Repeat("=", len(t.Title)))
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	printRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				fmt.Fprint(w, "  ")
			}
			fmt.Fprintf(w, "%-*s", widths[i], c)
		}
		fmt.Fprintln(w)
	}
	printRow(t.Headers)
	total := 0
	for _, wd := range widths {
		total += wd + 2
	}
	fmt.Fprintln(w, strings.Repeat("-", total-2))
	for _, row := range t.Rows {
		printRow(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "note: %s\n", n)
	}
}

// F2 formats a float with two decimals.
func F2(v float64) string { return fmt.Sprintf("%.2f", v) }

// Pct formats a percentage with one decimal.
func Pct(v float64) string { return fmt.Sprintf("%.1f%%", v) }
