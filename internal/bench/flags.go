package bench

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"repro/internal/baseline"
	"repro/internal/metrics"
	"repro/internal/span"
)

// CommonFlags are the flags every CLI in this repo shares (-metrics, -spans,
// -parallel, -policy). One registration helper keeps names, defaults, and
// help text identical across offloadbench, omb, and patternsim.
type CommonFlags struct {
	MetricsPath string
	SpansPath   string
	Policy      string
	Parallel    int

	reg *metrics.Registry
	sc  *span.Collector
}

// registered remembers which FlagSets already carry the common flags, so
// subcommands sharing one FlagSet can each call RegisterCommonFlags without
// tripping flag's duplicate-definition panic.
var registered = map[*flag.FlagSet]*CommonFlags{}

// RegisterCommonFlags registers the shared flag set on fs. Calling it again
// with the same fs is a no-op that returns the original CommonFlags.
func RegisterCommonFlags(fs *flag.FlagSet) *CommonFlags {
	if cf, ok := registered[fs]; ok {
		return cf
	}
	cf := &CommonFlags{}
	registered[fs] = cf
	fs.StringVar(&cf.MetricsPath, "metrics", "",
		"write a metrics snapshot after the run: JSON to <path>, Prometheus text to <path>.prom")
	fs.StringVar(&cf.SpansPath, "spans", "",
		"write the run's span trace: Chrome trace JSON to <path>, folded stacks to <path>.folded, JSONL to <path>.jsonl")
	fs.IntVar(&cf.Parallel, "parallel", 1,
		"sweep worker count (0 = all CPUs, 1 = serial); results are identical at any value")
	fs.StringVar(&cf.Policy, "policy", "",
		"offload policy: "+strings.Join(baseline.PolicyNames(), " | ")+" (empty = scheme default)")
	return cf
}

// Activate applies the parsed flags to the bench globals — Parallelism plus
// the default metrics registry / span collector attached to every
// environment — and returns the installed worker count. Neither attachment
// consumes virtual time, so results are unchanged.
func (cf *CommonFlags) Activate() int {
	workers := cf.Parallel
	if workers <= 0 {
		workers = DefaultParallelism()
	}
	Parallelism = workers
	if cf.MetricsPath != "" {
		cf.reg = metrics.NewRegistry()
		DefaultMetrics = cf.reg
	}
	if cf.SpansPath != "" {
		cf.sc = span.New(0)
		DefaultSpans = cf.sc
	}
	return workers
}

// Registry returns the registry Activate installed (nil without -metrics).
func (cf *CommonFlags) Registry() *metrics.Registry { return cf.reg }

// Spans returns the collector Activate installed (nil without -spans).
func (cf *CommonFlags) Spans() *span.Collector { return cf.sc }

// Finish writes the exports the flags requested and prints one summary line
// per export to out.
func (cf *CommonFlags) Finish(out io.Writer) error {
	if cf.reg != nil {
		if err := WriteMetricsFiles(cf.MetricsPath, cf.reg); err != nil {
			return err
		}
		fmt.Fprintf(out, "metrics: %s, %s.prom\n", cf.MetricsPath, cf.MetricsPath)
	}
	if cf.sc != nil {
		if err := WriteSpanFiles(cf.SpansPath, cf.sc); err != nil {
			return err
		}
		fmt.Fprintf(out, "spans: %s, %s.folded, %s.jsonl (%d spans, %d dropped)\n",
			cf.SpansPath, cf.SpansPath, cf.SpansPath, cf.sc.Len(), cf.sc.Dropped())
	}
	return nil
}

// WriteMetricsFiles exports the registry as JSON to path and as Prometheus
// text exposition format to path.prom.
func WriteMetricsFiles(path string, reg *metrics.Registry) error {
	snap := reg.Snapshot()
	jf, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := snap.WriteJSON(jf); err != nil {
		jf.Close()
		return err
	}
	if err := jf.Close(); err != nil {
		return err
	}
	pf, err := os.Create(path + ".prom")
	if err != nil {
		return err
	}
	if err := snap.WritePrometheus(pf); err != nil {
		pf.Close()
		return err
	}
	return pf.Close()
}

// WriteSpanFiles exports the collector as Chrome trace JSON to path, folded
// stacks to path.folded, and JSONL to path.jsonl.
func WriteSpanFiles(path string, sc *span.Collector) error {
	cf, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := sc.WriteChromeTrace(cf); err != nil {
		cf.Close()
		return err
	}
	if err := cf.Close(); err != nil {
		return err
	}
	ff, err := os.Create(path + ".folded")
	if err != nil {
		return err
	}
	if err := sc.WriteFolded(ff); err != nil {
		ff.Close()
		return err
	}
	if err := ff.Close(); err != nil {
		return err
	}
	jf, err := os.Create(path + ".jsonl")
	if err != nil {
		return err
	}
	if err := sc.WriteJSONL(jf); err != nil {
		jf.Close()
		return err
	}
	return jf.Close()
}
