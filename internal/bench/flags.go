package bench

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"repro/internal/baseline"
	"repro/internal/device"
	"repro/internal/metrics"
	"repro/internal/span"
	"repro/internal/telemetry"
)

// CommonFlags are the flags every CLI in this repo shares (-metrics, -spans,
// -parallel, -policy). One registration helper keeps names, defaults, and
// help text identical across offloadbench, omb, and patternsim.
type CommonFlags struct {
	MetricsPath    string
	SpansPath      string
	TimeseriesPath string
	Policy         string
	Device         string
	Fleet          string
	Parallel       int
	Shards         int

	reg *metrics.Registry
	sc  *span.Collector
	tl  *telemetry.Timeline
}

// registered remembers which FlagSets already carry the common flags, so
// subcommands sharing one FlagSet can each call RegisterCommonFlags without
// tripping flag's duplicate-definition panic.
var registered = map[*flag.FlagSet]*CommonFlags{}

// RegisterCommonFlags registers the shared flag set on fs. Calling it again
// with the same fs is a no-op that returns the original CommonFlags.
func RegisterCommonFlags(fs *flag.FlagSet) *CommonFlags {
	if cf, ok := registered[fs]; ok {
		return cf
	}
	cf := &CommonFlags{}
	registered[fs] = cf
	fs.StringVar(&cf.MetricsPath, "metrics", "",
		"write a metrics snapshot after the run: JSON to <path>, Prometheus text to <path>.prom")
	fs.StringVar(&cf.SpansPath, "spans", "",
		"write the run's span trace: Chrome trace JSON to <path>, folded stacks to <path>.folded, JSONL to <path>.jsonl")
	fs.StringVar(&cf.TimeseriesPath, "timeseries", "",
		"record watched metrics as virtual-time bucketed series: JSONL to <path>.jsonl, timestamped Prometheus text to <path>.prom (with -spans, counter tracks merge into the Chrome trace)")
	fs.IntVar(&cf.Parallel, "parallel", 1,
		"sweep worker count (0 = all CPUs, 1 = serial); results are identical at any value")
	fs.IntVar(&cf.Shards, "shards", 1,
		"kernel event shards per simulation (0 = one per node, 1 = serial); results are identical at any value")
	fs.StringVar(&cf.Policy, "policy", "",
		"offload policy: "+strings.Join(baseline.PolicyNames(), " | ")+" (empty = scheme default)")
	fs.StringVar(&cf.Device, "device", "",
		"device profile for every node: "+strings.Join(device.Names(), " | ")+
			"; \"list\" prints the capability matrix and exits (empty = "+device.BaselineName+")")
	fs.StringVar(&cf.Fleet, "fleet", "",
		"per-node device profiles as \"name[:count],...\" summing to the node count"+
			" (e.g. \"bf2:2,bf3:2\"); \"help\" prints the grammar and capability matrix"+
			" and exits; overrides -device")
	return cf
}

// HandleDeviceQuery services the documentation values of -device/-fleet:
// "-device list" and "-fleet help" print the device capability matrix (plus
// the fleet grammar for the latter) to out and report true, and the caller
// is expected to exit with status 0 without running anything.
func (cf *CommonFlags) HandleDeviceQuery(out io.Writer) bool {
	switch {
	case cf.Device == "list":
		device.WriteMatrix(out)
		return true
	case cf.Fleet == "help":
		fmt.Fprintln(out, "-fleet assigns a device profile per node: \"name[:count],...\"")
		fmt.Fprintln(out, "counts must sum to the node count; a bare name covers every node.")
		fmt.Fprintln(out, "example: -fleet bf2:2,bf3:2 on a 4-node run.")
		fmt.Fprintln(out)
		device.WriteMatrix(out)
		return true
	}
	return false
}

// Activate applies the parsed flags to the bench globals — Parallelism plus
// the default metrics registry / span collector attached to every
// environment — and returns the installed worker count. Neither attachment
// consumes virtual time, so results are unchanged.
func (cf *CommonFlags) Activate() int {
	workers := cf.Parallel
	if workers <= 0 {
		workers = DefaultParallelism()
	}
	Parallelism = workers
	Shards = cf.Shards
	DefaultDevice = cf.Device
	DefaultFleet = cf.Fleet
	if cf.MetricsPath != "" {
		cf.reg = metrics.NewRegistry()
		DefaultMetrics = cf.reg
	}
	if cf.SpansPath != "" {
		cf.sc = span.New(0)
		DefaultSpans = cf.sc
	}
	if cf.TimeseriesPath != "" {
		// The recorder samples the metrics registry, so -timeseries
		// implies a live registry even without -metrics (only -metrics
		// writes the snapshot files, though).
		if DefaultMetrics == nil {
			DefaultMetrics = metrics.NewRegistry()
		}
		cf.tl = telemetry.NewTimeline(telemetry.Config{})
		DefaultTimeline = cf.tl
	}
	return workers
}

// Registry returns the registry Activate installed (nil without -metrics).
func (cf *CommonFlags) Registry() *metrics.Registry { return cf.reg }

// Spans returns the collector Activate installed (nil without -spans).
func (cf *CommonFlags) Spans() *span.Collector { return cf.sc }

// Timeline returns the timeline Activate installed (nil without
// -timeseries).
func (cf *CommonFlags) Timeline() *telemetry.Timeline { return cf.tl }

// Finish writes the exports the flags requested and prints one summary line
// per export to out.
func (cf *CommonFlags) Finish(out io.Writer) error {
	if cf.reg != nil {
		if err := WriteMetricsFiles(cf.MetricsPath, cf.reg); err != nil {
			return err
		}
		fmt.Fprintf(out, "metrics: %s, %s.prom\n", cf.MetricsPath, cf.MetricsPath)
	}
	if cf.sc != nil {
		// With both -spans and -timeseries, the recorders' counter tracks
		// merge into the Chrome trace next to the span tracks.
		var extra []string
		for _, rec := range cf.tl.Recorders() {
			extra = append(extra, rec.ChromeCounterLines()...)
		}
		if err := WriteSpanFilesWith(cf.SpansPath, cf.sc, extra); err != nil {
			return err
		}
		fmt.Fprintf(out, "spans: %s, %s.folded, %s.jsonl (%d spans, %d dropped)\n",
			cf.SpansPath, cf.SpansPath, cf.SpansPath, cf.sc.Len(), cf.sc.Dropped())
	}
	if cf.tl != nil {
		if err := WriteTimeseriesFiles(cf.TimeseriesPath, cf.tl); err != nil {
			return err
		}
		fmt.Fprintf(out, "timeseries: %s.jsonl, %s.prom (%d runs)\n",
			cf.TimeseriesPath, cf.TimeseriesPath, len(cf.tl.Recorders()))
	}
	return nil
}

// WriteMetricsFiles exports the registry as JSON to path and as Prometheus
// text exposition format to path.prom.
func WriteMetricsFiles(path string, reg *metrics.Registry) error {
	snap := reg.Snapshot()
	jf, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := snap.WriteJSON(jf); err != nil {
		jf.Close()
		return err
	}
	if err := jf.Close(); err != nil {
		return err
	}
	pf, err := os.Create(path + ".prom")
	if err != nil {
		return err
	}
	if err := snap.WritePrometheus(pf); err != nil {
		pf.Close()
		return err
	}
	return pf.Close()
}

// WriteSpanFiles exports the collector as Chrome trace JSON to path, folded
// stacks to path.folded, and JSONL to path.jsonl.
func WriteSpanFiles(path string, sc *span.Collector) error {
	return WriteSpanFilesWith(path, sc, nil)
}

// WriteSpanFilesWith is WriteSpanFiles with extra pre-rendered trace events
// (telemetry counter tracks) merged into the Chrome trace file.
func WriteSpanFilesWith(path string, sc *span.Collector, extra []string) error {
	cf, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := sc.WriteChromeTraceWith(cf, extra); err != nil {
		cf.Close()
		return err
	}
	if err := cf.Close(); err != nil {
		return err
	}
	ff, err := os.Create(path + ".folded")
	if err != nil {
		return err
	}
	if err := sc.WriteFolded(ff); err != nil {
		ff.Close()
		return err
	}
	if err := ff.Close(); err != nil {
		return err
	}
	jf, err := os.Create(path + ".jsonl")
	if err != nil {
		return err
	}
	if err := sc.WriteJSONL(jf); err != nil {
		jf.Close()
		return err
	}
	return jf.Close()
}

// WriteTimeseriesFiles exports the timeline's recorders as JSONL to
// path.jsonl and as timestamped Prometheus text to path.prom.
func WriteTimeseriesFiles(path string, tl *telemetry.Timeline) error {
	jf, err := os.Create(path + ".jsonl")
	if err != nil {
		return err
	}
	if err := tl.WriteJSONL(jf); err != nil {
		jf.Close()
		return err
	}
	if err := jf.Close(); err != nil {
		return err
	}
	pf, err := os.Create(path + ".prom")
	if err != nil {
		return err
	}
	if err := tl.WritePrometheusTS(pf); err != nil {
		pf.Close()
		return err
	}
	return pf.Close()
}
