package bench

import (
	"fmt"

	"repro/internal/cluster"
	"repro/internal/coll"
	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/mem"
	"repro/internal/mpi"
	"repro/internal/sim"
	"repro/internal/trace"
)

// ChaosResult is one row of a chaos sweep: the OMB Ialltoall overlap
// measurement repeated under deterministic fault injection, with end-to-end
// payload verification of every iteration.
type ChaosResult struct {
	NBCResult
	FaultRate  float64 // the nominal rate the fault.Config was scaled from
	EndTime    sim.Time
	Verified   bool // every recv buffer matched the expected pattern
	Mismatches int  // corrupted/missing blocks detected (0 when Verified)
	Fault      fault.Stats
	Core       core.Stats
	Trace      *trace.Log
}

// chaosPattern is the deterministic byte each rank writes: src's block for
// dst in call seq. Verification recomputes it on the receiver, so any lost
// or stale block is caught.
func chaosPattern(src, dst, seq, i int) byte {
	return byte(src*131 + dst*31 + seq*17 + i)
}

// MeasureChaosIalltoall runs the exact measurement loop of MeasureIalltoall
// — same warmup, same barriers, same compute sizing — on payload-backed
// buffers under the given fault plan, filling every send block with a
// per-iteration pattern before each collective and verifying every recv
// block after each Wait. Buffer fills and checks use mem.Space directly and
// cost zero virtual time, so with a rate-zero plan the timings are identical
// to MeasureIalltoall on the same Options.
//
// fcfg may be nil (no injector at all — the pure seed code paths).
func MeasureChaosIalltoall(opt Options, fcfg *fault.Config, rate float64, msgSize, warmup, iters int) ChaosResult {
	if opt.Cluster == nil {
		ccfg := cluster.DefaultConfig(opt.Nodes, opt.PPN)
		opt.Cluster = &ccfg
	}
	opt.Cluster.Fault = fcfg
	opt.Backed = true

	e := Build(opt)
	e.Cl.Trace = trace.New(4096)
	np := e.Cl.Cfg.NP()
	pure := make([]sim.Time, np)
	comp := make([]sim.Time, np)
	overall := make([]sim.Time, np)
	mismatches := make([]int, np)

	end := e.Launch(func(r *mpi.Rank, ops coll.Ops, _ coll.P2P) {
		me := r.RankID()
		sp := r.Space()
		send := r.Alloc(np * msgSize)
		recv := r.Alloc(np * msgSize)

		seq := 0
		fill := func() {
			blk := make([]byte, msgSize)
			for dst := 0; dst < np; dst++ {
				for i := range blk {
					blk[i] = chaosPattern(me, dst, seq, i)
				}
				sp.WriteAt(send.Addr()+mem.Addr(dst*msgSize), blk, msgSize)
			}
		}
		verify := func() {
			for src := 0; src < np; src++ {
				got := sp.ReadAt(recv.Addr()+mem.Addr(src*msgSize), msgSize)
				ok := got != nil
				for i := 0; ok && i < msgSize; i++ {
					if got[i] != chaosPattern(src, me, seq, i) {
						ok = false
					}
				}
				if !ok {
					mismatches[me]++
				}
			}
			seq++
		}

		for it := 0; it < warmup; it++ {
			fill()
			ops.Wait(ops.Ialltoall(0, send.Addr(), recv.Addr(), msgSize))
			verify()
			r.Barrier()
		}

		// Pure communication latency.
		var acc sim.Time
		for it := 0; it < iters; it++ {
			fill()
			t0 := r.Now()
			ops.Wait(ops.Ialltoall(0, send.Addr(), recv.Addr(), msgSize))
			acc += r.Now() - t0
			verify()
			r.Barrier()
		}
		pure[me] = acc / sim.Time(iters)

		// Overall time with compute sized to the pure latency (OMB).
		comp[me] = pure[me]
		acc = 0
		for it := 0; it < iters; it++ {
			fill()
			t0 := r.Now()
			q := ops.Ialltoall(0, send.Addr(), recv.Addr(), msgSize)
			r.Compute(comp[me])
			ops.Wait(q)
			acc += r.Now() - t0
			verify()
			r.Barrier()
		}
		overall[me] = acc / sim.Time(iters)
	})

	res := ChaosResult{
		NBCResult: NBCResult{Scheme: opt.Scheme, Nodes: opt.Nodes, PPN: opt.PPN, MsgSize: msgSize},
		FaultRate: rate,
		EndTime:   end,
		Trace:     e.Cl.Trace,
	}
	total := 0
	for i := 0; i < np; i++ {
		if pure[i] > res.PureComm {
			res.PureComm = pure[i]
		}
		if overall[i] > res.Overall {
			res.Overall = overall[i]
		}
		if comp[i] > res.Compute {
			res.Compute = comp[i]
		}
		total += mismatches[i]
	}
	res.Overlap = OverlapPct(res.PureComm, res.Compute, res.Overall)
	res.Mismatches = total
	res.Verified = total == 0
	if e.Cl.Inj != nil {
		res.Fault = e.Cl.Inj.Stats
	}
	if e.Fw != nil {
		res.Core = e.Fw.Stats()
	}
	return res
}

// ChaosSweep measures the Ialltoall benchmark across fault rates. Rate 0
// attaches a real (but silent) injector, exercising the rate-zero fast
// paths; every nonzero rate uses fault.Scaled(seed, rate).
func ChaosSweep(opt Options, seed int64, rates []float64, msgSize, warmup, iters int) []ChaosResult {
	out := make([]ChaosResult, len(rates))
	Sweep(len(rates), func(i int, env SweepEnv) {
		o := env.Attach(opt)
		if opt.Cluster != nil {
			// MeasureChaosIalltoall writes the fault plan into the cluster
			// config; give each rate its own copy.
			ccfg := *opt.Cluster
			o.Cluster = &ccfg
		}
		out[i] = MeasureChaosIalltoall(o, fault.Scaled(seed, rates[i]), rates[i], msgSize, warmup, iters)
	})
	return out
}

// ChaosTable renders a sweep as a printable table.
func ChaosTable(results []ChaosResult) *Table {
	t := &Table{
		Title: "Chaos: Ialltoall under fault injection",
		Headers: []string{"rate", "size", "pure(us)", "overall(us)", "overlap",
			"drops", "corrupt", "delays", "cqe", "retries", "verified"},
	}
	for _, r := range results {
		t.AddRow(
			fmt.Sprintf("%g", r.FaultRate),
			fmt.Sprintf("%d", r.MsgSize),
			F2(float64(r.PureComm)/1000),
			F2(float64(r.Overall)/1000),
			Pct(r.Overlap),
			fmt.Sprintf("%d", r.Fault.Drops),
			fmt.Sprintf("%d", r.Fault.Corrupts),
			fmt.Sprintf("%d", r.Fault.Delays),
			fmt.Sprintf("%d", r.Fault.CQErrors),
			fmt.Sprintf("%d", r.Fault.Retries),
			fmt.Sprintf("%v", r.Verified),
		)
	}
	t.Notes = append(t.Notes,
		"payloads verified end to end every iteration; rate 0 matches fig13 timings exactly")
	return t
}
