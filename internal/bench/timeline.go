package bench

import (
	"fmt"
	"sort"

	"repro/internal/metrics"
	"repro/internal/sim"
	"repro/internal/span"
	"repro/internal/telemetry"
	"repro/internal/tenant"
)

// DriftSLOObjective is the foreground latency objective the timeline runs
// track. Pre-drift foreground iterations complete in 61–97µs at the median
// (objective met) and post-drift in 744µs or more (violated), so 200µs
// separates the phases with wide margins on both sides.
const DriftSLOObjective = 200 * sim.Microsecond

// DriftTimelineConfig is the recorder shape the drift scenario needs. The
// slowest policy's run lasts ~425ms — past the default ring window (4096 ×
// 50µs ≈ 205ms), which would evict the pre-drift phase before the run ends —
// so drift timelines double both the bucket width and the capacity (8192 ×
// 100µs ≈ 819ms). Both phase boundaries (1ms arrival, 9ms settle end) stay
// on the 100µs bucket grid.
func DriftTimelineConfig() telemetry.Config {
	return telemetry.Config{Width: 100 * sim.Microsecond, Buckets: 8192}
}

// DriftRun is one foreground policy's drift-scenario run with its flight
// recorder (and, when requested, its span collector) still attached for
// querying.
type DriftRun struct {
	Policy string
	Res    *tenant.Result
	Rec    *telemetry.Recorder
	// Spans is non-nil only for policies the caller requested tracing for;
	// a private collector per run keeps the sweep parallel-safe.
	Spans *span.Collector
}

// CollectDriftTimelines runs the drift scenario once per foreground policy
// with a flight recorder attached (DriftTimelineConfig) and the foreground
// job tracking DriftSLOObjective, distributing runs through the sweep runner
// — recorded series are byte-identical at any -parallel value because every
// run owns a private registry, recorder, and (optionally) span collector.
// Per-run metrics still merge into the process-wide sweep sink, so -metrics
// snapshots keep working.
func CollectDriftTimelines(nodes, ppn, fgIters int, policies []string, spansFor map[string]bool) []DriftRun {
	runs := make([]DriftRun, len(policies))
	Sweep(len(runs), func(i int, env SweepEnv) {
		pol := policies[i]
		met := metrics.NewRegistry()
		rec := telemetry.NewRecorder(pol, DriftTimelineConfig())
		cfg := DriftCase(nodes, ppn, fgIters, pol)
		cfg.Jobs[0].SLO = telemetry.SLOConfig{Objective: DriftSLOObjective}
		cfg.Metrics = met
		cfg.Timeline = rec
		if spansFor[pol] {
			cfg.Spans = span.New(0)
		}
		res, err := tenant.Run(cfg)
		if err != nil {
			panic(fmt.Sprintf("bench: drift timeline policy=%s: %v", pol, err))
		}
		if env.Met != nil {
			env.Met.Merge(met)
		}
		runs[i] = DriftRun{Policy: pol, Res: res, Rec: rec, Spans: cfg.Spans}
	})
	return runs
}

// DriftPhases names the three windows the drift scenario decomposes into.
var DriftPhases = []string{"pre", "degraded", "post"}

// DriftPhaseAttribution decomposes one phase of one policy's run: where the
// foreground collective's critical-path time went (per layer/class/name),
// joined with the flight recorder's view of the same window (re-probe
// decisions, proxy backlog, SLO violations).
type DriftPhaseAttribution struct {
	Phase    string
	From, To sim.Time // virtual-time window [From, To)

	// Roots is the number of measured foreground collective roots whose
	// execution fell inside the window; Total sums their latencies, which
	// equals the summed Rows time by the critical path's tiling invariant
	// (AttributeDrift validates the equality).
	Roots int
	Total sim.Time
	// P50/P99 are latency percentiles over the phase's roots.
	P50, P99 sim.Time
	// Rows is the per-(layer, class, name) critical-path decomposition.
	Rows []span.AttribRow

	// Reprobes is the foreground engine's re-probe decisions inside the
	// window (from the recorder's policy counter series).
	Reprobes int64
	// MaxQueueDepth is the deepest proxy backlog sampled in the window.
	MaxQueueDepth float64
	// SLOViolations counts foreground iterations over DriftSLOObjective
	// inside the window.
	SLOViolations int64
}

// DriftAttribution is one policy's full phase-by-phase decomposition.
type DriftAttribution struct {
	Policy string
	Phases []DriftPhaseAttribution
}

// Phase returns a phase by name (nil if absent).
func (a *DriftAttribution) Phase(name string) *DriftPhaseAttribution {
	for i := range a.Phases {
		if a.Phases[i].Phase == name {
			return &a.Phases[i]
		}
	}
	return nil
}

// driftPhaseWindow returns the [from, to) window of one phase. The post
// phase ends at the foreground job's finish so its recorder queries don't
// sample the background-only tail of the run.
func driftPhaseWindow(phase string, fgFinish sim.Time) (sim.Time, sim.Time) {
	switch phase {
	case "pre":
		return 0, DriftArrival
	case "degraded":
		return DriftArrival, DriftArrival + DriftSettle
	default:
		return DriftArrival + DriftSettle, fgFinish
	}
}

// driftPhaseOf assigns one collective root to a phase by the same windowing
// SplitDrift applies to iteration samples: roots that completed before the
// arrival are "pre", roots that began after the settle grace are "post",
// and anything spanning a boundary is the transition — "degraded".
func driftPhaseOf(s span.Span) string {
	switch {
	case s.End <= DriftArrival:
		return "pre"
	case s.Begin >= DriftArrival+DriftSettle:
		return "post"
	default:
		return "degraded"
	}
}

// AttributeDrift joins one run's span trace with its flight recorder: the
// measured foreground collective roots are split into the drift phases,
// each phase's critical paths are aggregated per layer, and the recorder
// contributes what the counters did over the same virtual-time window. The
// error path trips when the trace is missing or when a phase's per-layer
// segments fail to sum to its summed root latencies (the critical-path
// tiling invariant — any gap means the decomposition lost time).
func AttributeDrift(run DriftRun) (DriftAttribution, error) {
	a := DriftAttribution{Policy: run.Policy}
	if run.Spans == nil {
		return a, fmt.Errorf("bench: drift attribution for %s: run has no span trace", run.Policy)
	}
	roots := run.Spans.RootsNamed("coll", "ialltoall")
	if len(roots) == 0 {
		return a, fmt.Errorf("bench: drift attribution for %s: no foreground collective roots", run.Policy)
	}

	// Skip each rank's warmup iterations so the phases aggregate exactly
	// the measured samples BENCH_drift.json reports. Roots are in creation
	// order, so per-entity counting is deterministic.
	seen := map[string]int{}
	byPhase := map[string][]span.ID{}
	durs := map[string][]sim.Time{}
	for _, id := range roots {
		s, ok := run.Spans.Get(id)
		if !ok || !s.Ended {
			continue
		}
		n := seen[s.Entity]
		seen[s.Entity] = n + 1
		if n < driftFgWarmup {
			continue
		}
		ph := driftPhaseOf(s)
		byPhase[ph] = append(byPhase[ph], id)
		durs[ph] = append(durs[ph], s.Dur())
	}

	fg := run.Res.Job("fg")
	for _, ph := range DriftPhases {
		from, to := driftPhaseWindow(ph, fg.Finish)
		pa := DriftPhaseAttribution{Phase: ph, From: from, To: to}
		ids := byPhase[ph]
		pa.Roots = len(ids)
		pa.Rows = run.Spans.Attribution(ids)
		var rowSum sim.Time
		for _, r := range pa.Rows {
			rowSum += r.Time
		}
		ds := durs[ph]
		sort.Slice(ds, func(i, j int) bool { return ds[i] < ds[j] })
		for _, d := range ds {
			pa.Total += d
		}
		pa.P50 = metrics.Percentile(ds, 50)
		pa.P99 = metrics.Percentile(ds, 99)
		if rowSum != pa.Total {
			return a, fmt.Errorf("bench: drift attribution for %s, phase %s: per-layer segments sum to %s, roots to %s",
				run.Policy, ph, rowSum, pa.Total)
		}
		pa.Reprobes = run.Rec.CounterIncrease("policy", run.Policy, "reason_reprobe", "fg", from, to)
		pa.SLOViolations = run.Rec.CounterIncrease("slo", "latency", "violations", "fg", from, to)
		pa.MaxQueueDepth, _ = run.Rec.MaxGaugeRange("core", "queue_depth", from, to)
		a.Phases = append(a.Phases, pa)
	}
	return a, nil
}

// MeasureDriftAttribution runs the drift scenario at the checked-in
// BENCH_drift.json shape for the two policies whose gap is the re-route win
// — the frozen Measuring policy and the feedback policy — with span tracing
// on, and attributes both. The returned runs keep their recorders for
// export.
func MeasureDriftAttribution(nodes, ppn, fgIters int) ([]DriftAttribution, []DriftRun, error) {
	policies := []string{"measure", "feedback"}
	spansFor := map[string]bool{"measure": true, "feedback": true}
	runs := CollectDriftTimelines(nodes, ppn, fgIters, policies, spansFor)
	out := make([]DriftAttribution, len(runs))
	for i, run := range runs {
		a, err := AttributeDrift(run)
		if err != nil {
			return nil, runs, err
		}
		out[i] = a
	}
	return out, runs, nil
}
