package bench

import (
	"bytes"
	"os"
	"reflect"
	"testing"
)

// The generated snapshot must validate (which asserts the offload
// crossover), reproduce exactly, and round-trip through the JSON
// writer/parser unchanged.
func TestTenantsSnapshotValidAndDeterministic(t *testing.T) {
	snap := MeasureTenants()
	if err := snap.Validate(); err != nil {
		t.Fatal(err)
	}
	again := MeasureTenants()
	if !reflect.DeepEqual(snap, again) {
		t.Fatal("two tenants sweeps diverged")
	}

	var buf bytes.Buffer
	if err := WriteTenantsSnapshot(&buf, snap); err != nil {
		t.Fatal(err)
	}
	back, err := ParseTenantsSnapshot(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(snap, back) {
		t.Fatal("tenants snapshot did not round-trip through JSON")
	}
}

// The sweep must produce byte-identical output at any worker count: results
// land by index and per-run registries merge in index order.
func TestTenantsSweepParallelIdentical(t *testing.T) {
	old := Parallelism
	defer func() { Parallelism = old }()

	Parallelism = 1
	serial := MeasureTenants()
	Parallelism = 4
	par := MeasureTenants()

	var sb, pb bytes.Buffer
	if err := WriteTenantsSnapshot(&sb, serial); err != nil {
		t.Fatal(err)
	}
	if err := WriteTenantsSnapshot(&pb, par); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(sb.Bytes(), pb.Bytes()) {
		t.Fatal("tenants sweep output differs between -parallel 1 and -parallel 4")
	}
}

// The checked-in baseline must stay valid (including the crossover claim);
// regenerate it with `make bench-tenants` after an intentional change.
func TestCheckedInTenantsSnapshotValid(t *testing.T) {
	data, err := os.ReadFile("../../BENCH_tenants.json")
	if err != nil {
		t.Fatalf("missing tenants baseline (run `make bench-tenants`): %v", err)
	}
	if _, err := ParseTenantsSnapshot(data); err != nil {
		t.Fatal(err)
	}
}
