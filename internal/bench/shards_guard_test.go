package bench

import (
	"encoding/json"
	"runtime"
	"testing"

	"repro/internal/baseline"
)

// setShards installs a bench-global shard count for the duration of one
// guard run and restores the serial default afterwards.
func setShards(t *testing.T, n int) {
	t.Helper()
	prev := Shards
	Shards = n
	t.Cleanup(func() { Shards = prev })
}

// snapshotBytes renders a full fig13 snapshot — timings plus the complete
// metrics section — as canonical JSON.
func snapshotBytes(t *testing.T) []byte {
	t.Helper()
	b, err := json.Marshal(Fig13Snapshot())
	if err != nil {
		t.Fatalf("marshal snapshot: %v", err)
	}
	return b
}

// The two-sided determinism guard for lookahead sharding: the entire fig13
// snapshot — every virtual timing and every metrics series — must be
// byte-identical whether the kernel runs serial, with an explicit shard
// count, or with one shard per node. GOMAXPROCS is forced above 1 so the
// sharded runs really extract windows on worker goroutines.
func TestShardedFig13ByteIdenticalToSerial(t *testing.T) {
	if testing.Short() {
		t.Skip("full fig13 sweep; skipped in -short")
	}
	prev := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(prev)

	setShards(t, 1)
	serial := snapshotBytes(t)

	for _, n := range []int{0, 2, 4} {
		setShards(t, n)
		got := snapshotBytes(t)
		if string(got) != string(serial) {
			t.Errorf("-shards %d snapshot differs from serial:\nserial: %s\nshards: %s", n, serial, got)
		}
	}
}

// The same guard at a shape where multiple shards really carry load:
// a 4-node Ialltoall, serial vs 4 shards, exact virtual-time equality.
func TestShardedIalltoallMatchesSerialAtFourNodes(t *testing.T) {
	prev := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(prev)

	run := func(shards int) NBCResult {
		setShards(t, shards)
		return MeasureIalltoall(Options{
			Nodes: 4, PPN: 4, Scheme: baseline.NameProposed, Backed: false,
		}, 16<<10, 1, 2)
	}
	serial := run(1)
	sharded := run(4)
	if serial != sharded {
		t.Fatalf("sharded Ialltoall differs from serial:\nserial:  %+v\nsharded: %+v", serial, sharded)
	}
}
