package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"repro/internal/metrics"
	"repro/internal/pattern"
	"repro/internal/sim"
	"repro/internal/tenant"
)

// DriftSchema is the schema tag of the mid-run drift snapshot
// (BENCH_drift.json); bump it when the layout changes incompatibly.
const DriftSchema = "offload-drift/v1"

// driftPolicies are the foreground policies the drift scenario compares:
// the two fixed paths, the probe-then-freeze Measuring policy (which is
// frozen on the pre-drift argmin when the world changes), and the
// feedback policy that is supposed to notice and re-route.
var driftPolicies = []string{"gvmi", "hostdirect", "measure", "feedback"}

// Drift scenario shape. The foreground is a latency-bound alltoall with
// overlapped compute — the regime where DPU-progressed offload beats the
// host path (iteration ≈ max(compute, comm) vs compute + comm). The
// background tenants that arrive at DriftArrival replay chatty
// small-message patterns: per-op proxy handling and DPU injection
// overhead saturate the single shared ARM worker while moving so few
// bytes that host ports stay usable — exactly the drift that flips the
// best path from cross-GVMI to host-direct mid-run.
const (
	// DriftArrival is when the background tenants start (virtual time).
	DriftArrival = 1 * sim.Millisecond
	// DriftSettle is the grace window after arrival excluded from the
	// post-drift statistics: it covers drift detection, the feedback
	// policy's re-probe epoch, and the congestion ramp, so "post" numbers
	// compare steady states.
	DriftSettle = 8 * sim.Millisecond

	driftFgSize    = 64 << 10
	driftFgCompute = 50 * sim.Microsecond
	driftFgWarmup  = 4
	driftBgJobs    = 4
	driftBgOps     = 96   // messages per hop of the chatty background ring
	driftBgSize    = 1024 // bytes per background message
)

// DriftCase builds the drift scenario for one foreground policy: a
// latency-bound foreground job and driftBgJobs chatty background tenants
// arriving at DriftArrival, all contending for a single FIFO proxy worker
// per node (head-of-line blocking — fair queueing would shield the
// foreground and hide the drift).
func DriftCase(nodes, ppn, fgIters int, fgPolicy string) tenant.Config {
	jobs := []tenant.JobSpec{{
		Name: "fg", PPN: ppn, Policy: fgPolicy, Weight: 1,
		Workload: tenant.Workload{
			Kind: tenant.Latency, Size: driftFgSize, Compute: driftFgCompute,
			Iters: fgIters, Warmup: driftFgWarmup,
		},
	}}
	spec := pattern.Chatty(nodes*ppn, driftBgOps, driftBgSize)
	for i := 0; i < driftBgJobs; i++ {
		jobs = append(jobs, tenant.JobSpec{
			Name: fmt.Sprintf("bg%d", i), PPN: ppn, Policy: "gvmi", Weight: 1,
			Workload: tenant.Workload{
				Kind: tenant.Pattern, Spec: spec,
				// 5x the foreground count keeps the background active well
				// past the slowest foreground policy's finish, so every
				// post-drift window samples the same steady congestion.
				Iters: fgIters * 5, Warmup: 1, Start: DriftArrival,
			},
		})
	}
	return tenant.Config{Nodes: nodes, ProxiesPerDPU: 1, FIFO: true, Jobs: jobs}
}

// SplitDrift windows stamped iteration samples around the drift: "pre" are
// iterations that completed before the background arrived, "post" are
// iterations that started after the settle grace expired. Transition
// iterations (spanning arrival or settle) belong to neither. Both slices
// come back sorted for percentile lookup.
func SplitDrift(samples []tenant.IterSample, arrival, settle sim.Time) (pre, post []sim.Time) {
	for _, s := range samples {
		switch {
		case s.At <= arrival:
			pre = append(pre, s.Dur)
		case s.At-s.Dur >= arrival+settle:
			post = append(post, s.Dur)
		}
	}
	sort.Slice(pre, func(a, b int) bool { return pre[a] < pre[b] })
	sort.Slice(post, func(a, b int) bool { return post[a] < post[b] })
	return pre, post
}

// Percentile returns the p-th percentile of a sorted slice. It delegates
// to the shared metrics helper (nearest-rank, floor indexing) so every
// table in the repo uses one convention; kept exported for the CLIs.
func Percentile(sorted []sim.Time, p int) sim.Time {
	return metrics.Percentile(sorted, p)
}

// DriftPoint is one foreground policy's measured behaviour around the
// background arrival.
type DriftPoint struct {
	FgPolicy string `json:"fg_policy"`
	// Pre-drift (background not yet arrived) foreground latency.
	PreN    int   `json:"pre_n"`
	PreP50N int64 `json:"pre_p50_ns"`
	PreP99N int64 `json:"pre_p99_ns"`
	// Post-drift (after the settle grace) foreground latency.
	PostN    int   `json:"post_n"`
	PostP50N int64 `json:"post_p50_ns"`
	PostP99N int64 `json:"post_p99_ns"`
	// Reprobes counts the foreground engine's re-probe decisions (the
	// "reason_reprobe" policy counter; 0 for every non-feedback policy).
	Reprobes int64 `json:"reprobes"`
	// FinishNS is the foreground job's completion time; MakespanNS the
	// whole run's.
	FinishNS   int64 `json:"finish_ns"`
	MakespanNS int64 `json:"makespan_ns"`
}

// DriftConfig records the environment the series was measured under.
type DriftConfig struct {
	Nodes     int   `json:"nodes"`
	PPN       int   `json:"ppn"`
	FgIters   int   `json:"fg_iters"`
	ArrivalNS int64 `json:"arrival_ns"`
	SettleNS  int64 `json:"settle_ns"`
}

// DriftSnapshot is the checked-in drift baseline: per-policy foreground
// latency before and after background tenants arrive mid-run, plus the
// merged metrics (which carry the feedback engine's re-probe counters).
// Timings are deterministic, so any diff against the checked-in file is a
// real behaviour change.
type DriftSnapshot struct {
	Schema  string           `json:"schema"`
	Figure  string           `json:"figure"`
	Config  DriftConfig      `json:"config"`
	Series  []DriftPoint     `json:"series"`
	Metrics metrics.Snapshot `json:"metrics"`
}

// DriftSeries measures every foreground policy's drift behaviour, one
// independent simulation per policy, distributed by the sweep runner —
// results are byte-identical at any -parallel value; per-run metrics merge
// into target (nil = the process-wide DefaultMetrics sink).
func DriftSeries(target *metrics.Registry, nodes, ppn, fgIters int) []DriftPoint {
	series := make([]DriftPoint, len(driftPolicies))
	job := func(i int, env SweepEnv) {
		pol := driftPolicies[i]
		cfg := DriftCase(nodes, ppn, fgIters, pol)
		cfg.Metrics = env.Met
		cfg.Spans = env.Sp
		res, err := tenant.Run(cfg)
		if err != nil {
			panic(fmt.Sprintf("bench: drift policy=%s: %v", pol, err))
		}
		fg := res.Job("fg")
		pre, post := SplitDrift(fg.Samples, DriftArrival, DriftSettle)
		series[i] = DriftPoint{
			FgPolicy: pol,
			PreN:     len(pre),
			PreP50N:  int64(Percentile(pre, 50)),
			PreP99N:  int64(Percentile(pre, 99)),
			PostN:    len(post),
			PostP50N: int64(Percentile(post, 50)),
			PostP99N: int64(Percentile(post, 99)),
			Reprobes: res.Metrics.CounterT("policy", pol, "reason_reprobe", "fg").Value(),
			FinishNS: int64(fg.Finish), MakespanNS: int64(res.Makespan),
		}
	}
	if target != nil {
		SweepInto(target, len(series), job)
	} else {
		Sweep(len(series), job)
	}
	return series
}

// MeasureDrift runs the full drift scenario (2 nodes × 2 PPN per job, 80
// measured foreground iterations) with a live metrics registry attached
// and packages the series plus merged metrics into a DriftSnapshot.
func MeasureDrift() DriftSnapshot {
	const nodes, ppn, fgIters = 2, 2, 80
	met := metrics.NewRegistry()
	s := DriftSnapshot{
		Schema: DriftSchema,
		Figure: "drift",
		Config: DriftConfig{
			Nodes: nodes, PPN: ppn, FgIters: fgIters,
			ArrivalNS: int64(DriftArrival), SettleNS: int64(DriftSettle),
		},
	}
	s.Series = DriftSeries(met, nodes, ppn, fgIters)
	s.Metrics = met.Snapshot()
	return s
}

// WriteDriftSnapshot writes the snapshot as indented JSON.
func WriteDriftSnapshot(w io.Writer, s DriftSnapshot) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// ParseDriftSnapshot decodes and validates a JSON snapshot.
func ParseDriftSnapshot(data []byte) (DriftSnapshot, error) {
	var s DriftSnapshot
	if err := json.Unmarshal(data, &s); err != nil {
		return s, fmt.Errorf("bench: invalid drift snapshot JSON: %w", err)
	}
	if err := s.Validate(); err != nil {
		return s, err
	}
	return s, nil
}

// Validate checks schema conformance and the headline claim this snapshot
// exists for: before the drift the offload path wins the latency-bound
// foreground, after it the frozen Measuring policy is stuck ≥ 1.5× worse
// than host-direct at the post-drift p99 while the feedback policy
// re-probes (at least one re-probe decision, none for Measuring) and ties
// host-direct.
func (s DriftSnapshot) Validate() error {
	if s.Schema != DriftSchema {
		return fmt.Errorf("bench: drift schema %q, want %q", s.Schema, DriftSchema)
	}
	if s.Figure == "" {
		return fmt.Errorf("bench: drift snapshot has no figure name")
	}
	if s.Config.Nodes <= 0 || s.Config.PPN <= 0 || s.Config.FgIters <= 0 ||
		s.Config.ArrivalNS <= 0 || s.Config.SettleNS <= 0 {
		return fmt.Errorf("bench: incomplete drift config %+v", s.Config)
	}
	pts := map[string]DriftPoint{}
	for i, p := range s.Series {
		if p.FgPolicy == "" {
			return fmt.Errorf("bench: drift series[%d] has no policy", i)
		}
		if p.PreN <= 0 || p.PostN <= 0 {
			return fmt.Errorf("bench: drift series[%d] (%s) has empty windows (pre %d, post %d)",
				i, p.FgPolicy, p.PreN, p.PostN)
		}
		if p.PreP50N <= 0 || p.PreP99N < p.PreP50N || p.PostP50N <= 0 || p.PostP99N < p.PostP50N {
			return fmt.Errorf("bench: drift series[%d] implausible latency %+v", i, p)
		}
		if p.FinishNS <= 0 || p.MakespanNS < p.FinishNS {
			return fmt.Errorf("bench: drift series[%d] implausible times %+v", i, p)
		}
		pts[p.FgPolicy] = p
	}
	for _, pol := range driftPolicies {
		if _, ok := pts[pol]; !ok {
			return fmt.Errorf("bench: drift series is missing policy %q", pol)
		}
	}
	gvmi, host, meas, fb := pts["gvmi"], pts["hostdirect"], pts["measure"], pts["feedback"]
	// Pre-drift: offload wins the overlapped-compute foreground.
	if gvmi.PreP50N >= host.PreP50N {
		return fmt.Errorf("bench: drift pre-window shows no offload win (gvmi p50 %d >= hostdirect %d)",
			gvmi.PreP50N, host.PreP50N)
	}
	// Post-drift: the frozen argmin is stuck on a saturated proxy.
	if meas.PostP99N*2 < host.PostP99N*3 {
		return fmt.Errorf("bench: drift post-window: frozen measure p99 %d is not >= 1.5x hostdirect %d",
			meas.PostP99N, host.PostP99N)
	}
	// Post-drift: feedback re-routed and ties host-direct (10% tolerance).
	if fb.PostP99N*10 > host.PostP99N*11 {
		return fmt.Errorf("bench: drift post-window: feedback p99 %d does not tie hostdirect %d",
			fb.PostP99N, host.PostP99N)
	}
	if fb.Reprobes < 1 {
		return fmt.Errorf("bench: drift feedback policy never re-probed")
	}
	if meas.Reprobes != 0 {
		return fmt.Errorf("bench: drift measure policy re-probed %d times (freeze-once must not)", meas.Reprobes)
	}
	reprobeSeries := false
	for _, c := range s.Metrics.Counters {
		if c.Name == "reason_reprobe" && c.Tenant == "fg" && c.Value > 0 {
			reprobeSeries = true
			break
		}
	}
	if !reprobeSeries {
		return fmt.Errorf("bench: drift snapshot metrics carry no re-probe counter")
	}
	return s.Metrics.Validate()
}
