package metrics

import (
	"testing"

	"repro/internal/sim"
)

// Percentile follows the nearest-rank-floor convention (index
// (len-1)*p/100) on known distributions, including the degenerate cases.
func TestPercentileKnownDistributions(t *testing.T) {
	seq := make([]sim.Time, 100) // 1..100
	for i := range seq {
		seq[i] = sim.Time(i + 1)
	}
	cases := []struct {
		name   string
		sorted []sim.Time
		p      int
		want   sim.Time
	}{
		{"empty", nil, 50, 0},
		{"single", []sim.Time{42}, 0, 42},
		{"single-p100", []sim.Time{42}, 100, 42},
		{"uniform-p0", seq, 0, 1},
		{"uniform-p50", seq, 50, 50},  // index 99*50/100 = 49
		{"uniform-p90", seq, 90, 90},  // index 89
		{"uniform-p99", seq, 99, 99},  // index 98
		{"uniform-p100", seq, 100, 100},
		{"five-p50", []sim.Time{10, 20, 30, 40, 50}, 50, 30},
		{"five-p99", []sim.Time{10, 20, 30, 40, 50}, 99, 40}, // index 4*99/100 = 3
		{"clamp-low", seq, -10, 1},
		{"clamp-high", seq, 200, 100},
	}
	for _, c := range cases {
		if got := Percentile(c.sorted, c.p); got != c.want {
			t.Errorf("%s: Percentile(p=%d) = %d, want %d", c.name, c.p, got, c.want)
		}
	}
}

// Histogram quantiles return the inclusive upper bound of the bucket
// holding the nearest-rank observation, with the zero bucket estimating 0.
func TestHistogramQuantileKnownDistributions(t *testing.T) {
	var nilH *Histogram
	if nilH.Quantile(0.5) != 0 || nilH.P99() != 0 {
		t.Fatal("nil histogram quantile non-zero")
	}
	empty := &Histogram{}
	if empty.P50() != 0 {
		t.Fatal("empty histogram quantile non-zero")
	}

	// 100 observations of exactly 1000ns: every quantile is the bucket
	// upper bound for 1000 (bucket [512, 1024) → 1023).
	h := &Histogram{}
	for i := 0; i < 100; i++ {
		h.Observe(1000)
	}
	for _, q := range []float64{0.01, 0.5, 0.9, 0.99, 1} {
		if got := h.Quantile(q); got != 1023 {
			t.Fatalf("constant dist: Quantile(%g) = %d, want 1023", q, got)
		}
	}

	// Bimodal: 90 observations at 100ns (bucket [64,128) → 127) and 10 at
	// 1ms (bucket [2^19, 2^20) → 1048575). p50/p90 land in the low mode,
	// p99 in the high mode.
	h2 := &Histogram{}
	for i := 0; i < 90; i++ {
		h2.Observe(100)
	}
	for i := 0; i < 10; i++ {
		h2.Observe(sim.Millisecond)
	}
	if got := h2.P50(); got != 127 {
		t.Fatalf("bimodal P50 = %d, want 127", got)
	}
	if got := h2.P90(); got != 127 { // rank 90 is the last low-mode sample
		t.Fatalf("bimodal P90 = %d, want 127", got)
	}
	if got := h2.P99(); got != 1048575 {
		t.Fatalf("bimodal P99 = %d, want 1048575", got)
	}

	// Zeros live in bucket 0 and estimate exactly 0.
	h3 := &Histogram{}
	for i := 0; i < 9; i++ {
		h3.Observe(0)
	}
	h3.Observe(5)
	if got := h3.P50(); got != 0 {
		t.Fatalf("zero-heavy P50 = %d, want 0", got)
	}
	if got := h3.Quantile(1); got != 7 { // 5 lands in [4,8) → 7
		t.Fatalf("zero-heavy max = %d, want 7", got)
	}

	// Monotonicity across q for a spread distribution.
	h4 := &Histogram{}
	for _, v := range []sim.Time{1, 2, 4, 8, 16, 32, 64, 128, 256, 512} {
		h4.Observe(v)
	}
	prev := sim.Time(-1)
	for _, q := range []float64{0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1} {
		v := h4.Quantile(q)
		if v < prev {
			t.Fatalf("quantile not monotone: q=%g gave %d after %d", q, v, prev)
		}
		prev = v
	}
}
