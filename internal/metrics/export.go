package metrics

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"
)

// SnapshotSchema is the schema tag of exported metric snapshots; bump it
// when the JSON layout changes incompatibly.
const SnapshotSchema = "offload-metrics/v1"

// CounterPoint is one exported counter value. Tenant is the optional job
// label of multi-tenant runs; it is omitted when empty so untenanted
// snapshots are byte-identical to the pre-tenant format.
type CounterPoint struct {
	Layer  string `json:"layer"`
	Entity string `json:"entity"`
	Name   string `json:"name"`
	Tenant string `json:"tenant,omitempty"`
	Value  int64  `json:"value"`
}

// GaugePoint is one exported gauge value.
type GaugePoint struct {
	Layer  string  `json:"layer"`
	Entity string  `json:"entity"`
	Name   string  `json:"name"`
	Tenant string  `json:"tenant,omitempty"`
	Value  float64 `json:"value"`
}

// BucketPoint is one histogram bucket: Count observations with value < Lt
// (and ≥ the previous bucket's bound). Only non-empty buckets export.
type BucketPoint struct {
	Lt    int64 `json:"lt"` // exclusive upper bound (2^i; 1 for the zero bucket)
	Count int64 `json:"count"`
}

// HistogramPoint is one exported histogram.
type HistogramPoint struct {
	Layer   string        `json:"layer"`
	Entity  string        `json:"entity"`
	Name    string        `json:"name"`
	Tenant  string        `json:"tenant,omitempty"`
	Count   int64         `json:"count"`
	SumNS   int64         `json:"sum_ns"`
	Buckets []BucketPoint `json:"buckets,omitempty"`
}

// Snapshot is the full serializable state of a registry at one instant,
// deterministically ordered.
type Snapshot struct {
	Schema     string           `json:"schema"`
	Counters   []CounterPoint   `json:"counters"`
	Gauges     []GaugePoint     `json:"gauges"`
	Histograms []HistogramPoint `json:"histograms"`
}

// Snapshot captures every series; nil-safe (a nil registry snapshots
// empty). The result is self-contained — mutating the registry afterwards
// does not affect it.
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{
		Schema:     SnapshotSchema,
		Counters:   []CounterPoint{},
		Gauges:     []GaugePoint{},
		Histograms: []HistogramPoint{},
	}
	if r == nil {
		return s
	}
	for _, k := range sortedKeys(r.counters) {
		s.Counters = append(s.Counters, CounterPoint{k.Layer, k.Entity, k.Name, k.Tenant, r.counters[k].v})
	}
	for _, k := range sortedKeys(r.gauges) {
		s.Gauges = append(s.Gauges, GaugePoint{k.Layer, k.Entity, k.Name, k.Tenant, r.gauges[k].v})
	}
	for _, k := range sortedKeys(r.hists) {
		h := r.hists[k]
		hp := HistogramPoint{Layer: k.Layer, Entity: k.Entity, Name: k.Name, Tenant: k.Tenant,
			Count: h.count, SumNS: int64(h.sum)}
		for i, n := range h.buckets {
			if n == 0 {
				continue
			}
			hp.Buckets = append(hp.Buckets, BucketPoint{Lt: int64(1) << uint(i), Count: n})
		}
		s.Histograms = append(s.Histograms, hp)
	}
	return s
}

// Has reports whether the snapshot contains at least one series owned by
// the given layer (any metric type).
func (s Snapshot) Has(layer string) bool {
	for _, c := range s.Counters {
		if c.Layer == layer {
			return true
		}
	}
	for _, g := range s.Gauges {
		if g.Layer == layer {
			return true
		}
	}
	for _, h := range s.Histograms {
		if h.Layer == layer {
			return true
		}
	}
	return false
}

// CounterValue returns the exported value of one untenanted counter series
// (0 if absent).
func (s Snapshot) CounterValue(layer, entity, name string) int64 {
	return s.CounterValueT(layer, entity, name, "")
}

// CounterValueT returns the exported value of one counter series under a
// tenant label (0 if absent; "" matches untenanted series).
func (s Snapshot) CounterValueT(layer, entity, name, tenant string) int64 {
	for _, c := range s.Counters {
		if c.Layer == layer && c.Entity == entity && c.Name == name && c.Tenant == tenant {
			return c.Value
		}
	}
	return 0
}

// WriteJSON writes the snapshot as indented JSON.
func (s Snapshot) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// ParseSnapshot decodes and validates a JSON snapshot (the round-trip
// inverse of WriteJSON).
func ParseSnapshot(data []byte) (Snapshot, error) {
	var s Snapshot
	if err := json.Unmarshal(data, &s); err != nil {
		return s, fmt.Errorf("metrics: invalid snapshot JSON: %w", err)
	}
	if err := s.Validate(); err != nil {
		return s, err
	}
	return s, nil
}

// Validate checks schema conformance: the schema tag, non-empty keys, and
// internally consistent histograms.
func (s Snapshot) Validate() error {
	if s.Schema != SnapshotSchema {
		return fmt.Errorf("metrics: schema %q, want %q", s.Schema, SnapshotSchema)
	}
	checkKey := func(kind, layer, entity, name string) error {
		if layer == "" || entity == "" || name == "" {
			return fmt.Errorf("metrics: %s with empty key (%q,%q,%q)", kind, layer, entity, name)
		}
		return nil
	}
	for _, c := range s.Counters {
		if err := checkKey("counter", c.Layer, c.Entity, c.Name); err != nil {
			return err
		}
		if c.Value < 0 {
			return fmt.Errorf("metrics: counter %s/%s/%s negative: %d", c.Layer, c.Entity, c.Name, c.Value)
		}
	}
	for _, g := range s.Gauges {
		if err := checkKey("gauge", g.Layer, g.Entity, g.Name); err != nil {
			return err
		}
	}
	for _, h := range s.Histograms {
		if err := checkKey("histogram", h.Layer, h.Entity, h.Name); err != nil {
			return err
		}
		var n int64
		for _, b := range h.Buckets {
			n += b.Count
		}
		if n != h.Count {
			return fmt.Errorf("metrics: histogram %s/%s/%s bucket sum %d != count %d",
				h.Layer, h.Entity, h.Name, n, h.Count)
		}
	}
	return nil
}

// PromName builds the Prometheus metric name offload_<layer>_<name>, with
// any character outside [a-zA-Z0-9_] replaced by '_'. Exported so sibling
// exposition writers (the telemetry timestamped exporter) share the family
// naming.
func PromName(layer, name string) string { return promName(layer, name) }

// PromLabelValue renders one label value in Prometheus text exposition
// format (quoted, with the format's three escapes); see promLabel.
func PromLabelValue(v string) string { return promLabel(v) }

// promName builds the Prometheus metric name offload_<layer>_<name>, with
// any character outside [a-zA-Z0-9_] replaced by '_'.
func promName(layer, name string) string {
	mangle := func(s string) string {
		return strings.Map(func(r rune) rune {
			switch {
			case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '_':
				return r
			}
			return '_'
		}, s)
	}
	return "offload_" + mangle(layer) + "_" + mangle(name)
}

// promLabel renders one label value in Prometheus text exposition format.
// The format defines exactly three escapes inside a quoted label value —
// backslash, double-quote and newline. Go's %q verb is NOT equivalent: it
// escapes non-ASCII and control characters Go-style (\t, é, ...),
// which Prometheus parsers reject or misread.
func promLabel(v string) string {
	var b strings.Builder
	b.WriteByte('"')
	for _, r := range v {
		switch r {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(r)
		}
	}
	b.WriteByte('"')
	return b.String()
}

// promLabels renders the label set of one series: always the entity label,
// plus a tenant label when the series carries one. Untenanted series emit
// the exact pre-tenant label set, so legacy exports are byte-identical.
func promLabels(entity, tenant string) string {
	if tenant == "" {
		return "entity=" + promLabel(entity)
	}
	return "entity=" + promLabel(entity) + ",tenant=" + promLabel(tenant)
}

// promHelp is the # HELP text of one metric family: where the series came
// from inside the simulated cluster. Kept to the family's (layer, name) —
// both are shared by every series merged under one Prometheus name.
func promHelp(layer, name, typ string) string {
	return fmt.Sprintf("Simulated-cluster %s %q from layer %q.", typ, name, layer)
}

// WritePrometheus writes the snapshot in Prometheus text exposition format.
// Entities become the "entity" label (tenanted series add a "tenant" label);
// histogram bucket bounds are emitted as cumulative le="..." series in
// virtual nanoseconds. Each metric family is preceded by # HELP and # TYPE
// header lines, emitted exactly once per family as the exposition format
// requires. Series order follows the snapshot's sorted key order, so output
// is deterministic.
func (s Snapshot) WritePrometheus(w io.Writer) error {
	typed := map[string]bool{} // emit the headers once per metric name
	header := func(name, layer, raw, typ string) {
		if !typed[name] {
			typed[name] = true
			fmt.Fprintf(w, "# HELP %s %s\n", name, promHelp(layer, raw, typ))
			fmt.Fprintf(w, "# TYPE %s %s\n", name, typ)
		}
	}
	for _, c := range s.Counters {
		n := promName(c.Layer, c.Name)
		header(n, c.Layer, c.Name, "counter")
		fmt.Fprintf(w, "%s{%s} %d\n", n, promLabels(c.Entity, c.Tenant), c.Value)
	}
	for _, g := range s.Gauges {
		n := promName(g.Layer, g.Name)
		header(n, g.Layer, g.Name, "gauge")
		fmt.Fprintf(w, "%s{%s} %g\n", n, promLabels(g.Entity, g.Tenant), g.Value)
	}
	for _, h := range s.Histograms {
		n := promName(h.Layer, h.Name)
		header(n, h.Layer, h.Name, "histogram")
		lbl := promLabels(h.Entity, h.Tenant)
		var cum int64
		for _, b := range h.Buckets {
			cum += b.Count
			fmt.Fprintf(w, "%s_bucket{%s,le=%s} %d\n", n, lbl, promLabel(fmt.Sprint(b.Lt-1)), cum)
		}
		fmt.Fprintf(w, "%s_bucket{%s,le=\"+Inf\"} %d\n", n, lbl, h.Count)
		fmt.Fprintf(w, "%s_sum{%s} %d\n", n, lbl, h.SumNS)
		fmt.Fprintf(w, "%s_count{%s} %d\n", n, lbl, h.Count)
	}
	return nil
}
