package metrics

import (
	"reflect"
	"testing"

	"repro/internal/sim"
)

// Merge folds a worker's private registry into the shared one with the same
// result a serial run would have produced: counters and histograms add,
// Set-gauges overwrite (last merged writer = last serial writer), and
// SetMax-gauges take the maximum.
func TestMergeSemantics(t *testing.T) {
	dst := NewRegistry()
	dst.Counter("fabric", "ep", "msgs_tx").Add(3)
	dst.Gauge("core", "p0", "queue_depth").Set(5)
	dst.Gauge("core", "p0", "queue_peak").SetMax(5)
	dst.Histogram("verbs", "all", "lat").Observe(1 * sim.Microsecond)

	src := NewRegistry()
	src.Counter("fabric", "ep", "msgs_tx").Add(4)
	src.Counter("fabric", "ep", "msgs_rx").Add(2) // only in src
	src.Gauge("core", "p0", "queue_depth").Set(1) // overwrites 5
	src.Gauge("core", "p0", "queue_peak").SetMax(3)
	src.Gauge("core", "p1", "queue_peak").SetMax(9) // only in src
	src.Histogram("verbs", "all", "lat").Observe(3 * sim.Microsecond)

	dst.Merge(src)

	if v := dst.Counter("fabric", "ep", "msgs_tx").Value(); v != 7 {
		t.Errorf("merged counter = %d, want 7", v)
	}
	if v := dst.Counter("fabric", "ep", "msgs_rx").Value(); v != 2 {
		t.Errorf("src-only counter = %d, want 2", v)
	}
	if v := dst.Gauge("core", "p0", "queue_depth").Value(); v != 1 {
		t.Errorf("Set gauge = %v, want overwrite to 1", v)
	}
	if v := dst.Gauge("core", "p0", "queue_peak").Value(); v != 5 {
		t.Errorf("SetMax gauge = %v, want max(5,3)=5", v)
	}
	if v := dst.Gauge("core", "p1", "queue_peak").Value(); v != 9 {
		t.Errorf("src-only SetMax gauge = %v, want 9", v)
	}
	h := dst.Histogram("verbs", "all", "lat")
	if h.Count() != 2 || h.Sum() != 4*sim.Microsecond {
		t.Errorf("merged histogram count=%d sum=%d, want 2/%d", h.Count(), h.Sum(), 4*sim.Microsecond)
	}
}

// A series the source created but never wrote still materializes in the
// destination — "series exist from the first request" must survive merging,
// so serial and merged snapshots list identical keys.
func TestMergeCreatesUntouchedSeries(t *testing.T) {
	src := NewRegistry()
	src.Counter("fabric", "ep", "drops")
	src.Gauge("core", "p0", "inflight")
	src.Histogram("verbs", "all", "lat")

	dst := NewRegistry()
	dst.Merge(src)
	snap := dst.Snapshot()
	if len(snap.Counters) != 1 || len(snap.Gauges) != 1 || len(snap.Histograms) != 1 {
		t.Fatalf("untouched series not materialized: %+v", snap)
	}
}

// In a multi-tenant sweep every per-job registry records the same proxy
// series under its own tenant label, and two jobs can genuinely overlap on
// one tenant key (e.g. both attribute busy time to the tenant they delayed).
// Merge must keep tenants as separate series — never folding them into each
// other or into the untenanted series — while applying the usual per-series
// semantics: counters add, Set-gauges take the merging writer, SetMax-gauges
// take the maximum.
func TestMergeOverlappingTenantKeys(t *testing.T) {
	a := NewRegistry()
	a.CounterT("core", "proxy0", "tenant_dispatches", "jobA").Add(10)
	a.GaugeT("core", "proxy0", "tenant_queue_depth", "jobA").Set(4)
	a.GaugeT("core", "proxy0", "tenant_queue_depth_max", "jobA").SetMax(6)
	a.HistogramT("core", "proxy0", "cross_tenant_wait_ns", "jobA").Observe(2 * sim.Microsecond)
	a.Counter("core", "proxy0", "tenant_dispatches").Add(1) // untenanted sibling

	b := NewRegistry()
	b.CounterT("core", "proxy0", "tenant_dispatches", "jobA").Add(5) // overlaps a
	b.CounterT("core", "proxy0", "tenant_dispatches", "jobB").Add(3)
	b.GaugeT("core", "proxy0", "tenant_queue_depth", "jobA").Set(1) // last writer
	b.GaugeT("core", "proxy0", "tenant_queue_depth", "jobB").Set(9)
	b.GaugeT("core", "proxy0", "tenant_queue_depth_max", "jobA").SetMax(2) // below a's 6
	b.GaugeT("core", "proxy0", "tenant_queue_depth_max", "jobB").SetMax(8)
	b.HistogramT("core", "proxy0", "cross_tenant_wait_ns", "jobA").Observe(3 * sim.Microsecond)

	dst := NewRegistry()
	dst.Merge(a)
	dst.Merge(b)

	if v := dst.CounterT("core", "proxy0", "tenant_dispatches", "jobA").Value(); v != 15 {
		t.Errorf("jobA counter = %d, want 10+5=15", v)
	}
	if v := dst.CounterT("core", "proxy0", "tenant_dispatches", "jobB").Value(); v != 3 {
		t.Errorf("jobB counter = %d, want 3", v)
	}
	if v := dst.Counter("core", "proxy0", "tenant_dispatches").Value(); v != 1 {
		t.Errorf("untenanted sibling = %d, want 1 (tenants must not fold into it)", v)
	}
	if v := dst.GaugeT("core", "proxy0", "tenant_queue_depth", "jobA").Value(); v != 1 {
		t.Errorf("jobA Set gauge = %v, want last merged writer 1", v)
	}
	if v := dst.GaugeT("core", "proxy0", "tenant_queue_depth", "jobB").Value(); v != 9 {
		t.Errorf("jobB Set gauge = %v, want 9", v)
	}
	if v := dst.GaugeT("core", "proxy0", "tenant_queue_depth_max", "jobA").Value(); v != 6 {
		t.Errorf("jobA SetMax gauge = %v, want max(6,2)=6", v)
	}
	if v := dst.GaugeT("core", "proxy0", "tenant_queue_depth_max", "jobB").Value(); v != 8 {
		t.Errorf("jobB SetMax gauge = %v, want 8", v)
	}
	h := dst.HistogramT("core", "proxy0", "cross_tenant_wait_ns", "jobA")
	if h.Count() != 2 || h.Sum() != 5*sim.Microsecond {
		t.Errorf("jobA histogram count=%d sum=%d, want 2/%d", h.Count(), h.Sum(), 5*sim.Microsecond)
	}

	// Merge order independence where the semantics promise it: reversing the
	// merge only changes Set-gauges (last writer), nothing else.
	rev := NewRegistry()
	rev.Merge(b)
	rev.Merge(a)
	if v := rev.CounterT("core", "proxy0", "tenant_dispatches", "jobA").Value(); v != 15 {
		t.Errorf("reversed jobA counter = %d, want 15", v)
	}
	if v := rev.GaugeT("core", "proxy0", "tenant_queue_depth_max", "jobA").Value(); v != 6 {
		t.Errorf("reversed jobA SetMax gauge = %v, want 6", v)
	}
	if v := rev.GaugeT("core", "proxy0", "tenant_queue_depth", "jobA").Value(); v != 4 {
		t.Errorf("reversed jobA Set gauge = %v, want a's 4 as last writer", v)
	}
}

// Merging nil is a no-op, and merging private registries in index order
// reproduces the serial interleaving byte-for-byte at the snapshot level.
func TestMergeOrderMatchesSerial(t *testing.T) {
	serial := NewRegistry()
	for i := 0; i < 4; i++ {
		serial.Counter("l", "e", "n").Add(int64(i))
		serial.Gauge("l", "e", "last").Set(float64(i))
		serial.Gauge("l", "e", "peak").SetMax(float64(i % 3))
	}

	merged := NewRegistry()
	merged.Merge(nil)
	for i := 0; i < 4; i++ {
		priv := NewRegistry()
		priv.Counter("l", "e", "n").Add(int64(i))
		priv.Gauge("l", "e", "last").Set(float64(i))
		priv.Gauge("l", "e", "peak").SetMax(float64(i % 3))
		merged.Merge(priv)
	}

	if !reflect.DeepEqual(serial.Snapshot(), merged.Snapshot()) {
		t.Fatalf("merged snapshot diverges from serial:\nserial: %+v\nmerged: %+v",
			serial.Snapshot(), merged.Snapshot())
	}
}
