// Shared quantile helpers. Two kinds of percentile live in this repo:
// exact nearest-rank percentiles over recorded sample slices (bench sweeps,
// tenant iteration latencies) and bucketed estimates out of the registry's
// log₂ histograms. Both were previously re-implemented ad hoc at each call
// site; this file is the single home so every table and exporter agrees on
// the convention.

package metrics

import "repro/internal/sim"

// Percentile returns the p-th percentile (0 ≤ p ≤ 100) of an
// ascending-sorted sample slice using the nearest-rank-floor convention
// every bench table in this repo uses: index (len-1)*p/100 in integer
// arithmetic. An empty slice returns 0.
func Percentile(sorted []sim.Time, p int) sim.Time {
	if len(sorted) == 0 {
		return 0
	}
	if p < 0 {
		p = 0
	}
	if p > 100 {
		p = 100
	}
	return sorted[(len(sorted)-1)*p/100]
}

// Quantile estimates the q-th quantile (0 < q ≤ 1) from the histogram's
// log₂ buckets; nil-safe (nil or empty histograms return 0). The estimate
// is the inclusive upper bound of the bucket holding the nearest-rank
// observation: bucket 0 (zero-valued observations) estimates 0, bucket i
// covers [2^(i-1), 2^i) and estimates 2^i - 1. Coarse by design — the
// histogram stores no intra-bucket detail — but monotone in q and never an
// underestimate of the true quantile's bucket.
func (h *Histogram) Quantile(q float64) sim.Time {
	if h == nil || h.count == 0 {
		return 0
	}
	if q <= 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	// Nearest rank: the smallest rank r (1-based) with r >= q*count.
	rank := int64(q * float64(h.count))
	if float64(rank) < q*float64(h.count) {
		rank++
	}
	if rank < 1 {
		rank = 1
	}
	var seen int64
	for i, n := range h.buckets {
		seen += n
		if seen >= rank {
			if i == 0 {
				return 0
			}
			return sim.Time(1)<<uint(i) - 1
		}
	}
	// Unreachable: seen == count >= rank by construction.
	return sim.Time(int64(^uint64(0) >> 1))
}

// P50 estimates the median from the histogram buckets; nil-safe.
func (h *Histogram) P50() sim.Time { return h.Quantile(0.50) }

// P90 estimates the 90th percentile from the histogram buckets; nil-safe.
func (h *Histogram) P90() sim.Time { return h.Quantile(0.90) }

// P99 estimates the 99th percentile from the histogram buckets; nil-safe.
func (h *Histogram) P99() sim.Time { return h.Quantile(0.99) }
