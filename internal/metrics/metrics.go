// Package metrics is the observability layer of the simulated cluster: a
// registry of typed counters, gauges and log₂-bucketed virtual-time
// histograms keyed by (layer, entity, name). A *Registry is attached via
// cluster.Config.Metrics and handed to every layer (fabric endpoints, the
// verbs registry, registration caches, the offload framework, the MPI
// library); each layer holds typed handles and bumps them as events happen.
//
// The design follows the trace.Log nil-safety discipline: a nil *Registry
// hands out nil handles, and every handle method is nil-safe, so a build
// without metrics pays nothing and — crucially — no method ever consumes
// virtual time, so enabling metrics cannot move a single simulated
// timestamp. Both properties are enforced bit-exactly against the fig13
// pinned timings (internal/bench).
//
// Snapshots export deterministically (keys sorted) as BENCH-compatible JSON
// and as Prometheus text format; see export.go.
package metrics

import (
	"math/bits"
	"sort"

	"repro/internal/sim"
)

// Key identifies one series: the layer that owns it ("fabric", "verbs",
// "regcache", "core", "mpi"), the entity within the layer (an endpoint,
// cache or process name; "all" for layer-wide aggregates) and the metric
// name (snake_case, with a unit suffix such as _ns where applicable).
//
// Tenant is an optional fourth dimension for multi-tenant simulations: the
// job the sample is attributed to. The empty string means "untenanted" and
// is what every legacy series carries — it sorts first and is omitted from
// exports, so single-job runs produce byte-identical output with or without
// the dimension existing.
type Key struct {
	Layer  string
	Entity string
	Name   string
	Tenant string
}

// less orders keys for deterministic export.
func (k Key) less(o Key) bool {
	if k.Layer != o.Layer {
		return k.Layer < o.Layer
	}
	if k.Entity != o.Entity {
		return k.Entity < o.Entity
	}
	if k.Name != o.Name {
		return k.Name < o.Name
	}
	return k.Tenant < o.Tenant
}

// Counter is a monotonically increasing int64. All methods are nil-safe; a
// nil handle (from a nil registry) discards everything.
type Counter struct {
	v int64
}

// Inc adds one; nil-safe.
func (c *Counter) Inc() {
	if c != nil {
		c.v++
	}
}

// Add adds n; nil-safe.
func (c *Counter) Add(n int64) {
	if c != nil {
		c.v += n
	}
}

// Value returns the current count; nil-safe.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v
}

// Gauge is a last-written float64 (queue depths, pool sizes). All methods
// are nil-safe.
//
// A gauge remembers which write kind was used (Set vs SetMax) so that
// Registry.Merge can reproduce serial semantics when per-job registries are
// combined: Set-gauges take the last merged writer's value, SetMax-gauges
// take the maximum. Each series should stick to one write kind.
type Gauge struct {
	v        float64
	wroteSet bool
	wroteMax bool
}

// Set records the current value; nil-safe.
func (g *Gauge) Set(v float64) {
	if g != nil {
		g.v = v
		g.wroteSet = true
	}
}

// SetMax raises the gauge to v if v is larger (high-water marks); nil-safe.
func (g *Gauge) SetMax(v float64) {
	if g != nil {
		g.wroteMax = true
		if v > g.v {
			g.v = v
		}
	}
}

// Value returns the last written value; nil-safe.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return g.v
}

// histBuckets is the number of log₂ buckets: bucket 0 holds zero-valued
// observations, bucket i (i ≥ 1) holds values in [2^(i-1), 2^i). 63 buckets
// cover the full non-negative sim.Time range.
const histBuckets = 64

// Histogram accumulates virtual-time durations in log₂ buckets. All
// methods are nil-safe. Negative observations are clamped to zero (they do
// not occur in practice; the clamp keeps bucket math total).
type Histogram struct {
	count   int64
	sum     sim.Time
	buckets [histBuckets]int64
}

// Observe records one duration; nil-safe.
func (h *Histogram) Observe(d sim.Time) {
	if h == nil {
		return
	}
	if d < 0 {
		d = 0
	}
	h.count++
	h.sum += d
	h.buckets[bits.Len64(uint64(d))]++
}

// Count returns the number of observations; nil-safe.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count
}

// Sum returns the total of all observations; nil-safe.
func (h *Histogram) Sum() sim.Time {
	if h == nil {
		return 0
	}
	return h.sum
}

// Registry owns every series of one simulation. The zero value is unusable;
// use NewRegistry. A nil *Registry is valid, hands out nil handles, and
// therefore disables the whole layer at zero cost (mirroring trace.Log).
//
// The simulation kernel is single-threaded, so plain maps and fields are
// race-free.
type Registry struct {
	counters map[Key]*Counter
	gauges   map[Key]*Gauge
	hists    map[Key]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[Key]*Counter),
		gauges:   make(map[Key]*Gauge),
		hists:    make(map[Key]*Histogram),
	}
}

// Enabled reports whether metrics are being recorded; nil-safe.
func (r *Registry) Enabled() bool { return r != nil }

// Counter returns (creating if needed) the counter for (layer, entity,
// name); nil-safe — a nil registry returns a nil handle. Series exist from
// first request, so zero-valued counters still export.
func (r *Registry) Counter(layer, entity, name string) *Counter {
	return r.CounterT(layer, entity, name, "")
}

// CounterT is Counter with a tenant label ("" = untenanted, identical to
// Counter); nil-safe.
func (r *Registry) CounterT(layer, entity, name, tenant string) *Counter {
	if r == nil {
		return nil
	}
	k := Key{Layer: layer, Entity: entity, Name: name, Tenant: tenant}
	c := r.counters[k]
	if c == nil {
		c = &Counter{}
		r.counters[k] = c
	}
	return c
}

// Gauge returns (creating if needed) the gauge for (layer, entity, name);
// nil-safe.
func (r *Registry) Gauge(layer, entity, name string) *Gauge {
	return r.GaugeT(layer, entity, name, "")
}

// GaugeT is Gauge with a tenant label ("" = untenanted); nil-safe.
func (r *Registry) GaugeT(layer, entity, name, tenant string) *Gauge {
	if r == nil {
		return nil
	}
	k := Key{Layer: layer, Entity: entity, Name: name, Tenant: tenant}
	g := r.gauges[k]
	if g == nil {
		g = &Gauge{}
		r.gauges[k] = g
	}
	return g
}

// MaxGauge returns the largest current value among every gauge named
// (layer, *, name) — any entity, any tenant — and whether at least one such
// gauge exists; nil-safe. Consumers that feed live load signals back into
// decisions (the feedback offload policy watches proxy queue-depth gauges)
// use it without having to know entity names. Map iteration order is
// irrelevant: max is order-independent, so reads stay deterministic.
func (r *Registry) MaxGauge(layer, name string) (float64, bool) {
	if r == nil {
		return 0, false
	}
	var max float64
	found := false
	for k, g := range r.gauges {
		if k.Layer != layer || k.Name != name {
			continue
		}
		if v := g.Value(); !found || v > max {
			max, found = v, true
		}
	}
	return max, found
}

// Histogram returns (creating if needed) the histogram for (layer, entity,
// name); nil-safe.
func (r *Registry) Histogram(layer, entity, name string) *Histogram {
	return r.HistogramT(layer, entity, name, "")
}

// HistogramT is Histogram with a tenant label ("" = untenanted); nil-safe.
func (r *Registry) HistogramT(layer, entity, name, tenant string) *Histogram {
	if r == nil {
		return nil
	}
	k := Key{Layer: layer, Entity: entity, Name: name, Tenant: tenant}
	h := r.hists[k]
	if h == nil {
		h = &Histogram{}
		r.hists[k] = h
	}
	return h
}

// Merge folds the series of src into r. It exists for the parallel sweep
// runner: each sweep job records into a private registry, and the runner
// merges them back in ascending sweep-index order, which reproduces the
// state a single shared registry would have reached serially:
//
//   - counters and histograms are additive, so merge order cannot matter;
//   - Set-gauges take the merging writer's value (last writer in merge
//     order == last writer in serial sweep order);
//   - SetMax-gauges take the maximum, which is order-independent.
//
// Series missing from r are created, preserving the "series exist from
// first request" export property. Merging a nil src is a no-op; r itself
// must be non-nil (merge targets are always live registries).
func (r *Registry) Merge(src *Registry) {
	if src == nil {
		return
	}
	for k, c := range src.counters {
		r.CounterT(k.Layer, k.Entity, k.Name, k.Tenant).Add(c.v)
	}
	for k, g := range src.gauges {
		dst := r.GaugeT(k.Layer, k.Entity, k.Name, k.Tenant)
		switch {
		case g.wroteSet:
			dst.Set(g.v)
		case g.wroteMax:
			dst.SetMax(g.v)
		}
	}
	for k, h := range src.hists {
		dst := r.HistogramT(k.Layer, k.Entity, k.Name, k.Tenant)
		dst.count += h.count
		dst.sum += h.sum
		for i, n := range h.buckets {
			dst.buckets[i] += n
		}
	}
}

// VisitCounters calls f for every counter series, in map order (callers
// needing determinism must be order-independent or sort); nil-safe. The
// telemetry recorder uses the Visit methods to scan live handles on its
// sampling hot path without allocating key slices.
func (r *Registry) VisitCounters(f func(Key, *Counter)) {
	if r == nil {
		return
	}
	for k, c := range r.counters {
		f(k, c)
	}
}

// VisitGauges calls f for every gauge series, in map order; nil-safe.
func (r *Registry) VisitGauges(f func(Key, *Gauge)) {
	if r == nil {
		return
	}
	for k, g := range r.gauges {
		f(k, g)
	}
}

// VisitHistograms calls f for every histogram series, in map order;
// nil-safe.
func (r *Registry) VisitHistograms(f func(Key, *Histogram)) {
	if r == nil {
		return
	}
	for k, h := range r.hists {
		f(k, h)
	}
}

// sortedKeys returns the map keys in deterministic export order.
func sortedKeys[V any](m map[Key]V) []Key {
	out := make([]Key, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].less(out[j]) })
	return out
}
