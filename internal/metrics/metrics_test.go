package metrics

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"repro/internal/sim"
)

// A nil registry and all handles it produces must be inert and safe.
func TestNilRegistryIsInert(t *testing.T) {
	var r *Registry
	if r.Enabled() {
		t.Fatal("nil registry reports enabled")
	}
	c := r.Counter("fabric", "ep", "msgs_tx")
	g := r.Gauge("core", "proxy0", "queue_depth")
	h := r.Histogram("verbs", "all", "reg_latency_ns")
	if c != nil || g != nil || h != nil {
		t.Fatal("nil registry handed out live handles")
	}
	c.Inc()
	c.Add(7)
	g.Set(3)
	g.SetMax(9)
	h.Observe(5 * sim.Microsecond)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Sum() != 0 {
		t.Fatal("nil handles accumulated state")
	}
	snap := r.Snapshot()
	if len(snap.Counters)+len(snap.Gauges)+len(snap.Histograms) != 0 {
		t.Fatalf("nil registry snapshot non-empty: %+v", snap)
	}
	if err := snap.Validate(); err != nil {
		t.Fatalf("empty snapshot invalid: %v", err)
	}
}

// Series are identity-cached: the same key returns the same handle.
func TestSeriesIdentity(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("fabric", "n0.host", "msgs_tx")
	b := r.Counter("fabric", "n0.host", "msgs_tx")
	if a != b {
		t.Fatal("same key produced distinct counters")
	}
	a.Inc()
	if b.Value() != 1 {
		t.Fatal("handles do not share state")
	}
	if r.Counter("fabric", "n0.host", "msgs_rx") == a {
		t.Fatal("distinct keys share a counter")
	}
}

// Histogram observations land in log2 buckets: bucket bounds are powers of
// two and the zero bucket is separate.
func TestHistogramBucketing(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("verbs", "all", "lat_ns")
	for _, d := range []sim.Time{0, 1, 1, 2, 3, 4, 1000, -5} {
		h.Observe(d)
	}
	if h.Count() != 8 {
		t.Fatalf("count = %d, want 8", h.Count())
	}
	if h.Sum() != 0+1+1+2+3+4+1000+0 {
		t.Fatalf("sum = %d", h.Sum())
	}
	hp := r.Snapshot().Histograms[0]
	want := []BucketPoint{
		{Lt: 1, Count: 2},    // the two zeros (0 and clamped -5)
		{Lt: 2, Count: 2},    // 1, 1
		{Lt: 4, Count: 2},    // 2, 3
		{Lt: 8, Count: 1},    // 4
		{Lt: 1024, Count: 1}, // 1000
	}
	if !reflect.DeepEqual(hp.Buckets, want) {
		t.Fatalf("buckets = %+v, want %+v", hp.Buckets, want)
	}
}

func sampleRegistry() *Registry {
	r := NewRegistry()
	r.Counter("fabric", "n0.host", "msgs_tx").Add(12)
	r.Counter("fabric", "n0.host", "bytes_tx").Add(4096)
	r.Counter("fabric", "n1.host", "msgs_discarded") // zero-valued, still exports
	r.Gauge("core", "proxy0", "queue_depth").Set(3)
	r.Gauge("core", "proxy0", "queue_depth_max").SetMax(7)
	hh := r.Histogram("verbs", "all", "reg_latency_ns")
	hh.Observe(2 * sim.Microsecond)
	hh.Observe(3 * sim.Microsecond)
	return r
}

// JSON round-trip: WriteJSON then ParseSnapshot reproduces the snapshot
// exactly, including zero-valued series and deterministic ordering.
func TestJSONRoundTrip(t *testing.T) {
	snap := sampleRegistry().Snapshot()
	var buf bytes.Buffer
	if err := snap.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ParseSnapshot(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(snap, back) {
		t.Fatalf("round trip diverged:\n%+v\n%+v", snap, back)
	}
	// Determinism: two snapshots of the same registry serialize identically.
	var buf2 bytes.Buffer
	if err := sampleRegistry().Snapshot().WriteJSON(&buf2); err != nil {
		t.Fatal(err)
	}
	if buf.String() != buf2.String() {
		t.Fatal("snapshot serialization is not deterministic")
	}
}

// Prometheus round-trip (structural): every series appears with the
// offload_<layer>_<name> naming, entity labels, and cumulative histogram
// buckets ending in +Inf.
func TestPrometheusExport(t *testing.T) {
	snap := sampleRegistry().Snapshot()
	var buf bytes.Buffer
	if err := snap.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		`# HELP offload_fabric_msgs_tx Simulated-cluster counter "msgs_tx" from layer "fabric".`,
		"# TYPE offload_fabric_msgs_tx counter",
		`offload_fabric_msgs_tx{entity="n0.host"} 12`,
		`offload_fabric_msgs_discarded{entity="n1.host"} 0`,
		`offload_core_queue_depth{entity="proxy0"} 3`,
		`offload_core_queue_depth_max{entity="proxy0"} 7`,
		"# TYPE offload_verbs_reg_latency_ns histogram",
		`offload_verbs_reg_latency_ns_bucket{entity="all",le="+Inf"} 2`,
		`offload_verbs_reg_latency_ns_sum{entity="all"} 5000`,
		`offload_verbs_reg_latency_ns_count{entity="all"} 2`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("prometheus output missing %q:\n%s", want, out)
		}
	}
	// One # HELP/# TYPE pair per metric name, even with several entities.
	if n := strings.Count(out, "# TYPE offload_fabric_msgs_tx "); n != 1 {
		t.Fatalf("TYPE header emitted %d times", n)
	}
	if n := strings.Count(out, "# HELP offload_fabric_msgs_tx "); n != 1 {
		t.Fatalf("HELP header emitted %d times", n)
	}
}

// Label-value escaping: the exposition format defines exactly three
// escapes (backslash, quote, newline). Everything else — tabs, non-ASCII —
// passes through raw; Go's %q would mangle both.
func TestPrometheusLabelEscaping(t *testing.T) {
	for in, want := range map[string]string{
		`plain`:      `"plain"`,
		`a\b`:        `"a\\b"`,
		`say "hi"`:   `"say \"hi\""`,
		"two\nlines": `"two\nlines"`,
		"tab\there":  "\"tab\there\"", // tab stays raw, NOT \t
		"nöde0":      "\"nöde0\"",     // non-ASCII stays raw, NOT \u00f6
		"\\\"\n":     `"\\\"\n"`,      // all three, adjacent
		`trailing\`:  `"trailing\\"`,
		"":           `""`,
	} {
		if got := promLabel(in); got != want {
			t.Errorf("promLabel(%q) = %s, want %s", in, got, want)
		}
	}
	// End to end: a hostile entity name survives into the exposition text
	// with valid escaping only.
	r := NewRegistry()
	r.Counter("fabric", "a\\b\"c\nd", "msgs_tx").Add(1)
	var buf bytes.Buffer
	if err := r.Snapshot().WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	want := `offload_fabric_msgs_tx{entity="a\\b\"c\nd"} 1`
	if !strings.Contains(buf.String(), want) {
		t.Fatalf("exposition missing %s:\n%s", want, buf.String())
	}
	if strings.Count(buf.String(), "\n") != 3 { // HELP + TYPE + series line
		t.Fatalf("raw newline leaked into exposition:\n%q", buf.String())
	}

	// Tenant label values take the same three escapes; a tenanted series
	// carries exactly one extra label and an untenanted one carries none.
	r2 := NewRegistry()
	r2.CounterT("fabric", "ep", "msgs_tx", "job\\A\"1\n").Add(2)
	r2.Counter("fabric", "ep", "msgs_tx").Add(1)
	buf.Reset()
	if err := r2.Snapshot().WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		`offload_fabric_msgs_tx{entity="ep"} 1`,
		`offload_fabric_msgs_tx{entity="ep",tenant="job\\A\"1\n"} 2`,
	} {
		if !strings.Contains(buf.String(), want) {
			t.Fatalf("tenant exposition missing %s:\n%s", want, buf.String())
		}
	}
	if strings.Count(buf.String(), "tenant=") != 1 {
		t.Fatalf("tenant label leaked onto untenanted series:\n%s", buf.String())
	}
}

// Golden ordering: the full Prometheus exposition of a fixed registry is
// byte-stable — series follow the snapshot's sorted key order (tenant is
// the last sort dimension, untenanted first), TYPE headers appear once,
// immediately before their first series.
func TestPrometheusGoldenOrdering(t *testing.T) {
	build := func() string {
		r := NewRegistry()
		r.Counter("verbs", "n1.host", "posts").Add(2)
		r.CounterT("verbs", "n0.host", "posts", "jobB").Add(7)
		r.Counter("verbs", "n0.host", "posts").Add(1)
		r.CounterT("verbs", "n0.host", "posts", "jobA").Add(6)
		r.Counter("core", "proxy0", "ctrl_msgs").Add(5)
		r.GaugeT("core", "proxy0", "queue_depth", "jobA").Set(2)
		r.Gauge("core", "proxy0", "queue_depth").Set(3)
		h := r.Histogram("verbs", "all", "reg_latency_ns")
		h.Observe(0)
		h.Observe(3)
		r.HistogramT("verbs", "all", "reg_latency_ns", "jobA").Observe(1)
		var buf bytes.Buffer
		if err := r.Snapshot().WritePrometheus(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	golden := `# HELP offload_core_ctrl_msgs Simulated-cluster counter "ctrl_msgs" from layer "core".
# TYPE offload_core_ctrl_msgs counter
offload_core_ctrl_msgs{entity="proxy0"} 5
# HELP offload_verbs_posts Simulated-cluster counter "posts" from layer "verbs".
# TYPE offload_verbs_posts counter
offload_verbs_posts{entity="n0.host"} 1
offload_verbs_posts{entity="n0.host",tenant="jobA"} 6
offload_verbs_posts{entity="n0.host",tenant="jobB"} 7
offload_verbs_posts{entity="n1.host"} 2
# HELP offload_core_queue_depth Simulated-cluster gauge "queue_depth" from layer "core".
# TYPE offload_core_queue_depth gauge
offload_core_queue_depth{entity="proxy0"} 3
offload_core_queue_depth{entity="proxy0",tenant="jobA"} 2
# HELP offload_verbs_reg_latency_ns Simulated-cluster histogram "reg_latency_ns" from layer "verbs".
# TYPE offload_verbs_reg_latency_ns histogram
offload_verbs_reg_latency_ns_bucket{entity="all",le="0"} 1
offload_verbs_reg_latency_ns_bucket{entity="all",le="3"} 2
offload_verbs_reg_latency_ns_bucket{entity="all",le="+Inf"} 2
offload_verbs_reg_latency_ns_sum{entity="all"} 3
offload_verbs_reg_latency_ns_count{entity="all"} 2
offload_verbs_reg_latency_ns_bucket{entity="all",tenant="jobA",le="1"} 1
offload_verbs_reg_latency_ns_bucket{entity="all",tenant="jobA",le="+Inf"} 1
offload_verbs_reg_latency_ns_sum{entity="all",tenant="jobA"} 1
offload_verbs_reg_latency_ns_count{entity="all",tenant="jobA"} 1
`
	got := build()
	if got != golden {
		t.Fatalf("exposition diverged from golden:\n--- got ---\n%s--- want ---\n%s", got, golden)
	}
	if again := build(); again != got {
		t.Fatal("exposition not deterministic across identical registries")
	}
}

// Untenanted registries must export byte-identically to the pre-tenant
// format: the tenant field is omitted from JSON and absent from the
// Prometheus label set, so checked-in BENCH files cannot drift.
func TestTenantOmittedFromLegacyExports(t *testing.T) {
	snap := sampleRegistry().Snapshot()
	var js bytes.Buffer
	if err := snap.WriteJSON(&js); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(js.String(), "tenant") {
		t.Fatalf("untenanted JSON mentions tenant:\n%s", js.String())
	}
	var prom bytes.Buffer
	if err := snap.WritePrometheus(&prom); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(prom.String(), "tenant") {
		t.Fatalf("untenanted exposition mentions tenant:\n%s", prom.String())
	}
}

// Validate rejects malformed snapshots.
func TestValidateRejectsMalformed(t *testing.T) {
	good := sampleRegistry().Snapshot()
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := good
	bad.Schema = "bogus/v0"
	if err := bad.Validate(); err == nil {
		t.Fatal("wrong schema accepted")
	}
	bad = good
	bad.Counters = append([]CounterPoint{}, good.Counters...)
	bad.Counters[0].Name = ""
	if err := bad.Validate(); err == nil {
		t.Fatal("empty key accepted")
	}
	bad = good
	bad.Histograms = []HistogramPoint{{Layer: "verbs", Entity: "all", Name: "x",
		Count: 5, Buckets: []BucketPoint{{Lt: 2, Count: 1}}}}
	if err := bad.Validate(); err == nil {
		t.Fatal("inconsistent histogram accepted")
	}
	if _, err := ParseSnapshot([]byte("{not json")); err == nil {
		t.Fatal("garbage accepted")
	}
}

// Snapshot helpers used by the bench harness.
func TestSnapshotHelpers(t *testing.T) {
	snap := sampleRegistry().Snapshot()
	if !snap.Has("fabric") || !snap.Has("core") || !snap.Has("verbs") {
		t.Fatal("Has() misses present layers")
	}
	if snap.Has("mpi") {
		t.Fatal("Has() reports absent layer")
	}
	if v := snap.CounterValue("fabric", "n0.host", "msgs_tx"); v != 12 {
		t.Fatalf("CounterValue = %d, want 12", v)
	}
	if v := snap.CounterValue("fabric", "nX", "msgs_tx"); v != 0 {
		t.Fatalf("absent CounterValue = %d, want 0", v)
	}
}
