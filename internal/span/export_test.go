package span

import (
	"bufio"
	"encoding/json"
	"strings"
	"testing"
)

func sampleCollector() *Collector {
	c := New(0)
	r := mk(c, 0, ClassRank, "rank0", "coll", "ialltoall", 0, 100)
	c.AttrInt(r, "size", 8192)
	e := mk(c, r, ClassProxy, "n0.dpu/proxy0", "core", "group_exec", 10, 90)
	c.AttrStr(e, "mech", "gvmi")
	w := mk(c, e, ClassHCA, "n0.dpu", "verbs", "rdma_write", 20, 60)
	mk(c, w, ClassWire, `n0.dpu->n1.host`, "fabric", "wire", 30, 55)
	c.StartAt(r, ClassRank, "rank0", "core", "open_op", 95) // stays open
	return c
}

// JSONL: one valid JSON object per line, creation order, open spans
// flagged, attrs preserved with types — and byte-identical across calls.
func TestWriteJSONL(t *testing.T) {
	c := sampleCollector()
	var b1, b2 strings.Builder
	if err := c.WriteJSONL(&b1); err != nil {
		t.Fatal(err)
	}
	if err := c.WriteJSONL(&b2); err != nil {
		t.Fatal(err)
	}
	if b1.String() != b2.String() {
		t.Fatal("JSONL output not deterministic")
	}
	sc := bufio.NewScanner(strings.NewReader(b1.String()))
	var lines []map[string]any
	for sc.Scan() {
		var m map[string]any
		if err := json.Unmarshal(sc.Bytes(), &m); err != nil {
			t.Fatalf("invalid JSON line %q: %v", sc.Text(), err)
		}
		lines = append(lines, m)
	}
	if len(lines) != c.Len() {
		t.Fatalf("%d lines for %d spans", len(lines), c.Len())
	}
	if lines[0]["id"].(float64) != 1 || lines[0]["layer"] != "coll" {
		t.Fatalf("line 0 = %v", lines[0])
	}
	attrs := lines[0]["attrs"].(map[string]any)
	if attrs["size"].(float64) != 8192 {
		t.Fatalf("root attrs = %v", attrs)
	}
	if lines[1]["attrs"].(map[string]any)["mech"] != "gvmi" {
		t.Fatalf("exec attrs = %v", lines[1]["attrs"])
	}
	last := lines[len(lines)-1]
	if last["open"] != true || last["end_ns"] != last["begin_ns"] {
		t.Fatalf("open span line = %v", last)
	}

	var nilC *Collector
	var nb strings.Builder
	if err := nilC.WriteJSONL(&nb); err != nil || nb.Len() != 0 {
		t.Errorf("nil WriteJSONL: err=%v out=%q", err, nb.String())
	}
}

// Chrome trace: the whole document is valid JSON; thread metadata names
// every entity; X events carry microsecond timestamps; cross-entity edges
// get s/f flow pairs and same-entity edges do not.
func TestWriteChromeTrace(t *testing.T) {
	c := sampleCollector()
	var b strings.Builder
	if err := c.WriteChromeTrace(&b); err != nil {
		t.Fatal(err)
	}
	var events []map[string]any
	if err := json.Unmarshal([]byte(b.String()), &events); err != nil {
		t.Fatalf("trace not valid JSON: %v\n%s", err, b.String())
	}
	byPh := map[string][]map[string]any{}
	for _, e := range events {
		ph := e["ph"].(string)
		byPh[ph] = append(byPh[ph], e)
	}
	if len(byPh["M"]) != 4 { // rank0, n0.dpu/proxy0, n0.dpu, n0.dpu->n1.host
		t.Fatalf("%d thread_name events, want 4", len(byPh["M"]))
	}
	if len(byPh["X"]) != c.Len() {
		t.Fatalf("%d X events for %d spans", len(byPh["X"]), c.Len())
	}
	// Root: ts 0, dur 100ns = 0.1us.
	root := byPh["X"][0]
	if root["dur"].(float64) != 0.1 {
		t.Fatalf("root dur = %v us, want 0.1", root["dur"])
	}
	// Four parent edges; the open rank0 child shares the root's entity, so
	// three cross-entity flow pairs.
	if len(byPh["s"]) != 3 || len(byPh["f"]) != 3 {
		t.Fatalf("flow events s=%d f=%d, want 3/3", len(byPh["s"]), len(byPh["f"]))
	}

	var nilC *Collector
	var nb strings.Builder
	if err := nilC.WriteChromeTrace(&nb); err != nil {
		t.Fatal(err)
	}
	var empty []any
	if err := json.Unmarshal([]byte(nb.String()), &empty); err != nil || len(empty) != 0 {
		t.Errorf("nil trace = %q", nb.String())
	}
}

// Folded stacks: self-time per stack, root-first frames, sorted lines,
// zero-self-time spans omitted.
func TestWriteFolded(t *testing.T) {
	c := sampleCollector()
	var b strings.Builder
	if err := c.WriteFolded(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	want := map[string]string{
		"coll.ialltoall(rank0) 20":                                                                                      "root self-time 100-80",
		"coll.ialltoall(rank0);core.group_exec(n0.dpu/proxy0) 40":                                                       "exec self-time 80-40",
		"coll.ialltoall(rank0);core.group_exec(n0.dpu/proxy0);verbs.rdma_write(n0.dpu) 15":                              "write self-time 40-25",
		"coll.ialltoall(rank0);core.group_exec(n0.dpu/proxy0);verbs.rdma_write(n0.dpu);fabric.wire(n0.dpu->n1.host) 25": "wire leaf 25",
	}
	if len(lines) != len(want) {
		t.Fatalf("%d folded lines, want %d:\n%s", len(lines), len(want), out)
	}
	for _, ln := range lines {
		if _, ok := want[ln]; !ok {
			t.Errorf("unexpected folded line %q", ln)
		}
	}
	if !strings.HasPrefix(lines[0], "coll.ialltoall(rank0) ") {
		t.Errorf("lines not sorted: first = %q", lines[0])
	}

	var nilC *Collector
	var nb strings.Builder
	if err := nilC.WriteFolded(&nb); err != nil || nb.Len() != 0 {
		t.Errorf("nil WriteFolded: err=%v out=%q", err, nb.String())
	}
}
