package span

import (
	"testing"

	"repro/internal/sim"
)

// The zero-alloc contract of span recording: a collector recycled with
// Reset reuses its span slots and their attribute arrays, so steady-state
// begin/attr/end recording allocates nothing — the "span records" leg of
// the pooled hot path.
func TestResetRecordingSteadyStateAllocFree(t *testing.T) {
	c := New(0)
	record := func() {
		for i := 0; i < 16; i++ {
			id := c.StartAt(0, ClassRank, "rank0", "mpi", "ialltoall", sim.Time(i))
			c.AttrInt(id, "size", int64(i))
			c.AttrStr(id, "path", "gvmi")
			ch := c.StartAt(id, ClassWire, "n0->n1", "fabric", "wire", sim.Time(i))
			c.AttrInt(ch, "size", int64(i))
			c.EndAt(ch, sim.Time(i+1))
			c.EndAt(id, sim.Time(i+2))
		}
	}
	record() // warm the span and attr storage
	allocs := testing.AllocsPerRun(100, func() {
		c.Reset()
		record()
	})
	if allocs > 0 {
		t.Fatalf("Reset+record allocated %.2f objects per cycle in steady state, want 0", allocs)
	}
	if c.Len() != 32 {
		t.Fatalf("collector holds %d spans after final cycle, want 32", c.Len())
	}
}

// Reset must forget content, not just truncate: recycled slots may not leak
// the previous cycle's attributes or end times.
func TestResetScrubsRecycledSlots(t *testing.T) {
	c := New(0)
	id := c.StartAt(0, ClassProxy, "proxy0", "core", "group_exec", 5)
	c.AttrInt(id, "entries", 7)
	c.EndAt(id, 9)
	c.Reset()
	if c.Len() != 0 || c.Dropped() != 0 {
		t.Fatalf("Reset left %d spans, %d dropped", c.Len(), c.Dropped())
	}
	id2 := c.StartAt(0, ClassRank, "rank1", "mpi", "isend", 20)
	s, ok := c.Get(id2)
	if !ok {
		t.Fatal("span not recorded after Reset")
	}
	if s.Ended || len(s.Attrs) != 0 || s.Entity != "rank1" || s.Begin != 20 {
		t.Fatalf("recycled slot leaked state: %+v", s)
	}
}

// A nil collector must accept Reset like every other method.
func TestResetNilCollector(t *testing.T) {
	var c *Collector
	c.Reset() // must not panic
}
