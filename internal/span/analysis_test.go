package span

import (
	"strings"
	"testing"

	"repro/internal/sim"
)

// build constructs a span with explicit times: a closed interval [b,e).
func mk(c *Collector, parent ID, class Class, entity, layer, name string, b, e sim.Time) ID {
	id := c.StartAt(parent, class, entity, layer, name, b)
	c.EndAt(id, e)
	return id
}

func pathSum(segs []Segment) sim.Time {
	var sum sim.Time
	for _, g := range segs {
		sum += g.Dur()
	}
	return sum
}

// checkTiling asserts the segments are chronological, contiguous, and tile
// [b,e) exactly.
func checkTiling(t *testing.T, segs []Segment, b, e sim.Time) {
	t.Helper()
	cursor := b
	for i, g := range segs {
		if g.From != cursor {
			t.Fatalf("segment %d starts at %d, want %d (segs=%v)", i, g.From, cursor, segs)
		}
		if g.To < g.From {
			t.Fatalf("segment %d negative [%d,%d)", i, g.From, g.To)
		}
		cursor = g.To
	}
	if cursor != e {
		t.Fatalf("path ends at %d, want %d (segs=%v)", cursor, e, segs)
	}
}

// A leaf root's critical path is one self-time segment covering its window.
func TestCriticalPathLeaf(t *testing.T) {
	c := New(0)
	r := mk(c, 0, ClassRank, "rank0", "mpi", "isend", 10, 40)
	segs := c.CriticalPath(r)
	if len(segs) != 1 || segs[0].Span != r || segs[0].From != 10 || segs[0].To != 40 {
		t.Fatalf("segs = %v", segs)
	}
}

// Sequential children with gaps: the gaps become parent self-time, and the
// whole path tiles the root window exactly.
func TestCriticalPathGapsAreSelfTime(t *testing.T) {
	c := New(0)
	r := mk(c, 0, ClassRank, "rank0", "coll", "ialltoall", 0, 100)
	a := mk(c, r, ClassProxy, "proxy0", "core", "group_exec", 10, 40)
	b := mk(c, r, ClassHCA, "n0.hca", "verbs", "rdma_write", 60, 90)
	segs := c.CriticalPath(r)
	checkTiling(t, segs, 0, 100)
	if pathSum(segs) != 100 {
		t.Fatalf("sum = %d, want 100", pathSum(segs))
	}
	// Expected tiling: r[0,10) a[10,40) r[40,60) b[60,90) r[90,100).
	want := []Segment{
		{r, 0, 10}, {a, 10, 40}, {r, 40, 60}, {b, 60, 90}, {r, 90, 100},
	}
	if len(segs) != len(want) {
		t.Fatalf("segs = %v, want %v", segs, want)
	}
	for i := range want {
		if segs[i] != want[i] {
			t.Fatalf("segment %d = %v, want %v", i, segs[i], want[i])
		}
	}
}

// Overlapping children: the backward walk follows the child with the
// latest end, handing the earlier window to the other — no time is
// double-counted and the sum is still exact.
func TestCriticalPathOverlappingChildren(t *testing.T) {
	c := New(0)
	r := mk(c, 0, ClassRank, "rank0", "coll", "ialltoall", 0, 100)
	a := mk(c, r, ClassProxy, "proxy0", "core", "group_exec", 0, 70)
	b := mk(c, r, ClassProxy, "proxy1", "core", "group_exec", 50, 100)
	segs := c.CriticalPath(r)
	checkTiling(t, segs, 0, 100)
	// b owns its full window [50,100); a is clamped to [0,50).
	want := []Segment{{a, 0, 50}, {b, 50, 100}}
	for i := range want {
		if segs[i] != want[i] {
			t.Fatalf("segment %d = %v, want %v", i, segs[i], want[i])
		}
	}
}

// Deep recursion: the path descends through grandchildren, attributing the
// deepest covering span at every instant.
func TestCriticalPathDeepTree(t *testing.T) {
	c := New(0)
	r := mk(c, 0, ClassRank, "rank0", "coll", "ialltoall", 0, 100)
	exec := mk(c, r, ClassProxy, "proxy0", "core", "group_exec", 5, 95)
	wr := mk(c, exec, ClassHCA, "n0.hca", "verbs", "rdma_write", 20, 60)
	wire := mk(c, wr, ClassWire, "n0->n1", "fabric", "wire", 30, 55)
	segs := c.CriticalPath(r)
	checkTiling(t, segs, 0, 100)
	want := []Segment{
		{r, 0, 5}, {exec, 5, 20}, {wr, 20, 30}, {wire, 30, 55},
		{wr, 55, 60}, {exec, 60, 95}, {r, 95, 100},
	}
	if len(segs) != len(want) {
		t.Fatalf("segs = %v, want %v", segs, want)
	}
	for i := range want {
		if segs[i] != want[i] {
			t.Fatalf("segment %d = %v, want %v", i, segs[i], want[i])
		}
	}
}

// Open (un-ended) children are excluded: their window falls back to the
// parent's self-time rather than poisoning the analysis.
func TestCriticalPathSkipsOpenSpans(t *testing.T) {
	c := New(0)
	r := mk(c, 0, ClassRank, "rank0", "coll", "ialltoall", 0, 50)
	c.StartAt(r, ClassProxy, "proxy0", "core", "group_exec", 10) // never ended
	segs := c.CriticalPath(r)
	if len(segs) != 1 || segs[0].Span != r {
		t.Fatalf("segs = %v, want single root self-segment", segs)
	}
	// An open root has no path at all.
	open := c.StartAt(0, ClassRank, "rank1", "mpi", "irecv", 0)
	if c.CriticalPath(open) != nil {
		t.Error("open root produced a path")
	}
	if c.CriticalPath(999) != nil {
		t.Error("unknown root produced a path")
	}
}

// A child extending past its parent's end is clamped to the parent window;
// the tiling invariant holds regardless.
func TestCriticalPathClampsChildOverhang(t *testing.T) {
	c := New(0)
	r := mk(c, 0, ClassRank, "rank0", "mpi", "isend", 10, 50)
	a := mk(c, r, ClassHCA, "n0.hca", "verbs", "rdma_write", 40, 80)
	segs := c.CriticalPath(r)
	checkTiling(t, segs, 10, 50)
	want := []Segment{{r, 10, 40}, {a, 40, 50}}
	for i := range want {
		if segs[i] != want[i] {
			t.Fatalf("segment %d = %v, want %v", i, segs[i], want[i])
		}
	}
}

// Zero-duration roots tile trivially: an empty path sums to the zero
// latency.
func TestCriticalPathZeroDurationRoot(t *testing.T) {
	c := New(0)
	r := mk(c, 0, ClassRank, "rank0", "mpi", "isend", 7, 7)
	if segs := c.CriticalPath(r); len(segs) != 0 {
		t.Fatalf("zero-duration root produced segments: %v", segs)
	}
}

func TestSelfTimes(t *testing.T) {
	c := New(0)
	r := mk(c, 0, ClassRank, "rank0", "coll", "ialltoall", 0, 100)
	a := mk(c, r, ClassProxy, "proxy0", "core", "group_exec", 10, 40)
	st := SelfTimes(c.CriticalPath(r))
	if st[r] != 70 || st[a] != 30 {
		t.Fatalf("SelfTimes = %v, want root 70 / child 30", st)
	}
}

// Attribution buckets path time by (layer, class, name), sorted by
// descending time then key — and sums to the total root latency.
func TestAttributionBucketsAndOrder(t *testing.T) {
	c := New(0)
	r1 := mk(c, 0, ClassRank, "rank0", "coll", "ialltoall", 0, 100)
	mk(c, r1, ClassProxy, "proxy0", "core", "group_exec", 0, 60)
	r2 := mk(c, 0, ClassRank, "rank1", "coll", "ialltoall", 0, 100)
	mk(c, r2, ClassProxy, "proxy1", "core", "group_exec", 0, 60)
	rows := c.Attribution([]ID{r1, r2})
	if len(rows) != 2 {
		t.Fatalf("rows = %+v, want 2 buckets", rows)
	}
	if rows[0].Name != "group_exec" || rows[0].Time != 120 || rows[0].Segments != 2 {
		t.Fatalf("row 0 = %+v", rows[0])
	}
	if rows[1].Name != "ialltoall" || rows[1].Time != 80 {
		t.Fatalf("row 1 = %+v", rows[1])
	}
	var sum sim.Time
	for _, r := range rows {
		sum += r.Time
	}
	if sum != 200 {
		t.Fatalf("attribution sums to %d, want 200", sum)
	}
	tbl := FormatAttribution(rows, 200)
	for _, want := range []string{"group_exec", "ialltoall", "total", "60.00%", "40.00%"} {
		if !strings.Contains(tbl, want) {
			t.Errorf("table missing %q:\n%s", want, tbl)
		}
	}
	// total=0 sums the rows instead.
	if !strings.Contains(FormatAttribution(rows, 0), "200") {
		t.Error("FormatAttribution(0) did not sum rows")
	}
}

func TestFormatPath(t *testing.T) {
	c := New(0)
	r := mk(c, 0, ClassRank, "rank0", "coll", "ialltoall", 0, 100)
	mk(c, r, ClassProxy, "proxy0", "core", "group_exec", 10, 40)
	out := c.FormatPath(r)
	for _, want := range []string{"rank0 coll/ialltoall", "core/group_exec", "*"} {
		if !strings.Contains(out, want) {
			t.Errorf("FormatPath missing %q:\n%s", want, out)
		}
	}
	if c.FormatPath(999) != "" {
		t.Error("FormatPath of unknown root not empty")
	}
}
