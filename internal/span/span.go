// Package span is the causal tracing layer: a tree of virtual-time spans
// connecting each application-level operation (an MPI Isend, a collective
// call) to the core proxy/group work, verbs registrations and RDMA
// operations, and fabric injection + wire flights it spawned. Where
// internal/trace answers "what happened when" and internal/metrics answers
// "how much in total", spans answer "why did THIS operation take THIS
// long" — the critical-path and attribution analyses in analysis.go turn a
// span tree into a per-layer latency breakdown.
//
// The package follows the same zero-overhead discipline as
// internal/metrics: a nil *Collector is fully usable (every method is a
// nil-safe no-op, Start returns the zero ID), and no method ever consumes
// virtual time — the collector only reads sim.Clock, it never schedules
// events or advances processes. Attaching a live collector must not change
// any measured timing; the bench guards pin this bit-exactly against the
// fig13 baseline.
package span

import "repro/internal/sim"

// ID names one span. The zero ID means "no span": it is what a nil or full
// collector hands out, what un-instrumented context fields carry, and a
// valid parent for roots. Every operation on ID 0 is a no-op.
type ID int64

// Class is the entity class that owns a span's time — the paper's four
// processors of interest.
type Class uint8

const (
	// ClassNone is the zero class (unset).
	ClassNone Class = iota
	// ClassRank is a host process (CPU time on the host).
	ClassRank
	// ClassProxy is a DPU proxy process (ARM time on the BlueField).
	ClassProxy
	// ClassHCA is a NIC: posting overhead, injection serialization, DMA.
	ClassHCA
	// ClassWire is the fabric link: time in flight between two ports.
	ClassWire
)

// String returns the lowercase class name used in exports.
func (c Class) String() string {
	switch c {
	case ClassRank:
		return "rank"
	case ClassProxy:
		return "proxy"
	case ClassHCA:
		return "hca"
	case ClassWire:
		return "wire"
	}
	return "none"
}

// Attr is one typed key/value attribute attached to a span. Exactly one of
// Str/Int is meaningful, selected by IsInt.
type Attr struct {
	Key   string
	Str   string
	Int   int64
	IsInt bool
}

// Span is one recorded interval. Begin/End are virtual times; End is only
// meaningful when Ended is true (a span that was never ended — e.g. an
// operation still in flight when the run stopped — stays open and is
// excluded from path analysis).
type Span struct {
	ID     ID
	Parent ID
	Class  Class
	Entity string // owning instance: "rank3", "proxy1", "n0.dpu", "n0.dpu->n1.host"
	Layer  string // originating layer: "mpi", "coll", "core", "verbs", "fabric"
	Name   string // operation: "ialltoall", "group_exec", "rdma_write", "wire", ...
	Begin  sim.Time
	End    sim.Time
	Ended  bool
	Attrs  []Attr
}

// Dur returns the span's duration (0 for open spans).
func (s *Span) Dur() sim.Time {
	if !s.Ended {
		return 0
	}
	return s.End - s.Begin
}

// Collector records spans. Spans are stored in creation order (which is
// deterministic under the simulation's deterministic scheduling), indexed
// by ID = slice index + 1. The simulation is single-threaded, so no
// locking is needed.
//
// A nil Collector is inert: Enabled reports false, Start returns 0, and
// every other method returns immediately.
type Collector struct {
	clock   sim.Clock
	limit   int // max recorded spans; 0 = unbounded
	spans   []Span
	dropped int64
}

// New returns an empty collector. limit bounds the number of recorded
// spans (0 = unbounded); once full, Start counts the drop and returns 0,
// so the subtree rooted at a dropped span simply isn't recorded.
func New(limit int) *Collector { return &Collector{limit: limit} }

// Enabled reports whether spans are being collected (false for nil).
func (c *Collector) Enabled() bool { return c != nil }

// AttachClock binds the virtual clock used by Start/End. cluster.New calls
// this with the kernel; until then (or on a nil collector) the convenience
// Start/End record time 0.
func (c *Collector) AttachClock(clk sim.Clock) {
	if c == nil {
		return
	}
	c.clock = clk
}

func (c *Collector) now() sim.Time {
	if c == nil || c.clock == nil {
		return 0
	}
	return c.clock.Now()
}

// StartAt opens a span beginning at the explicit virtual time at and
// returns its ID (0 when the collector is nil or full).
func (c *Collector) StartAt(parent ID, class Class, entity, layer, name string, at sim.Time) ID {
	if c == nil {
		return 0
	}
	if c.limit > 0 && len(c.spans) >= c.limit {
		c.dropped++
		return 0
	}
	id := ID(len(c.spans) + 1)
	if n := len(c.spans); n < cap(c.spans) {
		// Reuse a slot recycled by Reset: keep its Attrs backing array so
		// steady-state recording (begin/end/attr) allocates nothing, like
		// the kernel's event arena.
		c.spans = c.spans[:n+1]
		s := &c.spans[n]
		attrs := s.Attrs[:0]
		*s = Span{
			ID: id, Parent: parent, Class: class,
			Entity: entity, Layer: layer, Name: name,
			Begin: at, Attrs: attrs,
		}
	} else {
		c.spans = append(c.spans, Span{
			ID: id, Parent: parent, Class: class,
			Entity: entity, Layer: layer, Name: name,
			Begin: at,
		})
	}
	return id
}

// Reset forgets every recorded span and drop count while keeping the span
// and attribute storage for reuse, so a collector recycled across
// measurement iterations records at 0 allocs/op once warm. Outstanding IDs
// from before the Reset must not be used afterwards.
func (c *Collector) Reset() {
	if c == nil {
		return
	}
	c.spans = c.spans[:0]
	c.dropped = 0
}

// Start opens a span beginning now (per the attached clock).
func (c *Collector) Start(parent ID, class Class, entity, layer, name string) ID {
	if c == nil {
		return 0
	}
	return c.StartAt(parent, class, entity, layer, name, c.now())
}

// EndAt closes span id at the explicit virtual time at. The first End
// wins: closing an already-ended span (or ID 0) is a no-op, which makes
// completion paths with multiple observers (Wait vs Test, FIN vs failover
// ack) safe to instrument independently.
func (c *Collector) EndAt(id ID, at sim.Time) {
	if c == nil || id <= 0 || int(id) > len(c.spans) {
		return
	}
	s := &c.spans[id-1]
	if s.Ended {
		return
	}
	s.End = at
	s.Ended = true
}

// End closes span id now (per the attached clock).
func (c *Collector) End(id ID) {
	if c == nil {
		return
	}
	c.EndAt(id, c.now())
}

// AttrInt attaches an integer attribute to span id.
func (c *Collector) AttrInt(id ID, key string, v int64) {
	if c == nil || id <= 0 || int(id) > len(c.spans) {
		return
	}
	s := &c.spans[id-1]
	s.Attrs = append(s.Attrs, Attr{Key: key, Int: v, IsInt: true})
}

// AttrStr attaches a string attribute to span id.
func (c *Collector) AttrStr(id ID, key, v string) {
	if c == nil || id <= 0 || int(id) > len(c.spans) {
		return
	}
	s := &c.spans[id-1]
	s.Attrs = append(s.Attrs, Attr{Key: key, Str: v})
}

// Len reports the number of recorded spans.
func (c *Collector) Len() int {
	if c == nil {
		return 0
	}
	return len(c.spans)
}

// Dropped reports how many Start calls were refused by the limit.
func (c *Collector) Dropped() int64 {
	if c == nil {
		return 0
	}
	return c.dropped
}

// Get returns span id by value (ok=false for 0, out of range, or nil).
func (c *Collector) Get(id ID) (Span, bool) {
	if c == nil || id <= 0 || int(id) > len(c.spans) {
		return Span{}, false
	}
	return c.spans[id-1], true
}

// Spans returns the recorded spans in creation order. The slice is the
// collector's backing store — callers must not modify it.
func (c *Collector) Spans() []Span {
	if c == nil {
		return nil
	}
	return c.spans
}

// Roots returns the IDs of all spans with no parent, in creation order.
func (c *Collector) Roots() []ID {
	if c == nil {
		return nil
	}
	var ids []ID
	for i := range c.spans {
		if c.spans[i].Parent == 0 {
			ids = append(ids, c.spans[i].ID)
		}
	}
	return ids
}

// RootsNamed returns root spans filtered by layer and name (either may be
// "" for any), in creation order. Bench helpers use this to pick out the
// measured collective roots.
func (c *Collector) RootsNamed(layer, name string) []ID {
	if c == nil {
		return nil
	}
	var ids []ID
	for i := range c.spans {
		s := &c.spans[i]
		if s.Parent != 0 {
			continue
		}
		if layer != "" && s.Layer != layer {
			continue
		}
		if name != "" && s.Name != name {
			continue
		}
		ids = append(ids, s.ID)
	}
	return ids
}
