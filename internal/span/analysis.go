package span

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/sim"
)

// Segment is one slice of a root span's critical path: between From and To,
// span Span (possibly a deep descendant of the root) was the deepest
// operation the root's completion was waiting on. Segments returned by
// CriticalPath are chronological, non-overlapping, and tile the root's
// [Begin, End] window exactly — their durations sum to the root's latency
// by construction.
type Segment struct {
	Span ID
	From sim.Time
	To   sim.Time
}

// Dur returns the segment length.
func (g Segment) Dur() sim.Time { return g.To - g.From }

// childIndex maps parent ID -> child indices into c.spans, children in
// creation order (deterministic).
func (c *Collector) childIndex() map[ID][]int {
	idx := make(map[ID][]int)
	for i := range c.spans {
		p := c.spans[i].Parent
		if p != 0 {
			idx[p] = append(idx[p], i)
		}
	}
	return idx
}

// CriticalPath extracts the critical path of root: the chain of descendant
// spans that the root's end-to-end latency decomposes into. The walk is
// backward from the root's end — at every point the path follows the child
// whose (window-clamped) end is latest, recursing into it over the window
// it owns; gaps no child covers are the parent's self-time. Open
// (un-ended) spans are skipped. Returns nil if root is unknown or open.
func (c *Collector) CriticalPath(root ID) []Segment {
	if c == nil {
		return nil
	}
	return c.criticalPath(root, c.childIndex())
}

// criticalPath is CriticalPath against a prebuilt child index, so bulk
// callers (Attribution) pay the O(spans) index build once, not per root.
func (c *Collector) criticalPath(root ID, idx map[ID][]int) []Segment {
	r, ok := c.Get(root)
	if !ok || !r.Ended {
		return nil
	}
	var rev []Segment // built backward, reversed before returning
	c.walk(root, r.Begin, r.End, idx, &rev)
	out := make([]Segment, len(rev))
	for i := range rev {
		out[i] = rev[len(rev)-1-i]
	}
	return out
}

// walk attributes the window [ws, we) of span id, appending segments in
// reverse chronological order. Invariant: the segments appended for a call
// tile [ws, we) exactly.
func (c *Collector) walk(id ID, ws, we sim.Time, idx map[ID][]int, out *[]Segment) {
	if we <= ws {
		return
	}
	kids := idx[id]
	used := make([]bool, len(kids))
	cursor := we
	for cursor > ws {
		// Pick the unused ended child whose clamped end is latest; ties go
		// to the later Begin (the tighter span), then to the later
		// creation order — all deterministic.
		best := -1
		var bestEnd, bestBegin sim.Time
		for j, ki := range kids {
			if used[j] {
				continue
			}
			k := &c.spans[ki]
			if !k.Ended || k.Begin >= cursor {
				continue
			}
			e := k.End
			if e > cursor {
				e = cursor
			}
			b := k.Begin
			if b < ws {
				b = ws
			}
			if e <= b {
				continue
			}
			if best < 0 || e > bestEnd || (e == bestEnd && b > bestBegin) ||
				(e == bestEnd && b == bestBegin && ki > kids[best]) {
				best, bestEnd, bestBegin = j, e, b
			}
		}
		if best < 0 {
			// No child covers (ws, cursor): all self-time.
			*out = append(*out, Segment{Span: id, From: ws, To: cursor})
			return
		}
		used[best] = true
		if bestEnd < cursor {
			// Gap between the chosen child's end and the cursor: self-time.
			*out = append(*out, Segment{Span: id, From: bestEnd, To: cursor})
		}
		c.walk(c.spans[kids[best]].ID, bestBegin, bestEnd, idx, out)
		cursor = bestBegin
	}
}

// SelfTimes aggregates critical-path segments per span: the returned map
// gives each span's self-time on the path (time attributed to it rather
// than to a descendant).
func SelfTimes(segs []Segment) map[ID]sim.Time {
	m := make(map[ID]sim.Time)
	for _, g := range segs {
		m[g.Span] += g.Dur()
	}
	return m
}

// AttribKey buckets critical-path time for the attribution table.
type AttribKey struct {
	Layer string
	Class Class
	Name  string
}

// AttribRow is one row of the latency-attribution table.
type AttribRow struct {
	AttribKey
	Time     sim.Time // total critical-path time attributed to this bucket
	Segments int      // number of path segments contributing
}

// Attribution extracts the critical path of every given root and
// aggregates segment time by (layer, class, name). Rows are sorted by
// descending time, then by key — deterministic for a deterministic run.
func (c *Collector) Attribution(roots []ID) []AttribRow {
	if c == nil {
		return nil
	}
	acc := make(map[AttribKey]*AttribRow)
	idx := c.childIndex()
	for _, root := range roots {
		for _, g := range c.criticalPath(root, idx) {
			s, ok := c.Get(g.Span)
			if !ok {
				continue
			}
			k := AttribKey{Layer: s.Layer, Class: s.Class, Name: s.Name}
			row := acc[k]
			if row == nil {
				row = &AttribRow{AttribKey: k}
				acc[k] = row
			}
			row.Time += g.Dur()
			row.Segments++
		}
	}
	rows := make([]AttribRow, 0, len(acc))
	for _, r := range acc {
		rows = append(rows, *r)
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].Time != rows[j].Time {
			return rows[i].Time > rows[j].Time
		}
		if rows[i].Layer != rows[j].Layer {
			return rows[i].Layer < rows[j].Layer
		}
		if rows[i].Class != rows[j].Class {
			return rows[i].Class < rows[j].Class
		}
		return rows[i].Name < rows[j].Name
	})
	return rows
}

// FormatAttribution renders the attribution table. total is the
// denominator for the percentage column (pass the summed root latencies;
// 0 sums the rows instead).
func FormatAttribution(rows []AttribRow, total sim.Time) string {
	if total == 0 {
		for _, r := range rows {
			total += r.Time
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%-8s %-7s %-16s %14s %8s %6s\n",
		"layer", "class", "name", "time", "pct", "segs")
	for _, r := range rows {
		pct := 0.0
		if total > 0 {
			pct = 100 * float64(r.Time) / float64(total)
		}
		fmt.Fprintf(&b, "%-8s %-7s %-16s %14s %7.2f%% %6d\n",
			r.Layer, r.Class, r.Name, r.Time, pct, r.Segments)
	}
	fmt.Fprintf(&b, "%-8s %-7s %-16s %14s\n", "total", "", "", total)
	return b.String()
}

// FormatPath renders one root's critical path, one line per segment, with
// the segment's span identified by entity/layer/name. Used by the
// offloadbench critical-path subcommand.
func (c *Collector) FormatPath(root ID) string {
	r, ok := c.Get(root)
	if !ok {
		return ""
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s %s/%s [%s, %s] latency %s\n",
		r.Entity, r.Layer, r.Name, r.Begin, r.End, r.End-r.Begin)
	for _, g := range c.CriticalPath(root) {
		s, _ := c.Get(g.Span)
		marker := " "
		if g.Span == root {
			marker = "*" // root self-time
		}
		fmt.Fprintf(&b, "  %s %12s  %-6s %-14s %s\n",
			marker, g.Dur(), s.Class, s.Entity, s.Layer+"/"+s.Name)
	}
	return b.String()
}
