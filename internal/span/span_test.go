package span

import (
	"testing"

	"repro/internal/sim"
)

// fakeClock satisfies sim.Clock without a kernel.
type fakeClock struct{ t sim.Time }

func (f *fakeClock) Now() sim.Time { return f.t }

// A nil collector is fully inert: every method is callable and returns
// zero values, and Start hands out the zero ID that all other methods
// accept as a no-op.
func TestNilCollectorIsInert(t *testing.T) {
	var c *Collector
	if c.Enabled() {
		t.Error("nil collector reports Enabled")
	}
	c.AttachClock(&fakeClock{})
	id := c.Start(0, ClassRank, "rank0", "mpi", "isend")
	if id != 0 {
		t.Fatalf("nil Start returned %d, want 0", id)
	}
	if got := c.StartAt(0, ClassRank, "rank0", "mpi", "isend", 5); got != 0 {
		t.Fatalf("nil StartAt returned %d, want 0", got)
	}
	c.End(id)
	c.EndAt(id, 10)
	c.AttrInt(id, "size", 8)
	c.AttrStr(id, "mech", "gvmi")
	if c.Len() != 0 || c.Dropped() != 0 {
		t.Error("nil collector has non-zero Len/Dropped")
	}
	if _, ok := c.Get(1); ok {
		t.Error("nil Get reported ok")
	}
	if c.Spans() != nil || c.Roots() != nil || c.RootsNamed("mpi", "isend") != nil {
		t.Error("nil collector returned non-nil slices")
	}
	if c.CriticalPath(1) != nil || c.Attribution([]ID{1}) != nil {
		t.Error("nil analysis returned non-nil")
	}
}

// Operations on ID 0 (what a nil or full collector hands out) never touch
// recorded spans.
func TestZeroIDIsNoOp(t *testing.T) {
	c := New(0)
	id := c.StartAt(0, ClassRank, "rank0", "mpi", "isend", 1)
	c.EndAt(0, 9)
	c.AttrInt(0, "k", 1)
	c.AttrStr(0, "k", "v")
	s, ok := c.Get(id)
	if !ok || s.Ended || len(s.Attrs) != 0 {
		t.Fatalf("ID-0 ops leaked onto span: %+v", s)
	}
	if _, ok := c.Get(0); ok {
		t.Error("Get(0) reported ok")
	}
}

// The limit bounds recorded spans exactly: the limit-th Start succeeds, the
// next is dropped and returns 0, and Dropped counts each refusal.
func TestLimitExactBoundary(t *testing.T) {
	c := New(2)
	a := c.StartAt(0, ClassRank, "r", "l", "a", 0)
	b := c.StartAt(0, ClassRank, "r", "l", "b", 1)
	if a != 1 || b != 2 {
		t.Fatalf("ids = %d,%d, want 1,2", a, b)
	}
	if c.Dropped() != 0 {
		t.Fatalf("Dropped = %d before limit hit", c.Dropped())
	}
	d := c.StartAt(0, ClassRank, "r", "l", "c", 2)
	if d != 0 {
		t.Fatalf("over-limit Start returned %d, want 0", d)
	}
	if c.Len() != 2 || c.Dropped() != 1 {
		t.Fatalf("Len=%d Dropped=%d, want 2/1", c.Len(), c.Dropped())
	}
	c.StartAt(0, ClassRank, "r", "l", "d", 3)
	if c.Dropped() != 2 {
		t.Fatalf("Dropped = %d, want 2", c.Dropped())
	}
}

// First End wins: multiple completion observers (Wait vs Test, FIN vs
// failover ack) may all End the same span; only the earliest sticks.
func TestFirstEndWins(t *testing.T) {
	c := New(0)
	id := c.StartAt(0, ClassRank, "r", "mpi", "isend", 10)
	c.EndAt(id, 25)
	c.EndAt(id, 99)
	s, _ := c.Get(id)
	if !s.Ended || s.End != 25 {
		t.Fatalf("End = %d (ended=%v), want first-wins 25", s.End, s.Ended)
	}
	if s.Dur() != 15 {
		t.Fatalf("Dur = %d, want 15", s.Dur())
	}
}

// Start/End without an attached clock record time 0; with a clock they
// read it (and never advance it — the collector has no way to).
func TestClockAttachment(t *testing.T) {
	c := New(0)
	a := c.Start(0, ClassRank, "r", "l", "noclock")
	s, _ := c.Get(a)
	if s.Begin != 0 {
		t.Fatalf("clockless Begin = %d, want 0", s.Begin)
	}
	clk := &fakeClock{t: 42}
	c.AttachClock(clk)
	b := c.Start(0, ClassProxy, "p", "l", "clocked")
	clk.t = 50
	c.End(b)
	s, _ = c.Get(b)
	if s.Begin != 42 || s.End != 50 {
		t.Fatalf("span = [%d,%d], want [42,50]", s.Begin, s.End)
	}
}

func TestAttrsAndOpenDur(t *testing.T) {
	c := New(0)
	id := c.StartAt(0, ClassHCA, "n0.hca", "verbs", "rdma_write", 3)
	c.AttrInt(id, "size", 8192)
	c.AttrStr(id, "mech", "gvmi")
	s, _ := c.Get(id)
	if len(s.Attrs) != 2 || !s.Attrs[0].IsInt || s.Attrs[0].Int != 8192 ||
		s.Attrs[1].Str != "gvmi" {
		t.Fatalf("attrs = %+v", s.Attrs)
	}
	if s.Dur() != 0 {
		t.Fatalf("open span Dur = %d, want 0", s.Dur())
	}
}

func TestRootsAndRootsNamed(t *testing.T) {
	c := New(0)
	r1 := c.StartAt(0, ClassRank, "rank0", "coll", "ialltoall", 0)
	r2 := c.StartAt(0, ClassRank, "rank1", "mpi", "isend", 1)
	c.StartAt(r1, ClassProxy, "proxy0", "core", "group_exec", 2)
	roots := c.Roots()
	if len(roots) != 2 || roots[0] != r1 || roots[1] != r2 {
		t.Fatalf("Roots = %v, want [%d %d]", roots, r1, r2)
	}
	if got := c.RootsNamed("coll", "ialltoall"); len(got) != 1 || got[0] != r1 {
		t.Fatalf("RootsNamed(coll,ialltoall) = %v", got)
	}
	if got := c.RootsNamed("", "isend"); len(got) != 1 || got[0] != r2 {
		t.Fatalf("RootsNamed(,isend) = %v", got)
	}
	if got := c.RootsNamed("mpi", ""); len(got) != 1 || got[0] != r2 {
		t.Fatalf("RootsNamed(mpi,) = %v", got)
	}
	if got := c.RootsNamed("fabric", ""); got != nil {
		t.Fatalf("RootsNamed(fabric,) = %v, want nil", got)
	}
}

func TestClassString(t *testing.T) {
	want := map[Class]string{
		ClassNone: "none", ClassRank: "rank", ClassProxy: "proxy",
		ClassHCA: "hca", ClassWire: "wire", Class(99): "none",
	}
	for c, s := range want {
		if c.String() != s {
			t.Errorf("Class(%d).String() = %q, want %q", c, c.String(), s)
		}
	}
}
