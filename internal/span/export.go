package span

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"

	"repro/internal/sim"
)

// jsonSpan is the JSONL wire form of one span. Field order is fixed by the
// struct, so output is deterministic line by line.
type jsonSpan struct {
	ID     ID              `json:"id"`
	Parent ID              `json:"parent,omitempty"`
	Class  string          `json:"class"`
	Entity string          `json:"entity"`
	Layer  string          `json:"layer"`
	Name   string          `json:"name"`
	Begin  sim.Time        `json:"begin_ns"`
	End    sim.Time        `json:"end_ns"`
	Open   bool            `json:"open,omitempty"`
	Attrs  json.RawMessage `json:"attrs,omitempty"`
}

func encodeAttrs(attrs []Attr) json.RawMessage {
	if len(attrs) == 0 {
		return nil
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, a := range attrs {
		if i > 0 {
			b.WriteByte(',')
		}
		k, _ := json.Marshal(a.Key)
		b.Write(k)
		b.WriteByte(':')
		if a.IsInt {
			fmt.Fprintf(&b, "%d", a.Int)
		} else {
			v, _ := json.Marshal(a.Str)
			b.Write(v)
		}
	}
	b.WriteByte('}')
	return json.RawMessage(b.String())
}

// WriteJSONL writes every recorded span as one JSON object per line, in
// creation (= deterministic) order. Open spans are marked "open" with
// end_ns equal to begin_ns.
func (c *Collector) WriteJSONL(w io.Writer) error {
	if c == nil {
		return nil
	}
	enc := json.NewEncoder(w)
	for i := range c.spans {
		s := &c.spans[i]
		js := jsonSpan{
			ID: s.ID, Parent: s.Parent, Class: s.Class.String(),
			Entity: s.Entity, Layer: s.Layer, Name: s.Name,
			Begin: s.Begin, End: s.End, Open: !s.Ended,
			Attrs: encodeAttrs(s.Attrs),
		}
		if !s.Ended {
			js.End = s.Begin
		}
		if err := enc.Encode(js); err != nil {
			return err
		}
	}
	return nil
}

// WriteChromeTrace writes the span tree in Chrome trace-event JSON
// (chrome://tracing, Perfetto). Each entity becomes a named thread;
// spans become complete ("X") duration events, and every cross-entity
// parent/child edge becomes a flow-event pair ("s" on the parent's track
// at the child's begin, "f" on the child's track) so the causal chain —
// host call -> proxy -> HCA -> wire — is drawn as arrows across tracks.
// Timestamps are microseconds (floats), the format's native unit.
func (c *Collector) WriteChromeTrace(w io.Writer) error {
	return c.WriteChromeTraceWith(w, nil)
}

// WriteChromeTraceWith is WriteChromeTrace with extra pre-rendered trace
// events appended to the array — the merge point for the telemetry
// recorder's counter ("C") events, so spans and time series land in one
// trace file. Each extra must be one complete JSON object without trailing
// separators. A nil collector still emits the extras.
func (c *Collector) WriteChromeTraceWith(w io.Writer, extra []string) error {
	if c == nil && len(extra) == 0 {
		_, err := io.WriteString(w, "[]\n")
		return err
	}
	// Stable thread numbering: entities in order of first appearance,
	// which is deterministic because span creation order is.
	tid := make(map[string]int)
	var entities []string
	if c != nil {
		for i := range c.spans {
			e := c.spans[i].Entity
			if _, ok := tid[e]; !ok {
				tid[e] = len(entities)
				entities = append(entities, e)
			}
		}
	}
	us := func(t sim.Time) float64 { return float64(t) / 1e3 }
	var b strings.Builder
	b.WriteString("[\n")
	first := true
	emit := func(line string) {
		if !first {
			b.WriteString(",\n")
		}
		first = false
		b.WriteString(line)
	}
	for i, e := range entities {
		name, _ := json.Marshal(e)
		emit(fmt.Sprintf(`{"ph":"M","pid":0,"tid":%d,"name":"thread_name","args":{"name":%s}}`, i, name))
	}
	var spans []Span
	if c != nil {
		spans = c.spans
	}
	for i := range spans {
		s := &spans[i]
		end := s.End
		if !s.Ended {
			end = s.Begin
		}
		name, _ := json.Marshal(s.Name)
		args := fmt.Sprintf(`{"id":%d,"class":%q`, s.ID, s.Class.String())
		for _, a := range s.Attrs {
			k, _ := json.Marshal(a.Key)
			if a.IsInt {
				args += fmt.Sprintf(",%s:%d", k, a.Int)
			} else {
				v, _ := json.Marshal(a.Str)
				args += fmt.Sprintf(",%s:%s", k, v)
			}
		}
		args += "}"
		emit(fmt.Sprintf(`{"ph":"X","pid":0,"tid":%d,"ts":%g,"dur":%g,"name":%s,"cat":%q,"args":%s}`,
			tid[s.Entity], us(s.Begin), us(end-s.Begin), name, s.Layer, args))
		if s.Parent != 0 {
			if p, ok := c.Get(s.Parent); ok && p.Entity != s.Entity {
				// Flow arrow from the parent's track to the child's at the
				// moment the child begins.
				emit(fmt.Sprintf(`{"ph":"s","pid":0,"tid":%d,"ts":%g,"id":%d,"name":"flow","cat":"flow"}`,
					tid[p.Entity], us(s.Begin), s.ID))
				emit(fmt.Sprintf(`{"ph":"f","bp":"e","pid":0,"tid":%d,"ts":%g,"id":%d,"name":"flow","cat":"flow"}`,
					tid[s.Entity], us(s.Begin), s.ID))
			}
		}
	}
	for _, line := range extra {
		emit(line)
	}
	b.WriteString("\n]\n")
	_, err := io.WriteString(w, b.String())
	return err
}

// WriteFolded writes pprof-style folded stacks ("frame;frame;frame value"
// per line) for flamegraph tooling. Each ended span contributes its
// self-time (duration minus ended-children durations, floored at zero)
// under the stack of its ancestors; frames render as layer.name(entity).
// Lines are sorted lexically, so output is deterministic.
func (c *Collector) WriteFolded(w io.Writer) error {
	if c == nil {
		return nil
	}
	frame := func(s *Span) string {
		return fmt.Sprintf("%s.%s(%s)", s.Layer, s.Name, s.Entity)
	}
	childSum := make(map[ID]sim.Time)
	for i := range c.spans {
		s := &c.spans[i]
		if s.Ended && s.Parent != 0 {
			childSum[s.Parent] += s.Dur()
		}
	}
	stacks := make(map[string]sim.Time)
	for i := range c.spans {
		s := &c.spans[i]
		if !s.Ended {
			continue
		}
		self := s.Dur() - childSum[s.ID]
		if self <= 0 {
			continue
		}
		frames := []string{frame(s)}
		for p := s.Parent; p != 0; {
			ps, ok := c.Get(p)
			if !ok {
				break
			}
			frames = append(frames, frame(&ps))
			p = ps.Parent
		}
		// frames is leaf-first; folded format wants root-first.
		var b strings.Builder
		for j := len(frames) - 1; j >= 0; j-- {
			if j < len(frames)-1 {
				b.WriteByte(';')
			}
			b.WriteString(frames[j])
		}
		stacks[b.String()] += self
	}
	lines := make([]string, 0, len(stacks))
	for st, v := range stacks {
		lines = append(lines, fmt.Sprintf("%s %d", st, int64(v)))
	}
	sort.Strings(lines)
	for _, ln := range lines {
		if _, err := fmt.Fprintln(w, ln); err != nil {
			return err
		}
	}
	return nil
}
