package fabric

import (
	"testing"

	"repro/internal/sim"
)

type recordAction struct {
	n    int
	last sim.Time
}

func (a *recordAction) Fire(at sim.Time) { a.n++; a.last = at }

// TransferAction must deliver at exactly the times Transfer would and,
// with a reusable Action, schedule with zero allocations per message in
// steady state — the "fabric packets" leg of the pooled hot path.
func TestTransferActionMatchesTransferAndAllocFree(t *testing.T) {
	build := func() (*sim.Kernel, *Fabric, *Endpoint, *Endpoint) {
		k := sim.NewKernel()
		f := New(k, DefaultConfig())
		src := f.NewEndpoint("n0.host", 0, testHostPort)
		dst := f.NewEndpoint("n1.host", 1, testHostPort)
		return k, f, src, dst
	}

	// Timing equivalence, message by message.
	k1, f1, s1, d1 := build()
	var closureTimes []sim.Time
	for i := 0; i < 5; i++ {
		f1.Transfer(s1, d1, 2048, func() { closureTimes = append(closureTimes, k1.Now()) })
	}
	k1.Run()

	k2, f2, s2, d2 := build()
	act := &recordAction{}
	for i := 0; i < 5; i++ {
		f2.TransferAction(s2, d2, 2048, act)
	}
	k2.Run()
	if act.n != len(closureTimes) {
		t.Fatalf("action fired %d times, closure %d", act.n, len(closureTimes))
	}
	if act.last != closureTimes[len(closureTimes)-1] {
		t.Fatalf("last action delivery at %v, closure at %v", act.last, closureTimes[len(closureTimes)-1])
	}
	if k1.Now() != k2.Now() {
		t.Fatalf("final times differ: closure %v, action %v", k1.Now(), k2.Now())
	}

	// Allocation budget: a recycled Action transfers at 0 allocs/op.
	k3, f3, s3, d3 := build()
	warm := &recordAction{}
	for i := 0; i < 8; i++ {
		f3.TransferAction(s3, d3, 1024, warm)
	}
	k3.Run()
	allocs := testing.AllocsPerRun(200, func() {
		f3.TransferAction(s3, d3, 1024, warm)
		k3.Run()
	})
	if allocs > 0 {
		t.Fatalf("TransferAction allocated %.2f objects per message in steady state, want 0", allocs)
	}
}
