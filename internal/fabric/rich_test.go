package fabric

import (
	"testing"

	"repro/internal/metrics"
	"repro/internal/sim"
)

// Rich telemetry is opt-in per endpoint-creation: endpoints created after
// SetRichTelemetry(true) export a cumulative "goodput_bytes" gauge that
// tracks delivered bytes, and endpoints created before it export nothing —
// the legacy metric set stays byte-identical.
func TestRichTelemetryGoodputGauge(t *testing.T) {
	k := sim.NewKernel()
	f := New(k, DefaultConfig())
	met := metrics.NewRegistry()
	f.SetMetrics(met)
	legacy := f.NewEndpoint("n0.host", 0, testHostPort)
	f.SetRichTelemetry(true)
	rich := f.NewEndpoint("n1.host", 1, testHostPort)

	f.Transfer(legacy, rich, 1000, nil)
	f.Transfer(legacy, rich, 500, nil)
	f.Transfer(rich, legacy, 64, nil)
	k.Run()

	if got := met.Gauge("fabric", "n1.host", "goodput_bytes").Value(); got != 1500 {
		t.Fatalf("rich endpoint goodput gauge = %v, want 1500 delivered bytes", got)
	}
	// The pre-rich endpoint received 64 bytes but must not have grown a
	// gauge; reading it above would have created one for n1.host only.
	met.VisitGauges(func(key metrics.Key, g *metrics.Gauge) {
		if key.Name == "goodput_bytes" && key.Entity == "n0.host" {
			t.Fatalf("legacy endpoint grew a goodput gauge: %+v = %v", key, g.Value())
		}
	})
}

// Without SetRichTelemetry no goodput series exists at all — the gauge is
// the only metric rich telemetry adds at this layer.
func TestRichTelemetryOffExportsNoGoodput(t *testing.T) {
	k := sim.NewKernel()
	f := New(k, DefaultConfig())
	met := metrics.NewRegistry()
	f.SetMetrics(met)
	a := f.NewEndpoint("a", 0, testHostPort)
	b := f.NewEndpoint("b", 1, testHostPort)
	f.Transfer(a, b, 4096, nil)
	k.Run()
	met.VisitGauges(func(key metrics.Key, _ *metrics.Gauge) {
		if key.Name == "goodput_bytes" {
			t.Fatalf("goodput gauge exported with rich telemetry off: %+v", key)
		}
	})
}
