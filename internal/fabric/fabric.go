// Package fabric models the interconnect of the simulated cluster with a
// LogGP-style cost model.
//
// Each node exposes two network endpoints: the host HCA port (ConnectX-class,
// driven by fast host cores) and the DPU port (BlueField-class, driven by
// slower ARM cores). Injecting a message of n bytes through an endpoint
// occupies it for Overhead + n/Bandwidth; the head of the message leaves
// after Overhead and arrives after the wire latency; the receiving endpoint
// serializes concurrent arrivals at its own bandwidth. Per-message Overhead
// is the knob that reproduces the paper's Figure 2/3 observation: DPU-driven
// transfers have near-identical latency but roughly half the small-message
// bandwidth of host-driven transfers, converging at large messages.
package fabric

import (
	"fmt"

	"repro/internal/fault"
	"repro/internal/metrics"
	"repro/internal/sim"
	"repro/internal/span"
)

// Params describes one endpoint's injection characteristics.
type Params struct {
	// Overhead is the per-message cost paid by the endpoint before the
	// first byte is on the wire (driver + doorbell + WQE processing).
	Overhead sim.Time
	// GBps is the endpoint bandwidth in bytes per nanosecond
	// (== gigabytes per second).
	GBps float64
}

// XferTime returns the full endpoint occupancy of an n-byte message:
// per-message overhead plus serialization. Exported for schedulers that
// need to account wire service without performing a transfer (e.g. the
// multi-tenant proxy's fair-share pass accounting).
func (p Params) XferTime(n int) sim.Time {
	return p.Overhead + p.serialize(n)
}

// serialize returns the time to push n bytes through the endpoint.
func (p Params) serialize(n int) sim.Time {
	if p.GBps <= 0 {
		return 0
	}
	return sim.Time(float64(n) / p.GBps)
}

// Endpoint is one injection/reception port on the fabric.
type Endpoint struct {
	f    *Fabric
	name string
	node int
	par  Params

	txBusyUntil sim.Time
	rxBusyUntil sim.Time

	// Stats. MsgsRecv/BytesRecv count goodput only: messages actually
	// handed to the receiver. Corrupted messages (failed ICRC) occupy the
	// port but land in MsgsDiscarded/BytesDiscarded instead.
	MsgsSent       int64
	BytesSent      int64
	MsgsRecv       int64
	BytesRecv      int64
	MsgsDiscarded  int64
	BytesDiscarded int64

	// Metric handles; nil (inert) when the fabric has no metrics registry.
	mMsgsTx, mBytesTx     *metrics.Counter
	mMsgsRx, mBytesRx     *metrics.Counter
	mMsgsDisc, mBytesDisc *metrics.Counter
	mMsgsDropped          *metrics.Counter
	mMsgsDelayed          *metrics.Counter
	// mGoodput is the per-endpoint cumulative-goodput gauge (rich
	// telemetry only): set to BytesRecv at every delivery, so windowed
	// readers (the feedback policy, the flight recorder) can difference
	// it into a congestion signal.
	mGoodput *metrics.Gauge
}

// Name returns the endpoint's diagnostic name.
func (e *Endpoint) Name() string { return e.name }

// Node returns the node the endpoint is attached to.
func (e *Endpoint) Node() int { return e.node }

// Params returns the endpoint's cost parameters.
func (e *Endpoint) Params() Params { return e.par }

// Config holds fabric-wide latencies.
type Config struct {
	// WireLatency applies between endpoints on different nodes
	// (NIC-switch-NIC flight time).
	WireLatency sim.Time
	// LocalLatency applies between endpoints on the same node
	// (host HCA <-> DPU across the PCIe switch).
	LocalLatency sim.Time
	// LoopbackGBps is the serialization rate for same-node transfers:
	// NIC-loopback traffic rides the PCIe switch (Gen4 x16 class), not the
	// HDR wire, so it is faster than the port's line rate.
	LoopbackGBps float64
}

// DefaultConfig mirrors an HDR InfiniBand fat-tree with BlueField-2 DPUs.
func DefaultConfig() Config {
	return Config{
		WireLatency:  1 * sim.Microsecond,
		LocalLatency: 700 * sim.Nanosecond,
		LoopbackGBps: 28,
	}
}

// Endpoint parameter sets (host vs DPU port, per device generation) live
// in internal/device: injection characteristics are a property of the
// SmartNIC part, not of the fabric, and every consumer goes through a
// device.Profile. This package only defines the Params type and the
// fabric generations (DefaultConfig / NDRConfig).

// NDRConfig is the NDR-generation fabric: slightly lower switch latency, PCIe
// Gen5 loopback.
func NDRConfig() Config {
	return Config{
		WireLatency:  900 * sim.Nanosecond,
		LocalLatency: 600 * sim.Nanosecond,
		LoopbackGBps: 50,
	}
}

// Fabric connects endpoints and schedules deliveries on the kernel.
type Fabric struct {
	k    *sim.Kernel
	cfg  Config
	eps  []*Endpoint
	inj  *fault.Injector   // nil = no fault injection
	met  *metrics.Registry // nil = no metrics
	sp   *span.Collector   // nil = no span tracing
	rich bool              // per-endpoint congestion gauges (opt-in)
}

// New creates a fabric on kernel k.
func New(k *sim.Kernel, cfg Config) *Fabric {
	return &Fabric{k: k, cfg: cfg}
}

// Kernel returns the owning simulation kernel.
func (f *Fabric) Kernel() *sim.Kernel { return f.k }

// SetInjector attaches a fault injector; nil disables injection. Plain
// Transfer is unaffected either way — only TransferFated consults it.
func (f *Fabric) SetInjector(inj *fault.Injector) { f.inj = inj }

// Injector returns the attached fault injector (nil when faults are off).
func (f *Fabric) Injector() *fault.Injector { return f.inj }

// SetMetrics attaches a metrics registry; nil disables metrics. Call it
// before creating endpoints — each endpoint binds its counter handles at
// creation time. Metrics never consume virtual time, so attaching a live
// registry cannot move any simulated timestamp.
func (f *Fabric) SetMetrics(m *metrics.Registry) { f.met = m }

// Metrics returns the attached registry (nil when metrics are off).
func (f *Fabric) Metrics() *metrics.Registry { return f.met }

// SetRichTelemetry opts endpoints created afterwards into the
// per-endpoint congestion gauges ("goodput_bytes"). Off by default — the
// extra series would change byte-identical legacy exports. Call before
// creating endpoints, like SetMetrics.
func (f *Fabric) SetRichTelemetry(on bool) { f.rich = on }

// SetSpans attaches a span collector; nil disables tracing. Fated or not,
// every transfer carrying a parent span then records an injection span on
// the sender port and a wire span for the flight. Span collection never
// consumes virtual time.
func (f *Fabric) SetSpans(c *span.Collector) { f.sp = c }

// Spans returns the attached span collector (nil when tracing is off).
func (f *Fabric) Spans() *span.Collector { return f.sp }

// Config returns the fabric configuration.
func (f *Fabric) Config() Config { return f.cfg }

// NewEndpoint attaches a new port on the given node.
func (f *Fabric) NewEndpoint(name string, node int, par Params) *Endpoint {
	e := &Endpoint{f: f, name: name, node: node, par: par}
	if m := f.met; m.Enabled() {
		e.mMsgsTx = m.Counter("fabric", name, "msgs_tx")
		e.mBytesTx = m.Counter("fabric", name, "bytes_tx")
		e.mMsgsRx = m.Counter("fabric", name, "msgs_rx")
		e.mBytesRx = m.Counter("fabric", name, "bytes_rx")
		e.mMsgsDisc = m.Counter("fabric", name, "msgs_discarded")
		e.mBytesDisc = m.Counter("fabric", name, "bytes_discarded")
		e.mMsgsDropped = m.Counter("fabric", name, "msgs_dropped")
		e.mMsgsDelayed = m.Counter("fabric", name, "msgs_delayed")
		if f.rich {
			e.mGoodput = m.Gauge("fabric", name, "goodput_bytes")
		}
	}
	f.eps = append(f.eps, e)
	return e
}

// Latency returns the flight latency between two endpoints.
func (f *Fabric) Latency(src, dst *Endpoint) sim.Time {
	if src.node == dst.node {
		return f.cfg.LocalLatency
	}
	return f.cfg.WireLatency
}

// MinLatency returns the smallest flight latency any message can have — the
// conservative lookahead bound for sharded execution: no delivery scheduled
// by a transfer lands sooner than this after its injection.
func (f *Fabric) MinLatency() sim.Time {
	if f.cfg.LocalLatency < f.cfg.WireLatency {
		return f.cfg.LocalLatency
	}
	return f.cfg.WireLatency
}

// Transfer injects a message of size bytes from src to dst and schedules
// deliver (which may be nil) in handler context at the arrival time.
// It returns the time the sender endpoint is free again (local completion)
// and the delivery time at the receiver.
//
// Transfer may be called from process or handler context; it never blocks.
// CPU costs of composing the message are the caller's business.
func (f *Fabric) Transfer(src, dst *Endpoint, size int, deliver func()) (txDone, arrive sim.Time) {
	return f.transfer(src, dst, size, deliver, nil, fault.FateDeliver, 0)
}

// TransferCtx is Transfer carrying span context: when a collector is
// attached, the transfer's injection and wire spans are recorded as
// children of parent. Timing is identical to Transfer.
func (f *Fabric) TransferCtx(src, dst *Endpoint, size int, deliver func(), parent span.ID) (txDone, arrive sim.Time) {
	return f.transfer(src, dst, size, deliver, nil, fault.FateDeliver, parent)
}

// TransferAction is Transfer delivering to a pooled sim.Action instead of a
// closure: the hot per-message path for callers that recycle their delivery
// records (the verbs layer's completion flights), so steady-state traffic
// schedules nothing on the heap. Timing is identical to Transfer.
func (f *Fabric) TransferAction(src, dst *Endpoint, size int, act sim.Action) (txDone, arrive sim.Time) {
	return f.transfer(src, dst, size, nil, act, fault.FateDeliver, 0)
}

// TransferActionCtx is TransferAction carrying span context (see
// TransferCtx).
func (f *Fabric) TransferActionCtx(src, dst *Endpoint, size int, act sim.Action, parent span.ID) (txDone, arrive sim.Time) {
	return f.transfer(src, dst, size, nil, act, fault.FateDeliver, parent)
}

// TransferFated is Transfer with fault injection: the attached injector
// draws a fate for the message and the returned fate tells the caller
// (the verbs layer) whether to arrange a retransmission. A dropped message
// consumes only the sender's overhead and serialization; a corrupted one
// occupies both endpoints but is discarded by the receiver's ICRC check
// (deliver never runs for either); a delayed one is delivered DelaySpike
// late. With no injector attached this is exactly Transfer.
//
// delivered reports whether the deliver callback was (or would have been)
// scheduled — true for FateDeliver and FateDelay, false for FateDrop and
// FateCorrupt. arrive is only meaningful when delivered is true (for
// FateCorrupt it is the end of port occupancy; for FateDrop it is zero and
// must not be used as a timestamp).
func (f *Fabric) TransferFated(src, dst *Endpoint, size int, deliver func()) (txDone, arrive sim.Time, delivered bool, fate fault.Fate) {
	return f.TransferFatedCtx(src, dst, size, deliver, 0)
}

// TransferFatedCtx is TransferFated carrying span context (see
// TransferCtx). Drop and corrupt fates are recorded on the spans as a
// "fate" attribute, so a retransmitted op shows every attempt's flight.
func (f *Fabric) TransferFatedCtx(src, dst *Endpoint, size int, deliver func(), parent span.ID) (txDone, arrive sim.Time, delivered bool, fate fault.Fate) {
	fate = f.inj.FateFor()
	if fate != fault.FateDeliver {
		f.inj.Note(f.k.Now(), "fabric", fate.String(),
			fmt.Sprintf("%s->%s size=%d", src.name, dst.name, size))
	}
	txDone, arrive = f.transfer(src, dst, size, deliver, nil, fate, parent)
	delivered = fate == fault.FateDeliver || fate == fault.FateDelay
	return txDone, arrive, delivered, fate
}

// transfer computes endpoint occupancy and schedules delivery according to
// the message's fate. Exactly one of deliver/act carries the delivery (both
// may be nil for fire-and-forget). The delivery event is tagged with the
// receiving node's shard so sharded runs keep arrivals on their home heap.
func (f *Fabric) transfer(src, dst *Endpoint, size int, deliver func(), act sim.Action, fate fault.Fate, parent span.ID) (txDone, arrive sim.Time) {
	if src == nil || dst == nil {
		panic("fabric: nil endpoint")
	}
	if size < 0 {
		panic(fmt.Sprintf("fabric: negative transfer size %d", size))
	}
	now := f.k.Now()

	txPar, rxPar := src.par, dst.par
	if src.node == dst.node && f.cfg.LoopbackGBps > 0 {
		txPar.GBps, rxPar.GBps = f.cfg.LoopbackGBps, f.cfg.LoopbackGBps
	}

	start := now
	if src.txBusyUntil > start {
		start = src.txBusyUntil
	}
	txDone = start + txPar.Overhead + txPar.serialize(size)
	src.txBusyUntil = txDone
	src.MsgsSent++
	src.BytesSent += int64(size)
	src.mMsgsTx.Inc()
	src.mBytesTx.Add(int64(size))

	if fate == fault.FateDrop {
		// Lost on the wire: the receiver never sees it.
		src.mMsgsDropped.Inc()
		if f.sp.Enabled() {
			inj := f.sp.StartAt(parent, span.ClassHCA, src.name, "fabric", "inject", start)
			f.sp.AttrInt(inj, "size", int64(size))
			f.sp.AttrStr(inj, "fate", "drop")
			f.sp.EndAt(inj, txDone)
		}
		return txDone, 0
	}

	headArrive := start + txPar.Overhead + f.Latency(src, dst)
	rxStart := headArrive
	if dst.rxBusyUntil > rxStart {
		rxStart = dst.rxBusyUntil
	}
	arrive = rxStart + rxPar.serialize(size)
	dst.rxBusyUntil = arrive

	if fate == fault.FateCorrupt {
		// Arrived but failed the ICRC check: occupies the port, then is
		// discarded without delivery. Counted as discard, not goodput.
		dst.MsgsDiscarded++
		dst.BytesDiscarded += int64(size)
		dst.mMsgsDisc.Inc()
		dst.mBytesDisc.Add(int64(size))
		if f.sp.Enabled() {
			inj := f.sp.StartAt(parent, span.ClassHCA, src.name, "fabric", "inject", start)
			f.sp.AttrInt(inj, "size", int64(size))
			f.sp.EndAt(inj, txDone)
			wire := f.sp.StartAt(parent, span.ClassWire, src.name+"->"+dst.name, "fabric", "wire", start+txPar.Overhead)
			f.sp.AttrInt(wire, "size", int64(size))
			f.sp.AttrStr(wire, "fate", "corrupt")
			f.sp.EndAt(wire, arrive)
		}
		return txDone, arrive
	}
	dst.MsgsRecv++
	dst.BytesRecv += int64(size)
	dst.mMsgsRx.Inc()
	dst.mBytesRx.Add(int64(size))
	if dst.mGoodput != nil {
		dst.mGoodput.Set(float64(dst.BytesRecv))
	}
	if fate == fault.FateDelay {
		// Switch-buffering excursion: delivery (not port occupancy) is late.
		// The port frees at the nominal time, so later messages on the same
		// port may overtake the delayed one; see DESIGN.md §6.
		dst.mMsgsDelayed.Inc()
		arrive += f.inj.Spike()
	}

	if f.sp.Enabled() {
		// Injection span: sender port occupied [start, txDone]. Wire span:
		// head leaves after the overhead, flight + receive serialization
		// end at arrive (including any delay spike).
		inj := f.sp.StartAt(parent, span.ClassHCA, src.name, "fabric", "inject", start)
		f.sp.AttrInt(inj, "size", int64(size))
		f.sp.EndAt(inj, txDone)
		wire := f.sp.StartAt(parent, span.ClassWire, src.name+"->"+dst.name, "fabric", "wire", start+txPar.Overhead)
		f.sp.AttrInt(wire, "size", int64(size))
		if fate == fault.FateDelay {
			f.sp.AttrStr(wire, "fate", "delay")
		}
		f.sp.EndAt(wire, arrive)
	}

	if deliver != nil || act != nil {
		shard := f.k.ShardIndex(dst.node)
		if act != nil {
			f.k.AtActionShard(shard, arrive-now, act)
		} else {
			f.k.AtShard(shard, arrive-now, deliver)
		}
	}
	return txDone, arrive
}

// ResetStats zeroes the counters of every endpoint (busy horizons are kept).
// Metric series are cumulative and are not reset.
func (f *Fabric) ResetStats() {
	for _, e := range f.eps {
		e.MsgsSent, e.BytesSent, e.MsgsRecv, e.BytesRecv = 0, 0, 0, 0
		e.MsgsDiscarded, e.BytesDiscarded = 0, 0
	}
}
