package fabric

import (
	"math/rand"
	"testing"

	"repro/internal/fault"
	"repro/internal/metrics"
	"repro/internal/sim"
)

// fatedFabric builds a fabric with an attached injector and metrics registry.
func fatedFabric(cfg *fault.Config) (*sim.Kernel, *Fabric, *Endpoint, *Endpoint, *metrics.Registry) {
	k := sim.NewKernel()
	f := New(k, DefaultConfig())
	met := metrics.NewRegistry()
	f.SetMetrics(met)
	f.SetInjector(fault.NewInjector(cfg))
	src := f.NewEndpoint("n0.host", 0, testHostPort)
	dst := f.NewEndpoint("n1.host", 1, testHostPort)
	return k, f, src, dst, met
}

// Regression (satellite 2): a dropped message must be reported through the
// explicit delivered flag, not the arrive=0 sentinel callers used to have to
// know about.
func TestFatedDropReportsNotDelivered(t *testing.T) {
	cfg := fault.DefaultConfig(1)
	cfg.DropRate = 1
	k, f, src, dst, met := fatedFabric(cfg)
	ran := false
	txDone, arrive, delivered, fate := f.TransferFated(src, dst, 4096, func() { ran = true })
	if fate != fault.FateDrop {
		t.Fatalf("fate = %v, want drop", fate)
	}
	if delivered {
		t.Fatal("dropped message reported delivered")
	}
	if arrive != 0 {
		t.Fatalf("arrive = %v for a drop (documented invalid = 0)", arrive)
	}
	if txDone <= 0 {
		t.Fatalf("txDone = %v, want sender occupancy", txDone)
	}
	k.Run()
	if ran {
		t.Fatal("deliver callback ran for a dropped message")
	}
	if src.MsgsSent != 1 || dst.MsgsRecv != 0 || dst.MsgsDiscarded != 0 {
		t.Fatalf("stats sent=%d recv=%d disc=%d, want 1/0/0",
			src.MsgsSent, dst.MsgsRecv, dst.MsgsDiscarded)
	}
	snap := met.Snapshot()
	if v := snap.CounterValue("fabric", "n0.host", "msgs_dropped"); v != 1 {
		t.Fatalf("msgs_dropped = %d, want 1", v)
	}
}

// Regression (satellite 3): a corrupted message occupies the receive port but
// must count as discard, not goodput.
func TestCorruptCountsDiscardedNotGoodput(t *testing.T) {
	cfg := fault.DefaultConfig(1)
	cfg.CorruptRate = 1
	k, f, src, dst, met := fatedFabric(cfg)
	ran := false
	_, arrive, delivered, fate := f.TransferFated(src, dst, 4096, func() { ran = true })
	if fate != fault.FateCorrupt {
		t.Fatalf("fate = %v, want corrupt", fate)
	}
	if delivered {
		t.Fatal("corrupted message reported delivered")
	}
	if arrive == 0 {
		t.Fatal("corrupt arrive = 0; it should be the end of port occupancy")
	}
	if dst.rxBusyUntil != arrive {
		t.Fatalf("rx port busy until %v, want %v (corrupt occupies the port)", dst.rxBusyUntil, arrive)
	}
	k.Run()
	if ran {
		t.Fatal("deliver callback ran for a corrupted message")
	}
	if dst.MsgsRecv != 0 || dst.BytesRecv != 0 {
		t.Fatalf("goodput stats recv=%d/%d bytes, want 0 (message was discarded)",
			dst.MsgsRecv, dst.BytesRecv)
	}
	if dst.MsgsDiscarded != 1 || dst.BytesDiscarded != 4096 {
		t.Fatalf("discard stats = %d msgs/%d bytes, want 1/4096",
			dst.MsgsDiscarded, dst.BytesDiscarded)
	}
	snap := met.Snapshot()
	if v := snap.CounterValue("fabric", "n1.host", "msgs_discarded"); v != 1 {
		t.Fatalf("msgs_discarded metric = %d, want 1", v)
	}
	if v := snap.CounterValue("fabric", "n1.host", "bytes_discarded"); v != 4096 {
		t.Fatalf("bytes_discarded metric = %d, want 4096", v)
	}
	if v := snap.CounterValue("fabric", "n1.host", "msgs_rx"); v != 0 {
		t.Fatalf("msgs_rx metric = %d, want 0", v)
	}
}

// ResetStats must also zero the discard counters.
func TestResetStatsClearsDiscards(t *testing.T) {
	cfg := fault.DefaultConfig(1)
	cfg.CorruptRate = 1
	k, f, src, dst, _ := fatedFabric(cfg)
	f.TransferFated(src, dst, 256, nil)
	k.Run()
	if dst.MsgsDiscarded != 1 {
		t.Fatalf("MsgsDiscarded = %d before reset", dst.MsgsDiscarded)
	}
	f.ResetStats()
	if dst.MsgsDiscarded != 0 || dst.BytesDiscarded != 0 {
		t.Fatal("ResetStats left discard counters set")
	}
}

// Regression (satellite 4): a FateDelay spike extends delivery, not port
// occupancy, so a later message on the same port may overtake the delayed
// one. That inversion is intended — the spike models a switch-buffering
// excursion beyond the receiver, after the port already serialized the
// message (DESIGN.md §6). This test pins the behaviour: with a seed whose
// first draw delays and second delivers, the second message's delivery runs
// before the first's.
func TestDelaySpikeAllowsOvertakingPinned(t *testing.T) {
	// Find a seed where draw1 < 0.5 (delay) and draw2 >= 0.5 (deliver).
	seed := int64(-1)
	for s := int64(0); s < 1000; s++ {
		rng := rand.New(rand.NewSource(s))
		if rng.Float64() < 0.5 && rng.Float64() >= 0.5 {
			seed = s
			break
		}
	}
	if seed < 0 {
		t.Fatal("no suitable seed in 1000 tries")
	}
	cfg := fault.DefaultConfig(seed)
	cfg.DelayRate = 0.5
	cfg.DelaySpike = 50 * sim.Microsecond
	k, f, src, dst, _ := fatedFabric(cfg)

	var firstAt, secondAt sim.Time
	_, a1, d1, f1 := f.TransferFated(src, dst, 1024, func() { firstAt = k.Now() })
	_, a2, d2, f2 := f.TransferFated(src, dst, 1024, func() { secondAt = k.Now() })
	if f1 != fault.FateDelay || f2 != fault.FateDeliver {
		t.Fatalf("fates = %v/%v, want delay/deliver (seed scan broken)", f1, f2)
	}
	if !d1 || !d2 {
		t.Fatal("both messages should report delivered=true")
	}
	if a2 >= a1 {
		t.Fatalf("no inversion: second delivers at %v, delayed first at %v", a2, a1)
	}
	k.Run()
	if secondAt >= firstAt {
		t.Fatalf("delivery order not inverted: first=%v second=%v", firstAt, secondAt)
	}
	// The port itself stays FIFO: the delayed first message freed the port
	// at its nominal time, so the second's occupancy (and rxBusyUntil) is
	// its own undelayed arrival.
	if dst.rxBusyUntil != a2 {
		t.Fatalf("rxBusyUntil = %v, want second arrival %v (spike must not hold the port)", dst.rxBusyUntil, a2)
	}
}

// Fabric metric counters must mirror the endpoint stats for plain traffic.
func TestFabricMetricsMirrorStats(t *testing.T) {
	k := sim.NewKernel()
	f := New(k, DefaultConfig())
	met := metrics.NewRegistry()
	f.SetMetrics(met)
	src := f.NewEndpoint("a", 0, testHostPort)
	dst := f.NewEndpoint("b", 1, testHostPort)
	f.Transfer(src, dst, 1000, nil)
	f.Transfer(src, dst, 24, nil)
	k.Run()
	snap := met.Snapshot()
	if v := snap.CounterValue("fabric", "a", "msgs_tx"); v != src.MsgsSent {
		t.Fatalf("msgs_tx = %d, stats say %d", v, src.MsgsSent)
	}
	if v := snap.CounterValue("fabric", "a", "bytes_tx"); v != src.BytesSent {
		t.Fatalf("bytes_tx = %d, stats say %d", v, src.BytesSent)
	}
	if v := snap.CounterValue("fabric", "b", "msgs_rx"); v != dst.MsgsRecv {
		t.Fatalf("msgs_rx = %d, stats say %d", v, dst.MsgsRecv)
	}
	if v := snap.CounterValue("fabric", "b", "bytes_rx"); v != 1024 {
		t.Fatalf("bytes_rx = %d, want 1024", v)
	}
}
