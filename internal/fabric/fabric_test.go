package fabric

import (
	"testing"
	"testing/quick"

	"repro/internal/sim"
)

// Test-local port parameter sets: the bf2/bf3 values that used to be
// package constants here and now live in internal/device (which this
// package cannot import — device depends on fabric).
var (
	testHostPort    = Params{Overhead: 250 * sim.Nanosecond, GBps: 12.5}
	testDPUPort     = Params{Overhead: 600 * sim.Nanosecond, GBps: 12.5}
	testHostPortNDR = Params{Overhead: 220 * sim.Nanosecond, GBps: 25}
	testDPUPortBF3  = Params{Overhead: 350 * sim.Nanosecond, GBps: 25}
)

func testFabric() (*sim.Kernel, *Fabric, *Endpoint, *Endpoint, *Endpoint) {
	k := sim.NewKernel()
	f := New(k, DefaultConfig())
	h0 := f.NewEndpoint("n0.host", 0, testHostPort)
	h1 := f.NewEndpoint("n1.host", 1, testHostPort)
	d0 := f.NewEndpoint("n0.dpu", 0, testDPUPort)
	return k, f, h0, h1, d0
}

func TestTransferLatencyModel(t *testing.T) {
	k, f, h0, h1, _ := testFabric()
	size := 1024
	var arrived sim.Time
	txDone, arrive := f.Transfer(h0, h1, size, func() { arrived = k.Now() })
	wantSer := sim.Time(float64(size) / testHostPort.GBps)
	if want := testHostPort.Overhead + wantSer; txDone != want {
		t.Fatalf("txDone = %v, want %v", txDone, want)
	}
	if want := testHostPort.Overhead + f.Config().WireLatency + wantSer; arrive != want {
		t.Fatalf("arrive = %v, want %v", arrive, want)
	}
	k.Run()
	if arrived != arrive {
		t.Fatalf("deliver fired at %v, want %v", arrived, arrive)
	}
}

func TestLocalLatencyUsedOnSameNode(t *testing.T) {
	_, f, h0, _, d0 := testFabric()
	if got := f.Latency(h0, d0); got != f.Config().LocalLatency {
		t.Fatalf("same-node latency = %v, want %v", got, f.Config().LocalLatency)
	}
}

func TestSenderSerialization(t *testing.T) {
	_, f, h0, h1, _ := testFabric()
	// Two back-to-back messages: the second's injection starts after the
	// first finishes.
	tx1, _ := f.Transfer(h0, h1, 4096, nil)
	tx2, _ := f.Transfer(h0, h1, 4096, nil)
	per := testHostPort.Overhead + sim.Time(4096/testHostPort.GBps)
	if tx1 != per || tx2 != 2*per {
		t.Fatalf("tx1=%v tx2=%v, want %v and %v", tx1, tx2, per, 2*per)
	}
}

func TestReceiverSerializationIncast(t *testing.T) {
	k := sim.NewKernel()
	f := New(k, DefaultConfig())
	dst := f.NewEndpoint("dst", 9, testHostPort)
	const n = 4
	const size = 1 << 20
	var last sim.Time
	for i := 0; i < n; i++ {
		src := f.NewEndpoint("src", i, testHostPort)
		_, a := f.Transfer(src, dst, size, nil)
		if a > last {
			last = a
		}
	}
	k.Run()
	// n concurrent senders into one port must take at least n serialized
	// payload times at the receiver.
	minSerialized := sim.Time(float64(n*size) / testHostPort.GBps)
	if last < minSerialized {
		t.Fatalf("incast finished at %v, faster than receiver line rate %v", last, minSerialized)
	}
}

// The paper's Figure 2/3 premise: DPU-driven injection has similar latency
// but roughly half the small-message bandwidth of host-driven injection,
// converging at large messages.
func TestHostVsDPUInjectionShape(t *testing.T) {
	cfg := DefaultConfig()

	latency := func(par Params, size int) sim.Time {
		return par.Overhead + cfg.WireLatency + sim.Time(float64(size)/par.GBps)
	}
	msgRateBW := func(par Params, size int) float64 {
		per := par.Overhead + par.serialize(size)
		return float64(size) / float64(per)
	}

	// Small-message latency within 30%.
	lh, ld := latency(testHostPort, 8), latency(testDPUPort, 8)
	if ratio := float64(ld) / float64(lh); ratio > 1.35 {
		t.Fatalf("small-message DPU/host latency ratio %.2f, want close to 1", ratio)
	}
	// Small-message bandwidth of DPU path roughly half.
	bh, bd := msgRateBW(testHostPort, 4096), msgRateBW(testDPUPort, 4096)
	if r := bd / bh; r < 0.35 || r > 0.75 {
		t.Fatalf("small-message DPU/host bandwidth ratio %.2f, want ~0.5", r)
	}
	// Large-message bandwidth converges.
	bh, bd = msgRateBW(testHostPort, 4<<20), msgRateBW(testDPUPort, 4<<20)
	if r := bd / bh; r < 0.95 {
		t.Fatalf("large-message DPU/host bandwidth ratio %.2f, want ~1", r)
	}
}

func TestTransferStats(t *testing.T) {
	k, f, h0, h1, _ := testFabric()
	f.Transfer(h0, h1, 100, nil)
	f.Transfer(h0, h1, 200, nil)
	k.Run()
	if h0.MsgsSent != 2 || h0.BytesSent != 300 {
		t.Fatalf("sender stats = %d msgs / %d bytes, want 2/300", h0.MsgsSent, h0.BytesSent)
	}
	if h1.MsgsRecv != 2 || h1.BytesRecv != 300 {
		t.Fatalf("receiver stats = %d msgs / %d bytes, want 2/300", h1.MsgsRecv, h1.BytesRecv)
	}
	f.ResetStats()
	if h0.MsgsSent != 0 || h1.BytesRecv != 0 {
		t.Fatal("ResetStats left counters nonzero")
	}
}

func TestNegativeSizePanics(t *testing.T) {
	_, f, h0, h1, _ := testFabric()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	f.Transfer(h0, h1, -1, nil)
}

func TestZeroSizeTransferStillHasOverheadAndLatency(t *testing.T) {
	_, f, h0, h1, _ := testFabric()
	tx, ar := f.Transfer(h0, h1, 0, nil)
	if tx != testHostPort.Overhead {
		t.Fatalf("txDone = %v, want overhead %v", tx, testHostPort.Overhead)
	}
	if ar != testHostPort.Overhead+f.Config().WireLatency {
		t.Fatalf("arrive = %v", ar)
	}
}

// Property: arrival time is monotone nondecreasing in message size, and
// never earlier than overhead+latency.
func TestPropertyArrivalMonotone(t *testing.T) {
	f := func(sizes []uint16) bool {
		k := sim.NewKernel()
		fb := New(k, DefaultConfig())
		src := fb.NewEndpoint("s", 0, testHostPort)
		dst := fb.NewEndpoint("d", 1, testHostPort)
		floor := testHostPort.Overhead + fb.Config().WireLatency
		var prevArrive sim.Time
		for _, sz := range sizes {
			_, a := fb.Transfer(src, dst, int(sz), nil)
			if a < floor || a < prevArrive {
				return false
			}
			prevArrive = a
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestLoopbackFasterThanWire(t *testing.T) {
	k := sim.NewKernel()
	f := New(k, DefaultConfig())
	a := f.NewEndpoint("a", 0, testHostPort)
	b := f.NewEndpoint("b", 0, testHostPort) // same node
	c := f.NewEndpoint("c", 1, testHostPort) // remote
	const size = 1 << 20
	_, local := f.Transfer(a, b, size, nil)
	f2 := New(sim.NewKernel(), DefaultConfig())
	a2 := f2.NewEndpoint("a", 0, testHostPort)
	c2 := f2.NewEndpoint("c", 1, testHostPort)
	_, remote := f2.Transfer(a2, c2, size, nil)
	_ = c
	if local >= remote {
		t.Fatalf("same-node transfer (%v) should beat the wire (%v): PCIe loopback", local, remote)
	}
}

func TestNDRConfigFaster(t *testing.T) {
	ndr := NDRConfig()
	hdr := DefaultConfig()
	if ndr.WireLatency >= hdr.WireLatency || ndr.LoopbackGBps <= hdr.LoopbackGBps {
		t.Fatal("NDR config must improve on HDR")
	}
	if testDPUPortBF3.Overhead >= testDPUPort.Overhead {
		t.Fatal("BF3 posting must be faster than BF2")
	}
	if testHostPortNDR.GBps <= testHostPort.GBps {
		t.Fatal("NDR line rate must exceed HDR100")
	}
}
