package regcache

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/mem"
)

func TestGetMissThenPutHit(t *testing.T) {
	c := New[string](4, 0, nil)
	if _, ok := c.Get(2, 0x1000, 64); ok {
		t.Fatal("hit on empty cache")
	}
	c.Put(2, 0x1000, 64, "mkey-a")
	v, ok := c.Get(2, 0x1000, 64)
	if !ok || v != "mkey-a" {
		t.Fatalf("Get = (%q, %v), want (mkey-a, true)", v, ok)
	}
	if c.Hits != 1 || c.Misses != 1 {
		t.Fatalf("stats hits=%d misses=%d, want 1/1", c.Hits, c.Misses)
	}
}

func TestRankIsolation(t *testing.T) {
	c := New[int](3, 0, nil)
	c.Put(0, 0x1000, 64, 10)
	c.Put(1, 0x1000, 64, 11)
	if v, _ := c.Get(0, 0x1000, 64); v != 10 {
		t.Fatalf("rank 0 = %d, want 10", v)
	}
	if v, _ := c.Get(1, 0x1000, 64); v != 11 {
		t.Fatalf("rank 1 = %d, want 11", v)
	}
	if _, ok := c.Get(2, 0x1000, 64); ok {
		t.Fatal("rank 2 should miss")
	}
}

func TestSizeDistinguishesEntries(t *testing.T) {
	c := New[int](1, 0, nil)
	c.Put(0, 0x1000, 64, 1)
	c.Put(0, 0x1000, 128, 2)
	if v, _ := c.Get(0, 0x1000, 64); v != 1 {
		t.Fatal("size-64 entry clobbered")
	}
	if v, _ := c.Get(0, 0x1000, 128); v != 2 {
		t.Fatal("size-128 entry missing")
	}
}

func TestPutReplaces(t *testing.T) {
	c := New[int](1, 0, nil)
	c.Put(0, 0x1000, 64, 1)
	c.Put(0, 0x1000, 64, 2)
	if c.Len() != 1 {
		t.Fatalf("Len = %d, want 1", c.Len())
	}
	if v, _ := c.Get(0, 0x1000, 64); v != 2 {
		t.Fatal("replacement lost")
	}
}

func TestGetOrCreate(t *testing.T) {
	c := New[int](1, 0, nil)
	calls := 0
	v, hit := c.GetOrCreate(0, 0x2000, 32, func() int { calls++; return 7 })
	if hit || v != 7 || calls != 1 {
		t.Fatalf("first GetOrCreate = (%d,%v), calls=%d", v, hit, calls)
	}
	v, hit = c.GetOrCreate(0, 0x2000, 32, func() int { calls++; return 8 })
	if !hit || v != 7 || calls != 1 {
		t.Fatalf("second GetOrCreate = (%d,%v), calls=%d", v, hit, calls)
	}
}

func TestLRUEviction(t *testing.T) {
	var evicted []int
	c := New[int](1, 3, func(v int) { evicted = append(evicted, v) })
	for i := 0; i < 5; i++ {
		c.Put(0, mem.Addr(0x1000+i*64), 64, i)
	}
	if c.RankLen(0) != 3 {
		t.Fatalf("RankLen = %d, want 3", c.RankLen(0))
	}
	if len(evicted) != 2 || evicted[0] != 0 || evicted[1] != 1 {
		t.Fatalf("evicted %v, want [0 1]", evicted)
	}
	if c.Evictions != 2 {
		t.Fatalf("Evictions = %d", c.Evictions)
	}
}

func TestLRUOrderUpdatedByGet(t *testing.T) {
	var evicted []int
	c := New[int](1, 2, func(v int) { evicted = append(evicted, v) })
	c.Put(0, 0x1000, 64, 1)
	c.Put(0, 0x2000, 64, 2)
	c.Get(0, 0x1000, 64) // 1 becomes MRU
	c.Put(0, 0x3000, 64, 3)
	if len(evicted) != 1 || evicted[0] != 2 {
		t.Fatalf("evicted %v, want [2]", evicted)
	}
}

func TestDelete(t *testing.T) {
	c := New[int](1, 0, nil)
	c.Put(0, 0x1000, 64, 1)
	if !c.Delete(0, 0x1000, 64) {
		t.Fatal("Delete missed existing entry")
	}
	if c.Delete(0, 0x1000, 64) {
		t.Fatal("Delete found removed entry")
	}
	if _, ok := c.Get(0, 0x1000, 64); ok {
		t.Fatal("entry survives Delete")
	}
	if !c.wellFormed() {
		t.Fatal("cache invariants broken")
	}
}

func TestClearInvokesEvict(t *testing.T) {
	n := 0
	c := New[int](2, 0, func(int) { n++ })
	c.Put(0, 0x1000, 64, 1)
	c.Put(0, 0x2000, 64, 2)
	c.Put(1, 0x1000, 64, 3)
	c.Clear()
	if n != 3 || c.Len() != 0 {
		t.Fatalf("Clear: evicted %d, Len %d", n, c.Len())
	}
}

// Property: the cache behaves exactly like a map from (rank,addr,size) to
// value under any sequence of Put/Get/Delete (with unbounded capacity), and
// internal invariants hold throughout.
func TestPropertyMatchesMapModel(t *testing.T) {
	type ref struct {
		rank int
		addr mem.Addr
		size int
	}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		const ranks = 4
		c := New[int](ranks, 0, nil)
		model := make(map[ref]int)
		for op := 0; op < 500; op++ {
			r := ref{rng.Intn(ranks), mem.Addr(rng.Intn(32) * 64), 64 * (1 + rng.Intn(4))}
			switch rng.Intn(3) {
			case 0:
				v := rng.Intn(1000)
				c.Put(r.rank, r.addr, r.size, v)
				model[r] = v
			case 1:
				got, ok := c.Get(r.rank, r.addr, r.size)
				want, wok := model[r]
				if ok != wok || (ok && got != want) {
					return false
				}
			case 2:
				ok := c.Delete(r.rank, r.addr, r.size)
				_, wok := model[r]
				if ok != wok {
					return false
				}
				delete(model, r)
			}
			if op%97 == 0 && !c.wellFormed() {
				return false
			}
		}
		if c.Len() != len(model) {
			return false
		}
		return c.wellFormed()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: with per-rank capacity k, the cache never holds more than k
// entries per rank and total evictions equal insertions minus live entries.
func TestPropertyCapacityRespected(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		k := 1 + rng.Intn(8)
		c := New[int](2, k, nil)
		inserts := 0
		for op := 0; op < 300; op++ {
			rank := rng.Intn(2)
			addr := mem.Addr(rng.Intn(64) * 64)
			if _, ok := c.Get(rank, addr, 64); !ok {
				c.Put(rank, addr, 64, op)
				inserts++
			}
			if c.RankLen(rank) > k {
				return false
			}
		}
		if int(c.Evictions) != inserts-c.Len() {
			return false
		}
		return c.wellFormed()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestAVLStaysBalancedUnderSequentialInserts(t *testing.T) {
	c := New[int](1, 0, nil)
	for i := 0; i < 4096; i++ {
		c.Put(0, mem.Addr(i*64), 64, i)
	}
	s := &c.shards[0]
	if h := height(s.root); h > 14 { // 1.44*log2(4096) ~ 17; AVL of 4096 <= 14..16
		t.Fatalf("tree height %d too large for 4096 nodes", h)
	}
	if !c.wellFormed() {
		t.Fatal("invariants broken")
	}
}
