package regcache

import "repro/internal/mem"

// key orders cache entries by (address, size), matching the paper's BST
// "indexed by memory address ... queried using the address and size".
type key struct {
	addr mem.Addr
	size int
}

func (a key) less(b key) bool {
	if a.addr != b.addr {
		return a.addr < b.addr
	}
	return a.size < b.size
}

// node is an AVL tree node. The tree is the second level of the cache
// (the first level is the rank-indexed array).
type node[V any] struct {
	k           key
	v           V
	left, right *node[V]
	height      int

	// LRU chain links (per-rank).
	prev, next *node[V]
}

func height[V any](n *node[V]) int {
	if n == nil {
		return 0
	}
	return n.height
}

func fix[V any](n *node[V]) *node[V] {
	n.height = 1 + max(height(n.left), height(n.right))
	switch bf := height(n.left) - height(n.right); {
	case bf > 1:
		if height(n.left.left) < height(n.left.right) {
			n.left = rotateLeft(n.left)
		}
		return rotateRight(n)
	case bf < -1:
		if height(n.right.right) < height(n.right.left) {
			n.right = rotateRight(n.right)
		}
		return rotateLeft(n)
	}
	return n
}

func rotateRight[V any](n *node[V]) *node[V] {
	l := n.left
	n.left = l.right
	l.right = n
	n.height = 1 + max(height(n.left), height(n.right))
	l.height = 1 + max(height(l.left), height(l.right))
	return l
}

func rotateLeft[V any](n *node[V]) *node[V] {
	r := n.right
	n.right = r.left
	r.left = n
	n.height = 1 + max(height(n.left), height(n.right))
	r.height = 1 + max(height(r.left), height(r.right))
	return r
}

func insert[V any](n *node[V], nn *node[V]) *node[V] {
	if n == nil {
		nn.height = 1
		return nn
	}
	switch {
	case nn.k.less(n.k):
		n.left = insert(n.left, nn)
	case n.k.less(nn.k):
		n.right = insert(n.right, nn)
	default:
		n.v = nn.v // replace in place
		return n
	}
	return fix(n)
}

func find[V any](n *node[V], k key) *node[V] {
	for n != nil {
		switch {
		case k.less(n.k):
			n = n.left
		case n.k.less(k):
			n = n.right
		default:
			return n
		}
	}
	return nil
}

// remove deletes the node with key k. Node identity is preserved for all
// surviving entries (the successor is spliced, not copied), so the LRU chain
// maintained by the cache never needs relinking here.
func remove[V any](n *node[V], k key) *node[V] {
	if n == nil {
		return nil
	}
	switch {
	case k.less(n.k):
		n.left = remove(n.left, k)
	case n.k.less(k):
		n.right = remove(n.right, k)
	default:
		if n.left == nil {
			return n.right
		}
		if n.right == nil {
			return n.left
		}
		// Detach the in-order successor struct and splice it in place of n.
		var s *node[V]
		n.right, s = detachMin(n.right)
		s.left, s.right = n.left, n.right
		n.left, n.right = nil, nil
		return fix(s)
	}
	return fix(n)
}

// detachMin removes and returns the minimum node of the subtree.
func detachMin[V any](n *node[V]) (rest, min *node[V]) {
	if n.left == nil {
		return n.right, n
	}
	n.left, min = detachMin(n.left)
	return fix(n), min
}

func treeSize[V any](n *node[V]) int {
	if n == nil {
		return 0
	}
	return 1 + treeSize(n.left) + treeSize(n.right)
}

// checkAVL verifies BST ordering and AVL balance; used by tests.
func checkAVL[V any](n *node[V], lo, hi *key) bool {
	if n == nil {
		return true
	}
	if lo != nil && !lo.less(n.k) {
		return false
	}
	if hi != nil && !n.k.less(*hi) {
		return false
	}
	if bf := height(n.left) - height(n.right); bf < -1 || bf > 1 {
		return false
	}
	if n.height != 1+max(height(n.left), height(n.right)) {
		return false
	}
	return checkAVL(n.left, lo, &n.k) && checkAVL(n.right, &n.k, hi)
}
