// Package regcache implements the registration caches of Section VII-B of
// the paper: a two-level structure with a rank-indexed array at the first
// level ("there is only a finite number of ranks allowed in a communicator")
// and a balanced binary search tree keyed by (buffer address, size) at the
// second level.
//
// The same structure backs three caches in the framework:
//
//   - the host-side GVMI cache (rank = mapped DPU proxy; value = mkey info),
//   - the DPU-side cross-registration cache (rank = source host rank;
//     value = mkey2),
//   - the IB registration cache (value = lkey/rkey MR).
//
// Values are opaque to the cache. An optional per-rank capacity enables LRU
// eviction with a callback (used to deregister evicted regions).
package regcache

import (
	"repro/internal/mem"
	"repro/internal/metrics"
)

// Cache is a rank-indexed array of AVL trees with optional per-rank LRU
// eviction.
type Cache[V any] struct {
	shards  []shard[V]
	perRank int // 0 = unbounded
	onEvict func(V)

	// Stats
	Hits      int64
	Misses    int64
	Evictions int64

	// Metric handles; nil (inert) unless Instrument attached a registry.
	mHits, mMisses, mEvicts *metrics.Counter
}

// Instrument binds the cache's hit/miss/evict counters to a metrics
// registry under (layer "regcache", entity). Nil-safe: a nil registry
// leaves the cache uninstrumented.
func (c *Cache[V]) Instrument(m *metrics.Registry, entity string) {
	if !m.Enabled() {
		return
	}
	c.mHits = m.Counter("regcache", entity, "hits")
	c.mMisses = m.Counter("regcache", entity, "misses")
	c.mEvicts = m.Counter("regcache", entity, "evictions")
}

type shard[V any] struct {
	root       *node[V]
	n          int
	head, tail *node[V] // LRU chain: head = most recently used
}

// New creates a cache for numRanks ranks. perRank bounds each rank's entry
// count (0 = unbounded); onEvict, if non-nil, is called with each evicted
// value.
func New[V any](numRanks, perRank int, onEvict func(V)) *Cache[V] {
	return &Cache[V]{shards: make([]shard[V], numRanks), perRank: perRank, onEvict: onEvict}
}

// NumRanks returns the size of the first-level array.
func (c *Cache[V]) NumRanks() int { return len(c.shards) }

// Len returns the total number of cached entries.
func (c *Cache[V]) Len() int {
	total := 0
	for i := range c.shards {
		total += c.shards[i].n
	}
	return total
}

func (s *shard[V]) unlink(n *node[V]) {
	if n.prev != nil {
		n.prev.next = n.next
	} else if s.head == n {
		s.head = n.next
	}
	if n.next != nil {
		n.next.prev = n.prev
	} else if s.tail == n {
		s.tail = n.prev
	}
	n.prev, n.next = nil, nil
}

func (s *shard[V]) pushFront(n *node[V]) {
	n.prev, n.next = nil, s.head
	if s.head != nil {
		s.head.prev = n
	}
	s.head = n
	if s.tail == nil {
		s.tail = n
	}
}

// Get looks up (rank, addr, size) and marks the entry most recently used.
func (c *Cache[V]) Get(rank int, addr mem.Addr, size int) (V, bool) {
	s := &c.shards[rank]
	n := find(s.root, key{addr, size})
	if n == nil {
		c.Misses++
		c.mMisses.Inc()
		var zero V
		return zero, false
	}
	c.Hits++
	c.mHits.Inc()
	s.unlink(n)
	s.pushFront(n)
	return n.v, true
}

// Put inserts or replaces the entry for (rank, addr, size).
func (c *Cache[V]) Put(rank int, addr mem.Addr, size int, v V) {
	s := &c.shards[rank]
	k := key{addr, size}
	if n := find(s.root, k); n != nil {
		n.v = v
		s.unlink(n)
		s.pushFront(n)
		return
	}
	nn := &node[V]{k: k, v: v}
	s.root = insert(s.root, nn)
	s.pushFront(nn)
	s.n++
	if c.perRank > 0 && s.n > c.perRank {
		c.evictLRU(s)
	}
}

// GetOrCreate returns the cached value for (rank, addr, size), or installs
// create()'s result on a miss. hit reports whether the value was cached.
func (c *Cache[V]) GetOrCreate(rank int, addr mem.Addr, size int, create func() V) (v V, hit bool) {
	if v, ok := c.Get(rank, addr, size); ok {
		return v, true
	}
	v = create()
	c.Put(rank, addr, size, v)
	return v, false
}

func (c *Cache[V]) evictLRU(s *shard[V]) {
	t := s.tail
	if t == nil {
		return
	}
	s.unlink(t)
	s.root = remove(s.root, t.k)
	s.n--
	c.Evictions++
	c.mEvicts.Inc()
	if c.onEvict != nil {
		c.onEvict(t.v)
	}
}

// Delete removes the entry for (rank, addr, size) if present, without
// invoking the eviction callback.
func (c *Cache[V]) Delete(rank int, addr mem.Addr, size int) bool {
	s := &c.shards[rank]
	n := find(s.root, key{addr, size})
	if n == nil {
		return false
	}
	s.unlink(n)
	s.root = remove(s.root, n.k)
	s.n--
	return true
}

// Clear drops every entry, invoking the eviction callback for each.
func (c *Cache[V]) Clear() {
	for i := range c.shards {
		s := &c.shards[i]
		for s.tail != nil {
			c.evictLRU(s)
		}
		// evictLRU counts these as evictions; that is intended (resources
		// are released through the same path).
	}
}

// RankLen returns the number of entries cached for one rank.
func (c *Cache[V]) RankLen(rank int) int { return c.shards[rank].n }

// wellFormed verifies internal invariants (tests only).
func (c *Cache[V]) wellFormed() bool {
	for i := range c.shards {
		s := &c.shards[i]
		if !checkAVL(s.root, nil, nil) {
			return false
		}
		if treeSize(s.root) != s.n {
			return false
		}
		// Chain length matches and is consistent.
		cnt := 0
		for n := s.head; n != nil; n = n.next {
			if n.next != nil && n.next.prev != n {
				return false
			}
			cnt++
		}
		if cnt != s.n {
			return false
		}
	}
	return true
}
