package tenant

import (
	"reflect"
	"testing"

	"repro/internal/metrics"
	"repro/internal/pattern"
)

// twoJobs is the canonical contended configuration: one latency-bound job
// and one bulk job sharing a single proxy ARM worker per node.
func twoJobs(fifo bool, fgPolicy string) Config {
	return Config{
		Nodes:         2,
		ProxiesPerDPU: 1,
		FIFO:          fifo,
		Jobs: []JobSpec{
			{Name: "fg", PPN: 2, Policy: fgPolicy, Weight: 1,
				Workload: Workload{Kind: Latency, Iters: 8}},
			{Name: "bg", PPN: 2, Policy: "gvmi", Weight: 1,
				Workload: Workload{Kind: Bulk, Iters: 4}},
		},
	}
}

// The whole point of a discrete-event simulation: identical configs give
// identical results, run after run, including per-iteration latencies.
func TestRunDeterministic(t *testing.T) {
	a, err := Run(twoJobs(false, "gvmi"))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(twoJobs(false, "gvmi"))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("two identical runs diverged:\n%+v\n%+v", a, b)
	}
	for _, jr := range a.Jobs {
		if len(jr.Iters) == 0 || jr.P50 <= 0 || jr.P99 < jr.P50 || jr.Max < jr.P99 {
			t.Fatalf("job %s: implausible latency summary %+v", jr.Name, jr)
		}
		if jr.Bytes <= 0 || jr.Finish <= 0 {
			t.Fatalf("job %s: no work accounted: %+v", jr.Name, jr)
		}
	}
	if a.Makespan <= 0 || a.GoodputGBps() <= 0 {
		t.Fatalf("implausible aggregate: %+v", a)
	}
}

// Weighted fair scheduling must shift proxy service toward the heavier
// tenant. Two perfectly symmetric closed-loop bulk jobs saturate the
// shared port, so per-iteration durations equalize in steady state — the
// observable effect of priority is phase: whose RDMA lands on the wire
// first each round, and therefore who finishes first. With equal weights
// every pass tie breaks toward the lower tenant index, so job "a" leads —
// which is exactly why weighting "a" is a no-op, and why the probe is to
// weight "b": the disadvantaged tenant must overtake the tie-break.
func TestFairnessWeightsShiftService(t *testing.T) {
	base := func() Config {
		return Config{
			Nodes:         2,
			ProxiesPerDPU: 1,
			Jobs: []JobSpec{
				{Name: "a", PPN: 2, Policy: "gvmi", Weight: 1, Workload: Workload{Kind: Bulk, Iters: 4}},
				{Name: "b", PPN: 2, Policy: "gvmi", Weight: 1, Workload: Workload{Kind: Bulk, Iters: 4}},
			},
		}
	}
	equal, err := Run(base())
	if err != nil {
		t.Fatal(err)
	}
	if ae, be := equal.Job("a"), equal.Job("b"); ae.Finish >= be.Finish {
		t.Errorf("equal weights should tie-break toward job a: a finish=%d b finish=%d", ae.Finish, be.Finish)
	}
	heavyB := base()
	heavyB.Jobs[1].Weight = 8
	heavy, err := Run(heavyB)
	if err != nil {
		t.Fatal(err)
	}
	af, bf := heavy.Job("a"), heavy.Job("b")
	if bf.Finish >= af.Finish {
		t.Errorf("weight 8 did not move job b ahead of a: a finish=%d b finish=%d", af.Finish, bf.Finish)
	}
	if be := equal.Job("b"); bf.Finish >= be.Finish {
		t.Errorf("weight 8 did not improve job b's finish: equal=%d weighted=%d", be.Finish, bf.Finish)
	}
	// Weighting the tenant that already wins every tie is a no-op on a
	// symmetric workload — byte-identical results, by design.
	heavyA := base()
	heavyA.Jobs[0].Weight = 8
	same, err := Run(heavyA)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(same, equal) {
		t.Errorf("weighting the already-first tenant changed a symmetric run")
	}
}

// FIFO is the no-isolation fallback: it must run (deterministically) and
// expose the same per-tenant accounting series.
func TestFIFOFallback(t *testing.T) {
	m := metrics.NewRegistry()
	cfg := twoJobs(true, "gvmi")
	cfg.Metrics = m
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Makespan <= 0 {
		t.Fatalf("no progress under FIFO: %+v", a)
	}
	snap := m.Snapshot()
	for _, tenant := range []string{"fg", "bg"} {
		if v := snap.CounterValueT("core", "proxy0", "tenant_dispatches", tenant); v <= 0 {
			t.Errorf("no dispatches attributed to %s under FIFO", tenant)
		}
	}
}

// Per-tenant congestion accounting must land in the registry: dispatch and
// busy counters per tenant on the shared proxy, cross-tenant wait
// histograms, and tenant-labelled policy decisions.
func TestTenantMetricsAttribution(t *testing.T) {
	m := metrics.NewRegistry()
	cfg := twoJobs(false, "gvmi")
	cfg.Metrics = m
	if _, err := Run(cfg); err != nil {
		t.Fatal(err)
	}
	snap := m.Snapshot()
	for _, tenant := range []string{"fg", "bg"} {
		if v := snap.CounterValueT("core", "proxy0", "tenant_dispatches", tenant); v <= 0 {
			t.Errorf("tenant %s: no dispatches attributed", tenant)
		}
		if v := snap.CounterValueT("core", "proxy0", "tenant_busy_ns", tenant); v <= 0 {
			t.Errorf("tenant %s: no proxy busy time attributed", tenant)
		}
		if v := snap.CounterValueT("policy", "fixed-gvmi", "decide_gvmi", tenant); v <= 0 {
			t.Errorf("tenant %s: no tenant-labelled policy decisions", tenant)
		}
	}
	// The bulk job keeps the proxy busy while fg packets sit queued, so fg
	// must have observed cross-tenant head-of-line delay.
	found := false
	for _, h := range snap.Histograms {
		if h.Name == "cross_tenant_wait_ns" && h.Tenant == "fg" && h.Count > 0 {
			found = true
		}
	}
	if !found {
		t.Error("fg recorded no cross-tenant wait observations")
	}
}

// The crossover the tenants bench locates: under background bulk load on a
// single shared proxy, a fixed offload path loses to host-direct for
// latency-bound traffic, while the adaptive policy routes the small
// messages around the saturated DPU and exactly ties host-direct (its
// decisions are size-deterministic and cost no virtual time).
func TestAdaptiveRoutesAroundLoadedProxy(t *testing.T) {
	p99 := map[string][]int64{}
	for _, pol := range []string{"gvmi", "hostdirect", "adaptive"} {
		res, err := Run(twoJobs(false, pol))
		if err != nil {
			t.Fatal(err)
		}
		fg := res.Job("fg")
		p99[pol] = []int64{int64(fg.P99), int64(fg.P50)}
	}
	if p99["gvmi"][0] <= p99["hostdirect"][0] {
		t.Errorf("loaded proxy should make fixed offload lose: gvmi p99=%d hostdirect p99=%d",
			p99["gvmi"][0], p99["hostdirect"][0])
	}
	if !reflect.DeepEqual(p99["adaptive"], p99["hostdirect"]) {
		t.Errorf("adaptive (small-msg => host) should tie hostdirect exactly: adaptive=%v hostdirect=%v",
			p99["adaptive"], p99["hostdirect"])
	}
}

// Pattern workloads replay a pattern.Spec through group offload on the
// shared framework; excess ranks idle.
func TestPatternWorkload(t *testing.T) {
	spec := pattern.Ring(4, 32<<10)
	cfg := Config{
		Nodes:         2,
		ProxiesPerDPU: 1,
		Jobs: []JobSpec{
			{Name: "ring", PPN: 2, Policy: "gvmi",
				Workload: Workload{Kind: Pattern, Spec: spec, Iters: 3}},
			{Name: "bg", PPN: 2, Policy: "gvmi",
				Workload: Workload{Kind: Bulk, Iters: 2}},
		},
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ring := res.Job("ring")
	if ring.Bytes <= 0 || len(ring.Iters) == 0 {
		t.Fatalf("pattern job did no work: %+v", ring)
	}
}

// Config validation: bad configs must error, not deadlock or panic.
func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{Nodes: 2},
		{Nodes: 2, Jobs: []JobSpec{{Name: "", PPN: 1, Policy: "gvmi"}}},
		{Nodes: 2, Jobs: []JobSpec{{Name: "a", PPN: 0, Policy: "gvmi"}}},
		{Nodes: 2, Jobs: []JobSpec{{Name: "a", PPN: 1, Policy: "nope"}}},
		{Nodes: 2, Jobs: []JobSpec{{Name: "a", PPN: 1, Policy: "gvmi"}, {Name: "a", PPN: 1, Policy: "gvmi"}}},
		{Nodes: 2, Jobs: []JobSpec{{Name: "a", PPN: 1, Policy: "bluesmpi"}}},
		{Nodes: 2, Jobs: []JobSpec{{Name: "a", PPN: 1, Policy: "gvmi", Workload: Workload{Kind: Pattern}}}},
		{Nodes: 2, Jobs: []JobSpec{{Name: "a", PPN: 1, Policy: "gvmi",
			Workload: Workload{Kind: Pattern, Spec: pattern.Ring(8, 1<<10)}}}},
	}
	for i, cfg := range bad {
		if _, err := Run(cfg); err == nil {
			t.Errorf("config %d: expected error, got none", i)
		}
	}
}
