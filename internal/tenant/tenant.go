// Package tenant is the multi-tenant serving layer: it runs N concurrent
// jobs — each with an independent MPI world, workload, and offload-policy
// engine — on one shared simulated cluster, sharing fabric ports and the
// proxy ARM cores inside a single deterministic simulation.
//
// The paper evaluates one job at a time; the quantitative-offloading
// literature's core caveat is that offload only pays off while the DPU is
// not the bottleneck. This layer makes that measurable: jobs are placed
// side by side on every node (each job owns a slice of the node's rank
// slots), the shared framework attributes proxy work to tenants
// (core.Tenancy), and the figure of merit becomes aggregate goodput and
// per-tenant tail latency instead of single-job latency.
//
// Rank spaces: each job sees dense job-local MPI ranks 0..nr-1 through a
// placed world (mpi.NewPlacedWorld); the shared framework speaks global
// ranks. The per-host peer table (core.Host.SetPeers) translates at the
// API boundary, so job code is identical to single-tenant code.
package tenant

import (
	"fmt"
	"sort"

	"repro/internal/baseline"
	"repro/internal/cluster"
	"repro/internal/coll"
	"repro/internal/core"
	"repro/internal/datapath"
	"repro/internal/mem"
	"repro/internal/metrics"
	"repro/internal/mpi"
	"repro/internal/pattern"
	"repro/internal/policy"
	"repro/internal/sim"
	"repro/internal/span"
	"repro/internal/telemetry"
)

// WorkloadKind selects a job's traffic shape.
type WorkloadKind int

const (
	// Latency is a small nonblocking alltoall per iteration — the
	// latency-bound foreground traffic whose tail the crossover bench
	// watches.
	Latency WorkloadKind = iota
	// Bulk is a large nonblocking alltoall per iteration — bandwidth-bound
	// background load that keeps the shared proxies busy.
	Bulk
	// Pattern replays an explicit communication pattern (pattern.Spec)
	// through group offload.
	Pattern
)

// String implements fmt.Stringer.
func (k WorkloadKind) String() string {
	switch k {
	case Latency:
		return "latency"
	case Bulk:
		return "bulk"
	case Pattern:
		return "pattern"
	default:
		return fmt.Sprintf("unknown(%d)", int(k))
	}
}

// Workload describes what one job's ranks do.
type Workload struct {
	Kind WorkloadKind
	// Size is the per-peer payload in bytes (collectives). Defaults:
	// 8 KiB for Latency (below the adaptive policy's small-message
	// cutoff), 512 KiB for Bulk.
	Size int
	// Iters is the number of measured iterations (default 10).
	Iters int
	// Warmup iterations precede measurement (default 2; group caches warm
	// and measuring policies probe here).
	Warmup int
	// Spec is the pattern to replay (Kind == Pattern only). Jobs with more
	// ranks than the spec leave the excess idle.
	Spec *pattern.Spec
	// Compute is per-iteration overlapped host compute (Latency/Bulk):
	// each iteration issues the nonblocking alltoall, computes for this
	// long, then waits — the OMB overlap shape. This is where offload
	// pays: a DPU-progressed collective hides under the compute
	// (iteration ≈ max(compute, comm)) while host-progressed paths
	// serialize (≈ compute + comm). 0 keeps the pure-latency loop.
	Compute sim.Time
	// Start delays the job's traffic by this much virtual time: its ranks
	// sleep before their first (warmup) iteration, so the tenant arrives
	// mid-run from the other jobs' point of view. 0 starts at launch —
	// the pre-drift behaviour, bit-exact.
	Start sim.Time
}

// withDefaults fills zero fields.
func (w Workload) withDefaults() Workload {
	if w.Size <= 0 {
		if w.Kind == Bulk {
			w.Size = 512 << 10
		} else {
			w.Size = 8 << 10
		}
	}
	if w.Iters <= 0 {
		w.Iters = 10
	}
	if w.Warmup < 0 {
		w.Warmup = 0
	} else if w.Warmup == 0 {
		w.Warmup = 2
	}
	return w
}

// JobSpec is one tenant job.
type JobSpec struct {
	// Name labels the tenant in metrics, spans and results.
	Name string
	// PPN is the job's ranks per node (every job spans all nodes).
	PPN int
	// Policy names the offload-policy bundle deciding this job's paths
	// (baseline.PolicyBundle; e.g. "gvmi", "hostdirect", "adaptive").
	Policy string
	// Weight is the job's proxy fair-share weight (<= 0 means 1).
	Weight int
	// Workload is the traffic the job runs.
	Workload Workload
	// SLO, when its Objective is set, tracks this job's measured iteration
	// latencies against the objective: per-tenant violation counters and
	// windowed burn-rate gauges land in the run's registry under the "slo"
	// layer (telemetry.SLOTracker). Zero disables tracking.
	SLO telemetry.SLOConfig
}

// Config describes one multi-tenant run.
type Config struct {
	Nodes int
	// ProxiesPerDPU overrides the cluster default (8). Use 1 to make jobs
	// contend for a single shared ARM worker per node — the configuration
	// where fairness and the offload crossover are visible.
	ProxiesPerDPU int
	// FIFO disables weighted fair scheduling on the proxies (arrival-order
	// dispatch; the head-of-line-blocking baseline).
	FIFO bool
	Jobs []JobSpec

	// Metrics / Spans attach observability (free in virtual time).
	Metrics *metrics.Registry
	Spans   *span.Collector
	// Timeline, when non-nil, samples the run's registry into virtual-time
	// buckets (fabric goodput, proxy queue depth, per-tenant HOL wait, SLO
	// burn become time series). Like the other sinks it never consumes
	// virtual time.
	Timeline *telemetry.Recorder
}

// IterSample is one measured iteration of one rank: when it completed (in
// virtual time) and how long it took. Stamped samples let benches window
// latencies around an event — the drift bench splits them at the moment
// background tenants arrive.
type IterSample struct {
	At  sim.Time
	Dur sim.Time
}

// JobResult reports one job of a run.
type JobResult struct {
	Name   string
	Policy string
	// NRanks is the job's world size (Nodes × PPN).
	NRanks int
	// Iters are the pooled per-rank per-iteration completion latencies.
	Iters []sim.Time
	// Samples are the same latencies with completion stamps, pooled
	// rank-major in iteration order (unsorted, deterministic).
	Samples []IterSample
	// P50/P99/Max summarize Iters.
	P50, P99, Max sim.Time
	// Bytes is the job's total moved payload (goodput numerator).
	Bytes int64
	// Finish is the completion time of the job's slowest rank.
	Finish sim.Time
}

// Result reports one multi-tenant run.
type Result struct {
	Jobs []JobResult
	// Makespan is the completion time of the slowest rank of any job.
	Makespan sim.Time
	// Bytes is the aggregate payload moved by all jobs.
	Bytes int64
	// Metrics is the registry the run recorded into: cfg.Metrics when one
	// was attached, otherwise a run-private registry. A registry is always
	// live so feedback policies see the same load signals (proxy
	// queue-depth gauges) whether or not the caller exports metrics —
	// recording is free in virtual time, so results are unchanged.
	Metrics *metrics.Registry
}

// GoodputGBps returns the aggregate goodput (total payload over makespan).
func (r *Result) GoodputGBps() float64 {
	if r.Makespan <= 0 {
		return 0
	}
	return float64(r.Bytes) / float64(r.Makespan)
}

// Job returns a job's result by name (nil if absent).
func (r *Result) Job(name string) *JobResult {
	for i := range r.Jobs {
		if r.Jobs[i].Name == name {
			return &r.Jobs[i]
		}
	}
	return nil
}

// Run executes all jobs concurrently on one shared cluster and framework.
// Everything is deterministic: same config, same result, independent of
// host parallelism (runs share nothing — sweep them with bench.Sweep).
func Run(cfg Config) (*Result, error) {
	if cfg.Nodes <= 0 {
		return nil, fmt.Errorf("tenant: need at least one node")
	}
	if len(cfg.Jobs) == 0 {
		return nil, fmt.Errorf("tenant: need at least one job")
	}
	names := make([]string, len(cfg.Jobs))
	policies := make([]string, len(cfg.Jobs))
	weights := make([]int, len(cfg.Jobs))
	seen := map[string]bool{}
	ppnTotal := 0
	for j, job := range cfg.Jobs {
		if job.Name == "" {
			return nil, fmt.Errorf("tenant: job %d has no name", j)
		}
		if seen[job.Name] {
			return nil, fmt.Errorf("tenant: duplicate job name %q", job.Name)
		}
		seen[job.Name] = true
		if job.PPN <= 0 {
			return nil, fmt.Errorf("tenant: job %q has ppn %d", job.Name, job.PPN)
		}
		if job.Workload.Kind == Pattern {
			if job.Workload.Spec == nil {
				return nil, fmt.Errorf("tenant: job %q: pattern workload without a spec", job.Name)
			}
			if nr := cfg.Nodes * job.PPN; job.Workload.Spec.NRanks > nr {
				return nil, fmt.Errorf("tenant: job %q: pattern needs %d ranks, job has %d",
					job.Name, job.Workload.Spec.NRanks, nr)
			}
		}
		names[j], policies[j], weights[j] = job.Name, job.Policy, job.Weight
		ppnTotal += job.PPN
	}
	coreCfg, err := baseline.SharedCore(policies)
	if err != nil {
		return nil, err
	}

	ccfg := cluster.DefaultConfig(cfg.Nodes, ppnTotal)
	if cfg.ProxiesPerDPU > 0 {
		ccfg.ProxiesPerDPU = cfg.ProxiesPerDPU
	}
	met := cfg.Metrics
	if met == nil {
		// Always record: the feedback policy's gauge-based drift trigger
		// reads proxy backlog out of the registry, and its decisions must
		// not depend on whether the caller asked for a metrics export.
		// Recording is free in virtual time (guard-tested bit-exact), so
		// every other result is unchanged.
		met = metrics.NewRegistry()
	}
	ccfg.Metrics = met
	ccfg.Spans = cfg.Spans
	ccfg.Timeline = cfg.Timeline
	cl := cluster.New(ccfg)

	// Placement: job j owns node-local slots [off, off+ppn) on every node;
	// its job-local rank l lives on node l/ppn at global rank
	// node*ppnTotal + off + l%ppn.
	worlds := make([]*mpi.World, len(cfg.Jobs))
	peers := make([][]int, len(cfg.Jobs))
	tenantOf := make([]int, ccfg.NP())
	sites := make([]*cluster.Site, ccfg.NP())
	off := 0
	for j, job := range cfg.Jobs {
		nr := cfg.Nodes * job.PPN
		nodeOf := make([]int, nr)
		peers[j] = make([]int, nr)
		for l := 0; l < nr; l++ {
			node := l / job.PPN
			g := node*ppnTotal + off + l%job.PPN
			nodeOf[l] = node
			peers[j][l] = g
			tenantOf[g] = j
		}
		worlds[j] = mpi.NewPlacedWorld(cl, mpi.DefaultConfig(), fmt.Sprintf("%s.", job.Name), nodeOf)
		for l := 0; l < nr; l++ {
			sites[peers[j][l]] = worlds[j].Rank(l).Site()
		}
		off += job.PPN
	}

	fw := core.New(cl, coreCfg, sites)
	fw.SetTenancy(&core.Tenancy{TenantOf: tenantOf, Names: names, Weights: weights, FIFO: cfg.FIFO})
	fw.Start()

	res := &Result{Jobs: make([]JobResult, len(cfg.Jobs)), Metrics: met}
	perRank := make([][][]IterSample, len(cfg.Jobs))
	finish := make([][]sim.Time, len(cfg.Jobs))
	for j, job := range cfg.Jobs {
		j, job := j, job
		w := job.Workload.withDefaults()
		nr := cfg.Nodes * job.PPN
		jr := &res.Jobs[j]
		jr.Name, jr.Policy, jr.NRanks = job.Name, job.Policy, nr
		perRank[j] = make([][]IterSample, nr)
		finish[j] = make([]sim.Time, nr)

		bundle, err := baseline.PolicyBundle(job.Policy)
		if err != nil {
			return nil, err
		}
		// One engine per job: decisions and measuring-policy tables are
		// tenant-scoped (jobs see different proxy load), and the decision
		// counters carry the tenant label.
		eng := policy.NewEngineFor(bundle.New(), ccfg.Metrics, job.Name)
		// One tracker per job (nil when the job sets no objective): all
		// ranks' measured iterations pool into the same tenant-labelled
		// series, matching how JobResult pools Iters.
		slo := telemetry.NewSLOTracker(met, job.Name, job.SLO)

		worlds[j].Launch(func(r *mpi.Rank) {
			h := fw.Host(peers[j][r.RankID()])
			h.Bind(r.Proc())
			h.SetPeers(peers[j])
			switch w.Kind {
			case Pattern:
				perRank[j][r.RankID()] = runPattern(r, h, eng, w, slo, jr)
			default:
				ops := coll.NewPolicyOps(job.Policy, r, h, eng)
				perRank[j][r.RankID()] = runAlltoall(r, ops, w, slo)
			}
			finish[j][r.RankID()] = r.Now()
		})
	}

	cl.K.Run()
	if n := len(cl.K.Deadlocked); n > 0 {
		return nil, fmt.Errorf("tenant: deadlocked with %d blocked processes", n)
	}
	fw.Stop()
	cl.K.Run()
	cl.K.Shutdown()

	for j, job := range cfg.Jobs {
		w := job.Workload.withDefaults()
		jr := &res.Jobs[j]
		for _, ds := range perRank[j] {
			jr.Samples = append(jr.Samples, ds...)
			for _, s := range ds {
				jr.Iters = append(jr.Iters, s.Dur)
			}
		}
		sort.Slice(jr.Iters, func(a, b int) bool { return jr.Iters[a] < jr.Iters[b] })
		jr.P50 = metrics.Percentile(jr.Iters, 50)
		jr.P99 = metrics.Percentile(jr.Iters, 99)
		jr.Max = metrics.Percentile(jr.Iters, 100)
		for _, t := range finish[j] {
			if t > jr.Finish {
				jr.Finish = t
			}
		}
		if w.Kind != Pattern {
			// Every rank sends Size to each of nr-1 peers per iteration.
			jr.Bytes = int64(w.Iters) * int64(jr.NRanks) * int64(jr.NRanks-1) * int64(w.Size)
		}
		if jr.Finish > res.Makespan {
			res.Makespan = jr.Finish
		}
		res.Bytes += jr.Bytes
	}
	return res, nil
}

// runAlltoall runs the Latency/Bulk workload on one rank: an optional
// arrival delay, then warmup + measured nonblocking alltoalls, returning
// the stamped per-iteration latencies.
func runAlltoall(r *mpi.Rank, ops coll.Ops, w Workload, slo *telemetry.SLOTracker) []IterSample {
	if w.Start > 0 {
		r.Proc().Sleep(w.Start)
	}
	np := r.Size()
	send := r.Alloc(w.Size * np)
	recv := r.Alloc(w.Size * np)
	iter := func() {
		q := ops.Ialltoall(0, send.Addr(), recv.Addr(), w.Size)
		if w.Compute > 0 {
			r.Compute(w.Compute)
		}
		ops.Wait(q)
	}
	for i := 0; i < w.Warmup; i++ {
		iter()
	}
	ds := make([]IterSample, 0, w.Iters)
	for i := 0; i < w.Iters; i++ {
		t0 := r.Now()
		iter()
		d := r.Now() - t0
		slo.Observe(d)
		ds = append(ds, IterSample{At: r.Now(), Dur: d})
	}
	return ds
}

// runPattern replays the job's pattern.Spec through group offload (the
// pattern.Run execution model on a shared framework): ranks beyond the
// spec's size idle, host-direct decisions clamp to the framework's default
// path because patterns always execute on proxies.
func runPattern(r *mpi.Rank, h *core.Host, eng *policy.Engine, w Workload, slo *telemetry.SLOTracker, jr *JobResult) []IterSample {
	spec := w.Spec
	if r.RankID() >= spec.NRanks {
		return nil
	}
	if w.Start > 0 {
		r.Proc().Sleep(w.Start)
	}
	ops := spec.RankOps(r.RankID())
	bufs := make([]*mem.Buffer, len(ops))
	maxSize := 0
	for i, op := range ops {
		if op.Type == core.OpSend || op.Type == core.OpRecv {
			bufs[i] = r.Alloc(op.Size)
		}
		if op.Size > maxSize {
			maxSize = op.Size
		}
		if op.Type == core.OpSend {
			jr.Bytes += int64(op.Size) * int64(w.Iters)
		}
	}
	groups := make(map[datapath.Kind]*core.GroupRequest)
	groupFor := func(k datapath.Kind) *core.GroupRequest {
		g := groups[k]
		if g == nil {
			g = h.GroupStartVia(k)
			for i, op := range ops {
				switch op.Type {
				case core.OpSend:
					g.Send(bufs[i].Addr(), op.Size, op.Peer, op.Tag)
				case core.OpRecv:
					g.Recv(bufs[i].Addr(), op.Size, op.Peer, op.Tag)
				case core.OpBarrier:
					g.LocalBarrier()
				}
			}
			g.End()
			groups[k] = g
		}
		return g
	}
	ds := make([]IterSample, 0, w.Iters)
	for c := 0; c < w.Warmup+w.Iters; c++ {
		q := policy.Request{Class: policy.ClassGroup, Size: maxSize, Call: c}
		kind := eng.Decide(q).Path
		if kind == datapath.KindHostDirect {
			kind = h.DefaultPath()
		}
		g := groupFor(kind)
		t0 := r.Now()
		h.GroupCall(g)
		h.GroupWait(g)
		eng.Observe(q, kind, r.Now()-t0)
		if c >= w.Warmup {
			d := r.Now() - t0
			slo.Observe(d)
			ds = append(ds, IterSample{At: r.Now(), Dur: d})
		}
	}
	return ds
}
