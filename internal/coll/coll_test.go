package coll

import (
	"bytes"
	"fmt"
	"testing"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/mpi"
	"repro/internal/sim"
)

// launch builds a cluster+world+framework and runs main with both backends
// available.
func launch(t *testing.T, nodes, ppn int, fcfg core.Config, main func(r *mpi.Rank, h *core.Host)) {
	t.Helper()
	cl := cluster.New(cluster.DefaultConfig(nodes, ppn))
	w := mpi.NewWorld(cl, mpi.DefaultConfig())
	sites := make([]*cluster.Site, cl.Cfg.NP())
	for i := range sites {
		sites[i] = w.Rank(i).Site()
	}
	fw := core.New(cl, fcfg, sites)
	fw.Start()
	w.Launch(func(r *mpi.Rank) {
		h := fw.Host(r.RankID())
		h.Bind(r.Proc())
		main(r, h)
	})
	cl.K.Run()
	if len(cl.K.Deadlocked) > 0 {
		t.Fatalf("deadlocked: %d procs", len(cl.K.Deadlocked))
	}
}

func fillBlocks(r *mpi.Rank, buf []byte, per int) {
	np := r.Size()
	for dst := 0; dst < np; dst++ {
		for i := 0; i < per; i++ {
			buf[dst*per+i] = byte(r.RankID()*31 + dst*7 + i)
		}
	}
}

func checkBlocks(t *testing.T, r *mpi.Rank, buf []byte, per int) {
	t.Helper()
	for src := 0; src < r.Size(); src++ {
		for i := 0; i < per; i++ {
			want := byte(src*31 + r.RankID()*7 + i)
			if buf[src*per+i] != want {
				t.Errorf("rank %d: block %d byte %d = %d, want %d",
					r.RankID(), src, i, buf[src*per+i], want)
				return
			}
		}
	}
}

func TestOffloadIalltoallCorrectAndCached(t *testing.T) {
	const per = 4 << 10
	launch(t, 2, 2, core.DefaultConfig(), func(r *mpi.Rank, h *core.Host) {
		ops := NewOffloadOps("proposed", r, h)
		np := r.Size()
		send, recv := r.Alloc(np*per), r.Alloc(np*per)
		for it := 0; it < 3; it++ {
			fillBlocks(r, send.Bytes(), per)
			q := ops.Ialltoall(0, send.Addr(), recv.Addr(), per)
			ops.Wait(q)
			checkBlocks(t, r, recv.Bytes(), per)
			r.Barrier()
		}
	})
}

func TestHostIalltoallCorrect(t *testing.T) {
	const per = 4 << 10
	launch(t, 2, 2, core.DefaultConfig(), func(r *mpi.Rank, h *core.Host) {
		ops := NewHostOps("intelmpi", r)
		np := r.Size()
		send, recv := r.Alloc(np*per), r.Alloc(np*per)
		fillBlocks(r, send.Bytes(), per)
		q := ops.Ialltoall(0, send.Addr(), recv.Addr(), per)
		for !ops.Test(q) {
			r.Compute(5 * sim.Microsecond)
		}
		checkBlocks(t, r, recv.Bytes(), per)
	})
}

func TestOffloadIbcastSegmentsCorrectly(t *testing.T) {
	// Payload large enough to split into multiple ring segments.
	const size = 1 << 20
	for _, root := range []int{0, 2} {
		root := root
		t.Run(fmt.Sprint("root", root), func(t *testing.T) {
			launch(t, 4, 1, core.DefaultConfig(), func(r *mpi.Rank, h *core.Host) {
				ops := NewOffloadOps("proposed", r, h)
				ops.SegmentSize = 128 << 10
				buf := r.Alloc(size)
				if r.RankID() == root {
					for i := range buf.Bytes() {
						buf.Bytes()[i] = byte(i * 13)
					}
				}
				q := ops.Ibcast(1, buf.Addr(), size, root)
				r.Compute(100 * sim.Microsecond)
				ops.Wait(q)
				for i := 0; i < size; i += 4099 {
					if buf.Bytes()[i] != byte(i*13) {
						t.Errorf("rank %d byte %d wrong", r.RankID(), i)
						return
					}
				}
			})
		})
	}
}

func TestOffloadIbcastMaxSegmentsBoundsEntries(t *testing.T) {
	const size = 64 << 20 // would be 256 segments at 256 KiB
	launch(t, 2, 1, core.DefaultConfig(), func(r *mpi.Rank, h *core.Host) {
		ops := NewOffloadOps("proposed", r, h)
		q := ops.Ibcast(0, r.Alloc(size).Addr(), size, 0)
		ops.Wait(q)
		g := q.(*offloadReq).g
		if n := len(g.Ops()); n > 3*ops.MaxSegments {
			t.Errorf("rank %d: %d group entries, want <= %d", r.RankID(), n, 3*ops.MaxSegments)
		}
	})
}

func TestOffloadP2PIntraNodeFallsBackToMPI(t *testing.T) {
	const size = 64 << 10
	launch(t, 1, 2, core.DefaultConfig(), func(r *mpi.Rank, h *core.Host) {
		p2p := NewOffloadP2P("proposed", r, h)
		buf := r.Alloc(size)
		if r.RankID() == 0 {
			for i := range buf.Bytes() {
				buf.Bytes()[i] = byte(i)
			}
			q := p2p.Isend(buf.Addr(), size, 1, 0)
			if _, ok := q.(*mpi.Request); !ok {
				t.Errorf("intra-node send should be an MPI request, got %T", q)
			}
			p2p.WaitAll([]Request{q})
		} else {
			q := p2p.Irecv(buf.Addr(), size, 0, 0)
			p2p.WaitAll([]Request{q})
			if buf.Bytes()[100] != 100 {
				t.Error("payload wrong")
			}
		}
	})
}

func TestOffloadP2PInterNodeUsesFramework(t *testing.T) {
	const size = 8 << 10
	launch(t, 2, 1, core.DefaultConfig(), func(r *mpi.Rank, h *core.Host) {
		p2p := NewOffloadP2P("proposed", r, h)
		buf := r.Alloc(size)
		if r.RankID() == 0 {
			q := p2p.Isend(buf.Addr(), size, 1, 0)
			if _, ok := q.(*core.OffloadRequest); !ok {
				t.Errorf("inter-node send should be offloaded, got %T", q)
			}
			p2p.WaitAll([]Request{q})
		} else {
			p2p.WaitAll([]Request{p2p.Irecv(buf.Addr(), size, 0, 0)})
		}
	})
}

func TestMixedWaitAll(t *testing.T) {
	// One intra-node (MPI) and one inter-node (offload) request in a single
	// WaitAll — the stencil's everyday situation.
	const size = 32 << 10
	launch(t, 2, 2, core.DefaultConfig(), func(r *mpi.Rank, h *core.Host) {
		p2p := NewOffloadP2P("proposed", r, h)
		a, b := r.Alloc(size), r.Alloc(size)
		switch r.RankID() {
		case 0: // node 0; peer 1 intra, peer 2 inter
			for i := range a.Bytes() {
				a.Bytes()[i] = 1
				b.Bytes()[i] = 2
			}
			p2p.WaitAll([]Request{
				p2p.Isend(a.Addr(), size, 1, 0),
				p2p.Isend(b.Addr(), size, 2, 0),
			})
		case 1:
			p2p.WaitAll([]Request{p2p.Irecv(a.Addr(), size, 0, 0)})
			if a.Bytes()[0] != 1 {
				t.Error("intra payload wrong")
			}
		case 2:
			p2p.WaitAll([]Request{p2p.Irecv(b.Addr(), size, 0, 0)})
			if b.Bytes()[0] != 2 {
				t.Error("inter payload wrong")
			}
		}
	})
}

func TestTwoSlotsAreIndependent(t *testing.T) {
	const per = 2 << 10
	launch(t, 2, 1, core.DefaultConfig(), func(r *mpi.Rank, h *core.Host) {
		ops := NewOffloadOps("proposed", r, h)
		np := r.Size()
		sa, ra := r.Alloc(np*per), r.Alloc(np*per)
		sb, rb := r.Alloc(np*per), r.Alloc(np*per)
		fillBlocks(r, sa.Bytes(), per)
		for i := range sb.Bytes() {
			sb.Bytes()[i] = 0xEE
		}
		qa := ops.Ialltoall(0, sa.Addr(), ra.Addr(), per)
		qb := ops.Ialltoall(1, sb.Addr(), rb.Addr(), per)
		ops.Wait(qb)
		ops.Wait(qa)
		checkBlocks(t, r, ra.Bytes(), per)
		if !bytes.Equal(rb.Bytes()[:per], bytes.Repeat([]byte{0xEE}, per)) {
			t.Error("slot-1 payload mixed up")
		}
	})
}

func TestHostOpsNames(t *testing.T) {
	cl := cluster.New(cluster.DefaultConfig(1, 1))
	w := mpi.NewWorld(cl, mpi.DefaultConfig())
	o := NewHostOps("intelmpi", w.Rank(0))
	if o.Name() != "intelmpi" {
		t.Fatal("name wrong")
	}
	p := NewHostP2P("x", w.Rank(0))
	if p.Name() != "x" {
		t.Fatal("p2p name wrong")
	}
}

func TestIallgatherBothBackends(t *testing.T) {
	const per = 4 << 10
	launch(t, 2, 2, core.DefaultConfig(), func(r *mpi.Rank, h *core.Host) {
		np := r.Size()
		for _, ops := range []Ops{NewHostOps("host", r), NewOffloadOps("offload", r, h)} {
			send, recv := r.Alloc(per), r.Alloc(np*per)
			for i := range send.Bytes() {
				send.Bytes()[i] = byte(r.RankID()*50 + i)
			}
			q := ops.Iallgather(2, send.Addr(), recv.Addr(), per)
			ops.Wait(q)
			for src := 0; src < np; src++ {
				for i := 0; i < per; i += 997 {
					if recv.Bytes()[src*per+i] != byte(src*50+i) {
						t.Errorf("%s: rank %d block %d byte %d wrong", ops.Name(), r.RankID(), src, i)
						return
					}
				}
			}
			r.Barrier()
		}
	})
}
