// Package coll gives applications one backend-agnostic interface to
// nonblocking collectives, with three interchangeable implementations:
//
//   - Host: the MPI library's own nonblocking collectives, progressed only
//     inside MPI calls (the "IntelMPI" baseline);
//   - Offload: collectives built on the core framework's Group primitives —
//     scatter-destination Ialltoall and (segmented) ring Ibcast executed by
//     DPU proxies. With the framework configured for cross-GVMI this is the
//     paper's "Proposed" scheme; configured for staging without the group
//     cache it models "BluesMPI".
//
// The slot argument of each collective identifies the call site: offloaded
// backends cache one group request per (slot, buffers, size), so repeated
// calls from the same site replay through the DPU group cache exactly as the
// paper's Section VII-D describes.
package coll

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/datapath"
	"repro/internal/mem"
	"repro/internal/mpi"
	"repro/internal/sim"
	"repro/internal/span"
)

// Request is a pending nonblocking collective.
type Request interface {
	// Done reports completion without progressing the schedule.
	Done() bool
}

// Ops is the per-rank collective interface applications program against.
type Ops interface {
	// Name identifies the backend ("proposed", "bluesmpi", "intelmpi"...).
	Name() string
	// Ialltoall starts a personalized all-to-all of per bytes per peer.
	Ialltoall(slot int, sendAddr, recvAddr mem.Addr, per int) Request
	// Ibcast starts a broadcast of [addr, addr+size) from root.
	Ibcast(slot int, addr mem.Addr, size, root int) Request
	// Iallgather gathers per bytes from every rank's sendAddr into each
	// rank's recvAddr (blocks ordered by source rank).
	Iallgather(slot int, sendAddr, recvAddr mem.Addr, per int) Request
	// Wait blocks until the request completes.
	Wait(Request)
	// Test progresses (if the backend needs it) and polls completion.
	Test(Request) bool
}

// ---------------------------------------------------------------------------
// Host backend.

// HostOps runs collectives through the MPI library itself.
type HostOps struct {
	name string
	r    *mpi.Rank
}

// NewHostOps wraps a rank with the host (IntelMPI-like) backend.
func NewHostOps(name string, r *mpi.Rank) *HostOps {
	return &HostOps{name: name, r: r}
}

// Name implements Ops.
func (o *HostOps) Name() string { return o.name }

// Ialltoall implements Ops.
func (o *HostOps) Ialltoall(_ int, sendAddr, recvAddr mem.Addr, per int) Request {
	return o.r.Ialltoall(sendAddr, recvAddr, per)
}

// Ibcast implements Ops.
func (o *HostOps) Ibcast(_ int, addr mem.Addr, size, root int) Request {
	return o.r.Ibcast(addr, size, root)
}

// Iallgather implements Ops.
func (o *HostOps) Iallgather(_ int, sendAddr, recvAddr mem.Addr, per int) Request {
	return o.r.Iallgather(sendAddr, recvAddr, per)
}

// Wait implements Ops.
func (o *HostOps) Wait(q Request) { o.r.WaitColl(q.(*mpi.CollRequest)) }

// Test implements Ops.
func (o *HostOps) Test(q Request) bool { return o.r.TestColl(q.(*mpi.CollRequest)) }

// ---------------------------------------------------------------------------
// Offload backend.

// OffloadOps runs collectives on the DPU offload framework's Group
// primitives.
type OffloadOps struct {
	name string
	r    *mpi.Rank
	h    *core.Host
	path datapath.Kind // datapath the recorded groups execute on

	// SegmentSize chunks large Ibcast payloads through the ring so that
	// forwarding pipelines (0 = no segmentation).
	SegmentSize int
	// MaxSegments bounds the pipeline depth: the effective segment is
	// max(SegmentSize, size/MaxSegments), which keeps the recorded group
	// bounded even for multi-hundred-MB panels.
	MaxSegments int

	cache map[collKey]*core.GroupRequest
}

type collKey struct {
	kind string
	path datapath.Kind
	slot int
	a, b mem.Addr
	size int
	root int
}

// NewOffloadOps wraps a rank and its framework host handle; groups run on
// the framework's default datapath.
func NewOffloadOps(name string, r *mpi.Rank, h *core.Host) *OffloadOps {
	return NewOffloadOpsVia(name, r, h, h.DefaultPath())
}

// NewOffloadOpsVia is NewOffloadOps with an explicit datapath for every
// group the backend records (the policy layer builds one per chosen path).
func NewOffloadOpsVia(name string, r *mpi.Rank, h *core.Host, kind datapath.Kind) *OffloadOps {
	return &OffloadOps{
		name:        name,
		r:           r,
		h:           h,
		path:        kind,
		SegmentSize: 256 << 10,
		MaxSegments: 16,
		cache:       make(map[collKey]*core.GroupRequest),
	}
}

// Name implements Ops.
func (o *OffloadOps) Name() string { return o.name }

// offloadReq adapts a GroupRequest to Request.
type offloadReq struct {
	h    *core.Host
	g    *core.GroupRequest
	span span.ID // collective root span (0 = untraced)
}

// Done implements Request.
func (q *offloadReq) Done() bool { return q.g.Done() }

// rootSpan opens a collective root span covering the local prologue, the
// group call, and — through the proxy's execution span — everything the DPU
// does on the collective's behalf (0 when tracing is off).
func (o *OffloadOps) rootSpan(name string, size int) span.ID {
	sp := o.r.World().Cl.Spans
	if !sp.Enabled() {
		return 0
	}
	s := sp.Start(0, span.ClassRank, fmt.Sprintf("rank%d", o.r.RankID()), "coll", name)
	sp.AttrInt(s, "size", int64(size))
	return s
}

// Ialltoall implements Ops: the scatter-destination algorithm of Section
// VIII-B recorded as one group request per rank (receives from rank-i,
// sends to rank+i), replayed through the group cache on repeat calls.
func (o *OffloadOps) Ialltoall(slot int, sendAddr, recvAddr mem.Addr, per int) Request {
	np, me := o.r.Size(), o.r.RankID()
	root := o.rootSpan("ialltoall", per)
	key := collKey{kind: "a2a", path: o.path, slot: slot, a: sendAddr, b: recvAddr, size: per}
	g, ok := o.cache[key]
	if !ok {
		tag := tagFor(slot)
		g = o.h.GroupStartVia(o.path)
		for i := 1; i < np; i++ {
			src := (me - i + np) % np
			g.Recv(recvAddr+mem.Addr(src*per), per, src, tag)
		}
		for i := 1; i < np; i++ {
			dst := (me + i) % np
			g.Send(sendAddr+mem.Addr(dst*per), per, dst, tag)
		}
		g.End()
		o.cache[key] = g
	}
	// Own block stays on the host: one local copy.
	sp := o.r.Space()
	if d := sp.ReadAt(sendAddr+mem.Addr(me*per), per); d != nil {
		sp.WriteAt(recvAddr+mem.Addr(me*per), d, per)
	}
	o.h.Proc().AdvanceBusy(o.r.World().Cl.CopyCost(per))
	o.h.GroupCallCtx(g, root)
	return &offloadReq{h: o.h, g: g, span: root}
}

// IalltoallOn is Ialltoall scoped to a sub-communicator: block i of the
// send buffer goes to comm-rank i. Offloaded exactly like the world-scoped
// version (one cached group request per call site). Different communicators
// may share a slot only if their member sets are disjoint (e.g. the row
// communicators of a process grid).
func (o *OffloadOps) IalltoallOn(c *mpi.Comm, slot int, sendAddr, recvAddr mem.Addr, per int) Request {
	np, me := c.Size(), c.RankID()
	root := o.rootSpan("ialltoall", per)
	key := collKey{kind: "a2ac", path: o.path, slot: slot, a: sendAddr, b: recvAddr, size: per}
	g, ok := o.cache[key]
	if !ok {
		tag := tagFor(slot)
		g = o.h.GroupStartVia(o.path)
		for i := 1; i < np; i++ {
			src := (me - i + np) % np
			g.Recv(recvAddr+mem.Addr(src*per), per, c.World(src), tag)
		}
		for i := 1; i < np; i++ {
			dst := (me + i) % np
			g.Send(sendAddr+mem.Addr(dst*per), per, c.World(dst), tag)
		}
		g.End()
		o.cache[key] = g
	}
	sp := o.r.Space()
	if d := sp.ReadAt(sendAddr+mem.Addr(me*per), per); d != nil {
		sp.WriteAt(recvAddr+mem.Addr(me*per), d, per)
	}
	o.h.Proc().AdvanceBusy(o.r.World().Cl.CopyCost(per))
	o.h.GroupCallCtx(g, root)
	return &offloadReq{h: o.h, g: g, span: root}
}

// Ibcast implements Ops: the ring broadcast of Listing 5 — receive from the
// left neighbour, local barrier, forward to the right — segmented so large
// panels pipeline around the ring, all progressed by the proxies.
func (o *OffloadOps) Ibcast(slot int, addr mem.Addr, size, root int) Request {
	np, me := o.r.Size(), o.r.RankID()
	rs := o.rootSpan("ibcast", size)
	key := collKey{kind: "bcast", path: o.path, slot: slot, a: addr, size: size, root: root}
	g, ok := o.cache[key]
	if !ok {
		tag := tagFor(slot)
		seg := o.SegmentSize
		if o.MaxSegments > 0 {
			if floor := (size + o.MaxSegments - 1) / o.MaxSegments; floor > seg {
				seg = floor
			}
		}
		if seg <= 0 || seg > size {
			seg = size
		}
		left := (me - 1 + np) % np
		right := (me + 1) % np
		g = o.h.GroupStartVia(o.path)
		if np > 1 {
			for off := 0; off < size; off += seg {
				n := min(seg, size-off)
				a := addr + mem.Addr(off)
				if me == root {
					g.Send(a, n, right, tag)
				} else {
					g.Recv(a, n, left, tag)
					g.LocalBarrier()
					if right != root {
						g.Send(a, n, right, tag)
					}
				}
			}
		}
		g.End()
		o.cache[key] = g
	}
	o.h.GroupCallCtx(g, rs)
	return &offloadReq{h: o.h, g: g, span: rs}
}

// Iallgather implements Ops: the ring allgather recorded as one group —
// each forwarding step is ordered behind the previous step's receive with a
// local barrier, and the whole chain runs on the proxies (the pattern of
// reference [9] that BluesMPI offloads by staging; here it is direct).
func (o *OffloadOps) Iallgather(slot int, sendAddr, recvAddr mem.Addr, per int) Request {
	np, me := o.r.Size(), o.r.RankID()
	root := o.rootSpan("iallgather", per)
	key := collKey{kind: "ag", path: o.path, slot: slot, a: sendAddr, b: recvAddr, size: per}
	g, ok := o.cache[key]
	if !ok {
		tag := tagFor(slot)
		right := (me + 1) % np
		left := (me - 1 + np) % np
		g = o.h.GroupStartVia(o.path)
		for step := 0; step < np-1; step++ {
			blkSend := (me - step + np) % np
			blkRecv := (me - step - 1 + np) % np
			g.Send(recvAddr+mem.Addr(blkSend*per), per, right, tag)
			g.Recv(recvAddr+mem.Addr(blkRecv*per), per, left, tag)
			g.LocalBarrier()
		}
		g.End()
		o.cache[key] = g
	}
	// Own block placed locally before the chain starts.
	sp := o.r.Space()
	if d := sp.ReadAt(sendAddr, per); d != nil {
		sp.WriteAt(recvAddr+mem.Addr(me*per), d, per)
	}
	o.h.Proc().AdvanceBusy(o.r.World().Cl.CopyCost(per))
	o.h.GroupCallCtx(g, root)
	return &offloadReq{h: o.h, g: g, span: root}
}

// Wait implements Ops.
func (o *OffloadOps) Wait(q Request) {
	r := q.(*offloadReq)
	o.h.GroupWait(r.g)
	o.r.World().Cl.Spans.End(r.span)
}

// Test implements Ops.
func (o *OffloadOps) Test(q Request) bool {
	r := q.(*offloadReq)
	done := o.h.GroupTest(r.g)
	if done {
		o.r.World().Cl.Spans.End(r.span)
	}
	return done
}

// tagFor separates call-site slots in the offload library's tag space.
func tagFor(slot int) int { return 1 << 16 << slot }

// ---------------------------------------------------------------------------
// Basic-primitive (point-to-point offload) helpers.

// P2P abstracts nonblocking point-to-point transfer for workloads that are
// written against MPI_Isend/Irecv (the 3D stencil): either plain MPI or the
// framework's Basic primitives.
type P2P interface {
	Name() string
	Isend(addr mem.Addr, size, dst, tag int) Request
	Irecv(addr mem.Addr, size, src, tag int) Request
	WaitAll([]Request)
}

// HostP2P is plain MPI point-to-point.
type HostP2P struct {
	name string
	r    *mpi.Rank
}

// NewHostP2P wraps a rank with MPI point-to-point transfer.
func NewHostP2P(name string, r *mpi.Rank) *HostP2P { return &HostP2P{name: name, r: r} }

// Name implements P2P.
func (o *HostP2P) Name() string { return o.name }

// Isend implements P2P.
func (o *HostP2P) Isend(addr mem.Addr, size, dst, tag int) Request {
	return o.r.Isend(addr, size, dst, tag)
}

// Irecv implements P2P.
func (o *HostP2P) Irecv(addr mem.Addr, size, src, tag int) Request {
	return o.r.Irecv(addr, size, src, tag)
}

// WaitAll implements P2P.
func (o *HostP2P) WaitAll(qs []Request) {
	reqs := make([]*mpi.Request, len(qs))
	for i, q := range qs {
		reqs[i] = q.(*mpi.Request)
	}
	o.r.WaitAll(reqs...)
}

// OffloadP2P uses the framework's Basic primitives (Send_Offload /
// Recv_Offload). Inter-node transfers progress on the DPU; intra-node
// transfers fall back to MPI, which is why the paper's stencil overlap
// plateaus near 78% rather than 100% (Section VIII-A).
type OffloadP2P struct {
	name string
	r    *mpi.Rank
	h    *core.Host
}

// NewOffloadP2P wraps a rank and its framework handle.
func NewOffloadP2P(name string, r *mpi.Rank, h *core.Host) *OffloadP2P {
	return &OffloadP2P{name: name, r: r, h: h}
}

// Name implements P2P.
func (o *OffloadP2P) Name() string { return o.name }

// Isend implements P2P.
func (o *OffloadP2P) Isend(addr mem.Addr, size, dst, tag int) Request {
	if o.r.World().SameNode(o.r.RankID(), dst) {
		return o.r.Isend(addr, size, dst, tag)
	}
	return o.h.SendOffload(addr, size, dst, tag)
}

// Irecv implements P2P.
func (o *OffloadP2P) Irecv(addr mem.Addr, size, src, tag int) Request {
	if o.r.World().SameNode(o.r.RankID(), src) {
		return o.r.Irecv(addr, size, src, tag)
	}
	return o.h.RecvOffload(addr, size, src, tag)
}

// WaitAll implements P2P: completes both MPI and offload requests, whichever
// classes are present.
func (o *OffloadP2P) WaitAll(qs []Request) {
	var mpiReqs []*mpi.Request
	var offReqs []*core.OffloadRequest
	for _, q := range qs {
		switch v := q.(type) {
		case *mpi.Request:
			mpiReqs = append(mpiReqs, v)
		case *core.OffloadRequest:
			offReqs = append(offReqs, v)
		default:
			panic(fmt.Sprintf("coll: unknown request type %T", q))
		}
	}
	// Offload requests complete on the DPU regardless; drain them first so
	// FIN processing interleaves with MPI progress.
	if len(offReqs) > 0 {
		o.h.WaitAll(offReqs...)
	}
	if len(mpiReqs) > 0 {
		o.r.WaitAll(mpiReqs...)
	}
}

// ComputeFor lets workloads express modelled computation uniformly.
func ComputeFor(r *mpi.Rank, d sim.Time) { r.Compute(d) }
