package coll

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/datapath"
	"repro/internal/device"
	"repro/internal/mem"
	"repro/internal/mpi"
	"repro/internal/policy"
	"repro/internal/sim"
	"repro/internal/span"
)

// PolicyOps routes each collective call through a policy engine: the engine
// picks a datapath per (op-class, size, call number) and the call runs on
// the matching backend — the host MPI library for HostDirect, a per-path
// OffloadOps otherwise. Completion latency is fed back to the engine so
// measuring policies can learn.
//
// One engine is shared by every rank of an environment (see policy.Engine);
// PolicyOps itself is per-rank, and its per-site call counters advance
// identically on all ranks because collectives are called collectively.
type PolicyOps struct {
	name string
	r    *mpi.Rank
	h    *core.Host
	eng  *policy.Engine

	// fleet is the cluster's capability merge (device.Merge over nodes),
	// attached to every group request: collective decisions must be legal
	// on — and identical for — every participant, so they are made
	// against the weakest common capability set. Full-capability on
	// homogeneous legacy clusters, where it changes nothing.
	fleet device.Profile

	host  *HostOps
	off   map[datapath.Kind]*OffloadOps
	calls map[opSite]int
}

// opSite identifies one collective call site for the policy's call counter
// (the same identity the offload backends key their group caches on, minus
// the buffer addresses — sizes and slots are what policies decide by).
type opSite struct {
	kind string
	slot int
	size int
}

// NewPolicyOps builds the policy-routed backend for one rank.
func NewPolicyOps(name string, r *mpi.Rank, h *core.Host, eng *policy.Engine) *PolicyOps {
	return &PolicyOps{
		name:  name,
		r:     r,
		h:     h,
		eng:   eng,
		fleet: h.FleetProfile(),
		host:  NewHostOps(name, r),
		off:   make(map[datapath.Kind]*OffloadOps),
		calls: make(map[opSite]int),
	}
}

// Name implements Ops.
func (o *PolicyOps) Name() string { return o.name }

// backend returns (lazily creating) the fixed-path offload backend for a
// proxy-executable kind. Each gets its own group-request cache, so one site
// probed on two paths records two groups and replays both through the DPU
// group cache.
func (o *PolicyOps) backend(k datapath.Kind) *OffloadOps {
	b := o.off[k]
	if b == nil {
		b = NewOffloadOpsVia(o.name, o.r, o.h, k)
		o.off[k] = b
	}
	return b
}

// route advances the site's call counter and asks the engine for a path.
func (o *PolicyOps) route(kind string, slot, size int) (policy.Request, policy.Decision) {
	s := opSite{kind: kind, slot: slot, size: size}
	n := o.calls[s]
	o.calls[s] = n + 1
	q := policy.Request{Class: policy.ClassGroup, Size: size, Call: n, Caps: &o.fleet}
	return q, o.eng.Decide(q)
}

// policyReq wraps the chosen backend's request with enough context to feed
// the measured completion latency back to the engine exactly once.
type policyReq struct {
	inner    Request
	be       Ops
	q        policy.Request
	path     datapath.Kind
	t0       sim.Time
	root     span.ID // host-direct collective root (0 = untraced/offloaded)
	observed bool
}

// Done implements Request.
func (q *policyReq) Done() bool { return q.inner.Done() }

// collName maps a route kind to the span name the offload backends use, so
// "coll"-layer roots read identically whichever path executed the call.
func collName(kind string) string {
	switch kind {
	case "a2a":
		return "ialltoall"
	case "bcast":
		return "ibcast"
	case "ag":
		return "iallgather"
	}
	return kind
}

// hostRootSpan opens the collective root span of a host-direct decision.
// The offload backends open their own roots (OffloadOps.rootSpan); without
// this, host-direct iterations would leave only per-transfer mpi spans and
// drop out of any RootsNamed("coll", ...) attribution.
func (o *PolicyOps) hostRootSpan(kind string, size int) span.ID {
	sp := o.r.World().Cl.Spans
	if !sp.Enabled() {
		return 0
	}
	s := sp.Start(0, span.ClassRank, fmt.Sprintf("rank%d", o.r.RankID()), "coll", collName(kind))
	sp.AttrInt(s, "size", int64(size))
	sp.AttrStr(s, "path", "hostdirect")
	return s
}

func (o *PolicyOps) start(kind string, slot, size int, run func(Ops) Request) Request {
	q, d := o.route(kind, slot, size)
	var be Ops
	var root span.ID
	if d.Path == datapath.KindHostDirect {
		be = o.host
		// Parent the host library's per-transfer spans under the
		// collective root until completion (progress during Wait can
		// still post transfers for some algorithms).
		root = o.hostRootSpan(kind, size)
		o.r.SetSpanParent(root)
	} else {
		be = o.backend(d.Path)
	}
	return &policyReq{inner: run(be), be: be, q: q, path: d.Path, t0: o.h.Proc().Now(), root: root}
}

// observe feeds the issue-to-completion latency back to the policy (once).
func (o *PolicyOps) observe(r *policyReq) {
	if r.observed {
		return
	}
	r.observed = true
	if r.root != 0 {
		o.r.World().Cl.Spans.End(r.root)
		o.r.SetSpanParent(0)
	}
	o.eng.Observe(r.q, r.path, o.h.Proc().Now()-r.t0)
}

// Ialltoall implements Ops.
func (o *PolicyOps) Ialltoall(slot int, sendAddr, recvAddr mem.Addr, per int) Request {
	return o.start("a2a", slot, per, func(be Ops) Request {
		return be.Ialltoall(slot, sendAddr, recvAddr, per)
	})
}

// Ibcast implements Ops.
func (o *PolicyOps) Ibcast(slot int, addr mem.Addr, size, root int) Request {
	return o.start("bcast", slot, size, func(be Ops) Request {
		return be.Ibcast(slot, addr, size, root)
	})
}

// Iallgather implements Ops.
func (o *PolicyOps) Iallgather(slot int, sendAddr, recvAddr mem.Addr, per int) Request {
	return o.start("ag", slot, per, func(be Ops) Request {
		return be.Iallgather(slot, sendAddr, recvAddr, per)
	})
}

// Wait implements Ops.
func (o *PolicyOps) Wait(q Request) {
	r := q.(*policyReq)
	r.be.Wait(r.inner)
	o.observe(r)
}

// Test implements Ops.
func (o *PolicyOps) Test(q Request) bool {
	r := q.(*policyReq)
	done := r.be.Test(r.inner)
	if done {
		o.observe(r)
	}
	return done
}

// ---------------------------------------------------------------------------
// Policy-routed point-to-point.

// PolicyP2P routes each Isend/Irecv through the policy engine. Node-local
// transfers always stay on host MPI (shared memory beats any proxy round
// trip — the same fallback OffloadP2P hard-codes); for inter-node transfers
// the engine decides from (class, size), which sender and receiver evaluate
// identically, so the two endpoints never disagree about whether a transfer
// runs on the host library or the proxies.
type PolicyP2P struct {
	name string
	r    *mpi.Rank
	h    *core.Host
	eng  *policy.Engine
}

// NewPolicyP2P builds the policy-routed point-to-point backend for a rank.
func NewPolicyP2P(name string, r *mpi.Rank, h *core.Host, eng *policy.Engine) *PolicyP2P {
	return &PolicyP2P{name: name, r: r, h: h, eng: eng}
}

// Name implements P2P.
func (o *PolicyP2P) Name() string { return o.name }

// decide asks the engine for the path of one inter-node transfer. The
// decision is keyed on the *sender's* node profile — a quantity both
// endpoints can compute (the receiver derives it from the source rank) —
// so sender and receiver resolve capability fallbacks identically and
// never disagree about host-vs-proxy.
func (o *PolicyP2P) decide(size, sender int) datapath.Kind {
	caps := o.h.ProfileOfRank(sender)
	return o.eng.Decide(policy.Request{Class: policy.ClassP2P, Size: size, Caps: &caps}).Path
}

// Isend implements P2P.
func (o *PolicyP2P) Isend(addr mem.Addr, size, dst, tag int) Request {
	if o.r.World().SameNode(o.r.RankID(), dst) {
		return o.r.Isend(addr, size, dst, tag)
	}
	if k := o.decide(size, o.r.RankID()); k != datapath.KindHostDirect {
		return o.h.SendOffloadVia(k, addr, size, dst, tag)
	}
	return o.r.Isend(addr, size, dst, tag)
}

// Irecv implements P2P. The receive side is path-agnostic on the proxy
// (RecvOffload registers the destination either way); it only needs to
// agree with the sender about host-vs-proxy, which the shared sender-keyed
// decision rule guarantees.
func (o *PolicyP2P) Irecv(addr mem.Addr, size, src, tag int) Request {
	if o.r.World().SameNode(o.r.RankID(), src) {
		return o.r.Irecv(addr, size, src, tag)
	}
	if k := o.decide(size, src); k != datapath.KindHostDirect {
		return o.h.RecvOffload(addr, size, src, tag)
	}
	return o.r.Irecv(addr, size, src, tag)
}

// WaitAll implements P2P: completes both MPI and offload requests,
// whichever classes are present.
func (o *PolicyP2P) WaitAll(qs []Request) {
	var mpiReqs []*mpi.Request
	var offReqs []*core.OffloadRequest
	for _, q := range qs {
		switch v := q.(type) {
		case *mpi.Request:
			mpiReqs = append(mpiReqs, v)
		case *core.OffloadRequest:
			offReqs = append(offReqs, v)
		default:
			panic(fmt.Sprintf("coll: unknown request type %T", q))
		}
	}
	if len(offReqs) > 0 {
		o.h.WaitAll(offReqs...)
	}
	if len(mpiReqs) > 0 {
		o.r.WaitAll(mpiReqs...)
	}
}
