package fft

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/baseline"
	"repro/internal/bench"
	"repro/internal/coll"
	"repro/internal/mpi"
)

func almostEqual(a, b complex128, tol float64) bool {
	return cmplx.Abs(a-b) <= tol
}

// naiveDFT is the O(n^2) reference.
func naiveDFT(a []complex128) []complex128 {
	n := len(a)
	out := make([]complex128, n)
	for k := 0; k < n; k++ {
		for t := 0; t < n; t++ {
			ang := -2 * math.Pi * float64(k) * float64(t) / float64(n)
			out[k] += a[t] * cmplx.Exp(complex(0, ang))
		}
	}
	return out
}

func TestTransformMatchesNaiveDFT(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, n := range []int{2, 4, 8, 16, 64} {
		a := make([]complex128, n)
		for i := range a {
			a[i] = complex(rng.NormFloat64(), rng.NormFloat64())
		}
		want := naiveDFT(a)
		got := append([]complex128(nil), a...)
		Transform(got, false)
		for i := range got {
			if !almostEqual(got[i], want[i], 1e-9*float64(n)) {
				t.Fatalf("n=%d: FFT[%d] = %v, want %v", n, i, got[i], want[i])
			}
		}
	}
}

func TestTransformRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 << (1 + rng.Intn(9))
		a := make([]complex128, n)
		for i := range a {
			a[i] = complex(rng.NormFloat64(), rng.NormFloat64())
		}
		orig := append([]complex128(nil), a...)
		Transform(a, false)
		Transform(a, true)
		for i := range a {
			if !almostEqual(a[i], orig[i], 1e-9*float64(n)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestTransformSineIsDelta(t *testing.T) {
	const n = 64
	a := make([]complex128, n)
	for i := range a {
		a[i] = complex(math.Sin(2*math.Pi*3*float64(i)/n), 0)
	}
	Transform(a, false)
	// A real sine of frequency 3 transforms to peaks at bins 3 and n-3.
	for k := 0; k < n; k++ {
		mag := cmplx.Abs(a[k])
		if k == 3 || k == n-3 {
			if mag < float64(n)/2-1e-6 {
				t.Fatalf("bin %d magnitude %v, want ~%v", k, mag, n/2)
			}
		} else if mag > 1e-6 {
			t.Fatalf("bin %d magnitude %v, want ~0", k, mag)
		}
	}
}

func TestTransformNonPow2Panics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Transform(make([]complex128, 6), false)
}

// runDistributed executes a forward+backward 3D transform with the given
// scheme and checks the round trip on every rank.
func runDistributed(t *testing.T, scheme string, nodes, ppn, nx, ny, nz int) {
	t.Helper()
	e := bench.Build(bench.Options{Nodes: nodes, PPN: ppn, Scheme: scheme, Backed: true})
	e.Launch(func(r *mpi.Rank, ops coll.Ops, _ coll.P2P) {
		pl, err := NewPlan(r, ops, nx, ny, nz)
		if err != nil {
			t.Error(err)
			return
		}
		rng := rand.New(rand.NewSource(int64(100 + r.RankID())))
		orig := make([]complex128, len(pl.Data))
		for i := range pl.Data {
			v := complex(rng.NormFloat64(), rng.NormFloat64())
			pl.Data[i] = v
			orig[i] = v
		}
		pl.Forward()
		pl.Backward()
		for i := range pl.Data {
			if !almostEqual(pl.Data[i], orig[i], 1e-8*float64(nx*ny*nz)) {
				t.Errorf("rank %d: round trip mismatch at %d: %v vs %v",
					r.RankID(), i, pl.Data[i], orig[i])
				return
			}
		}
	})
}

func TestDistributedRoundTripHost(t *testing.T) {
	runDistributed(t, baseline.NameIntelMPI, 2, 2, 8, 8, 8)
}

func TestDistributedRoundTripProposed(t *testing.T) {
	runDistributed(t, baseline.NameProposed, 2, 2, 8, 8, 8)
}

func TestDistributedRoundTripBluesMPI(t *testing.T) {
	runDistributed(t, baseline.NameBluesMPI, 2, 2, 8, 8, 8)
}

// The distributed transform of a sine along Z must match the spectrum the
// serial transform produces: peaks at (0, 0, ±3).
func TestDistributedSineSpectrum(t *testing.T) {
	const nx, ny, nz = 8, 8, 16
	e := bench.Build(bench.Options{Nodes: 2, PPN: 2, Scheme: baseline.NameProposed, Backed: true})
	e.Launch(func(r *mpi.Rank, ops coll.Ops, _ coll.P2P) {
		pl, err := NewPlan(r, ops, nx, ny, nz)
		if err != nil {
			t.Error(err)
			return
		}
		// data[z][y][x] = sin(2*pi*3*z/NZ), independent of x,y.
		for z := 0; z < pl.lz; z++ {
			gz := r.RankID()*pl.lz + z
			v := complex(math.Sin(2*math.Pi*3*float64(gz)/nz), 0)
			for i := 0; i < ny*nx; i++ {
				pl.Data[z*ny*nx+i] = v
			}
		}
		pl.Forward()
		// Post-transpose layout [lx][NY][NZ]; spectrum nonzero only at
		// kx=ky=0, kz in {3, nz-3}. kx=0 lives on rank 0.
		for x := 0; x < pl.lx; x++ {
			gx := r.RankID()*pl.lx + x
			for y := 0; y < ny; y++ {
				for z := 0; z < nz; z++ {
					mag := cmplx.Abs(pl.Data[(x*ny+y)*nz+z])
					expectPeak := gx == 0 && y == 0 && (z == 3 || z == nz-3)
					if expectPeak && mag < 1 {
						t.Errorf("missing peak at (%d,%d,%d): %v", gx, y, z, mag)
					}
					if !expectPeak && mag > 1e-6 {
						t.Errorf("spurious energy at (%d,%d,%d): %v", gx, y, z, mag)
					}
				}
			}
		}
	})
}

func TestRunBenchSchemes(t *testing.T) {
	for _, scheme := range []string{baseline.NameIntelMPI, baseline.NameProposed, baseline.NameBluesMPI} {
		res := RunBench(bench.Options{Nodes: 2, PPN: 2, Scheme: scheme}, 64, 64, 64, 1, 2)
		if res.Total <= 0 || res.Compute <= 0 {
			t.Fatalf("%s: bad result %+v", scheme, res)
		}
		if res.MPITime < 0 {
			t.Fatalf("%s: negative MPI time", scheme)
		}
		t.Logf("%s: total=%v compute=%v mpi=%v", scheme, res.Total, res.Compute, res.MPITime)
	}
}

func TestFlopsModel(t *testing.T) {
	if Flops(1) != 0 {
		t.Fatal("Flops(1) != 0")
	}
	if got := Flops(8); got != 5*8*3 {
		t.Fatalf("Flops(8) = %v, want 120", got)
	}
}
