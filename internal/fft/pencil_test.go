package fft

import (
	"math/cmplx"
	"math/rand"
	"testing"

	"repro/internal/baseline"
	"repro/internal/bench"
	"repro/internal/coll"
	"repro/internal/mem"
	"repro/internal/mpi"
)

// runPencil executes forward+backward on a P1 x P2 grid and verifies the
// round trip, with either host or offloaded transposes.
func runPencil(t *testing.T, scheme string, p1, p2, nx, ny, nz int, offload bool) {
	t.Helper()
	nodes := p1 * p2 / 2
	if nodes < 1 {
		nodes = 1
	}
	ppn := p1 * p2 / nodes
	e := bench.Build(bench.Options{Nodes: nodes, PPN: ppn, Scheme: scheme, Backed: true})
	e.Launch(func(r *mpi.Rank, ops coll.Ops, _ coll.P2P) {
		var pl *PencilPlan
		var err error
		if offload {
			oo := ops.(*coll.OffloadOps)
			a2a := func(slot int) func(c *mpi.Comm, s, d mem.Addr, per int) {
				return func(c *mpi.Comm, s, d mem.Addr, per int) {
					oo.Wait(oo.IalltoallOn(c, slot, s, d, per))
				}
			}
			pl, err = NewPencilPlanOffload(r, p1, p2, nx, ny, nz, a2a(3), a2a(4))
		} else {
			pl, err = NewPencilPlan(r, p1, p2, nx, ny, nz)
		}
		if err != nil {
			t.Error(err)
			return
		}
		rng := rand.New(rand.NewSource(int64(7 + r.RankID())))
		orig := make([]complex128, len(pl.Data))
		for i := range pl.Data {
			v := complex(rng.NormFloat64(), rng.NormFloat64())
			pl.Data[i] = v
			orig[i] = v
		}
		pl.Forward()
		pl.Backward()
		tol := 1e-8 * float64(nx*ny*nz)
		for i := range pl.Data {
			if cmplx.Abs(pl.Data[i]-orig[i]) > tol {
				t.Errorf("rank %d: pencil round trip off at %d: %v vs %v",
					r.RankID(), i, pl.Data[i], orig[i])
				return
			}
		}
	})
}

func TestPencilRoundTripHost(t *testing.T) {
	runPencil(t, baseline.NameIntelMPI, 2, 2, 8, 8, 8, false)
}

func TestPencilRoundTripRectGrid(t *testing.T) {
	runPencil(t, baseline.NameIntelMPI, 2, 4, 8, 16, 16, false)
}

func TestPencilRoundTripOffloaded(t *testing.T) {
	runPencil(t, baseline.NameProposed, 2, 2, 8, 8, 8, true)
}

func TestPencilMatchesSlabSpectrum(t *testing.T) {
	// The pencil and slab decompositions must compute the same transform:
	// compare total spectral energy of the same global input.
	const nx, ny, nz = 8, 8, 8
	energy := func(pencil bool) float64 {
		e := bench.Build(bench.Options{Nodes: 2, PPN: 2, Scheme: baseline.NameIntelMPI, Backed: true})
		total := 0.0
		e.Launch(func(r *mpi.Rank, _ coll.Ops, _ coll.P2P) {
			// Global field: f(x,y,z) = deterministic pseudo-random.
			f := func(x, y, z int) complex128 {
				v := float64((x*131+y*17+z*7)%23) - 11
				return complex(v, -v/3)
			}
			local := 0.0
			if pencil {
				pl, err := NewPencilPlan(r, 2, 2, nx, ny, nz)
				if err != nil {
					t.Error(err)
					return
				}
				// Stage A layout [ly1][lz2][NX].
				for y := 0; y < pl.ly1; y++ {
					for z := 0; z < pl.lz2; z++ {
						for x := 0; x < nx; x++ {
							gy := pl.r1*pl.ly1 + y
							gz := pl.r2*pl.lz2 + z
							pl.Data[(y*pl.lz2+z)*nx+x] = f(x, gy, gz)
						}
					}
				}
				pl.Forward()
				for _, v := range pl.Data {
					local += real(v)*real(v) + imag(v)*imag(v)
				}
			} else {
				pl, err := NewPlan(r, coll.NewHostOps("h", r), nx, ny, nz)
				if err != nil {
					t.Error(err)
					return
				}
				for z := 0; z < pl.lz; z++ {
					for y := 0; y < ny; y++ {
						for x := 0; x < nx; x++ {
							gz := r.RankID()*pl.lz + z
							pl.Data[(z*ny+y)*nx+x] = f(x, y, gz)
						}
					}
				}
				pl.Forward()
				for _, v := range pl.Data {
					local += real(v)*real(v) + imag(v)*imag(v)
				}
			}
			total += local
		})
		return total
	}
	slab, pencil := energy(false), energy(true)
	if diff := (slab - pencil) / slab; diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("spectral energy differs: slab %v vs pencil %v", slab, pencil)
	}
}
