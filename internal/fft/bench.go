package fft

import (
	"repro/internal/bench"
	"repro/internal/coll"
	"repro/internal/mpi"
	"repro/internal/sim"
)

// BenchResult summarizes one figure-scale P3DFFT-like run.
type BenchResult struct {
	Scheme     string
	NX, NY, NZ int
	Nodes, PPN int
	Iters      int

	Total   sim.Time // forward+backward per iteration (max over ranks)
	MPITime sim.Time // time blocked in collective calls (rank-max)
	Compute sim.Time // local FFT compute per iteration
}

// FlopRate is the modelled per-core FFT throughput (flops per nanosecond,
// i.e. GFLOP/s) for figure-scale runs.
const FlopRate = 4.0

// stageCompute returns the modelled local compute of one 1D-FFT stage over
// the rank's slab: pts/dim transforms of the given length.
func stageCompute(localPts, dim int) sim.Time {
	lines := localPts / dim
	return sim.Time(Flops(dim) * float64(lines) / FlopRate)
}

// RunBench executes the application skeleton the paper profiles in Figure
// 16(c): per phase, the computation loop initiates two nonblocking
// all-to-alls with different buffers, computes, waits for one, computes
// more, waits for the other. One iteration is a forward+backward transform
// pair of two independent variables (as in test_sine.x).
func RunBench(opt bench.Options, nx, ny, nz, warmup, iters int) BenchResult {
	e := bench.Build(opt)
	np := e.Cl.Cfg.NP()
	per := nx / np * ny * (nz / np) * 16 // transpose block per peer, bytes
	if per <= 0 {
		panic("fft: grid too small for rank count")
	}
	localPts := nx * ny * nz / np

	totals := make([]sim.Time, np)
	mpiT := make([]sim.Time, np)
	compT := make([]sim.Time, np)

	e.Launch(func(r *mpi.Rank, ops coll.Ops, _ coll.P2P) {
		me := r.RankID()
		sendA, recvA := r.Alloc(np*per), r.Alloc(np*per)
		sendB, recvB := r.Alloc(np*per), r.Alloc(np*per)

		// One transform phase: XY transforms, transpose, Z transforms —
		// for two variables (A, B) with their transposes in flight
		// concurrently, overlapped with the local stages.
		cXY := stageCompute(localPts, nx) + stageCompute(localPts, ny)
		cZ := stageCompute(localPts, nz)
		phase := func() {
			r.Compute(cXY) // variable A local stages
			qa := ops.Ialltoall(0, sendA.Addr(), recvA.Addr(), per)
			r.Compute(cXY) // variable B local stages, overlapping A's transpose
			qb := ops.Ialltoall(1, sendB.Addr(), recvB.Addr(), per)
			ops.Wait(qa)
			r.Compute(cZ) // A's final stage, overlapping B's transpose
			ops.Wait(qb)
			r.Compute(cZ)
		}

		for it := 0; it < warmup; it++ {
			phase()
			r.Barrier()
		}
		comp0 := r.ComputeTime
		t0 := r.Now()
		for it := 0; it < iters; it++ {
			phase() // forward
			phase() // backward
		}
		r.Barrier()
		totals[me] = (r.Now() - t0) / sim.Time(iters)
		compT[me] = (r.ComputeTime - comp0) / sim.Time(iters)
		// Everything not spent computing is time blocked in (or posting)
		// communication calls — the "MPI time" of the Figure 16(c) profile.
		mpiT[me] = totals[me] - compT[me]
	})

	res := BenchResult{
		Scheme: opt.Scheme, NX: nx, NY: ny, NZ: nz,
		Nodes: opt.Nodes, PPN: opt.PPN, Iters: iters,
	}
	for i := 0; i < np; i++ {
		if totals[i] > res.Total {
			res.Total = totals[i]
		}
		if mpiT[i] > res.MPITime {
			res.MPITime = mpiT[i]
		}
		if compT[i] > res.Compute {
			res.Compute = compT[i]
		}
	}
	return res
}
