// Package fft implements the P3DFFT-like workload of Section VIII-D: a
// distributed 3D fast Fourier transform whose inter-process transposes run
// as nonblocking all-to-all exchanges overlapped with the local FFT
// computation.
//
// Two modes exist:
//
//   - a real-math mode (Plan): complex128 data, radix-2 kernels, slab
//     decomposition with a packed transpose through the collective backend —
//     used to verify that offloaded collectives move FFT data correctly
//     (forward∘backward == identity);
//   - a figure-scale mode (RunBench): the application's communication
//     skeleton — two back-to-back Ialltoalls per phase overlapped with
//     modelled FFT compute, exactly the profile of Figure 16(c) — with
//     size-only payloads so 512-rank runs fit in memory.
//
// The paper's P3DFFT uses a 2D pencil decomposition; we use a 1D slab
// decomposition (one transpose per transform instead of two) because the
// simulated MPI world has a single global communicator. The overlap
// structure under study — concurrent nonblocking all-to-alls against local
// FFT compute — is identical (see DESIGN.md).
package fft

import "math"

// Transform performs an in-place iterative radix-2 FFT on a. The length
// must be a power of two. If inverse is set, the inverse transform is
// applied (including the 1/n scaling), so Transform(Transform(a)) == a.
func Transform(a []complex128, inverse bool) {
	n := len(a)
	if n&(n-1) != 0 {
		panic("fft: length not a power of two")
	}
	if n < 2 {
		return
	}
	// Bit-reversal permutation.
	for i, j := 1, 0; i < n; i++ {
		bit := n >> 1
		for ; j&bit != 0; bit >>= 1 {
			j ^= bit
		}
		j ^= bit
		if i < j {
			a[i], a[j] = a[j], a[i]
		}
	}
	for length := 2; length <= n; length <<= 1 {
		ang := 2 * math.Pi / float64(length)
		if !inverse {
			ang = -ang
		}
		wl := complex(math.Cos(ang), math.Sin(ang))
		for i := 0; i < n; i += length {
			w := complex(1, 0)
			half := length >> 1
			for j := 0; j < half; j++ {
				u := a[i+j]
				v := a[i+j+half] * w
				a[i+j] = u + v
				a[i+j+half] = u - v
				w *= wl
			}
		}
	}
	if inverse {
		inv := complex(1/float64(n), 0)
		for i := range a {
			a[i] *= inv
		}
	}
}

// Flops estimates the floating-point operations of one length-n FFT
// (the standard 5·n·log2(n)).
func Flops(n int) float64 {
	if n < 2 {
		return 0
	}
	return 5 * float64(n) * math.Log2(float64(n))
}
