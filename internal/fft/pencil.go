package fft

import (
	"fmt"

	"repro/internal/mem"
	"repro/internal/mpi"
)

// PencilPlan is the 2D ("pencil") decomposition P3DFFT actually uses: the
// np = P1 x P2 process grid assigns each rank NY/P1 x NZ/P2 full x-lines.
// A forward transform is three 1D FFT stages separated by two transposes,
// each an all-to-all *within* one dimension of the grid (row or column
// communicators) — so it scales to rank counts the slab decomposition
// cannot (np may exceed any single dimension).
//
// Exchange closures inject the transpose transport, so the same plan runs
// over host MPI or the offloaded collectives (see NewPencilPlan*).
type PencilPlan struct {
	r          *mpi.Rank
	NX, NY, NZ int
	P1, P2     int
	r1, r2     int
	row, col   *mpi.Comm

	lx, ly1, lz2, ly2 int

	// Data holds the local pencils: [ly1][lz2][NX] in stage A,
	// [lx][lz2][NY] in stage B, [lx][ly2][NZ] in stage C.
	Data []complex128

	rowSend, rowRecv *mem.Buffer
	colSend, colRecv *mem.Buffer

	rowXchg func(send, recv mem.Addr, per int)
	colXchg func(send, recv mem.Addr, per int)
}

// NewPencilPlan builds the plan over host-MPI transposes.
func NewPencilPlan(r *mpi.Rank, p1, p2, nx, ny, nz int) (*PencilPlan, error) {
	pl, err := newPencil(r, p1, p2, nx, ny, nz)
	if err != nil {
		return nil, err
	}
	pl.rowXchg = func(s, d mem.Addr, per int) { pl.row.Alltoall(s, d, per) }
	pl.colXchg = func(s, d mem.Addr, per int) { pl.col.Alltoall(s, d, per) }
	return pl, nil
}

// NewPencilPlanOffload builds the plan with transposes offloaded to the
// DPU proxies through comm-scoped group alltoalls.
func NewPencilPlanOffload(r *mpi.Rank, p1, p2, nx, ny, nz int,
	rowA2A, colA2A func(c *mpi.Comm, send, recv mem.Addr, per int)) (*PencilPlan, error) {
	pl, err := newPencil(r, p1, p2, nx, ny, nz)
	if err != nil {
		return nil, err
	}
	pl.rowXchg = func(s, d mem.Addr, per int) { rowA2A(pl.row, s, d, per) }
	pl.colXchg = func(s, d mem.Addr, per int) { colA2A(pl.col, s, d, per) }
	return pl, nil
}

func newPencil(r *mpi.Rank, p1, p2, nx, ny, nz int) (*PencilPlan, error) {
	if p1*p2 != r.Size() {
		return nil, fmt.Errorf("fft: grid %dx%d != %d ranks", p1, p2, r.Size())
	}
	for _, c := range []struct {
		dim, p int
		name   string
	}{{nx, p1, "NX%P1"}, {ny, p1, "NY%P1"}, {ny, p2, "NY%P2"}, {nz, p2, "NZ%P2"}} {
		if c.dim%c.p != 0 {
			return nil, fmt.Errorf("fft: %s != 0", c.name)
		}
	}
	for _, d := range []int{nx, ny, nz} {
		if d&(d-1) != 0 {
			return nil, fmt.Errorf("fft: dimension %d not a power of two", d)
		}
	}
	me := r.RankID()
	pl := &PencilPlan{
		r: r, NX: nx, NY: ny, NZ: nz, P1: p1, P2: p2,
		r1: me % p1, r2: me / p1,
		lx: nx / p1, ly1: ny / p1, lz2: nz / p2, ly2: ny / p2,
	}
	pl.row = r.Split(func(w int) int { return w / p1 }) // same r2: ranks r2*p1..r2*p1+p1-1
	pl.col = r.Split(func(w int) int { return w % p1 }) // same r1
	pl.Data = make([]complex128, pl.ly1*pl.lz2*nx)

	rowBytes := pl.ly1 * pl.lz2 * pl.lx * 16 * p1
	colBytes := pl.lx * pl.ly2 * pl.lz2 * 16 * p2
	pl.rowSend = r.Alloc(rowBytes)
	pl.rowRecv = r.Alloc(rowBytes)
	pl.colSend = r.Alloc(colBytes)
	pl.colRecv = r.Alloc(colBytes)
	if !pl.rowSend.Backed() {
		return nil, fmt.Errorf("fft: pencil plan requires payload-backed buffers")
	}
	return pl, nil
}

// Forward computes the 3D forward transform (X, transpose, Y, transpose, Z).
func (pl *PencilPlan) Forward() { pl.transform(false) }

// Backward computes the inverse (Forward∘Backward == identity).
func (pl *PencilPlan) Backward() { pl.transform(true) }

func (pl *PencilPlan) transform(inverse bool) {
	if !inverse {
		pl.fftLines(pl.NX, inverse) // stage A: x-lines
		pl.transposeAB(false)
		pl.fftLines(pl.NY, inverse) // stage B: y-lines
		pl.transposeBC(false)
		pl.fftLines(pl.NZ, inverse) // stage C: z-lines
	} else {
		pl.fftLines(pl.NZ, inverse)
		pl.transposeBC(true)
		pl.fftLines(pl.NY, inverse)
		pl.transposeAB(true)
		pl.fftLines(pl.NX, inverse)
	}
}

// fftLines transforms every contiguous line of length n in Data.
func (pl *PencilPlan) fftLines(n int, inverse bool) {
	for off := 0; off+n <= len(pl.Data); off += n {
		Transform(pl.Data[off:off+n], inverse)
	}
}

// transposeAB exchanges within the row communicator: X becomes distributed
// (lx per rank), Y becomes full. A layout [ly1][lz2][NX] <-> B layout
// [lx][lz2][NY]. Pack order within a block: (z, y, x).
func (pl *PencilPlan) transposeAB(inverse bool) {
	per := pl.ly1 * pl.lz2 * pl.lx * 16
	if !inverse {
		sb := pl.rowSend.Bytes()
		for j := 0; j < pl.P1; j++ {
			i := 0
			off := j * per
			for z := 0; z < pl.lz2; z++ {
				for y := 0; y < pl.ly1; y++ {
					base := (y*pl.lz2+z)*pl.NX + j*pl.lx
					for x := 0; x < pl.lx; x++ {
						putC128(sb[off+i*16:], pl.Data[base+x])
						i++
					}
				}
			}
		}
		pl.rowXchg(pl.rowSend.Addr(), pl.rowRecv.Addr(), per)
		rb := pl.rowRecv.Bytes()
		out := make([]complex128, pl.lx*pl.lz2*pl.NY)
		for j := 0; j < pl.P1; j++ {
			i := 0
			off := j * per
			for z := 0; z < pl.lz2; z++ {
				for y := 0; y < pl.ly1; y++ {
					gy := j*pl.ly1 + y
					for x := 0; x < pl.lx; x++ {
						out[(x*pl.lz2+z)*pl.NY+gy] = getC128(rb[off+i*16:])
						i++
					}
				}
			}
		}
		pl.Data = out
		return
	}
	// Inverse: B -> A.
	sb := pl.rowSend.Bytes()
	for j := 0; j < pl.P1; j++ {
		i := 0
		off := j * per
		for z := 0; z < pl.lz2; z++ {
			for y := 0; y < pl.ly1; y++ {
				gy := j*pl.ly1 + y
				for x := 0; x < pl.lx; x++ {
					putC128(sb[off+i*16:], pl.Data[(x*pl.lz2+z)*pl.NY+gy])
					i++
				}
			}
		}
	}
	pl.rowXchg(pl.rowSend.Addr(), pl.rowRecv.Addr(), per)
	rb := pl.rowRecv.Bytes()
	out := make([]complex128, pl.ly1*pl.lz2*pl.NX)
	for j := 0; j < pl.P1; j++ {
		i := 0
		off := j * per
		for z := 0; z < pl.lz2; z++ {
			for y := 0; y < pl.ly1; y++ {
				base := (y*pl.lz2+z)*pl.NX + j*pl.lx
				for x := 0; x < pl.lx; x++ {
					out[base+x] = getC128(rb[off+i*16:])
					i++
				}
			}
		}
	}
	pl.Data = out
}

// transposeBC exchanges within the column communicator: Y becomes
// distributed (ly2 per rank), Z becomes full. B layout [lx][lz2][NY] <->
// C layout [lx][ly2][NZ]. Pack order within a block: (x, z, y).
func (pl *PencilPlan) transposeBC(inverse bool) {
	per := pl.lx * pl.ly2 * pl.lz2 * 16
	if !inverse {
		sb := pl.colSend.Bytes()
		for k := 0; k < pl.P2; k++ {
			i := 0
			off := k * per
			for x := 0; x < pl.lx; x++ {
				for z := 0; z < pl.lz2; z++ {
					base := (x*pl.lz2+z)*pl.NY + k*pl.ly2
					for y := 0; y < pl.ly2; y++ {
						putC128(sb[off+i*16:], pl.Data[base+y])
						i++
					}
				}
			}
		}
		pl.colXchg(pl.colSend.Addr(), pl.colRecv.Addr(), per)
		rb := pl.colRecv.Bytes()
		out := make([]complex128, pl.lx*pl.ly2*pl.NZ)
		for k := 0; k < pl.P2; k++ {
			i := 0
			off := k * per
			for x := 0; x < pl.lx; x++ {
				for z := 0; z < pl.lz2; z++ {
					gz := k*pl.lz2 + z
					for y := 0; y < pl.ly2; y++ {
						out[(x*pl.ly2+y)*pl.NZ+gz] = getC128(rb[off+i*16:])
						i++
					}
				}
			}
		}
		pl.Data = out
		return
	}
	// Inverse: C -> B.
	sb := pl.colSend.Bytes()
	for k := 0; k < pl.P2; k++ {
		i := 0
		off := k * per
		for x := 0; x < pl.lx; x++ {
			for z := 0; z < pl.lz2; z++ {
				gz := k*pl.lz2 + z
				for y := 0; y < pl.ly2; y++ {
					putC128(sb[off+i*16:], pl.Data[(x*pl.ly2+y)*pl.NZ+gz])
					i++
				}
			}
		}
	}
	pl.colXchg(pl.colSend.Addr(), pl.colRecv.Addr(), per)
	rb := pl.colRecv.Bytes()
	out := make([]complex128, pl.lx*pl.lz2*pl.NY)
	for k := 0; k < pl.P2; k++ {
		i := 0
		off := k * per
		for x := 0; x < pl.lx; x++ {
			for z := 0; z < pl.lz2; z++ {
				base := (x*pl.lz2+z)*pl.NY + k*pl.ly2
				for y := 0; y < pl.ly2; y++ {
					out[base+y] = getC128(rb[off+i*16:])
					i++
				}
			}
		}
	}
	pl.Data = out
}
