package fft

import (
	"encoding/binary"
	"fmt"
	"math"

	"repro/internal/coll"
	"repro/internal/mem"
	"repro/internal/mpi"
)

// Plan is a distributed 3D FFT with real complex128 data under a slab
// decomposition: before the transpose each rank owns NZ/P contiguous
// z-planes (layout [lz][NY][NX]); after it each rank owns NX/P x-columns
// (layout [lx][NY][NZ]).
type Plan struct {
	r   *mpi.Rank
	ops coll.Ops

	NX, NY, NZ int
	P          int // ranks
	lz, lx     int // local slab thickness before/after transpose

	// Data is the local slab, [lz*NY*NX] before the forward transpose and
	// [lx*NY*NZ] after it.
	Data []complex128

	send *mem.Buffer
	recv *mem.Buffer
}

// NewPlan validates dimensions and allocates exchange buffers (payload
// backed so that the transpose really moves the data through the simulated
// fabric).
func NewPlan(r *mpi.Rank, ops coll.Ops, nx, ny, nz int) (*Plan, error) {
	p := r.Size()
	for _, d := range []int{nx, ny, nz} {
		if d&(d-1) != 0 {
			return nil, fmt.Errorf("fft: dimension %d not a power of two", d)
		}
	}
	if nz%p != 0 || nx%p != 0 {
		return nil, fmt.Errorf("fft: NZ=%d and NX=%d must be divisible by %d ranks", nz, nx, p)
	}
	pl := &Plan{
		r: r, ops: ops,
		NX: nx, NY: ny, NZ: nz, P: p,
		lz: nz / p, lx: nx / p,
		Data: make([]complex128, nz/p*ny*nx),
	}
	total := pl.blockElems() * p * 16
	pl.send = r.Alloc(total)
	pl.recv = r.Alloc(total)
	if !pl.send.Backed() {
		return nil, fmt.Errorf("fft: Plan requires payload-backed buffers")
	}
	return pl, nil
}

// blockElems is the element count of one rank-to-rank transpose block.
func (pl *Plan) blockElems() int { return pl.lz * pl.NY * pl.lx }

// Forward computes the 3D forward FFT: local X and Y transforms on each
// z-plane, a global transpose (all-to-all), then local Z transforms.
func (pl *Plan) Forward() { pl.transform(false) }

// Backward computes the inverse transform (Forward then Backward restores
// the input).
func (pl *Plan) Backward() { pl.transform(true) }

func (pl *Plan) transform(inverse bool) {
	if !inverse {
		pl.xyTransforms(inverse)
		pl.transposeZtoX()
		pl.zTransforms(inverse)
	} else {
		pl.zTransforms(inverse)
		pl.transposeXtoZ()
		pl.xyTransforms(inverse)
	}
}

// xyTransforms applies 1D FFTs along X then Y for every local z-plane
// (layout [lz][NY][NX]).
func (pl *Plan) xyTransforms(inverse bool) {
	nx, ny := pl.NX, pl.NY
	col := make([]complex128, ny)
	for z := 0; z < pl.lz; z++ {
		plane := pl.Data[z*ny*nx : (z+1)*ny*nx]
		for y := 0; y < ny; y++ {
			Transform(plane[y*nx:(y+1)*nx], inverse)
		}
		for x := 0; x < nx; x++ {
			for y := 0; y < ny; y++ {
				col[y] = plane[y*nx+x]
			}
			Transform(col, inverse)
			for y := 0; y < ny; y++ {
				plane[y*nx+x] = col[y]
			}
		}
	}
}

// zTransforms applies 1D FFTs along Z in the post-transpose layout
// [lx][NY][NZ].
func (pl *Plan) zTransforms(inverse bool) {
	nz, ny := pl.NZ, pl.NY
	for x := 0; x < pl.lx; x++ {
		for y := 0; y < ny; y++ {
			Transform(pl.Data[(x*ny+y)*nz:(x*ny+y)*nz+nz], inverse)
		}
	}
}

// transposeZtoX exchanges slabs so that X becomes the distributed
// dimension: rank j receives, from every rank, the x-range it owns.
func (pl *Plan) transposeZtoX() {
	nx, ny, nz := pl.NX, pl.NY, pl.NZ
	be := pl.blockElems()
	sb := pl.send.Bytes()
	// Pack: block for rank j = (z local, y, x in j's slab).
	for j := 0; j < pl.P; j++ {
		off := j * be * 16
		i := 0
		for z := 0; z < pl.lz; z++ {
			for y := 0; y < ny; y++ {
				base := (z*ny+y)*nx + j*pl.lx
				for x := 0; x < pl.lx; x++ {
					putC128(sb[off+i*16:], pl.Data[base+x])
					i++
				}
			}
		}
	}
	pl.exchange()
	// Unpack into [lx][NY][NZ]: block from rank j carries z-range j.
	rb := pl.recv.Bytes()
	out := make([]complex128, pl.lx*ny*nz)
	for j := 0; j < pl.P; j++ {
		off := j * be * 16
		i := 0
		for zz := 0; zz < pl.lz; zz++ {
			z := j*pl.lz + zz
			for y := 0; y < ny; y++ {
				for x := 0; x < pl.lx; x++ {
					out[(x*ny+y)*nz+z] = getC128(rb[off+i*16:])
					i++
				}
			}
		}
	}
	pl.Data = out
}

// transposeXtoZ is the inverse exchange, restoring the z-slab layout.
func (pl *Plan) transposeXtoZ() {
	nx, ny, nz := pl.NX, pl.NY, pl.NZ
	be := pl.blockElems()
	sb := pl.send.Bytes()
	// Pack: block for rank j = (x local, y, z in j's slab).
	for j := 0; j < pl.P; j++ {
		off := j * be * 16
		i := 0
		for zz := 0; zz < pl.lz; zz++ {
			z := j*pl.lz + zz
			for y := 0; y < ny; y++ {
				for x := 0; x < pl.lx; x++ {
					putC128(sb[off+i*16:], pl.Data[(x*ny+y)*nz+z])
					i++
				}
			}
		}
	}
	pl.exchange()
	rb := pl.recv.Bytes()
	out := make([]complex128, pl.lz*ny*nx)
	for j := 0; j < pl.P; j++ {
		off := j * be * 16
		i := 0
		for z := 0; z < pl.lz; z++ {
			for y := 0; y < ny; y++ {
				base := (z*ny+y)*nx + j*pl.lx
				for x := 0; x < pl.lx; x++ {
					out[base+x] = getC128(rb[off+i*16:])
					i++
				}
			}
		}
	}
	pl.Data = out
}

// exchange runs the all-to-all through the configured backend (so the
// correctness of offloaded transposes is exercised end to end).
func (pl *Plan) exchange() {
	per := pl.blockElems() * 16
	pl.ops.Wait(pl.ops.Ialltoall(0, pl.send.Addr(), pl.recv.Addr(), per))
}

func putC128(b []byte, v complex128) {
	binary.LittleEndian.PutUint64(b, math.Float64bits(real(v)))
	binary.LittleEndian.PutUint64(b[8:], math.Float64bits(imag(v)))
}

func getC128(b []byte) complex128 {
	return complex(
		math.Float64frombits(binary.LittleEndian.Uint64(b)),
		math.Float64frombits(binary.LittleEndian.Uint64(b[8:])),
	)
}
