package gvmi

import (
	"bytes"
	"errors"
	"testing"

	"repro/internal/device"
	"repro/internal/fabric"
	"repro/internal/mem"
	"repro/internal/sim"
	"repro/internal/verbs"
)

type rig struct {
	k       *sim.Kernel
	f       *fabric.Fabric
	r       *verbs.Registry
	m       *Manager
	hostSp  []*mem.Space
	hostCtx []*verbs.Ctx
	dpuSp   []*mem.Space
	dpuCtx  []*verbs.Ctx
}

// newRig builds n nodes, each with one host process and one DPU proxy.
func newRig(n int) *rig {
	k := sim.NewKernel()
	f := fabric.New(k, fabric.DefaultConfig())
	r := verbs.NewRegistry(f, verbs.DefaultCosts())
	m := NewManager(r, DefaultCosts())
	rg := &rig{k: k, f: f, r: r, m: m}
	for i := 0; i < n; i++ {
		hs := mem.NewSpace("host")
		hep := f.NewEndpoint("host", i, device.Baseline().HostPort)
		rg.hostSp = append(rg.hostSp, hs)
		rg.hostCtx = append(rg.hostCtx, r.NewCtx("host", hs, hep))
		ds := mem.NewSpace("dpu")
		dep := f.NewEndpoint("dpu", i, device.Baseline().DPUPort)
		rg.dpuSp = append(rg.dpuSp, ds)
		rg.dpuCtx = append(rg.dpuCtx, r.NewCtx("dpu", ds, dep))
	}
	return rg
}

func TestGenerateIDUnique(t *testing.T) {
	rg := newRig(2)
	a := rg.m.GenerateID(rg.dpuCtx[0])
	b := rg.m.GenerateID(rg.dpuCtx[1])
	if a == b {
		t.Fatal("GVMI-IDs not unique")
	}
}

func TestHostRegisterUnknownID(t *testing.T) {
	rg := newRig(1)
	rg.k.Spawn("h", func(p *sim.Proc) {
		buf := rg.hostSp[0].Alloc(64, true)
		_, err := rg.m.RegisterHost(p, rg.hostCtx[0], buf.Addr(), 64, ID(77))
		if !errors.Is(err, ErrUnknownGVMI) {
			t.Errorf("err = %v, want ErrUnknownGVMI", err)
		}
	})
	rg.k.Run()
}

func TestCrossRegisterValidation(t *testing.T) {
	rg := newRig(2)
	rg.k.Spawn("p", func(p *sim.Proc) {
		id0 := rg.m.GenerateID(rg.dpuCtx[0])
		id1 := rg.m.GenerateID(rg.dpuCtx[1])
		buf := rg.hostSp[0].Alloc(8192, true)
		info, err := rg.m.RegisterHost(p, rg.hostCtx[0], buf.Addr(), 8192, id0)
		if err != nil {
			t.Fatalf("RegisterHost: %v", err)
		}

		// Wrong DPU ctx (owns a different GVMI-ID).
		if _, err := rg.m.CrossRegister(p, rg.dpuCtx[1], info); !errors.Is(err, ErrWrongOwner) {
			t.Errorf("wrong owner: err = %v", err)
		}
		// Tampered size.
		bad := info
		bad.Size = 4096
		if _, err := rg.m.CrossRegister(p, rg.dpuCtx[0], bad); !errors.Is(err, ErrMKeyMismatch) {
			t.Errorf("tampered size: err = %v", err)
		}
		// Unknown mkey.
		bad = info
		bad.MKey = 0xDEAD
		if _, err := rg.m.CrossRegister(p, rg.dpuCtx[0], bad); !errors.Is(err, ErrUnknownMKey) {
			t.Errorf("unknown mkey: err = %v", err)
		}
		// Unknown gvmi id in info.
		bad = info
		bad.Gvmi = 999
		if _, err := rg.m.CrossRegister(p, rg.dpuCtx[0], bad); !errors.Is(err, ErrUnknownGVMI) {
			t.Errorf("unknown gvmi: err = %v", err)
		}
		// Correct parameters succeed.
		mr, err := rg.m.CrossRegister(p, rg.dpuCtx[0], info)
		if err != nil || mr == nil {
			t.Fatalf("valid cross-register failed: %v", err)
		}
		_ = id1
	})
	rg.k.Run()
}

func TestRegistrationCostsMatchModel(t *testing.T) {
	rg := newRig(1)
	const size = 64 << 10
	var hostCost, crossCost sim.Time
	rg.k.Spawn("p", func(p *sim.Proc) {
		id := rg.m.GenerateID(rg.dpuCtx[0])
		buf := rg.hostSp[0].Alloc(size, false)
		t0 := p.Now()
		info, _ := rg.m.RegisterHost(p, rg.hostCtx[0], buf.Addr(), size, id)
		hostCost = p.Now() - t0
		t0 = p.Now()
		if _, err := rg.m.CrossRegister(p, rg.dpuCtx[0], info); err != nil {
			t.Errorf("CrossRegister: %v", err)
		}
		crossCost = p.Now() - t0
	})
	rg.k.Run()
	c := rg.m.Costs()
	if hostCost != c.HostRegCost(size) {
		t.Fatalf("host reg cost %v, want %v", hostCost, c.HostRegCost(size))
	}
	if crossCost != c.CrossRegCost(size) {
		t.Fatalf("cross reg cost %v, want %v", crossCost, c.CrossRegCost(size))
	}
	if crossCost <= hostCost {
		t.Fatal("cross-registration should cost more than host registration (Fig 5)")
	}
}

// The headline mechanism: a DPU proxy posts an RDMA write whose lkey is a
// cross-registered mkey2, moving bytes directly from the local *host*
// process's memory into a remote host's memory — no staging through DPU
// DRAM.
func TestGVMIWriteOnBehalfOfHost(t *testing.T) {
	rg := newRig(2)
	src := rg.hostSp[0].Alloc(512, true)
	dst := rg.hostSp[1].Alloc(512, true)
	for i := range src.Bytes() {
		src.Bytes()[i] = byte(i * 7)
	}
	done := false
	rg.k.Spawn("proxy0", func(p *sim.Proc) {
		id := rg.m.GenerateID(rg.dpuCtx[0])
		// Host registers and ships MKeyInfo (tested elsewhere; inline here).
		info, err := rg.m.RegisterHost(p, rg.hostCtx[0], src.Addr(), 512, id)
		if err != nil {
			t.Errorf("RegisterHost: %v", err)
			return
		}
		dmr := rg.hostCtx[1].RegisterMR(p, dst.Addr(), 512)
		mkey2, err := rg.m.CrossRegister(p, rg.dpuCtx[0], info)
		if err != nil {
			t.Errorf("CrossRegister: %v", err)
			return
		}
		err = rg.dpuCtx[0].PostWrite(p, verbs.WriteOp{
			LocalKey: mkey2.LKey(), LocalAddr: src.Addr(),
			RemoteKey: dmr.RKey(), RemoteAddr: dst.Addr(), Size: 512,
			OnRemoteComplete: func(sim.Time) { done = true },
		})
		if err != nil {
			t.Errorf("PostWrite: %v", err)
		}
	})
	rg.k.Run()
	if !done {
		t.Fatal("transfer never completed")
	}
	if !bytes.Equal(dst.Bytes(), src.Bytes()) {
		t.Fatal("GVMI transfer corrupted payload")
	}
}

func TestInvalidateHost(t *testing.T) {
	rg := newRig(1)
	rg.k.Spawn("p", func(p *sim.Proc) {
		id := rg.m.GenerateID(rg.dpuCtx[0])
		buf := rg.hostSp[0].Alloc(64, false)
		info, _ := rg.m.RegisterHost(p, rg.hostCtx[0], buf.Addr(), 64, id)
		rg.m.InvalidateHost(info.MKey)
		if _, err := rg.m.CrossRegister(p, rg.dpuCtx[0], info); !errors.Is(err, ErrUnknownMKey) {
			t.Errorf("invalidated mkey still accepted: %v", err)
		}
	})
	rg.k.Run()
}

func TestStatsAccumulate(t *testing.T) {
	rg := newRig(1)
	rg.k.Spawn("p", func(p *sim.Proc) {
		id := rg.m.GenerateID(rg.dpuCtx[0])
		for i := 0; i < 3; i++ {
			buf := rg.hostSp[0].Alloc(4096, false)
			info, _ := rg.m.RegisterHost(p, rg.hostCtx[0], buf.Addr(), 4096, id)
			if _, err := rg.m.CrossRegister(p, rg.dpuCtx[0], info); err != nil {
				t.Errorf("CrossRegister: %v", err)
			}
		}
	})
	rg.k.Run()
	if rg.m.HostRegs != 3 || rg.m.CrossRegs != 3 {
		t.Fatalf("stats: %d host / %d cross, want 3/3", rg.m.HostRegs, rg.m.CrossRegs)
	}
	if rg.m.HostRegTime <= 0 || rg.m.CrossRegTime <= rg.m.HostRegTime {
		t.Fatalf("reg time stats inconsistent: %v / %v", rg.m.HostRegTime, rg.m.CrossRegTime)
	}
}
