// Package gvmi models NVIDIA's cross-GVMI capability: the mechanism that
// lets a BlueField DPU process issue RDMA operations on behalf of a host
// process, directly from/into host memory, without staging.
//
// The protocol follows Section V of the paper:
//
//  1. A DPU (proxy) process generates a GVMI-ID, once per protection domain,
//     and shares it with its host processes.
//  2. A host process registers a buffer against that GVMI-ID, obtaining an
//     mkey, and ships (addr, size, mkey, gvmi-id) to the DPU process.
//  3. The DPU process cross-registers using exactly those parameters,
//     obtaining mkey2, which then acts as an lkey for RDMA posted by the
//     DPU while the data streams from the host buffer.
//
// Both registrations have distinct, size-dependent costs (the paper's
// Figure 5); cross-registration validates that the supplied parameters match
// the host registration, which is why naive single-sided registration caches
// are incorrect (Challenge 3).
package gvmi

import (
	"errors"
	"fmt"

	"repro/internal/mem"
	"repro/internal/sim"
	"repro/internal/verbs"
)

// ID identifies a guest virtual machine identifier (one per DPU protection
// domain).
type ID uint32

// MKeyInfo is the metadata a host process sends to a proxy so the proxy can
// cross-register: everything in it travels in RTS control messages.
type MKeyInfo struct {
	Addr mem.Addr
	Size int
	MKey verbs.Key
	Gvmi ID
}

// WireSize is the serialized size of an MKeyInfo in control messages.
const WireSize = 8 + 8 + 4 + 4

// CostConfig models the two registration costs.
type CostConfig struct {
	HostRegBase     sim.Time // host-side GVMI registration, fixed
	HostRegPerPage  sim.Time
	CrossRegBase    sim.Time // DPU-side cross-registration, fixed
	CrossRegPerPage sim.Time
	PageSize        int
}

// DefaultCosts gives the host registration roughly ibv_reg_mr costs and the
// cross-registration a higher base (mkey validation on slower ARM cores).
func DefaultCosts() CostConfig {
	return CostConfig{
		HostRegBase:     2200 * sim.Nanosecond,
		HostRegPerPage:  260 * sim.Nanosecond,
		CrossRegBase:    3500 * sim.Nanosecond,
		CrossRegPerPage: 320 * sim.Nanosecond,
		PageSize:        4096,
	}
}

func (c CostConfig) pages(size int) sim.Time {
	p := (size + c.PageSize - 1) / c.PageSize
	if p < 1 {
		p = 1
	}
	return sim.Time(p)
}

// HostRegCost returns the host-side registration cost for size bytes.
func (c CostConfig) HostRegCost(size int) sim.Time {
	return c.HostRegBase + c.pages(size)*c.HostRegPerPage
}

// CrossRegCost returns the DPU-side cross-registration cost for size bytes.
func (c CostConfig) CrossRegCost(size int) sim.Time {
	return c.CrossRegBase + c.pages(size)*c.CrossRegPerPage
}

// Manager owns GVMI-IDs and the mkey table for one simulation.
type Manager struct {
	reg    *verbs.Registry
	costs  CostConfig
	nextID ID
	nextMK verbs.Key
	owners map[ID]*verbs.Ctx       // gvmi-id -> DPU ctx that generated it
	mkeys  map[verbs.Key]hostEntry // mkey -> host registration record

	// Stats
	HostRegs     int64
	CrossRegs    int64
	HostRegTime  sim.Time
	CrossRegTime sim.Time
}

type hostEntry struct {
	info  MKeyInfo
	space *mem.Space
}

// NewManager creates a GVMI manager sharing the verbs registry's fabric.
func NewManager(reg *verbs.Registry, costs CostConfig) *Manager {
	return &Manager{
		reg:    reg,
		costs:  costs,
		nextID: 1,
		nextMK: 1 << 20, // disjoint from verbs keys
		owners: make(map[ID]*verbs.Ctx),
		mkeys:  make(map[verbs.Key]hostEntry),
	}
}

// Costs returns the manager's cost configuration.
func (m *Manager) Costs() CostConfig { return m.costs }

// GenerateID creates a GVMI-ID owned by the DPU context (done once per
// protection domain, inside Init_Offload).
func (m *Manager) GenerateID(dpuCtx *verbs.Ctx) ID {
	id := m.nextID
	m.nextID++
	m.owners[id] = dpuCtx
	return id
}

// Errors returned by cross-registration validation.
var (
	ErrUnknownGVMI  = errors.New("gvmi: unknown GVMI-ID")
	ErrUnknownMKey  = errors.New("gvmi: unknown mkey")
	ErrMKeyMismatch = errors.New("gvmi: mkey parameters do not match host registration")
	ErrWrongOwner   = errors.New("gvmi: GVMI-ID not owned by this DPU context")
)

// RegisterHost performs the host-side GVMI registration of
// [addr, addr+size) against the proxy's GVMI-ID, charging p the host
// registration cost. The returned MKeyInfo is what travels to the proxy.
func (m *Manager) RegisterHost(p *sim.Proc, hostCtx *verbs.Ctx, addr mem.Addr, size int, id ID) (MKeyInfo, error) {
	if _, ok := m.owners[id]; !ok {
		return MKeyInfo{}, fmt.Errorf("%w: %d", ErrUnknownGVMI, id)
	}
	cost := m.costs.HostRegCost(size)
	m.HostRegs++
	m.HostRegTime += cost
	p.AdvanceBusy(cost)

	m.nextMK++
	info := MKeyInfo{Addr: addr, Size: size, MKey: m.nextMK, Gvmi: id}
	m.mkeys[info.MKey] = hostEntry{info: info, space: hostCtx.Space()}
	return info, nil
}

// CrossRegister performs the DPU-side registration: it validates the
// host-supplied parameters and mints mkey2 — a verbs MR owned by the DPU
// context but backed by the host buffer, usable as the lkey of RDMA writes
// the proxy posts on the host's behalf. p is charged the cross-registration
// cost.
func (m *Manager) CrossRegister(p *sim.Proc, dpuCtx *verbs.Ctx, info MKeyInfo) (*verbs.MR, error) {
	owner, ok := m.owners[info.Gvmi]
	if !ok {
		return nil, fmt.Errorf("%w: %d", ErrUnknownGVMI, info.Gvmi)
	}
	if owner != dpuCtx {
		return nil, fmt.Errorf("%w: id %d", ErrWrongOwner, info.Gvmi)
	}
	ent, ok := m.mkeys[info.MKey]
	if !ok {
		return nil, fmt.Errorf("%w: %d", ErrUnknownMKey, info.MKey)
	}
	if ent.info != info {
		return nil, fmt.Errorf("%w: got %+v want %+v", ErrMKeyMismatch, info, ent.info)
	}
	cost := m.costs.CrossRegCost(info.Size)
	m.CrossRegs++
	m.CrossRegTime += cost
	p.AdvanceBusy(cost)

	return m.reg.InsertForeignMR(dpuCtx, ent.space, info.Addr, info.Size), nil
}

// InvalidateHost removes an mkey (host buffer freed / cache eviction).
func (m *Manager) InvalidateHost(mk verbs.Key) { delete(m.mkeys, mk) }
