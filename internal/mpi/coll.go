package mpi

import (
	"encoding/binary"
	"math"

	"repro/internal/mem"
)

// collTagBase separates collective traffic from application tags. Every
// collective call consumes one sequence number; since MPI requires all ranks
// to issue collectives in the same order, equal sequence numbers identify
// the same operation across ranks.
const collTagBase = 1 << 20

func (r *Rank) nextCollTag() int {
	t := collTagBase + r.collSeq
	r.collSeq++
	return t
}

// Barrier blocks until all ranks have entered (dissemination algorithm,
// ceil(log2 np) rounds of zero-byte messages).
func (r *Rank) Barrier() {
	t0 := r.enter()
	defer r.leave(t0)
	np := r.Size()
	if np == 1 {
		return
	}
	tag := r.nextCollTag()
	zero := r.scratch(1)
	for off := 1; off < np; off <<= 1 {
		dst := (r.rank + off) % np
		src := (r.rank - off + np) % np
		sq := r.Isend(zero, 0, dst, tag)
		rq := r.Irecv(zero, 0, src, tag)
		r.waitFor(func() bool { return sq.done && rq.done })
	}
}

// scratch returns a small reusable scratch allocation.
func (r *Rank) scratch(size int) mem.Addr {
	if r.scratchBuf == nil || r.scratchBuf.Size() < size {
		r.scratchBuf = r.Alloc(size)
	}
	return r.scratchBuf.Addr()
}

// Bcast broadcasts [addr, addr+size) from root (binomial tree).
func (r *Rank) Bcast(addr mem.Addr, size, root int) {
	t0 := r.enter()
	defer r.leave(t0)
	np := r.Size()
	tag := r.nextCollTag()
	if np == 1 {
		return
	}
	rel := (r.rank - root + np) % np
	mask := 1
	for mask < np {
		if rel&mask != 0 {
			src := (rel - mask + root) % np
			r.Recv(addr, size, src, tag)
			break
		}
		mask <<= 1
	}
	mask >>= 1
	for mask > 0 {
		if rel+mask < np {
			dst := (rel + mask + root) % np
			r.Send(addr, size, dst, tag)
		}
		mask >>= 1
	}
}

// Alltoall performs a personalized all-to-all exchange: per bytes go from
// sendAddr+dst*per on each rank to recvAddr+src*per on every other
// (scatter-destination schedule, all transfers posted up front).
func (r *Rank) Alltoall(sendAddr, recvAddr mem.Addr, per int) {
	req := r.Ialltoall(sendAddr, recvAddr, per)
	r.WaitColl(req)
}

// Allgather gathers per bytes from every rank into recvAddr (ring
// algorithm: np-1 forwarding steps).
func (r *Rank) Allgather(sendAddr, recvAddr mem.Addr, per int) {
	t0 := r.enter()
	defer r.leave(t0)
	np := r.Size()
	tag := r.nextCollTag()
	// Place own contribution.
	self := snapshot(r.site.Space, sendAddr, per)
	r.site.Space.WriteAt(recvAddr+mem.Addr(r.rank*per), self, per)
	if np == 1 {
		return
	}
	right := (r.rank + 1) % np
	left := (r.rank - 1 + np) % np
	for step := 0; step < np-1; step++ {
		blkSend := (r.rank - step + np) % np
		blkRecv := (r.rank - step - 1 + np) % np
		sq := r.Isend(recvAddr+mem.Addr(blkSend*per), per, right, tag)
		rq := r.Irecv(recvAddr+mem.Addr(blkRecv*per), per, left, tag)
		r.waitFor(func() bool { return sq.done && rq.done })
	}
}

// Allreduce sums count float64 values from sendAddr into recvAddr on every
// rank (recursive doubling; for non-power-of-two sizes a preliminary fold
// reduces to the nearest power of two). With size-only buffers the data
// movement is still simulated; only the arithmetic is skipped.
func (r *Rank) Allreduce(sendAddr, recvAddr mem.Addr, count int) {
	t0 := r.enter()
	defer r.leave(t0)
	np := r.Size()
	tag := r.nextCollTag()
	bytes := count * 8

	buf := snapshot(r.site.Space, sendAddr, bytes)
	r.site.Space.WriteAt(recvAddr, buf, bytes)
	if np == 1 {
		return
	}
	tmp := r.Alloc(bytes)

	pof2 := 1
	for pof2*2 <= np {
		pof2 *= 2
	}
	rem := np - pof2
	newRank := -1
	switch {
	case r.rank < 2*rem && r.rank%2 == 0:
		// Fold: send everything to the odd neighbour, drop out.
		r.Send(recvAddr, bytes, r.rank+1, tag)
	case r.rank < 2*rem:
		r.Recv(tmp.Addr(), bytes, r.rank-1, tag)
		r.reduceInto(recvAddr, tmp.Addr(), count)
		newRank = r.rank / 2
	default:
		newRank = r.rank - rem
	}

	if newRank >= 0 {
		for mask := 1; mask < pof2; mask <<= 1 {
			peerNew := newRank ^ mask
			peer := peerNew + rem
			if peerNew < rem {
				peer = peerNew*2 + 1
			}
			sq := r.Isend(recvAddr, bytes, peer, tag)
			rq := r.Irecv(tmp.Addr(), bytes, peer, tag)
			r.waitFor(func() bool { return sq.done && rq.done })
			r.reduceInto(recvAddr, tmp.Addr(), count)
		}
	}

	// Unfold: odd partners return the result to the folded ranks.
	if r.rank < 2*rem {
		if r.rank%2 != 0 {
			r.Send(recvAddr, bytes, r.rank-1, tag)
		} else {
			r.Recv(recvAddr, bytes, r.rank+1, tag)
		}
	}
}

// reduceInto adds count float64s at src into dst (element-wise), when the
// space is payload-backed.
func (r *Rank) reduceInto(dst, src mem.Addr, count int) {
	d := r.site.Space.ReadAt(dst, count*8)
	s := r.site.Space.ReadAt(src, count*8)
	if d == nil || s == nil {
		return
	}
	for i := 0; i < count; i++ {
		a := math.Float64frombits(binary.LittleEndian.Uint64(d[i*8:]))
		b := math.Float64frombits(binary.LittleEndian.Uint64(s[i*8:]))
		binary.LittleEndian.PutUint64(d[i*8:], math.Float64bits(a+b))
	}
	r.site.Space.WriteAt(dst, d, count*8)
}
