package mpi

import "repro/internal/mem"

// CollRequest is a nonblocking-collective handle. Its schedule advances only
// inside MPI calls (Progress/Test/Wait) — the host-based baseline behaviour
// the paper measures against.
type CollRequest struct {
	r    *Rank
	done bool
	step func() bool // advances the schedule; reports completion
}

// Done reports completion without progressing.
func (c *CollRequest) Done() bool { return c.done }

func (r *Rank) addColl(c *CollRequest) *CollRequest {
	r.colls = append(r.colls, c)
	return c
}

// progressColls advances all active collective schedules.
func (r *Rank) progressColls() {
	for i := 0; i < len(r.colls); i++ {
		c := r.colls[i]
		if !c.done && c.step() {
			c.done = true
		}
		if c.done {
			r.colls = append(r.colls[:i], r.colls[i+1:]...)
			i--
		}
	}
}

// WaitColl blocks until the collective completes.
func (r *Rank) WaitColl(c *CollRequest) {
	t0 := r.enter()
	r.waitFor(func() bool { return c.done })
	r.leave(t0)
}

// TestColl progresses once and reports completion.
func (r *Rank) TestColl(c *CollRequest) bool {
	t0 := r.enter()
	r.Progress()
	r.leave(t0)
	return c.done
}

// Ialltoall starts a nonblocking personalized all-to-all: per bytes from
// sendAddr+dst*per to each dst's recvAddr+me*per. All point-to-point
// transfers are posted up front (scatter-destination schedule); completion
// requires further MPI calls.
func (r *Rank) Ialltoall(sendAddr, recvAddr mem.Addr, per int) *CollRequest {
	tag := r.nextCollTag()
	np, me := r.Size(), r.rank

	// Own block: local copy.
	self := snapshot(r.site.Space, sendAddr+mem.Addr(me*per), per)
	r.proc.AdvanceBusy(r.w.Cl.CopyCost(per))
	r.site.Space.WriteAt(recvAddr+mem.Addr(me*per), self, per)

	reqs := make([]*Request, 0, 2*(np-1))
	for i := 1; i < np; i++ {
		src := (me - i + np) % np
		reqs = append(reqs, r.Irecv(recvAddr+mem.Addr(src*per), per, src, tag))
	}
	for i := 1; i < np; i++ {
		dst := (me + i) % np
		reqs = append(reqs, r.Isend(sendAddr+mem.Addr(dst*per), per, dst, tag))
	}
	c := &CollRequest{r: r}
	c.step = func() bool {
		for _, q := range reqs {
			if !q.done {
				return false
			}
		}
		return true
	}
	return r.addColl(c)
}

// Iallgather starts a nonblocking ring allgather: per bytes from sendAddr
// land in every rank's recvAddr+src*per. Each forwarding step depends on
// the previous step's receive, so the schedule advances only as the CPU
// re-enters the library — the ordered-pattern limitation of Section II-A.
func (r *Rank) Iallgather(sendAddr, recvAddr mem.Addr, per int) *CollRequest {
	tag := r.nextCollTag()
	np, me := r.Size(), r.rank

	// Own contribution.
	self := snapshot(r.site.Space, sendAddr, per)
	r.proc.AdvanceBusy(r.w.Cl.CopyCost(per))
	r.site.Space.WriteAt(recvAddr+mem.Addr(me*per), self, per)

	c := &CollRequest{r: r}
	if np == 1 {
		c.step = func() bool { return true }
		return r.addColl(c)
	}
	right := (me + 1) % np
	left := (me - 1 + np) % np
	step := 0
	var sq, rq *Request
	post := func() {
		blkSend := (me - step + np) % np
		blkRecv := (me - step - 1 + np) % np
		sq = r.Isend(recvAddr+mem.Addr(blkSend*per), per, right, tag)
		rq = r.Irecv(recvAddr+mem.Addr(blkRecv*per), per, left, tag)
	}
	post()
	c.step = func() bool {
		for sq.done && rq.done {
			step++
			if step >= np-1 {
				return true
			}
			post()
		}
		return false
	}
	return r.addColl(c)
}

// Ibcast starts a nonblocking binomial-tree broadcast from root. Interior
// ranks forward to their children only after their own receive completes —
// and only when the CPU re-enters the library, the ordering limitation
// (Section II-A) that caps this baseline's overlap.
func (r *Rank) Ibcast(addr mem.Addr, size, root int) *CollRequest {
	tag := r.nextCollTag()
	np := r.Size()
	c := &CollRequest{r: r}
	if np == 1 {
		c.step = func() bool { return true }
		return r.addColl(c)
	}

	rel := (r.rank - root + np) % np
	// Parent and the mask level at which this rank receives.
	recvMask := 0
	for mask := 1; mask < np; mask <<= 1 {
		if rel&mask != 0 {
			recvMask = mask
			break
		}
	}
	var rq *Request
	if recvMask != 0 {
		src := (rel - recvMask + root) % np
		rq = r.Irecv(addr, size, src, tag)
	}

	sendsPosted := false
	var sends []*Request
	postSends := func() {
		startMask := recvMask >> 1
		if recvMask == 0 { // root: start at the top level
			m := 1
			for m < np {
				m <<= 1
			}
			startMask = m >> 1
		}
		for mask := startMask; mask > 0; mask >>= 1 {
			if rel+mask < np {
				dst := (rel + mask + root) % np
				sends = append(sends, r.Isend(addr, size, dst, tag))
			}
		}
		sendsPosted = true
	}
	if recvMask == 0 {
		postSends()
	}

	c.step = func() bool {
		if rq != nil && !rq.done {
			return false
		}
		if !sendsPosted {
			postSends()
		}
		for _, q := range sends {
			if !q.done {
				return false
			}
		}
		return true
	}
	return r.addColl(c)
}
