package mpi

import "fmt"

// Comm is a sub-communicator: an ordered subset of world ranks. Like
// MPI_Comm_split, creation is collective — every member must construct the
// communicator with the identical member list and in the same creation
// order (the creation index scopes the communicator's tag space; same-index
// communicators must have disjoint members, which Split guarantees).
//
// Collective operations are methods on Comm; the Rank-level collectives
// operate on the implicit world communicator.
type Comm struct {
	r       *Rank
	members []int // world ranks, in comm-rank order
	myIdx   int   // this rank's position in members
	tagBase int
	seq     int
}

// commTagStride separates tag spaces of distinct communicators.
const commTagStride = 1 << 24

// Comm returns the world communicator for this rank.
func (r *Rank) Comm() *Comm {
	if r.worldComm == nil {
		members := make([]int, r.Size())
		for i := range members {
			members[i] = i
		}
		r.worldComm = &Comm{r: r, members: members, myIdx: r.rank, tagBase: collTagBase}
	}
	return r.worldComm
}

// NewComm creates a sub-communicator from an explicit member list (world
// ranks, defining the comm-rank order). The calling rank must be a member.
// All members must call NewComm with the same list, as their commIdx'th
// communicator creation.
func (r *Rank) NewComm(members []int) *Comm {
	idx := -1
	for i, m := range members {
		if m == r.rank {
			idx = i
		}
	}
	if idx < 0 {
		panic(fmt.Sprintf("mpi: rank %d not in communicator %v", r.rank, members))
	}
	r.commSeq++
	return &Comm{
		r:       r,
		members: append([]int(nil), members...),
		myIdx:   idx,
		tagBase: collTagBase + r.commSeq*commTagStride,
	}
}

// Split partitions the world by color (MPI_Comm_split with key = world
// rank): every rank calls Split with its own color; ranks sharing a color
// form one communicator, ordered by world rank. color must be a pure
// function of the world rank (deterministic, no communication needed).
func (r *Rank) Split(color func(worldRank int) int) *Comm {
	mine := color(r.rank)
	var members []int
	for w := 0; w < r.Size(); w++ {
		if color(w) == mine {
			members = append(members, w)
		}
	}
	return r.NewComm(members)
}

// Size returns the communicator size.
func (c *Comm) Size() int { return len(c.members) }

// RankID returns this process's rank within the communicator.
func (c *Comm) RankID() int { return c.myIdx }

// World translates a comm rank to a world rank.
func (c *Comm) World(commRank int) int { return c.members[commRank] }

// Rank returns the underlying process handle.
func (c *Comm) Rank() *Rank { return c.r }

// nextTag allocates the next collective tag in this communicator's space.
// The world communicator shares the rank's collective sequence so that
// Rank-level and Comm-level world collectives never collide.
func (c *Comm) nextTag() int {
	if c.tagBase == collTagBase {
		return c.r.nextCollTag()
	}
	t := c.tagBase + c.seq
	c.seq++
	return t
}
