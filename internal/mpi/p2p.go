package mpi

import (
	"fmt"

	"repro/internal/mem"
	"repro/internal/sim"
	"repro/internal/span"
	"repro/internal/verbs"
)

// Request is a nonblocking operation handle (MPI_Request).
type Request struct {
	r      *Rank
	isRecv bool
	addr   mem.Addr
	size   int
	peer   int // destination (send) or source-match (recv, AnySource ok)
	tag    int
	done   bool
	span   span.ID // root span of the operation (0 = untraced)
}

// Done reports completion without progressing (see Test).
func (q *Request) Done() bool { return q.done }

// inMsg is the receive-side view of an incoming message.
type inMsg struct {
	kind     string // "eager", "shm", "rts"
	src      int
	tag      int
	size     int
	data     []byte     // eager payload (nil for size-only buffers)
	srcSpace *mem.Space // shm: sender's space for the single-copy
	srcAddr  mem.Addr   // shm, rts: source buffer address
	sendReq  *Request   // shm, rts: sender's request to complete
	rkey     verbs.Key  // rts: key for the RDMA read
	srcCtx   *verbs.Ctx // sender's context (FIN destination, wakeups)
	span     span.ID    // sender's root span, carried across the hop
}

// spans returns the cluster's span collector (nil when tracing is off).
func (r *Rank) spans() *span.Collector { return r.w.Cl.Spans }

// entity returns the rank's span/trace entity name.
func (r *Rank) entity() string { return fmt.Sprintf("rank%d", r.rank) }

// startP2PSpan opens an mpi-layer root span for one point-to-point request.
func (r *Rank) startP2PSpan(req *Request, name string, peer int) {
	sp := r.spans()
	if !sp.Enabled() {
		return
	}
	req.span = sp.Start(r.spanParent, span.ClassRank, r.entity(), "mpi", name)
	sp.AttrInt(req.span, "peer", int64(peer))
	sp.AttrInt(req.span, "size", int64(req.size))
	sp.AttrInt(req.span, "tag", int64(req.tag))
}

// Isend starts a nonblocking send of [addr, addr+size) to rank dst.
func (r *Rank) Isend(addr mem.Addr, size, dst, tag int) *Request {
	req := &Request{r: r, addr: addr, size: size, peer: dst, tag: tag}
	r.startP2PSpan(req, "isend", dst)
	cl := r.w.Cl
	msg := &inMsg{src: r.rank, tag: tag, size: size, srcCtx: r.ctx, span: req.span}
	dstRank := r.w.ranks[dst]

	if dst == r.rank {
		// Self-send: treat as shm with zero latency.
		r.w.mShm.Inc()
		msg.kind = "shm"
		msg.srcSpace, msg.srcAddr, msg.sendReq = r.site.Space, addr, req
		r.deliverLocal(dstRank, msg, 0)
		return req
	}

	if r.w.SameNode(r.rank, dst) {
		r.w.mShm.Inc()
		if size <= r.w.cfg.EagerThreshold {
			// Copy-in/copy-out through a shared-memory slot; the send
			// completes once the copy-in is done.
			r.proc.AdvanceBusy(cl.CopyCost(size))
			msg.kind = "eager"
			msg.data = snapshot(r.site.Space, addr, size)
			r.deliverLocal(dstRank, msg, cl.Cfg.ShmLatency)
			req.done = true
			r.spans().End(req.span)
		} else {
			// Large intra-node: single copy performed by the receiver at
			// match time; the sender completes when the copy finishes.
			msg.kind = "shm"
			msg.srcSpace, msg.srcAddr, msg.sendReq = r.site.Space, addr, req
			r.deliverLocal(dstRank, msg, cl.Cfg.ShmLatency)
		}
		return req
	}

	if size <= r.w.cfg.EagerThreshold {
		// Eager: payload is copied into a pre-registered bounce buffer and
		// shipped with the header; the buffer is immediately reusable.
		r.w.mEager.Inc()
		r.proc.AdvanceBusy(cl.CopyCost(size))
		msg.kind = "eager"
		msg.data = snapshot(r.site.Space, addr, size)
		r.ctx.PostSend(r.proc, dstRank.ctx, &verbs.Packet{
			Kind: "mpi", Size: size + r.w.cfg.HeaderSize, Payload: msg, Span: req.span,
		})
		req.done = true
		r.spans().End(req.span)
		return req
	}

	// Rendezvous (RGET): register the source buffer (through the IB
	// registration cache) and send an RTS carrying the rkey; the receiver
	// RDMA-reads the data and FINs back. The send completes when the FIN is
	// processed — which requires this process to re-enter the library.
	r.w.mRdv.Inc()
	mr := r.registerCachedCtx(addr, size, req.span)
	msg.kind = "rts"
	msg.srcAddr, msg.rkey, msg.sendReq = addr, mr.RKey(), req
	r.ctx.PostSend(r.proc, dstRank.ctx, &verbs.Packet{
		Kind: "mpi", Size: r.w.cfg.HeaderSize, Payload: msg, Span: req.span,
	})
	return req
}

// Irecv starts a nonblocking receive into [addr, addr+size) from src
// (or AnySource) with the given tag (or AnyTag).
func (r *Rank) Irecv(addr mem.Addr, size, src, tag int) *Request {
	req := &Request{r: r, isRecv: true, addr: addr, size: size, peer: src, tag: tag}
	r.startP2PSpan(req, "irecv", src)
	// Check the unexpected queue first (arrival before post).
	for i, m := range r.unexpected {
		if matches(req, m) {
			r.unexpected = append(r.unexpected[:i], r.unexpected[i+1:]...)
			r.handleMatch(req, m)
			return req
		}
	}
	r.posted = append(r.posted, req)
	return req
}

// snapshot captures payload bytes if the buffer is backed.
func snapshot(sp *mem.Space, addr mem.Addr, size int) []byte {
	d := sp.ReadAt(addr, size)
	if d == nil {
		return nil
	}
	out := make([]byte, size)
	copy(out, d)
	return out
}

// registerCached returns an MR for [addr,size), registering on cache miss.
func (r *Rank) registerCached(addr mem.Addr, size int) *verbs.MR {
	return r.registerCachedCtx(addr, size, 0)
}

// registerCachedCtx is registerCached with span context: a cache miss
// records the registration under parent (hits record nothing).
func (r *Rank) registerCachedCtx(addr mem.Addr, size int, parent span.ID) *verbs.MR {
	mr, _ := r.regCache.GetOrCreate(0, addr, size, func() *verbs.MR {
		return r.ctx.RegisterMRCtx(r.proc, addr, size, parent)
	})
	return mr
}

// deliverLocal schedules an intra-node (shared-memory) delivery.
func (r *Rank) deliverLocal(dst *Rank, msg *inMsg, latency sim.Time) {
	k := r.w.Cl.K
	k.At(latency, func() {
		dst.shmIn = append(dst.shmIn, msg)
		dst.ctx.InboxCond.Broadcast()
	})
}

func matches(req *Request, m *inMsg) bool {
	if !req.isRecv {
		return false
	}
	if req.peer != AnySource && req.peer != m.src {
		return false
	}
	if req.tag != AnyTag && req.tag != m.tag {
		return false
	}
	return true
}

// handleMatch completes the protocol for a matched (request, message) pair.
// Runs in the receiver's process context. The matched-receive latency
// histogram measures match-to-data-landed time: ~the copy for eager/shm,
// the RDMA read for rendezvous.
func (r *Rank) handleMatch(req *Request, m *inMsg) {
	cl := r.w.Cl
	matchedAt := r.proc.Now()
	switch m.kind {
	case "eager":
		r.proc.AdvanceBusy(cl.CopyCost(m.size))
		r.site.Space.WriteAt(req.addr, m.data, m.size)
		req.done = true
		r.w.mRecvLat.Observe(r.proc.Now() - matchedAt)
		r.spans().End(req.span)
	case "shm":
		r.proc.AdvanceBusy(cl.CopyCost(m.size))
		var payload []byte
		if d := m.srcSpace.ReadAt(m.srcAddr, m.size); d != nil {
			payload = d
		}
		r.site.Space.WriteAt(req.addr, payload, m.size)
		req.done = true
		r.w.mRecvLat.Observe(r.proc.Now() - matchedAt)
		r.spans().End(req.span)
		m.sendReq.done = true
		r.spans().End(m.sendReq.span)
		m.srcCtx.InboxCond.Broadcast() // wake the sender if it is waiting
	case "rts":
		// Rendezvous: RDMA-read the payload from the sender's buffer.
		mr := r.registerCachedCtx(req.addr, req.size, req.span)
		err := r.ctx.PostRead(r.proc, verbs.ReadOp{
			LocalKey: mr.LKey(), LocalAddr: req.addr,
			RemoteKey: m.rkey, RemoteAddr: m.srcAddr,
			Size: m.size,
			Span: req.span,
			OnComplete: func(at sim.Time) {
				req.done = true
				r.w.mRecvLat.Observe(at - matchedAt)
				r.spans().EndAt(req.span, at)
				// FIN goes out the next time the receiver is inside the
				// library (the HCA completed; the CPU must post the FIN).
				// The FIN flight parents to the *sender's* span: it is the
				// tail of the sender's completion path.
				r.deferred = append(r.deferred, func() {
					r.ctx.PostSend(r.proc, m.srcCtx, &verbs.Packet{
						Kind: "mpi", Size: r.w.cfg.HeaderSize,
						Payload: &inMsg{kind: "fin", src: r.rank, sendReq: m.sendReq},
						Span:    m.span,
					})
				})
				r.ctx.InboxCond.Broadcast()
			},
		})
		if err != nil {
			panic("mpi: rendezvous read failed: " + err.Error())
		}
	default:
		panic("mpi: unknown message kind " + m.kind)
	}
}

// dispatch routes one incoming message: match a posted receive or queue it
// as unexpected. FINs complete the sender-side request directly.
func (r *Rank) dispatch(m *inMsg) {
	r.proc.AdvanceBusy(r.w.cfg.MatchCost)
	if m.kind == "fin" {
		m.sendReq.done = true
		r.spans().End(m.sendReq.span)
		return
	}
	for i, req := range r.posted {
		if matches(req, m) {
			r.posted = append(r.posted[:i], r.posted[i+1:]...)
			r.handleMatch(req, m)
			return
		}
	}
	r.unexpected = append(r.unexpected, m)
}

// Progress drains arrived messages and advances collective schedules. It is
// invoked by Test/Wait and the blocking operations — never asynchronously,
// which is precisely the limitation the offload framework removes.
func (r *Rank) Progress() {
	for {
		acted := false
		for len(r.deferred) > 0 {
			fns := r.deferred
			r.deferred = nil
			for _, fn := range fns {
				fn()
			}
			acted = true
		}
		if len(r.shmIn) > 0 {
			msgs := r.shmIn
			r.shmIn = nil
			for _, m := range msgs {
				r.dispatch(m)
			}
			acted = true
		}
		for _, pkt := range r.ctx.PollInbox() {
			r.dispatch(pkt.Payload.(*inMsg))
			acted = true
		}
		if !acted {
			break
		}
	}
	r.progressColls()
}

// idle reports that no work is available without blocking.
func (r *Rank) idle() bool {
	return len(r.deferred) == 0 && len(r.shmIn) == 0 && r.ctx.InboxLen() == 0
}

// waitFor progresses until pred holds, blocking (in virtual time) while no
// traffic is available.
func (r *Rank) waitFor(pred func() bool) {
	for {
		r.Progress()
		if pred() {
			return
		}
		if r.idle() {
			r.ctx.InboxCond.Wait(r.proc)
		}
	}
}

// Wait blocks until the request completes (MPI_Wait).
func (r *Rank) Wait(req *Request) {
	t0 := r.enter()
	r.waitFor(func() bool { return req.done })
	r.leave(t0)
}

// WaitAll blocks until every request completes (MPI_Waitall).
func (r *Rank) WaitAll(reqs ...*Request) {
	t0 := r.enter()
	r.waitFor(func() bool {
		for _, q := range reqs {
			if !q.done {
				return false
			}
		}
		return true
	})
	r.leave(t0)
}

// Test progresses once and reports whether the request has completed
// (MPI_Test).
func (r *Rank) Test(req *Request) bool {
	t0 := r.enter()
	r.Progress()
	r.leave(t0)
	return req.done
}

// Send is the blocking send (MPI_Send).
func (r *Rank) Send(addr mem.Addr, size, dst, tag int) {
	r.Wait(r.Isend(addr, size, dst, tag))
}

// Recv is the blocking receive (MPI_Recv).
func (r *Rank) Recv(addr mem.Addr, size, src, tag int) {
	r.Wait(r.Irecv(addr, size, src, tag))
}
