// Package mpi implements an MPI-like message-passing library on the
// simulated cluster: ranks, eager and rendezvous point-to-point transfer
// protocols with tag matching, blocking and nonblocking operations, and a
// set of collectives.
//
// Its progress model reproduces the semantics the paper's Section II-A
// criticizes: communication state machines advance only while the process
// is inside an MPI call (Test/Wait/blocking operations). Data that arrives
// while the application computes sits in the NIC until the next MPI call;
// dependent steps of a pattern (e.g. the forward leg of a ring broadcast)
// cannot start without CPU intervention. This is the "IntelMPI"-style host
// baseline the offload framework is compared against.
package mpi

import (
	"fmt"

	"repro/internal/cluster"
	"repro/internal/mem"
	"repro/internal/metrics"
	"repro/internal/regcache"
	"repro/internal/sim"
	"repro/internal/span"
	"repro/internal/verbs"
)

// Wildcards for Irecv matching.
const (
	AnySource = -1
	AnyTag    = -1
)

// Config tunes the library.
type Config struct {
	// EagerThreshold is the largest message sent eagerly (copied through
	// bounce buffers); larger messages use the rendezvous protocol.
	EagerThreshold int
	// HeaderSize is the wire size of a message header / control packet.
	HeaderSize int
	// MatchCost is the CPU cost of processing one incoming header.
	MatchCost sim.Time
	// RegCacheEntries bounds the per-peer IB registration cache
	// (0 = unbounded).
	RegCacheEntries int
}

// DefaultConfig returns production-typical settings (16 KiB eager cutoff).
func DefaultConfig() Config {
	return Config{
		EagerThreshold:  16 << 10,
		HeaderSize:      64,
		MatchCost:       60 * sim.Nanosecond,
		RegCacheEntries: 0,
	}
}

// World is a communicator spanning all host processes of the cluster (or,
// for placed worlds, the subset of node slots one tenant job occupies).
type World struct {
	Cl     *cluster.Cluster
	cfg    Config
	ranks  []*Rank
	nodeOf []int  // node of each world rank (placed worlds need not follow cluster geometry)
	prefix string // site/process name prefix ("" for the single-world case)

	// Metric handles; nil (inert) when metrics are off.
	mEager   *metrics.Counter
	mRdv     *metrics.Counter
	mShm     *metrics.Counter
	mRecvLat *metrics.Histogram
}

// NewWorld creates the world communicator and its rank state (processes are
// spawned by Launch). It spans every host slot of the cluster in the
// cluster's own rank geometry.
func NewWorld(cl *cluster.Cluster, cfg Config) *World {
	nodeOf := make([]int, cl.Cfg.NP())
	for i := range nodeOf {
		nodeOf[i] = cl.NodeOfRank(i)
	}
	return NewPlacedWorld(cl, cfg, "", nodeOf)
}

// NewPlacedWorld creates a world of len(nodeOf) ranks where world rank i
// lives on node nodeOf[i]. It is the multi-tenant constructor: several
// worlds can share one cluster, each occupying its own slice of every
// node's slots. prefix disambiguates site and process names between worlds
// ("" reproduces the single-world names). World ranks are dense and
// job-local; the cluster's NodeOfRank geometry does not apply to them.
func NewPlacedWorld(cl *cluster.Cluster, cfg Config, prefix string, nodeOf []int) *World {
	w := &World{Cl: cl, cfg: cfg, nodeOf: append([]int(nil), nodeOf...), prefix: prefix}
	if m := cl.Met; m.Enabled() {
		w.mEager = m.Counter("mpi", "all", "eager_msgs")
		w.mRdv = m.Counter("mpi", "all", "rendezvous_msgs")
		w.mShm = m.Counter("mpi", "all", "shm_msgs")
		w.mRecvLat = m.Histogram("mpi", "all", "recv_match_latency_ns")
	}
	np := len(nodeOf)
	for i := 0; i < np; i++ {
		site := cl.NewHostSite(nodeOf[i], fmt.Sprintf("%srank%d", prefix, i))
		r := &Rank{
			w:    w,
			rank: i,
			site: site,
			ctx:  site.Ctx,
			regCache: regcache.New[*verbs.MR](np, cfg.RegCacheEntries, func(mr *verbs.MR) {
				mr.Deregister()
			}),
		}
		r.regCache.Instrument(cl.Met, fmt.Sprintf("mpi.%srank%d", prefix, i))
		w.ranks = append(w.ranks, r)
	}
	return w
}

// SameNode reports whether two world ranks share a node. Placed worlds must
// use this instead of cluster.SameNode: world ranks are job-local and do
// not follow the cluster's rank geometry.
func (w *World) SameNode(a, b int) bool { return w.nodeOf[a] == w.nodeOf[b] }

// NodeOf returns the node a world rank lives on.
func (w *World) NodeOf(i int) int { return w.nodeOf[i] }

// Config returns the library configuration.
func (w *World) Config() Config { return w.cfg }

// Size returns the number of ranks.
func (w *World) Size() int { return len(w.ranks) }

// Rank returns rank i's state (for inspection; its methods must only be
// called from its own process).
func (w *World) Rank(i int) *Rank { return w.ranks[i] }

// Launch spawns one simulated process per rank running main. Call
// cluster.K.Run() afterwards to execute the program.
func (w *World) Launch(main func(r *Rank)) {
	for _, r := range w.ranks {
		r := r
		proc := w.Cl.K.Spawn(fmt.Sprintf("%srank%d", w.prefix, r.rank), func(p *sim.Proc) {
			r.proc = p
			main(r)
		})
		// Placement hint for sharded kernels: a rank's events stay on its
		// node's shard (a no-op on serial kernels).
		proc.SetShard(w.Cl.K.ShardIndex(w.nodeOf[r.rank]))
	}
}

// Rank is the per-process MPI state. All methods must be called from the
// rank's own simulated process.
type Rank struct {
	w    *World
	rank int
	site *cluster.Site
	ctx  *verbs.Ctx
	proc *sim.Proc

	posted     []*Request // posted receives, in post order
	unexpected []*inMsg   // arrived but unmatched messages
	deferred   []func()   // actions queued by handlers for the next progress
	shmIn      []*inMsg   // intra-node (shared-memory) arrivals
	colls      []*CollRequest
	collSeq    int // per-rank collective sequence number (tag separation)

	regCache   *regcache.Cache[*verbs.MR]
	scratchBuf *mem.Buffer
	worldComm  *Comm
	commSeq    int // sub-communicator creation counter (tag scoping)

	// Stats
	MPITime     sim.Time // time spent inside blocking/progress calls
	ComputeTime sim.Time // time spent in Compute

	// spanParent, when non-zero, parents every p2p root span the rank
	// opens. Collective wrappers that run on the host library (coll's
	// policy-routed host-direct path) set it around the host call so the
	// per-transfer mpi spans attach under the collective's root instead
	// of becoming roots themselves.
	spanParent span.ID
}

// SetSpanParent installs (or, with 0, clears) the ambient parent span of
// the rank's subsequently created p2p spans.
func (r *Rank) SetSpanParent(id span.ID) { r.spanParent = id }

// RankID returns the rank number.
func (r *Rank) RankID() int { return r.rank }

// Size returns the communicator size.
func (r *Rank) Size() int { return len(r.w.ranks) }

// Proc returns the rank's simulated process.
func (r *Rank) Proc() *sim.Proc { return r.proc }

// Site returns the rank's hardware attachment point.
func (r *Rank) Site() *cluster.Site { return r.site }

// World returns the communicator.
func (r *Rank) World() *World { return r.w }

// Space returns the rank's address space.
func (r *Rank) Space() *mem.Space { return r.site.Space }

// Alloc allocates a buffer in the rank's space, payload-backed according to
// the cluster configuration.
func (r *Rank) Alloc(size int) *mem.Buffer {
	return r.site.Space.Alloc(size, r.w.Cl.Cfg.BackedPayload)
}

// Compute models application computation for d: the CPU is busy and no MPI
// progress happens (the crux of the paper's semantic-mismatch argument).
func (r *Rank) Compute(d sim.Time) {
	r.ComputeTime += d
	r.proc.AdvanceBusy(d)
}

// Now returns the current virtual time.
func (r *Rank) Now() sim.Time { return r.proc.Now() }

// enter/leave bracket blocking MPI calls for the MPITime statistic.
func (r *Rank) enter() sim.Time { return r.proc.Now() }

func (r *Rank) leave(t0 sim.Time) { r.MPITime += r.proc.Now() - t0 }
