package mpi

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/cluster"
	"repro/internal/sim"
)

// Property: any random set of matched point-to-point transfers — mixed
// sizes straddling the eager/rendezvous threshold, random tags, random
// inter/intra-node pairs, posted in random order with random compute gaps —
// completes without deadlock and delivers exactly the sent bytes.
func TestPropertyRandomP2PTraffic(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nodes := 1 + rng.Intn(3)
		ppn := 1 + rng.Intn(3)
		cl := cluster.New(cluster.DefaultConfig(nodes, ppn))
		w := NewWorld(cl, DefaultConfig())
		np := cl.Cfg.NP()

		type xfer struct {
			src, dst, tag, size int
			seed                byte
		}
		n := 1 + rng.Intn(12)
		var xfers []xfer
		for i := 0; i < n; i++ {
			size := 1 << (4 + rng.Intn(14)) // 16B .. 128KiB
			xfers = append(xfers, xfer{
				src: rng.Intn(np), dst: rng.Intn(np),
				tag: rng.Intn(3), size: size, seed: byte(rng.Intn(256)),
			})
		}
		// Per-rank op lists in global order (preserves per-pair FIFO).
		gaps := make([]sim.Time, np)
		for i := range gaps {
			gaps[i] = sim.Time(rng.Intn(200)) * sim.Microsecond
		}

		ok := true
		w.Launch(func(r *Rank) {
			me := r.RankID()
			r.Compute(gaps[me])
			var reqs []*Request
			var checks []func() bool
			for i, x := range xfers {
				tag := x.tag*1000 + i // unique per transfer, FIFO irrelevant
				if x.src == me {
					buf := r.Alloc(x.size)
					for j := range buf.Bytes() {
						buf.Bytes()[j] = x.seed + byte(j)
					}
					reqs = append(reqs, r.Isend(buf.Addr(), x.size, x.dst, tag))
				}
				if x.dst == me {
					buf := r.Alloc(x.size)
					reqs = append(reqs, r.Irecv(buf.Addr(), x.size, x.src, tag))
					x := x
					checks = append(checks, func() bool {
						d := buf.Bytes()
						for j := 0; j < x.size; j += 251 {
							if d[j] != x.seed+byte(j) {
								return false
							}
						}
						return true
					})
				}
			}
			r.WaitAll(reqs...)
			for _, c := range checks {
				if !c() {
					ok = false
				}
			}
		})
		cl.K.Run()
		if len(cl.K.Deadlocked) > 0 {
			t.Logf("seed %d: deadlock (%d ranks)", seed, len(cl.K.Deadlocked))
			return false
		}
		if !ok {
			t.Logf("seed %d: payload corrupted", seed)
		}
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: self-send transfers of any size round-trip through the local
// path.
func TestPropertySelfSendAllSizes(t *testing.T) {
	f := func(rawSize uint16) bool {
		size := int(rawSize)%(64<<10) + 1
		good := true
		cl := cluster.New(cluster.DefaultConfig(1, 1))
		w := NewWorld(cl, DefaultConfig())
		w.Launch(func(r *Rank) {
			a, b := r.Alloc(size), r.Alloc(size)
			for i := range a.Bytes() {
				a.Bytes()[i] = byte(i * 7)
			}
			sq := r.Isend(a.Addr(), size, 0, 0)
			rq := r.Irecv(b.Addr(), size, 0, 0)
			r.WaitAll(sq, rq)
			for i := range b.Bytes() {
				if b.Bytes()[i] != byte(i*7) {
					good = false
					return
				}
			}
		})
		cl.K.Run()
		return good && len(cl.K.Deadlocked) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: collectives compose — a random sequence of barriers, bcasts and
// allgathers executes deadlock-free with correct payloads.
func TestPropertyCollectiveSequences(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nodes := 1 + rng.Intn(2)
		ppn := 1 + rng.Intn(3)
		nOps := 1 + rng.Intn(5)
		kinds := make([]int, nOps)
		roots := make([]int, nOps)
		np := nodes * ppn
		for i := range kinds {
			kinds[i] = rng.Intn(3)
			roots[i] = rng.Intn(np)
		}
		const size = 2048
		good := true

		cl := cluster.New(cluster.DefaultConfig(nodes, ppn))
		w := NewWorld(cl, DefaultConfig())
		w.Launch(func(r *Rank) {
			for i, k := range kinds {
				switch k {
				case 0:
					r.Barrier()
				case 1:
					buf := r.Alloc(size)
					if r.RankID() == roots[i] {
						fill(r, buf, byte(i*3+1))
					}
					r.Bcast(buf.Addr(), size, roots[i])
					if buf.Bytes()[0] != byte(i*3+1) {
						good = false
					}
				case 2:
					send, recv := r.Alloc(size), r.Alloc(np*size)
					fill(r, send, byte(r.RankID()+i))
					r.Allgather(send.Addr(), recv.Addr(), size)
					for src := 0; src < np; src++ {
						if recv.Bytes()[src*size] != byte(src+i) {
							good = false
						}
					}
				}
			}
		})
		cl.K.Run()
		if len(cl.K.Deadlocked) > 0 {
			t.Logf("seed %d: deadlock, ops %v", seed, kinds)
			return false
		}
		if !good {
			t.Logf("seed %d: wrong payload, ops %v roots %v np %d", seed, kinds, roots, np)
		}
		return good
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
