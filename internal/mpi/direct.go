package mpi

import (
	"repro/internal/datapath"
	"repro/internal/mem"
)

// Direct exposes a rank's nonblocking point-to-point operations behind the
// datapath.HostPoster interface: the HostDirect datapath posts through the
// host MPI library instead of a DPU proxy.
type Direct struct{ r *Rank }

var _ datapath.HostPoster = Direct{}

// Direct returns the rank's HostPoster view.
func (r *Rank) Direct() Direct { return Direct{r: r} }

// Isend implements datapath.HostPoster.
func (d Direct) Isend(addr mem.Addr, size, dst, tag int) datapath.Pending {
	return d.r.Isend(addr, size, dst, tag)
}

// Irecv implements datapath.HostPoster.
func (d Direct) Irecv(addr mem.Addr, size, src, tag int) datapath.Pending {
	return d.r.Irecv(addr, size, src, tag)
}
