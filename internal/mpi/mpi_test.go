package mpi

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"math"
	"testing"

	"repro/internal/cluster"
	"repro/internal/mem"
	"repro/internal/sim"
)

// runWorld builds a cluster, launches main on every rank and runs to
// completion, failing the test on deadlock.
func runWorld(t *testing.T, nodes, ppn int, main func(r *Rank)) *World {
	t.Helper()
	cl := cluster.New(cluster.DefaultConfig(nodes, ppn))
	w := NewWorld(cl, DefaultConfig())
	w.Launch(main)
	cl.K.Run()
	if len(cl.K.Deadlocked) > 0 {
		var names []string
		for _, p := range cl.K.Deadlocked {
			names = append(names, p.Name())
		}
		t.Fatalf("deadlocked processes: %v", names)
	}
	return w
}

func fill(r *Rank, b *mem.Buffer, seed byte) {
	if !b.Backed() {
		return
	}
	d := b.Bytes()
	for i := range d {
		d[i] = seed + byte(i)
	}
}

func TestEagerSendRecvInterNode(t *testing.T) {
	const size = 1024 // below eager threshold
	runWorld(t, 2, 1, func(r *Rank) {
		buf := r.Alloc(size)
		switch r.RankID() {
		case 0:
			fill(r, buf, 42)
			r.Send(buf.Addr(), size, 1, 7)
		case 1:
			r.Recv(buf.Addr(), size, 0, 7)
			want := make([]byte, size)
			for i := range want {
				want[i] = 42 + byte(i)
			}
			if !bytes.Equal(buf.Bytes(), want) {
				t.Error("eager payload corrupted")
			}
		}
	})
}

func TestRendezvousSendRecvInterNode(t *testing.T) {
	const size = 256 << 10 // above eager threshold
	runWorld(t, 2, 1, func(r *Rank) {
		buf := r.Alloc(size)
		switch r.RankID() {
		case 0:
			fill(r, buf, 9)
			r.Send(buf.Addr(), size, 1, 0)
		case 1:
			r.Recv(buf.Addr(), size, 0, 0)
			for i, b := range buf.Bytes() {
				if b != 9+byte(i) {
					t.Errorf("byte %d = %d", i, b)
					return
				}
			}
		}
	})
}

func TestIntraNodeShmPath(t *testing.T) {
	for _, size := range []int{512, 128 << 10} {
		size := size
		t.Run(fmt.Sprint(size), func(t *testing.T) {
			w := runWorld(t, 1, 2, func(r *Rank) {
				buf := r.Alloc(size)
				if r.RankID() == 0 {
					fill(r, buf, 1)
					r.Send(buf.Addr(), size, 1, 3)
				} else {
					r.Recv(buf.Addr(), size, 0, 3)
					if buf.Backed() && buf.Bytes()[size-1] != 1+byte(size-1) {
						t.Error("shm payload corrupted")
					}
				}
			})
			// Intra-node traffic must not touch the HCA.
			if n := w.Cl.Nodes[0].HostEP.MsgsSent; n != 0 {
				t.Errorf("intra-node send used the HCA (%d msgs)", n)
			}
		})
	}
}

func TestUnexpectedMessageQueue(t *testing.T) {
	runWorld(t, 2, 1, func(r *Rank) {
		buf := r.Alloc(512)
		switch r.RankID() {
		case 0:
			fill(r, buf, 5)
			r.Send(buf.Addr(), 512, 1, 11)
		case 1:
			r.Compute(50 * sim.Microsecond) // message arrives before post
			r.Recv(buf.Addr(), 512, 0, 11)
			if buf.Bytes()[0] != 5 {
				t.Error("unexpected-queue payload lost")
			}
		}
	})
}

func TestTagMatching(t *testing.T) {
	runWorld(t, 2, 1, func(r *Rank) {
		a, b := r.Alloc(64), r.Alloc(64)
		switch r.RankID() {
		case 0:
			fill(r, a, 10)
			fill(r, b, 20)
			r.Send(a.Addr(), 64, 1, 1)
			r.Send(b.Addr(), 64, 1, 2)
		case 1:
			// Post in reverse tag order: matching must be by tag.
			q2 := r.Irecv(b.Addr(), 64, 0, 2)
			q1 := r.Irecv(a.Addr(), 64, 0, 1)
			r.WaitAll(q1, q2)
			if a.Bytes()[0] != 10 || b.Bytes()[0] != 20 {
				t.Errorf("tag matching wrong: %d %d", a.Bytes()[0], b.Bytes()[0])
			}
		}
	})
}

func TestAnySourceAnyTag(t *testing.T) {
	runWorld(t, 2, 2, func(r *Rank) {
		buf := r.Alloc(64)
		if r.RankID() == 3 {
			fill(r, buf, 77)
			r.Send(buf.Addr(), 64, 0, 99)
		}
		if r.RankID() == 0 {
			r.Recv(buf.Addr(), 64, AnySource, AnyTag)
			if buf.Bytes()[0] != 77 {
				t.Error("wildcard receive failed")
			}
		}
	})
}

func TestTestDoesNotBlock(t *testing.T) {
	runWorld(t, 2, 1, func(r *Rank) {
		buf := r.Alloc(64 << 10)
		switch r.RankID() {
		case 0:
			r.Compute(100 * sim.Microsecond)
			r.Send(buf.Addr(), buf.Size(), 1, 0)
		case 1:
			q := r.Irecv(buf.Addr(), buf.Size(), 0, 0)
			polls := 0
			for !r.Test(q) {
				polls++
				r.Compute(5 * sim.Microsecond)
			}
			if polls == 0 {
				t.Error("Test returned done before sender even started")
			}
		}
	})
}

func TestRendezvousDelayedByComputeNoProgress(t *testing.T) {
	// The semantic-mismatch effect: a rendezvous message cannot complete
	// while the receiver computes without MPI calls.
	var recvDone sim.Time
	const size = 1 << 20
	const compute = 2 * sim.Millisecond
	runWorld(t, 2, 1, func(r *Rank) {
		buf := r.Alloc(size)
		switch r.RankID() {
		case 0:
			r.Send(buf.Addr(), size, 1, 0)
		case 1:
			q := r.Irecv(buf.Addr(), size, 0, 0)
			r.Compute(compute) // no progress during this
			r.Wait(q)
			recvDone = r.Now()
		}
	})
	if recvDone < compute {
		t.Fatalf("receive completed at %v, before compute ended at %v", recvDone, compute)
	}
}

func TestBarrierSynchronizes(t *testing.T) {
	const np = 7
	after := make([]sim.Time, np)
	var maxEnter sim.Time
	runWorld(t, np, 1, func(r *Rank) {
		d := sim.Time(r.RankID()) * 10 * sim.Microsecond
		r.Compute(d)
		if d > maxEnter {
			maxEnter = d
		}
		r.Barrier()
		after[r.RankID()] = r.Now()
	})
	for i, ts := range after {
		if ts < maxEnter {
			t.Fatalf("rank %d left barrier at %v before last entry %v", i, ts, maxEnter)
		}
	}
}

func TestBcastCorrectness(t *testing.T) {
	for _, np := range []int{2, 3, 4, 8} {
		np := np
		t.Run(fmt.Sprint(np), func(t *testing.T) {
			const size, root = 4096, 1
			runWorld(t, np, 1, func(r *Rank) {
				buf := r.Alloc(size)
				if r.RankID() == root {
					fill(r, buf, 33)
				}
				r.Bcast(buf.Addr(), size, root)
				for i, b := range buf.Bytes() {
					if b != 33+byte(i) {
						t.Errorf("rank %d byte %d = %d", r.RankID(), i, b)
						return
					}
				}
			})
		})
	}
}

func checkAlltoall(t *testing.T, r *Rank, recv *mem.Buffer, per int) {
	t.Helper()
	for src := 0; src < r.Size(); src++ {
		blk := recv.Bytes()[src*per : src*per+per]
		for i, b := range blk {
			want := byte(src*16+r.RankID()) + byte(i)
			if b != want {
				t.Errorf("rank %d block from %d byte %d = %d, want %d", r.RankID(), src, i, b, want)
				return
			}
		}
	}
}

func TestAlltoallCorrectness(t *testing.T) {
	const per = 2048
	runWorld(t, 3, 2, func(r *Rank) {
		np := r.Size()
		send, recv := r.Alloc(np*per), r.Alloc(np*per)
		for dst := 0; dst < np; dst++ {
			blk := send.Bytes()[dst*per : dst*per+per]
			for i := range blk {
				blk[i] = byte(r.RankID()*16+dst) + byte(i)
			}
		}
		r.Alltoall(send.Addr(), recv.Addr(), per)
		checkAlltoall(t, r, recv, per)
	})
}

func TestIalltoallOverlapsAndCompletes(t *testing.T) {
	const per = 64 << 10
	runWorld(t, 4, 1, func(r *Rank) {
		np := r.Size()
		send, recv := r.Alloc(np*per), r.Alloc(np*per)
		for dst := 0; dst < np; dst++ {
			blk := send.Bytes()[dst*per : dst*per+per]
			for i := range blk {
				blk[i] = byte(r.RankID()*16+dst) + byte(i)
			}
		}
		c := r.Ialltoall(send.Addr(), recv.Addr(), per)
		r.Compute(200 * sim.Microsecond)
		r.WaitColl(c)
		checkAlltoall(t, r, recv, per)
	})
}

func TestIbcastCorrectness(t *testing.T) {
	for _, np := range []int{2, 5, 8} {
		np := np
		t.Run(fmt.Sprint(np), func(t *testing.T) {
			const size = 32 << 10
			runWorld(t, np, 1, func(r *Rank) {
				buf := r.Alloc(size)
				if r.RankID() == 0 {
					fill(r, buf, 3)
				}
				c := r.Ibcast(buf.Addr(), size, 0)
				r.WaitColl(c)
				if buf.Bytes()[100] != 3+100 {
					t.Errorf("rank %d ibcast payload wrong", r.RankID())
				}
			})
		})
	}
}

func TestAllgatherCorrectness(t *testing.T) {
	const per = 1024
	runWorld(t, 4, 1, func(r *Rank) {
		np := r.Size()
		send, recv := r.Alloc(per), r.Alloc(np*per)
		fill(r, send, byte(r.RankID()*50))
		r.Allgather(send.Addr(), recv.Addr(), per)
		for src := 0; src < np; src++ {
			if recv.Bytes()[src*per] != byte(src*50) {
				t.Errorf("rank %d: block %d wrong", r.RankID(), src)
			}
		}
	})
}

func TestAllreduceSum(t *testing.T) {
	for _, np := range []int{2, 3, 4, 6, 8} {
		np := np
		t.Run(fmt.Sprint(np), func(t *testing.T) {
			const count = 128
			runWorld(t, np, 1, func(r *Rank) {
				send, recv := r.Alloc(count*8), r.Alloc(count*8)
				for i := 0; i < count; i++ {
					v := float64(r.RankID()+1) * float64(i)
					binary.LittleEndian.PutUint64(send.Bytes()[i*8:], math.Float64bits(v))
				}
				r.Allreduce(send.Addr(), recv.Addr(), count)
				// sum over ranks of (rank+1)*i = i * np(np+1)/2
				for i := 0; i < count; i++ {
					got := math.Float64frombits(binary.LittleEndian.Uint64(recv.Bytes()[i*8:]))
					want := float64(i) * float64(np*(np+1)) / 2
					if math.Abs(got-want) > 1e-9 {
						t.Errorf("rank %d elem %d = %v, want %v", r.RankID(), i, got, want)
						return
					}
				}
			})
		})
	}
}

func TestRegistrationCacheAmortizes(t *testing.T) {
	// Repeated rendezvous sends from the same buffer must register once.
	w := runWorld(t, 2, 1, func(r *Rank) {
		buf := r.Alloc(128 << 10)
		for it := 0; it < 5; it++ {
			if r.RankID() == 0 {
				r.Send(buf.Addr(), buf.Size(), 1, it)
			} else {
				r.Recv(buf.Addr(), buf.Size(), 0, it)
			}
		}
	})
	// One send-side + one recv-side registration.
	if got := w.Cl.Reg.Registrations; got != 2 {
		t.Fatalf("registrations = %d, want 2 (cache must amortize)", got)
	}
}

func TestSelfSend(t *testing.T) {
	runWorld(t, 1, 1, func(r *Rank) {
		a, b := r.Alloc(256), r.Alloc(256)
		fill(r, a, 8)
		sq := r.Isend(a.Addr(), 256, 0, 1)
		rq := r.Irecv(b.Addr(), 256, 0, 1)
		r.WaitAll(sq, rq)
		if !bytes.Equal(a.Bytes(), b.Bytes()) {
			t.Error("self-send payload wrong")
		}
	})
}

func TestZeroByteMessage(t *testing.T) {
	runWorld(t, 2, 1, func(r *Rank) {
		buf := r.Alloc(8)
		if r.RankID() == 0 {
			r.Send(buf.Addr(), 0, 1, 0)
		} else {
			r.Recv(buf.Addr(), 0, 0, 0)
		}
	})
}

func TestMPITimeAccounting(t *testing.T) {
	w := runWorld(t, 2, 1, func(r *Rank) {
		buf := r.Alloc(1 << 20)
		if r.RankID() == 0 {
			r.Compute(time100())
			r.Send(buf.Addr(), buf.Size(), 1, 0)
		} else {
			q := r.Irecv(buf.Addr(), buf.Size(), 0, 0)
			r.Compute(time100())
			r.Wait(q)
		}
	})
	r1 := w.Rank(1)
	if r1.ComputeTime != time100() {
		t.Fatalf("ComputeTime = %v", r1.ComputeTime)
	}
	if r1.MPITime <= 0 {
		t.Fatal("MPITime not accumulated")
	}
}

func time100() sim.Time { return 100 * sim.Microsecond }

func TestMessagesOrderedBetweenPair(t *testing.T) {
	// Two same-tag sends must match posted receives in order.
	runWorld(t, 2, 1, func(r *Rank) {
		a, b := r.Alloc(64), r.Alloc(64)
		if r.RankID() == 0 {
			fill(r, a, 1)
			fill(r, b, 2)
			r.Send(a.Addr(), 64, 1, 0)
			r.Send(b.Addr(), 64, 1, 0)
		} else {
			q1 := r.Irecv(a.Addr(), 64, 0, 0)
			q2 := r.Irecv(b.Addr(), 64, 0, 0)
			r.WaitAll(q1, q2)
			if a.Bytes()[0] != 1 || b.Bytes()[0] != 2 {
				t.Errorf("ordering broken: %d %d", a.Bytes()[0], b.Bytes()[0])
			}
		}
	})
}

func TestIallgatherCorrectness(t *testing.T) {
	const per = 4096
	runWorld(t, 3, 2, func(r *Rank) {
		np := r.Size()
		send, recv := r.Alloc(per), r.Alloc(np*per)
		fill(r, send, byte(r.RankID()*40))
		c := r.Iallgather(send.Addr(), recv.Addr(), per)
		r.Compute(50 * sim.Microsecond)
		r.WaitColl(c)
		for src := 0; src < np; src++ {
			if recv.Bytes()[src*per] != byte(src*40) {
				t.Errorf("rank %d: block %d wrong", r.RankID(), src)
			}
		}
	})
}
