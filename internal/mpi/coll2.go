package mpi

import "repro/internal/mem"

// Gather collects per bytes from every rank's sendAddr into root's
// recvAddr, ordered by rank (binomial tree: leaves push partial gathers up).
func (r *Rank) Gather(sendAddr, recvAddr mem.Addr, per, root int) {
	t0 := r.enter()
	defer r.leave(t0)
	np := r.Size()
	tag := r.nextCollTag()
	rel := (r.rank - root + np) % np

	// Each subtree owner accumulates its subtree's blocks (in relative
	// numbering) into a staging buffer, then forwards them to its parent.
	sub := r.subtreeSpan(rel, np)
	stage := r.Alloc(sub * per)
	self := snapshot(r.site.Space, sendAddr, per)
	r.site.Space.WriteAt(stage.Addr(), self, per)

	// Receive children's subtrees (mask order), then send mine to parent.
	for mask := 1; mask < np; mask <<= 1 {
		if rel&mask != 0 {
			parent := (rel - mask + root) % np
			r.Send(stage.Addr(), sub*per, parent, tag)
			break
		}
		childRel := rel + mask
		if childRel < np {
			childSub := r.subtreeSpan(childRel, np)
			r.Recv(stage.Addr()+mem.Addr(mask*per), childSub*per, (childRel+root)%np, tag)
		}
	}

	if r.rank == root {
		// Unwrap relative ordering into absolute rank order.
		for relBlk := 0; relBlk < np; relBlk++ {
			abs := (relBlk + root) % np
			d := r.site.Space.ReadAt(stage.Addr()+mem.Addr(relBlk*per), per)
			r.site.Space.WriteAt(recvAddr+mem.Addr(abs*per), d, per)
		}
	}
}

// subtreeSpan returns the number of relative ranks in rel's binomial
// subtree, clipped to np.
func (r *Rank) subtreeSpan(rel, np int) int {
	span := 1
	for mask := 1; mask < np; mask <<= 1 {
		if rel&mask != 0 {
			break
		}
		span = mask << 1
	}
	if rel+span > np {
		span = np - rel
	}
	if span < 1 {
		span = 1
	}
	return span
}

// Scatter distributes per bytes per rank from root's sendAddr to every
// rank's recvAddr (binomial tree, mirror of Gather).
func (r *Rank) Scatter(sendAddr, recvAddr mem.Addr, per, root int) {
	t0 := r.enter()
	defer r.leave(t0)
	np := r.Size()
	tag := r.nextCollTag()
	rel := (r.rank - root + np) % np

	sub := r.subtreeSpan(rel, np)
	stage := r.Alloc(sub * per)

	if r.rank == root {
		// Pack into relative order.
		for relBlk := 0; relBlk < np; relBlk++ {
			abs := (relBlk + root) % np
			d := r.site.Space.ReadAt(sendAddr+mem.Addr(abs*per), per)
			r.site.Space.WriteAt(stage.Addr()+mem.Addr(relBlk*per), d, per)
		}
	} else {
		// Receive my subtree's blocks from the parent.
		mask := 1
		for rel&mask == 0 {
			mask <<= 1
		}
		parent := (rel - mask + root) % np
		r.Recv(stage.Addr(), sub*per, parent, tag)
	}
	// Forward children's shares (highest mask first, as in MPICH). Child
	// masks come from the unclipped power-of-two subtree span.
	p := 1
	for mask := 1; mask < np; mask <<= 1 {
		if rel&mask != 0 {
			break
		}
		p = mask << 1
	}
	for mask := p >> 1; mask > 0; mask >>= 1 {
		childRel := rel + mask
		if childRel < np {
			childSub := r.subtreeSpan(childRel, np)
			r.Send(stage.Addr()+mem.Addr(mask*per), childSub*per, (childRel+root)%np, tag)
		}
	}
	d := r.site.Space.ReadAt(stage.Addr(), per)
	r.site.Space.WriteAt(recvAddr, d, per)
}

// Reduce sums count float64 values from sendAddr into root's recvAddr
// (binomial tree; arithmetic only with payload-backed buffers).
func (r *Rank) Reduce(sendAddr, recvAddr mem.Addr, count, root int) {
	t0 := r.enter()
	defer r.leave(t0)
	np := r.Size()
	tag := r.nextCollTag()
	bytes := count * 8
	rel := (r.rank - root + np) % np

	acc := r.Alloc(bytes)
	tmp := r.Alloc(bytes)
	self := snapshot(r.site.Space, sendAddr, bytes)
	r.site.Space.WriteAt(acc.Addr(), self, bytes)

	for mask := 1; mask < np; mask <<= 1 {
		if rel&mask != 0 {
			parent := (rel - mask + root) % np
			r.Send(acc.Addr(), bytes, parent, tag)
			break
		}
		childRel := rel + mask
		if childRel < np {
			r.Recv(tmp.Addr(), bytes, (childRel+root)%np, tag)
			r.reduceInto(acc.Addr(), tmp.Addr(), count)
		}
	}
	if r.rank == root {
		d := r.site.Space.ReadAt(acc.Addr(), bytes)
		r.site.Space.WriteAt(recvAddr, d, bytes)
	}
}

// Sendrecv posts a send and a receive and waits for both (MPI_Sendrecv).
func (r *Rank) Sendrecv(sendAddr mem.Addr, sendSize, dst, sendTag int,
	recvAddr mem.Addr, recvSize, src, recvTag int) {
	sq := r.Isend(sendAddr, sendSize, dst, sendTag)
	rq := r.Irecv(recvAddr, recvSize, src, recvTag)
	r.WaitAll(sq, rq)
}
