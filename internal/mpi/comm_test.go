package mpi

import (
	"testing"

	"repro/internal/sim"
)

func TestSplitRowsAndColumns(t *testing.T) {
	// 2x3 grid over 6 ranks: rows {0,1,2},{3,4,5}; cols {0,3},{1,4},{2,5}.
	runWorld(t, 6, 1, func(r *Rank) {
		row := r.Split(func(w int) int { return w / 3 })
		col := r.Split(func(w int) int { return w % 3 })
		if row.Size() != 3 || col.Size() != 2 {
			t.Errorf("rank %d: row size %d col size %d", r.RankID(), row.Size(), col.Size())
		}
		if row.World(row.RankID()) != r.RankID() || col.World(col.RankID()) != r.RankID() {
			t.Errorf("rank %d: self translation broken", r.RankID())
		}
	})
}

func TestCommBarrierScopedToMembers(t *testing.T) {
	// Ranks 0..2 barrier among themselves while rank 3 computes for a long
	// time: the sub-barrier must not wait for rank 3.
	times := make([]sim.Time, 4)
	runWorld(t, 4, 1, func(r *Rank) {
		if r.RankID() == 3 {
			r.Compute(50 * sim.Millisecond)
			return
		}
		c := r.NewComm([]int{0, 1, 2})
		r.Compute(sim.Time(r.RankID()) * sim.Microsecond)
		c.Barrier()
		times[r.RankID()] = r.Now()
	})
	for i := 0; i < 3; i++ {
		if times[i] > 10*sim.Millisecond {
			t.Fatalf("rank %d barrier waited for a non-member: %v", i, times[i])
		}
	}
}

func TestCommBcastWithinGroup(t *testing.T) {
	const size = 4096
	runWorld(t, 6, 1, func(r *Rank) {
		row := r.Split(func(w int) int { return w / 3 })
		buf := r.Alloc(size)
		// comm-rank 1 of each row is the root.
		if row.RankID() == 1 {
			fill(r, buf, byte(100+row.World(1)))
		}
		row.Bcast(buf.Addr(), size, 1)
		want := byte(100 + row.World(1))
		if buf.Bytes()[0] != want {
			t.Errorf("rank %d got %d, want %d", r.RankID(), buf.Bytes()[0], want)
		}
	})
}

func TestCommAlltoallRowsConcurrently(t *testing.T) {
	// Two row communicators run personalized exchanges at the same time;
	// payloads must not cross rows.
	const per = 2048
	runWorld(t, 6, 1, func(r *Rank) {
		row := r.Split(func(w int) int { return w / 3 })
		np := row.Size()
		send, recv := r.Alloc(np*per), r.Alloc(np*per)
		for dst := 0; dst < np; dst++ {
			blk := send.Bytes()[dst*per : (dst+1)*per]
			for i := range blk {
				blk[i] = byte(r.RankID()*17 + row.World(dst)*5 + i)
			}
		}
		row.Alltoall(send.Addr(), recv.Addr(), per)
		for src := 0; src < np; src++ {
			blk := recv.Bytes()[src*per : (src+1)*per]
			for i := 0; i < per; i += 509 {
				want := byte(row.World(src)*17 + r.RankID()*5 + i)
				if blk[i] != want {
					t.Errorf("rank %d: block from comm-rank %d wrong", r.RankID(), src)
					return
				}
			}
		}
	})
}

func TestCommTagIsolationFromWorld(t *testing.T) {
	// A world Bcast and a sub-comm Bcast in flight around the same time
	// must not steal each other's messages.
	const size = 1024
	runWorld(t, 4, 1, func(r *Rank) {
		wbuf, sbuf := r.Alloc(size), r.Alloc(size)
		if r.RankID() == 0 {
			fill(r, wbuf, 7)
			fill(r, sbuf, 9)
		}
		if r.RankID() < 2 {
			sub := r.NewComm([]int{0, 1})
			sub.Bcast(sbuf.Addr(), size, 0)
		}
		r.Bcast(wbuf.Addr(), size, 0)
		if wbuf.Bytes()[0] != 7 {
			t.Errorf("rank %d world payload %d", r.RankID(), wbuf.Bytes()[0])
		}
		if r.RankID() < 2 && sbuf.Bytes()[0] != 9 {
			t.Errorf("rank %d sub payload %d", r.RankID(), sbuf.Bytes()[0])
		}
	})
}

func TestNewCommRequiresMembership(t *testing.T) {
	runWorld(t, 2, 1, func(r *Rank) {
		if r.RankID() != 0 {
			return
		}
		defer func() {
			if recover() == nil {
				t.Error("expected panic for non-member")
			}
		}()
		r.NewComm([]int{1})
	})
}

func TestWorldCommMatchesRank(t *testing.T) {
	runWorld(t, 3, 1, func(r *Rank) {
		c := r.Comm()
		if c.Size() != 3 || c.RankID() != r.RankID() || c.World(2) != 2 {
			t.Errorf("world comm wrong: %d/%d", c.Size(), c.RankID())
		}
		if r.Comm() != c {
			t.Error("world comm not cached")
		}
	})
}
