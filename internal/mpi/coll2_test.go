package mpi

import (
	"encoding/binary"
	"fmt"
	"math"
	"testing"
)

func TestGatherCorrectness(t *testing.T) {
	for _, np := range []int{2, 3, 4, 6, 8} {
		for _, root := range []int{0, np - 1} {
			np, root := np, root
			t.Run(fmt.Sprintf("np%d_root%d", np, root), func(t *testing.T) {
				const per = 512
				runWorld(t, np, 1, func(r *Rank) {
					send := r.Alloc(per)
					recv := r.Alloc(np * per)
					fill(r, send, byte(r.RankID()*10))
					r.Gather(send.Addr(), recv.Addr(), per, root)
					if r.RankID() == root {
						for src := 0; src < np; src++ {
							if recv.Bytes()[src*per] != byte(src*10) {
								t.Errorf("block %d wrong: %d", src, recv.Bytes()[src*per])
							}
						}
					}
				})
			})
		}
	}
}

func TestScatterCorrectness(t *testing.T) {
	for _, np := range []int{2, 3, 4, 6, 8} {
		for _, root := range []int{0, 1} {
			np, root := np, root
			t.Run(fmt.Sprintf("np%d_root%d", np, root), func(t *testing.T) {
				const per = 512
				runWorld(t, np, 1, func(r *Rank) {
					send := r.Alloc(np * per)
					recv := r.Alloc(per)
					if r.RankID() == root {
						for dst := 0; dst < np; dst++ {
							for i := 0; i < per; i++ {
								send.Bytes()[dst*per+i] = byte(dst*20) + byte(i)
							}
						}
					}
					r.Scatter(send.Addr(), recv.Addr(), per, root)
					want0 := byte(r.RankID() * 20)
					wantLast := byte(r.RankID()*20 + per - 1)
					if recv.Bytes()[0] != want0 || recv.Bytes()[per-1] != wantLast {
						t.Errorf("rank %d got wrong share", r.RankID())
					}
				})
			})
		}
	}
}

func TestReduceSum(t *testing.T) {
	for _, np := range []int{2, 3, 5, 8} {
		np := np
		t.Run(fmt.Sprint(np), func(t *testing.T) {
			const count, root = 64, 0
			runWorld(t, np, 1, func(r *Rank) {
				send, recv := r.Alloc(count*8), r.Alloc(count*8)
				for i := 0; i < count; i++ {
					binary.LittleEndian.PutUint64(send.Bytes()[i*8:],
						math.Float64bits(float64((r.RankID()+1)*(i+1))))
				}
				r.Reduce(send.Addr(), recv.Addr(), count, root)
				if r.RankID() == root {
					for i := 0; i < count; i++ {
						got := math.Float64frombits(binary.LittleEndian.Uint64(recv.Bytes()[i*8:]))
						want := float64(i+1) * float64(np*(np+1)) / 2
						if math.Abs(got-want) > 1e-9 {
							t.Errorf("elem %d = %v, want %v", i, got, want)
							return
						}
					}
				}
			})
		})
	}
}

func TestSendrecvExchanges(t *testing.T) {
	runWorld(t, 2, 1, func(r *Rank) {
		a, b := r.Alloc(256), r.Alloc(256)
		fill(r, a, byte(100+r.RankID()))
		peer := 1 - r.RankID()
		r.Sendrecv(a.Addr(), 256, peer, 5, b.Addr(), 256, peer, 5)
		if b.Bytes()[0] != byte(100+peer) {
			t.Errorf("rank %d got %d", r.RankID(), b.Bytes()[0])
		}
	})
}
