package mpi

import "repro/internal/mem"

// Communicator-scoped collectives. These mirror the world-level operations
// on Rank; ranks and message peers are translated through the member list.

// Barrier blocks until all communicator members have entered
// (dissemination).
func (c *Comm) Barrier() {
	r := c.r
	t0 := r.enter()
	defer r.leave(t0)
	np := c.Size()
	if np == 1 {
		return
	}
	tag := c.nextTag()
	zero := r.scratch(1)
	for off := 1; off < np; off <<= 1 {
		dst := c.World((c.myIdx + off) % np)
		src := c.World((c.myIdx - off + np) % np)
		sq := r.Isend(zero, 0, dst, tag)
		rq := r.Irecv(zero, 0, src, tag)
		r.waitFor(func() bool { return sq.done && rq.done })
	}
}

// Bcast broadcasts [addr, addr+size) from comm-rank root (binomial tree).
func (c *Comm) Bcast(addr mem.Addr, size, root int) {
	r := c.r
	t0 := r.enter()
	defer r.leave(t0)
	np := c.Size()
	tag := c.nextTag()
	if np == 1 {
		return
	}
	rel := (c.myIdx - root + np) % np
	mask := 1
	for mask < np {
		if rel&mask != 0 {
			src := c.World((rel - mask + root) % np)
			r.Recv(addr, size, src, tag)
			break
		}
		mask <<= 1
	}
	mask >>= 1
	for mask > 0 {
		if rel+mask < np {
			dst := c.World((rel + mask + root) % np)
			r.Send(addr, size, dst, tag)
		}
		mask >>= 1
	}
}

// Ialltoall starts a nonblocking personalized all-to-all within the
// communicator: per bytes from sendAddr+dst*per (dst in comm ranks) to each
// member's recvAddr+me*per.
func (c *Comm) Ialltoall(sendAddr, recvAddr mem.Addr, per int) *CollRequest {
	r := c.r
	tag := c.nextTag()
	np, me := c.Size(), c.myIdx

	self := snapshot(r.site.Space, sendAddr+mem.Addr(me*per), per)
	r.proc.AdvanceBusy(r.w.Cl.CopyCost(per))
	r.site.Space.WriteAt(recvAddr+mem.Addr(me*per), self, per)

	reqs := make([]*Request, 0, 2*(np-1))
	for i := 1; i < np; i++ {
		src := (me - i + np) % np
		reqs = append(reqs, r.Irecv(recvAddr+mem.Addr(src*per), per, c.World(src), tag))
	}
	for i := 1; i < np; i++ {
		dst := (me + i) % np
		reqs = append(reqs, r.Isend(sendAddr+mem.Addr(dst*per), per, c.World(dst), tag))
	}
	cr := &CollRequest{r: r}
	cr.step = func() bool {
		for _, q := range reqs {
			if !q.done {
				return false
			}
		}
		return true
	}
	return r.addColl(cr)
}

// Alltoall is the blocking form of Ialltoall.
func (c *Comm) Alltoall(sendAddr, recvAddr mem.Addr, per int) {
	c.r.WaitColl(c.Ialltoall(sendAddr, recvAddr, per))
}
