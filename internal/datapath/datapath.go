// Package datapath defines the pluggable data-movement paths of the
// offload framework. The paper fixes the execution path at job launch
// (Section VII's mechanism enum); here each path is a first-class value
// behind one interface so a policy engine (package policy) can choose a
// path per operation instead of per job:
//
//   - CrossGVMI: the paper's proposed path — the proxy cross-registers the
//     source host buffer through cross-GVMI and RDMA-writes it straight
//     into the destination host's memory (Figure 6, no staging);
//   - Staged: the BluesMPI-style state-of-the-art path — RDMA-read into
//     DPU staging memory, then RDMA-write toward the destination (one
//     extra hop);
//   - HostDirect: no proxy at all — the transfer runs on the host MPI
//     library's eager/rendezvous path (the "IntelMPI" baseline). It has no
//     proxy-side execution; callers route it through a HostPoster.
//
// Proxy-executed paths (CrossGVMI, Staged) are driven through Execute,
// which byte-for-byte reproduces the RDMA post sequences, statistics, and
// completion ordering of the pre-refactor mechanism branches — fixed
// policies therefore reproduce the old presets bit-exactly.
package datapath

import (
	"fmt"

	"repro/internal/gvmi"
	"repro/internal/mem"
	"repro/internal/sim"
	"repro/internal/span"
	"repro/internal/verbs"
)

// Kind identifies a datapath on the wire and in policy tables.
type Kind int

// The datapaths.
const (
	// KindCrossGVMI is the proposed direct host-to-host path.
	KindCrossGVMI Kind = iota
	// KindStaged bounces through DPU DRAM (baseline path).
	KindStaged
	// KindHostDirect is the host MPI path; no proxy involvement.
	KindHostDirect
	// KindDSA is the engine-driven path of DSA-equipped off-path parts:
	// the proxy hands the descriptor to the hardware DMA engine, which
	// posts the host-to-host write itself — skipping the ARM cores'
	// injection overhead entirely.
	KindDSA

	numKinds
)

// String implements fmt.Stringer. The names match the -policy CLI values
// and the "mech" span attribute recorded on proxy transfer spans.
func (k Kind) String() string {
	switch k {
	case KindCrossGVMI:
		return "gvmi"
	case KindStaged:
		return "staged"
	case KindHostDirect:
		return "hostdirect"
	case KindDSA:
		return "dsa"
	default:
		return fmt.Sprintf("unknown(%d)", int(k))
	}
}

// Valid reports whether k names one of the datapaths.
func (k Kind) Valid() bool { return k >= 0 && k < numKinds }

// Kinds lists every datapath kind (for tests and ablation sweeps).
func Kinds() []Kind { return []Kind{KindCrossGVMI, KindStaged, KindHostDirect, KindDSA} }

// Caps is the device-capability subset the datapath layer consults
// (derived from a node's device.Profile by the core framework).
type Caps struct {
	// CrossGVMI: the part supports cross-function registration, so the
	// proposed zero-copy path exists.
	CrossGVMI bool
	// DSA: the part has a hardware DMA engine with its own injection
	// port.
	DSA bool
}

// FullCaps is the capability set of the pre-substrate simulator: every
// classic path available, no engine.
func FullCaps() Caps { return Caps{CrossGVMI: true} }

// Resolve maps a requested datapath to the one a node with capabilities c
// can actually run. Cross-GVMI requests on parts without cross-function
// registration ride the DSA engine when present and the staged path
// otherwise; DSA requests on engineless parts fall back the same way in
// reverse. The resolution is deterministic and identical on every rank
// that knows the sender's capabilities, so senders and receivers agree.
// On full-caps profiles it is the identity — the pre-substrate behaviour.
func Resolve(k Kind, c Caps) Kind {
	switch k {
	case KindCrossGVMI:
		if !c.CrossGVMI {
			if c.DSA {
				return KindDSA
			}
			return KindStaged
		}
	case KindDSA:
		if !c.DSA {
			if c.CrossGVMI {
				return KindCrossGVMI
			}
			return KindStaged
		}
	}
	return k
}

// SrcReg says what a sending host must register before handing the
// transfer to its proxy.
type SrcReg int

// Source-registration requirements.
const (
	// RegGVMI: register the source buffer against the proxy's GVMI so the
	// proxy can cross-register it (CrossGVMI path).
	RegGVMI SrcReg = iota
	// RegIB: plain IB registration; the proxy RDMA-reads the source
	// (Staged path).
	RegIB
	// RegNone: nothing — the transfer never reaches a proxy (HostDirect).
	RegNone
)

// Stage is a registered DPU staging buffer leased from the executor's
// pool (Staged path only).
type Stage interface {
	LKey() verbs.Key
	Addr() mem.Addr
}

// Exec is the proxy-side execution surface a Datapath posts through. It is
// implemented by core.Proxy; keeping it an interface here breaks the
// import cycle and lets datapath implementations be tested against fakes.
type Exec interface {
	// PostWrite / PostRead post RDMA from the proxy's context.
	PostWrite(op verbs.WriteOp) error
	PostRead(op verbs.ReadOp) error
	// CrossReg cross-registers a host mkey (through the proxy's cache when
	// enabled), recording the work under parent.
	CrossReg(srcHost int, info gvmi.MKeyInfo, parent span.ID) *verbs.MR
	// AcquireStage / ReleaseStage lease DPU staging buffers.
	AcquireStage(size int, parent span.ID) Stage
	ReleaseStage(Stage)
	// Later defers fn to the executor's next progress round (completion
	// handlers run in kernel handler context).
	Later(fn func())
	// Spans returns the span collector (nil-safe when tracing is off).
	Spans() *span.Collector
	// TraceRDMA emits a trace event attributed to the executor.
	TraceRDMA(event, detail string)
	// PostEngineWrite posts an RDMA write through the node's DSA engine
	// port instead of the ARM-driven proxy context (KindDSA only; panics
	// on nodes whose profile has no engine — Resolve prevents that).
	PostEngineWrite(op verbs.WriteOp) error
	// Stat counters (mirrors the proxy's RDMAWrites/RDMAReads/StagedOps).
	CountWrite()
	CountRead()
	CountStaged()
	CountEngine()
}

// Transfer describes one source-to-destination movement a proxy executes.
type Transfer struct {
	SrcHost int // source host rank (cross-reg cache key, trace detail)
	DstRank int // destination rank (trace detail only)
	Size    int

	// CrossGVMI source: the host-registered GVMI mkey, plus an optional
	// memoized cross-registration (group replays cache it per entry).
	MKey   gvmi.MKeyInfo
	Cached *verbs.MR

	// Source address, and — Staged path — the plain IB rkey the proxy
	// reads through.
	SrcAddr mem.Addr
	SrcRKey verbs.Key

	// Destination window.
	DstAddr mem.Addr
	DstRKey verbs.Key

	// Span is the causal parent of all work posted for this transfer.
	// EndSpan ends it at remote completion (basic primitives end their
	// transfer span; group sends leave the group-execution span open).
	Span    span.ID
	EndSpan bool
	// Trace emits per-RDMA trace events ("gvmi-write" / "stage-read");
	// basic primitives trace, group sends are traced by their caller.
	Trace bool
}

// Datapath is one data-movement path. Execute posts the RDMA sequence for
// one transfer and arranges for done to run — in the executor's deferred
// context — after the data has fully landed (and, for Staged, after the
// staging buffer is back in the pool). It returns the cross-registration
// it used (CrossGVMI only; nil otherwise) so callers may memoize it.
type Datapath interface {
	Kind() Kind
	SrcReg() SrcReg
	Execute(x Exec, t Transfer, done func()) *verbs.MR
}

// ForKind returns the shared implementation of a proxy-executable kind.
// HostDirect is returned too (for SrcReg queries), but its Execute panics:
// host-direct transfers are posted by the host, not a proxy.
func ForKind(k Kind) Datapath {
	switch k {
	case KindCrossGVMI:
		return CrossGVMI{}
	case KindStaged:
		return Staged{}
	case KindHostDirect:
		return HostDirect{}
	case KindDSA:
		return DSA{}
	default:
		panic(fmt.Sprintf("datapath: no implementation for %v", k))
	}
}

// ---------------------------------------------------------------------------
// CrossGVMI

// CrossGVMI is the proposed path: cross-register the source host buffer
// and RDMA-write it straight into the destination host's memory.
type CrossGVMI struct{}

// Kind implements Datapath.
func (CrossGVMI) Kind() Kind { return KindCrossGVMI }

// SrcReg implements Datapath.
func (CrossGVMI) SrcReg() SrcReg { return RegGVMI }

// Execute implements Datapath.
func (CrossGVMI) Execute(x Exec, t Transfer, done func()) *verbs.MR {
	mr := t.Cached
	if mr == nil {
		mr = x.CrossReg(t.SrcHost, t.MKey, t.Span)
	}
	x.CountWrite()
	if t.Trace {
		x.TraceRDMA("gvmi-write", fmt.Sprintf("%d->%d size=%d", t.SrcHost, t.DstRank, t.Size))
	}
	err := x.PostWrite(verbs.WriteOp{
		LocalKey: mr.LKey(), LocalAddr: t.SrcAddr,
		RemoteKey: t.DstRKey, RemoteAddr: t.DstAddr,
		Size: t.Size,
		Span: t.Span,
		OnRemoteComplete: func(at sim.Time) {
			if t.EndSpan {
				x.Spans().EndAt(t.Span, at)
			}
			x.Later(done)
		},
	})
	if err != nil {
		panic(fmt.Sprintf("datapath: gvmi write: %v", err))
	}
	return mr
}

// ---------------------------------------------------------------------------
// Staged

// Staged is the baseline path: RDMA-read the source into DPU staging
// memory, then RDMA-write from the staging buffer to the destination —
// the extra hop the cross-GVMI design removes.
type Staged struct{}

// Kind implements Datapath.
func (Staged) Kind() Kind { return KindStaged }

// SrcReg implements Datapath.
func (Staged) SrcReg() SrcReg { return RegIB }

// Execute implements Datapath.
func (Staged) Execute(x Exec, t Transfer, done func()) *verbs.MR {
	sb := x.AcquireStage(t.Size, t.Span)
	x.CountStaged()
	x.CountRead()
	if t.Trace {
		x.TraceRDMA("stage-read", fmt.Sprintf("%d->%d size=%d", t.SrcHost, t.DstRank, t.Size))
	}
	err := x.PostRead(verbs.ReadOp{
		LocalKey: sb.LKey(), LocalAddr: sb.Addr(),
		RemoteKey: t.SrcRKey, RemoteAddr: t.SrcAddr,
		Size: t.Size,
		Span: t.Span,
		OnComplete: func(sim.Time) {
			x.Later(func() {
				x.CountWrite()
				err := x.PostWrite(verbs.WriteOp{
					LocalKey: sb.LKey(), LocalAddr: sb.Addr(),
					RemoteKey: t.DstRKey, RemoteAddr: t.DstAddr,
					Size: t.Size,
					Span: t.Span,
					OnRemoteComplete: func(at sim.Time) {
						if t.EndSpan {
							x.Spans().EndAt(t.Span, at)
						}
						x.Later(func() {
							x.ReleaseStage(sb)
							done()
						})
					},
				})
				if err != nil {
					panic(fmt.Sprintf("datapath: staged write: %v", err))
				}
			})
		},
	})
	if err != nil {
		panic(fmt.Sprintf("datapath: staged read: %v", err))
	}
	return nil
}

// ---------------------------------------------------------------------------
// DSA

// DSA is the engine-driven path of DSA-equipped off-path SmartNICs: the
// proxy still matches the rendezvous (its handler cost is unavoidable —
// the control plane stays in software) but the data movement is posted by
// the hardware DMA engine through its own port, whose per-descriptor
// overhead undercuts even the host port. The engine has host-memory
// access through the source's plain IB registration, so no
// cross-function registration is needed — one write, zero staging.
type DSA struct{}

// Kind implements Datapath.
func (DSA) Kind() Kind { return KindDSA }

// SrcReg implements Datapath: plain IB registration, like Staged — the
// engine addresses host memory through the source rkey.
func (DSA) SrcReg() SrcReg { return RegIB }

// Execute implements Datapath.
func (DSA) Execute(x Exec, t Transfer, done func()) *verbs.MR {
	x.CountEngine()
	x.CountWrite()
	if t.Trace {
		x.TraceRDMA("dsa-write", fmt.Sprintf("%d->%d size=%d", t.SrcHost, t.DstRank, t.Size))
	}
	err := x.PostEngineWrite(verbs.WriteOp{
		LocalKey: t.SrcRKey, LocalAddr: t.SrcAddr,
		RemoteKey: t.DstRKey, RemoteAddr: t.DstAddr,
		Size: t.Size,
		Span: t.Span,
		OnRemoteComplete: func(at sim.Time) {
			if t.EndSpan {
				x.Spans().EndAt(t.Span, at)
			}
			x.Later(done)
		},
	})
	if err != nil {
		panic(fmt.Sprintf("datapath: dsa write: %v", err))
	}
	return nil
}

// ---------------------------------------------------------------------------
// HostDirect

// Pending is a started host-direct transfer (an mpi.Request, behind an
// interface so this package does not import the MPI library).
type Pending interface {
	Done() bool
}

// HostPoster is the host-side posting surface of the HostDirect path —
// the MPI library's nonblocking point-to-point calls. mpi.Rank exposes it
// via Rank.Direct().
type HostPoster interface {
	Isend(addr mem.Addr, size, dst, tag int) Pending
	Irecv(addr mem.Addr, size, src, tag int) Pending
}

// HostDirect is the no-framework path: transfers are posted and progressed
// by the host MPI library (progress only inside MPI calls — the semantic
// mismatch the paper's Section II-A criticizes, and the reason this path
// loses overlap benchmarks even when its latency wins).
type HostDirect struct{}

// Kind implements Datapath.
func (HostDirect) Kind() Kind { return KindHostDirect }

// SrcReg implements Datapath.
func (HostDirect) SrcReg() SrcReg { return RegNone }

// Execute implements Datapath. HostDirect transfers never reach a proxy;
// route them through a HostPoster instead.
func (HostDirect) Execute(Exec, Transfer, func()) *verbs.MR {
	panic("datapath: HostDirect transfers are posted by the host, not a proxy")
}
