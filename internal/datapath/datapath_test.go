package datapath

import "testing"

func TestKindStrings(t *testing.T) {
	cases := []struct {
		k    Kind
		want string
	}{
		{KindCrossGVMI, "gvmi"},
		{KindStaged, "staged"},
		{KindHostDirect, "hostdirect"},
		{Kind(7), "unknown(7)"},
		{Kind(-1), "unknown(-1)"},
	}
	for _, c := range cases {
		if got := c.k.String(); got != c.want {
			t.Errorf("Kind(%d).String() = %q, want %q", int(c.k), got, c.want)
		}
	}
}

func TestKindValid(t *testing.T) {
	for _, k := range Kinds() {
		if !k.Valid() {
			t.Errorf("%v.Valid() = false", k)
		}
	}
	for _, k := range []Kind{-1, numKinds, 42} {
		if k.Valid() {
			t.Errorf("Kind(%d).Valid() = true", int(k))
		}
	}
}

func TestForKindRoundTrip(t *testing.T) {
	wantReg := map[Kind]SrcReg{
		KindCrossGVMI:  RegGVMI,
		KindStaged:     RegIB,
		KindHostDirect: RegNone,
		KindDSA:        RegIB,
	}
	for _, k := range Kinds() {
		dp := ForKind(k)
		if dp.Kind() != k {
			t.Errorf("ForKind(%v).Kind() = %v", k, dp.Kind())
		}
		if dp.SrcReg() != wantReg[k] {
			t.Errorf("ForKind(%v).SrcReg() = %v, want %v", k, dp.SrcReg(), wantReg[k])
		}
	}
}

func TestForKindPanicsOnInvalid(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("ForKind(invalid) did not panic")
		}
	}()
	ForKind(Kind(99))
}

func TestResolveFallbacks(t *testing.T) {
	full := FullCaps() // pre-substrate caps: cross-GVMI yes, engine no
	noGVMI := Caps{CrossGVMI: false, DSA: false}
	noGVMIDSA := Caps{CrossGVMI: false, DSA: true}
	noDSA := Caps{CrossGVMI: true, DSA: false}
	both := Caps{CrossGVMI: true, DSA: true}
	cases := []struct {
		k    Kind
		c    Caps
		want Kind
	}{
		// Legal requests resolve to themselves.
		{KindCrossGVMI, full, KindCrossGVMI},
		{KindStaged, full, KindStaged},
		{KindHostDirect, full, KindHostDirect},
		{KindDSA, both, KindDSA},
		// No cross-GVMI: gvmi degrades to the DSA engine when one exists,
		// else to staged copies.
		{KindCrossGVMI, noGVMI, KindStaged},
		{KindCrossGVMI, noGVMIDSA, KindDSA},
		// No DSA engine: dsa degrades to gvmi when legal, else staged.
		{KindDSA, noDSA, KindCrossGVMI},
		{KindDSA, noGVMI, KindStaged},
		// Staged and hostdirect need no device capability.
		{KindStaged, noGVMI, KindStaged},
		{KindHostDirect, noGVMI, KindHostDirect},
	}
	for _, c := range cases {
		if got := Resolve(c.k, c.c); got != c.want {
			t.Errorf("Resolve(%v, %+v) = %v, want %v", c.k, c.c, got, c.want)
		}
	}
	// Determinism: resolving twice (a resolved kind is already legal) is
	// a fixed point, so retrying a decision never flips the path.
	for _, k := range Kinds() {
		for _, caps := range []Caps{full, noGVMI, noGVMIDSA, noDSA, both} {
			once := Resolve(k, caps)
			if twice := Resolve(once, caps); twice != once {
				t.Errorf("Resolve not idempotent: %v under %+v -> %v -> %v", k, caps, once, twice)
			}
		}
	}
}

func TestHostDirectExecutePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("HostDirect.Execute did not panic")
		}
	}()
	HostDirect{}.Execute(nil, Transfer{}, nil)
}
