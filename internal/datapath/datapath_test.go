package datapath

import "testing"

func TestKindStrings(t *testing.T) {
	cases := []struct {
		k    Kind
		want string
	}{
		{KindCrossGVMI, "gvmi"},
		{KindStaged, "staged"},
		{KindHostDirect, "hostdirect"},
		{Kind(7), "unknown(7)"},
		{Kind(-1), "unknown(-1)"},
	}
	for _, c := range cases {
		if got := c.k.String(); got != c.want {
			t.Errorf("Kind(%d).String() = %q, want %q", int(c.k), got, c.want)
		}
	}
}

func TestKindValid(t *testing.T) {
	for _, k := range Kinds() {
		if !k.Valid() {
			t.Errorf("%v.Valid() = false", k)
		}
	}
	for _, k := range []Kind{-1, numKinds, 42} {
		if k.Valid() {
			t.Errorf("Kind(%d).Valid() = true", int(k))
		}
	}
}

func TestForKindRoundTrip(t *testing.T) {
	wantReg := map[Kind]SrcReg{
		KindCrossGVMI:  RegGVMI,
		KindStaged:     RegIB,
		KindHostDirect: RegNone,
	}
	for _, k := range Kinds() {
		dp := ForKind(k)
		if dp.Kind() != k {
			t.Errorf("ForKind(%v).Kind() = %v", k, dp.Kind())
		}
		if dp.SrcReg() != wantReg[k] {
			t.Errorf("ForKind(%v).SrcReg() = %v, want %v", k, dp.SrcReg(), wantReg[k])
		}
	}
}

func TestForKindPanicsOnInvalid(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("ForKind(invalid) did not panic")
		}
	}()
	ForKind(Kind(99))
}

func TestHostDirectExecutePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("HostDirect.Execute did not panic")
		}
	}()
	HostDirect{}.Execute(nil, Transfer{}, nil)
}
