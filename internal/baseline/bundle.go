package baseline

import (
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/datapath"
	"repro/internal/policy"
)

// Bundle pairs an offload policy with the substrate it runs on: whether a
// framework (proxies) is built at all, which core.Config to build it with,
// and a constructor for the policy instance (fresh per environment — a
// measuring policy's learned table must not leak between runs).
//
// The fixed bundles reproduce the scheme presets bit-exactly: "gvmi" is the
// Proposed scheme, "bluesmpi" is the BluesMPI scheme, "hostdirect" is the
// IntelMPI scheme, and "staged" is the staging mechanism without BluesMPI's
// warm-up/cache handicaps (the mechanism ablation's configuration).
type Bundle struct {
	// Name is the CLI value (-policy <name>).
	Name string
	// Framework reports whether the environment needs DPU proxies at all.
	Framework bool
	// Core returns the framework configuration (meaningful only when
	// Framework is true).
	Core func() core.Config
	// New constructs the policy instance for one environment.
	New func() policy.Policy
}

// bundles maps -policy values to their substrate + policy pairs.
var bundles = map[string]Bundle{
	"gvmi": {
		Name: "gvmi", Framework: true, Core: ProposedConfig,
		New: func() policy.Policy { return policy.Fixed{Path: datapath.KindCrossGVMI} },
	},
	"staged": {
		Name: "staged", Framework: true, Core: StagingNoWarmupConfig,
		New: func() policy.Policy { return policy.Fixed{Path: datapath.KindStaged} },
	},
	"bluesmpi": {
		Name: "bluesmpi", Framework: true, Core: BluesMPIConfig,
		New: func() policy.Policy { return policy.Fixed{Path: datapath.KindStaged} },
	},
	"hostdirect": {
		Name: "hostdirect", Framework: false, Core: nil,
		New: func() policy.Policy { return policy.Fixed{Path: datapath.KindHostDirect} },
	},
	"adaptive": {
		Name: "adaptive", Framework: true, Core: ProposedConfig,
		New: func() policy.Policy { return policy.Adaptive{} },
	},
	"aware": {
		Name: "aware", Framework: true, Core: ProposedConfig,
		New: func() policy.Policy { return policy.Aware{} },
	},
	"measure": {
		Name: "measure", Framework: true, Core: ProposedConfig,
		New: func() policy.Policy { return policy.NewMeasuring() },
	},
	"feedback": {
		Name: "feedback", Framework: true, Core: ProposedConfig,
		New: func() policy.Policy { return policy.NewFeedback(policy.DefaultFeedbackConfig()) },
	},
}

// PolicyBundle resolves a -policy value.
func PolicyBundle(name string) (Bundle, error) {
	b, ok := bundles[name]
	if !ok {
		return Bundle{}, fmt.Errorf("baseline: unknown policy %q (have %v)", name, PolicyNames())
	}
	return b, nil
}

// PolicyNames lists the known -policy values, sorted.
func PolicyNames() []string {
	names := make([]string, 0, len(bundles))
	for n := range bundles {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// SharedCore resolves the framework configuration for a multi-tenant
// environment whose jobs run the given policies. Tenant jobs share one
// framework, so per-job core configs cannot differ: every framework-backed
// policy must agree on the proposed substrate (staging-handicap bundles
// would silently change the shared proxies for everyone). Host-only
// policies ("hostdirect") are fine — their job just never touches the
// proxies. At least one job must exist; the shared framework is always
// built (other tenants may offload even if one job does not).
func SharedCore(names []string) (core.Config, error) {
	if len(names) == 0 {
		return core.Config{}, fmt.Errorf("baseline: shared core needs at least one policy")
	}
	for _, n := range names {
		b, err := PolicyBundle(n)
		if err != nil {
			return core.Config{}, err
		}
		if !b.Framework {
			continue
		}
		if b.Core == nil {
			return core.Config{}, fmt.Errorf("baseline: policy %q has no core config", n)
		}
		if b.Core() != ProposedConfig() {
			return core.Config{}, fmt.Errorf("baseline: policy %q needs core config %+v, which cannot be shared by a multi-tenant framework", n, b.Core())
		}
	}
	return ProposedConfig(), nil
}
