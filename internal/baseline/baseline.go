// Package baseline configures the comparison systems of the paper's
// evaluation:
//
//   - BluesMPI (refs [8],[9]): a DPU offload MPI that stages data through
//     DPU memory, exchanges metadata on every call (no group-request cache),
//     and shows degraded performance on the first iterations of a new
//     request — the warm-up effect Section VIII-D diagnoses;
//   - IntelMPI: host-based nonblocking collectives with progress only
//     inside MPI calls (package mpi is exactly that model, so IntelMPI
//     needs no framework at all).
//
// Both are expressed as core.Config presets so that micro-benchmarks and
// applications compare mechanisms under an otherwise identical substrate.
package baseline

import (
	"repro/internal/core"
	"repro/internal/sim"
)

// Scheme names used throughout benches and reports.
const (
	NameProposed = "Proposed"
	NameBluesMPI = "BluesMPI"
	NameIntelMPI = "IntelMPI"
)

// ProposedConfig is the paper's design: cross-GVMI transfers with all
// caches enabled.
func ProposedConfig() core.Config {
	return core.DefaultConfig()
}

// BluesMPIConfig models the staging-based state of the art: data bounces
// through DPU memory, request metadata is re-exchanged on every collective
// call, and each new request pays a first-use warm-up penalty.
func BluesMPIConfig() core.Config {
	cfg := core.DefaultConfig()
	cfg.Mechanism = core.MechStaging
	cfg.GroupCache = false
	// Calibrated so that, with no warm-up iterations (application level),
	// BluesMPI lands ~1.4x IntelMPI on the P3DFFT runs — the degradation
	// the paper measured but could not attribute (Section VIII-D). OMB-style
	// benchmarks hide it behind >= WarmupCalls warm-up iterations, exactly
	// as the paper describes.
	cfg.WarmupPerOp = 150 * sim.Microsecond
	cfg.WarmupCalls = 4
	return cfg
}

// StagingNoWarmupConfig isolates the staging mechanism itself (used by the
// Figure 4 pingpong comparison and mechanism ablations).
func StagingNoWarmupConfig() core.Config {
	cfg := core.DefaultConfig()
	cfg.Mechanism = core.MechStaging
	return cfg
}
