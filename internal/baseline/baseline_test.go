package baseline

import (
	"testing"

	"repro/internal/core"
)

func TestProposedConfigIsGVMIWithCaches(t *testing.T) {
	cfg := ProposedConfig()
	if cfg.Mechanism != core.MechGVMI || !cfg.RegCaches || !cfg.GroupCache {
		t.Fatalf("proposed preset wrong: %+v", cfg)
	}
	if cfg.WarmupPerOp != 0 {
		t.Fatal("proposed design must not pay a warm-up penalty")
	}
}

func TestBluesMPIConfigModelsThePaper(t *testing.T) {
	cfg := BluesMPIConfig()
	if cfg.Mechanism != core.MechStaging {
		t.Fatal("BluesMPI must stage through DPU memory")
	}
	if cfg.GroupCache {
		t.Fatal("BluesMPI re-exchanges metadata per call")
	}
	if cfg.WarmupPerOp <= 0 || cfg.WarmupCalls <= 0 {
		t.Fatal("BluesMPI must model the first-iterations degradation")
	}
}

func TestStagingNoWarmupIsolatesMechanism(t *testing.T) {
	cfg := StagingNoWarmupConfig()
	if cfg.Mechanism != core.MechStaging {
		t.Fatal("wrong mechanism")
	}
	if cfg.WarmupPerOp != 0 {
		t.Fatal("no-warmup preset must not include the warm-up penalty")
	}
	if !cfg.GroupCache {
		t.Fatal("mechanism isolation keeps all caches enabled")
	}
}
