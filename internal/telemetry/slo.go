package telemetry

import (
	"repro/internal/metrics"
	"repro/internal/sim"
)

// SLOConfig describes one tenant's latency objective.
type SLOConfig struct {
	// Objective is the per-iteration latency objective. 0 disables the
	// tracker entirely — no series are created, so runs without SLOs
	// export byte-identically to runs predating the tracker.
	Objective sim.Time
	// Target is the fraction of iterations that must meet the objective
	// (the SLO target, e.g. 0.99). 0 means DefaultSLOTarget.
	Target float64
	// Window is the sliding-window length (iterations) of the burn-rate
	// estimate. 0 means DefaultSLOWindow.
	Window int
}

// DefaultSLOTarget is the default SLO target: 99% of iterations in
// objective.
const DefaultSLOTarget = 0.99

// DefaultSLOWindow is the default burn-rate window length.
const DefaultSLOWindow = 32

// SLOTracker counts latency-objective violations for one tenant and keeps
// a windowed burn rate — the fraction of the error budget (1 − target) the
// last Window iterations consumed, in the SRE sense: burn 1.0 means
// violations arrive exactly at budget, above 1.0 the SLO is burning down.
//
// Series appear in the registry under layer "slo", entity "latency", with
// the tenant label: counters "samples" and "violations", a Set-gauge
// "burn_rate" (most recent window) and a SetMax-gauge "burn_rate_max"
// (worst window seen). All methods are nil-safe, and a tracker never
// consumes virtual time.
type SLOTracker struct {
	objective sim.Time
	budget    float64

	win  []bool // violation flags, ring
	wi   int
	wn   int
	viol int

	samples    *metrics.Counter
	violations *metrics.Counter
	burn       *metrics.Gauge
	burnMax    *metrics.Gauge
}

// NewSLOTracker returns a tracker recording into reg under the tenant
// label, or nil (inert) when cfg.Objective is 0 — zero-valued configs cost
// nothing. A nil registry also returns nil: violation state would be
// observable nowhere.
func NewSLOTracker(reg *metrics.Registry, tenant string, cfg SLOConfig) *SLOTracker {
	if cfg.Objective <= 0 || reg == nil {
		return nil
	}
	if cfg.Target <= 0 || cfg.Target >= 1 {
		cfg.Target = DefaultSLOTarget
	}
	if cfg.Window <= 0 {
		cfg.Window = DefaultSLOWindow
	}
	return &SLOTracker{
		objective:  cfg.Objective,
		budget:     1 - cfg.Target,
		win:        make([]bool, cfg.Window),
		samples:    reg.CounterT("slo", "latency", "samples", tenant),
		violations: reg.CounterT("slo", "latency", "violations", tenant),
		burn:       reg.GaugeT("slo", "latency", "burn_rate", tenant),
		burnMax:    reg.GaugeT("slo", "latency", "burn_rate_max", tenant),
	}
}

// Observe records one iteration latency; nil-safe.
func (t *SLOTracker) Observe(d sim.Time) {
	if t == nil {
		return
	}
	t.samples.Inc()
	bad := d > t.objective
	if bad {
		t.violations.Inc()
	}
	if t.wn == len(t.win) {
		if t.win[t.wi] {
			t.viol--
		}
	} else {
		t.wn++
	}
	t.win[t.wi] = bad
	if bad {
		t.viol++
	}
	t.wi = (t.wi + 1) % len(t.win)
	rate := float64(t.viol) / float64(t.wn) / t.budget
	t.burn.Set(rate)
	t.burnMax.SetMax(rate)
}

// Violations returns the lifetime violation count; nil-safe.
func (t *SLOTracker) Violations() int64 {
	if t == nil {
		return 0
	}
	return t.violations.Value()
}

// Samples returns the lifetime sample count; nil-safe.
func (t *SLOTracker) Samples() int64 {
	if t == nil {
		return 0
	}
	return t.samples.Value()
}

// BurnRate returns the current windowed burn rate; nil-safe.
func (t *SLOTracker) BurnRate() float64 {
	if t == nil {
		return 0
	}
	return t.burn.Value()
}
