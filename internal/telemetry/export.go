package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"

	"repro/internal/metrics"
	"repro/internal/sim"
)

// Timeline owns the recorders of one CLI invocation: sweeps create one
// recorder per simulated run, and the exporters write them all. A nil
// *Timeline hands out nil recorders, so the whole layer disables at zero
// cost (the same discipline as metrics and spans).
type Timeline struct {
	cfg  Config
	recs []*Recorder
}

// NewTimeline returns an empty timeline; recorders it creates share cfg.
func NewTimeline(cfg Config) *Timeline {
	return &Timeline{cfg: cfg.withDefaults()}
}

// Enabled reports whether the timeline collects; nil-safe.
func (t *Timeline) Enabled() bool { return t != nil }

// NewRecorder creates and tracks a recorder labelled label (empty labels
// auto-number as "run<N>" in creation order); nil-safe — a nil timeline
// returns a nil (inert) recorder. Creation order is the export order of
// runs, so callers must create recorders deterministically; the sweep
// runner forces serial execution when a timeline is installed.
func (t *Timeline) NewRecorder(label string) *Recorder {
	if t == nil {
		return nil
	}
	if label == "" {
		label = fmt.Sprintf("run%d", len(t.recs))
	}
	r := NewRecorder(label, t.cfg)
	t.recs = append(t.recs, r)
	return r
}

// Recorders returns the tracked recorders in creation order; nil-safe.
func (t *Timeline) Recorders() []*Recorder {
	if t == nil {
		return nil
	}
	return t.recs
}

// sortSeries orders series for export: registry key order (layer, entity,
// name, tenant), then kind.
func sortSeries(ss []*Series) {
	sort.Slice(ss, func(i, j int) bool {
		a, b := ss[i], ss[j]
		if a.Key.Layer != b.Key.Layer {
			return a.Key.Layer < b.Key.Layer
		}
		if a.Key.Entity != b.Key.Entity {
			return a.Key.Entity < b.Key.Entity
		}
		if a.Key.Name != b.Key.Name {
			return a.Key.Name < b.Key.Name
		}
		if a.Key.Tenant != b.Key.Tenant {
			return a.Key.Tenant < b.Key.Tenant
		}
		return a.Kind < b.Kind
	})
}

// SeriesLine is the JSONL schema of one exported series: the identifying
// dimensions, the bucket grid, and the per-bucket payload (Deltas for
// monotone kinds, Values for gauges).
type SeriesLine struct {
	Run         string    `json:"run,omitempty"`
	Layer       string    `json:"layer"`
	Entity      string    `json:"entity"`
	Name        string    `json:"name"`
	Tenant      string    `json:"tenant,omitempty"`
	Device      string    `json:"device,omitempty"`
	Kind        string    `json:"kind"`
	WidthNS     int64     `json:"width_ns"`
	FirstBucket int       `json:"first_bucket"`
	Base        int64     `json:"base,omitempty"`
	Deltas      []int64   `json:"deltas,omitempty"`
	Values      []float64 `json:"values,omitempty"`
}

// WriteJSONL writes every series of every recorder as one JSON object per
// line: recorders in creation order, series in key order. This is the
// full-fidelity format — bucket width in nanoseconds, exact per-bucket
// deltas — the other exporters derive from.
func WriteJSONL(w io.Writer, recs ...*Recorder) error {
	enc := json.NewEncoder(w)
	for _, r := range recs {
		if r == nil {
			continue
		}
		for _, s := range r.Sorted() {
			line := SeriesLine{
				Run:         r.label,
				Layer:       s.Key.Layer,
				Entity:      s.Key.Entity,
				Name:        s.Key.Name,
				Tenant:      s.Key.Tenant,
				Device:      r.Device(s.Key.Entity),
				Kind:        s.Kind.String(),
				WidthNS:     int64(r.cfg.Width),
				FirstBucket: s.start,
				Base:        s.base,
			}
			if s.Kind == KindGauge {
				line.Values = make([]float64, s.n)
				for i := 0; i < s.n; i++ {
					line.Values[i] = s.FloatAt(i)
				}
			} else {
				line.Deltas = make([]int64, s.n)
				for i := 0; i < s.n; i++ {
					line.Deltas[i] = s.IntAt(i)
				}
			}
			if err := enc.Encode(line); err != nil {
				return err
			}
		}
	}
	return nil
}

// WriteJSONL writes the timeline's recorders as JSONL; nil-safe.
func (t *Timeline) WriteJSONL(w io.Writer) error {
	return WriteJSONL(w, t.Recorders()...)
}

// tsName maps a series to its Prometheus family name: histograms expand to
// the conventional _count/_sum suffixes.
func tsName(s *Series) string {
	n := metrics.PromName(s.Key.Layer, s.Key.Name)
	switch s.Kind {
	case KindHistCount:
		n += "_count"
	case KindHistSum:
		n += "_sum"
	}
	return n
}

// tsLabels renders one series' label set: entity, optional tenant, the
// owning node's device profile when the recorder has a device map, and the
// recorder's run label when present.
func tsLabels(s *Series, dev, run string) string {
	var b strings.Builder
	b.WriteString("entity=")
	b.WriteString(metrics.PromLabelValue(s.Key.Entity))
	if s.Key.Tenant != "" {
		b.WriteString(",tenant=")
		b.WriteString(metrics.PromLabelValue(s.Key.Tenant))
	}
	if dev != "" {
		b.WriteString(",device=")
		b.WriteString(metrics.PromLabelValue(dev))
	}
	if run != "" {
		b.WriteString(",run=")
		b.WriteString(metrics.PromLabelValue(run))
	}
	return b.String()
}

// WritePrometheusTS writes the recorders as timestamped Prometheus text
// exposition: one sample per bucket per series, timestamped with the bucket
// end in integer milliseconds of virtual time (the exposition format's
// timestamp unit — sub-millisecond buckets collapse onto shared
// timestamps; JSONL is the full-fidelity export). Monotone kinds expose
// cumulative values (base + running delta sum) so they read like scraped
// counters; gauges expose their sampled values.
func WritePrometheusTS(w io.Writer, recs ...*Recorder) error {
	typed := map[string]bool{}
	for _, r := range recs {
		if r == nil {
			continue
		}
		for _, s := range r.Sorted() {
			name := tsName(s)
			if !typed[name] {
				typed[name] = true
				typ := "counter"
				if s.Kind == KindGauge {
					typ = "gauge"
				}
				fmt.Fprintf(w, "# HELP %s Simulated-cluster time series %q from layer %q (virtual-time buckets).\n",
					name, s.Key.Name, s.Key.Layer)
				fmt.Fprintf(w, "# TYPE %s %s\n", name, typ)
			}
			lbl := tsLabels(s, r.Device(s.Key.Entity), r.label)
			cum := s.base
			for i := 0; i < s.n; i++ {
				end := sim.Time(s.start+i+1) * r.cfg.Width
				ms := int64(end) / 1e6
				if s.Kind == KindGauge {
					fmt.Fprintf(w, "%s{%s} %g %d\n", name, lbl, s.FloatAt(i), ms)
				} else {
					cum += s.IntAt(i)
					fmt.Fprintf(w, "%s{%s} %d %d\n", name, lbl, cum, ms)
				}
			}
		}
	}
	return nil
}

// WritePrometheusTS writes the timeline's recorders as timestamped
// Prometheus text; nil-safe.
func (t *Timeline) WritePrometheusTS(w io.Writer) error {
	return WritePrometheusTS(w, t.Recorders()...)
}

// chromeSeriesName labels one series in a Chrome trace counter track.
func chromeSeriesName(s *Series) string {
	n := s.Key.Layer + "/" + s.Key.Entity + "/" + s.Key.Name
	if s.Key.Tenant != "" {
		n += "/" + s.Key.Tenant
	}
	switch s.Kind {
	case KindHistCount:
		n += ":count"
	case KindHistSum:
		n += ":sum"
	}
	return n
}

// ChromeCounterLines renders the recorder's series as Chrome trace counter
// events ("ph":"C") for span.WriteChromeTraceWith, so a span trace and the
// time series land in one trace file. To keep traces tractable, a sample
// is emitted only when the series' value changes (plus the first and last
// retained bucket) — trace viewers hold counter tracks flat between
// samples. Monotone kinds plot per-bucket rates (delta per bucket), which
// is the readable form for goodput/ops tracks; nil-safe.
func (r *Recorder) ChromeCounterLines() []string {
	if r == nil {
		return nil
	}
	var out []string
	pid := 1
	for _, s := range r.Sorted() {
		name := chromeSeriesName(s)
		if r.label != "" {
			name = r.label + "/" + name
		}
		emit := func(i int, v float64) {
			endUS := float64(sim.Time(s.start+i+1)*r.cfg.Width) / 1e3
			out = append(out, fmt.Sprintf(
				`{"ph":"C","pid":%d,"tid":0,"ts":%.3f,"name":%s,"args":{"value":%g}}`,
				pid, endUS, jsonString(name), v))
		}
		var prev float64
		for i := 0; i < s.n; i++ {
			var v float64
			if s.Kind == KindGauge {
				v = s.FloatAt(i)
			} else {
				v = float64(s.IntAt(i))
			}
			if i == 0 || i == s.n-1 || v != prev {
				emit(i, v)
			}
			prev = v
		}
	}
	return out
}

// jsonString renders s as a JSON string literal.
func jsonString(s string) string {
	b, _ := json.Marshal(s)
	return string(b)
}
