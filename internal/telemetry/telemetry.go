// Package telemetry is the virtual-time flight recorder: it turns the
// metrics registry's end-of-run totals into time series by sampling watched
// counters, gauges and histograms into fixed-width virtual-time buckets.
//
// The recorder rides the kernel's tick hook (sim.Kernel.SetTick), which
// fires after the clock advances and before the event at the new timestamp
// dispatches — so a bucket [iW, (i+1)W) closes exactly when the first event
// at or past its end runs, having seen every mutation inside the bucket and
// none after it. The hook observes only: it schedules nothing, consumes no
// virtual time, and therefore cannot move a simulated timestamp (guarded
// bit-exactly against the fig13 pinned timings in internal/bench).
//
// Storage is bounded: each series is a fixed-capacity ring of per-bucket
// values — deltas for monotone series (counters, histogram count/sum),
// absolute samples for gauges. When the ring wraps, the oldest bucket is
// folded into a base offset (counters) or dropped (gauges), so memory is
// O(watched series × ring capacity) regardless of run length.
//
// The sampling hot path allocates nothing in steady state: series handles
// are resolved through a map keyed by value structs, the registry is walked
// with pre-bound method values, and ring pushes are in-place (enforced by
// an allocation-budget test). Like metrics and spans, a nil *Recorder is
// valid and inert.
package telemetry

import (
	"repro/internal/metrics"
	"repro/internal/sim"
)

// Match selects registry series to record: Layer must match exactly; an
// empty Name matches every series in the layer.
type Match struct {
	Layer string
	Name  string
}

// DefaultWatch is the standard watchlist: fabric per-endpoint goodput,
// proxy backlog (total and per-tenant) plus cross-tenant HOL wait, verbs
// retries, every policy counter (decides, probes, re-probes), and every SLO
// tracker series.
func DefaultWatch() []Match {
	return []Match{
		{Layer: "fabric", Name: "msgs_tx"},
		{Layer: "fabric", Name: "bytes_tx"},
		{Layer: "fabric", Name: "msgs_rx"},
		{Layer: "fabric", Name: "bytes_rx"},
		{Layer: "core", Name: "queue_depth"},
		{Layer: "core", Name: "tenant_queue_depth"},
		{Layer: "core", Name: "cross_tenant_wait_ns"},
		{Layer: "verbs", Name: "retries"},
		{Layer: "policy"},
		{Layer: "slo"},
	}
}

// Config tunes one recorder (and every recorder of a Timeline).
type Config struct {
	// Width is the bucket width in virtual time. 0 means DefaultWidth.
	Width sim.Time
	// Buckets is the ring capacity per series — the number of most-recent
	// buckets retained. 0 means DefaultBuckets.
	Buckets int
	// Watch selects the series to record; nil means DefaultWatch().
	Watch []Match
}

// DefaultWidth is the default bucket width: 50µs resolves the drift
// scenario's phase boundaries (1ms arrival, 9ms settle) exactly.
const DefaultWidth = 50 * sim.Microsecond

// DefaultBuckets is the default per-series ring capacity (4096 buckets ×
// 50µs ≈ 205ms of history at the default width).
const DefaultBuckets = 4096

func (c Config) withDefaults() Config {
	if c.Width <= 0 {
		c.Width = DefaultWidth
	}
	if c.Buckets <= 0 {
		c.Buckets = DefaultBuckets
	}
	if c.Watch == nil {
		c.Watch = DefaultWatch()
	}
	return c
}

// SeriesKind distinguishes the per-bucket encoding of one series.
type SeriesKind uint8

const (
	// KindCounter stores the counter's per-bucket increase.
	KindCounter SeriesKind = iota
	// KindGauge stores the gauge's value at each bucket close.
	KindGauge
	// KindHistCount stores the histogram's per-bucket observation count.
	KindHistCount
	// KindHistSum stores the histogram's per-bucket sum increase.
	KindHistSum
)

// String returns the export tag of the kind.
func (k SeriesKind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	case KindHistCount:
		return "hist_count"
	case KindHistSum:
		return "hist_sum"
	}
	return "unknown"
}

// seriesID identifies one recorded series: the registry key plus the
// encoding (histograms expand to two series).
type seriesID struct {
	key  metrics.Key
	kind SeriesKind
}

// Series is one recorded time series: a ring of per-bucket values covering
// buckets [Start, Start+Len) of the recorder's fixed-width grid.
type Series struct {
	Key  metrics.Key
	Kind SeriesKind

	started bool
	start   int   // bucket index of the oldest retained value
	n       int   // live buckets (≤ ring capacity)
	head    int   // ring position of bucket `start`
	base    int64 // cumulative increase folded out of evicted buckets
	last    int64 // last sampled cumulative value (monotone kinds)

	iv []int64   // per-bucket values, monotone kinds (ring, cap=Buckets)
	fv []float64 // per-bucket values, KindGauge (ring, cap=Buckets)
}

// Start returns the bucket index of the oldest retained value.
func (s *Series) Start() int { return s.start }

// Len returns the number of retained buckets.
func (s *Series) Len() int { return s.n }

// Base returns the cumulative increase evicted from the ring (monotone
// kinds; always 0 until the ring wraps).
func (s *Series) Base() int64 { return s.base }

// IntAt returns the value of bucket `start+i` for monotone kinds.
func (s *Series) IntAt(i int) int64 { return s.iv[(s.head+i)%len(s.iv)] }

// FloatAt returns the value of bucket `start+i` for KindGauge.
func (s *Series) FloatAt(i int) float64 { return s.fv[(s.head+i)%len(s.fv)] }

// push appends one bucket value, evicting the oldest when the ring is full.
func (s *Series) push(bucket int, iv int64, fv float64) {
	if !s.started {
		s.started = true
		s.start = bucket
	}
	if s.Kind == KindGauge {
		if s.n == len(s.fv) {
			s.start++
			s.head = (s.head + 1) % len(s.fv)
			s.n--
		}
		s.fv[(s.head+s.n)%len(s.fv)] = fv
		s.n++
		return
	}
	if s.n == len(s.iv) {
		s.base += s.iv[s.head]
		s.start++
		s.head = (s.head + 1) % len(s.iv)
		s.n--
	}
	s.iv[(s.head+s.n)%len(s.iv)] = iv
	s.n++
}

// Recorder samples one simulation's registry into bucketed time series.
// The zero value is unusable; obtain one from Timeline.NewRecorder or
// NewRecorder. A nil *Recorder is valid and inert everywhere.
type Recorder struct {
	cfg   Config
	label string

	// devices maps per-node entity names ("n0.host", "proxy3") to device
	// profile names; exports tag matching series with a device label. Empty
	// (the default, and always on unprofiled fleets) adds nothing, so
	// pre-device exports are byte-identical.
	devices map[string]string

	reg    *metrics.Registry
	index  map[seriesID]*Series
	series []*Series // creation order; exports sort

	next     sim.Time // end of the lowest unclosed bucket
	cur      int      // bucket being closed during a sample scan
	finished bool

	// Pre-bound method values so the tick path passes stored funcs to the
	// registry Visit methods instead of allocating closures per tick.
	visitC func(metrics.Key, *metrics.Counter)
	visitG func(metrics.Key, *metrics.Gauge)
	visitH func(metrics.Key, *metrics.Histogram)
	primeC func(metrics.Key, *metrics.Counter)
	primeH func(metrics.Key, *metrics.Histogram)
}

// NewRecorder returns an unstarted recorder with the given label (the
// "run" dimension of exports; may be empty for single-run use).
func NewRecorder(label string, cfg Config) *Recorder {
	r := &Recorder{cfg: cfg.withDefaults(), label: label, index: make(map[seriesID]*Series)}
	r.visitC = r.sampleCounter
	r.visitG = r.sampleGauge
	r.visitH = r.sampleHistogram
	r.primeC = r.primeCounter
	r.primeH = r.primeHistogram
	return r
}

// Enabled reports whether the recorder records; nil-safe.
func (r *Recorder) Enabled() bool { return r != nil }

// Label returns the recorder's run label; nil-safe.
func (r *Recorder) Label() string {
	if r == nil {
		return ""
	}
	return r.label
}

// Width returns the bucket width; nil-safe (0 when nil).
func (r *Recorder) Width() sim.Time {
	if r == nil {
		return 0
	}
	return r.cfg.Width
}

// SetDeviceLabels installs the entity-to-device-profile map exports use to
// tag per-node series (cluster.DeviceLabels supplies it). Nil-safe; an
// empty or nil map leaves every export byte-identical.
func (r *Recorder) SetDeviceLabels(m map[string]string) {
	if r == nil || len(m) == 0 {
		return
	}
	r.devices = m
}

// Device returns the device profile name of an entity ("" when unmapped);
// nil-safe.
func (r *Recorder) Device(entity string) string {
	if r == nil {
		return ""
	}
	return r.devices[entity]
}

// Start attaches the recorder to a kernel and registry: watched series that
// already exist are primed (their current totals become the zero point, so
// exported counters read "increase since attach") and the kernel's tick
// hook is armed on the bucket grid. Nil-safe; attaching with a nil registry
// records nothing.
func (r *Recorder) Start(k *sim.Kernel, reg *metrics.Registry) {
	if r == nil || k == nil || reg == nil {
		return
	}
	r.reg = reg
	reg.VisitCounters(r.primeC)
	reg.VisitHistograms(r.primeH)
	// First boundary strictly after the current time, on the grid.
	first := (k.Now()/r.cfg.Width + 1) * r.cfg.Width
	r.next = first
	k.SetTick(first, r.onTick)
}

// watched reports whether a registry key is on the watchlist.
func (r *Recorder) watched(k metrics.Key) bool {
	for i := range r.cfg.Watch {
		m := &r.cfg.Watch[i]
		if m.Layer == k.Layer && (m.Name == "" || m.Name == k.Name) {
			return true
		}
	}
	return false
}

// lookup returns (creating if needed) the series for one id. Creation
// happens once per series — the steady-state path is a pure map hit.
func (r *Recorder) lookup(id seriesID) *Series {
	s := r.index[id]
	if s == nil {
		s = &Series{Key: id.key, Kind: id.kind}
		if id.kind == KindGauge {
			s.fv = make([]float64, r.cfg.Buckets)
		} else {
			s.iv = make([]int64, r.cfg.Buckets)
		}
		r.index[id] = s
		r.series = append(r.series, s)
	}
	return s
}

// primeCounter records a pre-existing counter's total as its zero point.
func (r *Recorder) primeCounter(k metrics.Key, c *metrics.Counter) {
	if !r.watched(k) {
		return
	}
	r.lookup(seriesID{k, KindCounter}).last = c.Value()
}

// primeHistogram records a pre-existing histogram's totals as zero points.
func (r *Recorder) primeHistogram(k metrics.Key, h *metrics.Histogram) {
	if !r.watched(k) {
		return
	}
	r.lookup(seriesID{k, KindHistCount}).last = h.Count()
	r.lookup(seriesID{k, KindHistSum}).last = int64(h.Sum())
}

// sampleCounter pushes one counter's increase into the closing bucket.
func (r *Recorder) sampleCounter(k metrics.Key, c *metrics.Counter) {
	if !r.watched(k) {
		return
	}
	s := r.lookup(seriesID{k, KindCounter})
	v := c.Value()
	s.push(r.cur, v-s.last, 0)
	s.last = v
}

// sampleGauge pushes one gauge's value at the closing bucket's end.
func (r *Recorder) sampleGauge(k metrics.Key, g *metrics.Gauge) {
	if !r.watched(k) {
		return
	}
	r.lookup(seriesID{k, KindGauge}).push(r.cur, 0, g.Value())
}

// sampleHistogram pushes one histogram's count and sum increases.
func (r *Recorder) sampleHistogram(k metrics.Key, h *metrics.Histogram) {
	if !r.watched(k) {
		return
	}
	sc := r.lookup(seriesID{k, KindHistCount})
	v := h.Count()
	sc.push(r.cur, v-sc.last, 0)
	sc.last = v
	ss := r.lookup(seriesID{k, KindHistSum})
	v = int64(h.Sum())
	ss.push(r.cur, v-ss.last, 0)
	ss.last = v
}

// closeBucket samples every watched series into the bucket ending at
// r.next, then advances the grid.
func (r *Recorder) closeBucket() {
	r.cur = int(r.next/r.cfg.Width) - 1
	r.reg.VisitCounters(r.visitC)
	r.reg.VisitGauges(r.visitG)
	r.reg.VisitHistograms(r.visitH)
	r.next += r.cfg.Width
}

// onTick is the kernel hook: close every bucket whose end has been
// reached. All applied mutations came from events before r.next (the
// kernel fires the hook before dispatching the first event at or past it),
// so they belong to closed buckets; buckets the clock jumped clean over
// sample zero deltas and unchanged gauges by re-scanning.
func (r *Recorder) onTick(now sim.Time) sim.Time {
	for r.next <= now {
		r.closeBucket()
	}
	return r.next
}

// finish closes the final partial bucket so exports and window queries see
// mutations after the last grid boundary. Idempotent; nil-safe. The
// recorder must not keep running on a kernel after finish.
func (r *Recorder) finish() {
	if r == nil || r.finished {
		return
	}
	r.finished = true
	if r.reg == nil {
		return
	}
	r.closeBucket()
}

// bucketRange converts a virtual-time window to bucket indices: buckets
// whose start lies in [from, to).
func (r *Recorder) bucketRange(from, to sim.Time) (lo, hi int) {
	w := r.cfg.Width
	lo = int((from + w - 1) / w)
	hi = int((to + w - 1) / w)
	return lo, hi
}

// CounterIncrease returns the recorded increase of one counter series over
// the virtual-time window [from, to), summed over buckets starting inside
// the window; nil-safe. Buckets evicted from the ring are not counted.
func (r *Recorder) CounterIncrease(layer, entity, name, tenant string, from, to sim.Time) int64 {
	if r == nil {
		return 0
	}
	r.finish()
	s := r.index[seriesID{metrics.Key{Layer: layer, Entity: entity, Name: name, Tenant: tenant}, KindCounter}]
	if s == nil {
		return 0
	}
	lo, hi := r.bucketRange(from, to)
	var sum int64
	for i := 0; i < s.n; i++ {
		if b := s.start + i; b >= lo && b < hi {
			sum += s.IntAt(i)
		}
	}
	return sum
}

// MaxGaugeRange returns the maximum recorded value among every gauge series
// named (layer, *, name) — any entity, any tenant — over the window
// [from, to), and whether any sample fell inside it; nil-safe.
func (r *Recorder) MaxGaugeRange(layer, name string, from, to sim.Time) (float64, bool) {
	if r == nil {
		return 0, false
	}
	r.finish()
	lo, hi := r.bucketRange(from, to)
	var max float64
	found := false
	for _, s := range r.series {
		if s.Kind != KindGauge || s.Key.Layer != layer || s.Key.Name != name {
			continue
		}
		for i := 0; i < s.n; i++ {
			if b := s.start + i; b >= lo && b < hi {
				if v := s.FloatAt(i); !found || v > max {
					max, found = v, true
				}
			}
		}
	}
	return max, found
}

// Sorted returns the recorded series in deterministic export order (by
// registry key, then kind), closing the final partial bucket first;
// nil-safe. The slice is freshly sorted but shares the underlying series.
func (r *Recorder) Sorted() []*Series {
	if r == nil {
		return nil
	}
	r.finish()
	out := make([]*Series, len(r.series))
	copy(out, r.series)
	sortSeries(out)
	return out
}
