package telemetry

import (
	"strings"
	"testing"

	"repro/internal/metrics"
	"repro/internal/sim"
)

// testConfig watches the "fabric" and "core" layers with a tiny ring so
// eviction is reachable in a few buckets.
func testConfig(buckets int) Config {
	return Config{
		Width:   100 * sim.Nanosecond,
		Buckets: buckets,
		Watch:   []Match{{Layer: "fabric"}, {Layer: "core"}},
	}
}

// run starts a recorder on a fresh kernel/registry, lets the caller
// schedule mutations, runs the kernel dry, and returns the pieces.
func run(t *testing.T, cfg Config, script func(k *sim.Kernel, reg *metrics.Registry)) (*Recorder, *metrics.Registry) {
	t.Helper()
	k := sim.NewKernel()
	reg := metrics.NewRegistry()
	r := NewRecorder("", cfg)
	r.Start(k, reg)
	script(k, reg)
	k.Run()
	return r, reg
}

func findSeries(r *Recorder, layer, entity, name string, kind SeriesKind) *Series {
	for _, s := range r.Sorted() {
		if s.Key.Layer == layer && s.Key.Entity == entity && s.Key.Name == name && s.Kind == kind {
			return s
		}
	}
	return nil
}

func TestRecorderBucketsCounterDeltas(t *testing.T) {
	r, _ := run(t, testConfig(64), func(k *sim.Kernel, reg *metrics.Registry) {
		c := reg.Counter("fabric", "port0", "msgs_tx")
		// Bucket 0 is [0,100): mutations at 10 and 99 land in it; the
		// mutation at exactly 100 belongs to bucket 1.
		k.At(10, func() { c.Add(3) })
		k.At(99, func() { c.Inc() })
		k.At(100, func() { c.Inc() })
		// Clock jump over buckets 2..4; bucket 5 gets one increment.
		k.At(550, func() { c.Add(10) })
	})
	s := findSeries(r, "fabric", "port0", "msgs_tx", KindCounter)
	if s == nil {
		t.Fatal("counter series not recorded")
	}
	want := []int64{4, 1, 0, 0, 0, 10}
	if s.Start() != 0 || s.Len() != len(want) {
		t.Fatalf("series covers buckets [%d,%d), want [0,%d)", s.Start(), s.Start()+s.Len(), len(want))
	}
	for i, w := range want {
		if got := s.IntAt(i); got != w {
			t.Fatalf("bucket %d delta = %d, want %d (all: %+v)", i, got, w, want)
		}
	}
	if s.Base() != 0 {
		t.Fatalf("unwrapped ring has base %d, want 0", s.Base())
	}
}

func TestRecorderSamplesGaugesAtBucketClose(t *testing.T) {
	r, _ := run(t, testConfig(64), func(k *sim.Kernel, reg *metrics.Registry) {
		g := reg.Gauge("core", "proxy0", "queue_depth")
		k.At(10, func() { g.Set(7) })
		k.At(90, func() { g.Set(2) }) // last write in bucket 0 wins
		k.At(250, func() { g.Set(5) })
	})
	s := findSeries(r, "core", "proxy0", "queue_depth", KindGauge)
	if s == nil {
		t.Fatal("gauge series not recorded")
	}
	// Bucket 0 closes at 100 with value 2; bucket 1 unchanged (2); bucket 2
	// closes with 5.
	want := []float64{2, 2, 5}
	if s.Len() != len(want) {
		t.Fatalf("gauge has %d buckets, want %d", s.Len(), len(want))
	}
	for i, w := range want {
		if got := s.FloatAt(i); got != w {
			t.Fatalf("bucket %d gauge = %g, want %g", i, got, w)
		}
	}
}

func TestRecorderExpandsHistograms(t *testing.T) {
	r, _ := run(t, testConfig(64), func(k *sim.Kernel, reg *metrics.Registry) {
		h := reg.Histogram("core", "proxy0", "wait_ns")
		k.At(50, func() { h.Observe(100) })
		k.At(60, func() { h.Observe(200) })
		k.At(150, func() { h.Observe(1000) })
	})
	cnt := findSeries(r, "core", "proxy0", "wait_ns", KindHistCount)
	sum := findSeries(r, "core", "proxy0", "wait_ns", KindHistSum)
	if cnt == nil || sum == nil {
		t.Fatal("histogram series not recorded")
	}
	if cnt.IntAt(0) != 2 || cnt.IntAt(1) != 1 {
		t.Fatalf("hist_count deltas = %d,%d, want 2,1", cnt.IntAt(0), cnt.IntAt(1))
	}
	if sum.IntAt(0) != 300 || sum.IntAt(1) != 1000 {
		t.Fatalf("hist_sum deltas = %d,%d, want 300,1000", sum.IntAt(0), sum.IntAt(1))
	}
}

func TestRecorderPrimesPreexistingCounters(t *testing.T) {
	k := sim.NewKernel()
	reg := metrics.NewRegistry()
	c := reg.Counter("fabric", "port0", "msgs_tx")
	c.Add(1000) // pre-attach total must not leak into the series
	r := NewRecorder("", testConfig(64))
	r.Start(k, reg)
	k.At(50, func() { c.Add(5) })
	k.Run()
	s := findSeries(r, "fabric", "port0", "msgs_tx", KindCounter)
	if s == nil {
		t.Fatal("counter series not recorded")
	}
	var total int64
	for i := 0; i < s.Len(); i++ {
		total += s.IntAt(i)
	}
	if total != 5 || s.Base() != 0 {
		t.Fatalf("increase since attach = %d (base %d), want 5 (base 0)", total, s.Base())
	}
}

func TestRecorderIgnoresUnwatchedSeries(t *testing.T) {
	r, _ := run(t, testConfig(64), func(k *sim.Kernel, reg *metrics.Registry) {
		k.At(10, func() { reg.Counter("mpi", "rank0", "sends").Inc() })
		k.At(20, func() { reg.Counter("fabric", "port0", "msgs_tx").Inc() })
	})
	if s := findSeries(r, "mpi", "rank0", "sends", KindCounter); s != nil {
		t.Fatal("unwatched mpi series was recorded")
	}
	if s := findSeries(r, "fabric", "port0", "msgs_tx", KindCounter); s == nil {
		t.Fatal("watched fabric series was not recorded")
	}
}

func TestRingEvictionFoldsCountersIntoBase(t *testing.T) {
	// 4-bucket ring, increments in buckets 0..9: the ring retains 6..9
	// (finish closes the partial last bucket) and base holds the rest.
	r, _ := run(t, testConfig(4), func(k *sim.Kernel, reg *metrics.Registry) {
		c := reg.Counter("fabric", "port0", "msgs_tx")
		for b := int64(0); b < 10; b++ {
			at := sim.Time(b*100 + 50)
			k.At(at, func() { c.Inc() })
		}
	})
	s := findSeries(r, "fabric", "port0", "msgs_tx", KindCounter)
	if s == nil {
		t.Fatal("counter series not recorded")
	}
	if s.Len() != 4 {
		t.Fatalf("ring retains %d buckets, want 4", s.Len())
	}
	var retained int64
	for i := 0; i < s.Len(); i++ {
		retained += s.IntAt(i)
	}
	if s.Base()+retained != 10 {
		t.Fatalf("base %d + retained %d != total 10", s.Base(), retained)
	}
	if s.Base() != 6 {
		t.Fatalf("base = %d, want 6 evicted increments", s.Base())
	}
	if s.Start() != 6 {
		t.Fatalf("oldest retained bucket = %d, want 6", s.Start())
	}
	// Window queries must not count evicted buckets.
	if got := r.CounterIncrease("fabric", "port0", "msgs_tx", "", 0, 600); got != 0 {
		t.Fatalf("evicted window reports increase %d, want 0", got)
	}
	if got := r.CounterIncrease("fabric", "port0", "msgs_tx", "", 600, 1000); got != 4 {
		t.Fatalf("retained window reports increase %d, want 4", got)
	}
}

func TestWindowQueries(t *testing.T) {
	r, _ := run(t, testConfig(64), func(k *sim.Kernel, reg *metrics.Registry) {
		c := reg.CounterT("fabric", "port0", "msgs_tx", "fg")
		g0 := reg.Gauge("core", "proxy0", "queue_depth")
		g1 := reg.Gauge("core", "proxy1", "queue_depth")
		k.At(50, func() { c.Add(2); g0.Set(1) })
		k.At(150, func() { c.Add(3); g1.Set(9) })
		k.At(250, func() { c.Add(4); g1.Set(4) })
	})
	if got := r.CounterIncrease("fabric", "port0", "msgs_tx", "fg", 0, 200); got != 5 {
		t.Fatalf("increase [0,200) = %d, want 5", got)
	}
	if got := r.CounterIncrease("fabric", "port0", "msgs_tx", "fg", 200, 300); got != 4 {
		t.Fatalf("increase [200,300) = %d, want 4", got)
	}
	if got := r.CounterIncrease("fabric", "port0", "msgs_tx", "nope", 0, 300); got != 0 {
		t.Fatalf("unknown tenant increase = %d, want 0", got)
	}
	// Max over both proxies' queue depth in [0,300): proxy1 hit 9.
	if v, ok := r.MaxGaugeRange("core", "queue_depth", 0, 300); !ok || v != 9 {
		t.Fatalf("max queue_depth [0,300) = %g,%v, want 9,true", v, ok)
	}
	if v, ok := r.MaxGaugeRange("core", "queue_depth", 200, 300); !ok || v != 4 {
		t.Fatalf("max queue_depth [200,300) = %g,%v, want 4,true", v, ok)
	}
	if _, ok := r.MaxGaugeRange("core", "missing", 0, 300); ok {
		t.Fatal("missing gauge reported a sample")
	}
}

func TestNilRecorderAndTimelineAreInert(t *testing.T) {
	var r *Recorder
	if r.Enabled() || r.Label() != "" || r.Width() != 0 {
		t.Fatal("nil recorder is not inert")
	}
	r.Start(sim.NewKernel(), metrics.NewRegistry())
	if got := r.CounterIncrease("a", "b", "c", "", 0, 100); got != 0 {
		t.Fatalf("nil CounterIncrease = %d", got)
	}
	if _, ok := r.MaxGaugeRange("a", "b", 0, 100); ok {
		t.Fatal("nil MaxGaugeRange found a sample")
	}
	if r.Sorted() != nil || r.ChromeCounterLines() != nil {
		t.Fatal("nil recorder exported series")
	}

	var tl *Timeline
	if tl.Enabled() || tl.Recorders() != nil {
		t.Fatal("nil timeline is not inert")
	}
	if rec := tl.NewRecorder("x"); rec != nil {
		t.Fatal("nil timeline handed out a live recorder")
	}
	var sb strings.Builder
	if err := tl.WriteJSONL(&sb); err != nil || sb.Len() != 0 {
		t.Fatal("nil timeline wrote JSONL")
	}
	if err := tl.WritePrometheusTS(&sb); err != nil || sb.Len() != 0 {
		t.Fatal("nil timeline wrote prometheus")
	}
}

func TestRecorderStartWithNilRegistryRecordsNothing(t *testing.T) {
	k := sim.NewKernel()
	r := NewRecorder("", testConfig(8))
	r.Start(k, nil)
	k.At(500, func() {})
	k.Run()
	if got := len(r.Sorted()); got != 0 {
		t.Fatalf("recorder with nil registry has %d series", got)
	}
}

func TestSLOTracker(t *testing.T) {
	reg := metrics.NewRegistry()
	// Target 0.75 keeps the 25% error budget exact in binary, so the burn
	// assertions can compare floats directly.
	tr := NewSLOTracker(reg, "fg", SLOConfig{Objective: 100, Target: 0.75, Window: 4})
	if tr == nil {
		t.Fatal("tracker not created")
	}
	for _, d := range []sim.Time{50, 150, 80, 90} { // 1 violation in window
		tr.Observe(d)
	}
	if tr.Samples() != 4 || tr.Violations() != 1 {
		t.Fatalf("samples/violations = %d/%d, want 4/1", tr.Samples(), tr.Violations())
	}
	// 1 violation over a window of 4 with a 25% budget: burn exactly 1.0.
	if got := tr.BurnRate(); got != 1 {
		t.Fatalf("burn rate = %g, want 1", got)
	}
	// Window slides: four in-objective observations clear the burn.
	for i := 0; i < 4; i++ {
		tr.Observe(10)
	}
	if got := tr.BurnRate(); got != 0 {
		t.Fatalf("burn rate after recovery = %g, want 0", got)
	}
	// The worst window was the partially-filled one right after the
	// violation: 1 of 2 observations bad = 0.5/0.25 = 2x budget.
	if v := reg.GaugeT("slo", "latency", "burn_rate_max", "fg").Value(); v != 2 {
		t.Fatalf("burn_rate_max = %g, want 2", v)
	}

	// Disabled configurations and nil trackers are inert.
	if NewSLOTracker(reg, "fg", SLOConfig{}) != nil {
		t.Fatal("zero objective created a tracker")
	}
	if NewSLOTracker(nil, "fg", SLOConfig{Objective: 100}) != nil {
		t.Fatal("nil registry created a tracker")
	}
	var nilTr *SLOTracker
	nilTr.Observe(1000)
	if nilTr.Violations() != 0 || nilTr.Samples() != 0 || nilTr.BurnRate() != 0 {
		t.Fatal("nil tracker is not inert")
	}
}

func TestWriteJSONL(t *testing.T) {
	r, _ := run(t, testConfig(64), func(k *sim.Kernel, reg *metrics.Registry) {
		c := reg.CounterT("fabric", "port0", "msgs_tx", "fg")
		g := reg.Gauge("core", "proxy0", "queue_depth")
		k.At(50, func() { c.Add(2); g.Set(3) })
		k.At(150, func() { c.Inc() })
	})
	var sb strings.Builder
	if err := WriteJSONL(&sb, r); err != nil {
		t.Fatal(err)
	}
	got := sb.String()
	wantLines := []string{
		`{"layer":"core","entity":"proxy0","name":"queue_depth","kind":"gauge","width_ns":100,"first_bucket":0,"values":[3,3]}`,
		`{"layer":"fabric","entity":"port0","name":"msgs_tx","tenant":"fg","kind":"counter","width_ns":100,"first_bucket":0,"deltas":[2,1]}`,
	}
	if got != strings.Join(wantLines, "\n")+"\n" {
		t.Fatalf("JSONL mismatch:\ngot:\n%s\nwant:\n%s", got, strings.Join(wantLines, "\n"))
	}
}

func TestWritePrometheusTS(t *testing.T) {
	cfg := Config{Width: sim.Millisecond, Buckets: 16, Watch: []Match{{Layer: "fabric"}}}
	r, _ := run(t, cfg, func(k *sim.Kernel, reg *metrics.Registry) {
		c := reg.Counter("fabric", "port0", "msgs_tx")
		k.At(sim.Millisecond/2, func() { c.Add(2) })
		k.At(3*sim.Millisecond/2, func() { c.Add(3) })
	})
	var sb strings.Builder
	if err := WritePrometheusTS(&sb, r); err != nil {
		t.Fatal(err)
	}
	got := sb.String()
	want := `# HELP offload_fabric_msgs_tx Simulated-cluster time series "msgs_tx" from layer "fabric" (virtual-time buckets).
# TYPE offload_fabric_msgs_tx counter
offload_fabric_msgs_tx{entity="port0"} 2 1
offload_fabric_msgs_tx{entity="port0"} 5 2
`
	if got != want {
		t.Fatalf("prometheus mismatch:\ngot:\n%s\nwant:\n%s", got, want)
	}
}

func TestChromeCounterLinesSparsify(t *testing.T) {
	r, _ := run(t, testConfig(64), func(k *sim.Kernel, reg *metrics.Registry) {
		g := reg.Gauge("core", "proxy0", "queue_depth")
		k.At(50, func() { g.Set(3) })
		k.At(450, func() { g.Set(3) }) // unchanged: buckets 1..4 all read 3
		k.At(550, func() { g.Set(8) })
	})
	lines := r.ChromeCounterLines()
	// Changes at buckets 0 and 5, plus the forced final bucket; the flat
	// middle buckets are suppressed.
	if len(lines) != 2 {
		t.Fatalf("got %d counter samples, want 2 (first + change/last):\n%s",
			len(lines), strings.Join(lines, "\n"))
	}
	for _, l := range lines {
		if !strings.Contains(l, `"ph":"C"`) || !strings.Contains(l, "core/proxy0/queue_depth") {
			t.Fatalf("malformed counter event: %s", l)
		}
	}
}

func TestTimelineLabelsRunsInCreationOrder(t *testing.T) {
	tl := NewTimeline(Config{})
	a := tl.NewRecorder("")
	b := tl.NewRecorder("custom")
	c := tl.NewRecorder("")
	if a.Label() != "run0" || b.Label() != "custom" || c.Label() != "run2" {
		t.Fatalf("labels = %q,%q,%q", a.Label(), b.Label(), c.Label())
	}
	if got := len(tl.Recorders()); got != 3 {
		t.Fatalf("timeline tracks %d recorders, want 3", got)
	}
}

// TestSamplingHotPathDoesNotAllocate is the allocation-budget guard: once a
// recorder's series exist, closing buckets (the per-tick hot path) must not
// allocate — the tick hook runs inside the kernel's event loop.
func TestSamplingHotPathDoesNotAllocate(t *testing.T) {
	k := sim.NewKernel()
	reg := metrics.NewRegistry()
	c := reg.Counter("fabric", "port0", "msgs_tx")
	g := reg.Gauge("core", "proxy0", "queue_depth")
	h := reg.Histogram("core", "proxy0", "wait_ns")
	r := NewRecorder("", testConfig(64))
	r.Start(k, reg)
	// Warm: create every series and close a few buckets.
	c.Add(1)
	g.Set(1)
	h.Observe(10)
	r.onTick(500)
	allocs := testing.AllocsPerRun(100, func() {
		c.Add(1)
		g.Set(2)
		h.Observe(20)
		r.next = 100 // rewind the grid so each run closes buckets again
		r.onTick(500)
	})
	if allocs != 0 {
		t.Fatalf("sampling hot path allocates %.1f allocs/op, want 0", allocs)
	}
}

func TestDeviceLabelsTagPerNodeSeries(t *testing.T) {
	script := func(k *sim.Kernel, reg *metrics.Registry) {
		c := reg.Counter("fabric", "n0.host", "msgs_tx")
		k.At(50, func() { c.Add(2) })
	}

	// Without a device map, exports carry no device dimension.
	plain, _ := run(t, testConfig(64), script)
	var sb strings.Builder
	if err := WriteJSONL(&sb, plain); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(sb.String(), "device") {
		t.Fatalf("unlabelled recorder exported a device dimension:\n%s", sb.String())
	}

	labelled, _ := run(t, testConfig(64), script)
	labelled.SetDeviceLabels(map[string]string{"n0.host": "bf3"})
	sb.Reset()
	if err := WriteJSONL(&sb, labelled); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), `"device":"bf3"`) {
		t.Fatalf("JSONL missing device label:\n%s", sb.String())
	}
	sb.Reset()
	if err := WritePrometheusTS(&sb, labelled); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), `entity="n0.host",device="bf3"`) {
		t.Fatalf("prometheus missing device label:\n%s", sb.String())
	}

	// Entities outside the map (other layers, SLO series) stay untagged.
	if labelled.Device("proxy9") != "" {
		t.Fatal("unmapped entity reported a device")
	}
	// Nil-safe paths.
	var nilRec *Recorder
	nilRec.SetDeviceLabels(map[string]string{"x": "y"})
	if nilRec.Device("x") != "" {
		t.Fatal("nil recorder reported a device")
	}
}
