// Package trace records per-entity event timelines from a simulation run —
// the machine-readable version of the paper's Figure 1, which contrasts how
// the host CPU, the HCA and the DPU proxies progress a dependent
// communication pattern under the three designs.
//
// A *Log is attached to cluster.Config; all Add methods are nil-safe, so
// tracing costs nothing when disabled. Components record coarse protocol
// events (RTS sent, pair matched, RDMA posted/completed, FIN, group entry
// executed); the Timeline renderer prints them chronologically with one
// column per entity class.
package trace

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"repro/internal/sim"
)

// Event is one recorded occurrence.
type Event struct {
	At     sim.Time
	Entity string // e.g. "rank2", "proxy1", "hca0"
	Action string // e.g. "RTS", "match", "write-post", "write-done", "FIN"
	Detail string
}

// Log collects events. The zero value is unusable; use New. A nil *Log is
// valid and discards everything.
//
// When a limit is set the log is a ring buffer: once full, each new event
// evicts the oldest one, so long runs keep the most recent (usually most
// interesting) tail. Dropped reports how many events were evicted.
type Log struct {
	events  []Event
	limit   int
	start   int   // ring head: index of the oldest event when full
	dropped int64 // events evicted by the ring

	// sorted memoizes the unrolled, chronologically sorted view for
	// Events/Filter/Timeline; Add invalidates it. Callers must not mutate
	// the returned slice.
	sorted []Event
}

// New creates a log that keeps at most the limit most recent events
// (0 = unbounded).
func New(limit int) *Log {
	return &Log{limit: limit}
}

// Add records an event; nil-safe. With a limit set, the oldest event is
// evicted once the log is full.
func (l *Log) Add(at sim.Time, entity, action, detail string) {
	if l == nil {
		return
	}
	ev := Event{At: at, Entity: entity, Action: action, Detail: detail}
	l.sorted = nil
	if l.limit > 0 && len(l.events) >= l.limit {
		l.events[l.start] = ev
		l.start = (l.start + 1) % l.limit
		l.dropped++
		return
	}
	l.events = append(l.events, ev)
}

// Reset discards all recorded events but keeps the backing storage, so a
// log reused across benchmark repetitions reaches a steady state where Add
// never allocates; nil-safe.
func (l *Log) Reset() {
	if l == nil {
		return
	}
	l.events = l.events[:0]
	l.start = 0
	l.dropped = 0
	l.sorted = nil
}

// Dropped reports how many events were evicted by the ring buffer;
// nil-safe.
func (l *Log) Dropped() int64 {
	if l == nil {
		return 0
	}
	return l.dropped
}

// Enabled reports whether events are being recorded; nil-safe.
func (l *Log) Enabled() bool { return l != nil }

// Events returns the recorded events in chronological order (stable for
// equal timestamps, in insertion order). The view is memoized until the
// next Add, so repeated Events/Filter/Timeline calls do not re-sort the
// ring; the caller must not mutate the returned slice.
func (l *Log) Events() []Event {
	if l == nil {
		return nil
	}
	if l.sorted != nil || len(l.events) == 0 {
		return l.sorted
	}
	// Unroll the ring so the stable sort preserves insertion order.
	out := make([]Event, 0, len(l.events))
	out = append(out, l.events[l.start:]...)
	out = append(out, l.events[:l.start]...)
	sort.SliceStable(out, func(i, j int) bool { return out[i].At < out[j].At })
	l.sorted = out
	return out
}

// Len reports the number of recorded events; nil-safe.
func (l *Log) Len() int {
	if l == nil {
		return 0
	}
	return len(l.events)
}

// Filter returns events whose entity has the given prefix.
func (l *Log) Filter(entityPrefix string) []Event {
	var out []Event
	for _, e := range l.Events() {
		if strings.HasPrefix(e.Entity, entityPrefix) {
			out = append(out, e)
		}
	}
	return out
}

// Timeline renders the log as an aligned chronological listing:
//
//	12.50us  rank0   send-offload   dst=1 64K tag=4
//	13.20us  proxy0  RTS            from rank0
//
// It returns the first write error encountered (writes stop there), so
// callers streaming to files or pipes see short writes instead of silently
// truncated timelines.
func (l *Log) Timeline(w io.Writer) error {
	events := l.Events()
	entW, actW := 6, 6
	for _, e := range events {
		if len(e.Entity) > entW {
			entW = len(e.Entity)
		}
		if len(e.Action) > actW {
			actW = len(e.Action)
		}
	}
	for _, e := range events {
		if _, err := fmt.Fprintf(w, "%12s  %-*s  %-*s  %s\n", e.At, entW, e.Entity, actW, e.Action, e.Detail); err != nil {
			return err
		}
	}
	return nil
}
