package trace

import (
	"strings"
	"testing"

	"repro/internal/sim"
)

func TestNilLogIsSafe(t *testing.T) {
	var l *Log
	l.Add(1, "x", "y", "z")
	if l.Enabled() || l.Len() != 0 || l.Events() != nil {
		t.Fatal("nil log misbehaves")
	}
}

func TestAddAndOrdering(t *testing.T) {
	l := New(0)
	l.Add(30, "b", "act", "")
	l.Add(10, "a", "act", "")
	l.Add(30, "a", "first-at-30", "") // same time: stable order
	ev := l.Events()
	if len(ev) != 3 || ev[0].At != 10 || ev[1].Entity != "b" || ev[2].Action != "first-at-30" {
		t.Fatalf("ordering wrong: %+v", ev)
	}
}

func TestLimitCaps(t *testing.T) {
	l := New(2)
	for i := 0; i < 5; i++ {
		l.Add(sim.Time(i), "e", "a", "")
	}
	if l.Len() != 2 {
		t.Fatalf("Len = %d, want 2", l.Len())
	}
}

func TestFilterAndTimeline(t *testing.T) {
	l := New(0)
	l.Add(1, "rank0", "Send_Offload", "dst=1")
	l.Add(2, "proxy0", "rts", "")
	l.Add(3, "rank1", "FIN", "req=1")
	if got := l.Filter("rank"); len(got) != 2 {
		t.Fatalf("Filter = %d events", len(got))
	}
	var sb strings.Builder
	l.Timeline(&sb)
	out := sb.String()
	for _, want := range []string{"rank0", "Send_Offload", "proxy0", "FIN"} {
		if !strings.Contains(out, want) {
			t.Fatalf("timeline missing %q:\n%s", want, out)
		}
	}
}

// Regression: Events memoizes the sorted view until the next Add, so
// repeated Filter/Timeline calls do not re-unroll and re-sort the ring.
func TestEventsMemoized(t *testing.T) {
	l := New(3)
	for i := 5; i > 0; i-- {
		l.Add(sim.Time(i), "e", "a", "")
	}
	a := l.Events()
	b := l.Events()
	if len(a) != 3 || len(b) != 3 {
		t.Fatalf("lens %d/%d, want 3 (ring limit)", len(a), len(b))
	}
	if &a[0] != &b[0] {
		t.Fatal("Events re-built the view without an intervening Add")
	}
	for i := 1; i < len(a); i++ {
		if a[i].At < a[i-1].At {
			t.Fatalf("cached view unsorted at %d", i)
		}
	}
	// Add invalidates: the new event must appear, correctly placed.
	l.Add(0, "e", "new", "")
	c := l.Events()
	if len(c) != 3 || c[0].Action != "new" {
		t.Fatalf("view stale after Add: %+v", c)
	}
	if got := l.Filter("e"); len(got) != 3 {
		t.Fatalf("Filter on cached view = %d events", len(got))
	}
}

// The fix: repeated reads of a full ring are O(1) per call instead of
// O(n log n). Compare BenchmarkEventsRepeated with and without the memo by
// reverting trace.go's sorted field.
func BenchmarkEventsRepeated(b *testing.B) {
	l := New(4096)
	for i := 0; i < 8192; i++ {
		l.Add(sim.Time(8192-i), "entity", "action", "detail")
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if len(l.Events()) != 4096 {
			b.Fatal("bad length")
		}
	}
}
