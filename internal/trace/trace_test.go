package trace

import (
	"strings"
	"testing"

	"repro/internal/sim"
)

func TestNilLogIsSafe(t *testing.T) {
	var l *Log
	l.Add(1, "x", "y", "z")
	if l.Enabled() || l.Len() != 0 || l.Events() != nil {
		t.Fatal("nil log misbehaves")
	}
}

func TestAddAndOrdering(t *testing.T) {
	l := New(0)
	l.Add(30, "b", "act", "")
	l.Add(10, "a", "act", "")
	l.Add(30, "a", "first-at-30", "") // same time: stable order
	ev := l.Events()
	if len(ev) != 3 || ev[0].At != 10 || ev[1].Entity != "b" || ev[2].Action != "first-at-30" {
		t.Fatalf("ordering wrong: %+v", ev)
	}
}

func TestLimitCaps(t *testing.T) {
	l := New(2)
	for i := 0; i < 5; i++ {
		l.Add(sim.Time(i), "e", "a", "")
	}
	if l.Len() != 2 {
		t.Fatalf("Len = %d, want 2", l.Len())
	}
}

func TestFilterAndTimeline(t *testing.T) {
	l := New(0)
	l.Add(1, "rank0", "Send_Offload", "dst=1")
	l.Add(2, "proxy0", "rts", "")
	l.Add(3, "rank1", "FIN", "req=1")
	if got := l.Filter("rank"); len(got) != 2 {
		t.Fatalf("Filter = %d events", len(got))
	}
	var sb strings.Builder
	if err := l.Timeline(&sb); err != nil {
		t.Fatalf("Timeline: %v", err)
	}
	out := sb.String()
	for _, want := range []string{"rank0", "Send_Offload", "proxy0", "FIN"} {
		if !strings.Contains(out, want) {
			t.Fatalf("timeline missing %q:\n%s", want, out)
		}
	}
}

// Regression: Events memoizes the sorted view until the next Add, so
// repeated Filter/Timeline calls do not re-unroll and re-sort the ring.
func TestEventsMemoized(t *testing.T) {
	l := New(3)
	for i := 5; i > 0; i-- {
		l.Add(sim.Time(i), "e", "a", "")
	}
	a := l.Events()
	b := l.Events()
	if len(a) != 3 || len(b) != 3 {
		t.Fatalf("lens %d/%d, want 3 (ring limit)", len(a), len(b))
	}
	if &a[0] != &b[0] {
		t.Fatal("Events re-built the view without an intervening Add")
	}
	for i := 1; i < len(a); i++ {
		if a[i].At < a[i-1].At {
			t.Fatalf("cached view unsorted at %d", i)
		}
	}
	// Add invalidates: the new event must appear, correctly placed.
	l.Add(0, "e", "new", "")
	c := l.Events()
	if len(c) != 3 || c[0].Action != "new" {
		t.Fatalf("view stale after Add: %+v", c)
	}
	if got := l.Filter("e"); len(got) != 3 {
		t.Fatalf("Filter on cached view = %d events", len(got))
	}
}

// Dropped at exact-limit boundaries: filling a ring to precisely its limit
// evicts nothing; the very next Add evicts exactly one.
func TestDroppedExactLimitBoundary(t *testing.T) {
	l := New(3)
	for i := 0; i < 3; i++ {
		l.Add(sim.Time(i), "e", "a", "")
	}
	if l.Dropped() != 0 || l.Len() != 3 {
		t.Fatalf("at limit: Dropped=%d Len=%d, want 0/3", l.Dropped(), l.Len())
	}
	l.Add(3, "e", "a", "")
	if l.Dropped() != 1 || l.Len() != 3 {
		t.Fatalf("one past limit: Dropped=%d Len=%d, want 1/3", l.Dropped(), l.Len())
	}
	l.Add(4, "e", "a", "")
	if l.Dropped() != 2 {
		t.Fatalf("two past limit: Dropped=%d, want 2", l.Dropped())
	}
	// Unbounded and limit-1 edge cases.
	u := New(0)
	for i := 0; i < 100; i++ {
		u.Add(sim.Time(i), "e", "a", "")
	}
	if u.Dropped() != 0 || u.Len() != 100 {
		t.Fatalf("unbounded: Dropped=%d Len=%d", u.Dropped(), u.Len())
	}
	one := New(1)
	one.Add(1, "e", "first", "")
	one.Add(2, "e", "second", "")
	if one.Dropped() != 1 || one.Len() != 1 || one.Events()[0].Action != "second" {
		t.Fatalf("limit-1 ring: Dropped=%d Len=%d ev=%+v", one.Dropped(), one.Len(), one.Events())
	}
}

// Ring wraparound: after eviction the sorted view contains exactly the
// surviving tail, correctly ordered even though the backing array's ring
// head has rotated — and an Add after a read rebuilds, never mutating the
// previously returned slice.
func TestRingWraparoundView(t *testing.T) {
	l := New(4)
	// Insert out of order so sorting does real work: 8,7,...,1.
	for i := 8; i >= 1; i-- {
		l.Add(sim.Time(i), "e", "a", "")
	}
	ev := l.Events()
	if len(ev) != 4 {
		t.Fatalf("len = %d, want 4", len(ev))
	}
	// Survivors are the last four inserts: times 4,3,2,1 -> sorted 1..4.
	for i, want := range []sim.Time{1, 2, 3, 4} {
		if ev[i].At != want {
			t.Fatalf("ev[%d].At = %d, want %d (view %+v)", i, ev[i].At, want, ev)
		}
	}
	// Snapshot the old view, Add once more, and re-read: the ring evicts by
	// insertion order, so the oldest surviving insert (time 4) goes; the old
	// slice must be untouched and the new view must reflect the eviction.
	old := make([]Event, len(ev))
	copy(old, ev)
	l.Add(9, "e", "late", "")
	ev2 := l.Events()
	for i := range old {
		if ev[i] != old[i] {
			t.Fatalf("Add mutated previously returned view at %d", i)
		}
	}
	want2 := []sim.Time{1, 2, 3, 9}
	for i, want := range want2 {
		if ev2[i].At != want {
			t.Fatalf("post-evict ev[%d].At = %d, want %d", i, ev2[i].At, want)
		}
	}
	if l.Dropped() != 5 {
		t.Fatalf("Dropped = %d, want 5", l.Dropped())
	}
}

// failWriter errors after n successful writes.
type failWriter struct{ n int }

func (f *failWriter) Write(p []byte) (int, error) {
	if f.n <= 0 {
		return 0, errShort
	}
	f.n--
	return len(p), nil
}

var errShort = &shortErr{}

type shortErr struct{}

func (*shortErr) Error() string { return "short write" }

// Timeline propagates the first write error instead of silently truncating.
func TestTimelineWriteError(t *testing.T) {
	l := New(0)
	l.Add(1, "rank0", "a", "")
	l.Add(2, "rank1", "b", "")
	if err := l.Timeline(&failWriter{n: 1}); err != errShort {
		t.Fatalf("Timeline error = %v, want %v", err, errShort)
	}
	if err := l.Timeline(&strings.Builder{}); err != nil {
		t.Fatalf("Timeline on good writer: %v", err)
	}
}

// The fix: repeated reads of a full ring are O(1) per call instead of
// O(n log n). Compare BenchmarkEventsRepeated with and without the memo by
// reverting trace.go's sorted field.
func BenchmarkEventsRepeated(b *testing.B) {
	l := New(4096)
	for i := 0; i < 8192; i++ {
		l.Add(sim.Time(8192-i), "entity", "action", "detail")
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if len(l.Events()) != 4096 {
			b.Fatal("bad length")
		}
	}
}
