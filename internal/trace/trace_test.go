package trace

import (
	"strings"
	"testing"

	"repro/internal/sim"
)

func TestNilLogIsSafe(t *testing.T) {
	var l *Log
	l.Add(1, "x", "y", "z")
	if l.Enabled() || l.Len() != 0 || l.Events() != nil {
		t.Fatal("nil log misbehaves")
	}
}

func TestAddAndOrdering(t *testing.T) {
	l := New(0)
	l.Add(30, "b", "act", "")
	l.Add(10, "a", "act", "")
	l.Add(30, "a", "first-at-30", "") // same time: stable order
	ev := l.Events()
	if len(ev) != 3 || ev[0].At != 10 || ev[1].Entity != "b" || ev[2].Action != "first-at-30" {
		t.Fatalf("ordering wrong: %+v", ev)
	}
}

func TestLimitCaps(t *testing.T) {
	l := New(2)
	for i := 0; i < 5; i++ {
		l.Add(sim.Time(i), "e", "a", "")
	}
	if l.Len() != 2 {
		t.Fatalf("Len = %d, want 2", l.Len())
	}
}

func TestFilterAndTimeline(t *testing.T) {
	l := New(0)
	l.Add(1, "rank0", "Send_Offload", "dst=1")
	l.Add(2, "proxy0", "rts", "")
	l.Add(3, "rank1", "FIN", "req=1")
	if got := l.Filter("rank"); len(got) != 2 {
		t.Fatalf("Filter = %d events", len(got))
	}
	var sb strings.Builder
	l.Timeline(&sb)
	out := sb.String()
	for _, want := range []string{"rank0", "Send_Offload", "proxy0", "FIN"} {
		if !strings.Contains(out, want) {
			t.Fatalf("timeline missing %q:\n%s", want, out)
		}
	}
}
