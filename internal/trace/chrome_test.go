package trace

import (
	"bytes"
	"encoding/json"
	"fmt"
	"testing"

	"repro/internal/sim"
)

func TestUnboundedLogDropsNothing(t *testing.T) {
	l := New(0)
	for i := 0; i < 1000; i++ {
		l.Add(sim.Time(i), "rank0", "op", "")
	}
	if l.Len() != 1000 || l.Dropped() != 0 {
		t.Fatalf("len=%d dropped=%d", l.Len(), l.Dropped())
	}
}

func TestRingEvictsOldest(t *testing.T) {
	l := New(4)
	for i := 0; i < 10; i++ {
		l.Add(sim.Time(i), "e", fmt.Sprintf("op%d", i), "")
	}
	if l.Len() != 4 {
		t.Fatalf("Len = %d, want 4", l.Len())
	}
	if l.Dropped() != 6 {
		t.Fatalf("Dropped = %d, want 6", l.Dropped())
	}
	evs := l.Events()
	if len(evs) != 4 {
		t.Fatalf("Events len = %d", len(evs))
	}
	for i, ev := range evs {
		if want := fmt.Sprintf("op%d", i+6); ev.Action != want {
			t.Fatalf("event %d = %q, want %q (oldest evicted, order kept)", i, ev.Action, want)
		}
	}
	if (&Log{}).Dropped() != 0 {
		t.Fatal("fresh log reports drops")
	}
}

func TestRingKeepsInsertionOrderForEqualTimes(t *testing.T) {
	l := New(3)
	for i := 0; i < 7; i++ {
		l.Add(5, "e", fmt.Sprintf("op%d", i), "") // all at the same instant
	}
	want := []string{"op4", "op5", "op6"}
	for i, ev := range l.Events() {
		if ev.Action != want[i] {
			t.Fatalf("event %d = %q, want %q", i, ev.Action, want[i])
		}
	}
}

// The Chrome export must be valid JSON with the documented shape: a
// traceEvents array holding one "M" thread_name record per entity plus one
// "i" instant per event, timestamped in microseconds.
func TestWriteChromeTraceShape(t *testing.T) {
	l := New(0)
	l.Add(1500, "rank0", "send-offload", "dst=1")
	l.Add(2500, "proxy0", "RTS", "")
	l.Add(3500, "rank0", "FIN", "req=1")

	var buf bytes.Buffer
	if err := l.WriteChromeTrace(&buf); err != nil {
		t.Fatalf("WriteChromeTrace: %v", err)
	}
	var doc struct {
		TraceEvents []struct {
			Name  string            `json:"name"`
			Phase string            `json:"ph"`
			TS    float64           `json:"ts"`
			PID   int               `json:"pid"`
			TID   int               `json:"tid"`
			Args  map[string]string `json:"args"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, buf.String())
	}
	if doc.DisplayTimeUnit != "ms" {
		t.Fatalf("displayTimeUnit = %q", doc.DisplayTimeUnit)
	}
	var meta, inst int
	tidByName := map[string]int{}
	for _, e := range doc.TraceEvents {
		switch e.Phase {
		case "M":
			meta++
			if e.Name != "thread_name" || e.Args["name"] == "" {
				t.Fatalf("bad metadata event: %+v", e)
			}
			tidByName[e.Args["name"]] = e.TID
		case "i":
			inst++
		default:
			t.Fatalf("unexpected phase %q", e.Phase)
		}
	}
	if meta != 2 {
		t.Fatalf("want 2 thread_name records (rank0, proxy0), got %d", meta)
	}
	if inst != 3 {
		t.Fatalf("want 3 instants, got %d", inst)
	}
	// Instants reference their entity's tid and convert ns -> us.
	for _, e := range doc.TraceEvents {
		if e.Phase != "i" {
			continue
		}
		switch e.Name {
		case "send-offload":
			if e.TS != 1.5 || e.TID != tidByName["rank0"] {
				t.Fatalf("send-offload ts=%v tid=%d", e.TS, e.TID)
			}
			if e.Args["detail"] != "dst=1" {
				t.Fatalf("detail = %q", e.Args["detail"])
			}
		case "RTS":
			if e.TS != 2.5 || e.TID != tidByName["proxy0"] {
				t.Fatalf("RTS ts=%v tid=%d", e.TS, e.TID)
			}
		}
	}
}

// Nil and empty logs still produce a parseable document with an empty — not
// null — traceEvents array.
func TestWriteChromeTraceEmpty(t *testing.T) {
	for _, l := range []*Log{nil, New(0)} {
		var buf bytes.Buffer
		if err := l.WriteChromeTrace(&buf); err != nil {
			t.Fatalf("WriteChromeTrace: %v", err)
		}
		var doc map[string]any
		if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
			t.Fatalf("invalid JSON: %v", err)
		}
		if arr, ok := doc["traceEvents"].([]any); !ok || arr == nil {
			t.Fatalf("traceEvents not an array: %v", doc["traceEvents"])
		}
	}
}
