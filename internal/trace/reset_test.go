package trace

import (
	"testing"

	"repro/internal/sim"
)

// Reset empties the log but keeps the backing array, so refills up to the
// previous high-water mark append into existing storage.
func TestResetReusesStorage(t *testing.T) {
	l := New(0)
	for i := 0; i < 64; i++ {
		l.Add(sim.Time(i), "rank0", "act", "")
	}
	l.Reset()
	if l.Len() != 0 || l.Dropped() != 0 || len(l.Events()) != 0 {
		t.Fatalf("Reset left state behind: len=%d dropped=%d", l.Len(), l.Dropped())
	}
	allocs := testing.AllocsPerRun(50, func() {
		l.Reset()
		for i := 0; i < 64; i++ {
			l.Add(sim.Time(i), "rank0", "act", "")
		}
	})
	if allocs > 0 {
		t.Fatalf("refill after Reset allocated %.1f objects per run, want 0", allocs)
	}
	// Reset on a nil log is a no-op.
	var nilLog *Log
	nilLog.Reset()
}

// Reset on a wrapped ring rewinds the head: the next Add lands at slot 0,
// not mid-ring, and eviction accounting starts over.
func TestResetRewindsRing(t *testing.T) {
	l := New(4)
	for i := 0; i < 10; i++ {
		l.Add(sim.Time(i), "e", "a", "")
	}
	if l.Dropped() != 6 {
		t.Fatalf("precondition: dropped = %d, want 6", l.Dropped())
	}
	l.Reset()
	for i := 0; i < 4; i++ {
		l.Add(sim.Time(100+i), "e", "a", "")
	}
	ev := l.Events()
	if len(ev) != 4 || l.Dropped() != 0 {
		t.Fatalf("post-reset ring: %d events, %d dropped", len(ev), l.Dropped())
	}
	for i, e := range ev {
		if e.At != sim.Time(100+i) {
			t.Fatalf("events[%d].At = %v, want %v", i, e.At, sim.Time(100+i))
		}
	}
}

// Once the ring is full, Add evicts in place: the steady state allocates
// nothing no matter how many events stream through.
func TestRingSteadyStateAllocFree(t *testing.T) {
	l := New(128)
	for i := 0; i < 128; i++ {
		l.Add(sim.Time(i), "rank0", "act", "detail")
	}
	allocs := testing.AllocsPerRun(100, func() {
		for i := 0; i < 32; i++ {
			l.Add(sim.Time(i), "rank0", "act", "detail")
		}
	})
	if allocs > 0 {
		t.Fatalf("full-ring Add allocated %.1f objects per run, want 0", allocs)
	}
}
