package trace

import (
	"encoding/json"
	"io"
)

// chromeEvent is one entry of the Chrome Trace Event Format
// (chrome://tracing, also readable by Perfetto). Instant events ("ph":"i")
// carry a microsecond timestamp; metadata events name the per-entity
// threads.
type chromeEvent struct {
	Name  string            `json:"name"`
	Phase string            `json:"ph"`
	TS    float64           `json:"ts"`
	PID   int               `json:"pid"`
	TID   int               `json:"tid"`
	Scope string            `json:"s,omitempty"`
	Cat   string            `json:"cat,omitempty"`
	Args  map[string]string `json:"args,omitempty"`
}

type chromeTrace struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// WriteChromeTrace renders the log in the Chrome trace-event JSON format so
// fault/recovery timelines can be inspected in chrome://tracing or
// Perfetto: one thread per entity (rank/proxy/fabric), one instant event
// per recorded occurrence. Nil-safe: a nil log writes an empty trace.
func (l *Log) WriteChromeTrace(w io.Writer) error {
	events := l.Events()
	ct := chromeTrace{TraceEvents: []chromeEvent{}, DisplayTimeUnit: "ms"}

	// Assign a stable thread id per entity in order of first appearance.
	tids := make(map[string]int)
	for _, e := range events {
		if _, ok := tids[e.Entity]; !ok {
			tid := len(tids)
			tids[e.Entity] = tid
			ct.TraceEvents = append(ct.TraceEvents, chromeEvent{
				Name:  "thread_name",
				Phase: "M",
				PID:   0,
				TID:   tid,
				Args:  map[string]string{"name": e.Entity},
			})
		}
	}
	for _, e := range events {
		ev := chromeEvent{
			Name:  e.Action,
			Phase: "i",
			TS:    float64(e.At) / 1e3, // sim.Time is ns; Chrome wants us
			PID:   0,
			TID:   tids[e.Entity],
			Scope: "t",
			Cat:   "sim",
		}
		if e.Detail != "" {
			ev.Args = map[string]string{"detail": e.Detail}
		}
		ct.TraceEvents = append(ct.TraceEvents, ev)
	}
	enc := json.NewEncoder(w)
	return enc.Encode(ct)
}
