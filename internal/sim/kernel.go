package sim

import (
	"errors"
	"fmt"
)

// event is one arena slot: a scheduled callback, a timed callback, or a
// parked process waiting to be dispatched. Exactly one of fn/fnT/p is set.
// Events with equal timestamps fire in scheduling order (seq), which makes
// runs deterministic.
//
// Events live in the kernel's arena (a value slice indexed by evIdx) and are
// recycled through a free list, so steady-state scheduling allocates
// nothing: no per-event heap object and no interface{} boxing, unlike the
// container/heap implementation this replaced.
type event struct {
	at  Time
	seq uint64
	fn  func()     // plain callback (handler context)
	fnT func(Time) // timed callback; receives the firing time
	p   *Proc      // parked process to dispatch
}

// evIdx indexes the event arena. int32 keeps the heap slice compact; two
// billion simultaneously-pending events is far beyond any plausible run.
type evIdx = int32

// heapArity is the fan-out of the event min-heap. A 4-ary heap does the same
// number of comparisons per level as binary on sift-down but halves the tree
// depth, which wins on the pop-heavy DES workload (every event is popped
// exactly once).
const heapArity = 4

// Kernel is the discrete-event simulation engine. Create one with NewKernel,
// spawn processes with Spawn, schedule raw callbacks with At, then call Run.
type Kernel struct {
	now Time
	seq uint64

	arena []event // event storage; slots are recycled via freeList
	freeL []evIdx // free slots in arena
	heap  []evIdx // min-heap of pending events ordered by (at, seq)

	procs   []*Proc
	live    int   // spawned but not finished
	running *Proc // process currently executing, nil in handler context
	yield   chan struct{}

	// tick, when set, fires whenever the clock reaches tickAt: it runs
	// after the clock advances but before the event at that timestamp is
	// dispatched, and returns the next time it wants to fire. It is a pure
	// observer — it must not schedule events or consume virtual time — and
	// exists so samplers (the telemetry recorder) can close fixed-width
	// virtual-time buckets without injecting events into the heap, which
	// would perturb seq numbering and break bit-identical timings.
	tick   func(Time) Time
	tickAt Time

	// Deadlocked is filled by Run when it returns with processes still
	// blocked and no events pending.
	Deadlocked []*Proc
}

// NewKernel returns an empty kernel with the clock at zero.
func NewKernel() *Kernel {
	return &Kernel{yield: make(chan struct{})}
}

// Clock is the read-only view of a virtual clock. Kernel satisfies it;
// observability layers (metrics, spans) depend on Clock rather than the
// full Kernel so they can read timestamps without being able to schedule
// work — reading a Clock can never perturb the simulation.
type Clock interface {
	Now() Time
}

// Now returns the current virtual time.
func (k *Kernel) Now() Time { return k.now }

// At schedules fn to run at now+delay in kernel (handler) context.
// A negative delay is treated as zero.
func (k *Kernel) At(delay Time, fn func()) {
	if delay < 0 {
		delay = 0
	}
	k.schedule(k.now+delay, fn)
}

// AtCall schedules fn to run at now+delay in handler context, passing the
// firing time. It exists so completion callbacks with a (Time) parameter can
// be scheduled directly — `k.AtCall(d, op.OnComplete)` — instead of through
// a `func() { op.OnComplete(k.Now()) }` wrapper that allocates a closure per
// operation. A negative delay is treated as zero.
func (k *Kernel) AtCall(delay Time, fn func(Time)) {
	if delay < 0 {
		delay = 0
	}
	i := k.slot()
	ev := &k.arena[i]
	k.seq++
	ev.at, ev.seq, ev.fnT = k.now+delay, k.seq, fn
	k.push(i)
}

func (k *Kernel) schedule(at Time, fn func()) {
	i := k.slot()
	ev := &k.arena[i]
	k.seq++
	ev.at, ev.seq, ev.fn = at, k.seq, fn
	k.push(i)
}

// scheduleProc schedules a direct dispatch of p at the given time. This is
// the allocation-free fast path for Sleep and condition wakeups: the event
// carries the process pointer itself, so no per-wakeup closure is created.
func (k *Kernel) scheduleProc(at Time, p *Proc) {
	i := k.slot()
	ev := &k.arena[i]
	k.seq++
	ev.at, ev.seq, ev.p = at, k.seq, p
	k.push(i)
}

// slot returns a free arena index, growing the arena only when the free
// list is empty (steady state reuses slots and allocates nothing).
func (k *Kernel) slot() evIdx {
	if n := len(k.freeL); n > 0 {
		i := k.freeL[n-1]
		k.freeL = k.freeL[:n-1]
		return i
	}
	k.arena = append(k.arena, event{})
	return evIdx(len(k.arena) - 1)
}

// less orders heap entries by (at, seq).
func (k *Kernel) less(a, b evIdx) bool {
	ea, eb := &k.arena[a], &k.arena[b]
	if ea.at != eb.at {
		return ea.at < eb.at
	}
	return ea.seq < eb.seq
}

// push appends an event index and restores the heap invariant.
func (k *Kernel) push(i evIdx) {
	k.heap = append(k.heap, i)
	h := k.heap
	c := len(h) - 1
	for c > 0 {
		parent := (c - 1) / heapArity
		if !k.less(h[c], h[parent]) {
			break
		}
		h[c], h[parent] = h[parent], h[c]
		c = parent
	}
}

// pop removes and returns the earliest event index, panicking on the
// corruption that both run loops must catch: an event scheduled in the past.
func (k *Kernel) pop() evIdx {
	h := k.heap
	top := h[0]
	if k.arena[top].at < k.now {
		panic(fmt.Sprintf("sim: event scheduled in the past: %v < %v", k.arena[top].at, k.now))
	}
	n := len(h) - 1
	h[0] = h[n]
	k.heap = h[:n]
	h = k.heap
	// Sift down.
	i := 0
	for {
		first := heapArity*i + 1
		if first >= n {
			break
		}
		best := first
		last := first + heapArity
		if last > n {
			last = n
		}
		for c := first + 1; c < last; c++ {
			if k.less(h[c], h[best]) {
				best = c
			}
		}
		if !k.less(h[best], h[i]) {
			break
		}
		h[i], h[best] = h[best], h[i]
		i = best
	}
	return top
}

// step pops and fires the earliest event. The arena slot is released before
// the callback runs, so events scheduled from inside the callback can reuse
// it; the fields needed are copied out first.
func (k *Kernel) step() {
	i := k.pop()
	ev := &k.arena[i]
	at, fn, fnT, p := ev.at, ev.fn, ev.fnT, ev.p
	ev.fn, ev.fnT, ev.p = nil, nil, nil
	k.freeL = append(k.freeL, i)
	k.now = at
	for k.tick != nil && at >= k.tickAt {
		k.tickAt = k.tick(at)
	}
	switch {
	case p != nil:
		k.dispatch(p)
	case fnT != nil:
		fnT(at)
	default:
		fn()
	}
}

// Spawn creates a new simulated process that will begin executing fn at the
// current virtual time. fn runs in its own goroutine but only while the
// kernel has handed it control.
func (k *Kernel) Spawn(name string, fn func(*Proc)) *Proc {
	p := &Proc{
		k:      k,
		id:     len(k.procs),
		name:   name,
		resume: make(chan struct{}),
	}
	k.procs = append(k.procs, p)
	k.live++
	go func() {
		defer func() {
			if r := recover(); r != nil && r != errShutdown {
				panic(r)
			}
			p.state = procDone
			k.live--
			k.yield <- struct{}{}
		}()
		<-p.resume
		if p.killed {
			return
		}
		fn(p)
	}()
	k.scheduleProc(k.now, p)
	return p
}

// dispatch hands control to p until it blocks or finishes.
func (k *Kernel) dispatch(p *Proc) {
	if p.state == procDone || p.killed {
		return
	}
	p.state = procRunning
	k.running = p
	p.resume <- struct{}{}
	<-k.yield
	k.running = nil
}

// errShutdown is the sentinel Shutdown throws through parked process
// goroutines; the Spawn wrapper recovers it and unwinds cleanly.
var errShutdown = errors.New("sim: kernel shut down")

// Shutdown unwinds every process goroutine that has not finished: parked
// processes are resumed with a kill flag set and unwind via a sentinel panic
// that their Spawn wrapper recovers; spawned-but-never-started processes
// return before running their body. Without it, a kernel abandoned with
// blocked processes (deadlock reports, RunUntil stopping early, daemons
// whose wakeup never came) leaks one parked goroutine per process for the
// life of the OS process — benchmark sweeps build thousands of kernels, so
// bench/test helpers call Shutdown on every kernel they retire.
//
// Shutdown must be called from outside the kernel (not from a process or
// handler); the kernel is unusable for further Spawn/Run calls afterwards.
func (k *Kernel) Shutdown() {
	if k.running != nil {
		panic("sim: Shutdown called from inside the simulation")
	}
	for _, p := range k.procs {
		if p.state == procDone {
			continue
		}
		p.killed = true
		p.resume <- struct{}{}
		<-k.yield
	}
}

// collectDeadlocked records non-daemon processes that are blocked with no
// pending event left to wake them.
func (k *Kernel) collectDeadlocked() {
	if k.live == 0 {
		return
	}
	for _, p := range k.procs {
		if p.state == procBlocked && !p.daemon {
			k.Deadlocked = append(k.Deadlocked, p)
		}
	}
}

// Run executes events until the queue is empty or until all processes have
// finished. It returns the final virtual time. If processes remain blocked
// with no pending events, they are reported in k.Deadlocked.
func (k *Kernel) Run() Time {
	k.Deadlocked = nil
	for len(k.heap) > 0 {
		k.step()
	}
	k.collectDeadlocked()
	return k.now
}

// RunUntil executes events with timestamps <= deadline, then stops. Pending
// events beyond the deadline remain queued; the clock is advanced to the
// deadline. It returns the number of events fired. Like Run, it panics on
// events scheduled in the past, and populates k.Deadlocked when it drains
// the whole queue (not merely reaches the deadline) with blocked non-daemon
// processes remaining.
func (k *Kernel) RunUntil(deadline Time) int {
	k.Deadlocked = nil
	fired := 0
	for len(k.heap) > 0 && k.arena[k.heap[0]].at <= deadline {
		k.step()
		fired++
	}
	if k.now < deadline {
		k.now = deadline
		for k.tick != nil && k.now >= k.tickAt {
			k.tickAt = k.tick(k.now)
		}
	}
	if len(k.heap) == 0 {
		k.collectDeadlocked()
	}
	return fired
}

// SetTick installs the kernel's sampling hook: fn fires the first time the
// clock reaches `first` (before the event at that timestamp is dispatched)
// and returns the next firing time. The hook observes — it must not
// schedule work — so installing it cannot move any simulated timestamp.
// When the clock jumps across several firing times in one step, fn is
// invoked repeatedly within that step until its returned time is in the
// future, so fixed-width samplers see every bucket boundary exactly once;
// fn must therefore advance its returned time on every call. A nil fn
// uninstalls the hook.
func (k *Kernel) SetTick(first Time, fn func(Time) Time) {
	k.tick, k.tickAt = fn, first
}

// Pending reports the number of queued events.
func (k *Kernel) Pending() int { return len(k.heap) }

// Live reports the number of spawned processes that have not finished.
func (k *Kernel) Live() int { return k.live }

// Procs returns all processes ever spawned on this kernel.
func (k *Kernel) Procs() []*Proc { return k.procs }
