package sim

import (
	"errors"
	"fmt"
)

// Action is a pre-allocated deliverable: an object whose Fire method runs
// when its scheduled time arrives. It exists for the per-message hot paths
// (fabric deliveries, verbs completion flights) that would otherwise build a
// fresh closure per operation — a pooled struct implementing Action can be
// scheduled with AtAction and recycled by its own Fire, so steady-state
// message traffic allocates nothing.
type Action interface {
	Fire(at Time)
}

// event is one arena slot: a scheduled callback, a timed callback, a parked
// process waiting to be dispatched, or a pooled Action. Exactly one of
// fn/fnT/p/act is set. Events with equal timestamps fire in scheduling order
// (seq), which makes runs deterministic.
//
// Events live in the kernel's arena (a value slice indexed by evIdx) and are
// recycled through a free list, so steady-state scheduling allocates
// nothing: no per-event heap object and no interface{} boxing, unlike the
// container/heap implementation this replaced.
//
// shard is a placement hint for the sharded run mode (see ConfigureShards):
// it selects which per-shard heap queues the event. It is never a
// correctness input — dispatch order is the global (at, seq) order in every
// mode — so a stale or wrong shard tag can only cost parallelism, not
// determinism.
type event struct {
	at    Time
	seq   uint64
	fn    func()     // plain callback (handler context)
	fnT   func(Time) // timed callback; receives the firing time
	p     *Proc      // parked process to dispatch
	act   Action     // pooled deliverable; receives the firing time
	shard int32
}

// evIdx indexes the event arena. int32 keeps the heap slice compact; two
// billion simultaneously-pending events is far beyond any plausible run.
type evIdx = int32

// heapArity is the fan-out of the event min-heap. A 4-ary heap does the same
// number of comparisons per level as binary on sift-down but halves the tree
// depth, which wins on the pop-heavy DES workload (every event is popped
// exactly once).
const heapArity = 4

// Kernel is the discrete-event simulation engine. Create one with NewKernel,
// spawn processes with Spawn, schedule raw callbacks with At, then call Run.
type Kernel struct {
	now Time
	seq uint64

	arena []event // event storage; slots are recycled via freeList
	freeL []evIdx // free slots in arena
	heap  []evIdx // serial mode: min-heap of pending events ordered by (at, seq)

	procs   []*Proc
	live    int   // spawned but not finished
	running *Proc // process currently executing, nil in handler context
	yield   chan struct{}
	dead    bool // set by Shutdown; the kernel accepts no further work

	// Sharded mode (ConfigureShards): per-shard heaps plus the state of the
	// lookahead window currently being dispatched. curShard is the shard tag
	// of the event being fired; events scheduled from inside a handler
	// inherit it, so causally-local chains stay on their shard without every
	// call site passing a tag.
	shards    []shardQ
	lookahead Time
	curShard  int32
	winActive bool
	winEnd    Time
	winOv     []evIdx // overflow heap: events scheduled into the open window
	workers   *shardWorkers

	// tick, when set, fires whenever the clock reaches tickAt: it runs
	// after the clock advances but before the event at that timestamp is
	// dispatched, and returns the next time it wants to fire. It is a pure
	// observer — it must not schedule events or consume virtual time — and
	// exists so samplers (the telemetry recorder) can close fixed-width
	// virtual-time buckets without injecting events into the heap, which
	// would perturb seq numbering and break bit-identical timings.
	tick   func(Time) Time
	tickAt Time

	// Deadlocked is filled by Run when it returns with processes still
	// blocked and no events pending.
	Deadlocked []*Proc
}

// NewKernel returns an empty kernel with the clock at zero.
func NewKernel() *Kernel {
	return &Kernel{yield: make(chan struct{})}
}

// Clock is the read-only view of a virtual clock. Kernel satisfies it;
// observability layers (metrics, spans) depend on Clock rather than the
// full Kernel so they can read timestamps without being able to schedule
// work — reading a Clock can never perturb the simulation.
type Clock interface {
	Now() Time
}

// Now returns the current virtual time.
func (k *Kernel) Now() Time { return k.now }

// At schedules fn to run at now+delay in kernel (handler) context.
// A negative delay is treated as zero.
func (k *Kernel) At(delay Time, fn func()) {
	if delay < 0 {
		delay = 0
	}
	k.schedule(k.now+delay, fn)
}

// AtShard is At with an explicit shard placement hint, for cross-shard
// traffic whose destination the caller knows (the fabric tags deliveries
// with the receiving node's shard). In serial mode the hint is ignored.
func (k *Kernel) AtShard(shard int, delay Time, fn func()) {
	if delay < 0 {
		delay = 0
	}
	i := k.slot()
	ev := &k.arena[i]
	k.seq++
	ev.at, ev.seq, ev.fn, ev.shard = k.now+delay, k.seq, fn, int32(shard)
	k.enqueue(i)
}

// AtCall schedules fn to run at now+delay in handler context, passing the
// firing time. It exists so completion callbacks with a (Time) parameter can
// be scheduled directly — `k.AtCall(d, op.OnComplete)` — instead of through
// a `func() { op.OnComplete(k.Now()) }` wrapper that allocates a closure per
// operation. A negative delay is treated as zero.
func (k *Kernel) AtCall(delay Time, fn func(Time)) {
	if delay < 0 {
		delay = 0
	}
	i := k.slot()
	ev := &k.arena[i]
	k.seq++
	ev.at, ev.seq, ev.fnT, ev.shard = k.now+delay, k.seq, fn, k.curShard
	k.enqueue(i)
}

// AtAction schedules a pooled deliverable at now+delay (see Action). The
// event slot stores the interface value directly, so scheduling a pointer-
// typed Action allocates nothing. A negative delay is treated as zero.
func (k *Kernel) AtAction(delay Time, a Action) {
	if delay < 0 {
		delay = 0
	}
	i := k.slot()
	ev := &k.arena[i]
	k.seq++
	ev.at, ev.seq, ev.act, ev.shard = k.now+delay, k.seq, a, k.curShard
	k.enqueue(i)
}

// AtActionShard is AtAction with an explicit shard placement hint.
func (k *Kernel) AtActionShard(shard int, delay Time, a Action) {
	if delay < 0 {
		delay = 0
	}
	i := k.slot()
	ev := &k.arena[i]
	k.seq++
	ev.at, ev.seq, ev.act, ev.shard = k.now+delay, k.seq, a, int32(shard)
	k.enqueue(i)
}

func (k *Kernel) schedule(at Time, fn func()) {
	i := k.slot()
	ev := &k.arena[i]
	k.seq++
	ev.at, ev.seq, ev.fn, ev.shard = at, k.seq, fn, k.curShard
	k.enqueue(i)
}

// scheduleProc schedules a direct dispatch of p at the given time. This is
// the allocation-free fast path for Sleep and condition wakeups: the event
// carries the process pointer itself, so no per-wakeup closure is created.
// The event is placed on the process's own shard — a wakeup belongs to the
// woken process's timeline, wherever the waker ran.
func (k *Kernel) scheduleProc(at Time, p *Proc) {
	i := k.slot()
	ev := &k.arena[i]
	k.seq++
	ev.at, ev.seq, ev.p, ev.shard = at, k.seq, p, p.shard
	k.enqueue(i)
}

// slot returns a free arena index, growing the arena only when the free
// list is empty (steady state reuses slots and allocates nothing).
func (k *Kernel) slot() evIdx {
	if k.dead {
		panic("sim: schedule on a kernel after Shutdown")
	}
	if n := len(k.freeL); n > 0 {
		i := k.freeL[n-1]
		k.freeL = k.freeL[:n-1]
		return i
	}
	k.arena = append(k.arena, event{})
	return evIdx(len(k.arena) - 1)
}

// enqueue routes a filled arena slot to the pending structure its mode and
// shard call for: the single serial heap, the event's shard heap, or — when
// the event lands inside the lookahead window currently being dispatched —
// the window's overflow heap, which the merge loop drains in (at, seq)
// order alongside the extracted batches.
func (k *Kernel) enqueue(i evIdx) {
	if len(k.shards) == 0 {
		k.heap = k.hpush(k.heap, i)
		return
	}
	ev := &k.arena[i]
	s := ev.shard
	if s < 0 || int(s) >= len(k.shards) {
		s = 0
		ev.shard = 0
	}
	if k.winActive && ev.at < k.winEnd {
		k.winOv = k.hpush(k.winOv, i)
		return
	}
	sq := &k.shards[s]
	sq.heap = k.hpush(sq.heap, i)
}

// less orders heap entries by (at, seq).
func (k *Kernel) less(a, b evIdx) bool {
	ea, eb := &k.arena[a], &k.arena[b]
	if ea.at != eb.at {
		return ea.at < eb.at
	}
	return ea.seq < eb.seq
}

// hpush appends an event index to a heap slice and restores the invariant.
func (k *Kernel) hpush(h []evIdx, i evIdx) []evIdx {
	h = append(h, i)
	c := len(h) - 1
	for c > 0 {
		parent := (c - 1) / heapArity
		if !k.less(h[c], h[parent]) {
			break
		}
		h[c], h[parent] = h[parent], h[c]
		c = parent
	}
	return h
}

// hpop removes and returns the minimum of a heap slice. Unlike the firing
// paths it performs no in-the-past check: extraction pops events whose time
// is still ahead of the clock (fire checks when it advances the clock).
func (k *Kernel) hpop(h []evIdx) ([]evIdx, evIdx) {
	top := h[0]
	n := len(h) - 1
	h[0] = h[n]
	h = h[:n]
	// Sift down.
	i := 0
	for {
		first := heapArity*i + 1
		if first >= n {
			break
		}
		best := first
		last := first + heapArity
		if last > n {
			last = n
		}
		for c := first + 1; c < last; c++ {
			if k.less(h[c], h[best]) {
				best = c
			}
		}
		if !k.less(h[best], h[i]) {
			break
		}
		h[i], h[best] = h[best], h[i]
		i = best
	}
	return h, top
}

// fire releases event slot i and runs its payload. The arena slot is freed
// before the callback runs, so events scheduled from inside the callback can
// reuse it; the fields needed are copied out first. It panics on the
// corruption every run loop must catch: an event scheduled in the past.
func (k *Kernel) fire(i evIdx) {
	ev := &k.arena[i]
	at, fn, fnT, p, act, shard := ev.at, ev.fn, ev.fnT, ev.p, ev.act, ev.shard
	if at < k.now {
		panic(fmt.Sprintf("sim: event scheduled in the past: %v < %v", at, k.now))
	}
	ev.fn, ev.fnT, ev.p, ev.act = nil, nil, nil, nil
	k.freeL = append(k.freeL, i)
	k.now = at
	k.curShard = shard
	for k.tick != nil && at >= k.tickAt {
		k.tickAt = k.tick(at)
	}
	switch {
	case p != nil:
		k.dispatch(p)
	case fnT != nil:
		fnT(at)
	case act != nil:
		act.Fire(at)
	default:
		fn()
	}
}

// step pops and fires the earliest event (serial mode).
func (k *Kernel) step() {
	var i evIdx
	k.heap, i = k.hpop(k.heap)
	k.fire(i)
}

// Spawn creates a new simulated process that will begin executing fn at the
// current virtual time. fn runs in its own goroutine but only while the
// kernel has handed it control. The process inherits the current shard tag;
// topology owners (the cluster) override it with SetShard after placement.
func (k *Kernel) Spawn(name string, fn func(*Proc)) *Proc {
	if k.dead {
		panic("sim: Spawn on a kernel after Shutdown")
	}
	p := &Proc{
		k:      k,
		id:     len(k.procs),
		name:   name,
		resume: make(chan struct{}),
		shard:  k.curShard,
	}
	k.procs = append(k.procs, p)
	k.live++
	go func() {
		defer func() {
			if r := recover(); r != nil && r != errShutdown {
				panic(r)
			}
			p.state = procDone
			k.live--
			k.yield <- struct{}{}
		}()
		<-p.resume
		if p.killed {
			return
		}
		fn(p)
	}()
	k.scheduleProc(k.now, p)
	return p
}

// dispatch hands control to p until it blocks or finishes.
func (k *Kernel) dispatch(p *Proc) {
	if p.state == procDone || p.killed {
		return
	}
	p.state = procRunning
	k.running = p
	p.resume <- struct{}{}
	<-k.yield
	k.running = nil
}

// errShutdown is the sentinel Shutdown throws through parked process
// goroutines; the Spawn wrapper recovers it and unwinds cleanly.
var errShutdown = errors.New("sim: kernel shut down")

// Shutdown unwinds every process goroutine that has not finished: parked
// processes are resumed with a kill flag set and unwind via a sentinel panic
// that their Spawn wrapper recovers; spawned-but-never-started processes
// return before running their body. Without it, a kernel abandoned with
// blocked processes (deadlock reports, RunUntil stopping early, daemons
// whose wakeup never came) leaks one parked goroutine per process for the
// life of the OS process — benchmark sweeps build thousands of kernels, so
// bench/test helpers call Shutdown on every kernel they retire. Shard
// extraction workers (ConfigureShards) are stopped the same way.
//
// Shutdown must be called from outside the kernel (not from a process or
// handler). Afterwards the kernel is dead: Spawn, Run, RunUntil, and every
// scheduling call panic, so no pooled arena slot, parked wakeup, or SetTick
// observer can be reused or fired by a stale reference to a retired kernel.
func (k *Kernel) Shutdown() {
	if k.running != nil {
		panic("sim: Shutdown called from inside the simulation")
	}
	for _, p := range k.procs {
		if p.state == procDone {
			continue
		}
		p.killed = true
		p.resume <- struct{}{}
		<-k.yield
	}
	k.stopWorkers()
	k.dead = true
}

// collectDeadlocked records non-daemon processes that are blocked with no
// pending event left to wake them.
func (k *Kernel) collectDeadlocked() {
	if k.live == 0 {
		return
	}
	for _, p := range k.procs {
		if p.state == procBlocked && !p.daemon {
			k.Deadlocked = append(k.Deadlocked, p)
		}
	}
}

// Run executes events until the queue is empty or until all processes have
// finished. It returns the final virtual time. If processes remain blocked
// with no pending events, they are reported in k.Deadlocked.
func (k *Kernel) Run() Time {
	if k.dead {
		panic("sim: Run on a kernel after Shutdown")
	}
	k.Deadlocked = nil
	if len(k.shards) > 0 {
		k.runSharded(0, false)
	} else {
		for len(k.heap) > 0 {
			k.step()
		}
	}
	k.collectDeadlocked()
	return k.now
}

// RunUntil executes events with timestamps <= deadline, then stops. Pending
// events beyond the deadline remain queued; the clock is advanced to the
// deadline. It returns the number of events fired. Like Run, it panics on
// events scheduled in the past, and populates k.Deadlocked when it drains
// the whole queue (not merely reaches the deadline) with blocked non-daemon
// processes remaining.
func (k *Kernel) RunUntil(deadline Time) int {
	if k.dead {
		panic("sim: RunUntil on a kernel after Shutdown")
	}
	k.Deadlocked = nil
	fired := 0
	if len(k.shards) > 0 {
		fired = k.runSharded(deadline, true)
	} else {
		for len(k.heap) > 0 && k.arena[k.heap[0]].at <= deadline {
			k.step()
			fired++
		}
	}
	if k.now < deadline {
		k.now = deadline
		for k.tick != nil && k.now >= k.tickAt {
			k.tickAt = k.tick(k.now)
		}
	}
	if k.Pending() == 0 {
		k.collectDeadlocked()
	}
	return fired
}

// SetTick installs the kernel's sampling hook: fn fires the first time the
// clock reaches `first` (before the event at that timestamp is dispatched)
// and returns the next firing time. The hook observes — it must not
// schedule work — so installing it cannot move any simulated timestamp.
// When the clock jumps across several firing times in one step, fn is
// invoked repeatedly within that step until its returned time is in the
// future, so fixed-width samplers see every bucket boundary exactly once;
// fn must therefore advance its returned time on every call. A nil fn
// uninstalls the hook.
func (k *Kernel) SetTick(first Time, fn func(Time) Time) {
	k.tick, k.tickAt = fn, first
}

// Pending reports the number of queued events.
func (k *Kernel) Pending() int {
	n := len(k.heap) + len(k.winOv)
	for s := range k.shards {
		sq := &k.shards[s]
		n += len(sq.heap) + len(sq.batch) - sq.cur
	}
	return n
}

// Live reports the number of spawned processes that have not finished.
func (k *Kernel) Live() int { return k.live }

// Procs returns all processes ever spawned on this kernel.
func (k *Kernel) Procs() []*Proc { return k.procs }
