package sim

import (
	"container/heap"
	"fmt"
)

// event is a scheduled callback. Events with equal timestamps fire in
// scheduling order (seq), which makes runs deterministic.
type event struct {
	at   Time
	seq  uint64
	fire func()
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return ev
}

// Kernel is the discrete-event simulation engine. Create one with NewKernel,
// spawn processes with Spawn, schedule raw callbacks with At, then call Run.
type Kernel struct {
	now     Time
	seq     uint64
	events  eventHeap
	procs   []*Proc
	live    int   // spawned but not finished
	running *Proc // process currently executing, nil in handler context
	yield   chan struct{}

	// Deadlocked is filled by Run when it returns with processes still
	// blocked and no events pending.
	Deadlocked []*Proc
}

// NewKernel returns an empty kernel with the clock at zero.
func NewKernel() *Kernel {
	return &Kernel{yield: make(chan struct{})}
}

// Clock is the read-only view of a virtual clock. Kernel satisfies it;
// observability layers (metrics, spans) depend on Clock rather than the
// full Kernel so they can read timestamps without being able to schedule
// work — reading a Clock can never perturb the simulation.
type Clock interface {
	Now() Time
}

// Now returns the current virtual time.
func (k *Kernel) Now() Time { return k.now }

// At schedules fn to run at now+delay in kernel (handler) context.
// A negative delay is treated as zero.
func (k *Kernel) At(delay Time, fn func()) {
	if delay < 0 {
		delay = 0
	}
	k.schedule(k.now+delay, fn)
}

func (k *Kernel) schedule(at Time, fn func()) {
	k.seq++
	heap.Push(&k.events, &event{at: at, seq: k.seq, fire: fn})
}

// Spawn creates a new simulated process that will begin executing fn at the
// current virtual time. fn runs in its own goroutine but only while the
// kernel has handed it control.
func (k *Kernel) Spawn(name string, fn func(*Proc)) *Proc {
	p := &Proc{
		k:      k,
		id:     len(k.procs),
		name:   name,
		resume: make(chan struct{}),
	}
	k.procs = append(k.procs, p)
	k.live++
	go func() {
		<-p.resume
		fn(p)
		p.state = procDone
		k.live--
		k.yield <- struct{}{}
	}()
	k.schedule(k.now, func() { k.dispatch(p) })
	return p
}

// dispatch hands control to p until it blocks or finishes.
func (k *Kernel) dispatch(p *Proc) {
	if p.state == procDone {
		return
	}
	p.state = procRunning
	k.running = p
	p.resume <- struct{}{}
	<-k.yield
	k.running = nil
}

// pop removes and returns the earliest event, panicking on the corruption
// that both run loops must catch: an event scheduled in the past.
func (k *Kernel) pop() *event {
	ev := heap.Pop(&k.events).(*event)
	if ev.at < k.now {
		panic(fmt.Sprintf("sim: event scheduled in the past: %v < %v", ev.at, k.now))
	}
	return ev
}

// collectDeadlocked records non-daemon processes that are blocked with no
// pending event left to wake them.
func (k *Kernel) collectDeadlocked() {
	if k.live == 0 {
		return
	}
	for _, p := range k.procs {
		if p.state == procBlocked && !p.daemon {
			k.Deadlocked = append(k.Deadlocked, p)
		}
	}
}

// Run executes events until the queue is empty or until all processes have
// finished. It returns the final virtual time. If processes remain blocked
// with no pending events, they are reported in k.Deadlocked.
func (k *Kernel) Run() Time {
	k.Deadlocked = nil
	for k.events.Len() > 0 {
		ev := k.pop()
		k.now = ev.at
		ev.fire()
	}
	k.collectDeadlocked()
	return k.now
}

// RunUntil executes events with timestamps <= deadline, then stops. Pending
// events beyond the deadline remain queued; the clock is advanced to the
// deadline. It returns the number of events fired. Like Run, it panics on
// events scheduled in the past, and populates k.Deadlocked when it drains
// the whole queue (not merely reaches the deadline) with blocked non-daemon
// processes remaining.
func (k *Kernel) RunUntil(deadline Time) int {
	k.Deadlocked = nil
	fired := 0
	for k.events.Len() > 0 && k.events[0].at <= deadline {
		ev := k.pop()
		k.now = ev.at
		ev.fire()
		fired++
	}
	if k.now < deadline {
		k.now = deadline
	}
	if k.events.Len() == 0 {
		k.collectDeadlocked()
	}
	return fired
}

// Pending reports the number of queued events.
func (k *Kernel) Pending() int { return k.events.Len() }

// Live reports the number of spawned processes that have not finished.
func (k *Kernel) Live() int { return k.live }

// Procs returns all processes ever spawned on this kernel.
func (k *Kernel) Procs() []*Proc { return k.procs }
