package sim

import (
	"runtime"
	"sort"
	"testing"
	"testing/quick"
	"time"
)

// The zero-alloc contract of the event core: once the arena and heap have
// grown to the run's high-water mark, scheduling and firing events performs
// no allocation at all.

func TestAtSteadyStateAllocFree(t *testing.T) {
	k := NewKernel()
	fn := func() {}
	// Warm the arena/heap/free-list.
	for i := 0; i < 8; i++ {
		k.At(Time(i), fn)
	}
	k.Run()
	allocs := testing.AllocsPerRun(200, func() {
		k.At(1, fn)
		k.RunUntil(k.Now() + 1)
	})
	if allocs > 0 {
		t.Fatalf("At+RunUntil allocated %.1f objects per event in steady state, want 0", allocs)
	}
}

func TestAtCallSteadyStateAllocFree(t *testing.T) {
	k := NewKernel()
	fn := func(Time) {}
	k.AtCall(0, fn)
	k.Run()
	allocs := testing.AllocsPerRun(200, func() {
		k.AtCall(1, fn)
		k.RunUntil(k.Now() + 1)
	})
	if allocs > 0 {
		t.Fatalf("AtCall+RunUntil allocated %.1f objects per event in steady state, want 0", allocs)
	}
}

func TestSleepSteadyStateAllocFree(t *testing.T) {
	k := NewKernel()
	k.Spawn("sleeper", func(p *Proc) {
		for {
			p.Sleep(10)
		}
	})
	k.RunUntil(1000) // warm up: arena, heap, goroutine stack
	allocs := testing.AllocsPerRun(100, func() {
		k.RunUntil(k.Now() + 100)
	})
	k.Shutdown()
	if allocs > 0 {
		t.Fatalf("Sleep round-trips allocated %.1f objects per run in steady state, want 0", allocs)
	}
}

// Property: with arbitrary delays (including many ties), events fire in
// exactly the order of a reference stable sort by timestamp — i.e. ties
// fire in scheduling order.
func TestPropertyTiesMatchReferenceStableSort(t *testing.T) {
	f := func(delays []uint8) bool {
		k := NewKernel()
		var fired []int
		for i, d := range delays {
			i := i
			k.At(Time(d%8), func() { fired = append(fired, i) }) // %8 forces ties
		}
		k.Run()

		ref := make([]int, len(delays))
		for i := range ref {
			ref[i] = i
		}
		sort.SliceStable(ref, func(a, b int) bool {
			return delays[ref[a]]%8 < delays[ref[b]]%8
		})
		if len(fired) != len(ref) {
			return false
		}
		for i := range ref {
			if fired[i] != ref[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// RunUntil(d) must fire events scheduled at exactly d, not stop short of
// them, and leave events at d+1 queued.
func TestRunUntilFiresEventsExactlyAtDeadline(t *testing.T) {
	k := NewKernel()
	var fired []Time
	for _, d := range []Time{99, 100, 100, 101} {
		d := d
		k.At(d, func() { fired = append(fired, d) })
	}
	if n := k.RunUntil(100); n != 3 {
		t.Fatalf("RunUntil(100) fired %d events, want 3 (two exactly at the deadline)", n)
	}
	if len(fired) != 3 || fired[1] != 100 || fired[2] != 100 {
		t.Fatalf("fired %v, want [99 100 100]", fired)
	}
	if k.Pending() != 1 {
		t.Fatalf("%d events pending, want 1 (the one beyond the deadline)", k.Pending())
	}
}

// Re-entrant At: an event handler scheduling more events — both at the
// current instant and later — must see them all fire, in order. This
// exercises arena slot reuse while the popped event's callback is running.
func TestReentrantAtFromFiringEvent(t *testing.T) {
	k := NewKernel()
	var order []string
	k.At(10, func() {
		order = append(order, "outer")
		k.At(0, func() { order = append(order, "same-instant") })
		k.At(5, func() {
			order = append(order, "later")
			k.At(0, func() { order = append(order, "nested") })
		})
	})
	end := k.Run()
	want := []string{"outer", "same-instant", "later", "nested"}
	if len(order) != len(want) {
		t.Fatalf("fired %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("fired %v, want %v", order, want)
		}
	}
	if end != 15 {
		t.Fatalf("end = %v, want 15", end)
	}
}

// Shutdown must unwind parked process goroutines. Without it, every blocked
// proc pins its goroutine (and the whole kernel) forever.
func TestShutdownReleasesParkedGoroutines(t *testing.T) {
	before := runtime.NumGoroutine()
	for i := 0; i < 20; i++ {
		k := NewKernel()
		var c Cond
		for j := 0; j < 5; j++ {
			k.Spawn("blocked", func(p *Proc) { c.Wait(p) })
		}
		k.Run() // all procs park forever; Run reports them deadlocked
		if len(k.Deadlocked) != 5 {
			t.Fatalf("expected 5 deadlocked procs, got %d", len(k.Deadlocked))
		}
		k.Shutdown()
	}
	// Let the unwound goroutines exit.
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > before+2 && time.Now().Before(deadline) {
		runtime.Gosched()
		time.Sleep(time.Millisecond)
	}
	if g := runtime.NumGoroutine(); g > before+2 {
		t.Fatalf("%d goroutines after shutdowns, %d before: parked procs leaked", g, before)
	}
}

// Shutdown must also unwind procs that were spawned but never dispatched
// (their start event still queued), without running their body.
func TestShutdownBeforeFirstDispatch(t *testing.T) {
	k := NewKernel()
	ran := false
	k.Spawn("never-started", func(p *Proc) { ran = true })
	k.Shutdown()
	if ran {
		t.Fatal("Shutdown ran the body of a never-dispatched proc")
	}
	if k.Live() != 0 {
		t.Fatalf("Live() = %d after Shutdown, want 0", k.Live())
	}
}

// Shutdown from inside the simulation is a programming error and must panic
// rather than deadlock on the kernel's own channels.
func TestShutdownFromInsideSimulationPanics(t *testing.T) {
	k := NewKernel()
	k.Spawn("suicidal", func(p *Proc) {
		defer func() {
			if recover() == nil {
				t.Error("Shutdown from a proc did not panic")
			}
			panic(errShutdown) // unwind this goroutine cleanly
		}()
		k.Shutdown()
	})
	k.Run()
}

// Steady-state scheduling benchmarks; with a warm arena both should report
// 0 allocs/op.

func BenchmarkAtSteadyState(b *testing.B) {
	k := NewKernel()
	fn := func() {}
	k.At(0, fn)
	k.Run()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k.At(1, fn)
		k.RunUntil(k.Now() + 1)
	}
}

func BenchmarkSleepRoundTrip(b *testing.B) {
	k := NewKernel()
	k.Spawn("sleeper", func(p *Proc) {
		for {
			p.Sleep(1)
		}
	})
	k.RunUntil(10)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k.RunUntil(k.Now() + 1)
	}
	b.StopTimer()
	k.Shutdown()
}

// A killed proc's goroutine must not keep running past its next yield.
func TestShutdownStopsProcsMidSleep(t *testing.T) {
	k := NewKernel()
	steps := 0
	k.Spawn("stepper", func(p *Proc) {
		for {
			steps++
			p.Sleep(10)
		}
	})
	k.RunUntil(95) // 10 wakeups: t=0..90
	got := steps
	k.Shutdown()
	if steps != got {
		t.Fatalf("proc advanced during Shutdown: %d -> %d", got, steps)
	}
}
