package sim

import (
	"fmt"
	"runtime"
	"sync"
)

// Lookahead-sharded execution (conservative parallel DES).
//
// ConfigureShards splits the pending-event set across per-shard heaps. The
// run loop then proceeds in windows: it finds the earliest pending time t,
// opens the window [t, t+lookahead), and drains every shard's sub-window
// events into a per-shard sorted batch. With more than one CPU the drains
// run on worker goroutines — they touch only their own shard's heap and
// batch and read the shared arena, which no one mutates while a window is
// being extracted. Dispatch then merges the batches (plus an overflow heap
// of events scheduled *into* the open window by the handlers themselves)
// and fires strictly in the global (at, seq) order — the exact order the
// serial loop uses — so every table, metrics snapshot, and span trace is
// byte-identical to the serial kernel at any shard count.
//
// The lookahead comes from the fabric: no cross-node message arrives sooner
// than the minimum link latency, so per-node shards keep most of a window's
// events on their home heap. The bound is advisory, not load-bearing —
// an event scheduled across shards below the lookahead (zero-delay
// condition-variable wakeups during failover, for instance) simply lands in
// the overflow heap and is merged like any other. See DESIGN.md §14.

// shardQ is one shard's pending-heap plus its extracted window batch.
type shardQ struct {
	heap  []evIdx
	batch []evIdx // window events in (at, seq) order
	cur   int     // dispatch cursor into batch
	_     [8]byte // pad to a 64-byte line so workers don't false-share
}

// ConfigureShards switches the kernel to lookahead-sharded execution with n
// shards. It must be called before any event is scheduled (the serial heap
// and the shard heaps never coexist); lookahead is the conservative window
// width — use the fabric's minimum link latency — and must be positive.
// n <= 1 leaves the kernel in serial mode. Shard indexes are a placement
// hint carried by events and processes (SetShard, AtShard); correctness
// never depends on them.
func (k *Kernel) ConfigureShards(n int, lookahead Time) {
	if k.Pending() > 0 || len(k.procs) > 0 {
		panic("sim: ConfigureShards after events were scheduled")
	}
	if n <= 1 {
		k.shards, k.lookahead = nil, 0
		return
	}
	if lookahead <= 0 {
		panic(fmt.Sprintf("sim: ConfigureShards needs a positive lookahead, got %v", lookahead))
	}
	k.shards = make([]shardQ, n)
	k.lookahead = lookahead
}

// Shards returns the configured shard count (1 when serial).
func (k *Kernel) Shards() int {
	if len(k.shards) == 0 {
		return 1
	}
	return len(k.shards)
}

// ShardIndex maps an arbitrary placement tag (a node id) onto a shard.
func (k *Kernel) ShardIndex(tag int) int {
	n := len(k.shards)
	if n == 0 {
		return 0
	}
	s := tag % n
	if s < 0 {
		s += n
	}
	return s
}

// runSharded is the windowed run loop. With bounded set it fires only
// events with at <= deadline (RunUntil semantics); otherwise it drains
// everything. Returns the number of events fired.
func (k *Kernel) runSharded(deadline Time, bounded bool) int {
	fired := 0
	for {
		minAt, ok := k.earliest()
		if !ok || (bounded && minAt > deadline) {
			break
		}
		winEnd := minAt + k.lookahead
		if winEnd <= minAt { // overflow guard on huge lookaheads
			winEnd = maxTime
		}
		if bounded && deadline+1 > deadline && winEnd > deadline+1 {
			winEnd = deadline + 1
		}
		k.extractWindow(winEnd)
		fired += k.dispatchWindow(winEnd)
	}
	return fired
}

const maxTime = Time(^uint64(0) >> 1)

// earliest returns the smallest timestamp over all shard heaps.
func (k *Kernel) earliest() (Time, bool) {
	min, ok := maxTime, false
	for s := range k.shards {
		h := k.shards[s].heap
		if len(h) == 0 {
			continue
		}
		if at := k.arena[h[0]].at; !ok || at < min {
			min, ok = at, true
		}
	}
	return min, ok
}

// extractWindow drains each shard's events with at < winEnd into the
// shard's batch, in (at, seq) order. Shards are drained concurrently when
// workers are available; each drain is confined to its own shardQ and
// read-only on the arena, so the extraction is race-free by construction.
func (k *Kernel) extractWindow(winEnd Time) {
	n := len(k.shards)
	if n > 1 && k.workers == nil && runtime.GOMAXPROCS(0) > 1 {
		k.startWorkers()
	}
	if w := k.workers; w != nil {
		w.wg.Add(n - 1)
		for s := 1; s < n; s++ {
			w.work[s-1] <- winEnd
		}
		k.shards[0].extract(k, winEnd)
		w.wg.Wait()
		return
	}
	for s := 0; s < n; s++ {
		k.shards[s].extract(k, winEnd)
	}
}

// extract pops this shard's sub-window into batch (heap pops arrive in
// (at, seq) order already).
func (sq *shardQ) extract(k *Kernel, winEnd Time) {
	sq.batch = sq.batch[:0]
	sq.cur = 0
	for len(sq.heap) > 0 && k.arena[sq.heap[0]].at < winEnd {
		var i evIdx
		sq.heap, i = k.hpop(sq.heap)
		sq.batch = append(sq.batch, i)
	}
}

// dispatchWindow merges the extracted batches with the window-overflow heap
// and fires events one at a time in global (at, seq) order. Handlers run on
// the kernel goroutine only — parallelism lives in extraction — which is
// what makes sharded output byte-identical: the serial loop would fire the
// exact same sequence. Events the handlers schedule inside the still-open
// window arrive through enqueue on the overflow heap and join the merge.
func (k *Kernel) dispatchWindow(winEnd Time) int {
	k.winActive, k.winEnd = true, winEnd
	fired := 0
	for {
		best := evIdx(-1)
		bestShard := -1
		for s := range k.shards {
			sq := &k.shards[s]
			if sq.cur < len(sq.batch) {
				i := sq.batch[sq.cur]
				if best < 0 || k.less(i, best) {
					best, bestShard = i, s
				}
			}
		}
		fromOv := false
		if len(k.winOv) > 0 && (best < 0 || k.less(k.winOv[0], best)) {
			best, fromOv = k.winOv[0], true
		}
		if best < 0 {
			break
		}
		if fromOv {
			k.winOv, _ = k.hpop(k.winOv)
		} else {
			k.shards[bestShard].cur++
		}
		k.fire(best)
		fired++
	}
	k.winActive = false
	return fired
}

// shardWorkers is the persistent extraction pool: one goroutine per shard
// beyond the first (shard 0 is drained inline by the kernel goroutine).
// Workers idle on their channel between windows; Shutdown closes them.
type shardWorkers struct {
	wg   sync.WaitGroup
	work []chan Time
	done sync.WaitGroup
}

func (k *Kernel) startWorkers() {
	w := &shardWorkers{work: make([]chan Time, len(k.shards)-1)}
	for s := 1; s < len(k.shards); s++ {
		ch := make(chan Time)
		w.work[s-1] = ch
		w.done.Add(1)
		go func(s int) {
			defer w.done.Done()
			for winEnd := range ch {
				k.shards[s].extract(k, winEnd)
				w.wg.Done()
			}
		}(s)
	}
	k.workers = w
}

// stopWorkers shuts the extraction pool down (idempotent; Shutdown calls it).
func (k *Kernel) stopWorkers() {
	if k.workers == nil {
		return
	}
	for _, ch := range k.workers.work {
		close(ch)
	}
	k.workers.done.Wait()
	k.workers = nil
}
