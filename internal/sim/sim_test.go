package sim

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestTimeString(t *testing.T) {
	cases := []struct {
		in   Time
		want string
	}{
		{0, "0ns"},
		{999, "999ns"},
		{1500, "1.50us"},
		{2 * Millisecond, "2.000ms"},
		{3 * Second, "3.0000s"},
		{-1500, "-1.50us"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("Time(%d).String() = %q, want %q", int64(c.in), got, c.want)
		}
	}
}

func TestTimeConversions(t *testing.T) {
	if got := (2500 * Nanosecond).Micros(); got != 2.5 {
		t.Errorf("Micros = %v, want 2.5", got)
	}
	if got := (1500 * Microsecond).Millis(); got != 1.5 {
		t.Errorf("Millis = %v, want 1.5", got)
	}
	if got := (250 * Millisecond).Seconds(); got != 0.25 {
		t.Errorf("Seconds = %v, want 0.25", got)
	}
}

func TestEventsFireInTimeOrder(t *testing.T) {
	k := NewKernel()
	var got []Time
	for _, d := range []Time{50, 10, 30, 20, 40} {
		d := d
		k.At(d, func() { got = append(got, k.Now()) })
	}
	end := k.Run()
	if end != 50 {
		t.Fatalf("Run returned %v, want 50", end)
	}
	if !sort.SliceIsSorted(got, func(i, j int) bool { return got[i] < got[j] }) {
		t.Fatalf("events out of order: %v", got)
	}
	if len(got) != 5 {
		t.Fatalf("fired %d events, want 5", len(got))
	}
}

func TestEventTiesFireInScheduleOrder(t *testing.T) {
	k := NewKernel()
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		k.At(100, func() { got = append(got, i) })
	}
	k.Run()
	for i, v := range got {
		if v != i {
			t.Fatalf("tie order broken at %d: got %v", i, got)
		}
	}
}

func TestProcSleepAdvancesClock(t *testing.T) {
	k := NewKernel()
	var wake Time
	k.Spawn("sleeper", func(p *Proc) {
		p.Sleep(42 * Microsecond)
		wake = p.Now()
	})
	k.Run()
	if wake != 42*Microsecond {
		t.Fatalf("woke at %v, want 42us", wake)
	}
}

func TestInterleavedProcsDeterministic(t *testing.T) {
	run := func() []string {
		k := NewKernel()
		var log []string
		for i := 0; i < 4; i++ {
			i := i
			k.Spawn(fmt.Sprintf("p%d", i), func(p *Proc) {
				for j := 0; j < 3; j++ {
					p.Sleep(Time(10 * (i + 1)))
					log = append(log, fmt.Sprintf("p%d@%v", i, p.Now()))
				}
			})
		}
		k.Run()
		return log
	}
	a, b := run(), run()
	if len(a) != 12 {
		t.Fatalf("log length %d, want 12", len(a))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("nondeterministic at %d: %q vs %q", i, a[i], b[i])
		}
	}
}

func TestCondWaitSignal(t *testing.T) {
	k := NewKernel()
	var cond Cond
	ready := false
	var consumedAt Time
	k.Spawn("consumer", func(p *Proc) {
		for !ready {
			cond.Wait(p)
		}
		consumedAt = p.Now()
	})
	k.Spawn("producer", func(p *Proc) {
		p.Sleep(100)
		ready = true
		cond.Broadcast()
	})
	k.Run()
	if len(k.Deadlocked) != 0 {
		t.Fatalf("deadlocked procs: %d", len(k.Deadlocked))
	}
	if consumedAt != 100 {
		t.Fatalf("consumed at %v, want 100", consumedAt)
	}
}

func TestCondSignalWakesOne(t *testing.T) {
	k := NewKernel()
	var cond Cond
	turn := 0
	woken := 0
	for i := 0; i < 3; i++ {
		i := i
		k.Spawn(fmt.Sprintf("w%d", i), func(p *Proc) {
			for turn <= i {
				cond.Wait(p)
			}
			woken++
		})
	}
	k.Spawn("driver", func(p *Proc) {
		for i := 1; i <= 3; i++ {
			p.Sleep(10)
			turn = i
			cond.Broadcast()
		}
	})
	k.Run()
	if woken != 3 {
		t.Fatalf("woken = %d, want 3", woken)
	}
}

func TestDeadlockDetection(t *testing.T) {
	k := NewKernel()
	var cond Cond
	k.Spawn("stuck", func(p *Proc) {
		for {
			cond.Wait(p)
		}
	})
	k.Run()
	if len(k.Deadlocked) != 1 || k.Deadlocked[0].Name() != "stuck" {
		t.Fatalf("Deadlocked = %v, want [stuck]", k.Deadlocked)
	}
}

func TestWaitGroup(t *testing.T) {
	k := NewKernel()
	var wg WaitGroup
	wg.Add(3)
	var doneAt Time
	k.Spawn("waiter", func(p *Proc) {
		wg.Wait(p)
		doneAt = p.Now()
	})
	for i := 1; i <= 3; i++ {
		i := i
		k.Spawn("worker", func(p *Proc) {
			p.Sleep(Time(i * 100))
			wg.Done()
		})
	}
	k.Run()
	if doneAt != 300 {
		t.Fatalf("waiter released at %v, want 300", doneAt)
	}
}

func TestWaitGroupNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on negative counter")
		}
	}()
	var wg WaitGroup
	wg.Add(-1)
}

func TestAdvanceBusyAccounting(t *testing.T) {
	k := NewKernel()
	var p0 *Proc
	k.Spawn("worker", func(p *Proc) {
		p0 = p
		p.AdvanceBusy(100)
		p.Sleep(50)
		p.AdvanceBusy(25)
	})
	k.Run()
	if p0.BusyTime() != 125 {
		t.Fatalf("BusyTime = %v, want 125", p0.BusyTime())
	}
}

func TestRunUntil(t *testing.T) {
	k := NewKernel()
	fired := 0
	for _, d := range []Time{10, 20, 30, 40} {
		k.At(d, func() { fired++ })
	}
	n := k.RunUntil(25)
	if n != 2 || fired != 2 {
		t.Fatalf("RunUntil fired %d/%d, want 2", n, fired)
	}
	if k.Now() != 25 {
		t.Fatalf("clock at %v, want 25", k.Now())
	}
	k.Run()
	if fired != 4 {
		t.Fatalf("after Run fired = %d, want 4", fired)
	}
}

// Regression: RunUntil must apply the same past-event guard as Run (it
// silently accepted and fired stale events before).
func TestRunUntilPanicsOnPastEvent(t *testing.T) {
	k := NewKernel()
	k.At(100, func() {})
	k.RunUntil(100)
	k.schedule(50, func() {}) // corrupt: behind the clock
	defer func() {
		if recover() == nil {
			t.Fatal("RunUntil accepted an event scheduled in the past")
		}
	}()
	k.RunUntil(200)
}

// Regression: RunUntil never populated Deadlocked; when it drains the whole
// queue with blocked non-daemon processes left, it must report them like Run.
func TestRunUntilReportsDeadlock(t *testing.T) {
	k := NewKernel()
	var c Cond
	k.Spawn("stuck", func(p *Proc) { c.Wait(p) })
	if n := k.RunUntil(1000); n == 0 {
		t.Fatal("spawn event did not fire")
	}
	if len(k.Deadlocked) != 1 || k.Deadlocked[0].Name() != "stuck" {
		t.Fatalf("Deadlocked = %v, want the stuck process", k.Deadlocked)
	}
	// A deadline that leaves events queued must NOT report a deadlock: the
	// queued event may yet wake the process.
	k2 := NewKernel()
	var c2 Cond
	k2.Spawn("waiter", func(p *Proc) { c2.Wait(p) })
	k2.At(500, func() { c2.Broadcast() })
	k2.RunUntil(100)
	if len(k2.Deadlocked) != 0 {
		t.Fatalf("Deadlocked = %v before the wakeup event ran", k2.Deadlocked)
	}
	k2.Run()
	if len(k2.Deadlocked) != 0 {
		t.Fatalf("Deadlocked = %v after wakeup", k2.Deadlocked)
	}
}

func TestNegativeDelayClampsToNow(t *testing.T) {
	k := NewKernel()
	k.At(100, func() {
		k.At(-50, func() {
			if k.Now() != 100 {
				t.Errorf("negative-delay event at %v, want 100", k.Now())
			}
		})
	})
	k.Run()
}

func TestSpawnFromProc(t *testing.T) {
	k := NewKernel()
	var childAt Time
	k.Spawn("parent", func(p *Proc) {
		p.Sleep(10)
		k.Spawn("child", func(c *Proc) {
			c.Sleep(5)
			childAt = c.Now()
		})
		p.Sleep(100)
	})
	k.Run()
	if childAt != 15 {
		t.Fatalf("child finished at %v, want 15", childAt)
	}
}

// Property: for any set of event delays, events fire in nondecreasing time
// order and the final clock equals the maximum delay.
func TestPropertyEventOrdering(t *testing.T) {
	f := func(delays []uint16) bool {
		k := NewKernel()
		var fired []Time
		for _, d := range delays {
			k.At(Time(d), func() { fired = append(fired, k.Now()) })
		}
		end := k.Run()
		if len(fired) != len(delays) {
			return false
		}
		var max Time
		for _, d := range delays {
			if Time(d) > max {
				max = Time(d)
			}
		}
		if len(delays) > 0 && end != max {
			return false
		}
		return sort.SliceIsSorted(fired, func(i, j int) bool { return fired[i] < fired[j] })
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: N procs each sleeping a random series of durations finish at the
// sum of their own durations, regardless of interleaving.
func TestPropertyProcIsolation(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		k := NewKernel()
		n := 2 + rng.Intn(6)
		want := make([]Time, n)
		got := make([]Time, n)
		for i := 0; i < n; i++ {
			i := i
			steps := 1 + rng.Intn(8)
			durs := make([]Time, steps)
			for j := range durs {
				durs[j] = Time(rng.Intn(1000))
				want[i] += durs[j]
			}
			k.Spawn(fmt.Sprintf("p%d", i), func(p *Proc) {
				for _, d := range durs {
					p.Sleep(d)
				}
				got[i] = p.Now()
			})
		}
		k.Run()
		for i := range want {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestDaemonExcludedFromDeadlock(t *testing.T) {
	k := NewKernel()
	var cond Cond
	k.Spawn("daemon", func(p *Proc) {
		p.SetDaemon(true)
		for {
			cond.Wait(p)
		}
	})
	k.Spawn("worker", func(p *Proc) { p.Sleep(100) })
	k.Run()
	if len(k.Deadlocked) != 0 {
		t.Fatalf("daemon reported as deadlocked: %v", k.Deadlocked)
	}
	if k.Live() != 1 {
		t.Fatalf("Live = %d, want 1 (the daemon)", k.Live())
	}
}

func TestDaemonFlagReadable(t *testing.T) {
	k := NewKernel()
	k.Spawn("d", func(p *Proc) {
		if p.Daemon() {
			t.Error("daemon flag set before SetDaemon")
		}
		p.SetDaemon(true)
		if !p.Daemon() {
			t.Error("daemon flag not set")
		}
	})
	k.Run()
}

func TestPendingAndProcs(t *testing.T) {
	k := NewKernel()
	k.At(10, func() {})
	k.At(20, func() {})
	if k.Pending() != 2 {
		t.Fatalf("Pending = %d", k.Pending())
	}
	k.Spawn("p", func(p *Proc) {})
	if len(k.Procs()) != 1 {
		t.Fatalf("Procs = %d", len(k.Procs()))
	}
	k.Run()
	if k.Pending() != 0 {
		t.Fatal("events left after Run")
	}
}

func TestCondNWaiters(t *testing.T) {
	k := NewKernel()
	var cond Cond
	release := false
	for i := 0; i < 3; i++ {
		k.Spawn("w", func(p *Proc) {
			for !release {
				cond.Wait(p)
			}
		})
	}
	k.Spawn("check", func(p *Proc) {
		p.Sleep(10)
		if cond.NWaiters() != 3 {
			t.Errorf("NWaiters = %d, want 3", cond.NWaiters())
		}
		release = true
		cond.Broadcast()
	})
	k.Run()
	if len(k.Deadlocked) != 0 {
		t.Fatal("deadlock")
	}
}
