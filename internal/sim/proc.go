package sim

import "fmt"

type procState int

const (
	procReady procState = iota
	procRunning
	procBlocked
	procDone
)

// Proc is a simulated process: a goroutine that executes in virtual time
// under kernel control. All Proc methods must be called from the process's
// own goroutine while it holds control (i.e. from inside the function passed
// to Spawn, directly or indirectly).
type Proc struct {
	k      *Kernel
	id     int
	name   string
	resume chan struct{}
	state  procState

	busy   Time  // accumulated AdvanceBusy (compute/CPU-work) time
	daemon bool
	killed bool  // set by Kernel.Shutdown; the next resume unwinds
	shard  int32 // sharded mode: home shard for this proc's wakeup events
}

// SetShard pins the process's wakeup events (Sleep, condition waits) to a
// shard of the lookahead-sharded kernel — topology owners call it after
// placement (a rank or proxy lives on its node's shard). Purely a placement
// hint; see ConfigureShards. Unlike most Proc methods it may be called from
// outside the process, during setup.
func (p *Proc) SetShard(s int) { p.shard = int32(s) }

// Shard returns the process's shard placement hint.
func (p *Proc) Shard() int { return int(p.shard) }

// SetDaemon marks the process as a daemon: it is expected to block forever
// (e.g. a progress engine) and is excluded from deadlock reporting.
func (p *Proc) SetDaemon(on bool) { p.daemon = on }

// Daemon reports whether the process is marked as a daemon.
func (p *Proc) Daemon() bool { return p.daemon }

// ID returns the process's kernel-unique identifier.
func (p *Proc) ID() int { return p.id }

// Name returns the name given at Spawn.
func (p *Proc) Name() string { return p.name }

// Kernel returns the kernel the process runs on.
func (p *Proc) Kernel() *Kernel { return p.k }

// Now returns the current virtual time.
func (p *Proc) Now() Time { return p.k.now }

// BusyTime returns the total virtual time this process has spent in
// AdvanceBusy (modelled CPU work).
func (p *Proc) BusyTime() Time { return p.busy }

func (p *Proc) checkRunning() {
	if p.k.running != p {
		panic(fmt.Sprintf("sim: proc %q method called while not running (running=%v)", p.name, p.k.running))
	}
}

// yieldToKernel parks the goroutine and returns control to the kernel loop.
// The caller must have arranged for a future dispatch of p. If the kernel
// was shut down while the process was parked, the goroutine unwinds via the
// shutdown sentinel (recovered by the Spawn wrapper).
func (p *Proc) yieldToKernel() {
	p.state = procBlocked
	p.k.yield <- struct{}{}
	<-p.resume
	if p.killed {
		panic(errShutdown)
	}
}

// Sleep advances the process's virtual time by d. Other events and processes
// run in the meantime. A non-positive d yields the processor for one
// scheduling round at the current timestamp.
func (p *Proc) Sleep(d Time) {
	p.checkRunning()
	if d < 0 {
		d = 0
	}
	k := p.k
	k.scheduleProc(k.now+d, p)
	p.yieldToKernel()
}

// AdvanceBusy is Sleep plus accounting: the elapsed time is recorded as CPU
// work (compute), which workloads use to report compute/communication
// splits.
func (p *Proc) AdvanceBusy(d Time) {
	if d > 0 {
		p.busy += d
	}
	p.Sleep(d)
}

// Yield gives other processes and events scheduled at the current timestamp
// a chance to run, then resumes.
func (p *Proc) Yield() { p.Sleep(0) }

// Cond is a condition variable for simulated processes. It has no associated
// lock (the simulation is single-threaded); use it with a predicate loop:
//
//	for !pred() {
//	    cond.Wait(p)
//	}
//
// Signal and Broadcast may be called from any context (another process or an
// event handler).
type Cond struct {
	waiters []*Proc
}

// Wait blocks p until the condition is signalled. Spurious wakeups are
// possible by design; always re-check the predicate.
func (c *Cond) Wait(p *Proc) {
	p.checkRunning()
	c.waiters = append(c.waiters, p)
	p.yieldToKernel()
}

// Broadcast wakes all waiting processes at the current virtual time.
func (c *Cond) Broadcast() {
	if len(c.waiters) == 0 {
		return
	}
	ws := c.waiters
	c.waiters = nil
	for _, w := range ws {
		w.k.scheduleProc(w.k.now, w)
	}
}

// Signal wakes the longest-waiting process, if any.
func (c *Cond) Signal() {
	if len(c.waiters) == 0 {
		return
	}
	p := c.waiters[0]
	c.waiters = c.waiters[1:]
	p.k.scheduleProc(p.k.now, p)
}

// NWaiters reports how many processes are blocked on the condition.
func (c *Cond) NWaiters() int { return len(c.waiters) }

// WaitGroup counts outstanding work items across simulated processes.
type WaitGroup struct {
	n    int
	cond Cond
}

// Add increments the counter by delta.
func (wg *WaitGroup) Add(delta int) {
	wg.n += delta
	if wg.n < 0 {
		panic("sim: negative WaitGroup counter")
	}
	if wg.n == 0 {
		wg.cond.Broadcast()
	}
}

// Done decrements the counter by one.
func (wg *WaitGroup) Done() { wg.Add(-1) }

// Wait blocks p until the counter reaches zero.
func (wg *WaitGroup) Wait(p *Proc) {
	for wg.n > 0 {
		wg.cond.Wait(p)
	}
}
