// Package sim implements a deterministic, process-oriented discrete-event
// simulation kernel.
//
// The kernel owns a virtual clock and an event queue. Simulated processes
// (Proc) are goroutines that run one at a time under kernel control; a
// process advances the virtual clock by sleeping (Sleep, AdvanceBusy) or by
// blocking on a condition (Cond) until another process or event handler
// signals it. Because exactly one process runs at any instant and ties in
// the event queue are broken by insertion order, every simulation run is
// fully deterministic.
//
// The rest of the repository builds a simulated InfiniBand cluster on top of
// this kernel: fabric models link costs, verbs/gvmi model NIC registration
// and RDMA, mpi and core model the communication libraries under study.
package sim

import "fmt"

// Time is a virtual timestamp or duration in nanoseconds.
type Time int64

// Common durations.
const (
	Nanosecond  Time = 1
	Microsecond Time = 1000 * Nanosecond
	Millisecond Time = 1000 * Microsecond
	Second      Time = 1000 * Millisecond
)

// String formats the time with an adaptive unit, e.g. "12.50us".
func (t Time) String() string {
	switch {
	case t < 0:
		return "-" + (-t).String()
	case t < Microsecond:
		return fmt.Sprintf("%dns", int64(t))
	case t < Millisecond:
		return fmt.Sprintf("%.2fus", t.Micros())
	case t < Second:
		return fmt.Sprintf("%.3fms", t.Millis())
	default:
		return fmt.Sprintf("%.4fs", t.Seconds())
	}
}

// Micros returns the duration in microseconds.
func (t Time) Micros() float64 { return float64(t) / float64(Microsecond) }

// Millis returns the duration in milliseconds.
func (t Time) Millis() float64 { return float64(t) / float64(Millisecond) }

// Seconds returns the duration in seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// MaxTime is the largest representable virtual time.
const MaxTime = Time(1<<63 - 1)
