package sim

import (
	"fmt"
	"math/rand"
	"runtime"
	"testing"
	"time"
)

// buildWorkload schedules the same randomized event graph on k: a mix of
// plain events, timed callbacks, Actions, sleeping procs with cross-proc
// condition wakeups, and re-entrant scheduling — tagged across shards the
// way a cluster tags nodes. Every firing appends (label, now) to out.
func buildWorkload(k *Kernel, seed int64, out *[]string) {
	rng := rand.New(rand.NewSource(seed))
	record := func(label string) {
		*out = append(*out, fmt.Sprintf("%s@%d", label, k.Now()))
	}
	var cond Cond
	// Four "nodes" of sleeping procs signalling each other.
	for n := 0; n < 4; n++ {
		n := n
		p := k.Spawn(fmt.Sprintf("node%d", n), func(p *Proc) {
			for i := 0; i < 20; i++ {
				p.Sleep(Time(1 + rng.Intn(7)))
				record(fmt.Sprintf("proc%d.%d", n, i))
				if i%3 == 0 {
					cond.Broadcast() // zero-delay cross-shard wakeups
				} else if i%5 == 1 {
					cond.Wait(p)
				}
			}
			cond.Broadcast() // let stragglers finish
		})
		p.SetShard(k.ShardIndex(n))
	}
	// A spray of events, some re-entrant, on explicit shards.
	for i := 0; i < 60; i++ {
		i := i
		d := Time(rng.Intn(40))
		k.AtShard(i%4, d, func() {
			record(fmt.Sprintf("ev%d", i))
			if i%4 == 0 {
				k.At(0, func() { record(fmt.Sprintf("ev%d.same", i)) })
				k.AtShard((i+1)%4, 2, func() { record(fmt.Sprintf("ev%d.x", i)) })
			}
		})
	}
}

// Sharded execution must fire the exact event sequence of the serial
// kernel: same labels, same virtual times, same order — at any shard count,
// with and without extraction workers.
func TestShardedMatchesSerial(t *testing.T) {
	run := func(shards int, lookahead Time, seed int64) []string {
		k := NewKernel()
		if shards > 1 {
			k.ConfigureShards(shards, lookahead)
		}
		var got []string
		buildWorkload(k, seed, &got)
		k.Run()
		k.Shutdown()
		return got
	}
	old := runtime.GOMAXPROCS(4) // force the worker-pool extraction path
	defer runtime.GOMAXPROCS(old)
	for seed := int64(1); seed <= 5; seed++ {
		want := run(1, 0, seed)
		if len(want) == 0 {
			t.Fatalf("seed %d: serial run recorded nothing", seed)
		}
		for _, shards := range []int{2, 4, 7} {
			for _, la := range []Time{1, 3, 1000} {
				got := run(shards, la, seed)
				if len(got) != len(want) {
					t.Fatalf("seed %d shards %d lookahead %d: %d events, want %d",
						seed, shards, la, len(got), len(want))
				}
				for i := range want {
					if got[i] != want[i] {
						t.Fatalf("seed %d shards %d lookahead %d: event %d = %s, want %s",
							seed, shards, la, i, got[i], want[i])
					}
				}
			}
		}
	}
}

// RunUntil on a sharded kernel must honor the deadline exactly: events at
// the deadline fire, later ones stay queued, fired counts match serial.
func TestShardedRunUntilMatchesSerial(t *testing.T) {
	build := func(shards int) *Kernel {
		k := NewKernel()
		if shards > 1 {
			k.ConfigureShards(shards, 3)
		}
		for i := 0; i < 30; i++ {
			k.AtShard(i%shards, Time(i), func() {})
		}
		return k
	}
	ks, kp := build(1), build(4)
	for _, d := range []Time{0, 7, 8, 29, 100} {
		ns, np := ks.RunUntil(d), kp.RunUntil(d)
		if ns != np {
			t.Fatalf("RunUntil(%d): sharded fired %d, serial fired %d", d, np, ns)
		}
		if ks.Pending() != kp.Pending() {
			t.Fatalf("RunUntil(%d): sharded pending %d, serial pending %d", d, kp.Pending(), ks.Pending())
		}
		if ks.Now() != kp.Now() {
			t.Fatalf("RunUntil(%d): sharded now %v, serial now %v", d, kp.Now(), ks.Now())
		}
	}
	ks.Shutdown()
	kp.Shutdown()
}

type countAction struct {
	n  int
	at Time
}

func (a *countAction) Fire(at Time) { a.n++; a.at = at }

// AtAction must be allocation-free in steady state, serial and sharded.
func TestAtActionSteadyStateAllocFree(t *testing.T) {
	for _, shards := range []int{1, 4} {
		k := NewKernel()
		if shards > 1 {
			k.ConfigureShards(shards, 2)
		}
		a := &countAction{}
		for i := 0; i < 8; i++ {
			k.AtAction(Time(i), a)
		}
		k.Run()
		allocs := testing.AllocsPerRun(200, func() {
			k.AtAction(1, a)
			k.AtActionShard(shards-1, 1, a)
			k.RunUntil(k.Now() + 1)
		})
		if allocs > 0 {
			t.Fatalf("shards=%d: AtAction allocated %.1f objects per op in steady state, want 0", shards, allocs)
		}
		if a.n == 0 || a.at != k.Now() {
			t.Fatalf("shards=%d: action fired %d times, last at %v (now %v)", shards, a.n, a.at, k.Now())
		}
	}
}

// The sharded run loop itself must be allocation-free once heaps, batches,
// and the worker pool are warm.
func TestShardedSteadyStateAllocFree(t *testing.T) {
	old := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(old)
	k := NewKernel()
	k.ConfigureShards(4, 2)
	fn := func() {}
	for s := 0; s < 4; s++ {
		for i := 0; i < 8; i++ {
			k.AtShard(s, Time(i), fn)
		}
	}
	k.Run()
	allocs := testing.AllocsPerRun(200, func() {
		for s := 0; s < 4; s++ {
			k.AtShard(s, 1, fn)
		}
		k.RunUntil(k.Now() + 1)
	})
	k.Shutdown()
	if allocs > 0 {
		t.Fatalf("sharded window loop allocated %.1f objects per run in steady state, want 0", allocs)
	}
}

// ConfigureShards is a pre-scheduling decision: reconfiguring a kernel that
// already has pending events or procs must panic.
func TestConfigureShardsAfterSchedulingPanics(t *testing.T) {
	k := NewKernel()
	k.At(1, func() {})
	defer func() {
		if recover() == nil {
			t.Fatal("ConfigureShards with pending events did not panic")
		}
	}()
	k.ConfigureShards(4, 1)
}

// Out-of-range shard hints must degrade to shard 0, never crash or change
// dispatch order.
func TestShardHintOutOfRangeIsSafe(t *testing.T) {
	k := NewKernel()
	k.ConfigureShards(2, 2)
	var fired []int
	for i, s := range []int{-3, 0, 1, 99} {
		i := i
		k.AtShard(s, Time(i), func() { fired = append(fired, i) })
	}
	k.Run()
	if len(fired) != 4 {
		t.Fatalf("fired %v, want all 4 events", fired)
	}
	for i := range fired {
		if fired[i] != i {
			t.Fatalf("fired %v, want in-order 0..3", fired)
		}
	}
	k.Shutdown()
}

// Shutdown must stop the extraction workers; a sharded kernel torn down
// after heavy use must not leak goroutines.
func TestShutdownStopsShardWorkers(t *testing.T) {
	old := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(old)
	before := runtime.NumGoroutine()
	for i := 0; i < 10; i++ {
		k := NewKernel()
		k.ConfigureShards(4, 2)
		for j := 0; j < 100; j++ {
			k.AtShard(j%4, Time(j), func() {})
		}
		k.Run()
		k.Shutdown()
	}
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > before+2 && time.Now().Before(deadline) {
		runtime.Gosched()
		time.Sleep(time.Millisecond)
	}
	if g := runtime.NumGoroutine(); g > before+2 {
		t.Fatalf("%d goroutines after shutdowns, %d before: shard workers leaked", g, before)
	}
}

// After Shutdown the kernel is dead: the SetTick observer must never fire
// again, and no pooled arena slot can be reused — every scheduling or run
// entry point panics instead of silently resurrecting freed storage.
func TestShutdownKillsObserverAndPooledStorage(t *testing.T) {
	k := NewKernel()
	ticks := 0
	k.SetTick(0, func(at Time) Time { ticks++; return at + 5 })
	k.At(12, func() {})
	k.Spawn("parked", func(p *Proc) { (&Cond{}).Wait(p) })
	k.Run()
	got := ticks
	if got == 0 {
		t.Fatal("tick observer never fired during the run")
	}
	k.Shutdown()

	mustPanic := func(name string, fn func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s on a shut-down kernel did not panic", name)
			}
		}()
		fn()
	}
	mustPanic("At", func() { k.At(1, func() {}) })
	mustPanic("AtCall", func() { k.AtCall(1, func(Time) {}) })
	mustPanic("AtAction", func() { k.AtAction(1, &countAction{}) })
	mustPanic("Spawn", func() { k.Spawn("late", func(p *Proc) {}) })
	mustPanic("Run", func() { k.Run() })
	mustPanic("RunUntil", func() { k.RunUntil(k.Now() + 100) })
	if ticks != got {
		t.Fatalf("tick observer fired after Shutdown: %d -> %d", got, ticks)
	}
}

// A fresh kernel after a Shutdown shares nothing with the retired one:
// its arena starts empty, so no slot of the dead kernel can resurface.
func TestShutdownThenFreshKernelSharesNoStorage(t *testing.T) {
	k1 := NewKernel()
	for i := 0; i < 32; i++ {
		k1.At(Time(i), func() {})
	}
	k1.Run()
	k1.Shutdown()
	k2 := NewKernel()
	if len(k2.arena) != 0 || len(k2.freeL) != 0 || k2.Pending() != 0 {
		t.Fatal("fresh kernel inherited arena/free-list state")
	}
	fired := 0
	k2.At(1, func() { fired++ })
	k2.Run()
	if fired != 1 {
		t.Fatalf("fresh kernel fired %d events, want 1", fired)
	}
	k2.Shutdown()
}
