package verbs

import (
	"bytes"
	"testing"

	"repro/internal/device"
	"repro/internal/fabric"
	"repro/internal/mem"
	"repro/internal/sim"
)

type rig struct {
	k   *sim.Kernel
	f   *fabric.Fabric
	r   *Registry
	ctx []*Ctx
	sp  []*mem.Space
}

func newRig(n int) *rig {
	k := sim.NewKernel()
	f := fabric.New(k, fabric.DefaultConfig())
	r := NewRegistry(f, DefaultCosts())
	rg := &rig{k: k, f: f, r: r}
	for i := 0; i < n; i++ {
		sp := mem.NewSpace("p")
		ep := f.NewEndpoint("host", i, device.Baseline().HostPort)
		rg.sp = append(rg.sp, sp)
		rg.ctx = append(rg.ctx, r.NewCtx("ctx", sp, ep))
	}
	return rg
}

func TestRegCostModel(t *testing.T) {
	c := DefaultCosts()
	if c.RegCost(1) != c.RegBase+c.RegPerPage {
		t.Fatalf("1-byte reg cost = %v", c.RegCost(1))
	}
	if c.RegCost(2*c.PageSize) != c.RegBase+2*c.RegPerPage {
		t.Fatalf("2-page reg cost = %v", c.RegCost(2*c.PageSize))
	}
	if c.RegCost(c.PageSize+1) != c.RegBase+2*c.RegPerPage {
		t.Fatal("partial page not rounded up")
	}
}

func TestRegisterMRChargesTime(t *testing.T) {
	rg := newRig(1)
	var elapsed sim.Time
	rg.k.Spawn("p0", func(p *sim.Proc) {
		buf := rg.sp[0].Alloc(8192, true)
		mr := rg.ctx[0].RegisterMR(p, buf.Addr(), buf.Size())
		elapsed = p.Now()
		if mr.LKey() == mr.RKey() {
			t.Error("lkey == rkey")
		}
	})
	rg.k.Run()
	if want := rg.r.Costs().RegCost(8192); elapsed != want {
		t.Fatalf("registration took %v, want %v", elapsed, want)
	}
	if rg.r.Registrations != 1 {
		t.Fatalf("Registrations = %d", rg.r.Registrations)
	}
}

func TestRDMAWriteMovesBytes(t *testing.T) {
	rg := newRig(2)
	src := rg.sp[0].Alloc(256, true)
	dst := rg.sp[1].Alloc(256, true)
	copy(src.Bytes(), bytes.Repeat([]byte{0xC3}, 256))

	var remoteAt sim.Time
	rg.k.Spawn("sender", func(p *sim.Proc) {
		smr := rg.ctx[0].RegisterMR(p, src.Addr(), 256)
		dmr := rg.ctx[1].RegisterMR(p, dst.Addr(), 256) // test shortcut: register both here
		err := rg.ctx[0].PostWrite(p, WriteOp{
			LocalKey: smr.LKey(), LocalAddr: src.Addr(),
			RemoteKey: dmr.RKey(), RemoteAddr: dst.Addr(),
			Size:             256,
			OnRemoteComplete: func(at sim.Time) { remoteAt = at },
		})
		if err != nil {
			t.Errorf("PostWrite: %v", err)
		}
	})
	rg.k.Run()
	if remoteAt == 0 {
		t.Fatal("remote completion never fired")
	}
	if !bytes.Equal(dst.Bytes(), src.Bytes()) {
		t.Fatal("payload not copied")
	}
}

func TestRDMAWriteSubRange(t *testing.T) {
	rg := newRig(2)
	src := rg.sp[0].Alloc(1024, true)
	dst := rg.sp[1].Alloc(1024, true)
	for i := range src.Bytes() {
		src.Bytes()[i] = byte(i)
	}
	rg.k.Spawn("sender", func(p *sim.Proc) {
		smr := rg.ctx[0].RegisterMR(p, src.Addr(), 1024)
		dmr := rg.ctx[1].RegisterMR(p, dst.Addr(), 1024)
		if err := rg.ctx[0].PostWrite(p, WriteOp{
			LocalKey: smr.LKey(), LocalAddr: src.Addr() + 100,
			RemoteKey: dmr.RKey(), RemoteAddr: dst.Addr() + 200,
			Size: 50,
		}); err != nil {
			t.Errorf("PostWrite: %v", err)
		}
	})
	rg.k.Run()
	if !bytes.Equal(dst.Bytes()[200:250], src.Bytes()[100:150]) {
		t.Fatal("sub-range copy wrong")
	}
	for _, b := range dst.Bytes()[:200] {
		if b != 0 {
			t.Fatal("bytes written outside target range")
		}
	}
}

func TestRDMAWriteValidatesKeys(t *testing.T) {
	rg := newRig(2)
	src := rg.sp[0].Alloc(64, true)
	rg.k.Spawn("sender", func(p *sim.Proc) {
		smr := rg.ctx[0].RegisterMR(p, src.Addr(), 64)
		err := rg.ctx[0].PostWrite(p, WriteOp{
			LocalKey: smr.LKey(), LocalAddr: src.Addr(),
			RemoteKey: Key(9999), RemoteAddr: 0x1000, Size: 64,
		})
		if err == nil {
			t.Error("unknown rkey accepted")
		}
		err = rg.ctx[0].PostWrite(p, WriteOp{
			LocalKey: smr.LKey(), LocalAddr: src.Addr() + 32,
			RemoteKey: smr.RKey(), RemoteAddr: src.Addr(), Size: 64,
		})
		if err == nil {
			t.Error("out-of-range local access accepted")
		}
	})
	rg.k.Run()
}

func TestDeregisterInvalidatesKey(t *testing.T) {
	rg := newRig(2)
	src := rg.sp[0].Alloc(64, true)
	dst := rg.sp[1].Alloc(64, true)
	rg.k.Spawn("p", func(p *sim.Proc) {
		smr := rg.ctx[0].RegisterMR(p, src.Addr(), 64)
		dmr := rg.ctx[1].RegisterMR(p, dst.Addr(), 64)
		dmr.Deregister()
		err := rg.ctx[0].PostWrite(p, WriteOp{
			LocalKey: smr.LKey(), LocalAddr: src.Addr(),
			RemoteKey: dmr.RKey(), RemoteAddr: dst.Addr(), Size: 64,
		})
		if err == nil {
			t.Error("write to deregistered rkey accepted")
		}
	})
	rg.k.Run()
}

func TestRDMAReadFetchesBytes(t *testing.T) {
	rg := newRig(2)
	local := rg.sp[0].Alloc(128, true)
	remote := rg.sp[1].Alloc(128, true)
	copy(remote.Bytes(), bytes.Repeat([]byte{0x5A}, 128))
	var done sim.Time
	rg.k.Spawn("reader", func(p *sim.Proc) {
		lmr := rg.ctx[0].RegisterMR(p, local.Addr(), 128)
		rmr := rg.ctx[1].RegisterMR(p, remote.Addr(), 128)
		if err := rg.ctx[0].PostRead(p, ReadOp{
			LocalKey: lmr.LKey(), LocalAddr: local.Addr(),
			RemoteKey: rmr.RKey(), RemoteAddr: remote.Addr(),
			Size:       128,
			OnComplete: func(at sim.Time) { done = at },
		}); err != nil {
			t.Errorf("PostRead: %v", err)
		}
	})
	rg.k.Run()
	if done == 0 {
		t.Fatal("read completion never fired")
	}
	if !bytes.Equal(local.Bytes(), remote.Bytes()) {
		t.Fatal("read payload wrong")
	}
}

func TestRDMAReadRoundTripSlowerThanWrite(t *testing.T) {
	rg := newRig(2)
	a := rg.sp[0].Alloc(4096, true)
	b := rg.sp[1].Alloc(4096, true)
	var writeDone, readDone sim.Time
	rg.k.Spawn("p", func(p *sim.Proc) {
		amr := rg.ctx[0].RegisterMR(p, a.Addr(), 4096)
		bmr := rg.ctx[1].RegisterMR(p, b.Addr(), 4096)
		start := p.Now()
		doneW := false
		if err := rg.ctx[0].PostWrite(p, WriteOp{
			LocalKey: amr.LKey(), LocalAddr: a.Addr(),
			RemoteKey: bmr.RKey(), RemoteAddr: b.Addr(), Size: 4096,
			OnRemoteComplete: func(at sim.Time) { writeDone = at - start; doneW = true },
		}); err != nil {
			t.Errorf("write: %v", err)
		}
		for !doneW {
			p.Sleep(100)
		}
		start = p.Now()
		doneR := false
		if err := rg.ctx[0].PostRead(p, ReadOp{
			LocalKey: amr.LKey(), LocalAddr: a.Addr(),
			RemoteKey: bmr.RKey(), RemoteAddr: b.Addr(), Size: 4096,
			OnComplete: func(at sim.Time) { readDone = at - start; doneR = true },
		}); err != nil {
			t.Errorf("read: %v", err)
		}
		for !doneR {
			p.Sleep(100)
		}
	})
	rg.k.Run()
	if readDone <= writeDone {
		t.Fatalf("read (%v) should be slower than write (%v): extra request flight", readDone, writeDone)
	}
}

func TestControlMessageDelivery(t *testing.T) {
	rg := newRig(2)
	var got *Packet
	rg.k.Spawn("recv", func(p *sim.Proc) {
		rg.ctx[1].AwaitInbox(p)
		pkts := rg.ctx[1].PollInbox()
		if len(pkts) == 1 {
			got = pkts[0]
		}
	})
	rg.k.Spawn("send", func(p *sim.Proc) {
		p.Sleep(50)
		rg.ctx[0].PostSend(p, rg.ctx[1], &Packet{Kind: "RTS", Size: 64, Payload: 42})
	})
	rg.k.Run()
	if len(rg.k.Deadlocked) != 0 {
		t.Fatal("deadlock")
	}
	if got == nil || got.Kind != "RTS" || got.Payload.(int) != 42 || got.From != rg.ctx[0] {
		t.Fatalf("bad packet: %+v", got)
	}
}

func TestSizeOnlyRDMAWriteAdvancesTimeWithoutCopy(t *testing.T) {
	rg := newRig(2)
	src := rg.sp[0].Alloc(1<<20, false)
	dst := rg.sp[1].Alloc(1<<20, false)
	var done sim.Time
	rg.k.Spawn("p", func(p *sim.Proc) {
		smr := rg.ctx[0].RegisterMR(p, src.Addr(), src.Size())
		dmr := rg.ctx[1].RegisterMR(p, dst.Addr(), dst.Size())
		if err := rg.ctx[0].PostWrite(p, WriteOp{
			LocalKey: smr.LKey(), LocalAddr: src.Addr(),
			RemoteKey: dmr.RKey(), RemoteAddr: dst.Addr(), Size: 1 << 20,
			OnRemoteComplete: func(at sim.Time) { done = at },
		}); err != nil {
			t.Errorf("PostWrite: %v", err)
		}
	})
	end := rg.k.Run()
	if done == 0 || end < sim.Time(float64(1<<20)/device.Baseline().HostPort.GBps) {
		t.Fatalf("size-only transfer mistimed: done=%v end=%v", done, end)
	}
}

func TestWriteWithImmediateNotifies(t *testing.T) {
	rg := newRig(2)
	src := rg.sp[0].Alloc(64, true)
	dst := rg.sp[1].Alloc(64, true)
	var got *Packet
	rg.k.Spawn("recv", func(p *sim.Proc) {
		rg.ctx[1].AwaitInbox(p)
		pkts := rg.ctx[1].PollInbox()
		if len(pkts) == 1 {
			got = pkts[0]
		}
	})
	rg.k.Spawn("send", func(p *sim.Proc) {
		smr := rg.ctx[0].RegisterMR(p, src.Addr(), 64)
		dmr := rg.ctx[1].RegisterMR(p, dst.Addr(), 64)
		err := rg.ctx[0].PostWrite(p, WriteOp{
			LocalKey: smr.LKey(), LocalAddr: src.Addr(),
			RemoteKey: dmr.RKey(), RemoteAddr: dst.Addr(), Size: 64,
			Notify: &Packet{Kind: "imm", Payload: 99},
		})
		if err != nil {
			t.Errorf("PostWrite: %v", err)
		}
	})
	rg.k.Run()
	if got == nil || got.Kind != "imm" || got.Payload.(int) != 99 {
		t.Fatalf("immediate not delivered: %+v", got)
	}
}

func TestRDMAReadValidatesKeys(t *testing.T) {
	rg := newRig(2)
	local := rg.sp[0].Alloc(64, true)
	rg.k.Spawn("p", func(p *sim.Proc) {
		lmr := rg.ctx[0].RegisterMR(p, local.Addr(), 64)
		if err := rg.ctx[0].PostRead(p, ReadOp{
			LocalKey: lmr.LKey(), LocalAddr: local.Addr(),
			RemoteKey: Key(424242), RemoteAddr: 0x1000, Size: 64,
		}); err == nil {
			t.Error("unknown remote key accepted")
		}
		if err := rg.ctx[0].PostRead(p, ReadOp{
			LocalKey: lmr.LKey(), LocalAddr: local.Addr() + 32,
			RemoteKey: lmr.RKey(), RemoteAddr: local.Addr(), Size: 64,
		}); err == nil {
			t.Error("out-of-range local landing zone accepted")
		}
	})
	rg.k.Run()
}

func TestRegistryStatsAccumulate(t *testing.T) {
	rg := newRig(1)
	rg.k.Spawn("p", func(p *sim.Proc) {
		for i := 0; i < 3; i++ {
			buf := rg.sp[0].Alloc(4096, false)
			rg.ctx[0].RegisterMR(p, buf.Addr(), 4096)
		}
	})
	rg.k.Run()
	if rg.r.Registrations != 3 {
		t.Fatalf("Registrations = %d", rg.r.Registrations)
	}
	if rg.r.RegTime != 3*rg.r.Costs().RegCost(4096) {
		t.Fatalf("RegTime = %v", rg.r.RegTime)
	}
}
