package verbs

import (
	"fmt"

	"repro/internal/fault"
	"repro/internal/mem"
	"repro/internal/sim"
	"repro/internal/span"
)

// WriteOp describes one RDMA-write work request.
type WriteOp struct {
	LocalKey   Key      // lkey covering the source range
	LocalAddr  mem.Addr // source address (in the lkey's space)
	RemoteKey  Key      // rkey covering the destination range
	RemoteAddr mem.Addr // destination address
	Size       int

	// OnLocalComplete fires (handler context) when the sender endpoint has
	// finished injecting the message (CQE on the posting side). Under fault
	// injection it fires once, for the attempt that succeeds.
	OnLocalComplete func(at sim.Time)
	// OnRemoteComplete fires (handler context) when the data has landed in
	// the destination memory.
	OnRemoteComplete func(at sim.Time)
	// Notify, if non-nil, is delivered into the destination context's inbox
	// with the data (RDMA write with immediate).
	Notify *Packet
	// OnError fires (handler context) if fault injection exhausts the
	// operation's retry budget; the op will never complete. Nil leaves the
	// failure counted in fault.Stats and traced only.
	OnError func(at sim.Time)

	// Span is the causal parent for the op's "rdma_write" span (0 = none).
	Span span.ID
}

// PostWrite posts an RDMA write on behalf of p through c's endpoint.
// Data is read from the lkey's backing space (which, for cross-GVMI mkeys,
// is a *host* space even though c lives on the DPU) and written into the
// rkey's space. Both keys are validated like an HCA would.
//
// Under fault injection the NIC retransmits autonomously on error CQEs and
// wire loss (exponential backoff, no further CPU cost); after the retry
// budget the op terminates via OnError.
func (c *Ctx) PostWrite(p *sim.Proc, op WriteOp) error {
	src, err := c.reg.lookupKey(op.LocalKey, op.LocalAddr, op.Size)
	if err != nil {
		return err
	}
	dst, err := c.reg.lookupKey(op.RemoteKey, op.RemoteAddr, op.Size)
	if err != nil {
		return err
	}
	k := c.reg.f.Kernel()
	var ws span.ID
	if c.reg.sp.Enabled() {
		// Op span: from posting (before the WR cost) to remote completion.
		ws = c.reg.sp.StartAt(op.Span, span.ClassHCA, c.name, "verbs", "rdma_write", k.Now())
		c.reg.sp.AttrInt(ws, "size", int64(op.Size))
	}
	p.AdvanceBusy(c.reg.costs.PostWR)

	dstCtx := dst.ctx
	if c.reg.inj == nil {
		// Fast path: the delivery rides a pooled flight record instead of a
		// closure, and the payload copy reuses the flight's scratch buffer —
		// zero allocations per op in steady state (see pool.go).
		fl := c.reg.getWriteFlight()
		fl.c, fl.dst, fl.dstCtx = c, dst, dstCtx
		fl.addr, fl.size = op.RemoteAddr, op.Size
		if d := src.space.ReadAt(op.LocalAddr, op.Size); d != nil {
			fl.buf = append(fl.buf[:0], d...)
			fl.backed = true
		}
		fl.notify, fl.onRem, fl.ws = op.Notify, op.OnRemoteComplete, ws
		txDone, _ := c.reg.f.TransferActionCtx(c.ep, dstCtx.ep, op.Size+c.reg.costs.RDMAHdr, fl, ws)
		if op.OnLocalComplete != nil {
			k.AtCall(txDone-k.Now(), op.OnLocalComplete)
		}
		return nil
	}
	var payload []byte
	if d := src.space.ReadAt(op.LocalAddr, op.Size); d != nil {
		payload = make([]byte, op.Size)
		copy(payload, d)
	}
	if ws != 0 {
		// Close the op span even if the retry budget is exhausted.
		orig := op.OnError
		op.OnError = func(at sim.Time) {
			c.reg.sp.AttrStr(ws, "error", "retry_exhausted")
			c.reg.sp.EndAt(ws, at)
			if orig != nil {
				orig(at)
			}
		}
	}
	c.writeAttempt(op, dst, dstCtx, payload, 1, ws)
	return nil
}

// writeAttempt performs one try of a (possibly retransmitted) RDMA write.
// It may run in process context (first attempt, from PostWrite) or handler
// context (retransmissions); it consumes no CPU time itself.
func (c *Ctx) writeAttempt(op WriteOp, dst *MR, dstCtx *Ctx, payload []byte, attempt int, ws span.ID) {
	k := c.reg.f.Kernel()
	inj := c.reg.inj
	if inj.CQError() {
		// The WQE completed with an error status before reaching the wire.
		c.reg.mErrorCQEs.Inc()
		inj.Note(k.Now(), c.name, "cq-error", fmt.Sprintf("write size=%d attempt=%d", op.Size, attempt))
		c.retryOrFail("write", op.Size, attempt, k.Now(),
			func() { c.writeAttempt(op, dst, dstCtx, payload, attempt+1, ws) },
			op.OnError)
		return
	}
	txDone, _, _, fate := c.reg.f.TransferFatedCtx(c.ep, dstCtx.ep, op.Size+c.reg.costs.RDMAHdr, func() {
		dst.space.WriteAt(op.RemoteAddr, payload, op.Size)
		c.reg.sp.EndAt(ws, k.Now())
		if op.Notify != nil {
			dstCtx.deliver(op.Notify)
		}
		if op.OnRemoteComplete != nil {
			op.OnRemoteComplete(k.Now())
		}
	}, ws)
	if fate == fault.FateDrop || fate == fault.FateCorrupt {
		// The transport timer will fire after the injection completed.
		c.retryOrFail("write", op.Size, attempt, txDone,
			func() { c.writeAttempt(op, dst, dstCtx, payload, attempt+1, ws) },
			op.OnError)
		return
	}
	if op.OnLocalComplete != nil {
		k.AtCall(txDone-k.Now(), op.OnLocalComplete)
	}
}

// retryOrFail schedules a retransmission with exponential backoff measured
// from `from`, or terminates the operation when the budget is exhausted.
func (c *Ctx) retryOrFail(kind string, size, attempt int, from sim.Time, again func(), onErr func(at sim.Time)) {
	k := c.reg.f.Kernel()
	inj := c.reg.inj
	rc := inj.Retry()
	if attempt >= rc.MaxAttempts {
		inj.Stats.Exhausted++
		inj.Note(k.Now(), c.name, "retry-exhausted",
			fmt.Sprintf("%s size=%d after %d attempts", kind, size, attempt))
		if onErr != nil {
			k.AtCall(from-k.Now(), onErr)
		}
		return
	}
	inj.Stats.Retries++
	c.reg.mRetries.Inc()
	c.reg.mBackoffNS.Add(int64(rc.Delay(attempt)))
	if g := c.reg.epRetryGauge(c.ep.Name()); g != nil {
		g.Set(g.Value() + 1)
	}
	inj.Note(k.Now(), c.name, "retry",
		fmt.Sprintf("%s size=%d attempt=%d backoff=%s", kind, size, attempt, rc.Delay(attempt)))
	k.At(from-k.Now()+rc.Delay(attempt), again)
}

// ReadOp describes one RDMA-read work request.
type ReadOp struct {
	LocalKey   Key      // lkey covering the destination range (local)
	LocalAddr  mem.Addr // where fetched data lands
	RemoteKey  Key      // rkey covering the remote source
	RemoteAddr mem.Addr
	Size       int

	// OnComplete fires when the fetched data has landed locally.
	OnComplete func(at sim.Time)
	// OnError fires if fault injection exhausts the retry budget.
	OnError func(at sim.Time)

	// Span is the causal parent for the op's "rdma_read" span (0 = none).
	Span span.ID
}

// PostRead posts an RDMA read: a small request travels to the remote
// endpoint, whose HCA streams the data back without remote CPU involvement.
// Under fault injection, loss of either leg retries the whole operation.
func (c *Ctx) PostRead(p *sim.Proc, op ReadOp) error {
	dst, err := c.reg.lookupKey(op.LocalKey, op.LocalAddr, op.Size)
	if err != nil {
		return err
	}
	src, err := c.reg.lookupKey(op.RemoteKey, op.RemoteAddr, op.Size)
	if err != nil {
		return err
	}
	k := c.reg.f.Kernel()
	var rs span.ID
	if c.reg.sp.Enabled() {
		rs = c.reg.sp.StartAt(op.Span, span.ClassHCA, c.name, "verbs", "rdma_read", k.Now())
		c.reg.sp.AttrInt(rs, "size", int64(op.Size))
	}
	p.AdvanceBusy(c.reg.costs.PostWR)

	srcCtx := src.ctx
	if c.reg.inj == nil {
		// Fast path: the request packet and the data response are the two
		// stages of one pooled flight (see pool.go).
		fl := c.reg.getReadFlight()
		fl.c, fl.dst, fl.src, fl.srcCtx = c, dst, src, srcCtx
		fl.localAddr, fl.remoteAddr, fl.size = op.LocalAddr, op.RemoteAddr, op.Size
		fl.onComplete, fl.rs = op.OnComplete, rs
		c.reg.f.TransferActionCtx(c.ep, srcCtx.ep, c.reg.costs.ReadReqLen, fl, rs)
		return nil
	}
	if rs != 0 {
		orig := op.OnError
		op.OnError = func(at sim.Time) {
			c.reg.sp.AttrStr(rs, "error", "retry_exhausted")
			c.reg.sp.EndAt(rs, at)
			if orig != nil {
				orig(at)
			}
		}
	}
	c.readAttempt(op, dst, src, srcCtx, 1, rs)
	return nil
}

// readAttempt performs one try of a (possibly retransmitted) RDMA read.
func (c *Ctx) readAttempt(op ReadOp, dst, src *MR, srcCtx *Ctx, attempt int, rs span.ID) {
	k := c.reg.f.Kernel()
	inj := c.reg.inj
	if inj.CQError() {
		c.reg.mErrorCQEs.Inc()
		inj.Note(k.Now(), c.name, "cq-error", fmt.Sprintf("read size=%d attempt=%d", op.Size, attempt))
		c.retryOrFail("read", op.Size, attempt, k.Now(),
			func() { c.readAttempt(op, dst, src, srcCtx, attempt+1, rs) },
			op.OnError)
		return
	}
	reqTx, _, _, reqFate := c.reg.f.TransferFatedCtx(c.ep, srcCtx.ep, c.reg.costs.ReadReqLen, func() {
		var payload []byte
		if d := src.space.ReadAt(op.RemoteAddr, op.Size); d != nil {
			payload = make([]byte, op.Size)
			copy(payload, d)
		}
		respTx, _, _, respFate := c.reg.f.TransferFatedCtx(srcCtx.ep, c.ep, op.Size+c.reg.costs.RDMAHdr, func() {
			dst.space.WriteAt(op.LocalAddr, payload, op.Size)
			c.reg.sp.EndAt(rs, k.Now())
			if op.OnComplete != nil {
				op.OnComplete(k.Now())
			}
		}, rs)
		if respFate == fault.FateDrop || respFate == fault.FateCorrupt {
			c.retryOrFail("read-resp", op.Size, attempt, respTx,
				func() { c.readAttempt(op, dst, src, srcCtx, attempt+1, rs) },
				op.OnError)
		}
	}, rs)
	if reqFate == fault.FateDrop || reqFate == fault.FateCorrupt {
		c.retryOrFail("read-req", op.Size, attempt, reqTx,
			func() { c.readAttempt(op, dst, src, srcCtx, attempt+1, rs) },
			op.OnError)
	}
}

// Packet is a two-sided control message (RTS/RTR/FIN, rendezvous handshakes,
// eager data...). Payload stays an opaque Go value; Size is what travels on
// the wire.
type Packet struct {
	From    *Ctx
	Kind    string
	Size    int
	Payload interface{}
	Data    []byte // optional eager payload bytes

	// Span is the causal parent for the packet's fabric flight (0 = none).
	// Control packets don't get a verbs-layer span of their own — the
	// injection + wire spans attach directly to this parent.
	Span span.ID
}

// PostSend transmits a control packet to dst's inbox. The receiving process
// is not involved until it drains its inbox (PollInbox); arrival only
// signals dst.InboxCond. Under fault injection lost packets are
// retransmitted like any other work request, so the control plane tolerates
// the same faults as the data plane.
func (c *Ctx) PostSend(p *sim.Proc, dst *Ctx, pkt *Packet) {
	pkt.From = c
	p.AdvanceBusy(c.reg.costs.PostWR)
	if c.reg.inj == nil {
		fl := c.reg.getSendFlight()
		fl.dst, fl.pkt = dst, pkt
		c.reg.f.TransferActionCtx(c.ep, dst.ep, pkt.Size, fl, pkt.Span)
		return
	}
	c.sendAttempt(dst, pkt, 1)
}

// sendAttempt performs one try of a (possibly retransmitted) control send.
func (c *Ctx) sendAttempt(dst *Ctx, pkt *Packet, attempt int) {
	k := c.reg.f.Kernel()
	inj := c.reg.inj
	if inj.CQError() {
		c.reg.mErrorCQEs.Inc()
		inj.Note(k.Now(), c.name, "cq-error", fmt.Sprintf("send %s attempt=%d", pkt.Kind, attempt))
		c.retryOrFail("send", pkt.Size, attempt, k.Now(),
			func() { c.sendAttempt(dst, pkt, attempt+1) }, nil)
		return
	}
	txDone, _, _, fate := c.reg.f.TransferFatedCtx(c.ep, dst.ep, pkt.Size, func() { dst.deliver(pkt) }, pkt.Span)
	if fate == fault.FateDrop || fate == fault.FateCorrupt {
		c.retryOrFail("send", pkt.Size, attempt, txDone,
			func() { c.sendAttempt(dst, pkt, attempt+1) }, nil)
	}
}

// deliver appends to the inbox in handler context.
func (c *Ctx) deliver(pkt *Packet) {
	c.inbox = append(c.inbox, pkt)
	c.InboxCond.Broadcast()
}

// PollInbox drains and returns all packets that have arrived. The returned
// slice is valid until the caller's next PollInbox on this context: the two
// inbox buffers alternate (drain one while arrivals fill the other), so
// steady-state polling reuses storage instead of allocating per batch.
func (c *Ctx) PollInbox() []*Packet {
	if len(c.inbox) == 0 {
		return nil
	}
	pkts := c.inbox
	c.inbox = c.inboxAlt[:0]
	c.inboxAlt = pkts
	return pkts
}

// InboxLen reports queued packets without draining.
func (c *Ctx) InboxLen() int { return len(c.inbox) }

// AwaitInbox blocks p until at least one packet is queued.
func (c *Ctx) AwaitInbox(p *sim.Proc) {
	for len(c.inbox) == 0 {
		c.InboxCond.Wait(p)
	}
}
