package verbs

import (
	"repro/internal/mem"
	"repro/internal/sim"
)

// WriteOp describes one RDMA-write work request.
type WriteOp struct {
	LocalKey   Key      // lkey covering the source range
	LocalAddr  mem.Addr // source address (in the lkey's space)
	RemoteKey  Key      // rkey covering the destination range
	RemoteAddr mem.Addr // destination address
	Size       int

	// OnLocalComplete fires (handler context) when the sender endpoint has
	// finished injecting the message (CQE on the posting side).
	OnLocalComplete func(at sim.Time)
	// OnRemoteComplete fires (handler context) when the data has landed in
	// the destination memory.
	OnRemoteComplete func(at sim.Time)
	// Notify, if non-nil, is delivered into the destination context's inbox
	// with the data (RDMA write with immediate).
	Notify *Packet
}

// PostWrite posts an RDMA write on behalf of p through c's endpoint.
// Data is read from the lkey's backing space (which, for cross-GVMI mkeys,
// is a *host* space even though c lives on the DPU) and written into the
// rkey's space. Both keys are validated like an HCA would.
func (c *Ctx) PostWrite(p *sim.Proc, op WriteOp) error {
	src, err := c.reg.lookupKey(op.LocalKey, op.LocalAddr, op.Size)
	if err != nil {
		return err
	}
	dst, err := c.reg.lookupKey(op.RemoteKey, op.RemoteAddr, op.Size)
	if err != nil {
		return err
	}
	p.AdvanceBusy(c.reg.costs.PostWR)

	var payload []byte
	if d := src.space.ReadAt(op.LocalAddr, op.Size); d != nil {
		payload = make([]byte, op.Size)
		copy(payload, d)
	}
	k := c.reg.f.Kernel()
	dstCtx := dst.ctx
	txDone, _ := c.reg.f.Transfer(c.ep, dstCtx.ep, op.Size+c.reg.costs.RDMAHdr, func() {
		dst.space.WriteAt(op.RemoteAddr, payload, op.Size)
		if op.Notify != nil {
			dstCtx.deliver(op.Notify)
		}
		if op.OnRemoteComplete != nil {
			op.OnRemoteComplete(k.Now())
		}
	})
	if op.OnLocalComplete != nil {
		k.At(txDone-k.Now(), func() { op.OnLocalComplete(k.Now()) })
	}
	return nil
}

// ReadOp describes one RDMA-read work request.
type ReadOp struct {
	LocalKey   Key      // lkey covering the destination range (local)
	LocalAddr  mem.Addr // where fetched data lands
	RemoteKey  Key      // rkey covering the remote source
	RemoteAddr mem.Addr
	Size       int

	// OnComplete fires when the fetched data has landed locally.
	OnComplete func(at sim.Time)
}

// PostRead posts an RDMA read: a small request travels to the remote
// endpoint, whose HCA streams the data back without remote CPU involvement.
func (c *Ctx) PostRead(p *sim.Proc, op ReadOp) error {
	dst, err := c.reg.lookupKey(op.LocalKey, op.LocalAddr, op.Size)
	if err != nil {
		return err
	}
	src, err := c.reg.lookupKey(op.RemoteKey, op.RemoteAddr, op.Size)
	if err != nil {
		return err
	}
	p.AdvanceBusy(c.reg.costs.PostWR)

	k := c.reg.f.Kernel()
	srcCtx := src.ctx
	// Request packet to the remote HCA.
	c.reg.f.Transfer(c.ep, srcCtx.ep, c.reg.costs.ReadReqLen, func() {
		// Remote HCA responds autonomously with the data.
		var payload []byte
		if d := src.space.ReadAt(op.RemoteAddr, op.Size); d != nil {
			payload = make([]byte, op.Size)
			copy(payload, d)
		}
		c.reg.f.Transfer(srcCtx.ep, c.ep, op.Size+c.reg.costs.RDMAHdr, func() {
			dst.space.WriteAt(op.LocalAddr, payload, op.Size)
			if op.OnComplete != nil {
				op.OnComplete(k.Now())
			}
		})
	})
	return nil
}

// Packet is a two-sided control message (RTS/RTR/FIN, rendezvous handshakes,
// eager data...). Payload stays an opaque Go value; Size is what travels on
// the wire.
type Packet struct {
	From    *Ctx
	Kind    string
	Size    int
	Payload interface{}
	Data    []byte // optional eager payload bytes
}

// PostSend transmits a control packet to dst's inbox. The receiving process
// is not involved until it drains its inbox (PollInbox); arrival only
// signals dst.InboxCond.
func (c *Ctx) PostSend(p *sim.Proc, dst *Ctx, pkt *Packet) {
	pkt.From = c
	p.AdvanceBusy(c.reg.costs.PostWR)
	c.reg.f.Transfer(c.ep, dst.ep, pkt.Size, func() { dst.deliver(pkt) })
}

// deliver appends to the inbox in handler context.
func (c *Ctx) deliver(pkt *Packet) {
	c.inbox = append(c.inbox, pkt)
	c.InboxCond.Broadcast()
}

// PollInbox drains and returns all packets that have arrived.
func (c *Ctx) PollInbox() []*Packet {
	if len(c.inbox) == 0 {
		return nil
	}
	pkts := c.inbox
	c.inbox = nil
	return pkts
}

// InboxLen reports queued packets without draining.
func (c *Ctx) InboxLen() int { return len(c.inbox) }

// AwaitInbox blocks p until at least one packet is queued.
func (c *Ctx) AwaitInbox(p *sim.Proc) {
	for len(c.inbox) == 0 {
		c.InboxCond.Wait(p)
	}
}
