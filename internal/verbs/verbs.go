// Package verbs models an InfiniBand-verbs-like NIC interface for the
// simulated cluster: protection-domain contexts, memory-region registration
// with lkey/rkey generation and a page-granular cost model, one-sided RDMA
// write/read, and two-sided control-message send/receive.
//
// Data really moves: RDMA operations copy bytes between simulated address
// spaces when buffers are payload-backed, so end-to-end integrity is
// testable. All CPU-side costs (registration, posting a work request) are
// charged to the posting process; wire costs are charged to the fabric
// endpoints.
package verbs

import (
	"errors"
	"fmt"

	"repro/internal/fabric"
	"repro/internal/fault"
	"repro/internal/mem"
	"repro/internal/metrics"
	"repro/internal/sim"
	"repro/internal/span"
)

// Key is an lkey/rkey handle returned by registration.
type Key uint32

// CostConfig models the CPU costs of verbs operations.
type CostConfig struct {
	RegBase    sim.Time // fixed cost of ibv_reg_mr
	RegPerPage sim.Time // additional cost per pinned page
	PageSize   int
	PostWR     sim.Time // CPU cost to post one work request
	RDMAHdr    int      // wire header bytes added to each RDMA op
	ReadReqLen int      // wire size of an RDMA-read request
}

// DefaultCosts returns costs loosely calibrated to ConnectX-6-class
// hardware: ~2us base registration plus ~0.25us/page, ~80ns per posted WR.
func DefaultCosts() CostConfig {
	return CostConfig{
		RegBase:    2 * sim.Microsecond,
		RegPerPage: 250 * sim.Nanosecond,
		PageSize:   4096,
		PostWR:     80 * sim.Nanosecond,
		RDMAHdr:    30,
		ReadReqLen: 30,
	}
}

// RegCost returns the registration cost for a region of size bytes.
func (c CostConfig) RegCost(size int) sim.Time {
	pages := (size + c.PageSize - 1) / c.PageSize
	if pages < 1 {
		pages = 1
	}
	return c.RegBase + sim.Time(pages)*c.RegPerPage
}

// Registry is the cluster-wide key table (stands in for the HCA's MTT/MPT).
type Registry struct {
	f       *fabric.Fabric
	costs   CostConfig
	nextKey Key
	mrs     map[Key]*MR
	inj     *fault.Injector // nil = no fault injection
	sp      *span.Collector // nil = no span tracing

	// Free lists for the pooled hot-path records (see pool.go). The
	// simulation is single-threaded, so plain slices suffice.
	wfFree []*writeFlight
	rfFree []*readFlight
	sfFree []*sendFlight
	pkFree []*Packet

	// Stats
	Registrations int64
	RegTime       sim.Time

	// Metric handles; nil (inert) when no metrics registry is attached.
	mRetries    *metrics.Counter
	mBackoffNS  *metrics.Counter
	mErrorCQEs  *metrics.Counter
	mRegLatency *metrics.Histogram

	// Per-endpoint retry gauges (rich telemetry only): cumulative
	// retransmissions attributed to the injecting endpoint, a congestion
	// signal windowed readers difference. Lazily bound per endpoint name.
	met        *metrics.Registry
	rich       bool
	mEpRetries map[string]*metrics.Gauge
}

// NewRegistry creates the key table for one simulation.
func NewRegistry(f *fabric.Fabric, costs CostConfig) *Registry {
	return &Registry{f: f, costs: costs, nextKey: 100, mrs: make(map[Key]*MR)}
}

// Costs returns the registry's cost configuration.
func (r *Registry) Costs() CostConfig { return r.costs }

// Fabric returns the underlying fabric.
func (r *Registry) Fabric() *fabric.Fabric { return r.f }

// SetInjector attaches a fault injector: posted operations then draw error
// CQEs and fabric fates, and failed attempts are retransmitted with
// exponential backoff up to the injector's retry budget. Nil (the default)
// keeps the original no-error fast paths, bit-identical to a build without
// the fault subsystem.
func (r *Registry) SetInjector(inj *fault.Injector) { r.inj = inj }

// Injector returns the attached fault injector (nil when faults are off).
func (r *Registry) Injector() *fault.Injector { return r.inj }

// SetMetrics attaches a metrics registry; nil disables metrics. Like the
// fault injector, metrics never consume virtual time.
func (r *Registry) SetMetrics(m *metrics.Registry) {
	if !m.Enabled() {
		r.mRetries, r.mBackoffNS, r.mErrorCQEs, r.mRegLatency = nil, nil, nil, nil
		return
	}
	r.mRetries = m.Counter("verbs", "all", "retries")
	r.mBackoffNS = m.Counter("verbs", "all", "backoff_ns")
	r.mErrorCQEs = m.Counter("verbs", "all", "error_cqes")
	r.mRegLatency = m.Histogram("verbs", "all", "reg_latency_ns")
	r.met = m
}

// SetRichTelemetry opts retransmissions into per-endpoint attribution:
// each retry also bumps a "verbs"/<endpoint>/"endpoint_retries" gauge.
// Off by default — the extra series would change byte-identical legacy
// exports. Requires SetMetrics.
func (r *Registry) SetRichTelemetry(on bool) { r.rich = on }

// epRetryGauge returns (binding on first use) the retry gauge of one
// endpoint; nil when rich telemetry is off.
func (r *Registry) epRetryGauge(name string) *metrics.Gauge {
	if !r.rich || r.met == nil {
		return nil
	}
	if g, ok := r.mEpRetries[name]; ok {
		return g
	}
	if r.mEpRetries == nil {
		r.mEpRetries = make(map[string]*metrics.Gauge)
	}
	g := r.met.Gauge("verbs", name, "endpoint_retries")
	r.mEpRetries[name] = g
	return g
}

// SetSpans attaches a span collector; nil disables tracing. Registration
// and RDMA operations posted with a parent span (the *Ctx variants, or the
// Span field on WriteOp/ReadOp/Packet) then record verbs-layer spans
// parenting the fabric flights they cause. Span collection never consumes
// virtual time.
func (r *Registry) SetSpans(c *span.Collector) { r.sp = c }

// Spans returns the attached span collector (nil when tracing is off).
func (r *Registry) Spans() *span.Collector { return r.sp }

// Ctx is a per-process verbs context: the process's protection domain,
// address space, and the endpoint its work requests are injected through.
type Ctx struct {
	reg   *Registry
	name  string
	space *mem.Space
	ep    *fabric.Endpoint

	inbox     []*Packet
	inboxAlt  []*Packet // drained buffer, swapped back in by PollInbox
	InboxCond sim.Cond
}

// NewCtx opens a verbs context for a process whose memory is space and whose
// NIC port is ep.
func (r *Registry) NewCtx(name string, space *mem.Space, ep *fabric.Endpoint) *Ctx {
	return &Ctx{reg: r, name: name, space: space, ep: ep}
}

// Name returns the context's diagnostic name.
func (c *Ctx) Name() string { return c.name }

// Space returns the context's address space.
func (c *Ctx) Space() *mem.Space { return c.space }

// Endpoint returns the context's fabric port.
func (c *Ctx) Endpoint() *fabric.Endpoint { return c.ep }

// Registry returns the owning registry.
func (c *Ctx) Registry() *Registry { return c.reg }

// MR is a registered memory region.
type MR struct {
	ctx   *Ctx // protection domain owner (whose endpoint posts with lkey)
	space *mem.Space
	addr  mem.Addr
	size  int
	lkey  Key
	rkey  Key
}

// Addr returns the region's base address.
func (m *MR) Addr() mem.Addr { return m.addr }

// Size returns the region's length.
func (m *MR) Size() int { return m.size }

// LKey returns the local access key.
func (m *MR) LKey() Key { return m.lkey }

// RKey returns the remote access key.
func (m *MR) RKey() Key { return m.rkey }

// Ctx returns the owning context.
func (m *MR) Ctx() *Ctx { return m.ctx }

var (
	// ErrBadKey is returned when a key does not resolve to a region.
	ErrBadKey = errors.New("verbs: unknown key")
	// ErrOutOfRange is returned when an access exceeds a region's bounds.
	ErrOutOfRange = errors.New("verbs: access outside registered region")
)

// RegisterMR pins [addr, addr+size) in c's space, charging the registration
// cost to p. It corresponds to ibv_reg_mr. Under fault injection a
// registration attempt may fail (pinning pressure); each failed attempt
// pays the full cost and is retried until it succeeds.
func (c *Ctx) RegisterMR(p *sim.Proc, addr mem.Addr, size int) *MR {
	return c.RegisterMRCtx(p, addr, size, 0)
}

// RegisterMRCtx is RegisterMR carrying span context: when a collector is
// attached, the registration (including failed fault-injected attempts) is
// recorded as a "reg_mr" span under parent. Timing is identical to
// RegisterMR.
func (c *Ctx) RegisterMRCtx(p *sim.Proc, addr mem.Addr, size int, parent span.ID) *MR {
	cost := c.reg.costs.RegCost(size)
	start := p.Now()
	var rs span.ID
	if c.reg.sp.Enabled() {
		rs = c.reg.sp.StartAt(parent, span.ClassHCA, c.name, "verbs", "reg_mr", start)
		c.reg.sp.AttrInt(rs, "size", int64(size))
	}
	for c.reg.inj.RegFail() {
		c.reg.Registrations++
		c.reg.RegTime += cost
		p.AdvanceBusy(cost)
		c.reg.inj.Note(p.Now(), c.name, "reg-fail",
			fmt.Sprintf("addr=%d size=%d (retrying)", addr, size))
	}
	c.reg.Registrations++
	c.reg.RegTime += cost
	p.AdvanceBusy(cost)
	c.reg.mRegLatency.Observe(p.Now() - start)
	c.reg.sp.EndAt(rs, p.Now())
	return c.reg.insertMR(c, c.space, addr, size)
}

// insertMR adds a region to the key table without charging time (used by
// RegisterMR and by gvmi cross-registration, which has its own cost model).
func (r *Registry) insertMR(ctx *Ctx, space *mem.Space, addr mem.Addr, size int) *MR {
	r.nextKey += 2
	mr := &MR{ctx: ctx, space: space, addr: addr, size: size, lkey: r.nextKey, rkey: r.nextKey + 1}
	r.mrs[mr.lkey] = mr
	r.mrs[mr.rkey] = mr
	return mr
}

// InsertForeignMR registers a region owned by ctx but backed by another
// process's space. This is the primitive cross-GVMI builds on: the returned
// MR acts as an lkey for ctx while sourcing data from space.
func (r *Registry) InsertForeignMR(ctx *Ctx, space *mem.Space, addr mem.Addr, size int) *MR {
	return r.insertMR(ctx, space, addr, size)
}

// Deregister removes the region from the key table (ibv_dereg_mr).
func (m *MR) Deregister() {
	delete(m.ctx.reg.mrs, m.lkey)
	delete(m.ctx.reg.mrs, m.rkey)
}

// lookupKey resolves a key and validates the access range.
func (r *Registry) lookupKey(key Key, addr mem.Addr, size int) (*MR, error) {
	mr, ok := r.mrs[key]
	if !ok {
		return nil, fmt.Errorf("%w: %d", ErrBadKey, key)
	}
	if addr < mr.addr || int(addr-mr.addr)+size > mr.size {
		return nil, fmt.Errorf("%w: [%d,+%d) not in [%d,+%d)", ErrOutOfRange, addr, size, mr.addr, mr.size)
	}
	return mr, nil
}
