package verbs

import (
	"testing"

	"repro/internal/device"
	"repro/internal/fabric"
	"repro/internal/mem"
	"repro/internal/sim"
)

// The zero-alloc contract of the verbs hot path: once the flight pools,
// packet pool, inbox buffers, and event arena are warm, posting and
// completing RDMA writes, reads, and control sends allocates nothing.

type poolRig struct {
	k        *sim.Kernel
	reg      *Registry
	a, b     *Ctx
	mrA, mrB *MR
}

func newPoolRig(t *testing.T, backed bool) *poolRig {
	t.Helper()
	k := sim.NewKernel()
	f := fabric.New(k, fabric.DefaultConfig())
	reg := NewRegistry(f, DefaultCosts())
	spA, spB := mem.NewSpace("a"), mem.NewSpace("b")
	const size = 4096
	addrA := spA.Alloc(size, backed).Addr()
	addrB := spB.Alloc(size, backed).Addr()
	a := reg.NewCtx("a", spA, f.NewEndpoint("n0.host", 0, device.Baseline().HostPort))
	b := reg.NewCtx("b", spB, f.NewEndpoint("n1.host", 1, device.Baseline().HostPort))
	rig := &poolRig{k: k, reg: reg, a: a, b: b}
	k.Spawn("setup", func(p *sim.Proc) {
		rig.mrA = a.RegisterMR(p, addrA, size)
		rig.mrB = b.RegisterMR(p, addrB, size)
	})
	k.Run()
	return rig
}

func TestPostWriteSteadyStateAllocFree(t *testing.T) {
	for _, backed := range []bool{false, true} {
		rig := newPoolRig(t, backed)
		done := 0
		onRemote := func(at sim.Time) { done++ }
		op := WriteOp{}
		rig.k.Spawn("writer", func(p *sim.Proc) {
			for {
				op = WriteOp{
					LocalKey: rig.mrA.LKey(), LocalAddr: rig.mrA.Addr(),
					RemoteKey: rig.mrB.RKey(), RemoteAddr: rig.mrB.Addr(),
					Size: 1024, OnRemoteComplete: onRemote,
				}
				if err := rig.a.PostWrite(p, op); err != nil {
					panic(err)
				}
				p.Sleep(10 * sim.Microsecond)
			}
		})
		rig.k.RunUntil(rig.k.Now() + 200*sim.Microsecond) // warm pools
		allocs := testing.AllocsPerRun(100, func() {
			rig.k.RunUntil(rig.k.Now() + 10*sim.Microsecond)
		})
		before := done
		rig.k.RunUntil(rig.k.Now() + 50*sim.Microsecond)
		rig.k.Shutdown()
		if done == before {
			t.Fatalf("backed=%v: writes stopped completing", backed)
		}
		if allocs > 0 {
			t.Fatalf("backed=%v: PostWrite allocated %.2f objects per op in steady state, want 0", backed, allocs)
		}
	}
}

func TestPostReadSteadyStateAllocFree(t *testing.T) {
	for _, backed := range []bool{false, true} {
		rig := newPoolRig(t, backed)
		done := 0
		onComplete := func(at sim.Time) { done++ }
		rig.k.Spawn("reader", func(p *sim.Proc) {
			for {
				err := rig.a.PostRead(p, ReadOp{
					LocalKey: rig.mrA.LKey(), LocalAddr: rig.mrA.Addr(),
					RemoteKey: rig.mrB.RKey(), RemoteAddr: rig.mrB.Addr(),
					Size: 1024, OnComplete: onComplete,
				})
				if err != nil {
					panic(err)
				}
				p.Sleep(10 * sim.Microsecond)
			}
		})
		rig.k.RunUntil(rig.k.Now() + 200*sim.Microsecond)
		allocs := testing.AllocsPerRun(100, func() {
			rig.k.RunUntil(rig.k.Now() + 10*sim.Microsecond)
		})
		before := done
		rig.k.RunUntil(rig.k.Now() + 50*sim.Microsecond)
		rig.k.Shutdown()
		if done == before {
			t.Fatalf("backed=%v: reads stopped completing", backed)
		}
		if allocs > 0 {
			t.Fatalf("backed=%v: PostRead allocated %.2f objects per op in steady state, want 0", backed, allocs)
		}
	}
}

// A pooled control packet round trip — GetPacket, PostSend, receiver
// PollInbox + PutPacket — must be allocation-free once warm, including the
// double-buffered inbox drain.
func TestPostSendPooledRoundTripAllocFree(t *testing.T) {
	rig := newPoolRig(t, false)
	received := 0
	rig.k.Spawn("receiver", func(p *sim.Proc) {
		for {
			rig.b.AwaitInbox(p)
			for _, pkt := range rig.b.PollInbox() {
				received++
				rig.reg.PutPacket(pkt)
			}
		}
	}).SetDaemon(true)
	rig.k.Spawn("sender", func(p *sim.Proc) {
		for {
			pkt := rig.reg.GetPacket()
			pkt.Kind, pkt.Size = "ctrl", 64
			rig.a.PostSend(p, rig.b, pkt)
			p.Sleep(10 * sim.Microsecond)
		}
	}).SetDaemon(true)
	rig.k.RunUntil(rig.k.Now() + 200*sim.Microsecond)
	allocs := testing.AllocsPerRun(100, func() {
		rig.k.RunUntil(rig.k.Now() + 10*sim.Microsecond)
	})
	before := received
	rig.k.RunUntil(rig.k.Now() + 50*sim.Microsecond)
	rig.k.Shutdown()
	if received == before {
		t.Fatal("control packets stopped arriving")
	}
	if allocs > 0 {
		t.Fatalf("pooled PostSend round trip allocated %.2f objects per op in steady state, want 0", allocs)
	}
}

// PutPacket must fully scrub a packet before reuse: a stale payload or span
// leaking into the next sender would corrupt an unrelated protocol.
func TestPutPacketScrubs(t *testing.T) {
	rig := newPoolRig(t, false)
	pkt := rig.reg.GetPacket()
	pkt.Kind, pkt.Size, pkt.Payload, pkt.Data = "x", 9, "payload", []byte{1}
	rig.reg.PutPacket(pkt)
	got := rig.reg.GetPacket()
	if got != pkt {
		t.Fatal("pool did not recycle the packet")
	}
	if got.Kind != "" || got.Size != 0 || got.Payload != nil || got.Data != nil || got.From != nil || got.Span != 0 {
		t.Fatalf("recycled packet not scrubbed: %+v", *got)
	}
	rig.k.Shutdown()
}
