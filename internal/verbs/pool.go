package verbs

import (
	"repro/internal/mem"
	"repro/internal/sim"
	"repro/internal/span"
)

// Hot-path pooling. Every RDMA operation posted on the no-injector fast
// path used to allocate a delivery closure (plus a payload copy for backed
// buffers); every control packet was a fresh Packet. At scale — a 1024-rank
// alltoall posts about a million writes per iteration — those per-op
// allocations dominate the allocator profile. The flights below are pooled
// per Registry and recycle themselves from their own Fire, exactly the way
// the kernel's event arena recycles event slots: once warm, posting and
// completing an op touches no allocator at all (enforced by the
// AllocsPerRun tests in pool_test.go).
//
// The simulation is single-threaded (handlers and processes interleave on
// the kernel goroutine, even under sharded execution), so the free lists
// need no locking.

// writeFlight is one in-flight RDMA write: the state the delivery needs,
// carried as a sim.Action instead of a closure. buf is a grow-only payload
// scratch reused across flights.
type writeFlight struct {
	c      *Ctx
	dst    *MR
	dstCtx *Ctx
	addr   mem.Addr
	size   int
	buf    []byte
	backed bool
	notify *Packet
	onRem  func(at sim.Time)
	ws     span.ID
}

// Fire runs at the data's arrival time: it lands the payload, closes the op
// span, recycles the flight, then notifies. The flight returns to the pool
// before the callbacks run so a completion handler that posts another write
// can reuse the record — fields are copied out first, like event slots.
func (fl *writeFlight) Fire(at sim.Time) {
	c, dst, dstCtx := fl.c, fl.dst, fl.dstCtx
	addr, size := fl.addr, fl.size
	notify, onRem, ws := fl.notify, fl.onRem, fl.ws
	var payload []byte
	if fl.backed {
		payload = fl.buf
	}
	dst.space.WriteAt(addr, payload, size)
	c.reg.sp.EndAt(ws, at)
	c.reg.putWriteFlight(fl)
	if notify != nil {
		dstCtx.deliver(notify)
	}
	if onRem != nil {
		onRem(at)
	}
}

func (r *Registry) getWriteFlight() *writeFlight {
	if n := len(r.wfFree); n > 0 {
		fl := r.wfFree[n-1]
		r.wfFree = r.wfFree[:n-1]
		return fl
	}
	return &writeFlight{}
}

func (r *Registry) putWriteFlight(fl *writeFlight) {
	buf := fl.buf
	*fl = writeFlight{buf: buf[:0]}
	r.wfFree = append(r.wfFree, fl)
}

// readFlight is one in-flight RDMA read, pooled like writeFlight. It fires
// twice: stage 0 is the request arriving at the remote HCA (which reads the
// source and streams the response back, re-scheduling the same flight);
// stage 1 is the response landing locally.
type readFlight struct {
	c          *Ctx
	dst, src   *MR
	srcCtx     *Ctx
	localAddr  mem.Addr
	remoteAddr mem.Addr
	size       int
	stage      int
	buf        []byte
	backed     bool
	onComplete func(at sim.Time)
	rs         span.ID
}

func (fl *readFlight) Fire(at sim.Time) {
	c := fl.c
	if fl.stage == 0 {
		// Remote HCA responds autonomously with the data.
		if d := fl.src.space.ReadAt(fl.remoteAddr, fl.size); d != nil {
			fl.buf = append(fl.buf[:0], d...)
			fl.backed = true
		}
		fl.stage = 1
		c.reg.f.TransferActionCtx(fl.srcCtx.ep, c.ep, fl.size+c.reg.costs.RDMAHdr, fl, fl.rs)
		return
	}
	dst, addr, size := fl.dst, fl.localAddr, fl.size
	onC, rs := fl.onComplete, fl.rs
	var payload []byte
	if fl.backed {
		payload = fl.buf
	}
	dst.space.WriteAt(addr, payload, size)
	c.reg.sp.EndAt(rs, at)
	c.reg.putReadFlight(fl)
	if onC != nil {
		onC(at)
	}
}

func (r *Registry) getReadFlight() *readFlight {
	if n := len(r.rfFree); n > 0 {
		fl := r.rfFree[n-1]
		r.rfFree = r.rfFree[:n-1]
		return fl
	}
	return &readFlight{}
}

func (r *Registry) putReadFlight(fl *readFlight) {
	buf := fl.buf
	*fl = readFlight{buf: buf[:0]}
	r.rfFree = append(r.rfFree, fl)
}

// sendFlight is one in-flight control send: the pooled deliverable that
// hands a Packet to its destination inbox at arrival time.
type sendFlight struct {
	dst *Ctx
	pkt *Packet
}

func (fl *sendFlight) Fire(at sim.Time) {
	dst, pkt := fl.dst, fl.pkt
	fl.dst, fl.pkt = nil, nil
	dst.reg.sfFree = append(dst.reg.sfFree, fl)
	dst.deliver(pkt)
}

func (r *Registry) getSendFlight() *sendFlight {
	if n := len(r.sfFree); n > 0 {
		fl := r.sfFree[n-1]
		r.sfFree = r.sfFree[:n-1]
		return fl
	}
	return &sendFlight{}
}

// GetPacket returns a zeroed control packet from the registry's free list.
// Callers on per-message hot paths (the MPI eager/rendezvous control plane,
// the proxy's delivery notifications) pair it with PutPacket at the point
// of consumption; one-shot callers can keep allocating their own Packets —
// the pool is an optimization, never a requirement.
func (r *Registry) GetPacket() *Packet {
	if n := len(r.pkFree); n > 0 {
		p := r.pkFree[n-1]
		r.pkFree = r.pkFree[:n-1]
		return p
	}
	return &Packet{}
}

// PutPacket recycles a consumed packet. The caller must be the packet's
// final owner: after Put the packet's fields are zeroed and the next
// GetPacket may hand it to an unrelated sender. Putting a packet that did
// not come from GetPacket is allowed (it joins the pool).
func (r *Registry) PutPacket(p *Packet) {
	if p == nil {
		return
	}
	*p = Packet{}
	r.pkFree = append(r.pkFree, p)
}
