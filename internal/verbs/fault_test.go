package verbs

import (
	"bytes"
	"testing"

	"repro/internal/fault"
	"repro/internal/metrics"
	"repro/internal/sim"
)

// faultRig is a rig with an injector attached.
func newFaultRig(n int, cfg *fault.Config) (*rig, *fault.Injector) {
	rg := newRig(n)
	in := fault.NewInjector(cfg)
	rg.f.SetInjector(in)
	rg.r.SetInjector(in)
	return rg, in
}

// Under heavy drops the write is retransmitted until it lands; the payload
// still arrives intact and the retry counter records the losses.
func TestWriteRetriesUnderDrops(t *testing.T) {
	cfg := fault.DefaultConfig(3)
	cfg.DropRate = 0.5
	rg, in := newFaultRig(2, cfg)
	src := rg.sp[0].Alloc(4096, true)
	dst := rg.sp[1].Alloc(4096, true)
	copy(src.Bytes(), bytes.Repeat([]byte{0xAB}, 4096))

	var done sim.Time
	rg.k.Spawn("p", func(p *sim.Proc) {
		smr := rg.ctx[0].RegisterMR(p, src.Addr(), 4096)
		dmr := rg.ctx[1].RegisterMR(p, dst.Addr(), 4096)
		for i := 0; i < 20; i++ {
			if err := rg.ctx[0].PostWrite(p, WriteOp{
				LocalKey: smr.LKey(), LocalAddr: src.Addr(),
				RemoteKey: dmr.RKey(), RemoteAddr: dst.Addr(), Size: 4096,
				OnRemoteComplete: func(at sim.Time) { done = at },
			}); err != nil {
				t.Fatalf("PostWrite: %v", err)
			}
		}
	})
	rg.k.Run()
	if done == 0 {
		t.Fatal("write never completed")
	}
	if !bytes.Equal(dst.Bytes(), src.Bytes()) {
		t.Fatal("payload corrupted")
	}
	if in.Stats.Drops == 0 || in.Stats.Retries == 0 {
		t.Fatalf("no retries recorded under 50%% drops: %+v", in.Stats)
	}
	if in.Stats.Exhausted != 0 {
		t.Fatalf("retry budget exhausted unexpectedly: %+v", in.Stats)
	}
}

// With a 100% drop rate and a tiny retry budget the op must fail terminally
// through OnError, and the payload must never arrive.
func TestWriteRetryExhausted(t *testing.T) {
	cfg := fault.DefaultConfig(1)
	cfg.DropRate = 1.0
	cfg.Retry = fault.RetryConfig{MaxAttempts: 2, Backoff: sim.Microsecond, BackoffMax: sim.Microsecond}
	rg, in := newFaultRig(2, cfg)
	src := rg.sp[0].Alloc(64, true)
	dst := rg.sp[1].Alloc(64, true)
	copy(src.Bytes(), bytes.Repeat([]byte{0xFF}, 64))

	var failedAt sim.Time
	completed := false
	rg.k.Spawn("p", func(p *sim.Proc) {
		smr := rg.ctx[0].RegisterMR(p, src.Addr(), 64)
		dmr := rg.ctx[1].RegisterMR(p, dst.Addr(), 64)
		if err := rg.ctx[0].PostWrite(p, WriteOp{
			LocalKey: smr.LKey(), LocalAddr: src.Addr(),
			RemoteKey: dmr.RKey(), RemoteAddr: dst.Addr(), Size: 64,
			OnRemoteComplete: func(sim.Time) { completed = true },
			OnError:          func(at sim.Time) { failedAt = at },
		}); err != nil {
			t.Fatalf("PostWrite: %v", err)
		}
	})
	rg.k.Run()
	if completed {
		t.Fatal("write completed despite 100% drops")
	}
	if failedAt == 0 {
		t.Fatal("OnError never fired")
	}
	if in.Stats.Exhausted != 1 || in.Stats.Retries != 1 {
		t.Fatalf("want 1 retry + 1 exhausted, got %+v", in.Stats)
	}
	for _, b := range dst.Bytes() {
		if b != 0 {
			t.Fatal("dropped write delivered bytes")
		}
	}
}

// Error CQEs (pre-wire faults) are retried like wire losses.
func TestCQErrorRetried(t *testing.T) {
	cfg := fault.DefaultConfig(5)
	cfg.CQErrorRate = 0.5
	rg, in := newFaultRig(2, cfg)
	src := rg.sp[0].Alloc(256, true)
	dst := rg.sp[1].Alloc(256, true)
	copy(src.Bytes(), bytes.Repeat([]byte{0x11}, 256))

	done := 0
	rg.k.Spawn("p", func(p *sim.Proc) {
		smr := rg.ctx[0].RegisterMR(p, src.Addr(), 256)
		dmr := rg.ctx[1].RegisterMR(p, dst.Addr(), 256)
		for i := 0; i < 20; i++ {
			if err := rg.ctx[0].PostWrite(p, WriteOp{
				LocalKey: smr.LKey(), LocalAddr: src.Addr(),
				RemoteKey: dmr.RKey(), RemoteAddr: dst.Addr(), Size: 256,
				OnRemoteComplete: func(sim.Time) { done++ },
			}); err != nil {
				t.Fatalf("PostWrite: %v", err)
			}
		}
	})
	rg.k.Run()
	if done != 20 {
		t.Fatalf("completed %d/20 writes", done)
	}
	if in.Stats.CQErrors == 0 {
		t.Fatalf("no CQ errors drawn at 50%%: %+v", in.Stats)
	}
	if !bytes.Equal(dst.Bytes(), src.Bytes()) {
		t.Fatal("payload corrupted")
	}
}

// RDMA reads retry the whole round trip on the loss of either leg.
func TestReadRetriesUnderDrops(t *testing.T) {
	cfg := fault.DefaultConfig(9)
	cfg.DropRate = 0.4
	rg, in := newFaultRig(2, cfg)
	local := rg.sp[0].Alloc(512, true)
	remote := rg.sp[1].Alloc(512, true)
	copy(remote.Bytes(), bytes.Repeat([]byte{0x77}, 512))

	done := 0
	rg.k.Spawn("p", func(p *sim.Proc) {
		lmr := rg.ctx[0].RegisterMR(p, local.Addr(), 512)
		rmr := rg.ctx[1].RegisterMR(p, remote.Addr(), 512)
		for i := 0; i < 10; i++ {
			if err := rg.ctx[0].PostRead(p, ReadOp{
				LocalKey: lmr.LKey(), LocalAddr: local.Addr(),
				RemoteKey: rmr.RKey(), RemoteAddr: remote.Addr(), Size: 512,
				OnComplete: func(sim.Time) { done++ },
			}); err != nil {
				t.Fatalf("PostRead: %v", err)
			}
		}
	})
	rg.k.Run()
	if done != 10 {
		t.Fatalf("completed %d/10 reads", done)
	}
	if in.Stats.Drops == 0 || in.Stats.Retries == 0 {
		t.Fatalf("no read retries at 40%% drops: %+v", in.Stats)
	}
	if !bytes.Equal(local.Bytes(), remote.Bytes()) {
		t.Fatal("read payload wrong")
	}
}

// Control messages (two-sided sends) are also retried to delivery.
func TestSendRetriesUnderDrops(t *testing.T) {
	cfg := fault.DefaultConfig(11)
	cfg.DropRate = 0.5
	rg, in := newFaultRig(2, cfg)

	var got []*Packet
	rg.k.Spawn("recv", func(p *sim.Proc) {
		for len(got) < 5 {
			rg.ctx[1].AwaitInbox(p)
			got = append(got, rg.ctx[1].PollInbox()...)
		}
	})
	rg.k.Spawn("send", func(p *sim.Proc) {
		for i := 0; i < 5; i++ {
			rg.ctx[0].PostSend(p, rg.ctx[1], &Packet{Kind: "ctrl", Size: 64, Payload: i})
		}
	})
	rg.k.Run()
	if len(rg.k.Deadlocked) != 0 {
		t.Fatal("deadlock: control messages lost for good")
	}
	if len(got) != 5 {
		t.Fatalf("delivered %d/5 messages", len(got))
	}
	seen := map[int]bool{}
	for _, pkt := range got {
		seen[pkt.Payload.(int)] = true
	}
	if len(seen) != 5 {
		t.Fatalf("duplicate or missing payloads: %v", seen)
	}
	if in.Stats.Retries == 0 {
		t.Fatalf("no send retries at 50%% drops: %+v", in.Stats)
	}
}

// Failed registrations are retried; every failed try still pays the cost.
func TestRegFailRetried(t *testing.T) {
	cfg := fault.DefaultConfig(2)
	cfg.RegFailRate = 0.5
	rg, in := newFaultRig(1, cfg)
	var elapsed sim.Time
	rg.k.Spawn("p", func(p *sim.Proc) {
		for i := 0; i < 10; i++ {
			buf := rg.sp[0].Alloc(4096, false)
			rg.ctx[0].RegisterMR(p, buf.Addr(), 4096)
		}
		elapsed = p.Now()
	})
	rg.k.Run()
	if in.Stats.RegFails == 0 {
		t.Fatalf("no registration failures at 50%%: %+v", in.Stats)
	}
	wantRegs := int64(10) + in.Stats.RegFails
	if rg.r.Registrations != wantRegs {
		t.Fatalf("Registrations = %d, want %d (failed tries pay too)", rg.r.Registrations, wantRegs)
	}
	if want := sim.Time(wantRegs) * rg.r.Costs().RegCost(4096); elapsed != want {
		t.Fatalf("elapsed %v, want %v", elapsed, want)
	}
}

// A rate-zero injector must leave timing bit-identical to no injector.
func TestZeroRateInjectorZeroOverhead(t *testing.T) {
	run := func(cfg *fault.Config) sim.Time {
		var rg *rig
		if cfg != nil {
			rg, _ = newFaultRig(2, cfg)
		} else {
			rg = newRig(2)
		}
		src := rg.sp[0].Alloc(8192, true)
		dst := rg.sp[1].Alloc(8192, true)
		var done sim.Time
		rg.k.Spawn("p", func(p *sim.Proc) {
			smr := rg.ctx[0].RegisterMR(p, src.Addr(), 8192)
			dmr := rg.ctx[1].RegisterMR(p, dst.Addr(), 8192)
			for i := 0; i < 4; i++ {
				if err := rg.ctx[0].PostWrite(p, WriteOp{
					LocalKey: smr.LKey(), LocalAddr: src.Addr(),
					RemoteKey: dmr.RKey(), RemoteAddr: dst.Addr(), Size: 8192,
					OnRemoteComplete: func(at sim.Time) { done = at },
				}); err != nil {
					t.Fatalf("PostWrite: %v", err)
				}
			}
		})
		rg.k.Run()
		return done
	}
	bare := run(nil)
	silent := run(fault.DefaultConfig(123)) // all rates zero
	if bare == 0 || bare != silent {
		t.Fatalf("rate-zero injector changed timing: %v vs %v", bare, silent)
	}
}

// Rich telemetry attributes retransmissions to the injecting endpoint: the
// per-endpoint "endpoint_retries" gauge must agree with the aggregate retry
// counter, and must not exist at all when rich telemetry is off (the legacy
// metric set stays byte-identical).
func TestEndpointRetryGaugeUnderDrops(t *testing.T) {
	run := func(rich bool) (*metrics.Registry, *fault.Injector) {
		t.Helper()
		cfg := fault.DefaultConfig(3)
		cfg.DropRate = 0.5
		rg, in := newFaultRig(2, cfg)
		met := metrics.NewRegistry()
		rg.r.SetMetrics(met)
		rg.r.SetRichTelemetry(rich)
		src := rg.sp[0].Alloc(4096, true)
		dst := rg.sp[1].Alloc(4096, true)
		rg.k.Spawn("p", func(p *sim.Proc) {
			smr := rg.ctx[0].RegisterMR(p, src.Addr(), 4096)
			dmr := rg.ctx[1].RegisterMR(p, dst.Addr(), 4096)
			for i := 0; i < 20; i++ {
				if err := rg.ctx[0].PostWrite(p, WriteOp{
					LocalKey: smr.LKey(), LocalAddr: src.Addr(),
					RemoteKey: dmr.RKey(), RemoteAddr: dst.Addr(), Size: 4096,
				}); err != nil {
					t.Fatalf("PostWrite: %v", err)
				}
			}
		})
		rg.k.Run()
		return met, in
	}

	met, in := run(true)
	if in.Stats.Retries == 0 {
		t.Fatal("no retries under 50% drops; the gauge has nothing to attribute")
	}
	// Both rig endpoints are named "host", so one gauge collects every
	// injecting endpoint's retries and must match the aggregate counter.
	if got := met.Gauge("verbs", "host", "endpoint_retries").Value(); int64(got) != in.Stats.Retries {
		t.Fatalf("endpoint retry gauge = %v, want %d (injector total)", got, in.Stats.Retries)
	}
	if agg := met.Counter("verbs", "all", "retries").Value(); agg != in.Stats.Retries {
		t.Fatalf("aggregate retry counter = %d, want %d", agg, in.Stats.Retries)
	}

	met, in = run(false)
	if in.Stats.Retries == 0 {
		t.Fatal("rich-off run saw no retries; absence check is vacuous")
	}
	met.VisitGauges(func(key metrics.Key, _ *metrics.Gauge) {
		if key.Name == "endpoint_retries" {
			t.Fatalf("endpoint retry gauge exported with rich telemetry off: %+v", key)
		}
	})
}
