package core

import (
	"fmt"

	"repro/internal/datapath"
	"repro/internal/gvmi"
	"repro/internal/mem"
	"repro/internal/span"
	"repro/internal/verbs"
)

// GroupRequest records a complete communication pattern — sends, receives
// and local ordering barriers — for offload as a single unit (the Group
// Primitives of Section VI-B). Typical use, mirroring Listing 5's ring
// broadcast:
//
//	g := h.GroupStart()
//	if rank == 0 {
//	    g.Send(buf, size, right, tag)
//	    g.LocalBarrier()
//	} else {
//	    g.Recv(buf, size, left, tag)
//	    g.LocalBarrier()
//	    g.Send(buf, size, right, tag)
//	}
//	g.End()
//	h.GroupCall(g)   // offload the whole graph to the DPU
//	compute()        // overlap: the DPU progresses the ring
//	h.GroupWait(g)
//
// A request may be re-called; with the group cache enabled (Section VII-D)
// replays send only the request ID to the proxy.
type GroupRequest struct {
	h     *Host
	id    int
	path  datapath.Kind // datapath every send entry executes on
	ops   []GroupOp
	ended bool

	callSeq     int // GroupCall invocations
	doneSeq     int // completed calls (proxy's completion updates)
	sentToProxy bool

	// Crash-tolerance state (populated only when crashes are configured):
	// the gathered wire entries let the host re-execute the pattern itself,
	// and sentGen records the proxy generation the request was installed
	// under so a restart (= lost group cache) is detectable.
	wire    []wireOp
	sentGen int
	perCall map[int]int // recv entries per source host in one call

	// rootByCall remembers each outstanding call's root span so fallback
	// re-execution after a proxy failure stays attributed to the original
	// operation (entries are dropped as calls complete).
	rootByCall map[int]span.ID
}

// recvsPerCall returns how many receive entries one call expects from src.
func (g *GroupRequest) recvsPerCall(src int) int {
	if g.perCall == nil {
		g.perCall = make(map[int]int)
		for _, e := range g.wire {
			if e.Type == OpRecv {
				g.perCall[e.Src]++
			}
		}
	}
	return g.perCall[src]
}

// GroupOp is one recorded entry.
type GroupOp struct {
	Type OpType
	Addr mem.Addr
	Size int
	Peer int // destination (send) or source (recv)
	Tag  int
}

// GroupStart begins recording a new pattern (Group_Offload_start) on the
// framework's default datapath.
func (h *Host) GroupStart() *GroupRequest {
	return h.GroupStartVia(h.fw.DefaultPath())
}

// GroupStartVia begins recording a new pattern whose send entries execute on
// the given proxy datapath. The request's path is fixed at recording time:
// it is baked into the wire entries shipped to the DPU, so replays reuse it.
func (h *Host) GroupStartVia(kind datapath.Kind) *GroupRequest {
	if !kind.Valid() || kind == datapath.KindHostDirect {
		panic(fmt.Sprintf("core: GroupStartVia on non-proxy path %v", kind))
	}
	// As in SendOffloadVia: the recording rank's device decides what the
	// baked-in path degrades to (identity on full-capability profiles).
	kind = datapath.Resolve(kind, h.fw.CapsOfRank(h.rank))
	g := &GroupRequest{h: h, id: h.nextGroup, path: kind}
	h.nextGroup++
	h.groups[g.id] = g
	return g
}

// Path returns the datapath this request's send entries execute on.
func (g *GroupRequest) Path() datapath.Kind { return g.path }

// Done reports whether all issued calls of this request have completed.
func (g *GroupRequest) Done() bool { return g.doneSeq >= g.callSeq }

// Send records an offloaded send (Send_Goffload).
func (g *GroupRequest) Send(addr mem.Addr, size, dst, tag int) {
	g.record(GroupOp{Type: OpSend, Addr: addr, Size: size, Peer: g.h.peer(dst), Tag: tag})
}

// Recv records an offloaded receive (Recv_Goffload).
func (g *GroupRequest) Recv(addr mem.Addr, size, src, tag int) {
	g.record(GroupOp{Type: OpRecv, Addr: addr, Size: size, Peer: g.h.peer(src), Tag: tag})
}

// LocalBarrier records an ordering point (Local_barrier_Goffload): entries
// after it start only when every earlier entry — including receives
// performed by remote proxies — has completed. This is the primitive MPI
// cannot express without blocking the CPU.
func (g *GroupRequest) LocalBarrier() {
	g.record(GroupOp{Type: OpBarrier})
}

func (g *GroupRequest) record(op GroupOp) {
	if g.ended {
		panic("core: group request already ended")
	}
	g.ops = append(g.ops, op)
}

// End finishes recording (Group_Offload_end).
func (g *GroupRequest) End() {
	g.ended = true
}

// Ops returns the recorded entries (for inspection).
func (g *GroupRequest) Ops() []GroupOp { return g.ops }

// GroupCall offloads the recorded pattern to the host's proxy
// (Group_Offload_call, Figure 9). On the first call (or with the group
// cache disabled) it registers all buffers, gathers matching receive-entry
// metadata from the destination hosts, and ships the entire Group_op queue
// as one contiguous packet; replays send only the request ID.
func (h *Host) GroupCall(g *GroupRequest) { h.GroupCallCtx(g, 0) }

// GroupCallCtx is GroupCall carrying span context: parent (usually a
// collective's root span) becomes the causal parent of the host-side call
// work and of the proxy's execution of this call. Timing is identical to
// GroupCall.
func (h *Host) GroupCallCtx(g *GroupRequest, parent span.ID) {
	if !g.ended {
		panic("core: GroupCall before Group_Offload_end")
	}
	t0 := h.proc.Now()
	defer func() { h.OffloadTime += h.proc.Now() - t0 }()
	g.callSeq++
	px := h.fw.proxyFor(h.rank)
	if sp := h.spans(); sp.Enabled() {
		// Host-side call span (registration + gather + packet build) under
		// the root; the proxy's execution span parents to the root directly
		// so the critical path descends into DPU/HCA/wire work.
		gc := sp.Start(parent, span.ClassRank, h.entity(), "core", "group_call")
		sp.AttrInt(gc, "call", int64(g.callSeq))
		sp.AttrStr(gc, "path", g.path.String())
		if g.rootByCall == nil {
			g.rootByCall = make(map[int]span.ID)
		}
		g.rootByCall[g.callSeq] = parent
		h.curSpan = gc
		defer func() {
			h.curSpan = 0
			sp.End(gc)
		}()
	}

	if h.failedOver {
		// The proxy is dead: the host executes the pattern itself.
		if g.wire == nil {
			g.wire = h.buildWire(g, px)
		}
		h.startFallbackCall(g, g.callSeq)
		return
	}

	if h.fw.cfg.GroupCache && g.sentToProxy {
		// Host-side cache hit: "the host sends the request ID to the DPU".
		h.ctx.PostSend(h.proc, px.ctx, &verbs.Packet{
			Kind: "greplay", Size: h.fw.cfg.CtrlSize,
			Payload: &greplayMsg{HostRank: h.rank, GroupID: g.id, CallSeq: g.callSeq, Span: parent},
			Span:    parent,
		})
		if tr := h.fw.cl.Trace; tr.Enabled() {
			tr.Add(h.proc.Now(), fmt.Sprintf("rank%d", h.rank), "Group_Offload_call",
				fmt.Sprintf("replay id=%d call=%d", g.id, g.callSeq))
		}
		return
	}

	entries := h.buildWire(g, px)

	// One contiguous Group_Offload_packet to the proxy.
	h.ctx.PostSend(h.proc, px.ctx, &verbs.Packet{
		Kind: "group",
		Size: h.fw.cfg.CtrlSize + len(entries)*h.fw.cfg.GroupOpWireSize,
		Payload: &groupPacket{
			HostRank: h.rank, GroupID: g.id, CallSeq: g.callSeq, Entries: entries, Span: parent,
		},
		Span: parent,
	})
	g.sentToProxy = true
	if h.fw.crashesConfigured() {
		g.wire = entries
		g.sentGen = px.gen
	}
	if tr := h.fw.cl.Trace; tr.Enabled() {
		tr.Add(h.proc.Now(), fmt.Sprintf("rank%d", h.rank), "Group_Offload_call",
			fmt.Sprintf("full id=%d entries=%d", g.id, len(entries)))
	}
}

// buildWire performs the gather phase of Group_Offload_call: register every
// buffer, push receive-entry metadata to the source hosts, and match each
// send entry with the metadata gathered from its destination.
func (h *Host) buildWire(g *GroupRequest, px *Proxy) []wireOp {
	// 1. Register buffers: send buffers as the request's datapath demands
	//    (GVMI cache for cross-GVMI, IB cache for staged), receive buffers
	//    through the IB cache — and push each receive entry's metadata to its
	//    source host.
	type sendReg struct {
		mkey gvmi.MKeyInfo
		rkey verbs.Key
	}
	sendRegs := make(map[int]sendReg) // op index -> registration
	for i, op := range g.ops {
		switch op.Type {
		case OpSend:
			var sr sendReg
			switch datapath.ForKind(g.path).SrcReg() {
			case datapath.RegGVMI:
				sr.mkey = h.gvmiRegister(px, op.Addr, op.Size)
			case datapath.RegIB:
				sr.rkey = h.ibRegister(op.Addr, op.Size).RKey()
			default:
				panic(fmt.Sprintf("core: group send on non-proxy path %v", g.path))
			}
			sendRegs[i] = sr
		case OpRecv:
			mr := h.ibRegister(op.Addr, op.Size)
			peer := h.fw.hosts[op.Peer]
			h.ctx.PostSend(h.proc, peer.ctx, &verbs.Packet{
				Kind: "gmeta", Size: h.fw.cfg.CtrlSize,
				Payload: &gmetaMsg{
					DstRank: h.rank, Tag: op.Tag, Size: op.Size,
					DstAddr: op.Addr, RKey: mr.RKey(), DstGroup: g.id,
				},
			})
		}
	}

	// 2. Build wire entries; each send is matched with the corresponding
	//    receive entry gathered from its destination (rank/tag matching).
	entries := make([]wireOp, len(g.ops))
	for i, op := range g.ops {
		w := wireOp{Type: op.Type, Size: op.Size, Tag: op.Tag, Path: g.path}
		switch op.Type {
		case OpSend:
			w.SrcAddr, w.Dst = op.Addr, op.Peer
			w.MKey = sendRegs[i].mkey
			w.SrcRKey = sendRegs[i].rkey
			meta := h.awaitGmeta(op.Peer, op.Tag)
			if meta.Size != op.Size {
				panic(fmt.Sprintf("core: group size mismatch: send %d vs recv %d", op.Size, meta.Size))
			}
			w.DstAddr, w.DstRKey, w.DstGroup = meta.DstAddr, meta.RKey, meta.DstGroup
		case OpRecv:
			w.Src = op.Peer
		}
		entries[i] = w
	}
	return entries
}

// awaitGmeta blocks until receive-entry metadata from dst with the given
// tag has been gathered (FIFO per (dst, tag) pair).
func (h *Host) awaitGmeta(dst, tag int) *gmetaMsg {
	for {
		for i, m := range h.gmetaQ {
			if m.DstRank == dst && m.Tag == tag {
				h.gmetaQ = append(h.gmetaQ[:i], h.gmetaQ[i+1:]...)
				return m
			}
		}
		h.drainInbox()
		found := false
		for _, m := range h.gmetaQ {
			if m.DstRank == dst && m.Tag == tag {
				found = true
				break
			}
		}
		if !found && h.ctx.InboxLen() == 0 {
			h.ctx.InboxCond.Wait(h.proc)
		}
	}
}

// GroupWait blocks until every issued GroupCall of g has completed
// (Group_Wait): the host waits for the completion counter its proxy updates
// after the whole pattern has executed on the DPU.
func (h *Host) GroupWait(g *GroupRequest) {
	h.waitFor(func() bool { return g.doneSeq >= g.callSeq })
	if tr := h.fw.cl.Trace; tr.Enabled() {
		tr.Add(h.proc.Now(), fmt.Sprintf("rank%d", h.rank), "Group_Wait",
			fmt.Sprintf("id=%d call=%d", g.id, g.callSeq))
	}
}

// GroupTest polls for completion without blocking.
func (h *Host) GroupTest(g *GroupRequest) bool {
	h.progress()
	return g.doneSeq >= g.callSeq
}
