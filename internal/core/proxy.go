package core

import (
	"fmt"

	"repro/internal/cluster"
	"repro/internal/datapath"
	"repro/internal/gvmi"
	"repro/internal/mem"
	"repro/internal/metrics"
	"repro/internal/regcache"
	"repro/internal/sim"
	"repro/internal/span"
	"repro/internal/verbs"
)

// matchKey pairs RTS and RTR traffic: requests match on
// (source rank, destination rank, tag), FIFO within a key.
type matchKey struct{ src, dst, tag int }

// groupKey identifies a group request on the proxy side: the paper's DPU
// cache is "indexed by the host's request ID and rank".
type groupKey struct{ host, id int }

// deliveryKey attributes delivery counters exactly: destination host, its
// group request, and the source host.
type deliveryKey struct {
	dstHost  int
	dstGroup int
	srcHost  int
}

// Proxy is a worker process on a BlueField DPU serving the host processes
// mapped to it. Its progress engine runs as a dedicated daemon — the reason
// offloaded patterns advance without host CPU intervention.
type Proxy struct {
	fw     *Framework
	global int
	node   int
	local  int
	site   *cluster.Site
	ctx    *verbs.Ctx
	dsaCtx *verbs.Ctx // posts through the node's DSA engine port; nil without one
	proc   *sim.Proc
	gvmiID gvmi.ID

	// Crash state (fault injection). gen counts crash/restart transitions:
	// work posted to the proxy under an older generation has been lost, which
	// is how hosts detect state loss across a restart.
	crashed   bool
	crashedAt sim.Time
	gen       int

	crossCache *regcache.Cache[*verbs.MR] // first level: source host rank

	sendQ    map[matchKey][]*rtsMsg
	recvQ    map[matchKey][]*rtrMsg
	combined []pairMsg // matched send/recv pairs awaiting transfer
	deferred []func()  // actions queued by RDMA completions

	groups     map[groupKey]*proxyGroup
	groupList  []*proxyGroup // install order, for deterministic iteration
	deliveries map[deliveryKey]int

	stagePool map[int][]*stageBuf

	// Stats
	CtrlMsgs   int64
	RDMAWrites int64
	RDMAReads  int64
	StagedOps  int64
	EngineOps  int64
	GroupHits  int64
	GroupMiss  int64

	// sched is the per-tenant queueing/fairness state; nil on single-job
	// frameworks, where the control loop is untouched (see tenancy.go).
	sched *tenantSched

	// Metric handles; nil (inert) when metrics are off.
	mGroupHits *metrics.Counter
	mGroupMiss *metrics.Counter
	mQDepth    *metrics.Gauge
	mQDepthMax *metrics.Gauge
	mCrashes   *metrics.Counter // bound only under a crash-configured fault plan
	mRestarts  *metrics.Counter
}

type pairMsg struct {
	rts *rtsMsg
	rtr *rtrMsg
}

type stageBuf struct {
	buf *mem.Buffer
	mr  *verbs.MR
}

func newProxy(fw *Framework, global, node, local int, site *cluster.Site) *Proxy {
	px := &Proxy{
		fw:         fw,
		global:     global,
		node:       node,
		local:      local,
		site:       site,
		ctx:        site.Ctx,
		crossCache: regcache.New[*verbs.MR](fw.cl.Cfg.NP(), 0, func(mr *verbs.MR) { mr.Deregister() }),
		sendQ:      make(map[matchKey][]*rtsMsg),
		recvQ:      make(map[matchKey][]*rtrMsg),
		groups:     make(map[groupKey]*proxyGroup),
		deliveries: make(map[deliveryKey]int),
		stagePool:  make(map[int][]*stageBuf),
	}
	if site.Node.DSAEP != nil {
		px.dsaCtx = site.Ctx.Registry().NewCtx(site.Ctx.Name()+".dsa", site.Space, site.Node.DSAEP)
	}
	px.instrument()
	return px
}

// instrument binds the proxy's metric handles; nil-safe and idempotent (the
// series are get-or-create, so a crash that recreates the cross-registration
// cache re-attaches it to the same counters).
func (px *Proxy) instrument() {
	m := px.fw.cl.Met
	px.crossCache.Instrument(m, fmt.Sprintf("cross.proxy%d", px.global))
	if !m.Enabled() {
		return
	}
	name := fmt.Sprintf("proxy%d", px.global)
	px.mGroupHits = m.Counter("core", name, "group_hits")
	px.mGroupMiss = m.Counter("core", name, "group_misses")
	px.mQDepth = m.Gauge("core", name, "queue_depth")
	px.mQDepthMax = m.Gauge("core", name, "queue_depth_max")
	if px.fw.crashesConfigured() {
		// Pre-resolve the crash-path handles so crash/restart never pays a
		// registry lookup (or the fmt.Sprintf key build) at event time. Only
		// bound under a crash-configured plan, so fault-free runs export the
		// exact same series set as before.
		px.mCrashes = m.Counter("core", name, "crashes")
		px.mRestarts = m.Counter("core", name, "restarts")
	}
}

// sampleQueueDepth records the proxy's backlog (control inbox, deferred
// completions, matched-but-untransferred pairs) at group boundaries.
func (px *Proxy) sampleQueueDepth() {
	if px.mQDepth == nil {
		return
	}
	d := float64(px.ctx.InboxLen() + len(px.deferred) + len(px.combined))
	px.mQDepth.Set(d)
	px.mQDepthMax.SetMax(d)
}

// GlobalID returns the proxy's global index.
func (px *Proxy) GlobalID() int { return px.global }

// spans returns the cluster's span collector (nil when tracing is off).
func (px *Proxy) spans() *span.Collector { return px.fw.cl.Spans }

// entity returns the proxy's span/trace entity name.
func (px *Proxy) entity() string { return fmt.Sprintf("proxy%d", px.global) }

// run is the proxy progress engine (Figure 8 / Algorithm 1): drain control
// messages, fire matched transfers, resume blocked group schedules, repeat.
func (px *Proxy) run(p *sim.Proc) {
	px.proc = p
	for !px.fw.stopped {
		if px.crashed {
			// A dead process consumes nothing: anything that arrives while
			// down is silently lost (the reliability layer re-sends or the
			// hosts fail over).
			px.ctx.PollInbox()
			px.deferred, px.combined = nil, nil
			if px.crashed && !px.fw.stopped {
				px.ctx.InboxCond.Wait(p)
			}
			continue
		}
		progressed := false
		if px.sched != nil {
			progressed = px.tenantRound()
		} else {
			for _, pkt := range px.ctx.PollInbox() {
				px.handle(pkt)
				progressed = true
			}
		}
		for len(px.deferred) > 0 {
			fns := px.deferred
			px.deferred = nil
			for _, fn := range fns {
				fn()
			}
			progressed = true
		}
		if len(px.combined) > 0 {
			pairs := px.combined
			px.combined = nil
			for _, pr := range pairs {
				if s := px.sched; s != nil {
					t := s.ten.TenantOf[pr.rts.Src]
					t0 := px.proc.Now()
					px.transfer(pr)
					s.addBusy(t, px.proc.Now()-t0)
					px.wireCharge(t, pr.rts.Size)
				} else {
					px.transfer(pr)
				}
			}
			progressed = true
		}
		if px.sched != nil {
			if px.tenantGroupRound() {
				progressed = true
			}
		} else {
			for _, g := range px.activeGroups() {
				if px.advanceGroup(g) {
					progressed = true
				}
			}
		}
		if !progressed && px.idle() {
			px.ctx.InboxCond.Wait(p)
		}
	}
}

func (px *Proxy) idle() bool {
	return px.ctx.InboxLen() == 0 && len(px.deferred) == 0 && len(px.combined) == 0
}

// crash kills the proxy process at the scheduled virtual time (handler
// context): all in-memory state — match queues, group cache, delivery
// counters, staging pool — is lost. RDMA operations already on the wire
// still land (the HCA completes them), but the dead software never sends
// their notifications. A heartbeat-timeout later every host is woken so the
// loss can be detected.
func (px *Proxy) crash() {
	if px.crashed {
		return
	}
	fw := px.fw
	now := fw.cl.K.Now()
	px.crashed = true
	px.crashedAt = now
	px.gen++
	px.ctx.PollInbox() // queued packets die with the process
	px.sendQ = make(map[matchKey][]*rtsMsg)
	px.recvQ = make(map[matchKey][]*rtrMsg)
	px.combined, px.deferred = nil, nil
	px.groups = make(map[groupKey]*proxyGroup)
	px.groupList = nil
	px.deliveries = make(map[deliveryKey]int)
	px.stagePool = make(map[int][]*stageBuf)
	px.crossCache = regcache.New[*verbs.MR](fw.cl.Cfg.NP(), 0, func(mr *verbs.MR) { mr.Deregister() })
	px.instrument()
	px.initTenancy(fw.tenancy) // queued packets died with the process
	px.mCrashes.Inc()
	if inj := fw.cl.Inj; inj != nil {
		inj.Stats.Crashes++
		inj.Note(now, fmt.Sprintf("proxy%d", px.global), "crash", "process killed")
	}
	fw.cl.K.At(fw.hbTimeout(), func() {
		// The liveness counter in host memory has now been stale for a full
		// timeout: wake every host so Wait/GroupWait loops re-evaluate.
		for _, h := range fw.hosts {
			h.ctx.InboxCond.Broadcast()
		}
	})
}

// restart brings the proxy process back with empty state (handler context).
// The generation bump tells hosts that anything posted before is gone.
func (px *Proxy) restart() {
	if !px.crashed {
		return
	}
	fw := px.fw
	now := fw.cl.K.Now()
	px.crashed = false
	px.gen++
	px.mRestarts.Inc()
	if inj := fw.cl.Inj; inj != nil {
		inj.Stats.Restarts++
		inj.Note(now, fmt.Sprintf("proxy%d", px.global), "restart", "process restarted with empty state")
	}
	px.ctx.InboxCond.Broadcast()
	for _, h := range fw.hosts {
		h.ctx.InboxCond.Broadcast()
	}
}

// handle dispatches one control message (Figure 8's DPU handler).
func (px *Proxy) handle(pkt *verbs.Packet) {
	px.proc.AdvanceBusy(px.fw.cfg.ProxyHandleCost)
	px.CtrlMsgs++
	if tr := px.fw.cl.Trace; tr.Enabled() {
		tr.Add(px.proc.Now(), fmt.Sprintf("proxy%d", px.global), pkt.Kind, "")
	}
	switch m := pkt.Payload.(type) {
	case *rtsMsg:
		k := matchKey{m.Src, m.Dst, m.Tag}
		if q := px.recvQ[k]; len(q) > 0 {
			px.recvQ[k] = q[1:]
			px.combined = append(px.combined, pairMsg{rts: m, rtr: q[0]})
		} else {
			px.sendQ[k] = append(px.sendQ[k], m)
		}
	case *rtrMsg:
		k := matchKey{m.Src, m.Dst, m.Tag}
		if q := px.sendQ[k]; len(q) > 0 {
			px.sendQ[k] = q[1:]
			px.combined = append(px.combined, pairMsg{rts: q[0], rtr: m})
		} else {
			px.recvQ[k] = append(px.recvQ[k], m)
		}
	case *groupPacket:
		px.installGroup(m)
	case *greplayMsg:
		px.replayGroup(m)
	case *dlvMsg:
		px.deliveries[deliveryKey{m.DstHost, m.DstGroup, m.SrcHost}]++
	case *oneSidedMsg:
		px.handleOneSided(m)
	default:
		panic(fmt.Sprintf("core: proxy %d: unexpected packet %T", px.global, pkt.Payload))
	}
}

// transfer moves one matched basic-primitive pair on the datapath the
// sender chose (carried in the RTS), then FINs both hosts.
func (px *Proxy) transfer(pr pairMsg) {
	dp := datapath.ForKind(pr.rts.Path)
	ts := px.transferSpan(pr, dp.Kind().String())
	dp.Execute(px, datapath.Transfer{
		SrcHost: pr.rts.Src, DstRank: pr.rtr.Dst, Size: pr.rts.Size,
		MKey:    pr.rts.MKey,
		SrcAddr: pr.rts.SrcAddr, SrcRKey: pr.rts.SrcRKey,
		DstAddr: pr.rtr.DstAddr, DstRKey: pr.rtr.RKey,
		Span: ts, EndSpan: true, Trace: true,
	}, func() { px.finish(pr) })
}

// crossReg cross-registers a host mkey (through the cache when enabled,
// keyed by source host rank per Section VII-B). The span is created inside
// the create closure so cache hits — which cost nothing — record nothing.
func (px *Proxy) crossReg(srcHost int, info gvmi.MKeyInfo, parent span.ID) *verbs.MR {
	create := func() *verbs.MR {
		var s span.ID
		if sp := px.spans(); sp.Enabled() {
			s = sp.Start(parent, span.ClassHCA, px.entity(), "verbs", "cross_reg")
			sp.AttrInt(s, "size", int64(info.Size))
		}
		mr, err := px.fw.cl.GVMI.CrossRegister(px.proc, px.ctx, info)
		if err != nil {
			panic(fmt.Sprintf("core: proxy %d cross-registration: %v", px.global, err))
		}
		px.spans().End(s)
		return mr
	}
	if !px.fw.cfg.RegCaches {
		return create()
	}
	mr, _ := px.crossCache.GetOrCreate(srcHost, info.Addr, info.Size, create)
	return mr
}

// transferSpan opens the proxy-side "transfer" span of a matched pair,
// parented to the sender's root (0 when tracing is off).
func (px *Proxy) transferSpan(pr pairMsg, mech string) span.ID {
	sp := px.spans()
	if !sp.Enabled() {
		return 0
	}
	ts := sp.Start(pr.rts.Span, span.ClassProxy, px.entity(), "core", "transfer")
	sp.AttrInt(ts, "size", int64(pr.rts.Size))
	sp.AttrStr(ts, "mech", mech)
	if name := px.fw.tenantName(pr.rts.Src); name != "" {
		sp.AttrStr(ts, "tenant", name)
	}
	return ts
}

// finish sends the FIN packets to both hosts of a completed pair. Each FIN
// flight parents to the respective host's root span — the completion
// notification is the tail of that operation's critical path.
func (px *Proxy) finish(pr pairMsg) {
	px.sendFIN(pr.rts.Src, pr.rts.SrcReqID, pr.rts.Span)
	px.sendFIN(pr.rtr.Dst, pr.rtr.DstReqID, pr.rtr.Span)
}

func (px *Proxy) sendFIN(hostRank int, reqID int64, root span.ID) {
	h := px.fw.hosts[hostRank]
	px.ctx.PostSend(px.proc, h.ctx, &verbs.Packet{
		Kind: "fin", Size: px.fw.cfg.CtrlSize, Payload: &finMsg{ReqID: reqID},
		Span: root,
	})
}

// later queues fn for the next engine round (used from completion handlers,
// which run in kernel handler context). A crashed proxy's completions are
// discarded: the data is on the wire regardless, but the dead software
// never acts on the CQE.
func (px *Proxy) later(fn func()) {
	if px.crashed {
		return
	}
	px.deferred = append(px.deferred, fn)
	px.ctx.InboxCond.Broadcast()
}

// getStage returns a registered DPU staging buffer of at least size bytes
// (power-of-two pool; registration is charged to the proxy's ARM core on
// first allocation, recorded under parent when it happens).
func (px *Proxy) getStage(size int, parent span.ID) *stageBuf {
	cls := 1
	for cls < size {
		cls <<= 1
	}
	if pool := px.stagePool[cls]; len(pool) > 0 {
		sb := pool[len(pool)-1]
		px.stagePool[cls] = pool[:len(pool)-1]
		return sb
	}
	buf := px.site.Space.Alloc(cls, px.fw.cl.Cfg.BackedPayload)
	mr := px.ctx.RegisterMRCtx(px.proc, buf.Addr(), cls, parent)
	return &stageBuf{buf: buf, mr: mr}
}

func (px *Proxy) putStage(sb *stageBuf) {
	px.stagePool[sb.buf.Size()] = append(px.stagePool[sb.buf.Size()], sb)
}
