package core

import (
	"fmt"

	"repro/internal/datapath"
	"repro/internal/sim"
	"repro/internal/span"
	"repro/internal/verbs"
)

// proxyGroup is the DPU-side state of one offloaded group request — the
// entry of the paper's DPU group cache ("indexed by the host's request ID
// and rank", Section VII-D).
type proxyGroup struct {
	host    int
	id      int
	entries []wireOp

	callSeq     int // latest call requested by the host
	finishedSeq int // calls fully executed
	running     bool
	idx         int // next entry to process in the running call
	pending     int // RDMA writes posted but not yet completed
	numBarriers int

	// expected counts, per source host, of deliveries required so far
	// (cumulative across calls); compared against the proxy's delivery
	// counters — the barrier-counter mechanism of Section VII-C.
	expected map[int]int

	// cachedMRs memoizes cross-registrations per entry so replays skip even
	// the cache lookup ("the group entry queue also contains the GVMI
	// registration cache entry").
	cachedMRs []*verbs.MR

	// roots maps each pending call number to the host-side root span it
	// arrived under (dropped as calls complete); execSpan is the proxy's
	// execution span for the currently running call.
	roots    map[int]span.ID
	execSpan span.ID
}

// installGroup handles a full Group_Offload_packet.
func (px *Proxy) installGroup(m *groupPacket) {
	px.GroupMiss++
	px.mGroupMiss.Inc()
	px.sampleQueueDepth()
	k := groupKey{m.HostRank, m.GroupID}
	g := px.groups[k]
	if g == nil {
		g = &proxyGroup{host: m.HostRank, id: m.GroupID, expected: make(map[int]int)}
		px.groups[k] = g
		px.groupList = append(px.groupList, g)
	}
	g.entries = m.Entries
	g.cachedMRs = make([]*verbs.MR, len(m.Entries))
	if m.CallSeq > g.callSeq {
		g.callSeq = m.CallSeq
	}
	g.noteRoot(m.CallSeq, m.Span)
}

// noteRoot records the host-side root span a call arrived under.
func (g *proxyGroup) noteRoot(call int, root span.ID) {
	if root == 0 {
		return
	}
	if g.roots == nil {
		g.roots = make(map[int]span.ID)
	}
	g.roots[call] = root
}

// replayGroup handles a cache-hit replay: only the request ID travelled.
func (px *Proxy) replayGroup(m *greplayMsg) {
	g := px.groups[groupKey{m.HostRank, m.GroupID}]
	if g == nil {
		if px.fw.crashesConfigured() {
			// The group cache died with a crash; tell the host so it fails
			// over to host-progressed execution.
			h := px.fw.hosts[m.HostRank]
			px.ctx.PostSend(px.proc, h.ctx, &verbs.Packet{
				Kind: "gfail", Size: px.fw.cfg.CtrlSize,
				Payload: &gfailMsg{GroupID: m.GroupID, CallSeq: m.CallSeq},
			})
			return
		}
		panic(fmt.Sprintf("core: proxy %d: replay of unknown group %d/%d", px.global, m.HostRank, m.GroupID))
	}
	px.GroupHits++
	px.mGroupHits.Inc()
	px.sampleQueueDepth()
	if m.CallSeq > g.callSeq {
		g.callSeq = m.CallSeq
	}
	g.noteRoot(m.CallSeq, m.Span)
}

// activeGroups returns groups that can make progress, in install order
// (deterministic).
func (px *Proxy) activeGroups() []*proxyGroup {
	var out []*proxyGroup
	for _, g := range px.groupList {
		if g.running || g.finishedSeq < g.callSeq {
			out = append(out, g)
		}
	}
	return out
}

// recvsSatisfied checks the delivery counters against the group's expected
// receive counts (isRecvBarrierDone of Algorithm 1). When crashes are
// configured the counters live in the destination host's memory (RDMA
// counter writes, Section VII-C) so they survive a proxy failure; the proxy
// reads them across the PCIe switch.
func (px *Proxy) recvsSatisfied(g *proxyGroup) bool {
	if px.fw.crashesConfigured() {
		h := px.fw.hosts[g.host]
		for src, n := range g.expected {
			if h.dlvCnt[gsKey{g.id, src}] < n {
				return false
			}
		}
		return true
	}
	for src, n := range g.expected {
		if px.deliveries[deliveryKey{g.host, g.id, src}] < n {
			return false
		}
	}
	return true
}

// advanceGroup is the proxy-side engine of Algorithm 1: it walks the entry
// queue, posting sends, accounting receives, and blocking at barriers until
// preceding sends have completed locally and expected deliveries have
// arrived. When it cannot proceed it returns to the progress engine rather
// than spinning — the deadlock-avoidance requirement called out in the
// paper (one proxy may serve both ends of a dependency).
func (px *Proxy) advanceGroup(g *proxyGroup) bool {
	progressed := false
	if !g.running {
		if g.finishedSeq >= g.callSeq {
			return false
		}
		g.running = true
		g.idx = 0
		if sp := px.spans(); sp.Enabled() {
			// The execution span parents directly to the host-side root so
			// the critical path descends from the collective into DPU work.
			g.execSpan = sp.Start(g.roots[g.finishedSeq+1], span.ClassProxy,
				px.entity(), "core", "group_exec")
			sp.AttrInt(g.execSpan, "call", int64(g.finishedSeq+1))
			sp.AttrInt(g.execSpan, "entries", int64(len(g.entries)))
			if name := px.fw.tenantName(g.host); name != "" {
				sp.AttrStr(g.execSpan, "tenant", name)
			}
		}
		if px.fw.cfg.WarmupPerOp > 0 && g.finishedSeq < px.fw.cfg.WarmupCalls {
			// First-iterations setup penalty (staging-buffer and queue
			// setup per peer in the modelled baseline).
			px.proc.AdvanceBusy(px.fw.cfg.WarmupPerOp * sim.Time(len(g.entries)))
		}
		progressed = true
	}

	for g.idx < len(g.entries) {
		e := &g.entries[g.idx]
		switch e.Type {
		case OpSend:
			px.postGroupSend(g, g.idx)
			g.idx++
			progressed = true
		case OpRecv:
			g.expected[e.Src]++
			g.idx++
			progressed = true
		case OpBarrier:
			// "After all the preceding sends are completed ..." — and all
			// receives recorded so far must have been delivered by the
			// remote proxies.
			if g.pending > 0 || !px.recvsSatisfied(g) {
				return progressed
			}
			g.numBarriers++
			g.idx++
			progressed = true
		}
	}

	// End of the entry queue: the call completes when every posted write
	// has finished and every expected delivery has arrived.
	if g.pending > 0 || !px.recvsSatisfied(g) {
		return progressed
	}
	g.running = false
	g.finishedSeq++
	px.sampleQueueDepth()
	root := g.roots[g.finishedSeq]
	px.spans().End(g.execSpan)
	g.execSpan = 0
	delete(g.roots, g.finishedSeq)
	// Completion-counter update to the host (the paper RDMA-writes a
	// pre-registered counter; a minimal control packet has the same cost).
	// The flight parents to the root span: the completion notification is
	// the tail of the collective's critical path.
	h := px.fw.hosts[g.host]
	px.ctx.PostSend(px.proc, h.ctx, &verbs.Packet{
		Kind: "gdone", Size: px.fw.cfg.CtrlSize,
		Payload: &gdoneMsg{GroupID: g.id, CallSeq: g.finishedSeq},
		Span:    root,
	})
	return true
}

// postGroupSend issues the RDMA for one send entry on the datapath the
// entry was recorded with, and notifies the destination's proxy on
// completion. A cross-registration returned by the datapath is memoized per
// entry when the group cache is on, so replays skip even the cache lookup.
func (px *Proxy) postGroupSend(g *proxyGroup, idx int) {
	e := &g.entries[idx]
	callNum := g.finishedSeq + 1 // the call currently executing
	exec := g.execSpan           // captured: the field clears when the call ends
	notify := func() {
		g.pending--
		pay := &dlvMsg{
			SrcHost: g.host, DstHost: e.Dst, DstGroup: e.DstGroup,
			Call: callNum, Entry: idx,
		}
		if px.fw.crashesConfigured() {
			// Counter write into destination host memory (crash-safe).
			h := px.fw.hosts[e.Dst]
			px.ctx.PostSend(px.proc, h.dlvCtx, &verbs.Packet{
				Kind: "dlv", Size: px.fw.cfg.CtrlSize, Payload: pay, Span: exec,
			})
			return
		}
		dst := px.fw.proxyFor(e.Dst)
		px.ctx.PostSend(px.proc, dst.ctx, &verbs.Packet{
			Kind: "dlv", Size: px.fw.cfg.CtrlSize, Payload: pay, Span: exec,
		})
	}

	g.pending++
	if px.sched != nil {
		px.wireCharge(px.sched.ten.TenantOf[g.host], e.Size)
	}
	if tr := px.fw.cl.Trace; tr.Enabled() {
		tr.Add(px.proc.Now(), fmt.Sprintf("proxy%d", px.global), "group-send",
			fmt.Sprintf("host%d->%d size=%d", g.host, e.Dst, e.Size))
	}
	dp := datapath.ForKind(e.Path)
	mr := dp.Execute(px, datapath.Transfer{
		SrcHost: g.host, DstRank: e.Dst, Size: e.Size,
		MKey: e.MKey, Cached: g.cachedMRs[idx],
		SrcAddr: e.SrcAddr, SrcRKey: e.SrcRKey,
		DstAddr: e.DstAddr, DstRKey: e.DstRKey,
		Span: exec,
	}, notify)
	if mr != nil && px.fw.cfg.GroupCache {
		g.cachedMRs[idx] = mr
	}
}
