package core_test

import (
	"fmt"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/sim"
)

// Example_basicPrimitives is the paper's Listing 3: a ping-pong written
// with the Basic primitives (Send_Offload / Recv_Offload / Wait).
func Example_basicPrimitives() {
	cl := cluster.New(cluster.DefaultConfig(2, 1))
	sites := []*cluster.Site{cl.NewHostSite(0, "r0"), cl.NewHostSite(1, "r1")}
	fw := core.New(cl, core.DefaultConfig(), sites)
	fw.Start()

	const size = 1024
	for i := 0; i < 2; i++ {
		h := fw.Host(i)
		me := i
		cl.K.Spawn("rank", func(p *sim.Proc) {
			h.Bind(p)
			sbuf := sites[me].Space.Alloc(size, true)
			rbuf := sites[me].Space.Alloc(size, true)
			peer := 1 - me
			sq := h.SendOffload(sbuf.Addr(), size, peer, 3)
			rq := h.RecvOffload(rbuf.Addr(), size, peer, 3)
			h.WaitAll(sq, rq)
			if me == 0 {
				fmt.Println("ping-pong complete")
			}
		})
	}
	cl.K.Run()
	// Output: ping-pong complete
}

// Example_groupPrimitives is the paper's Listing 5: a ring broadcast
// recorded once with the Group primitives, offloaded whole to the DPU, and
// overlapped with compute. The data dependency between the receive and the
// forwarding send is expressed with Local_barrier_Goffload — something
// plain MPI nonblocking calls cannot do without CPU intervention.
func Example_groupPrimitives() {
	const (
		np   = 4
		size = 4096
	)
	cl := cluster.New(cluster.DefaultConfig(np, 1))
	sites := make([]*cluster.Site, np)
	for i := range sites {
		sites[i] = cl.NewHostSite(i, "r")
	}
	fw := core.New(cl, core.DefaultConfig(), sites)
	fw.Start()

	done := 0
	for i := 0; i < np; i++ {
		h := fw.Host(i)
		me := i
		cl.K.Spawn("rank", func(p *sim.Proc) {
			h.Bind(p)
			buf := sites[me].Space.Alloc(size, true)
			left := (me - 1 + np) % np
			right := (me + 1) % np

			g := h.GroupStart()
			if me == 0 {
				g.Send(buf.Addr(), size, right, 4)
				g.LocalBarrier()
			} else {
				g.Recv(buf.Addr(), size, left, 4)
				g.LocalBarrier()
				if right != 0 {
					g.Send(buf.Addr(), size, right, 4)
				}
			}
			g.End()

			h.GroupCall(g)            // offload the entire pattern
			p.AdvanceBusy(sim.Second) // do_compute(): the DPUs run the ring
			h.GroupWait(g)
			done++
		})
	}
	cl.K.Run()
	fmt.Printf("%d ranks finished the offloaded ring\n", done)
	// Output: 4 ranks finished the offloaded ring
}

// Example_oneSided shows the window API behind the OpenSHMEM-style layer:
// a put is a single control message to the initiator's proxy.
func Example_oneSided() {
	cl := cluster.New(cluster.DefaultConfig(2, 1))
	sites := []*cluster.Site{cl.NewHostSite(0, "r0"), cl.NewHostSite(1, "r1")}
	fw := core.New(cl, core.DefaultConfig(), sites)
	fw.Start()

	windows := make([]core.Window, 2)
	ready := 0
	var cond sim.Cond
	for i := 0; i < 2; i++ {
		h := fw.Host(i)
		me := i
		cl.K.Spawn("pe", func(p *sim.Proc) {
			h.Bind(p)
			heap := sites[me].Space.Alloc(8192, true)
			windows[me] = h.ExposeWindow(heap.Addr(), heap.Size())
			ready++
			cond.Broadcast()
			for ready < 2 {
				cond.Wait(p)
			}
			if me == 0 {
				copy(heap.Bytes(), []byte("hello, dpu"))
				h.Wait(h.PutOffload(windows[0], 0, windows[1], 0, 10))
			} else {
				p.AdvanceBusy(10 * sim.Millisecond) // target never calls in
				fmt.Printf("PE1 window holds %q\n", string(heap.Bytes()[:10]))
			}
		})
	}
	cl.K.Run()
	// Output: PE1 window holds "hello, dpu"
}
