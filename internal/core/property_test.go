package core

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/cluster"
	"repro/internal/mem"
	"repro/internal/sim"
)

// randomized end-to-end check of the group engine: arbitrary multi-round
// patterns — including forwarding chains where a buffer received in round r
// is re-sent in round r+1, the dependency class only Local_barrier_Goffload
// can express — must execute without deadlock and deliver byte-exact data,
// under either mechanism, with caches on or off, replayed multiple times.

type xferSpec struct {
	round    int
	src, dst int
	size     int
	srcBuf   int // buffer id
	dstBuf   int // buffer id (unique per transfer)
}

type patternSpec struct {
	nodes, ppn, proxies   int
	mech                  Mechanism
	regCaches, groupCache bool
	rounds                int
	xfers                 []xferSpec
	nbufs                 int
	bufOwner              []int
	bufSize               []int
	fresh                 []bool // filled locally (vs produced by a transfer)
	calls                 int
}

// genPattern builds a random, deadlock-free pattern: transfers are grouped
// into rounds; every rank separates rounds with a local barrier, so
// dependencies always point forward in round order.
func genPattern(rng *rand.Rand) *patternSpec {
	p := &patternSpec{
		nodes:      1 + rng.Intn(3),
		ppn:        1 + rng.Intn(3),
		proxies:    1 + rng.Intn(2),
		mech:       Mechanism(rng.Intn(2)),
		regCaches:  rng.Intn(2) == 0,
		groupCache: rng.Intn(2) == 0,
		rounds:     1 + rng.Intn(3),
		calls:      1 + rng.Intn(2),
	}
	np := p.nodes * p.ppn

	newBuf := func(owner, size int, freshly bool) int {
		id := p.nbufs
		p.nbufs++
		p.bufOwner = append(p.bufOwner, owner)
		p.bufSize = append(p.bufSize, size)
		p.fresh = append(p.fresh, freshly)
		return id
	}

	// receivedAt[rank] = buffer ids received by rank in earlier rounds,
	// usable as forward sources.
	receivedAt := make([][]int, np)
	for round := 0; round < p.rounds; round++ {
		n := rng.Intn(7)
		var recvThisRound [][2]int // (rank, buf)
		for i := 0; i < n; i++ {
			src := rng.Intn(np)
			dst := rng.Intn(np)
			if src == dst {
				continue
			}
			var srcBuf int
			if len(receivedAt[src]) > 0 && rng.Intn(2) == 0 {
				// Forward a previously received buffer.
				srcBuf = receivedAt[src][rng.Intn(len(receivedAt[src]))]
			} else {
				srcBuf = newBuf(src, 64+rng.Intn(4096), true)
			}
			dstBuf := newBuf(dst, p.bufSize[srcBuf], false)
			p.xfers = append(p.xfers, xferSpec{
				round: round, src: src, dst: dst,
				size: p.bufSize[srcBuf], srcBuf: srcBuf, dstBuf: dstBuf,
			})
			recvThisRound = append(recvThisRound, [2]int{dst, dstBuf})
		}
		for _, rb := range recvThisRound {
			receivedAt[rb[0]] = append(receivedAt[rb[0]], rb[1])
		}
	}
	return p
}

// expectedContents simulates the pattern's data flow for one call.
func (p *patternSpec) expectedContents(call int, contents [][]byte) {
	// Fresh buffers are (re)filled before every call.
	for id := range contents {
		if p.fresh[id] {
			b := make([]byte, p.bufSize[id])
			for i := range b {
				b[i] = byte(id*37 + call*101 + i)
			}
			contents[id] = b
		}
	}
	for round := 0; round < p.rounds; round++ {
		for _, x := range p.xfers {
			if x.round == round {
				contents[x.dstBuf] = contents[x.srcBuf]
			}
		}
	}
}

func (p *patternSpec) run(t *testing.T) bool {
	ccfg := cluster.DefaultConfig(p.nodes, p.ppn)
	ccfg.ProxiesPerDPU = p.proxies
	cl := cluster.New(ccfg)
	np := ccfg.NP()
	sites := make([]*cluster.Site, np)
	for i := range sites {
		sites[i] = cl.NewHostSite(cl.NodeOfRank(i), fmt.Sprintf("h%d", i))
	}
	cfg := DefaultConfig()
	cfg.Mechanism = p.mech
	cfg.RegCaches = p.regCaches
	cfg.GroupCache = p.groupCache
	fw := New(cl, cfg, sites)
	fw.Start()

	bufs := make([]*mem.Buffer, p.nbufs)
	for id := 0; id < p.nbufs; id++ {
		bufs[id] = sites[p.bufOwner[id]].Space.Alloc(p.bufSize[id], true)
	}

	model := make([][]byte, p.nbufs)
	ok := true
	for r := 0; r < np; r++ {
		r := r
		h := fw.Host(r)
		cl.K.Spawn(fmt.Sprintf("h%d", r), func(proc *sim.Proc) {
			h.Bind(proc)
			g := h.GroupStart()
			// Tag = index of the transfer; unique and consistent.
			for round := 0; round < p.rounds; round++ {
				if round > 0 {
					g.LocalBarrier()
				}
				for tag, x := range p.xfers {
					if x.round != round {
						continue
					}
					if x.dst == r {
						g.Recv(bufs[x.dstBuf].Addr(), x.size, x.src, tag)
					}
					if x.src == r {
						g.Send(bufs[x.srcBuf].Addr(), x.size, x.dst, tag)
					}
				}
			}
			g.End()
			for call := 0; call < p.calls; call++ {
				// Refill this rank's fresh buffers (the model does the same).
				for id := 0; id < p.nbufs; id++ {
					if p.fresh[id] && p.bufOwner[id] == r {
						b := bufs[id].Bytes()
						for i := range b {
							b[i] = byte(id*37 + call*101 + i)
						}
					}
				}
				h.GroupCall(g)
				h.GroupWait(g)
				// A crude inter-call barrier via compute stagger is not
				// deterministic enough; instead every call is separated by
				// the group's own completion, which is per-rank. To keep
				// calls from overlapping across ranks we also wait for the
				// global quiesce below before checking.
			}
		})
	}
	cl.K.Run()
	if len(cl.K.Deadlocked) > 0 {
		t.Logf("deadlock: %+v", p.summary())
		return false
	}

	for call := 0; call < p.calls; call++ {
		p.expectedContents(call, model)
	}
	for _, x := range p.xfers {
		got := bufs[x.dstBuf].Bytes()
		want := model[x.dstBuf]
		if !bytes.Equal(got, want) {
			t.Logf("mismatch on transfer %+v (%s)", x, p.summary())
			ok = false
			break
		}
	}
	return ok
}

func (p *patternSpec) summary() string {
	return fmt.Sprintf("nodes=%d ppn=%d proxies=%d mech=%v regC=%v grpC=%v rounds=%d xfers=%d calls=%d",
		p.nodes, p.ppn, p.proxies, p.mech, p.regCaches, p.groupCache, p.rounds, len(p.xfers), p.calls)
}

func TestPropertyRandomGroupPatterns(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := genPattern(rng)
		return p.run(t)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
