package core

import "fmt"

// Stats aggregates the framework's observable counters: control-message
// traffic between hosts and DPUs, RDMA operations issued by proxies, and
// the hit rates of every cache the paper introduces. They quantify exactly
// the effects the evaluation section argues about (e.g. Figure 15's
// control-message reduction).
type Stats struct {
	CtrlMsgs   int64 // control messages handled by proxies
	RDMAWrites int64 // data writes posted by proxies
	RDMAReads  int64 // staging reads posted by proxies
	StagedOps  int64 // transfers that bounced through DPU memory

	GroupHits   int64 // group-request cache hits (replays)
	GroupMisses int64 // full Group_Offload_packet installs

	HostGVMICacheHits   int64 // host-side GVMI registration cache
	HostGVMICacheMisses int64
	HostIBCacheHits     int64 // host-side IB registration cache
	HostIBCacheMisses   int64
	CrossCacheHits      int64 // DPU-side cross-registration cache
	CrossCacheMisses    int64

	// Reliability counters (nonzero only under fault injection with crashes).
	Failovers          int64 // hosts that switched to host-progressed fallback
	FallbackGroupCalls int64 // group calls executed by hosts
	FallbackWrites     int64 // RDMA writes posted by fallback hosts
	FoEagerSends       int64 // basic sends pushed eagerly host-to-host
	OneSidedReissues   int64 // one-sided transfers re-posted by initiators
	DlvDeduped         int64 // duplicate delivery notifications suppressed
}

// Stats collects counters across all hosts and proxies.
func (fw *Framework) Stats() Stats {
	var s Stats
	for _, px := range fw.proxies {
		s.CtrlMsgs += px.CtrlMsgs
		s.RDMAWrites += px.RDMAWrites
		s.RDMAReads += px.RDMAReads
		s.StagedOps += px.StagedOps
		s.GroupHits += px.GroupHits
		s.GroupMisses += px.GroupMiss
		s.CrossCacheHits += px.crossCache.Hits
		s.CrossCacheMisses += px.crossCache.Misses
	}
	for _, h := range fw.hosts {
		s.HostGVMICacheHits += h.gvmiCache.Hits
		s.HostGVMICacheMisses += h.gvmiCache.Misses
		s.HostIBCacheHits += h.ibCache.Hits
		s.HostIBCacheMisses += h.ibCache.Misses
		s.Failovers += h.Failovers
		s.FallbackGroupCalls += h.FallbackCalls
		s.FallbackWrites += h.FallbackWrites
		s.FoEagerSends += h.FoSends
		s.OneSidedReissues += h.OsReissues
		s.DlvDeduped += h.DlvDup
	}
	return s
}

// String renders a compact human-readable report.
func (s Stats) String() string {
	out := fmt.Sprintf(
		"ctrl=%d writes=%d reads=%d staged=%d group(hit/miss)=%d/%d gvmi$(h/m)=%d/%d ib$(h/m)=%d/%d cross$(h/m)=%d/%d",
		s.CtrlMsgs, s.RDMAWrites, s.RDMAReads, s.StagedOps,
		s.GroupHits, s.GroupMisses,
		s.HostGVMICacheHits, s.HostGVMICacheMisses,
		s.HostIBCacheHits, s.HostIBCacheMisses,
		s.CrossCacheHits, s.CrossCacheMisses)
	if s.Failovers > 0 || s.FallbackWrites > 0 || s.FoEagerSends > 0 || s.DlvDeduped > 0 {
		out += fmt.Sprintf(
			" failovers=%d fbcalls=%d fbwrites=%d fosends=%d 1s-reissues=%d dlv-dedup=%d",
			s.Failovers, s.FallbackGroupCalls, s.FallbackWrites,
			s.FoEagerSends, s.OneSidedReissues, s.DlvDeduped)
	}
	return out
}
