package core

import (
	"bytes"
	"fmt"
	"testing"

	"repro/internal/cluster"
	"repro/internal/sim"
)

// TestKitchenSink drives all three API families — basic primitives, group
// requests with barriers, and one-sided window transfers — concurrently
// through the same proxies, with replays, while every host also computes.
// Everything must complete, byte-exact, without deadlock.
func TestKitchenSink(t *testing.T) {
	const (
		nodes = 3
		ppn   = 2
		size  = 16 << 10
		iters = 3
	)
	ccfg := cluster.DefaultConfig(nodes, ppn)
	ccfg.ProxiesPerDPU = 2 // force proxy sharing
	cl := cluster.New(ccfg)
	np := ccfg.NP()
	sites := make([]*cluster.Site, np)
	for i := range sites {
		sites[i] = cl.NewHostSite(cl.NodeOfRank(i), fmt.Sprintf("h%d", i))
	}
	fw := New(cl, DefaultConfig(), sites)
	fw.Start()

	windows := make([]Window, np)
	ready := 0
	var readyCond sim.Cond

	for i := 0; i < np; i++ {
		h := fw.Host(i)
		cl.K.Spawn(fmt.Sprintf("h%d", i), func(p *sim.Proc) {
			h.Bind(p)
			me := h.Rank()
			right := (me + 1) % np
			left := (me - 1 + np) % np

			// Buffers for each family.
			basicS := sites[me].Space.Alloc(size, true)
			basicR := sites[me].Space.Alloc(size, true)
			ringB := sites[me].Space.Alloc(size, true)
			win := sites[me].Space.Alloc(2*size, true)

			windows[me] = h.ExposeWindow(win.Addr(), win.Size())
			ready++
			readyCond.Broadcast()
			for ready < np {
				readyCond.Wait(p)
			}

			// Group: ring broadcast rooted at 0 with barriers.
			g := h.GroupStart()
			if me == 0 {
				g.Send(ringB.Addr(), size, right, 1)
				g.LocalBarrier()
			} else {
				g.Recv(ringB.Addr(), size, left, 1)
				g.LocalBarrier()
				if right != 0 {
					g.Send(ringB.Addr(), size, right, 1)
				}
			}
			g.End()

			for it := 0; it < iters; it++ {
				if me == 0 {
					for j := range ringB.Bytes() {
						ringB.Bytes()[j] = byte(it*31 + j)
					}
				}
				// Family 1: basic primitives, pairwise with the right peer.
				for j := range basicS.Bytes() {
					basicS.Bytes()[j] = byte(me + it + j)
				}
				sq := h.SendOffload(basicS.Addr(), size, right, 7)
				rq := h.RecvOffload(basicR.Addr(), size, left, 7)

				// Family 2: the ring group (replay after iteration 0).
				h.GroupCall(g)

				// Family 3: one-sided put into the right neighbour's window.
				oq := h.PutOffload(windows[me], 0, windows[right], size, size)

				p.AdvanceBusy(2 * sim.Millisecond) // everything overlaps this

				h.WaitAll(sq, rq, oq)
				h.GroupWait(g)

				if !bytes.Equal(basicR.Bytes(), patternAt(left, it, size)) {
					t.Errorf("it %d rank %d: basic payload wrong", it, me)
					return
				}
				if me != 0 {
					want := make([]byte, size)
					for j := range want {
						want[j] = byte(it*31 + j)
					}
					if !bytes.Equal(ringB.Bytes(), want) {
						t.Errorf("it %d rank %d: ring payload wrong", it, me)
						return
					}
				}
			}
		})
	}
	cl.K.Run()
	if len(cl.K.Deadlocked) > 0 {
		t.Fatalf("kitchen sink deadlocked (%d procs)", len(cl.K.Deadlocked))
	}
	s := fw.Stats()
	if s.GroupHits == 0 || s.RDMAWrites == 0 {
		t.Fatalf("suspicious stats: %v", s)
	}
}

func patternAt(rank, it, size int) []byte {
	b := make([]byte, size)
	for j := range b {
		b[j] = byte(rank + it + j)
	}
	return b
}
