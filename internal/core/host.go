package core

import (
	"fmt"

	"repro/internal/cluster"
	"repro/internal/datapath"
	"repro/internal/device"
	"repro/internal/gvmi"
	"repro/internal/mem"
	"repro/internal/metrics"
	"repro/internal/regcache"
	"repro/internal/sim"
	"repro/internal/span"
	"repro/internal/verbs"
)

// Host is the per-rank handle of the offload library. Bind it to the rank's
// simulated process before calling any primitive; all methods must then be
// called from that process.
type Host struct {
	fw   *Framework
	rank int
	site *cluster.Site
	ctx  *verbs.Ctx
	proc *sim.Proc

	gvmiCache *regcache.Cache[gvmi.MKeyInfo] // first level: proxy global rank
	ibCache   *regcache.Cache[*verbs.MR]

	nextSeq   int64
	reqs      map[int64]*OffloadRequest
	gmetaQ    []*gmetaMsg
	nextGroup int
	groups    map[int]*GroupRequest

	// peers maps caller-local peer ranks to global framework ranks; nil is
	// the identity map. Multi-tenant runs drive each host from a placed MPI
	// world whose ranks are job-local, while the wire protocol (RTS/RTR,
	// group wires, proxy routing) speaks global ranks — SetPeers installs
	// the translation so callers never see global numbering.
	peers []int

	// Crash-tolerance state; allocated only when the fault plan schedules
	// proxy crashes (see failover.go). dlvCtx receives the RDMA delivery-
	// counter writes of Section VII-C, which move into host memory so they
	// survive a proxy failure.
	dlvCtx       *verbs.Ctx
	dlvSeen      map[dlvID]bool
	dlvCnt       map[gsKey]int
	pendingSends map[int64]*sendRec
	pendingRecvs []*recvRec
	foQ          []*foSendMsg
	osPending    map[int64]*osRec
	fbRun        []*fbCall
	deferred     []func()
	failedOver   bool

	// Failure-detector metric handles; bound at construction (only under a
	// crash-configured fault plan, alongside the state above) so failover
	// never pays a registry lookup.
	mHeartbeatLosses *metrics.Counter
	mFailovers       *metrics.Counter

	// Reliability counters (aggregated by Framework.Stats).
	Failovers      int64
	FallbackCalls  int64
	FallbackWrites int64
	FoSends        int64
	OsReissues     int64
	DlvDup         int64

	// OffloadTime accumulates virtual time spent inside blocking calls of
	// this library (Wait/GroupWait/GroupCall).
	OffloadTime sim.Time

	// curSpan is the ambient causal parent while a primitive is being
	// issued, so registrations performed on its behalf (directly or through
	// the caches) attach to the right operation.
	curSpan span.ID
}

// spans returns the cluster's span collector (nil when tracing is off).
func (h *Host) spans() *span.Collector { return h.fw.cl.Spans }

// entity returns the host's span/trace entity name.
func (h *Host) entity() string { return fmt.Sprintf("rank%d", h.rank) }

// Bind attaches the handle to its process (call once, from the process).
func (h *Host) Bind(p *sim.Proc) {
	h.proc = p
	if h.groups == nil {
		h.groups = make(map[int]*GroupRequest)
	}
}

// Rank returns the host rank.
func (h *Host) Rank() int { return h.rank }

// SetPeers installs a caller-local → global peer-rank translation (see the
// peers field). Call before issuing operations; nil restores the identity.
func (h *Host) SetPeers(peers []int) { h.peers = peers }

// peer translates one caller-local peer rank to a global framework rank.
func (h *Host) peer(p int) int {
	if h.peers == nil {
		return p
	}
	return h.peers[p]
}

// Proc returns the bound process.
func (h *Host) Proc() *sim.Proc { return h.proc }

// OffloadRequest identifies one basic-primitive transfer (Send_Offload /
// Recv_Offload); pass it to Wait.
type OffloadRequest struct {
	h    *Host
	id   int64
	done bool
	span span.ID // root span of the operation (0 = untraced)
}

// Done reports completion without progressing.
func (q *OffloadRequest) Done() bool { return q.done }

func (h *Host) newReq() *OffloadRequest {
	h.nextSeq++
	id := int64(h.rank)<<32 | h.nextSeq
	q := &OffloadRequest{h: h, id: id}
	h.reqs[id] = q
	return q
}

// gvmiRegister returns the MKeyInfo for a source buffer, through the GVMI
// registration cache when enabled (keyed by the proxy's rank, per VII-B).
func (h *Host) gvmiRegister(px *Proxy, addr mem.Addr, size int) gvmi.MKeyInfo {
	create := func() gvmi.MKeyInfo {
		var s span.ID
		if sp := h.spans(); sp.Enabled() {
			s = sp.Start(h.curSpan, span.ClassHCA, h.entity(), "verbs", "gvmi_reg")
			sp.AttrInt(s, "size", int64(size))
		}
		info, err := h.fw.cl.GVMI.RegisterHost(h.proc, h.ctx, addr, size, px.gvmiID)
		if err != nil {
			panic(fmt.Sprintf("core: host GVMI registration: %v", err))
		}
		h.spans().End(s)
		return info
	}
	if !h.fw.cfg.RegCaches {
		return create()
	}
	info, _ := h.gvmiCache.GetOrCreate(px.global, addr, size, create)
	return info
}

// ibRegister returns an MR for a local buffer through the IB registration
// cache when enabled.
func (h *Host) ibRegister(addr mem.Addr, size int) *verbs.MR {
	create := func() *verbs.MR { return h.ctx.RegisterMRCtx(h.proc, addr, size, h.curSpan) }
	if !h.fw.cfg.RegCaches {
		return create()
	}
	mr, _ := h.ibCache.GetOrCreate(0, addr, size, create)
	return mr
}

// DefaultPath returns the datapath operations take when no per-call path
// is given (the framework's construction-time mechanism).
func (h *Host) DefaultPath() datapath.Kind { return h.fw.DefaultPath() }

// FleetProfile returns the capability merge across the cluster's nodes
// (see device.Merge) — the profile group decisions must be made against.
func (h *Host) FleetProfile() device.Profile { return h.fw.cl.FleetProfile() }

// ProfileOfRank returns the device profile of the node hosting rank.
func (h *Host) ProfileOfRank(rank int) device.Profile { return h.fw.ProfileOfRank(rank) }

// SendOffload offloads a nonblocking send of [addr, addr+size) to rank dst
// (Send_Offload) on the framework's default datapath.
func (h *Host) SendOffload(addr mem.Addr, size, dst, tag int) *OffloadRequest {
	return h.SendOffloadVia(h.fw.DefaultPath(), addr, size, dst, tag)
}

// SendOffloadVia is SendOffload on an explicitly chosen datapath (policy
// engines decide per operation): the host registers the source buffer as
// the path requires and hands an RTS to its proxy; the proxy performs the
// transfer on that path. The kind must be proxy-executable — HostDirect
// transfers go through the MPI library, not this framework.
func (h *Host) SendOffloadVia(kind datapath.Kind, addr mem.Addr, size, dst, tag int) *OffloadRequest {
	// Degrade the requested path to one the sender's device can run. On
	// full-capability profiles Resolve is the identity, and the receiver's
	// RTR metadata is path-independent, so the fallback needs no handshake.
	kind = datapath.Resolve(kind, h.fw.CapsOfRank(h.rank))
	dst = h.peer(dst)
	px := h.fw.proxyFor(h.rank)
	req := h.newReq()
	if sp := h.spans(); sp.Enabled() {
		req.span = sp.Start(0, span.ClassRank, h.entity(), "core", "send_offload")
		sp.AttrInt(req.span, "dst", int64(dst))
		sp.AttrInt(req.span, "size", int64(size))
		sp.AttrInt(req.span, "tag", int64(tag))
		sp.AttrStr(req.span, "path", kind.String())
		h.curSpan = req.span
		defer func() { h.curSpan = 0 }()
	}
	if h.fw.crashesConfigured() {
		rec := &sendRec{req: req, dst: dst, tag: tag, size: size, addr: addr, gen: px.gen}
		h.pendingSends[req.id] = rec
		if h.failedOver {
			// The proxy is gone: push the payload eagerly to the peer host.
			h.foSendNow(rec)
			return req
		}
	}
	pay := &rtsMsg{Src: h.rank, Dst: dst, Tag: tag, Size: size, SrcReqID: req.id, Path: kind, SrcAddr: addr, Span: req.span}
	switch datapath.ForKind(kind).SrcReg() {
	case datapath.RegGVMI:
		pay.MKey = h.gvmiRegister(px, addr, size)
	case datapath.RegIB:
		pay.SrcRKey = h.ibRegister(addr, size).RKey()
	default:
		panic(fmt.Sprintf("core: SendOffloadVia on non-proxy path %v", kind))
	}
	h.ctx.PostSend(h.proc, px.ctx, &verbs.Packet{
		Kind: "rts", Size: h.fw.cfg.CtrlSize + gvmi.WireSize, Payload: pay, Span: req.span,
	})
	if tr := h.fw.cl.Trace; tr.Enabled() {
		tr.Add(h.proc.Now(), fmt.Sprintf("rank%d", h.rank), "Send_Offload",
			fmt.Sprintf("dst=%d size=%d tag=%d", dst, size, tag))
	}
	return req
}

// RecvOffload offloads a nonblocking receive into [addr, addr+size) from
// rank src (Recv_Offload): the destination buffer is IB-registered and an
// RTR goes to the *sender's* proxy, which posts the RDMA write.
func (h *Host) RecvOffload(addr mem.Addr, size, src, tag int) *OffloadRequest {
	src = h.peer(src)
	px := h.fw.proxyFor(src)
	req := h.newReq()
	if sp := h.spans(); sp.Enabled() {
		req.span = sp.Start(0, span.ClassRank, h.entity(), "core", "recv_offload")
		sp.AttrInt(req.span, "src", int64(src))
		sp.AttrInt(req.span, "size", int64(size))
		sp.AttrInt(req.span, "tag", int64(tag))
		h.curSpan = req.span
		defer func() { h.curSpan = 0 }()
	}
	if h.fw.crashesConfigured() {
		// A failed-over sender may already have pushed the payload eagerly.
		if m := h.takeFoSend(src, tag); m != nil {
			if m.Data != nil {
				h.site.Space.WriteAt(addr, m.Data, m.Size)
			}
			req.done = true
			delete(h.reqs, req.id)
			h.spans().End(req.span)
			h.foAck(m)
			return req
		}
		h.pendingRecvs = append(h.pendingRecvs, &recvRec{req: req, src: src, tag: tag, size: size, addr: addr})
	}
	mr := h.ibRegister(addr, size)
	pay := &rtrMsg{Src: src, Dst: h.rank, Tag: tag, Size: size, DstReqID: req.id, DstAddr: addr, RKey: mr.RKey(), Span: req.span}
	h.ctx.PostSend(h.proc, px.ctx, &verbs.Packet{
		Kind: "rtr", Size: h.fw.cfg.CtrlSize, Payload: pay, Span: req.span,
	})
	if tr := h.fw.cl.Trace; tr.Enabled() {
		tr.Add(h.proc.Now(), fmt.Sprintf("rank%d", h.rank), "Recv_Offload",
			fmt.Sprintf("src=%d size=%d tag=%d", src, size, tag))
	}
	return req
}

// drainInbox processes FIN / completion / gather traffic from proxies and
// peer hosts.
func (h *Host) drainInbox() bool {
	pkts := h.ctx.PollInbox()
	for _, pkt := range pkts {
		switch m := pkt.Payload.(type) {
		case *finMsg:
			if q, ok := h.reqs[m.ReqID]; ok {
				q.done = true
				delete(h.reqs, m.ReqID)
				h.dropRecords(m.ReqID)
				h.spans().End(q.span)
				if tr := h.fw.cl.Trace; tr.Enabled() {
					tr.Add(h.proc.Now(), fmt.Sprintf("rank%d", h.rank), "FIN",
						fmt.Sprintf("req=%d", m.ReqID&0xffffffff))
				}
			}
		case *gmetaMsg:
			h.gmetaQ = append(h.gmetaQ, m)
		case *gdoneMsg:
			if g, ok := h.groups[m.GroupID]; ok && m.CallSeq > g.doneSeq {
				g.doneSeq = m.CallSeq
			}
		case *gfailMsg:
			h.handleGroupFail(m)
		case *foSendMsg:
			h.handleFoSend(m)
		case *foAckMsg:
			if q, ok := h.reqs[m.ReqID]; ok {
				q.done = true
				delete(h.reqs, m.ReqID)
				h.dropRecords(m.ReqID)
				h.spans().End(q.span)
			}
		default:
			panic(fmt.Sprintf("core: host %d: unexpected packet %T", h.rank, pkt.Payload))
		}
	}
	return len(pkts) > 0
}

// progress runs one round of host-side progress: drain completions, run
// deferred actions queued by RDMA completion handlers, detect dead proxies,
// and advance any host-progressed fallback execution. Without a fault plan
// it reduces to drainInbox.
func (h *Host) progress() {
	h.drainInbox()
	if h.fw.crashesConfigured() {
		h.runDeferred()
		h.checkRecovery()
		h.progressFallback()
	}
}

// waitFor drains completions until pred holds.
func (h *Host) waitFor(pred func() bool) {
	t0 := h.proc.Now()
	for {
		h.progress()
		if pred() {
			break
		}
		if h.ctx.InboxLen() == 0 && len(h.deferred) == 0 {
			h.ctx.InboxCond.Wait(h.proc)
		}
	}
	h.OffloadTime += h.proc.Now() - t0
}

// Wait blocks until the basic-primitive request completes. The transfer
// itself progresses on the DPU regardless; Wait only observes the FIN.
func (h *Host) Wait(req *OffloadRequest) {
	h.waitFor(func() bool { return req.done })
}

// WaitAll blocks until all given requests complete.
func (h *Host) WaitAll(reqs ...*OffloadRequest) {
	h.waitFor(func() bool {
		for _, q := range reqs {
			if !q.done {
				return false
			}
		}
		return true
	})
}

// TestOffload polls for completion without blocking.
func (h *Host) TestOffload(req *OffloadRequest) bool {
	h.progress()
	return req.done
}
