package core
