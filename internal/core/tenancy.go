package core

import (
	"fmt"
	"sort"

	"repro/internal/metrics"
	"repro/internal/sim"
	"repro/internal/verbs"
)

// Tenancy attributes a shared framework's host ranks to tenant jobs and
// configures how the proxies arbitrate between them. The paper evaluates
// one job at a time; a production DPU serves many, and whether offload
// still pays off depends on how loaded the shared ARM cores are — which is
// only observable with per-tenant attribution.
//
// Install it with Framework.SetTenancy before Start. Without a tenancy the
// proxy engine is byte-identical to the single-job framework (the pinned
// fig13 timings enforce this); with one, every proxy routes its control
// inbox through per-tenant work queues drained by weighted fair scheduling
// (stride scheduling over integer passes — deterministic, no floats) or, as
// a fallback, in global arrival order (FIFO).
type Tenancy struct {
	// TenantOf maps each global host rank to its tenant index.
	TenantOf []int
	// Names labels tenants in metrics and spans (one per tenant).
	Names []string
	// Weights are the fair-share weights (missing or non-positive = 1).
	// A tenant with weight 2 gets two proxy dispatches for every one a
	// weight-1 tenant gets, when both have work queued.
	Weights []int
	// FIFO disables fair scheduling: dispatch in global arrival order.
	// This is the no-isolation baseline that exhibits head-of-line
	// blocking — bulk tenants starve latency-bound ones.
	FIFO bool
}

// weight returns tenant t's effective weight.
func (t *Tenancy) weight(i int) int64 {
	if i < len(t.Weights) && t.Weights[i] > 0 {
		return int64(t.Weights[i])
	}
	return 1
}

// SetTenancy installs (or, with nil, removes) multi-tenant attribution.
// Call before Start; the per-proxy scheduler state and metric handles are
// built here so the dispatch path never pays a registry lookup.
func (fw *Framework) SetTenancy(t *Tenancy) {
	if t != nil {
		if len(t.TenantOf) != fw.cl.Cfg.NP() {
			panic(fmt.Sprintf("core: tenancy maps %d ranks, cluster has %d", len(t.TenantOf), fw.cl.Cfg.NP()))
		}
		for r, ti := range t.TenantOf {
			if ti < 0 || ti >= len(t.Names) {
				panic(fmt.Sprintf("core: rank %d assigned to tenant %d of %d", r, ti, len(t.Names)))
			}
		}
	}
	fw.tenancy = t
	for _, px := range fw.proxies {
		px.initTenancy(t)
	}
}

// Tenancy returns the installed tenancy (nil = single-job framework).
func (fw *Framework) Tenancy() *Tenancy { return fw.tenancy }

// tenantName returns the metric/span label of the tenant owning a global
// host rank ("" when untenanted).
func (fw *Framework) tenantName(rank int) string {
	if fw.tenancy == nil {
		return ""
	}
	return fw.tenancy.Names[fw.tenancy.TenantOf[rank]]
}

// passScale is the fair scheduler's virtual-time resolution: serving a
// tenant for d nanoseconds of proxy CPU advances its pass by
// d*passScale/weight, so heavier tenants accumulate pass more slowly and
// stay eligible for proportionally more service (weighted fair queueing
// over attributed busy time, in integers — no float nondeterminism).
const passScale = 1 << 10

// qpkt is one queued control packet awaiting tenant-fair dispatch.
type qpkt struct {
	pkt *verbs.Packet
	seq int64 // global arrival order (FIFO key)
	// othersBusy snapshots the busy time attributed to *other* tenants at
	// enqueue; its growth until dispatch is the cross-tenant head-of-line
	// delay this packet suffered.
	othersBusy sim.Time
}

// tenantSched is one proxy's per-tenant queueing and attribution state.
type tenantSched struct {
	ten     *Tenancy
	q       [][]qpkt
	pass    []int64 // weighted-fair virtual time consumed per tenant
	scale   []int64 // passScale / weight, precomputed
	vtime   int64   // pass of the most recently served tenant
	nextSeq int64
	queued  int

	busy      []sim.Time // proxy CPU time attributed per tenant
	totalBusy sim.Time

	// Per-tenant metric handles (nil-inert when metrics are off).
	mDepth    []*metrics.Gauge
	mDepthMax []*metrics.Gauge
	mBusy     []*metrics.Counter
	mWait     []*metrics.Histogram
	mDispatch []*metrics.Counter
}

// initTenancy (re)builds the proxy's scheduler state for a tenancy (nil
// clears it). Also invoked on crash recovery: queued packets died with the
// process, but busy attribution and passes survive in the accounting sense
// only through the metrics already exported — the scheduler itself restarts
// fresh, like every other piece of proxy state.
func (px *Proxy) initTenancy(t *Tenancy) {
	if t == nil {
		px.sched = nil
		return
	}
	n := len(t.Names)
	s := &tenantSched{
		ten:       t,
		q:         make([][]qpkt, n),
		pass:      make([]int64, n),
		scale:     make([]int64, n),
		busy:      make([]sim.Time, n),
		mDepth:    make([]*metrics.Gauge, n),
		mDepthMax: make([]*metrics.Gauge, n),
		mBusy:     make([]*metrics.Counter, n),
		mWait:     make([]*metrics.Histogram, n),
		mDispatch: make([]*metrics.Counter, n),
	}
	for i := 0; i < n; i++ {
		s.scale[i] = passScale / t.weight(i)
	}
	if m := px.fw.cl.Met; m.Enabled() {
		entity := fmt.Sprintf("proxy%d", px.global)
		for i, name := range t.Names {
			s.mDepth[i] = m.GaugeT("core", entity, "tenant_queue_depth", name)
			s.mDepthMax[i] = m.GaugeT("core", entity, "tenant_queue_depth_max", name)
			s.mBusy[i] = m.CounterT("core", entity, "tenant_busy_ns", name)
			s.mWait[i] = m.HistogramT("core", entity, "cross_tenant_wait_ns", name)
			s.mDispatch[i] = m.CounterT("core", entity, "tenant_dispatches", name)
		}
	}
	px.sched = s
}

// tenantOf attributes one control packet to a tenant: RTS/RTR traffic to
// the sending host's tenant (both land on the sender's proxy), group wires
// and replays to the issuing host, delivery notifications to the receiving
// group's owner, one-sided work to the initiator.
func (s *tenantSched) tenantOf(pkt *verbs.Packet) int {
	switch m := pkt.Payload.(type) {
	case *rtsMsg:
		return s.ten.TenantOf[m.Src]
	case *rtrMsg:
		return s.ten.TenantOf[m.Src]
	case *groupPacket:
		return s.ten.TenantOf[m.HostRank]
	case *greplayMsg:
		return s.ten.TenantOf[m.HostRank]
	case *dlvMsg:
		return s.ten.TenantOf[m.DstHost]
	case *oneSidedMsg:
		return s.ten.TenantOf[m.Initiator]
	default:
		return 0
	}
}

// enqueue files one arrived packet into its tenant's queue. A tenant waking
// from idle has its pass pulled up to the scheduler's current virtual time,
// so sleeping never banks credit (the standard stride-scheduler fix).
func (s *tenantSched) enqueue(pkt *verbs.Packet) {
	t := s.tenantOf(pkt)
	if len(s.q[t]) == 0 && s.pass[t] < s.vtime {
		s.pass[t] = s.vtime
	}
	s.q[t] = append(s.q[t], qpkt{pkt: pkt, seq: s.nextSeq, othersBusy: s.totalBusy - s.busy[t]})
	s.nextSeq++
	s.queued++
	d := float64(len(s.q[t]))
	s.mDepth[t].Set(d)
	s.mDepthMax[t].SetMax(d)
}

// pick chooses the next tenant to serve: lowest pass under fair scheduling
// (ties to the lower tenant index), global arrival order under FIFO.
func (s *tenantSched) pick() (int, qpkt) {
	best := -1
	if s.ten.FIFO {
		var bestSeq int64
		for t := range s.q {
			if len(s.q[t]) == 0 {
				continue
			}
			if best < 0 || s.q[t][0].seq < bestSeq {
				best, bestSeq = t, s.q[t][0].seq
			}
		}
	} else {
		for t := range s.q {
			if len(s.q[t]) == 0 {
				continue
			}
			if best < 0 || s.pass[t] < s.pass[best] {
				best = t
			}
		}
	}
	qp := s.q[best][0]
	s.q[best] = s.q[best][1:]
	s.queued--
	return best, qp
}

// addBusy attributes d of proxy CPU time to tenant t and advances its
// weighted-fair pass — service consumed is what fairness is measured in,
// so the pass tracks actual attributed time, not dispatch counts.
func (s *tenantSched) addBusy(t int, d sim.Time) {
	if d <= 0 {
		return
	}
	s.busy[t] += d
	s.totalBusy += d
	s.charge(t, d)
	s.mBusy[t].Add(int64(d))
}

// charge advances tenant t's weighted-fair pass by d of consumed service
// without booking proxy CPU time.
func (s *tenantSched) charge(t int, d sim.Time) {
	if d <= 0 {
		return
	}
	s.pass[t] += int64(d) * s.scale[t]
}

// wireCharge bills tenant t's pass for the DPU-port serialization time of a
// posted RDMA of the given size. Posting is nearly free in ARM cycles, so
// CPU attribution alone cannot differentiate tenants — the service a
// tenant's posts actually claim is port bandwidth, and that is what group
// arbitration must ration.
func (px *Proxy) wireCharge(t, size int) {
	px.sched.charge(t, px.fw.cl.Cfg.DPUPort.XferTime(size))
}

// tenantGroupRound advances active group schedules with per-tenant
// arbitration. Under FIFO every group advances once in install order (the
// no-isolation baseline). Under weighted fair scheduling each grant is a
// single group advancement given to the tenant with the least consumed
// weighted pass; the pass grows by the wire time of whatever the grant
// posted (over the tenant's weight), and the order re-evaluates after
// every grant. The quantum matters: when several tenants hold postable
// work at the same virtual instant, per-grant re-sorting is what
// interleaves their RDMA onto the shared port in weight proportion —
// coarser grants would let install order decide the wire order. A tenant
// whose groups cannot progress (waiting on remote deliveries) falls
// through to the next, so arbitration never blocks the engine.
func (px *Proxy) tenantGroupRound() bool {
	s := px.sched
	if s.ten.FIFO {
		progressed := false
		for _, g := range px.activeGroups() {
			t := s.ten.TenantOf[g.host]
			t0 := px.proc.Now()
			adv := px.advanceGroup(g)
			s.addBusy(t, px.proc.Now()-t0)
			if adv {
				progressed = true
			}
		}
		return progressed
	}
	progressed := false
	for {
		gs := px.activeGroups()
		if len(gs) == 0 {
			return progressed
		}
		var tenants []int
		seen := make(map[int]bool)
		for _, g := range gs {
			if t := s.ten.TenantOf[g.host]; !seen[t] {
				seen[t] = true
				tenants = append(tenants, t)
			}
		}
		sort.SliceStable(tenants, func(a, b int) bool { return s.pass[tenants[a]] < s.pass[tenants[b]] })
		served := false
	grant:
		for _, t := range tenants {
			for _, g := range gs {
				if s.ten.TenantOf[g.host] != t {
					continue
				}
				t0 := px.proc.Now()
				adv := px.advanceGroup(g)
				s.addBusy(t, px.proc.Now()-t0)
				if adv {
					served = true
					break grant // one grant, then re-evaluate pass order
				}
			}
		}
		if !served {
			return progressed
		}
		progressed = true
	}
}

// tenantRound is the tenant-mode control loop body: poll arrivals into the
// per-tenant queues, then dispatch until the queues drain, re-polling after
// every dispatch so packets arriving while a handler advanced virtual time
// enter the arbitration immediately. Reports whether anything happened.
func (px *Proxy) tenantRound() bool {
	s := px.sched
	progressed := false
	poll := func() {
		for _, pkt := range px.ctx.PollInbox() {
			s.enqueue(pkt)
			progressed = true
		}
	}
	poll()
	for s.queued > 0 {
		t, qp := s.pick()
		if !s.ten.FIFO {
			s.vtime = s.pass[t]
		}
		// Head-of-line delay: how much proxy time went to other tenants
		// while this packet sat queued.
		s.mWait[t].Observe((s.totalBusy - s.busy[t]) - qp.othersBusy)
		s.mDispatch[t].Inc()
		t0 := px.proc.Now()
		px.handle(qp.pkt)
		s.addBusy(t, px.proc.Now()-t0)
		s.mDepth[t].Set(float64(len(s.q[t])))
		progressed = true
		poll()
	}
	return progressed
}
