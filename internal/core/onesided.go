package core

import (
	"fmt"

	"repro/internal/datapath"
	"repro/internal/gvmi"
	"repro/internal/mem"
	"repro/internal/span"
	"repro/internal/verbs"
)

// Window is a region exposed for one-sided offloaded access: an IB rkey for
// inbound RDMA plus a GVMI mkey registered against the owner's proxy, so
// that proxy can source outbound transfers from it. Windows are created
// once (ExposeWindow) and published to peers out of band — the OpenSHMEM
// symmetric-heap model. Everything needed by a transfer then travels in a
// single control message to one proxy; neither side's CPU is involved in
// the data path.
type Window struct {
	Rank int
	Addr mem.Addr
	Size int
	RKey verbs.Key
	MKey gvmi.MKeyInfo
}

// oneSidedMsg asks a proxy to move data between two windows.
type oneSidedMsg struct {
	Initiator int   // rank to FIN
	ReqID     int64 // initiator's request
	SrcHost   int   // owner of the source window
	SrcMKey   gvmi.MKeyInfo
	SrcAddr   mem.Addr
	DstAddr   mem.Addr
	DstKey    verbs.Key
	Size      int

	// Span is the initiator's root span (0 = untraced).
	Span span.ID
}

// ExposeWindow registers [addr, addr+size) for one-sided access and returns
// the publishable handle. Registration costs are paid once, here.
func (h *Host) ExposeWindow(addr mem.Addr, size int) Window {
	px := h.fw.proxyFor(h.rank)
	mr := h.ctx.RegisterMR(h.proc, addr, size)
	info, err := h.fw.cl.GVMI.RegisterHost(h.proc, h.ctx, addr, size, px.gvmiID)
	if err != nil {
		panic(fmt.Sprintf("core: window registration: %v", err))
	}
	return Window{Rank: h.rank, Addr: addr, Size: size, RKey: mr.RKey(), MKey: info}
}

// checkRange validates a window-relative access.
func (w Window) checkRange(off, n int) {
	if off < 0 || n < 0 || off+n > w.Size {
		panic(fmt.Sprintf("core: window access [%d,+%d) outside size %d", off, n, w.Size))
	}
}

// PutOffload starts a one-sided offloaded write of n bytes from this host's
// window src (at srcOff) into dst (at dstOff) on dst.Rank. The transfer is
// performed by this host's proxy; Wait observes the FIN.
func (h *Host) PutOffload(src Window, srcOff int, dst Window, dstOff, n int) *OffloadRequest {
	if src.Rank != h.rank {
		panic("core: PutOffload source window must be local")
	}
	src.checkRange(srcOff, n)
	dst.checkRange(dstOff, n)
	req := h.newReq()
	px := h.fw.proxyFor(h.rank)
	if sp := h.spans(); sp.Enabled() {
		req.span = sp.Start(0, span.ClassRank, h.entity(), "core", "put_offload")
		sp.AttrInt(req.span, "dst", int64(dst.Rank))
		sp.AttrInt(req.span, "size", int64(n))
	}
	if h.fw.crashesConfigured() {
		// Enough to re-post the write from the host NIC if the proxy dies:
		// the window keys resolve identically on the host.
		h.osPending[req.id] = &osRec{
			req: req, proxy: px.global, isPut: true,
			lKey: src.RKey, lAddr: src.Addr + mem.Addr(srcOff),
			rKey: dst.RKey, rAddr: dst.Addr + mem.Addr(dstOff),
			size: n, gen: px.gen,
		}
	}
	h.ctx.PostSend(h.proc, px.ctx, &verbs.Packet{
		Kind: "1sided", Size: h.fw.cfg.CtrlSize + gvmi.WireSize,
		Payload: &oneSidedMsg{
			Initiator: h.rank, ReqID: req.id,
			SrcHost: h.rank, SrcMKey: src.MKey, SrcAddr: src.Addr + mem.Addr(srcOff),
			DstAddr: dst.Addr + mem.Addr(dstOff), DstKey: dst.RKey, Size: n,
			Span: req.span,
		},
		Span: req.span,
	})
	return req
}

// GetOffload starts a one-sided offloaded read of n bytes from window src
// (at srcOff, on src.Rank) into this host's window dst (at dstOff). The
// control message goes to the *source owner's* proxy, which sources the
// data from the owner's memory via cross-GVMI — the owner's CPU never runs.
func (h *Host) GetOffload(dst Window, dstOff int, src Window, srcOff, n int) *OffloadRequest {
	if dst.Rank != h.rank {
		panic("core: GetOffload destination window must be local")
	}
	src.checkRange(srcOff, n)
	dst.checkRange(dstOff, n)
	req := h.newReq()
	px := h.fw.proxyFor(src.Rank)
	if sp := h.spans(); sp.Enabled() {
		req.span = sp.Start(0, span.ClassRank, h.entity(), "core", "get_offload")
		sp.AttrInt(req.span, "src", int64(src.Rank))
		sp.AttrInt(req.span, "size", int64(n))
	}
	if h.fw.crashesConfigured() {
		// Fallback is an RDMA read posted by the initiator: pull from the
		// remote window straight into the local one.
		h.osPending[req.id] = &osRec{
			req: req, proxy: px.global, isPut: false,
			lKey: dst.RKey, lAddr: dst.Addr + mem.Addr(dstOff),
			rKey: src.RKey, rAddr: src.Addr + mem.Addr(srcOff),
			size: n, gen: px.gen,
		}
	}
	h.ctx.PostSend(h.proc, px.ctx, &verbs.Packet{
		Kind: "1sided", Size: h.fw.cfg.CtrlSize + gvmi.WireSize,
		Payload: &oneSidedMsg{
			Initiator: h.rank, ReqID: req.id,
			SrcHost: src.Rank, SrcMKey: src.MKey, SrcAddr: src.Addr + mem.Addr(srcOff),
			DstAddr: dst.Addr + mem.Addr(dstOff), DstKey: dst.RKey, Size: n,
			Span: req.span,
		},
		Span: req.span,
	})
	return req
}

// handleOneSided executes a window-to-window transfer on the proxy. Windows
// publish cross-GVMI mkeys, so one-sided transfers always run the CrossGVMI
// datapath — the owner's CPU never participates.
func (px *Proxy) handleOneSided(m *oneSidedMsg) {
	datapath.CrossGVMI{}.Execute(px, datapath.Transfer{
		SrcHost: m.SrcHost, DstRank: m.Initiator, Size: m.Size,
		MKey:    m.SrcMKey,
		SrcAddr: m.SrcAddr,
		DstAddr: m.DstAddr, DstRKey: m.DstKey,
		Span: m.Span,
	}, func() { px.sendFIN(m.Initiator, m.ReqID, m.Span) })
}
