package core

import (
	"bytes"
	"fmt"
	"testing"

	"repro/internal/cluster"
	"repro/internal/mem"
	"repro/internal/sim"
	"repro/internal/trace"
)

// runFw builds a cluster, starts the framework, and runs main on one
// simulated process per host rank.
func runFw(t *testing.T, nodes, ppn int, cfg Config, main func(h *Host)) *Framework {
	t.Helper()
	ccfg := cluster.DefaultConfig(nodes, ppn)
	cl := cluster.New(ccfg)
	sites := make([]*cluster.Site, ccfg.NP())
	for i := range sites {
		sites[i] = cl.NewHostSite(cl.NodeOfRank(i), fmt.Sprintf("host%d", i))
	}
	fw := New(cl, cfg, sites)
	fw.Start()
	for i := 0; i < ccfg.NP(); i++ {
		h := fw.Host(i)
		cl.K.Spawn(fmt.Sprintf("host%d", i), func(p *sim.Proc) {
			h.Bind(p)
			main(h)
		})
	}
	cl.K.Run()
	if len(cl.K.Deadlocked) > 0 {
		var names []string
		for _, p := range cl.K.Deadlocked {
			names = append(names, p.Name())
		}
		t.Fatalf("deadlocked: %v", names)
	}
	return fw
}

func pattern(seed byte, n int) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = seed + byte(i*3)
	}
	return b
}

func TestBasicSendRecvGVMI(t *testing.T) {
	const size = 64 << 10
	runFw(t, 2, 1, DefaultConfig(), func(h *Host) {
		buf := h.site.Space.Alloc(size, true)
		switch h.Rank() {
		case 0:
			copy(buf.Bytes(), pattern(7, size))
			h.Wait(h.SendOffload(buf.Addr(), size, 1, 5))
		case 1:
			h.Wait(h.RecvOffload(buf.Addr(), size, 0, 5))
			if !bytes.Equal(buf.Bytes(), pattern(7, size)) {
				t.Error("GVMI offload corrupted payload")
			}
		}
	})
}

func TestBasicSendRecvStaging(t *testing.T) {
	const size = 64 << 10
	cfg := DefaultConfig()
	cfg.Mechanism = MechStaging
	fw := runFw(t, 2, 1, cfg, func(h *Host) {
		buf := h.site.Space.Alloc(size, true)
		switch h.Rank() {
		case 0:
			copy(buf.Bytes(), pattern(9, size))
			h.Wait(h.SendOffload(buf.Addr(), size, 1, 0))
		case 1:
			h.Wait(h.RecvOffload(buf.Addr(), size, 0, 0))
			if !bytes.Equal(buf.Bytes(), pattern(9, size)) {
				t.Error("staged offload corrupted payload")
			}
		}
	})
	var staged int64
	for i := 0; i < fw.NumProxies(); i++ {
		staged += fw.Proxy(i).StagedOps
	}
	if staged != 1 {
		t.Fatalf("StagedOps = %d, want 1", staged)
	}
}

func TestRTRBeforeRTS(t *testing.T) {
	// The receiver posts long before the sender: the proxy must queue the
	// RTR and match it when the RTS arrives (Figure 8's queues).
	const size = 4096
	runFw(t, 2, 1, DefaultConfig(), func(h *Host) {
		buf := h.site.Space.Alloc(size, true)
		switch h.Rank() {
		case 0:
			h.Proc().AdvanceBusy(500 * sim.Microsecond)
			copy(buf.Bytes(), pattern(1, size))
			h.Wait(h.SendOffload(buf.Addr(), size, 1, 2))
		case 1:
			h.Wait(h.RecvOffload(buf.Addr(), size, 0, 2))
			if buf.Bytes()[100] != pattern(1, size)[100] {
				t.Error("payload wrong")
			}
		}
	})
}

func TestMultipleOutstandingSameTag(t *testing.T) {
	// FIFO pairing of equal (src,dst,tag) transfers.
	const size, n = 2048, 4
	runFw(t, 2, 1, DefaultConfig(), func(h *Host) {
		bufs := make([][]byte, n)
		var reqs []*OffloadRequest
		for i := 0; i < n; i++ {
			b := h.site.Space.Alloc(size, true)
			bufs[i] = b.Bytes()
			if h.Rank() == 0 {
				copy(b.Bytes(), pattern(byte(10*i), size))
				reqs = append(reqs, h.SendOffload(b.Addr(), size, 1, 0))
			} else {
				reqs = append(reqs, h.RecvOffload(b.Addr(), size, 0, 0))
			}
		}
		h.WaitAll(reqs...)
		if h.Rank() == 1 {
			for i := 0; i < n; i++ {
				if !bytes.Equal(bufs[i], pattern(byte(10*i), size)) {
					t.Errorf("transfer %d out of order or corrupted", i)
				}
			}
		}
	})
}

func TestPerfectOverlapBasic(t *testing.T) {
	// The transfer must complete while the destination host computes:
	// Wait() after a long compute returns (nearly) immediately.
	const size = 1 << 20
	const compute = 5 * sim.Millisecond
	var waitTime sim.Time
	runFw(t, 2, 1, DefaultConfig(), func(h *Host) {
		buf := h.site.Space.Alloc(size, true)
		switch h.Rank() {
		case 0:
			h.Wait(h.SendOffload(buf.Addr(), size, 1, 0))
		case 1:
			q := h.RecvOffload(buf.Addr(), size, 0, 0)
			h.Proc().AdvanceBusy(compute)
			t0 := h.Proc().Now()
			h.Wait(q)
			waitTime = h.Proc().Now() - t0
		}
	})
	if waitTime > 50*sim.Microsecond {
		t.Fatalf("Wait blocked %v after compute; offload should have completed in the background", waitTime)
	}
}

func TestRegistrationCachesAmortize(t *testing.T) {
	const size, iters = 128 << 10, 6
	fw := runFw(t, 2, 1, DefaultConfig(), func(h *Host) {
		buf := h.site.Space.Alloc(size, true)
		for it := 0; it < iters; it++ {
			if h.Rank() == 0 {
				h.Wait(h.SendOffload(buf.Addr(), size, 1, it))
			} else {
				h.Wait(h.RecvOffload(buf.Addr(), size, 0, it))
			}
		}
	})
	g := fw.Cluster().GVMI
	if g.HostRegs != 1 || g.CrossRegs != 1 {
		t.Fatalf("GVMI regs host=%d cross=%d, want 1/1 (caches must amortize)", g.HostRegs, g.CrossRegs)
	}
}

func TestRegistrationWithoutCaches(t *testing.T) {
	const size, iters = 128 << 10, 4
	cfg := DefaultConfig()
	cfg.RegCaches = false
	fw := runFw(t, 2, 1, cfg, func(h *Host) {
		buf := h.site.Space.Alloc(size, true)
		for it := 0; it < iters; it++ {
			if h.Rank() == 0 {
				h.Wait(h.SendOffload(buf.Addr(), size, 1, it))
			} else {
				h.Wait(h.RecvOffload(buf.Addr(), size, 0, it))
			}
		}
	})
	g := fw.Cluster().GVMI
	if g.HostRegs != iters || g.CrossRegs != iters {
		t.Fatalf("GVMI regs host=%d cross=%d, want %d each", g.HostRegs, g.CrossRegs, iters)
	}
}

// ringBcast offloads a full ring broadcast with the Group primitives
// (Listing 5) and returns the wait time after the given compute.
func ringBcast(t *testing.T, nodes, ppn int, cfg Config, size int, compute sim.Time) ([]sim.Time, *Framework) {
	np := nodes * ppn
	waits := make([]sim.Time, np)
	fw := runFw(t, nodes, ppn, cfg, func(h *Host) {
		buf := h.site.Space.Alloc(size, true)
		me := h.Rank()
		left := (me - 1 + np) % np
		right := (me + 1) % np
		g := h.GroupStart()
		if me == 0 {
			copy(buf.Bytes(), pattern(42, size))
			g.Send(buf.Addr(), size, right, 4)
			g.LocalBarrier()
		} else {
			g.Recv(buf.Addr(), size, left, 4)
			g.LocalBarrier()
			if right != 0 {
				g.Send(buf.Addr(), size, right, 4)
			}
		}
		g.End()
		h.GroupCall(g)
		h.Proc().AdvanceBusy(compute)
		t0 := h.Proc().Now()
		h.GroupWait(g)
		waits[me] = h.Proc().Now() - t0
		if me != 0 && !bytes.Equal(buf.Bytes(), pattern(42, size)) {
			t.Errorf("rank %d: ring bcast payload corrupted", me)
		}
	})
	return waits, fw
}

func TestGroupRingBcastOverlap(t *testing.T) {
	// A 8-rank ring with data dependencies progresses entirely on the DPUs
	// while every host computes — the paper's Figure 1 case (3).
	const size = 64 << 10
	const compute = 20 * sim.Millisecond
	waits, _ := ringBcast(t, 4, 2, DefaultConfig(), size, compute)
	for rank, wt := range waits {
		if wt > 100*sim.Microsecond {
			t.Errorf("rank %d waited %v after compute; ring did not progress on DPUs", rank, wt)
		}
	}
}

func TestGroupRingBcastStaging(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Mechanism = MechStaging
	waits, fw := ringBcast(t, 3, 1, cfg, 32<<10, 10*sim.Millisecond)
	for rank, wt := range waits {
		if wt > 100*sim.Microsecond {
			t.Errorf("rank %d waited %v; staged ring should still overlap", rank, wt)
		}
	}
	var staged int64
	for i := 0; i < fw.NumProxies(); i++ {
		staged += fw.Proxy(i).StagedOps
	}
	if staged != 2 { // two forwarding sends in a 3-rank ring
		t.Errorf("StagedOps = %d, want 2", staged)
	}
}

func TestGroupOrderingWithoutComputeStillCorrect(t *testing.T) {
	// No compute at all: GroupWait immediately after GroupCall.
	waits, _ := ringBcast(t, 2, 2, DefaultConfig(), 8<<10, 0)
	_ = waits
}

func TestGroupSingleProxyBothEnds(t *testing.T) {
	// With 1 proxy per DPU and 2 ranks per node, one proxy serves both ends
	// of a dependency chain; Algorithm 1's return-to-progress-engine must
	// prevent deadlock.
	ccfg := cluster.DefaultConfig(1, 4)
	ccfg.ProxiesPerDPU = 1
	cl := cluster.New(ccfg)
	sites := make([]*cluster.Site, ccfg.NP())
	for i := range sites {
		sites[i] = cl.NewHostSite(cl.NodeOfRank(i), fmt.Sprintf("host%d", i))
	}
	fw := New(cl, DefaultConfig(), sites)
	fw.Start()
	const size = 4 << 10
	np := ccfg.NP()
	for i := 0; i < np; i++ {
		h := fw.Host(i)
		cl.K.Spawn(fmt.Sprintf("host%d", i), func(p *sim.Proc) {
			h.Bind(p)
			buf := h.site.Space.Alloc(size, true)
			me := h.Rank()
			g := h.GroupStart()
			if me == 0 {
				copy(buf.Bytes(), pattern(3, size))
				g.Send(buf.Addr(), size, 1, 0)
			} else {
				g.Recv(buf.Addr(), size, me-1, 0)
				g.LocalBarrier()
				if me+1 < np {
					g.Send(buf.Addr(), size, me+1, 0)
				}
			}
			g.End()
			h.GroupCall(g)
			h.GroupWait(g)
			if me > 0 && !bytes.Equal(buf.Bytes(), pattern(3, size)) {
				t.Errorf("rank %d: chain payload corrupted", me)
			}
		})
	}
	cl.K.Run()
	if len(cl.K.Deadlocked) > 0 {
		t.Fatal("single-proxy dependency chain deadlocked")
	}
}

func TestGroupReplayCacheHit(t *testing.T) {
	// Re-calling a group request must (a) ship only the request ID,
	// (b) still move fresh data, and (c) count as a DPU cache hit.
	const size, iters = 32 << 10, 5
	var fw *Framework
	fw = runFw(t, 2, 1, DefaultConfig(), func(h *Host) {
		buf := h.site.Space.Alloc(size, true)
		g := h.GroupStart()
		if h.Rank() == 0 {
			g.Send(buf.Addr(), size, 1, 0)
		} else {
			g.Recv(buf.Addr(), size, 0, 0)
		}
		g.End()
		for it := 0; it < iters; it++ {
			if h.Rank() == 0 {
				copy(buf.Bytes(), pattern(byte(it*11), size))
			}
			h.GroupCall(g)
			h.GroupWait(g)
			if h.Rank() == 1 && !bytes.Equal(buf.Bytes(), pattern(byte(it*11), size)) {
				t.Errorf("iteration %d: replay delivered stale data", it)
			}
		}
	})
	var hits, misses int64
	for i := 0; i < fw.NumProxies(); i++ {
		hits += fw.Proxy(i).GroupHits
		misses += fw.Proxy(i).GroupMiss
	}
	if misses != 2 || hits != int64(2*(iters-1)) {
		t.Fatalf("group cache hits=%d misses=%d, want %d/2", hits, misses, 2*(iters-1))
	}
	// Cross-registration must have happened once per send entry.
	if fw.Cluster().GVMI.CrossRegs != 1 {
		t.Fatalf("CrossRegs = %d, want 1", fw.Cluster().GVMI.CrossRegs)
	}
}

func TestGroupCacheDisabledResends(t *testing.T) {
	cfg := DefaultConfig()
	cfg.GroupCache = false
	const size, iters = 8 << 10, 3
	fw := runFw(t, 2, 1, cfg, func(h *Host) {
		buf := h.site.Space.Alloc(size, true)
		g := h.GroupStart()
		if h.Rank() == 0 {
			g.Send(buf.Addr(), size, 1, 0)
		} else {
			g.Recv(buf.Addr(), size, 0, 0)
		}
		g.End()
		for it := 0; it < iters; it++ {
			h.GroupCall(g)
			h.GroupWait(g)
		}
	})
	var hits, misses int64
	for i := 0; i < fw.NumProxies(); i++ {
		hits += fw.Proxy(i).GroupHits
		misses += fw.Proxy(i).GroupMiss
	}
	if hits != 0 || misses != int64(2*iters) {
		t.Fatalf("cache disabled: hits=%d misses=%d, want 0/%d", hits, misses, 2*iters)
	}
}

func TestGroupAlltoallPattern(t *testing.T) {
	// Full personalized exchange recorded as one group per rank.
	const per = 4 << 10
	runFw(t, 2, 2, DefaultConfig(), func(h *Host) {
		np := 4
		me := h.Rank()
		send := h.site.Space.Alloc(np*per, true)
		recv := h.site.Space.Alloc(np*per, true)
		for dst := 0; dst < np; dst++ {
			copy(send.Bytes()[dst*per:(dst+1)*per], pattern(byte(me*16+dst), per))
		}
		g := h.GroupStart()
		for i := 1; i < np; i++ {
			src := (me - i + np) % np
			g.Recv(recv.Addr()+memAddr(src*per), per, src, 0)
		}
		for i := 1; i < np; i++ {
			dst := (me + i) % np
			g.Send(send.Addr()+memAddr(dst*per), per, dst, 0)
		}
		g.End()
		h.GroupCall(g)
		h.GroupWait(g)
		for src := 0; src < np; src++ {
			if src == me {
				continue
			}
			if !bytes.Equal(recv.Bytes()[src*per:(src+1)*per], pattern(byte(src*16+me), per)) {
				t.Errorf("rank %d: block from %d corrupted", me, src)
			}
		}
	})
}

func TestWarmupCostChargedOnce(t *testing.T) {
	cfg := DefaultConfig()
	cfg.WarmupPerOp = 2 * sim.Millisecond
	cfg.WarmupCalls = 1
	const size = 8 << 10
	durations := make([]sim.Time, 3)
	runFw(t, 2, 1, cfg, func(h *Host) {
		buf := h.site.Space.Alloc(size, true)
		g := h.GroupStart()
		if h.Rank() == 0 {
			g.Send(buf.Addr(), size, 1, 0)
		} else {
			g.Recv(buf.Addr(), size, 0, 0)
		}
		g.End()
		for it := 0; it < 3; it++ {
			t0 := h.Proc().Now()
			h.GroupCall(g)
			h.GroupWait(g)
			if h.Rank() == 0 {
				durations[it] = h.Proc().Now() - t0
			}
		}
	})
	if durations[0] < cfg.WarmupPerOp {
		t.Fatalf("first call %v did not include warm-up %v", durations[0], cfg.WarmupPerOp)
	}
	if durations[1] >= cfg.WarmupPerOp || durations[2] >= cfg.WarmupPerOp {
		t.Fatalf("warm-up charged beyond WarmupCalls: %v", durations)
	}
}

func TestTwoConcurrentGroupRequests(t *testing.T) {
	// Two in-flight group exchanges with different tags and buffers (the
	// P3DFFT double-Ialltoall pattern) must complete independently and
	// deliver the right data.
	const size = 16 << 10
	runFw(t, 2, 1, DefaultConfig(), func(h *Host) {
		a := h.site.Space.Alloc(size, true)
		b := h.site.Space.Alloc(size, true)
		me := h.Rank()
		peer := 1 - me
		ga, gb := h.GroupStart(), h.GroupStart()
		if me == 0 {
			copy(a.Bytes(), pattern(1, size))
			copy(b.Bytes(), pattern(2, size))
			ga.Send(a.Addr(), size, peer, 10)
			gb.Send(b.Addr(), size, peer, 20)
		} else {
			ga.Recv(a.Addr(), size, peer, 10)
			gb.Recv(b.Addr(), size, peer, 20)
		}
		ga.End()
		gb.End()
		h.GroupCall(ga)
		h.GroupCall(gb)
		h.GroupWait(gb)
		h.GroupWait(ga)
		if me == 1 {
			if !bytes.Equal(a.Bytes(), pattern(1, size)) || !bytes.Equal(b.Bytes(), pattern(2, size)) {
				t.Error("concurrent group requests mixed up payloads")
			}
		}
	})
}

func TestProxyMappingModulo(t *testing.T) {
	ccfg := cluster.DefaultConfig(2, 8)
	ccfg.ProxiesPerDPU = 3
	cl := cluster.New(ccfg)
	sites := make([]*cluster.Site, ccfg.NP())
	for i := range sites {
		sites[i] = cl.NewHostSite(cl.NodeOfRank(i), "h")
	}
	fw := New(cl, DefaultConfig(), sites)
	// host rank 5 on node 0 -> local 5 % 3 = proxy 2 on node 0
	if px := fw.proxyFor(5); px.node != 0 || px.local != 2 {
		t.Fatalf("proxyFor(5) = node %d local %d, want 0/2", px.node, px.local)
	}
	// host rank 12 -> node 1, local rank 4 -> proxy 1 on node 1 (global 4)
	if px := fw.proxyFor(12); px.node != 1 || px.local != 1 {
		t.Fatalf("proxyFor(12) = node %d local %d, want 1/1", px.node, px.local)
	}
}

// memAddr converts an int offset for address arithmetic in tests.
func memAddr(i int) mem.Addr { return mem.Addr(i) }

func TestStatsAggregation(t *testing.T) {
	const size, iters = 64 << 10, 3
	fw := runFw(t, 2, 1, DefaultConfig(), func(h *Host) {
		buf := h.site.Space.Alloc(size, true)
		g := h.GroupStart()
		if h.Rank() == 0 {
			g.Send(buf.Addr(), size, 1, 0)
		} else {
			g.Recv(buf.Addr(), size, 0, 0)
		}
		g.End()
		for it := 0; it < iters; it++ {
			h.GroupCall(g)
			h.GroupWait(g)
		}
	})
	s := fw.Stats()
	if s.RDMAWrites != iters {
		t.Fatalf("RDMAWrites = %d, want %d", s.RDMAWrites, iters)
	}
	if s.StagedOps != 0 || s.RDMAReads != 0 {
		t.Fatal("GVMI mechanism must not stage")
	}
	if s.GroupMisses != 2 || s.GroupHits != 2*(iters-1) {
		t.Fatalf("group cache stats: %d/%d", s.GroupHits, s.GroupMisses)
	}
	if s.CtrlMsgs == 0 {
		t.Fatal("no control messages counted")
	}
	if s.String() == "" {
		t.Fatal("empty Stats string")
	}
}

func TestGroupMisusePanics(t *testing.T) {
	runFw(t, 1, 1, DefaultConfig(), func(h *Host) {
		g := h.GroupStart()
		buf := h.site.Space.Alloc(64, true)
		g.Send(buf.Addr(), 64, 0, 0)

		func() {
			defer func() {
				if recover() == nil {
					t.Error("GroupCall before End must panic")
				}
			}()
			h.GroupCall(g)
		}()

		g.End()
		func() {
			defer func() {
				if recover() == nil {
					t.Error("recording after End must panic")
				}
			}()
			g.Send(buf.Addr(), 64, 0, 0)
		}()
	})
}

func TestGroupSizeMismatchPanics(t *testing.T) {
	ccfg := cluster.DefaultConfig(2, 1)
	cl := cluster.New(ccfg)
	sites := []*cluster.Site{cl.NewHostSite(0, "a"), cl.NewHostSite(1, "b")}
	fw := New(cl, DefaultConfig(), sites)
	fw.Start()
	panicked := false
	for i := 0; i < 2; i++ {
		h := fw.Host(i)
		cl.K.Spawn("h", func(p *sim.Proc) {
			defer func() {
				if recover() != nil {
					panicked = true
				}
			}()
			h.Bind(p)
			buf := sites[h.Rank()].Space.Alloc(1024, true)
			g := h.GroupStart()
			if h.Rank() == 0 {
				g.Send(buf.Addr(), 1024, 1, 0)
			} else {
				g.Recv(buf.Addr(), 512, 0, 0) // mismatched size
			}
			g.End()
			h.GroupCall(g)
			h.GroupWait(g)
		})
	}
	cl.K.Run()
	if !panicked {
		t.Fatal("size mismatch between matched send and recv not detected")
	}
}

func TestFrameworkStopUnblocksProxies(t *testing.T) {
	fw := runFw(t, 2, 1, DefaultConfig(), func(h *Host) {
		buf := h.site.Space.Alloc(1024, true)
		if h.Rank() == 0 {
			h.Wait(h.SendOffload(buf.Addr(), 1024, 1, 0))
		} else {
			h.Wait(h.RecvOffload(buf.Addr(), 1024, 0, 0))
		}
	})
	cl := fw.Cluster()
	fw.Stop()
	cl.K.Run()
	if cl.K.Live() != 0 {
		t.Fatalf("%d proxies still live after Stop", cl.K.Live())
	}
}

func TestTraceRecordsProtocolEvents(t *testing.T) {
	ccfg := cluster.DefaultConfig(2, 1)
	cl := cluster.New(ccfg)
	cl.Trace = trace.New(0)
	sites := []*cluster.Site{cl.NewHostSite(0, "a"), cl.NewHostSite(1, "b")}
	fw := New(cl, DefaultConfig(), sites)
	fw.Start()
	for i := 0; i < 2; i++ {
		h := fw.Host(i)
		cl.K.Spawn("h", func(p *sim.Proc) {
			h.Bind(p)
			buf := sites[h.Rank()].Space.Alloc(4096, true)
			if h.Rank() == 0 {
				h.Wait(h.SendOffload(buf.Addr(), 4096, 1, 0))
			} else {
				h.Wait(h.RecvOffload(buf.Addr(), 4096, 0, 0))
			}
		})
	}
	cl.K.Run()
	actions := map[string]bool{}
	for _, e := range cl.Trace.Events() {
		actions[e.Action] = true
	}
	for _, want := range []string{"Send_Offload", "Recv_Offload", "rts", "rtr", "gvmi-write", "FIN"} {
		if !actions[want] {
			t.Fatalf("trace missing %q; got %v", want, actions)
		}
	}
}
