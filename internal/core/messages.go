package core

import (
	"repro/internal/datapath"
	"repro/internal/gvmi"
	"repro/internal/mem"
	"repro/internal/span"
	"repro/internal/verbs"
)

// Control-message payloads exchanged between hosts and proxies. Their Size
// fields on the wire are taken from Config (CtrlSize / GroupOpWireSize).

// rtsMsg is the Ready-To-Send a source host sends to its proxy
// (Send_Offload, Figure 7): source buffer metadata for the chosen mechanism.
type rtsMsg struct {
	Src, Dst, Tag int
	Size          int
	SrcReqID      int64
	// Path selects the datapath the proxy executes this transfer on. The
	// field rides inside CtrlSize, so wire cost is unchanged.
	Path datapath.Kind
	// CrossGVMI path: the host-registered mkey for cross-registration.
	MKey gvmi.MKeyInfo
	// Source address; for the staged path also the plain IB rkey so the
	// proxy can RDMA-read the source into DPU memory.
	SrcAddr mem.Addr
	SrcRKey verbs.Key

	// Span is the sender's root span, carried across the host->proxy hop so
	// the proxy's transfer work is recorded as its child (0 = untraced).
	Span span.ID
}

// rtrMsg is the Ready-To-Receive a destination host sends to the *sender's*
// proxy (Recv_Offload): destination buffer address and rkey.
type rtrMsg struct {
	Src, Dst, Tag int
	Size          int
	DstReqID      int64
	DstAddr       mem.Addr
	RKey          verbs.Key

	// Span is the receiver's root span (see rtsMsg.Span).
	Span span.ID
}

// finMsg completes one basic-primitive request on a host.
type finMsg struct {
	ReqID int64
}

// gmetaMsg is the receive-entry metadata a receiving host pushes to the
// source host during the Group_Offload_call gather phase (Figure 9): the
// sender needs the destination address/rkey to hand to its proxy, and the
// receiver's group id so delivery notifications can be attributed exactly.
type gmetaMsg struct {
	DstRank  int
	Tag      int
	Size     int
	DstAddr  mem.Addr
	RKey     verbs.Key
	DstGroup int
}

// OpType classifies group-primitive entries.
type OpType int

// Group operation types.
const (
	OpSend OpType = iota
	OpRecv
	OpBarrier
)

// wireOp is one Group_op entry as shipped in a Group_Offload_packet.
type wireOp struct {
	Type OpType
	Size int
	Tag  int
	// Path is the datapath the proxy executes send entries on (set from
	// the group request's path at gather time; rides inside
	// GroupOpWireSize, so wire cost is unchanged).
	Path datapath.Kind

	// Send entries.
	SrcAddr  mem.Addr
	Dst      int
	MKey     gvmi.MKeyInfo // CrossGVMI path
	SrcRKey  verbs.Key     // staged path
	DstAddr  mem.Addr      // matched receive-entry info
	DstRKey  verbs.Key
	DstGroup int

	// Recv entries.
	Src int
}

// groupPacket is the Group_Offload_packet: the entire recorded pattern,
// sent as one contiguous message from host to proxy.
type groupPacket struct {
	HostRank int
	GroupID  int
	CallSeq  int
	Entries  []wireOp

	// Span is the host-side root span of this call; the proxy's execution
	// span for CallSeq parents to it (0 = untraced).
	Span span.ID
}

// greplayMsg replays a cached group request (Section VII-D): on a host-side
// cache hit only the request ID travels to the DPU.
type greplayMsg struct {
	HostRank int
	GroupID  int
	CallSeq  int

	// Span is the host-side root span of this call (see groupPacket.Span).
	Span span.ID
}

// dlvMsg is the delivery notification that implements the barrier/
// receive-progress counters of Section VII-C: after a proxy completes an
// RDMA write on behalf of srcHost, it bumps a counter attributed to the
// destination host's group request. (The paper uses pre-registered RDMA
// counter writes; a small control packet has the same wire cost in our
// model.) Normally it travels proxy-to-proxy; when proxy crashes are
// configured the counters live in destination *host* memory instead —
// exactly the paper's RDMA-counter placement — so they survive a proxy
// failure, and Call/Entry identify the notification uniquely so a fallback
// retransmission is counted exactly once.
type dlvMsg struct {
	SrcHost  int
	DstHost  int
	DstGroup int
	Call     int // group call number this delivery belongs to
	Entry    int // send-entry index within the call
}

// gfailMsg tells a host that its proxy cannot serve a replayed group
// request (the proxy restarted after a crash and lost its group cache); the
// host fails over to host-progressed execution.
type gfailMsg struct {
	GroupID int
	CallSeq int
}

// foSendMsg is the host-progressed fallback for a basic-primitive send: the
// source host, having declared its proxy dead, pushes the payload eagerly
// to the destination host.
type foSendMsg struct {
	Src, Dst, Tag int
	Size          int
	ReqID         int64 // sender's request, completed by the foAckMsg
	Data          []byte

	// Span is the sender's root span, kept across the failover re-execution
	// so the eager push and its ack stay attributed to the original op.
	Span span.ID
}

// foAckMsg completes a fallback send on the source host.
type foAckMsg struct {
	ReqID int64
}

// gdoneMsg is the completion-counter update written back to the host when
// an entire group call has finished on the proxy.
type gdoneMsg struct {
	GroupID int
	CallSeq int
}
