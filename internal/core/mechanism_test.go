package core

import "testing"

// The pre-refactor String() fell through to "gvmi" for any unrecognized
// value, so a corrupted config printed as the proposed mechanism. It must
// be exhaustive.
func TestMechanismStringExhaustive(t *testing.T) {
	cases := []struct {
		m    Mechanism
		want string
	}{
		{MechGVMI, "gvmi"},
		{MechStaging, "staging"},
		{Mechanism(7), "unknown(7)"},
		{Mechanism(-3), "unknown(-3)"},
	}
	for _, c := range cases {
		if got := c.m.String(); got != c.want {
			t.Errorf("Mechanism(%d).String() = %q, want %q", int(c.m), got, c.want)
		}
	}
}
