package core

import (
	"repro/internal/datapath"
	"repro/internal/gvmi"
	"repro/internal/mem"
	"repro/internal/span"
	"repro/internal/verbs"
)

// Proxy implements datapath.Exec: it is the execution surface the
// pluggable datapaths post their RDMA sequences through. The methods are
// thin adapters over the proxy's existing machinery so a datapath's
// Execute reproduces the pre-refactor mechanism branches exactly.
var _ datapath.Exec = (*Proxy)(nil)

// PostWrite implements datapath.Exec.
func (px *Proxy) PostWrite(op verbs.WriteOp) error { return px.ctx.PostWrite(px.proc, op) }

// PostEngineWrite implements datapath.Exec: the write is posted through
// the node's DSA engine port (its own injection overhead and line rate)
// instead of the ARM-driven proxy context. The proxy core still pays the
// descriptor handoff (PostWR) — the control plane stays in software.
func (px *Proxy) PostEngineWrite(op verbs.WriteOp) error {
	if px.dsaCtx == nil {
		panic("core: KindDSA transfer on a node whose device profile has no DSA engine")
	}
	return px.dsaCtx.PostWrite(px.proc, op)
}

// PostRead implements datapath.Exec.
func (px *Proxy) PostRead(op verbs.ReadOp) error { return px.ctx.PostRead(px.proc, op) }

// CrossReg implements datapath.Exec.
func (px *Proxy) CrossReg(srcHost int, info gvmi.MKeyInfo, parent span.ID) *verbs.MR {
	return px.crossReg(srcHost, info, parent)
}

// AcquireStage implements datapath.Exec.
func (px *Proxy) AcquireStage(size int, parent span.ID) datapath.Stage {
	return px.getStage(size, parent)
}

// ReleaseStage implements datapath.Exec.
func (px *Proxy) ReleaseStage(s datapath.Stage) { px.putStage(s.(*stageBuf)) }

// Later implements datapath.Exec.
func (px *Proxy) Later(fn func()) { px.later(fn) }

// Spans implements datapath.Exec.
func (px *Proxy) Spans() *span.Collector { return px.spans() }

// TraceRDMA implements datapath.Exec.
func (px *Proxy) TraceRDMA(event, detail string) {
	if tr := px.fw.cl.Trace; tr.Enabled() {
		tr.Add(px.proc.Now(), px.entity(), event, detail)
	}
}

// CountWrite implements datapath.Exec.
func (px *Proxy) CountWrite() { px.RDMAWrites++ }

// CountRead implements datapath.Exec.
func (px *Proxy) CountRead() { px.RDMAReads++ }

// CountStaged implements datapath.Exec.
func (px *Proxy) CountStaged() { px.StagedOps++ }

// CountEngine implements datapath.Exec.
func (px *Proxy) CountEngine() { px.EngineOps++ }

// stageBuf implements datapath.Stage.
var _ datapath.Stage = (*stageBuf)(nil)

// LKey implements datapath.Stage.
func (sb *stageBuf) LKey() verbs.Key { return sb.mr.LKey() }

// Addr implements datapath.Stage.
func (sb *stageBuf) Addr() mem.Addr { return sb.buf.Addr() }
