// Package core implements the paper's contribution: a framework that
// offloads arbitrary communication patterns from host processes to
// BlueField DPU worker ("proxy") processes.
//
// It provides the two API families of Section VI:
//
//   - Basic primitives — Send_Offload / Recv_Offload / Wait — nonblocking
//     point-to-point transfers performed by a proxy on the DPU
//     (Host.SendOffload, Host.RecvOffload, Host.Wait);
//   - Group primitives — Group_Offload_start/end/call, Send/Recv_Goffload,
//     Local_barrier_Goffload, Group_Wait — which record an entire
//     communication pattern, including ordering dependencies, and hand the
//     whole graph to the DPU in one shot (Host.GroupStart, GroupRequest).
//
// Two data-movement mechanisms implement the primitives (Section VII):
//
//   - MechGVMI: the proxy cross-registers host buffers through cross-GVMI
//     and RDMA-writes directly from source host memory to destination host
//     memory — no staging;
//   - MechStaging: the state-of-the-art baseline path (BluesMPI-style):
//     data is first moved into DPU memory, then re-injected toward the
//     destination — one extra hop (Figure 6).
//
// The registration caches of Section VII-B and the group-request caches of
// Section VII-D are individually switchable for ablation studies.
package core

import (
	"fmt"

	"repro/internal/cluster"
	"repro/internal/datapath"
	"repro/internal/device"
	"repro/internal/fault"
	"repro/internal/gvmi"
	"repro/internal/regcache"
	"repro/internal/sim"
	"repro/internal/verbs"
)

// Mechanism selects how proxies move host data.
type Mechanism int

const (
	// MechGVMI uses cross-GVMI: direct host-to-host RDMA posted by the DPU.
	MechGVMI Mechanism = iota
	// MechStaging bounces data through DPU memory (baseline mechanism).
	MechStaging
)

// String implements fmt.Stringer. It is exhaustive: out-of-range values
// (a misconfigured policy table, a corrupted config) report as unknown(n)
// instead of silently claiming to be gvmi.
func (m Mechanism) String() string {
	switch m {
	case MechGVMI:
		return "gvmi"
	case MechStaging:
		return "staging"
	default:
		return fmt.Sprintf("unknown(%d)", int(m))
	}
}

// Config tunes the framework.
type Config struct {
	Mechanism Mechanism
	// RegCaches enables the GVMI / cross-registration / IB registration
	// caches (Section VII-B). Off = register on every transfer.
	RegCaches bool
	// GroupCache enables the group-request caches on host and DPU
	// (Section VII-D): a replayed group request sends only its ID.
	GroupCache bool
	// CtrlSize is the wire size of a bare control message (RTS/RTR/FIN).
	CtrlSize int
	// GroupOpWireSize is the per-entry wire size of a Group_Offload_packet.
	GroupOpWireSize int
	// ProxyHandleCost is the DPU CPU cost of parsing one control message.
	ProxyHandleCost sim.Time
	// WarmupPerOp is a per-entry setup penalty the proxy pays during the
	// first WarmupCalls executions of each group request; it models the
	// first-several-iterations degradation the paper observed in BluesMPI
	// at the application level (Section VIII-D, Figure 16). Zero for the
	// proposed design.
	WarmupPerOp sim.Time
	// WarmupCalls is how many calls of each request pay WarmupPerOp.
	WarmupCalls int
}

// DefaultConfig returns the proposed design: GVMI mechanism, all caches on.
func DefaultConfig() Config {
	return Config{
		Mechanism:       MechGVMI,
		RegCaches:       true,
		GroupCache:      true,
		CtrlSize:        48,
		GroupOpWireSize: 64,
		ProxyHandleCost: 120 * sim.Nanosecond,
	}
}

// Framework ties hosts and proxies together. Create it with New, then call
// Start before launching host processes.
type Framework struct {
	cl      *cluster.Cluster
	cfg     Config
	hosts   []*Host
	proxies []*Proxy
	stopped bool
	tenancy *Tenancy // nil = single-job framework (see tenancy.go)
}

// New builds the framework for the given host attachment sites (one per
// rank; typically mpi.Rank sites so that application buffers are shared).
func New(cl *cluster.Cluster, cfg Config, sites []*cluster.Site) *Framework {
	if len(sites) != cl.Cfg.NP() {
		panic(fmt.Sprintf("core: %d sites for %d ranks", len(sites), cl.Cfg.NP()))
	}
	fw := &Framework{cl: cl, cfg: cfg}
	nProxies := cl.Cfg.Nodes * cl.Cfg.ProxiesPerDPU
	for i := 0; i < nProxies; i++ {
		node := i / cl.Cfg.ProxiesPerDPU
		local := i % cl.Cfg.ProxiesPerDPU
		site := cl.NewDPUSite(node, fmt.Sprintf("proxy%d.%d", node, local))
		fw.proxies = append(fw.proxies, newProxy(fw, i, node, local, site))
	}
	np := cl.Cfg.NP()
	for r := 0; r < np; r++ {
		h := &Host{
			fw:   fw,
			rank: r,
			site: sites[r],
			ctx:  sites[r].NewCtx(fmt.Sprintf("offload%d", r)),
			reqs: make(map[int64]*OffloadRequest),
		}
		h.gvmiCache = regcache.New[gvmi.MKeyInfo](nProxies, 0, nil)
		h.ibCache = regcache.New[*verbs.MR](1, 0, func(mr *verbs.MR) { mr.Deregister() })
		h.gvmiCache.Instrument(cl.Met, fmt.Sprintf("gvmi.rank%d", r))
		h.ibCache.Instrument(cl.Met, fmt.Sprintf("ib.rank%d", r))
		if fw.crashesConfigured() {
			// Crash tolerance: delivery counters move into host memory
			// (dlvCtx receives the RDMA counter writes) and the host tracks
			// enough request state to re-execute lost work itself.
			h.dlvCtx = sites[r].NewCtx(fmt.Sprintf("dlvctr%d", r))
			h.dlvSeen = make(map[dlvID]bool)
			h.dlvCnt = make(map[gsKey]int)
			h.pendingSends = make(map[int64]*sendRec)
			h.osPending = make(map[int64]*osRec)
			h.mHeartbeatLosses = cl.Met.Counter("core", fmt.Sprintf("rank%d", r), "heartbeat_losses")
			h.mFailovers = cl.Met.Counter("core", fmt.Sprintf("rank%d", r), "failovers")
		}
		fw.hosts = append(fw.hosts, h)
	}
	return fw
}

// crashesConfigured reports whether the fault plan schedules any proxy
// crash. Only then does the framework pay for crash tolerance (host-side
// delivery counters, request records); without crashes every code path is
// identical to a fault-free build.
func (fw *Framework) crashesConfigured() bool {
	f := fw.cl.Cfg.Fault
	return f != nil && len(f.Crashes) > 0
}

// hbTimeout returns the heartbeat timeout after which a silent proxy is
// declared dead.
func (fw *Framework) hbTimeout() sim.Time {
	if f := fw.cl.Cfg.Fault; f != nil && f.HeartbeatTimeout > 0 {
		return f.HeartbeatTimeout
	}
	return fault.DefaultConfig(0).HeartbeatTimeout
}

// DefaultPath maps the construction-time mechanism onto a datapath kind —
// the path every operation takes unless the caller picks one per call
// (SendOffloadVia / GroupStartVia, normally driven by a policy engine).
func (fw *Framework) DefaultPath() datapath.Kind {
	if fw.cfg.Mechanism == MechStaging {
		return datapath.KindStaged
	}
	return datapath.KindCrossGVMI
}

// Cluster returns the underlying cluster.
func (fw *Framework) Cluster() *cluster.Cluster { return fw.cl }

// ProfileOfRank returns the device profile of the node hosting rank.
func (fw *Framework) ProfileOfRank(rank int) device.Profile {
	return fw.cl.ProfileOf(fw.cl.NodeOfRank(rank))
}

// CapsOfRank returns the datapath capability set of the node hosting rank.
// Every rank that knows the sender's node can compute this, which is what
// keeps capability fallbacks consistent across a pair or a group.
func (fw *Framework) CapsOfRank(rank int) datapath.Caps {
	p := fw.ProfileOfRank(rank)
	return datapath.Caps{CrossGVMI: p.CrossGVMI, DSA: p.HasDSA}
}

// Config returns the framework configuration.
func (fw *Framework) Config() Config { return fw.cfg }

// Host returns the handle for a host rank. The handle must be bound to its
// simulated process (Bind) before use.
func (fw *Framework) Host(rank int) *Host { return fw.hosts[rank] }

// Proxy returns proxy i (for inspection in tests).
func (fw *Framework) Proxy(i int) *Proxy { return fw.proxies[i] }

// NumProxies returns the total proxy count.
func (fw *Framework) NumProxies() int { return len(fw.proxies) }

// proxyFor returns the proxy serving a host rank:
// proxy_local_rank = host_source_rank % num_proxies_per_dpu, on the rank's
// own node (Section VII-A).
func (fw *Framework) proxyFor(rank int) *Proxy {
	node := fw.cl.NodeOfRank(rank)
	return fw.proxies[node*fw.cl.Cfg.ProxiesPerDPU+fw.cl.ProxyOfRank(rank)]
}

// Stop asks all proxy worker processes to exit (Finalize_Offload). Call it
// after the application processes have finished, then run the kernel once
// more so the proxies unwind — this releases the goroutines (and therefore
// the whole simulated cluster) for garbage collection.
func (fw *Framework) Stop() {
	fw.stopped = true
	for _, px := range fw.proxies {
		px.ctx.InboxCond.Broadcast()
	}
	if fw.crashesConfigured() {
		for _, h := range fw.hosts {
			h.dlvCtx.InboxCond.Broadcast()
		}
	}
}

// Start spawns the proxy worker processes and performs the Init_Offload
// setup: every proxy generates its GVMI-ID, which is exchanged with all
// processes in the global communicator (modelled as part of initialization,
// before timing starts).
func (fw *Framework) Start() {
	for _, px := range fw.proxies {
		px := px
		px.gvmiID = fw.cl.GVMI.GenerateID(px.ctx)
		proc := fw.cl.K.Spawn(fmt.Sprintf("proxy%d", px.global), func(p *sim.Proc) {
			p.SetDaemon(true)
			px.run(p)
		})
		// Placement hint for sharded kernels: the proxy's events stay on
		// its node's shard (a no-op on serial kernels).
		proc.SetShard(fw.cl.K.ShardIndex(px.node))
	}
	if !fw.crashesConfigured() {
		return
	}
	// Schedule the fault plan's proxy crashes/restarts at their virtual
	// times (Start runs at t=0, before the kernel).
	for _, cr := range fw.cl.Cfg.Fault.Crashes {
		cr := cr
		if cr.Proxy < 0 || cr.Proxy >= len(fw.proxies) {
			panic(fmt.Sprintf("core: crash plan references proxy %d of %d", cr.Proxy, len(fw.proxies)))
		}
		px := fw.proxies[cr.Proxy]
		fw.cl.K.At(cr.At, func() { px.crash() })
		if cr.RestartAfter > 0 {
			fw.cl.K.At(cr.At+cr.RestartAfter, func() { px.restart() })
		}
	}
	// One counter daemon per host: it models the destination HCA updating
	// the pre-registered delivery counters in host memory — zero CPU cost,
	// it only accounts arrivals and wakes the readers (the host's own wait
	// loops and its proxy's progress engine).
	for _, h := range fw.hosts {
		h := h
		proc := fw.cl.K.Spawn(fmt.Sprintf("dlvctr%d", h.rank), func(p *sim.Proc) {
			p.SetDaemon(true)
			for !fw.stopped {
				for _, pkt := range h.dlvCtx.PollInbox() {
					h.noteDelivery(p.Now(), pkt.Payload.(*dlvMsg))
				}
				if h.dlvCtx.InboxLen() == 0 && !fw.stopped {
					h.dlvCtx.InboxCond.Wait(p)
				}
			}
		})
		proc.SetShard(fw.cl.K.ShardIndex(fw.cl.NodeOfRank(h.rank)))
	}
}
