package core

import (
	"fmt"
	"sort"

	"repro/internal/mem"
	"repro/internal/sim"
	"repro/internal/span"
	"repro/internal/verbs"
)

// This file is the host side of crash tolerance. When the fault plan
// schedules proxy crashes, every host keeps enough state to finish its
// outstanding communication without the DPU:
//
//   - delivery counters (Section VII-C) move into host memory — dlvCtx
//     receives the RDMA counter writes, deduplicated per (call, entry) so a
//     retransmission from a fallback host is counted exactly once;
//   - group requests remember their wire entries (g.wire), so a host can
//     re-execute the whole pattern itself with plain host-NIC RDMA writes —
//     the "host-progressed MPI" fallback. Re-execution is idempotent: data
//     writes repeat byte-identical payloads and notifications are deduped
//     at the destination;
//   - basic-primitive sends fall back to eager host-to-host pushes
//     (foSendMsg), acknowledged by the receiver;
//   - one-sided requests record everything needed to re-post the transfer
//     from the initiating host's own NIC.
//
// Detection is heartbeat-based: a live proxy refreshes a liveness counter
// in host memory (zero wire cost, like the delivery counters); a host
// declares the proxy dead once the counter has been stale for
// HeartbeatTimeout. In the simulation that is equivalent to — and modelled
// as — `crashed && now-crashedAt >= timeout`, with a one-shot kernel timer
// waking the hosts at exactly the detection instant. A proxy that restarts
// is detected through its generation counter: state posted under an older
// generation is gone, so the host fails over just the same (permanently —
// rebinding to a restarted proxy is future work).

// dlvID uniquely identifies one delivery notification.
type dlvID struct {
	src, dst, group, call, entry int
}

// gsKey indexes a host-side delivery counter: (group id, source host).
type gsKey struct {
	group, src int
}

// sendRec remembers an outstanding basic-primitive send for fallback.
type sendRec struct {
	req    *OffloadRequest
	dst    int
	tag    int
	size   int
	addr   mem.Addr
	gen    int // proxy generation the RTS was posted under
	foSent bool
}

// recvRec remembers an outstanding basic-primitive receive so an eager
// fallback push can be matched into it.
type recvRec struct {
	req  *OffloadRequest
	src  int
	tag  int
	size int
	addr mem.Addr
}

// osRec remembers an outstanding one-sided request; it carries everything
// needed to re-post the transfer from the host if the executing proxy dies.
type osRec struct {
	req      *OffloadRequest
	proxy    int // executing proxy (global index)
	isPut    bool
	lKey     verbs.Key
	lAddr    mem.Addr
	rKey     verbs.Key
	rAddr    mem.Addr
	size     int
	gen      int
	reissued bool
}

// fbCall is one group call being executed by the host itself, walking the
// same entry queue the proxy would have walked (advanceGroup's algorithm).
type fbCall struct {
	g       *GroupRequest
	call    int
	idx     int
	pending int         // host-posted RDMA writes not yet completed
	need    map[int]int // recv entries accounted so far this call, per src
	span    span.ID     // fallback-execution span, under the call's root
}

// noteDelivery is the counter daemon's accounting step (the destination
// HCA updating a pre-registered counter — no host CPU cost): deduplicate,
// bump, and wake the readers.
func (h *Host) noteDelivery(at sim.Time, m *dlvMsg) {
	id := dlvID{m.SrcHost, m.DstHost, m.DstGroup, m.Call, m.Entry}
	if h.dlvSeen[id] {
		h.DlvDup++
		if inj := h.fw.cl.Inj; inj != nil {
			inj.Note(at, fmt.Sprintf("rank%d", h.rank), "dlv-dup",
				fmt.Sprintf("src=%d group=%d call=%d entry=%d", m.SrcHost, m.DstGroup, m.Call, m.Entry))
		}
		return
	}
	h.dlvSeen[id] = true
	h.dlvCnt[gsKey{m.DstGroup, m.SrcHost}]++
	h.ctx.InboxCond.Broadcast()
	h.fw.proxyFor(h.rank).ctx.InboxCond.Broadcast()
}

// later queues fn for the next waitFor round (used from RDMA completion
// handlers, which cannot post work themselves).
func (h *Host) later(fn func()) {
	h.deferred = append(h.deferred, fn)
	h.ctx.InboxCond.Broadcast()
}

// runDeferred executes queued completion actions in process context.
func (h *Host) runDeferred() {
	for len(h.deferred) > 0 {
		fns := h.deferred
		h.deferred = nil
		for _, fn := range fns {
			fn()
		}
	}
}

// dropRecords forgets fallback bookkeeping for a completed request.
func (h *Host) dropRecords(reqID int64) {
	if h.pendingSends == nil {
		return
	}
	delete(h.pendingSends, reqID)
	delete(h.osPending, reqID)
	for i, rec := range h.pendingRecvs {
		if rec.req.id == reqID {
			h.pendingRecvs = append(h.pendingRecvs[:i], h.pendingRecvs[i+1:]...)
			break
		}
	}
}

// proxyLost reports whether work posted to px under generation gen is gone:
// either the proxy has been silent past the heartbeat timeout, or it came
// back from a restart with a newer generation (empty state).
func (fw *Framework) proxyLost(px *Proxy, gen int, now sim.Time) bool {
	if px.crashed {
		return now-px.crashedAt >= fw.hbTimeout()
	}
	return px.gen > gen
}

// checkRecovery is the host's failure detector, run on every waitFor round:
// it declares the host's own proxy dead (triggering full failover) and
// re-posts one-sided requests whose executing proxy — possibly a remote
// one — has died.
func (h *Host) checkRecovery() {
	fw := h.fw
	now := h.proc.Now()
	if !h.failedOver {
		px := fw.proxyFor(h.rank)
		lost := false
		for id := 0; id < h.nextGroup && !lost; id++ {
			g := h.groups[id]
			if g != nil && g.sentToProxy && g.doneSeq < g.callSeq && fw.proxyLost(px, g.sentGen, now) {
				lost = true
			}
		}
		if !lost {
			for _, rec := range h.pendingSends {
				if !rec.foSent && fw.proxyLost(px, rec.gen, now) {
					lost = true
					break
				}
			}
		}
		if lost {
			h.failover(now)
		}
	}
	if len(h.osPending) > 0 {
		ids := make([]int64, 0, len(h.osPending))
		for id := range h.osPending {
			ids = append(ids, id)
		}
		sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
		for _, id := range ids {
			rec := h.osPending[id]
			if rec.reissued {
				continue
			}
			if fw.proxyLost(fw.proxies[rec.proxy], rec.gen, now) {
				h.reissueOneSided(rec, now)
			}
		}
	}
}

// failover switches the host permanently to host-progressed execution: all
// incomplete group calls are re-executed by the host itself and all
// outstanding basic sends are pushed eagerly to their peers.
func (h *Host) failover(now sim.Time) {
	fw := h.fw
	px := fw.proxyFor(h.rank)
	h.failedOver = true
	h.Failovers++
	h.mHeartbeatLosses.Inc()
	h.mFailovers.Inc()
	if inj := fw.cl.Inj; inj != nil {
		inj.Note(now, fmt.Sprintf("rank%d", h.rank), "heartbeat-loss",
			fmt.Sprintf("proxy%d silent for %s", px.global, fw.hbTimeout()))
		inj.Note(now, fmt.Sprintf("rank%d", h.rank), "failover",
			"switching to host-progressed fallback")
	}
	for id := 0; id < h.nextGroup; id++ {
		g := h.groups[id]
		if g == nil || !g.sentToProxy || g.doneSeq >= g.callSeq {
			continue
		}
		for c := g.doneSeq + 1; c <= g.callSeq; c++ {
			h.startFallbackCall(g, c)
		}
	}
	ids := make([]int64, 0, len(h.pendingSends))
	for id := range h.pendingSends {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		if rec := h.pendingSends[id]; !rec.foSent {
			h.foSendNow(rec)
		}
	}
}

// handleGroupFail reacts to a proxy that lost its group cache in a restart:
// the replayed call cannot run on the DPU, so the host takes over.
func (h *Host) handleGroupFail(m *gfailMsg) {
	if !h.failedOver {
		h.failover(h.proc.Now())
		return
	}
	// Already failed over: make sure the reported call is queued.
	g := h.groups[m.GroupID]
	if g == nil {
		return
	}
	queued := g.doneSeq
	for _, fb := range h.fbRun {
		if fb.g == g && fb.call > queued {
			queued = fb.call
		}
	}
	for c := queued + 1; c <= g.callSeq; c++ {
		h.startFallbackCall(g, c)
	}
}

// startFallbackCall queues one group call for host-progressed execution.
// The re-execution stays attributed to the call's original root span.
func (h *Host) startFallbackCall(g *GroupRequest, call int) {
	if g.wire == nil {
		panic(fmt.Sprintf("core: rank %d fallback for group %d with no wire entries", h.rank, g.id))
	}
	fb := &fbCall{g: g, call: call, need: make(map[int]int)}
	if sp := h.spans(); sp.Enabled() {
		fb.span = sp.Start(g.rootByCall[call], span.ClassRank, h.entity(), "core", "fallback_exec")
		sp.AttrInt(fb.span, "call", int64(call))
	}
	h.fbRun = append(h.fbRun, fb)
	h.FallbackCalls++
	if tr := h.fw.cl.Trace; tr.Enabled() {
		tr.Add(h.proc.Now(), fmt.Sprintf("rank%d", h.rank), "fallback-call",
			fmt.Sprintf("id=%d call=%d", g.id, call))
	}
}

// progressFallback advances queued fallback calls in order (calls of one
// host are sequential, like the proxy's engine).
func (h *Host) progressFallback() {
	for len(h.fbRun) > 0 {
		if !h.advanceFallback(h.fbRun[0]) {
			return
		}
		h.fbRun = h.fbRun[1:]
	}
}

// advanceFallback walks one call's entry queue exactly like the proxy's
// advanceGroup: post sends, account receives, hold at barriers until local
// completions and expected deliveries catch up. Returns true when the call
// has fully completed.
func (h *Host) advanceFallback(fb *fbCall) bool {
	g := fb.g
	for fb.idx < len(g.wire) {
		e := &g.wire[fb.idx]
		switch e.Type {
		case OpSend:
			h.fbPostSend(fb, fb.idx)
			fb.idx++
		case OpRecv:
			fb.need[e.Src]++
			fb.idx++
		case OpBarrier:
			if fb.pending > 0 || !h.fbRecvsOK(fb) {
				return false
			}
			fb.idx++
		}
	}
	if fb.pending > 0 || !h.fbRecvsOK(fb) {
		return false
	}
	if fb.call > g.doneSeq {
		g.doneSeq = fb.call
	}
	h.spans().End(fb.span)
	delete(g.rootByCall, fb.call)
	if tr := h.fw.cl.Trace; tr.Enabled() {
		tr.Add(h.proc.Now(), fmt.Sprintf("rank%d", h.rank), "fallback-complete",
			fmt.Sprintf("id=%d call=%d", g.id, fb.call))
	}
	return true
}

// fbRecvsOK checks the host-memory delivery counters against what this call
// requires so far: all prior calls' deliveries plus the entries walked in
// this call.
func (h *Host) fbRecvsOK(fb *fbCall) bool {
	g := fb.g
	for src, j := range fb.need {
		if h.dlvCnt[gsKey{g.id, src}] < (fb.call-1)*g.recvsPerCall(src)+j {
			return false
		}
	}
	return true
}

// fbPostSend re-executes one send entry from the host's own NIC: a direct
// RDMA write into the destination buffer (the gathered wire entry has its
// address and rkey), followed by the deduplicated delivery notification.
func (h *Host) fbPostSend(fb *fbCall, idx int) {
	g := fb.g
	e := &g.wire[idx]
	h.curSpan = fb.span
	mr := h.ibRegister(e.SrcAddr, e.Size)
	h.curSpan = 0
	fb.pending++
	h.FallbackWrites++
	if tr := h.fw.cl.Trace; tr.Enabled() {
		tr.Add(h.proc.Now(), fmt.Sprintf("rank%d", h.rank), "fallback-write",
			fmt.Sprintf("->%d size=%d call=%d entry=%d", e.Dst, e.Size, fb.call, idx))
	}
	callNum, entry, dst, dstGroup := fb.call, idx, e.Dst, e.DstGroup
	err := h.ctx.PostWrite(h.proc, verbs.WriteOp{
		LocalKey: mr.LKey(), LocalAddr: e.SrcAddr,
		RemoteKey: e.DstRKey, RemoteAddr: e.DstAddr,
		Size: e.Size,
		Span: fb.span,
		OnRemoteComplete: func(sim.Time) {
			h.later(func() {
				fb.pending--
				h.sendDlv(dst, dstGroup, callNum, entry, fb.span)
			})
		},
	})
	if err != nil {
		panic(fmt.Sprintf("core: rank %d fallback write: %v", h.rank, err))
	}
}

// sendDlv posts a delivery-counter write to the destination host's memory
// (process context).
func (h *Host) sendDlv(dst, dstGroup, call, entry int, parent span.ID) {
	peer := h.fw.hosts[dst]
	h.ctx.PostSend(h.proc, peer.dlvCtx, &verbs.Packet{
		Kind: "dlv", Size: h.fw.cfg.CtrlSize,
		Payload: &dlvMsg{
			SrcHost: h.rank, DstHost: dst, DstGroup: dstGroup,
			Call: call, Entry: entry,
		},
		Span: parent,
	})
}

// foSendNow pushes an outstanding basic send eagerly to the peer host.
func (h *Host) foSendNow(rec *sendRec) {
	rec.foSent = true
	h.FoSends++
	var data []byte
	if d := h.site.Space.ReadAt(rec.addr, rec.size); d != nil {
		data = make([]byte, rec.size)
		copy(data, d)
	}
	peer := h.fw.hosts[rec.dst]
	h.ctx.PostSend(h.proc, peer.ctx, &verbs.Packet{
		Kind: "fosend", Size: h.fw.cfg.CtrlSize + rec.size,
		Payload: &foSendMsg{
			Src: h.rank, Dst: rec.dst, Tag: rec.tag, Size: rec.size,
			ReqID: rec.req.id, Data: data, Span: rec.req.span,
		},
		Span: rec.req.span,
	})
	if tr := h.fw.cl.Trace; tr.Enabled() {
		tr.Add(h.proc.Now(), fmt.Sprintf("rank%d", h.rank), "fosend",
			fmt.Sprintf("dst=%d size=%d tag=%d", rec.dst, rec.size, rec.tag))
	}
}

// takeFoSend removes and returns a queued eager push matching (src, tag).
func (h *Host) takeFoSend(src, tag int) *foSendMsg {
	for i, m := range h.foQ {
		if m.Src == src && m.Tag == tag {
			h.foQ = append(h.foQ[:i], h.foQ[i+1:]...)
			return m
		}
	}
	return nil
}

// handleFoSend matches an eager fallback push against a pending receive
// (FIFO per (src, tag), like the proxy's match queues) or parks it until
// the receive is posted.
func (h *Host) handleFoSend(m *foSendMsg) {
	for i, rec := range h.pendingRecvs {
		if rec.src == m.Src && rec.tag == m.Tag {
			h.pendingRecvs = append(h.pendingRecvs[:i], h.pendingRecvs[i+1:]...)
			if m.Data != nil {
				h.site.Space.WriteAt(rec.addr, m.Data, m.Size)
			}
			rec.req.done = true
			delete(h.reqs, rec.req.id)
			h.spans().End(rec.req.span)
			h.foAck(m)
			return
		}
	}
	h.foQ = append(h.foQ, m)
}

// foAck acknowledges an eager push so the sender's request completes. The
// ack flight parents to the sender's root span (carried in the push).
func (h *Host) foAck(m *foSendMsg) {
	peer := h.fw.hosts[m.Src]
	h.ctx.PostSend(h.proc, peer.ctx, &verbs.Packet{
		Kind: "foack", Size: h.fw.cfg.CtrlSize, Payload: &foAckMsg{ReqID: m.ReqID},
		Span: m.Span,
	})
}

// reissueOneSided re-posts a one-sided transfer from the initiating host's
// own NIC after the executing proxy died. The recorded window keys resolve
// on the host exactly as they did on the proxy, so the re-execution is
// byte-identical; a late FIN from the original attempt is ignored by the
// request table (idempotent completion).
func (h *Host) reissueOneSided(rec *osRec, now sim.Time) {
	rec.reissued = true
	h.OsReissues++
	if inj := h.fw.cl.Inj; inj != nil {
		inj.Note(now, fmt.Sprintf("rank%d", h.rank), "1sided-reissue",
			fmt.Sprintf("proxy%d dead, re-posting size=%d", rec.proxy, rec.size))
	}
	complete := func(sim.Time) {
		h.later(func() {
			if q, ok := h.reqs[rec.req.id]; ok {
				q.done = true
				delete(h.reqs, rec.req.id)
				h.dropRecords(rec.req.id)
				h.spans().End(q.span)
			}
		})
	}
	if rec.isPut {
		err := h.ctx.PostWrite(h.proc, verbs.WriteOp{
			LocalKey: rec.lKey, LocalAddr: rec.lAddr,
			RemoteKey: rec.rKey, RemoteAddr: rec.rAddr,
			Size: rec.size, Span: rec.req.span, OnRemoteComplete: complete,
		})
		if err != nil {
			panic(fmt.Sprintf("core: rank %d one-sided reissue: %v", h.rank, err))
		}
		return
	}
	err := h.ctx.PostRead(h.proc, verbs.ReadOp{
		LocalKey: rec.lKey, LocalAddr: rec.lAddr,
		RemoteKey: rec.rKey, RemoteAddr: rec.rAddr,
		Size: rec.size, Span: rec.req.span, OnComplete: complete,
	})
	if err != nil {
		panic(fmt.Sprintf("core: rank %d one-sided reissue: %v", h.rank, err))
	}
}
