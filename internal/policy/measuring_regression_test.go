package policy

import (
	"testing"

	"repro/internal/datapath"
	"repro/internal/fault"
	"repro/internal/sim"
)

// Regression for the frozen-empty-table bug: when probe costs are lost
// (a chaos drop kills the completion that would have fed Observe),
// Measuring must keep probing with reason "probe-retry" instead of
// freezing argmin on an unobserved entry. Losses are drawn from a real
// fault.Injector stream so the test exercises the same deterministic
// drop pattern chaos runs produce.
func TestMeasuringProbeRetryUnderFaultDrops(t *testing.T) {
	q := func(call int) Request { return Request{Class: ClassGroup, Size: 64 << 10, Call: call} }

	// Total loss: every observation dropped, so the policy may never freeze.
	inj := fault.NewInjector(&fault.Config{Seed: 7, DropRate: 1})
	m := NewMeasuring()
	for call := 0; call < 12; call++ {
		d := m.Decide(q(call))
		if !d.Path.Valid() {
			t.Fatalf("call %d: invalid path %v", call, d.Path)
		}
		if d.Reason == "learned" {
			t.Fatalf("call %d: froze with an empty cost table: %+v", call, d)
		}
		if call >= len(groupCandidates) && d.Reason != "probe-retry" {
			t.Fatalf("call %d: reason %q, want probe-retry (nothing observed yet)", call, d.Reason)
		}
		if inj.FateFor() != fault.FateDrop {
			t.Fatal("drop-rate-1 injector delivered a message")
		}
		// The completion was dropped: Observe never fires for this call.
	}

	// Partial loss: the first cost that survives the injector unlocks a
	// real, valid freeze on the next decision.
	inj = fault.NewInjector(&fault.Config{Seed: 7, DropRate: 0.5})
	m = NewMeasuring()
	observed := false
	for call := 0; call < 32 && !observed; call++ {
		d := m.Decide(q(call))
		if d.Reason == "learned" {
			t.Fatalf("call %d: froze before any observation", call)
		}
		if inj.FateFor() != fault.FateDrop {
			m.Observe(q(call), d.Path, sim.Time(100+call))
			observed = true
		}
	}
	if !observed {
		t.Fatal("seeded injector never delivered in 32 draws")
	}
	if d := m.Decide(q(100)); d.Reason != "learned" || !d.Path.Valid() {
		t.Fatalf("post-observation decision %+v, want a learned freeze", d)
	}
}

// Two sizes in one log2 bucket must share a learned entry: a site whose
// payload jitters by a few bytes (1500 vs 1600) reuses the frozen choice
// instead of re-probing forever on an unboundedly growing table.
func TestCostKeyLog2Bucketing(t *testing.T) {
	if a, b := sizeBucket(1500), sizeBucket(1600); a != b {
		t.Fatalf("sizeBucket(1500)=%d != sizeBucket(1600)=%d", a, b)
	}
	if a, b := sizeBucket(1024), sizeBucket(2047); a != b {
		t.Fatalf("sizeBucket(1024)=%d != sizeBucket(2047)=%d (same power-of-two span)", a, b)
	}
	if sizeBucket(2047) == sizeBucket(2048) {
		t.Fatal("2047 and 2048 share a bucket across the power-of-two boundary")
	}
	if sizeBucket(0) != 0 || sizeBucket(-4) != 0 {
		t.Fatalf("non-positive sizes must land in bucket 0, got %d and %d", sizeBucket(0), sizeBucket(-4))
	}

	m := NewMeasuring()
	probe := func(call, size int, k datapath.Kind, cost sim.Time) {
		t.Helper()
		q := Request{Class: ClassGroup, Size: size, Call: call}
		if d := m.Decide(q); d.Reason != "probe" || d.Path != k {
			t.Fatalf("call %d (%dB): %+v, want probe %v", call, size, d, k)
		}
		m.Observe(q, k, cost)
	}
	probe(0, 1500, datapath.KindCrossGVMI, 100)
	probe(1, 1500, datapath.KindStaged, 50)
	// 1600 bytes lands in the same bucket: it inherits the frozen choice
	// learned at 1500 bytes without a fresh probe round.
	if d := m.Decide(Request{Class: ClassGroup, Size: 1600, Call: 2}); d.Reason != "learned" || d.Path != datapath.KindStaged {
		t.Fatalf("1600B decision %+v, want learned staged via the shared bucket", d)
	}
}

// The argmin compares means via integer cross-products; the float64
// division it used to go through rounds 2^53 and 2^53+1 to the same
// value, silently flipping outcomes at large magnitudes. The exact
// comparison must still order such sums, and a true tie must break to
// the first candidate deterministically.
func TestArgminIntegerExactness(t *testing.T) {
	const big = sim.Time(1) << 53
	if !meanLess(big, 1, big+1, 1) {
		t.Fatal("meanLess(2^53, 2^53+1) = false; 1 ns difference lost")
	}
	if meanLess(big+1, 1, big, 1) {
		t.Fatal("meanLess ordered 2^53+1 below 2^53")
	}
	if meanLess(big, 1, big, 1) {
		t.Fatal("equal means compared as strictly less")
	}
	// Cross-products with differing counts: 3/2 vs 301/200 differs only in
	// the third decimal — 3*200=600 vs 301*2=602 must still resolve.
	if !meanLess(3, 2, 301, 200) {
		t.Fatal("meanLess(3/2, 301/200) = false")
	}

	q := func(call int) Request { return Request{Class: ClassGroup, Size: 32 << 10, Call: call} }
	m := NewMeasuring()
	m.Decide(q(0))
	m.Observe(q(0), datapath.KindCrossGVMI, big+1)
	m.Decide(q(1))
	m.Observe(q(1), datapath.KindStaged, big)
	if d := m.Decide(q(2)); d.Path != datapath.KindStaged {
		t.Fatalf("argmin at 2^53 magnitudes picked %v, want staged (1 ns cheaper)", d.Path)
	}

	// Exact tie at the same magnitude: first candidate wins, always.
	m2 := NewMeasuring()
	m2.Decide(q(0))
	m2.Observe(q(0), datapath.KindCrossGVMI, big)
	m2.Decide(q(1))
	m2.Observe(q(1), datapath.KindStaged, big)
	if d := m2.Decide(q(2)); d.Path != datapath.KindCrossGVMI {
		t.Fatalf("tie at 2^53 broke to %v, want first candidate cross-GVMI", d.Path)
	}
}
