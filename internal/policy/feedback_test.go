package policy

import (
	"testing"

	"repro/internal/datapath"
	"repro/internal/metrics"
	"repro/internal/sim"
)

func fbReq(call int) Request { return Request{Class: ClassGroup, Size: 64 << 10, Call: call} }

// The core feedback loop: probe → freeze → hold under stable costs (no
// flap) → re-probe when the frozen path's windowed mean exceeds its
// freeze-time mean by the hysteresis factor → re-freeze on the new argmin.
func TestFeedbackReprobesOnCostDrift(t *testing.T) {
	f := NewFeedback(FeedbackConfig{})
	costs := map[datapath.Kind]sim.Time{
		datapath.KindCrossGVMI:  100,
		datapath.KindStaged:     300,
		datapath.KindHostDirect: 200,
	}
	call := 0
	for i, k := range fbCandidates {
		d := f.Decide(fbReq(call))
		if d.Path != k || d.Reason != "probe" {
			t.Fatalf("probe call %d: %+v, want probe %v", i, d, k)
		}
		f.Observe(fbReq(call), d.Path, costs[d.Path])
		call++
	}

	// Frozen on the cheapest probe (cross-GVMI); cost jitter below the 3/2
	// hysteresis must never trigger a re-probe.
	for i := 0; i < 20; i++ {
		d := f.Decide(fbReq(call))
		if d.Path != datapath.KindCrossGVMI || d.Reason != "learned" {
			t.Fatalf("stable call %d: %+v, want learned cross-GVMI (no flap)", call, d)
		}
		f.Observe(fbReq(call), d.Path, 100+sim.Time(i%3))
		call++
	}

	// The world drifts: frozen-path costs jump 10x. Within a window's worth
	// of observations the trigger must fire.
	var d Decision
	for i := 0; i < 16; i++ {
		d = f.Decide(fbReq(call))
		if d.Reason == "reprobe" {
			break
		}
		f.Observe(fbReq(call), d.Path, 1000)
		call++
	}
	if d.Reason != "reprobe" {
		t.Fatalf("10x cost drift never triggered a re-probe (last decision %+v)", d)
	}

	// The re-probe epoch walks every candidate again on fresh windows;
	// host-direct is now the cheap path and must win the re-freeze.
	newCosts := map[datapath.Kind]sim.Time{
		datapath.KindCrossGVMI:  1000,
		datapath.KindStaged:     900,
		datapath.KindHostDirect: 50,
	}
	f.Observe(fbReq(call), d.Path, newCosts[d.Path])
	call++
	for i := 1; i < len(fbCandidates); i++ {
		d = f.Decide(fbReq(call))
		if d.Reason != "reprobe" {
			t.Fatalf("re-probe walk call %d: %+v", i, d)
		}
		f.Observe(fbReq(call), d.Path, newCosts[d.Path])
		call++
	}
	if d := f.Decide(fbReq(call)); d.Path != datapath.KindHostDirect || d.Reason != "learned" {
		t.Fatalf("post-re-probe freeze %+v, want learned hostdirect", d)
	}
}

// The queue-depth gauge trigger re-probes a frozen proxy choice when the
// backlog crosses the armed threshold — but must leave a frozen
// host-direct choice alone: host-direct routed *around* the congested
// proxy, so a deep queue says nothing about it, and bouncing it back is
// exactly the flap the hysteresis exists to prevent.
func TestFeedbackGaugeTriggerSparesHostDirect(t *testing.T) {
	freeze := func(cheap datapath.Kind) (*Feedback, *metrics.Registry, int) {
		t.Helper()
		// The zero config leaves the gauge trigger disarmed (0 = disabled);
		// the default config arms it at a backlog of 8.
		f := NewFeedback(DefaultFeedbackConfig())
		reg := metrics.NewRegistry()
		f.AttachRegistry(reg)
		call := 0
		for _, k := range fbCandidates {
			d := f.Decide(fbReq(call))
			cost := sim.Time(500)
			if d.Path == cheap {
				cost = 100
			}
			f.Observe(fbReq(call), k, cost)
			call++
		}
		if d := f.Decide(fbReq(call)); d.Path != cheap || d.Reason != "learned" {
			t.Fatalf("freeze on %v: got %+v", cheap, d)
		}
		call++
		return f, reg, call
	}
	cooldown := DefaultFeedbackConfig().Cooldown

	// Frozen on the proxy path, backlog 16 >= limit 8 (freeze-time depth 0):
	// re-probe once the cooldown expires. Costs stay stable throughout, so
	// only the gauge can be the trigger.
	f, reg, call := freeze(datapath.KindCrossGVMI)
	reg.Gauge("core", "proxy0", "queue_depth").Set(16)
	var got Decision
	for i := 0; i <= cooldown; i++ {
		got = f.Decide(fbReq(call))
		if got.Reason == "reprobe" {
			break
		}
		f.Observe(fbReq(call), got.Path, 100)
		call++
	}
	if got.Reason != "reprobe" {
		t.Fatalf("deep proxy backlog never re-probed the frozen proxy choice (last %+v)", got)
	}

	// Frozen on host-direct under the same backlog: no re-probe, ever.
	f, reg, call = freeze(datapath.KindHostDirect)
	reg.Gauge("core", "proxy0", "queue_depth").Set(16)
	for i := 0; i < 3*cooldown; i++ {
		d := f.Decide(fbReq(call))
		if d.Path != datapath.KindHostDirect || d.Reason != "learned" {
			t.Fatalf("frozen host-direct bounced on a proxy backlog: call %d %+v", call, d)
		}
		f.Observe(fbReq(call), d.Path, 100)
		call++
	}
}

// Ranks of one collective interleave their Decide calls with cost
// observations from completing operations. The per-call decision memo
// must pin every call to whatever the first rank saw — especially at the
// drift boundary, where a burst of slow completions landing between two
// ranks' Decide calls would otherwise send one rank re-probing while its
// peer replays the frozen choice (deadlock).
func TestFeedbackRankConsistencyAtDriftBoundary(t *testing.T) {
	const ranks = 4
	f := NewFeedback(FeedbackConfig{})
	call := 0
	lockstep := func(observeCost sim.Time) Decision {
		t.Helper()
		first := f.Decide(fbReq(call))
		f.Observe(fbReq(call), first.Path, observeCost)
		for r := 1; r < ranks; r++ {
			if d := f.Decide(fbReq(call)); d != first {
				t.Fatalf("call %d rank %d diverged: %+v vs %+v", call, r, d, first)
			}
			// Peer completions skew the table between the ranks' decisions.
			f.Observe(fbReq(call), first.Path, observeCost+sim.Time(10*r))
		}
		call++
		return first
	}

	for i := 0; i < len(fbCandidates); i++ {
		lockstep(100)
	}
	// Stable frozen calls past the cooldown.
	for i := 0; i < DefaultFeedbackConfig().Cooldown+1; i++ {
		if d := lockstep(100); d.Reason != "learned" {
			t.Fatalf("stable call froze wrong: %+v", d)
		}
	}

	// Drift boundary: rank 0 sees no drift at this call; eight 100x-slower
	// completions land before the peers ask about the same call.
	d0 := f.Decide(fbReq(call))
	if d0.Reason != "learned" {
		t.Fatalf("boundary call: %+v, want learned", d0)
	}
	for i := 0; i < 8; i++ {
		f.Observe(fbReq(call), d0.Path, 10000)
	}
	for r := 1; r < ranks; r++ {
		if d := f.Decide(fbReq(call)); d != d0 {
			t.Fatalf("rank %d diverged at the drift boundary: %+v vs %+v", r, d, d0)
		}
	}
	call++
	// The deferred re-probe fires on the next call — for every rank.
	dn := f.Decide(fbReq(call))
	if dn.Reason != "reprobe" {
		t.Fatalf("drift swallowed by the memo: %+v", dn)
	}
	for r := 1; r < ranks; r++ {
		if d := f.Decide(fbReq(call)); d != dn {
			t.Fatalf("rank %d diverged on the re-probe call: %+v vs %+v", r, d, dn)
		}
	}
}

// Like Measuring, Feedback must never freeze an entry no probe cost ever
// reached, and non-group traffic falls back to the Adaptive rule.
func TestFeedbackProbeRetryAndFallback(t *testing.T) {
	f := NewFeedback(FeedbackConfig{})
	for call := 0; call < 10; call++ {
		d := f.Decide(fbReq(call))
		if d.Reason == "learned" {
			t.Fatalf("call %d: froze with an empty cost table", call)
		}
		if call >= len(fbCandidates) && d.Reason != "probe-retry" {
			t.Fatalf("call %d: reason %q, want probe-retry", call, d.Reason)
		}
		// No Observe: every probe cost lost.
	}

	for _, q := range []Request{
		{Class: ClassP2P, Size: 4 << 10},
		{Class: ClassP2P, Size: 1 << 20, Intra: true},
		{Class: ClassOneSided, Size: 64 << 10},
	} {
		if got, want := f.Decide(q), adaptiveRule(q); got != want {
			t.Errorf("Feedback.Decide(%+v) = %+v, want adaptive %+v", q, got, want)
		}
	}
}

// The engine is the only place registries reach policies: NewEngineFor
// must hand its registry to any RegistryConsumer policy, and the
// feedback policy's gauge readback must be inert on every degenerate
// path — no registry attached, a nil registry, or a registry that has
// no queue-depth gauge yet — while a live registry reads the maximum
// across all proxy entities.
func TestFeedbackRegistryConsumerGaugeReadback(t *testing.T) {
	// NewEngineFor wires the registry through the RegistryConsumer
	// interface; the policy must see the very registry the engine records
	// into, and a nil-registry engine must attach nil (not skip the call,
	// which would leave a stale registry from a prior attach).
	f := NewFeedback(FeedbackConfig{})
	reg := metrics.NewRegistry()
	NewEngineFor(f, reg, "fg")
	if f.reg != reg {
		t.Fatal("NewEngineFor did not attach its registry to the RegistryConsumer policy")
	}
	NewEngine(f, nil)
	if f.reg != nil {
		t.Fatal("NewEngine(nil) left a stale registry attached")
	}

	// Detached and nil-registry reads are 0 (gauge trigger disarmed).
	if d := (&Feedback{}).queueDepth(); d != 0 {
		t.Fatalf("detached policy read queue depth %v, want 0", d)
	}
	if d := f.queueDepth(); d != 0 {
		t.Fatalf("nil registry read queue depth %v, want 0", d)
	}

	// A live registry without the gauge reads 0; unrelated series (other
	// layers, other names) must not leak into the readback.
	f.AttachRegistry(reg)
	reg.Counter("core", "proxy0", "queue_depth").Add(99) // counter, not gauge
	reg.Gauge("fabric", "ep0", "queue_depth").Set(50)    // wrong layer
	reg.Gauge("core", "proxy0", "inflight").Set(50)      // wrong name
	if d := f.queueDepth(); d != 0 {
		t.Fatalf("missing gauge read queue depth %v, want 0", d)
	}

	// With real per-proxy gauges the readback is the max across entities.
	reg.Gauge("core", "proxy0", "queue_depth").Set(3)
	reg.Gauge("core", "proxy1", "queue_depth").Set(12)
	reg.GaugeT("core", "proxy2", "queue_depth", "bg").Set(7)
	if d := f.queueDepth(); d != 12 {
		t.Fatalf("queue depth %v, want max across entities 12", d)
	}
}

// End to end on the degenerate path: a feedback policy frozen on a proxy
// choice with the gauge trigger armed but no registry behind it must hold
// the freeze forever under stable costs — the trigger is disarmed, not
// misread as depth 0 crossing some threshold.
func TestFeedbackGaugeTriggerInertWithoutRegistry(t *testing.T) {
	f := NewFeedback(DefaultFeedbackConfig()) // QueueDepthLimit armed at 8
	call := 0
	for _, k := range fbCandidates {
		d := f.Decide(fbReq(call))
		cost := sim.Time(500)
		if d.Path == datapath.KindCrossGVMI {
			cost = 100
		}
		f.Observe(fbReq(call), k, cost)
		call++
	}
	for i := 0; i < 3*DefaultFeedbackConfig().Cooldown; i++ {
		d := f.Decide(fbReq(call))
		if d.Path != datapath.KindCrossGVMI || d.Reason != "learned" {
			t.Fatalf("call %d: %+v, want learned cross-GVMI (no registry, no trigger)", call, d)
		}
		f.Observe(fbReq(call), d.Path, 100)
		call++
	}
}

// Invalid configs fall back to the validated defaults field by field.
func TestFeedbackConfigDefaults(t *testing.T) {
	def := DefaultFeedbackConfig()
	f := NewFeedback(FeedbackConfig{Window: -1, HystNum: 1, HystDen: 2, Cooldown: 0, QueueDepthLimit: -3})
	if f.cfg.Window != def.Window || f.cfg.HystNum != def.HystNum ||
		f.cfg.HystDen != def.HystDen || f.cfg.Cooldown != def.Cooldown {
		t.Fatalf("sanitized config %+v, want defaults %+v", f.cfg, def)
	}
	if f.cfg.QueueDepthLimit != 0 {
		t.Fatalf("negative QueueDepthLimit must disarm the gauge trigger, got %v", f.cfg.QueueDepthLimit)
	}
}

// The rich-telemetry congestion triggers: a frozen proxy-backed choice
// re-probes when the worst endpoint's retransmissions grew past RetryLimit
// since the freeze, or when delivered-byte progress stayed under
// GoodputFloor — and both spare a frozen host-direct choice, which routed
// around the congested fabric path in the first place.
func TestFeedbackCongestionTriggers(t *testing.T) {
	freeze := func(cfg FeedbackConfig, cheap datapath.Kind) (*Feedback, *metrics.Registry, int) {
		t.Helper()
		f := NewFeedback(cfg)
		reg := metrics.NewRegistry()
		f.AttachRegistry(reg)
		call := 0
		for _, k := range fbCandidates {
			d := f.Decide(fbReq(call))
			cost := sim.Time(500)
			if d.Path == cheap {
				cost = 100
			}
			f.Observe(fbReq(call), k, cost)
			call++
		}
		if d := f.Decide(fbReq(call)); d.Path != cheap || d.Reason != "learned" {
			t.Fatalf("freeze on %v: got %+v", cheap, d)
		}
		call++
		return f, reg, call
	}
	// run holds the frozen choice at stable cost until the trigger fires (or
	// the call budget runs out) and returns the last decision.
	run := func(f *Feedback, call, n int) Decision {
		t.Helper()
		var d Decision
		for i := 0; i < n; i++ {
			d = f.Decide(fbReq(call))
			if d.Reason == "reprobe" {
				return d
			}
			f.Observe(fbReq(call), d.Path, 100)
			call++
		}
		return d
	}
	cooldown := DefaultFeedbackConfig().Cooldown
	retryCfg := DefaultFeedbackConfig()
	retryCfg.QueueDepthLimit = 0 // isolate the retry trigger
	retryCfg.RetryLimit = 5

	// Retries grew by 6 >= limit 5 since the freeze: re-probe.
	f, reg, call := freeze(retryCfg, datapath.KindCrossGVMI)
	reg.Gauge("verbs", "n0.host", "endpoint_retries").Set(6)
	if d := run(f, call, cooldown+1); d.Reason != "reprobe" {
		t.Fatalf("retry growth past the limit never re-probed (last %+v)", d)
	}

	// Growth below the limit: hold.
	f, reg, call = freeze(retryCfg, datapath.KindCrossGVMI)
	reg.Gauge("verbs", "n0.host", "endpoint_retries").Set(4)
	if d := run(f, call, 3*cooldown); d.Reason != "learned" {
		t.Fatalf("sub-limit retry growth bounced the freeze (last %+v)", d)
	}

	// Frozen host-direct: immune to fabric retries by design.
	f, reg, call = freeze(retryCfg, datapath.KindHostDirect)
	reg.Gauge("verbs", "n0.host", "endpoint_retries").Set(1000)
	if d := run(f, call, 3*cooldown); d.Reason != "learned" || d.Path != datapath.KindHostDirect {
		t.Fatalf("frozen host-direct bounced on fabric retries (last %+v)", d)
	}

	goodCfg := DefaultFeedbackConfig()
	goodCfg.QueueDepthLimit = 0
	goodCfg.GoodputFloor = 1000

	// Goodput froze at 5000 and never moved: starvation, re-probe.
	preReg := metrics.NewRegistry()
	fs := NewFeedback(goodCfg)
	fs.AttachRegistry(preReg)
	preReg.Gauge("fabric", "n0.host", "goodput_bytes").Set(5000)
	call = 0
	for _, k := range fbCandidates {
		d := fs.Decide(fbReq(call))
		cost := sim.Time(500)
		if d.Path == datapath.KindCrossGVMI {
			cost = 100
		}
		_ = d
		fs.Observe(fbReq(call), k, cost)
		call++
	}
	if d := fs.Decide(fbReq(call)); d.Path != datapath.KindCrossGVMI {
		t.Fatalf("goodput rig froze on %+v", d)
	}
	call++
	if d := run(fs, call, cooldown+1); d.Reason != "reprobe" {
		t.Fatalf("stalled goodput never re-probed (last %+v)", d)
	}

	// Goodput grew by 2000 >= floor 1000: healthy, hold.
	f, reg, call = freeze(goodCfg, datapath.KindCrossGVMI)
	reg.Gauge("fabric", "n0.host", "goodput_bytes").Set(2000)
	if d := run(f, call, 3*cooldown); d.Reason != "learned" {
		t.Fatalf("healthy goodput growth bounced the freeze (last %+v)", d)
	}

	// Frozen host-direct: starvation of the fabric path it avoided is not
	// its problem.
	f, _, call = freeze(goodCfg, datapath.KindHostDirect)
	if d := run(f, call, 3*cooldown); d.Reason != "learned" || d.Path != datapath.KindHostDirect {
		t.Fatalf("frozen host-direct bounced on goodput starvation (last %+v)", d)
	}
}
