package policy

import (
	"testing"

	"repro/internal/datapath"
	"repro/internal/device"
)

// ScaledCutoff must reproduce the calibrated per-device breakevens exactly
// (every rank computes it independently — a one-byte disagreement desyncs
// a collective), and degrade to the unscaled anchor on broken profiles.
func TestScaledCutoff(t *testing.T) {
	if got := ScaledCutoff(device.Baseline()); got != AwareAnchor {
		t.Fatalf("baseline cutoff = %d, want the anchor %d", got, AwareAnchor)
	}
	// bf3: 8192 * (350*250)/(220*600) = 5430 (integer-truncated).
	if got := ScaledCutoff(device.MustLookup("bf3")); got != 5430 {
		t.Fatalf("bf3 cutoff = %d, want 5430", got)
	}
	var degenerate device.Profile
	if got := ScaledCutoff(degenerate); got != AwareAnchor {
		t.Fatalf("degenerate-port cutoff = %d, want the anchor %d", got, AwareAnchor)
	}
	// The anchor deliberately sits below the eager threshold: offload
	// amortizes before eager RDMA stops.
	if AwareAnchor >= SmallMsgCutoff {
		t.Fatalf("AwareAnchor %d >= SmallMsgCutoff %d; aware would never differ from adaptive", AwareAnchor, SmallMsgCutoff)
	}
}

// The aware rule is Adaptive's shape with the device-scaled cutoff, and
// collapses to the blind rule when a request carries no capabilities.
func TestAwareRule(t *testing.T) {
	bf2 := device.Baseline()
	bf3 := device.MustLookup("bf3")
	cut2, cut3 := ScaledCutoff(bf2), ScaledCutoff(bf3)
	cases := []struct {
		q      Request
		want   datapath.Kind
		reason string
	}{
		// Groups: host at or below the device cutoff, cross-GVMI above.
		{Request{Class: ClassGroup, Size: cut2, Caps: &bf2}, datapath.KindHostDirect, "small-msg"},
		{Request{Class: ClassGroup, Size: cut2 + 1, Caps: &bf2}, datapath.KindCrossGVMI, "group-direct"},
		// The same size flips with the device: 6000 bytes is host on bf2,
		// offloaded on bf3. This spread is the mixed-fleet margin.
		{Request{Class: ClassP2P, Size: 6000, Caps: &bf2}, datapath.KindHostDirect, "small-msg"},
		{Request{Class: ClassP2P, Size: 6000, Caps: &bf3}, datapath.KindCrossGVMI, "large-msg"},
		{Request{Class: ClassP2P, Size: cut3, Caps: &bf3}, datapath.KindHostDirect, "small-msg"},
		// One-sided always offloads; intra-node always stays on the host.
		{Request{Class: ClassOneSided, Size: 8, Caps: &bf3}, datapath.KindCrossGVMI, "one-sided"},
		{Request{Class: ClassP2P, Size: 1 << 20, Intra: true, Caps: &bf3}, datapath.KindHostDirect, "intra-node"},
	}
	for _, c := range cases {
		d := Aware{}.Decide(c.q)
		if d.Path != c.want || d.Reason != c.reason {
			t.Errorf("Aware.Decide(%+v) = %+v, want {%v %s}", c.q, d, c.want, c.reason)
		}
	}

	// No capabilities: byte-for-byte the blind adaptive rule.
	for _, q := range []Request{
		{Class: ClassGroup, Size: SmallMsgCutoff},
		{Class: ClassGroup, Size: SmallMsgCutoff + 1},
		{Class: ClassP2P, Size: AwareAnchor + 1}, // adaptive hosts this, aware-with-caps would not
		{Class: ClassOneSided, Size: 8},
	} {
		if got, want := (Aware{}).Decide(q), (Adaptive{}).Decide(q); got != want {
			t.Errorf("capless Aware.Decide(%+v) = %+v, want adaptive's %+v", q, got, want)
		}
	}
}

// Feedback's probe list narrows to what the device can actually run.
func TestCapsCandidates(t *testing.T) {
	bf2 := device.Baseline()
	ipu := device.MustLookup("ipu-e2100")
	dsa := device.MustLookup("dsa-offpath")
	cases := []struct {
		name string
		p    *device.Profile
		want []datapath.Kind
	}{
		{"nil", nil, []datapath.Kind{datapath.KindCrossGVMI, datapath.KindStaged, datapath.KindHostDirect}},
		{"bf2", &bf2, []datapath.Kind{datapath.KindCrossGVMI, datapath.KindStaged, datapath.KindHostDirect}},
		{"ipu", &ipu, []datapath.Kind{datapath.KindStaged, datapath.KindHostDirect}},
		{"dsa", &dsa, []datapath.Kind{datapath.KindDSA, datapath.KindStaged, datapath.KindHostDirect}},
	}
	for _, c := range cases {
		got := capsCandidates(c.p)
		if len(got) != len(c.want) {
			t.Errorf("%s: candidates %v, want %v", c.name, got, c.want)
			continue
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Errorf("%s: candidates %v, want %v", c.name, got, c.want)
				break
			}
		}
	}
}
