// The Feedback policy closes ROADMAP item 4's loop: Measuring probes then
// freezes on the argmin — correct for a static fabric, wrong and *stuck
// wrong* the moment background tenants saturate the DPU mid-run. Feedback
// keeps the freeze (collective participants must stay in lockstep) but
// watches the frozen path with windowed cost estimates and re-probes when
// the observed world drifts away from the one the freeze was taken in.
package policy

import (
	"repro/internal/datapath"
	"repro/internal/device"
	"repro/internal/metrics"
	"repro/internal/sim"
)

// fbCandidates are the group paths Feedback probes. Unlike Measuring it
// includes HostDirect: coll.PolicyOps executes host-direct group decisions
// on the host MPI backend, which is exactly the escape hatch a saturated
// proxy needs (pattern.Run clamps host-direct to the proxy default, same
// as for the Adaptive policy's small-size decisions).
var fbCandidates = []datapath.Kind{
	datapath.KindCrossGVMI,
	datapath.KindStaged,
	datapath.KindHostDirect,
}

// FeedbackConfig tunes the feedback policy's windows and drift triggers.
type FeedbackConfig struct {
	// Window is W, the sliding-window length of the per-(class,
	// size-bucket, path) cost estimate (observations, not time).
	Window int
	// HystNum/HystDen form the hysteresis factor H = HystNum/HystDen
	// (> 1): a frozen choice drifts only when its windowed mean exceeds
	// its freeze-time mean by H, and a queue-depth trigger only fires
	// when the depth exceeds the freeze-time depth by H. H is what keeps
	// decisions from flapping: a re-frozen choice re-bases both
	// references, so a persistently congested (or persistently idle)
	// world triggers once, not every cooldown.
	HystNum, HystDen int64
	// Cooldown is the minimum number of calls between a (re-)freeze and
	// the next drift evaluation — back-to-back re-probes cannot happen.
	Cooldown int
	// QueueDepthLimit arms the registry-gauge drift trigger: when the
	// maximum "core … queue_depth" gauge (proxy backlog, sampled at group
	// boundaries) is at least this AND exceeds the freeze-time depth by
	// the hysteresis factor, the frozen choice is re-probed even before
	// its own cost estimate degrades. 0 disables the gauge trigger; it is
	// also inert when the engine records into no registry.
	QueueDepthLimit float64
	// RetryLimit arms the fabric-congestion trigger on the per-endpoint
	// retry gauges ("verbs … endpoint_retries", exported only under rich
	// telemetry): a frozen proxy-backed choice re-probes when the worst
	// endpoint's cumulative retransmissions grew by at least this many
	// since the freeze. 0 (the default) disables the trigger, keeping
	// legacy decision streams bit-exact.
	RetryLimit float64
	// GoodputFloor arms the starvation trigger on the per-endpoint
	// goodput gauges ("fabric … goodput_bytes", rich telemetry): a frozen
	// proxy-backed choice re-probes when the worst-case delivered-byte
	// progress since the freeze stayed below this floor for a full
	// cooldown window. 0 (the default) disables it.
	GoodputFloor float64
}

// DefaultFeedbackConfig returns the tuning the drift bench is validated
// with: 8-observation windows, 3/2 hysteresis, a 4-call cooldown, and the
// gauge trigger armed at a backlog of 8.
func DefaultFeedbackConfig() FeedbackConfig {
	return FeedbackConfig{Window: 8, HystNum: 3, HystDen: 2, Cooldown: 4, QueueDepthLimit: 8}
}

// fbPathStats tracks one path at one key: lifetime totals plus a sliding
// window of the last W observed costs.
type fbPathStats struct {
	n    int64
	sum  sim.Time
	win  []sim.Time // ring buffer, len == Window
	wi   int        // next write index
	wn   int        // live entries (<= len(win))
	wsum sim.Time   // sum of live entries
}

func (st *fbPathStats) add(cost sim.Time) {
	st.n++
	st.sum += cost
	if st.wn == len(st.win) {
		st.wsum -= st.win[st.wi]
	} else {
		st.wn++
	}
	st.win[st.wi] = cost
	st.wsum += cost
	st.wi = (st.wi + 1) % len(st.win)
}

// resetWindow drops the windowed estimate (kept lifetime totals are for
// accounting only; decisions use windows). Called when a re-probe epoch
// opens so stale pre-drift samples cannot outvote fresh probe costs.
func (st *fbPathStats) resetWindow() {
	st.wi, st.wn, st.wsum = 0, 0, 0
}

// fbEntry is the feedback table row for one (class, size-bucket).
type fbEntry struct {
	obs map[datapath.Kind]*fbPathStats

	// cands is the candidate list this entry probes: fbCandidates
	// filtered (and extended with the DSA engine) by the first request's
	// device capabilities. Caps are constant for a run — collectives
	// carry the fleet merge — so the list is fixed at entry creation and
	// identical on every rank.
	cands []datapath.Kind

	frozen bool
	choice datapath.Kind
	// fSum/fN snapshot the chosen path's windowed mean at freeze time —
	// the drift trigger's reference point.
	fSum sim.Time
	fN   int64
	// fDepth is the max proxy queue depth at freeze time (gauge trigger
	// reference; re-freezing under congestion re-bases it, so a
	// persistently loaded proxy does not re-trigger every cooldown).
	fDepth float64
	// fRetries/fGoodput snapshot the worst-endpoint cumulative retry and
	// goodput gauges at freeze time; the congestion triggers compare
	// growth-since-freeze against RetryLimit / GoodputFloor.
	fRetries   float64
	fGoodput   float64
	freezeCall int
	// probeStart is the first call of the current probe round; epoch
	// counts completed re-probe rounds (0 = initial learning).
	probeStart int
	epoch      int

	// decisions memoizes every call's decision. The engine is shared by
	// all ranks of a job, but their Decide calls interleave with cost
	// observations from completing operations — whichever rank decides a
	// call first locks the answer for every peer, which is what keeps
	// collective participants in lockstep across re-probes.
	decisions map[int]Decision
}

// fbMemoHorizon bounds the per-entry decision memo: collectives keep rank
// skew within a call or two, so decisions this far behind the newest call
// can no longer be requested and are pruned.
const fbMemoHorizon = 64

// Feedback is the online, feedback-driven measuring policy. See the
// package comment for the rank-consistency argument and FeedbackConfig
// for the drift triggers.
type Feedback struct {
	cfg   FeedbackConfig
	table map[costKey]*fbEntry
	reg   *metrics.Registry
}

// NewFeedback returns an empty-table feedback policy. Zero/invalid window,
// hysteresis, and cooldown fields fall back to DefaultFeedbackConfig
// values; QueueDepthLimit stays as given (0 legitimately means "no gauge
// trigger" — the registered "feedback" bundle passes the armed default).
func NewFeedback(cfg FeedbackConfig) *Feedback {
	def := DefaultFeedbackConfig()
	if cfg.Window <= 0 {
		cfg.Window = def.Window
	}
	if cfg.HystNum <= 0 || cfg.HystDen <= 0 || cfg.HystNum <= cfg.HystDen {
		cfg.HystNum, cfg.HystDen = def.HystNum, def.HystDen
	}
	if cfg.Cooldown <= 0 {
		cfg.Cooldown = def.Cooldown
	}
	if cfg.QueueDepthLimit < 0 {
		cfg.QueueDepthLimit = 0
	}
	return &Feedback{cfg: cfg, table: make(map[costKey]*fbEntry)}
}

// Name implements Policy.
func (*Feedback) Name() string { return "feedback" }

// AttachRegistry implements RegistryConsumer: the policy reads proxy
// queue-depth gauges out of the registry the engine records into. A nil
// registry simply disarms the gauge trigger (the cost trigger needs no
// registry). Note tenant.Run always wires a live registry, so the drift
// bench's decisions never depend on whether -metrics was passed.
func (f *Feedback) AttachRegistry(m *metrics.Registry) { f.reg = m }

func (f *Feedback) entry(q Request) *fbEntry {
	key := costKey{q.Class, sizeBucket(q.Size)}
	e := f.table[key]
	if e == nil {
		e = &fbEntry{
			obs:       make(map[datapath.Kind]*fbPathStats),
			cands:     capsCandidates(q.Caps),
			decisions: make(map[int]Decision),
		}
		f.table[key] = e
	}
	return e
}

// capsCandidates filters the probe list by device capabilities: paths the
// device cannot run are dropped (probing them would just re-measure their
// fallback under another name) and the DSA engine joins the list when one
// exists. Nil or full-capability profiles reproduce fbCandidates exactly.
func capsCandidates(p *device.Profile) []datapath.Kind {
	if p == nil {
		return fbCandidates
	}
	cands := make([]datapath.Kind, 0, len(fbCandidates)+1)
	if p.CrossGVMI {
		cands = append(cands, datapath.KindCrossGVMI)
	}
	if p.HasDSA {
		cands = append(cands, datapath.KindDSA)
	}
	return append(cands, datapath.KindStaged, datapath.KindHostDirect)
}

// Decide implements Policy.
func (f *Feedback) Decide(q Request) Decision {
	if q.Class != ClassGroup {
		// Same lockstep constraint as Measuring: p2p/one-sided probing
		// would need both endpoints to flip paths together.
		return adaptiveRule(q)
	}
	e := f.entry(q)
	if d, ok := e.decisions[q.Call]; ok {
		return d
	}
	d := f.decide(e, q.Call)
	e.decisions[q.Call] = d
	delete(e.decisions, q.Call-fbMemoHorizon)
	return d
}

// decide computes the first-rank decision for one call of an entry.
func (f *Feedback) decide(e *fbEntry, call int) Decision {
	if !e.frozen {
		reason := "probe"
		if e.epoch > 0 {
			reason = "reprobe"
		}
		if idx := call - e.probeStart; idx >= 0 && idx < len(e.cands) {
			return Decision{Path: e.cands[idx], Reason: reason}
		}
		best, ok := f.argmin(e)
		if !ok {
			// Every probe cost was lost (chaos drops): never freeze an
			// unobserved entry, keep probing round-robin.
			return Decision{Path: e.cands[(call-e.probeStart)%len(e.cands)], Reason: "probe-retry"}
		}
		st := e.obs[best]
		e.frozen, e.choice = true, best
		e.fSum, e.fN = st.wsum, int64(st.wn)
		e.fDepth = f.queueDepth()
		e.fRetries = f.maxGauge("verbs", "endpoint_retries")
		e.fGoodput = f.maxGauge("fabric", "goodput_bytes")
		e.freezeCall = call
		return Decision{Path: best, Reason: "learned"}
	}
	if call-e.freezeCall >= f.cfg.Cooldown && f.drifted(e) {
		// Open a re-probe epoch: fresh windows, candidates walked in
		// order starting at this call; the freeze a few calls later
		// re-bases the drift references.
		e.frozen = false
		e.epoch++
		e.probeStart = call
		for _, st := range e.obs {
			st.resetWindow()
		}
		return Decision{Path: e.cands[0], Reason: "reprobe"}
	}
	return Decision{Path: e.choice, Reason: "learned"}
}

// argmin picks the observed candidate with the lowest windowed mean,
// compared exactly via integer cross-products. On re-probe epochs the
// incumbent is considered first, so a full tie keeps the previous choice
// (no flap on equal costs); the initial epoch prefers candidate order.
func (f *Feedback) argmin(e *fbEntry) (datapath.Kind, bool) {
	order := e.cands
	if e.epoch > 0 {
		order = make([]datapath.Kind, 0, len(e.cands))
		order = append(order, e.choice)
		for _, k := range e.cands {
			if k != e.choice {
				order = append(order, k)
			}
		}
	}
	var best datapath.Kind
	var bestSum sim.Time
	var bestN int64
	found := false
	for _, k := range order {
		st := e.obs[k]
		if st == nil || st.wn == 0 {
			continue
		}
		if !found || meanLess(st.wsum, int64(st.wn), bestSum, bestN) {
			best, bestSum, bestN, found = k, st.wsum, int64(st.wn), true
		}
	}
	return best, found
}

// drifted reports whether the frozen choice's world has moved: its
// windowed mean exceeds the freeze-time mean by the hysteresis factor, or
// the proxy backlog gauge crossed the armed threshold and the freeze-time
// depth by the same factor.
func (f *Feedback) drifted(e *fbEntry) bool {
	st := e.obs[e.choice]
	if st != nil && st.wn >= 2 && e.fN > 0 {
		// winMean > frozenMean * H  <=>  fSum*wn*HNum < wsum*fN*HDen,
		// compared in 128-bit integer space (counts and H are small, so
		// folding them into one 64-bit factor cannot overflow).
		if meanLess(e.fSum, e.fN*f.cfg.HystDen, st.wsum, int64(st.wn)*f.cfg.HystNum) {
			return true
		}
	}
	if f.cfg.QueueDepthLimit > 0 && e.choice != datapath.KindHostDirect {
		// Proxy backlog only concerns proxy-backed choices: a frozen
		// host-direct decision is immune to the very congestion it
		// routed around, so a deep queue must not bounce it back.
		if d := f.queueDepth(); d >= f.cfg.QueueDepthLimit &&
			d*float64(f.cfg.HystDen) > e.fDepth*float64(f.cfg.HystNum) {
			return true
		}
	}
	if e.choice != datapath.KindHostDirect {
		// Fabric-congestion triggers (rich telemetry gauges): both compare
		// deltas since the freeze, so re-freezing re-bases them and a
		// persistently retransmitting fabric triggers once per epoch.
		if f.cfg.RetryLimit > 0 &&
			f.maxGauge("verbs", "endpoint_retries")-e.fRetries >= f.cfg.RetryLimit {
			return true
		}
		if f.cfg.GoodputFloor > 0 &&
			f.maxGauge("fabric", "goodput_bytes")-e.fGoodput < f.cfg.GoodputFloor {
			return true
		}
	}
	return false
}

// maxGauge reads the maximum gauge of one (layer, name) series family out
// of the attached registry (0 without one — the triggers stay disarmed).
func (f *Feedback) maxGauge(layer, name string) float64 {
	v, ok := f.reg.MaxGauge(layer, name)
	if !ok {
		return 0
	}
	return v
}

// queueDepth reads the worst current proxy backlog from the registry (0
// without one — gauge trigger disarmed).
func (f *Feedback) queueDepth() float64 {
	v, ok := f.reg.MaxGauge("core", "queue_depth")
	if !ok {
		return 0
	}
	return v
}

// Observe implements Policy: costs feed both the lifetime totals and the
// sliding window. Unlike Measuring, observation continues after the
// freeze — the frozen path's window is exactly what the drift trigger
// watches.
func (f *Feedback) Observe(q Request, k datapath.Kind, cost sim.Time) {
	if q.Class != ClassGroup {
		return
	}
	e := f.entry(q)
	st := e.obs[k]
	if st == nil {
		st = &fbPathStats{win: make([]sim.Time, f.cfg.Window)}
		e.obs[k] = st
	}
	st.add(cost)
}
