// The Aware policy is the capability-aware Adaptive: same size/op-class
// shape, but the host-vs-offload cutoff is scaled per device. The blind
// Adaptive reuses the MPI eager threshold (SmallMsgCutoff, 16KiB) as its
// offload cutoff, which overshoots where the proxy hop actually breaks
// even once communication/compute overlap is in play: a proxied transfer
// frees the host CPU, so offload pays off well below the eager threshold
// (around 8KiB for the BlueField-2 part under the OMB overlap
// methodology — see the fleet bench). A part with a cheaper DPU-side
// injection (BlueField-3's 350ns vs 600ns) amortizes the hop at smaller
// payloads still, so its cutoff moves down proportionally to the port
// overhead ratio. On a mixed fleet that spread is exactly the margin a
// blind rule leaves on the table: at 6KiB the blind Adaptive keeps every
// transfer on the host, Aware offloads the ones whose sender is a
// BlueField-3 node (cutoff 5430) while keeping BlueField-2 senders
// (cutoff 8192) on the host — the empirically faster choice on both.
//
// Rank consistency holds for the same reason Adaptive's does: the rule is
// a deterministic function of (class, size, locality, caps), and the
// caller supplies caps every participant can compute — the fleet merge
// for collectives, the sender's node profile for point-to-point (the
// receiver derives the sender's node from the source rank).
package policy

import (
	"repro/internal/datapath"
	"repro/internal/device"
	"repro/internal/sim"
)

// AwareAnchor is the host-vs-offload breakeven payload of the baseline
// BlueField-2 part under communication/compute overlap: above it a proxied
// transfer's freed host CPU beats the host path's lower wire latency.
// Half the eager threshold — offload amortizes earlier than eager RDMA
// stops, because the proxy hop costs wire time but no host CPU time.
const AwareAnchor = 8 << 10

// ScaledCutoff returns the host-vs-offload payload cutoff for a device:
// the baseline breakeven anchor scaled by the profile's port overhead
// ratio relative to the baseline part the anchor was calibrated on.
// Computed in integer space so every rank rounds identically. Profiles
// with degenerate port parameters (and the baseline itself) get the
// unscaled anchor.
func ScaledCutoff(p device.Profile) int {
	base := device.Baseline()
	num := int64(p.DPUPort.Overhead) * int64(base.HostPort.Overhead)
	den := int64(p.HostPort.Overhead) * int64(base.DPUPort.Overhead)
	if num <= 0 || den <= 0 {
		return AwareAnchor
	}
	return int(int64(AwareAnchor) * num / den)
}

// Aware is the capability-aware static policy: Adaptive's rule shape with
// the per-device cutoff, falling back to the blind rule when a request
// carries no capabilities.
type Aware struct{}

// Name implements Policy.
func (Aware) Name() string { return "aware" }

// Decide implements Policy.
func (Aware) Decide(q Request) Decision { return awareRule(q) }

// Observe implements Policy.
func (Aware) Observe(Request, datapath.Kind, sim.Time) {}

// awareRule mirrors adaptiveRule with the device-scaled cutoff. It still
// nominates cross-GVMI for offloaded traffic: the engine's legality pass
// degrades that to the DSA engine or staged copies on parts without
// cross-function registration, so the rule itself stays mechanism-free.
func awareRule(q Request) Decision {
	if q.Caps == nil {
		return adaptiveRule(q)
	}
	cutoff := ScaledCutoff(*q.Caps)
	switch q.Class {
	case ClassGroup:
		if q.Size <= cutoff {
			return Decision{Path: datapath.KindHostDirect, Reason: "small-msg"}
		}
		return Decision{Path: datapath.KindCrossGVMI, Reason: "group-direct"}
	case ClassOneSided:
		return Decision{Path: datapath.KindCrossGVMI, Reason: "one-sided"}
	default:
		if q.Intra {
			return Decision{Path: datapath.KindHostDirect, Reason: "intra-node"}
		}
		if q.Size <= cutoff {
			return Decision{Path: datapath.KindHostDirect, Reason: "small-msg"}
		}
		return Decision{Path: datapath.KindCrossGVMI, Reason: "large-msg"}
	}
}
