// Package policy decides, per operation, which datapath an offloaded
// communication should take. The paper fixes the path at job launch; the
// quantitative-offloading literature (Wahlgren et al.; Karamati et al.)
// finds that offloading everything is a loss and the win lies in judicious
// per-operation selection. Three policy families cover that spectrum:
//
//   - Fixed: always the same path — reproduces the baseline presets
//     (Proposed / BluesMPI / IntelMPI) bit-exactly;
//   - Adaptive: a static size/op-class rule (one-sided traffic goes
//     cross-GVMI; groups and point-to-point stay on the host at or below
//     the eager cutoff — or intra-node for p2p — and offload above it);
//   - Measuring: learns per-(op-class, size-bucket) costs online — it
//     probes each candidate path round-robin during the first calls of a
//     site, then freezes on the cheapest observed path;
//   - Feedback: Measuring that never goes stale — windowed cost estimates
//     plus drift triggers (frozen-path cost exceeding its freeze-time mean
//     by a hysteresis factor, or proxy queue-depth gauges crossing a
//     threshold) unfreeze the choice and re-probe, so a mid-run load shift
//     re-routes traffic instead of degrading forever (see feedback.go).
//
// Decisions must be consistent across the ranks of one collective (a rank
// building a DPU group while its peer runs host MPI deadlocks). Fixed and
// Adaptive decide from (class, size, locality) alone, which every
// participant sees identically. Measuring probes by call number — also
// rank-independent — and freezes exactly once per (class, size-bucket):
// whichever rank decides first locks the table entry for everyone (the
// engine is shared per environment), so ranks can never diverge. Feedback
// additionally memoizes every decision by call number, so ranks whose
// Decide calls interleave with cost observations still agree. For
// point-to-point and one-sided traffic both fall back to the Adaptive
// rule: probing would need sender and receiver to flip paths in lockstep,
// which only class/size-deterministic rules guarantee.
package policy

import (
	"fmt"
	"math/bits"

	"repro/internal/datapath"
	"repro/internal/device"
	"repro/internal/metrics"
	"repro/internal/sim"
)

// OpClass partitions operations for decision and cost tables.
type OpClass int

// Operation classes.
const (
	// ClassP2P is a basic point-to-point transfer (send/recv pair).
	ClassP2P OpClass = iota
	// ClassGroup is a group-offload pattern (collectives).
	ClassGroup
	// ClassOneSided is a window put/get.
	ClassOneSided
)

// String implements fmt.Stringer.
func (c OpClass) String() string {
	switch c {
	case ClassP2P:
		return "p2p"
	case ClassGroup:
		return "group"
	case ClassOneSided:
		return "onesided"
	default:
		return fmt.Sprintf("unknown(%d)", int(c))
	}
}

// Request describes one operation about to be issued.
type Request struct {
	Class OpClass
	// Size is the per-transfer payload in bytes (per-peer block size for
	// collectives).
	Size int
	// Intra marks a same-node peer (point-to-point only).
	Intra bool
	// Call is the 0-based invocation count of this operation site (call
	// site x size), maintained by the caller. Measuring probes by it.
	Call int
	// Caps is the device profile the decision must be legal for: the
	// sender's node profile for point-to-point, the fleet capability merge
	// for collectives (all ranks must agree — see device.Merge). Nil keeps
	// the legacy capability-blind rules, bit-exactly. Only the Aware
	// policy and the engine's legality pass consult it; Fixed, Adaptive,
	// and Measuring ignore it by construction.
	Caps *device.Profile
}

// Decision is a chosen path plus the rule that chose it (recorded in
// metrics so runs can be audited).
type Decision struct {
	Path   datapath.Kind
	Reason string
}

// Policy chooses datapaths. Implementations must be deterministic
// functions of the request and of previously observed costs.
type Policy interface {
	Name() string
	Decide(Request) Decision
	// Observe feeds back the measured cost of a completed operation that
	// ran on path k. Fixed and Adaptive ignore it.
	Observe(q Request, k datapath.Kind, cost sim.Time)
}

// SmallMsgCutoff is the Adaptive policy's point-to-point threshold: at or
// below it the host eager path wins on latency (matches the MPI library's
// default eager threshold); above it the proxy path wins on overlap and
// zero-copy.
const SmallMsgCutoff = 16 << 10

// ---------------------------------------------------------------------------
// Fixed

// Fixed always picks the same path — the pre-refactor behaviour of a
// construction-time mechanism.
type Fixed struct{ Path datapath.Kind }

// Name implements Policy.
func (f Fixed) Name() string { return "fixed-" + f.Path.String() }

// Decide implements Policy.
func (f Fixed) Decide(Request) Decision { return Decision{Path: f.Path, Reason: "fixed"} }

// Observe implements Policy.
func (Fixed) Observe(Request, datapath.Kind, sim.Time) {}

// ---------------------------------------------------------------------------
// Adaptive

// Adaptive applies a static size/op-class rule (no feedback).
type Adaptive struct{}

// Name implements Policy.
func (Adaptive) Name() string { return "adaptive" }

// Decide implements Policy.
func (Adaptive) Decide(q Request) Decision { return adaptiveRule(q) }

// Observe implements Policy.
func (Adaptive) Observe(Request, datapath.Kind, sim.Time) {}

// adaptiveRule is shared with Measuring's point-to-point fallback.
func adaptiveRule(q Request) Decision {
	switch q.Class {
	case ClassGroup:
		if q.Size <= SmallMsgCutoff {
			// Latency-bound collectives: the host algorithm beats any proxy
			// hop (Wahlgren et al.'s "offloading everything is a loss").
			return Decision{Path: datapath.KindHostDirect, Reason: "small-msg"}
		}
		// DPU-progressed groups are the framework's raison d'être, and the
		// direct path dominates staging at every size (mechanism ablation).
		return Decision{Path: datapath.KindCrossGVMI, Reason: "group-direct"}
	case ClassOneSided:
		return Decision{Path: datapath.KindCrossGVMI, Reason: "one-sided"}
	default:
		if q.Intra {
			// Shared-memory copy beats a DPU round trip.
			return Decision{Path: datapath.KindHostDirect, Reason: "intra-node"}
		}
		if q.Size <= SmallMsgCutoff {
			// Latency-bound: host eager send wins; the proxy hop costs two
			// extra control messages.
			return Decision{Path: datapath.KindHostDirect, Reason: "small-msg"}
		}
		return Decision{Path: datapath.KindCrossGVMI, Reason: "large-msg"}
	}
}

// ---------------------------------------------------------------------------
// Measuring

// groupCandidates are the proxy-executable paths Measuring probes for
// group operations (HostDirect groups cannot run on a proxy).
var groupCandidates = []datapath.Kind{datapath.KindCrossGVMI, datapath.KindStaged}

// costKey indexes the learned-cost table. Sizes are bucketed by log2
// (sizeBucket) so a site whose payload jitters by a few bytes shares one
// learned entry instead of re-probing forever on an unboundedly growing
// table.
type costKey struct {
	class  OpClass
	bucket int
}

// sizeBucket maps a payload size to its log2 bucket, matching the metrics
// histograms' convention: bucket 0 holds non-positive sizes, bucket i
// (i >= 1) holds sizes in [2^(i-1), 2^i).
func sizeBucket(size int) int {
	if size <= 0 {
		return 0
	}
	return bits.Len(uint(size))
}

// meanLess reports aSum/aN < bSum/bN exactly, comparing the cross-products
// aSum*bN and bSum*aN in 128-bit integer space. Observed costs are integer
// sim.Time sums, and the float64 division the comparison used to go
// through ties at large magnitudes (2^53 and 2^53+1 round to the same
// float), which silently flipped argmin outcomes.
func meanLess(aSum sim.Time, aN int64, bSum sim.Time, bN int64) bool {
	ah, al := bits.Mul64(uint64(aSum), uint64(bN))
	bh, bl := bits.Mul64(uint64(bSum), uint64(aN))
	return ah < bh || (ah == bh && al < bl)
}

// pathStats accumulates observed costs of one path at one key.
type pathStats struct {
	n   int64
	sum sim.Time
}

// costEntry is the table row for one (class, size-bucket).
type costEntry struct {
	obs    map[datapath.Kind]*pathStats
	frozen bool
	choice datapath.Kind
}

// Measuring learns per-(class, size) costs online: group calls 0..C-1 of a
// site probe candidate paths round-robin; the first call past the probe
// window freezes the cheapest observed mean and every later call replays
// the frozen choice (through the group caches, so steady state pays no
// learning overhead). Costs come from span-measured issue-to-completion
// times the caller feeds to Observe.
type Measuring struct {
	table map[costKey]*costEntry
}

// NewMeasuring returns an empty-table measuring policy.
func NewMeasuring() *Measuring { return &Measuring{table: make(map[costKey]*costEntry)} }

// Name implements Policy.
func (*Measuring) Name() string { return "measure" }

// Decide implements Policy.
func (m *Measuring) Decide(q Request) Decision {
	if q.Class != ClassGroup {
		// Probing p2p would need both endpoints to flip in lockstep; stay
		// on the class/size-deterministic rule (see the package comment).
		return adaptiveRule(q)
	}
	e := m.entry(q)
	if e.frozen {
		return Decision{Path: e.choice, Reason: "learned"}
	}
	if q.Call < len(groupCandidates) {
		return Decision{Path: groupCandidates[q.Call], Reason: "probe"}
	}
	if !e.observed() {
		// Both probe calls' costs were lost (a chaos drop can kill the
		// completion that would have fed Observe). Freezing now would lock
		// argmin on an empty table — silently cross-GVMI with reason
		// "learned" — so keep probing round-robin until a cost lands.
		return Decision{Path: groupCandidates[q.Call%len(groupCandidates)], Reason: "probe-retry"}
	}
	e.frozen = true
	e.choice = m.argmin(e)
	return Decision{Path: e.choice, Reason: "learned"}
}

// Observe implements Policy.
func (m *Measuring) Observe(q Request, k datapath.Kind, cost sim.Time) {
	if q.Class != ClassGroup {
		return
	}
	e := m.entry(q)
	if e.frozen {
		return
	}
	st := e.obs[k]
	if st == nil {
		st = &pathStats{}
		e.obs[k] = st
	}
	st.n++
	st.sum += cost
}

func (m *Measuring) entry(q Request) *costEntry {
	key := costKey{q.Class, sizeBucket(q.Size)}
	e := m.table[key]
	if e == nil {
		e = &costEntry{obs: make(map[datapath.Kind]*pathStats)}
		m.table[key] = e
	}
	return e
}

// observed reports whether any candidate has at least one recorded cost.
func (e *costEntry) observed() bool {
	for _, st := range e.obs {
		if st != nil && st.n > 0 {
			return true
		}
	}
	return false
}

// argmin picks the candidate with the lowest observed mean cost, compared
// exactly via integer cross-products (meanLess); an unobserved candidate
// never wins, and a full tie keeps the first candidate (cross-GVMI).
func (m *Measuring) argmin(e *costEntry) datapath.Kind {
	best := groupCandidates[0]
	var bestSum sim.Time
	var bestN int64
	found := false
	for _, k := range groupCandidates {
		st := e.obs[k]
		if st == nil || st.n == 0 {
			continue
		}
		if !found || meanLess(st.sum, st.n, bestSum, bestN) {
			best, bestSum, bestN, found = k, st.sum, st.n, true
		}
	}
	return best
}

// ---------------------------------------------------------------------------
// Engine

// Engine wraps a policy with decision accounting: every decision is
// counted per path and per reason in the metrics registry (layer "policy")
// so runs record which path each operation took and why. One engine is
// shared by all ranks of an environment — that sharing is what makes
// Measuring's freeze globally consistent.
type Engine struct {
	p      Policy
	m      *metrics.Registry
	tenant string

	mByPath   map[datapath.Kind]*metrics.Counter
	mByReason map[string]*metrics.Counter
}

// NewEngine builds an engine recording into m (nil m records nothing).
func NewEngine(p Policy, m *metrics.Registry) *Engine {
	return NewEngineFor(p, m, "")
}

// RegistryConsumer is implemented by policies that read live load signals
// back out of the run's metrics registry (the Feedback policy consults
// proxy queue-depth gauges as a drift trigger). The engine attaches its
// registry to such policies at construction.
type RegistryConsumer interface {
	AttachRegistry(*metrics.Registry)
}

// NewEngineFor is NewEngine with a tenant label: every decision counter is
// recorded under it, so multi-tenant runs attribute path choices per job.
// Each tenant job gets its own engine — Measuring then learns per job, which
// is the correct scope (jobs see different proxy load). "" reproduces
// NewEngine exactly.
func NewEngineFor(p Policy, m *metrics.Registry, tenant string) *Engine {
	if rc, ok := p.(RegistryConsumer); ok {
		rc.AttachRegistry(m)
	}
	return &Engine{
		p:         p,
		m:         m,
		tenant:    tenant,
		mByPath:   make(map[datapath.Kind]*metrics.Counter),
		mByReason: make(map[string]*metrics.Counter),
	}
}

// Name returns the wrapped policy's name.
func (e *Engine) Name() string { return e.p.Name() }

// Decide chooses a path and records the decision. When the request carries
// device capabilities, the chosen path is degraded to one the device can
// actually run (datapath.Resolve) before it is recorded — the counters
// then audit what executed, and a capability-blind policy stays legal on a
// reduced part without knowing it. On full-capability profiles (and on
// nil Caps) the pass is the identity, bit-exact with the legacy engine.
func (e *Engine) Decide(q Request) Decision {
	d := e.p.Decide(q)
	if q.Caps != nil {
		d.Path = datapath.Resolve(d.Path, datapath.Caps{CrossGVMI: q.Caps.CrossGVMI, DSA: q.Caps.HasDSA})
	}
	if e.m.Enabled() {
		c := e.mByPath[d.Path]
		if c == nil {
			c = e.m.CounterT("policy", e.p.Name(), "decide_"+d.Path.String(), e.tenant)
			e.mByPath[d.Path] = c
		}
		c.Inc()
		rc := e.mByReason[d.Reason]
		if rc == nil {
			rc = e.m.CounterT("policy", e.p.Name(), "reason_"+d.Reason, e.tenant)
			e.mByReason[d.Reason] = rc
		}
		rc.Inc()
	}
	return d
}

// Observe forwards a measured operation cost to the policy.
func (e *Engine) Observe(q Request, k datapath.Kind, cost sim.Time) {
	e.p.Observe(q, k, cost)
}
