package policy

import (
	"testing"

	"repro/internal/datapath"
	"repro/internal/metrics"
	"repro/internal/sim"
)

func TestFixedAlwaysSamePath(t *testing.T) {
	for _, k := range datapath.Kinds() {
		f := Fixed{Path: k}
		for _, q := range []Request{
			{Class: ClassP2P, Size: 8},
			{Class: ClassGroup, Size: 1 << 20, Call: 3},
			{Class: ClassOneSided, Size: 64 << 10, Intra: true},
		} {
			if d := f.Decide(q); d.Path != k || d.Reason != "fixed" {
				t.Fatalf("Fixed{%v}.Decide(%+v) = %+v", k, q, d)
			}
		}
	}
}

func TestAdaptiveRule(t *testing.T) {
	cases := []struct {
		q      Request
		want   datapath.Kind
		reason string
	}{
		// Groups: host at or below the eager cutoff, cross-GVMI above.
		{Request{Class: ClassGroup, Size: SmallMsgCutoff}, datapath.KindHostDirect, "small-msg"},
		{Request{Class: ClassGroup, Size: SmallMsgCutoff + 1}, datapath.KindCrossGVMI, "group-direct"},
		// One-sided always offloads.
		{Request{Class: ClassOneSided, Size: 8}, datapath.KindCrossGVMI, "one-sided"},
		// P2P: intra-node beats everything, then the eager cutoff.
		{Request{Class: ClassP2P, Size: 1 << 20, Intra: true}, datapath.KindHostDirect, "intra-node"},
		{Request{Class: ClassP2P, Size: SmallMsgCutoff}, datapath.KindHostDirect, "small-msg"},
		{Request{Class: ClassP2P, Size: SmallMsgCutoff + 1}, datapath.KindCrossGVMI, "large-msg"},
	}
	for _, c := range cases {
		d := Adaptive{}.Decide(c.q)
		if d.Path != c.want || d.Reason != c.reason {
			t.Errorf("Adaptive.Decide(%+v) = %+v, want {%v %s}", c.q, d, c.want, c.reason)
		}
	}
}

func TestMeasuringProbesThenFreezes(t *testing.T) {
	m := NewMeasuring()
	q := func(call int) Request { return Request{Class: ClassGroup, Size: 64 << 10, Call: call} }

	// The probe window walks the candidates in order.
	if d := m.Decide(q(0)); d.Path != datapath.KindCrossGVMI || d.Reason != "probe" {
		t.Fatalf("call 0: %+v", d)
	}
	m.Observe(q(0), datapath.KindCrossGVMI, sim.Time(100))
	if d := m.Decide(q(1)); d.Path != datapath.KindStaged || d.Reason != "probe" {
		t.Fatalf("call 1: %+v", d)
	}
	m.Observe(q(1), datapath.KindStaged, sim.Time(50))

	// First post-probe call freezes on the cheapest observed mean...
	if d := m.Decide(q(2)); d.Path != datapath.KindStaged || d.Reason != "learned" {
		t.Fatalf("call 2: %+v", d)
	}
	// ...and later observations no longer change the choice.
	m.Observe(q(3), datapath.KindCrossGVMI, sim.Time(1))
	if d := m.Decide(q(3)); d.Path != datapath.KindStaged {
		t.Fatalf("frozen choice moved: %+v", d)
	}
}

func TestMeasuringTieAndMissingObservations(t *testing.T) {
	// Full tie keeps the first candidate (cross-GVMI).
	m := NewMeasuring()
	q := Request{Class: ClassGroup, Size: 4 << 10}
	m.Observe(Request{Class: ClassGroup, Size: 4 << 10, Call: 0}, datapath.KindCrossGVMI, 70)
	m.Observe(Request{Class: ClassGroup, Size: 4 << 10, Call: 1}, datapath.KindStaged, 70)
	q.Call = 2
	if d := m.Decide(q); d.Path != datapath.KindCrossGVMI {
		t.Fatalf("tie broke to %v, want cross-GVMI", d.Path)
	}

	// No observations at all (caller never fed costs back): still a valid,
	// deterministic choice.
	m2 := NewMeasuring()
	if d := m2.Decide(Request{Class: ClassGroup, Size: 8, Call: 5}); !d.Path.Valid() {
		t.Fatalf("unobserved freeze chose invalid path %v", d.Path)
	}
}

func TestMeasuringP2PFallsBackToAdaptive(t *testing.T) {
	m := NewMeasuring()
	for _, q := range []Request{
		{Class: ClassP2P, Size: 4 << 10},
		{Class: ClassP2P, Size: 1 << 20},
		{Class: ClassOneSided, Size: 1 << 20},
	} {
		if got, want := m.Decide(q), adaptiveRule(q); got != want {
			t.Errorf("Measuring.Decide(%+v) = %+v, want adaptive %+v", q, got, want)
		}
	}
}

func TestEngineRecordsDecisions(t *testing.T) {
	reg := metrics.NewRegistry()
	e := NewEngine(Adaptive{}, reg)
	e.Decide(Request{Class: ClassGroup, Size: 1 << 20})
	e.Decide(Request{Class: ClassGroup, Size: 1 << 20})
	e.Decide(Request{Class: ClassP2P, Size: 8})
	if v := reg.Counter("policy", "adaptive", "decide_gvmi").Value(); v != 2 {
		t.Fatalf("decide_gvmi = %d, want 2", v)
	}
	if v := reg.Counter("policy", "adaptive", "decide_hostdirect").Value(); v != 1 {
		t.Fatalf("decide_hostdirect = %d, want 1", v)
	}
	if v := reg.Counter("policy", "adaptive", "reason_group-direct").Value(); v != 2 {
		t.Fatalf("reason_group-direct = %d, want 2", v)
	}

	// A nil registry records nothing but still decides.
	e2 := NewEngine(Adaptive{}, nil)
	if d := e2.Decide(Request{Class: ClassOneSided}); d.Path != datapath.KindCrossGVMI {
		t.Fatalf("nil-registry engine decision: %+v", d)
	}
}
