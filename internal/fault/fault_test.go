package fault

import (
	"testing"

	"repro/internal/sim"
)

// A nil injector must behave as "no faults, no draws" everywhere.
func TestNilInjectorSafe(t *testing.T) {
	var in *Injector
	if in.Enabled() {
		t.Fatal("nil injector reports enabled")
	}
	if in.Config() != nil {
		t.Fatal("nil injector has a config")
	}
	if f := in.FateFor(); f != FateDeliver {
		t.Fatalf("nil FateFor = %v, want deliver", f)
	}
	if in.CQError() || in.RegFail() {
		t.Fatal("nil injector injected an error")
	}
	if in.Spike() != 0 {
		t.Fatal("nil injector has a delay spike")
	}
	if got := in.Retry(); got != DefaultRetry() {
		t.Fatalf("nil Retry = %+v, want defaults", got)
	}
	in.Note(0, "x", "y", "z") // must not panic
}

// Zero rates must not consume randomness, so interleaving silent hooks
// cannot perturb the stream used by active ones.
func TestZeroRatesDrawNothing(t *testing.T) {
	cfg := DefaultConfig(7) // all rates zero
	in := NewInjector(cfg)
	for i := 0; i < 100; i++ {
		if in.FateFor() != FateDeliver || in.CQError() || in.RegFail() {
			t.Fatal("zero-rate injector injected a fault")
		}
	}
	if in.Stats != (Stats{}) {
		t.Fatalf("zero-rate injector counted faults: %+v", in.Stats)
	}
	// The stream is untouched: a fresh injector with the same seed draws the
	// same first value for an active hook.
	a := NewInjector(Scaled(7, 0.5))
	b := in
	b.cfg = Scaled(7, 0.5) // reuse the (undrawn) stream with active rates
	for i := 0; i < 200; i++ {
		if a.FateFor() != b.FateFor() {
			t.Fatalf("draw %d diverged after silent hooks", i)
		}
	}
}

// Two injectors with the same seed must produce the same fault sequence.
func TestDeterministicDraws(t *testing.T) {
	a := NewInjector(Scaled(42, 0.3))
	b := NewInjector(Scaled(42, 0.3))
	for i := 0; i < 1000; i++ {
		if a.FateFor() != b.FateFor() {
			t.Fatalf("FateFor diverged at draw %d", i)
		}
		if a.CQError() != b.CQError() {
			t.Fatalf("CQError diverged at draw %d", i)
		}
		if a.RegFail() != b.RegFail() {
			t.Fatalf("RegFail diverged at draw %d", i)
		}
	}
	if a.Stats != b.Stats {
		t.Fatalf("stats diverged: %+v vs %+v", a.Stats, b.Stats)
	}
	if a.Stats.Drops == 0 || a.Stats.Corrupts == 0 || a.Stats.Delays == 0 {
		t.Fatalf("rate 0.3 over 1000 draws injected nothing: %+v", a.Stats)
	}
}

// Scaled splits the aggregate rate 1/2 drop, 1/4 corrupt, 1/4 delay, 1/4 CQE.
func TestScaledSplit(t *testing.T) {
	c := Scaled(1, 0.02)
	if c.DropRate != 0.01 || c.CorruptRate != 0.005 || c.DelayRate != 0.005 || c.CQErrorRate != 0.005 {
		t.Fatalf("Scaled(0.02) = %+v", c)
	}
	if c.RegFailRate != 0 {
		t.Fatal("Scaled sets RegFailRate")
	}
}

// Delay doubles per attempt and caps at BackoffMax.
func TestRetryBackoff(t *testing.T) {
	rc := RetryConfig{MaxAttempts: 8, Backoff: 2 * sim.Microsecond, BackoffMax: 16 * sim.Microsecond}
	want := []sim.Time{
		2 * sim.Microsecond, 4 * sim.Microsecond, 8 * sim.Microsecond,
		16 * sim.Microsecond, 16 * sim.Microsecond, 16 * sim.Microsecond,
	}
	for i, w := range want {
		if got := rc.Delay(i + 1); got != w {
			t.Fatalf("Delay(%d) = %v, want %v", i+1, got, w)
		}
	}
	// Zero fields fall back to sane values.
	var zero RetryConfig
	if zero.Delay(1) <= 0 {
		t.Fatal("zero-config Delay not positive")
	}
	cfg := &Config{}
	if got := cfg.RetryOrDefault(); got != DefaultRetry() {
		t.Fatalf("RetryOrDefault on zero config = %+v", got)
	}
}

func TestFateString(t *testing.T) {
	for f, s := range map[Fate]string{
		FateDeliver: "deliver", FateDrop: "drop", FateCorrupt: "corrupt", FateDelay: "delay",
	} {
		if f.String() != s {
			t.Fatalf("%d.String() = %q, want %q", f, f.String(), s)
		}
	}
}
