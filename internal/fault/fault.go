// Package fault is the deterministic fault-injection subsystem of the
// simulated cluster. A fault plan (Config) is attached to cluster.Config;
// from it the cluster builds one seeded Injector that every layer consults:
//
//   - fabric: per-message drop / corruption / delay-spike fates
//     (Fabric.TransferFated);
//   - verbs: completion-queue entries with error status and failed memory
//     registrations, plus the retransmission machinery that tolerates both
//     verbs- and fabric-level faults (per-op retry with exponential
//     backoff, terminal error after RetryConfig.MaxAttempts);
//   - core: proxy-process crashes and restarts at scheduled virtual times
//     (Config.Crashes), detected by hosts through lost heartbeats and
//     tolerated by host-progressed fallback.
//
// Everything is deterministic: all randomness comes from one math/rand
// stream seeded with Config.Seed, drawn in discrete-event order, and no
// draw consumes virtual time. A nil *Injector (the default when
// cluster.Config.Fault is nil) disables every hook at zero cost — all
// methods are nil-safe, mirroring trace.Log.
package fault

import (
	"math/rand"

	"repro/internal/sim"
	"repro/internal/trace"
)

// Fate is the injected outcome of one fabric message.
type Fate int

// Message fates.
const (
	// FateDeliver: the message arrives normally.
	FateDeliver Fate = iota
	// FateDrop: the message is lost after consuming the sender's injection
	// overhead and serialization; it never occupies the receiver.
	FateDrop
	// FateCorrupt: the message occupies both endpoints but fails the
	// receiver's ICRC check and is discarded without delivery.
	FateCorrupt
	// FateDelay: the message is delivered after an extra DelaySpike
	// (switch-buffering / congestion excursion).
	FateDelay
)

// String implements fmt.Stringer.
func (f Fate) String() string {
	switch f {
	case FateDrop:
		return "drop"
	case FateCorrupt:
		return "corrupt"
	case FateDelay:
		return "delay"
	}
	return "deliver"
}

// RetryConfig tunes the verbs-level retransmission machinery.
type RetryConfig struct {
	// MaxAttempts is the total number of tries (first post included) before
	// an operation completes with a terminal error.
	MaxAttempts int
	// Backoff is the delay before the first retransmission; each further
	// attempt doubles it (exponential backoff).
	Backoff sim.Time
	// BackoffMax caps the exponential growth.
	BackoffMax sim.Time
}

// DefaultRetry mirrors an IB transport-timer configuration: 8 attempts,
// 2us initial timeout, capped at 64us.
func DefaultRetry() RetryConfig {
	return RetryConfig{
		MaxAttempts: 8,
		Backoff:     2 * sim.Microsecond,
		BackoffMax:  64 * sim.Microsecond,
	}
}

// Delay returns the backoff before retransmitting after `attempt` failed
// tries (attempt >= 1).
func (rc RetryConfig) Delay(attempt int) sim.Time {
	d := rc.Backoff
	if d <= 0 {
		d = sim.Microsecond
	}
	for i := 1; i < attempt; i++ {
		d *= 2
		if rc.BackoffMax > 0 && d >= rc.BackoffMax {
			return rc.BackoffMax
		}
	}
	if rc.BackoffMax > 0 && d > rc.BackoffMax {
		d = rc.BackoffMax
	}
	return d
}

// Crash schedules one proxy-process failure.
type Crash struct {
	Proxy int      // global proxy index (core.Framework numbering)
	At    sim.Time // virtual time of the crash
	// RestartAfter, when positive, restarts the proxy (with empty state)
	// this long after the crash. Zero = the proxy stays down.
	RestartAfter sim.Time
}

// Config is a fault plan. The zero value injects nothing but still
// exercises every hook (useful for zero-overhead verification); nil
// disables the subsystem entirely.
type Config struct {
	// Seed initializes the single deterministic random stream.
	Seed int64

	// Per-message fabric fault probabilities (independent; at most one fate
	// is applied per message, drop taking precedence over corruption over
	// delay).
	DropRate    float64
	CorruptRate float64
	DelayRate   float64
	// DelaySpike is the extra latency of a FateDelay message.
	DelaySpike sim.Time

	// CQErrorRate is the probability that a posted work request completes
	// with an error CQE before reaching the wire (local protection / WQE
	// faults); the NIC-level retry machinery re-posts it.
	CQErrorRate float64
	// RegFailRate is the probability that an ibv_reg_mr call fails and must
	// be retried (pinning pressure); each failed try still pays the full
	// registration cost.
	RegFailRate float64

	// Crashes schedules proxy-process failures at virtual times.
	Crashes []Crash
	// HeartbeatPeriod is how often a live proxy refreshes its liveness
	// counter in host memory (modelled as a zero-wire-cost 8-byte RDMA
	// write, the same mechanism as the completion counters).
	HeartbeatPeriod sim.Time
	// HeartbeatTimeout is how long a host waits without a heartbeat before
	// declaring its proxy dead and failing over.
	HeartbeatTimeout sim.Time

	// Retry tunes the verbs retransmission machinery; zero fields fall back
	// to DefaultRetry.
	Retry RetryConfig
}

// DefaultConfig returns a plan with every rate at zero and sane recovery
// parameters — attach it and raise individual rates for chaos runs.
func DefaultConfig(seed int64) *Config {
	return &Config{
		Seed:             seed,
		DelaySpike:       20 * sim.Microsecond,
		HeartbeatPeriod:  5 * sim.Microsecond,
		HeartbeatTimeout: 20 * sim.Microsecond,
		Retry:            DefaultRetry(),
	}
}

// Scaled returns the canonical chaos-sweep plan for an aggregate fault rate
// r: half the budget goes to drops, a quarter to corruption, a quarter to
// delay spikes, and r/4 to error CQEs (offloadbench chaos uses this
// mapping for its degradation tables).
func Scaled(seed int64, r float64) *Config {
	c := DefaultConfig(seed)
	c.DropRate = r / 2
	c.CorruptRate = r / 4
	c.DelayRate = r / 4
	c.CQErrorRate = r / 4
	return c
}

// RetryOrDefault returns the plan's retry configuration with defaults
// applied to zero fields.
func (c *Config) RetryOrDefault() RetryConfig {
	rc := c.Retry
	def := DefaultRetry()
	if rc.MaxAttempts <= 0 {
		rc.MaxAttempts = def.MaxAttempts
	}
	if rc.Backoff <= 0 {
		rc.Backoff = def.Backoff
	}
	if rc.BackoffMax <= 0 {
		rc.BackoffMax = def.BackoffMax
	}
	return rc
}

// Stats counts injected faults and recovery actions.
type Stats struct {
	Drops    int64 // messages lost on the wire
	Corrupts int64 // messages discarded by the receiver's ICRC check
	Delays   int64 // messages hit by a delay spike
	CQErrors int64 // work requests completed with an error CQE
	RegFails int64 // failed registration attempts

	Retries   int64 // retransmissions scheduled by the verbs layer
	Exhausted int64 // operations that ran out of retry attempts
	Crashes   int64 // proxy processes killed
	Restarts  int64 // proxy processes restarted
}

// Injector is the runtime side of a fault plan. All methods are nil-safe;
// a nil injector never injects and never draws randomness.
type Injector struct {
	cfg *Config
	rng *rand.Rand

	// Stats accumulates injected-fault counters (single-threaded DES: plain
	// fields are race-free).
	Stats Stats

	// TraceFn, when set, resolves the trace log fault events are recorded
	// to. It is a late-binding closure because cluster.Cluster.Trace is
	// typically attached after construction.
	TraceFn func() *trace.Log
}

// NewInjector builds the injector for one plan.
func NewInjector(cfg *Config) *Injector {
	return &Injector{cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed))}
}

// Enabled reports whether fault injection is active; nil-safe.
func (in *Injector) Enabled() bool { return in != nil }

// Config returns the plan; nil-safe (nil injector has no plan).
func (in *Injector) Config() *Config {
	if in == nil {
		return nil
	}
	return in.cfg
}

// FateFor draws the fate of one fabric message and counts it.
func (in *Injector) FateFor() Fate {
	if in == nil {
		return FateDeliver
	}
	c := in.cfg
	total := c.DropRate + c.CorruptRate + c.DelayRate
	if total <= 0 {
		return FateDeliver
	}
	u := in.rng.Float64()
	switch {
	case u < c.DropRate:
		in.Stats.Drops++
		return FateDrop
	case u < c.DropRate+c.CorruptRate:
		in.Stats.Corrupts++
		return FateCorrupt
	case u < total:
		in.Stats.Delays++
		return FateDelay
	}
	return FateDeliver
}

// CQError draws whether a posted work request fails with an error CQE.
func (in *Injector) CQError() bool {
	if in == nil || in.cfg.CQErrorRate <= 0 {
		return false
	}
	if in.rng.Float64() < in.cfg.CQErrorRate {
		in.Stats.CQErrors++
		return true
	}
	return false
}

// RegFail draws whether a registration attempt fails.
func (in *Injector) RegFail() bool {
	if in == nil || in.cfg.RegFailRate <= 0 {
		return false
	}
	if in.rng.Float64() < in.cfg.RegFailRate {
		in.Stats.RegFails++
		return true
	}
	return false
}

// Spike returns the delay-spike magnitude.
func (in *Injector) Spike() sim.Time {
	if in == nil {
		return 0
	}
	return in.cfg.DelaySpike
}

// Retry returns the effective retry configuration.
func (in *Injector) Retry() RetryConfig {
	if in == nil {
		return DefaultRetry()
	}
	return in.cfg.RetryOrDefault()
}

// Note records a fault/recovery event in the attached trace log; nil-safe
// and free when no log is attached.
func (in *Injector) Note(at sim.Time, entity, action, detail string) {
	if in == nil || in.TraceFn == nil {
		return
	}
	in.TraceFn().Add(at, entity, action, detail)
}
