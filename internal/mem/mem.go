// Package mem models per-process address spaces for the simulated cluster.
//
// Every simulated process owns a Space from which it allocates Buffers.
// Buffers may be payload-backed (carrying real bytes, so RDMA operations
// physically copy data and correctness can be verified end to end) or
// size-only (for large-scale figure runs where only virtual-time costs
// matter). Remote writes into a Space signal a condition variable so that
// processes polling memory locations (completion counters, barrier counters)
// wake deterministically.
package mem

import (
	"fmt"
	"sort"

	"repro/internal/sim"
)

// Addr is a virtual address within a Space.
type Addr uint64

// Space is one process's address space.
type Space struct {
	name string
	next Addr
	bufs []*Buffer // sorted by addr

	// WriteCond is broadcast whenever remote data lands in this space
	// (RDMA write completion on the target side). Pollers of counters in
	// this space wait on it.
	WriteCond sim.Cond
}

// NewSpace returns an empty address space. Allocation starts at a nonzero
// base so that Addr(0) is never valid.
func NewSpace(name string) *Space {
	return &Space{name: name, next: 0x1000}
}

// Name returns the space's diagnostic name.
func (s *Space) Name() string { return s.name }

// Buffer is a contiguous allocation in a Space.
type Buffer struct {
	space *Space
	addr  Addr
	size  int
	data  []byte // nil for size-only buffers
}

const allocAlign = 64

// Alloc reserves size bytes and, if backed is true, attaches real storage.
func (s *Space) Alloc(size int, backed bool) *Buffer {
	if size < 0 {
		panic("mem: negative allocation")
	}
	b := &Buffer{space: s, addr: s.next, size: size}
	if backed {
		b.data = make([]byte, size)
	}
	step := Addr(size)
	step = (step + allocAlign - 1) &^ Addr(allocAlign-1)
	if step == 0 {
		step = allocAlign
	}
	s.next += step
	s.bufs = append(s.bufs, b)
	return b
}

// Space returns the owning address space.
func (b *Buffer) Space() *Space { return b.space }

// Addr returns the buffer's base address.
func (b *Buffer) Addr() Addr { return b.addr }

// Size returns the buffer's length in bytes.
func (b *Buffer) Size() int { return b.size }

// Backed reports whether the buffer carries real payload bytes.
func (b *Buffer) Backed() bool { return b.data != nil }

// Bytes returns the underlying storage, or nil for size-only buffers.
func (b *Buffer) Bytes() []byte { return b.data }

// Slice returns the backed bytes in [off, off+n). It panics if the range is
// out of bounds or the buffer is size-only.
func (b *Buffer) Slice(off, n int) []byte {
	if b.data == nil {
		panic("mem: Slice on size-only buffer")
	}
	if off < 0 || n < 0 || off+n > b.size {
		panic(fmt.Sprintf("mem: slice [%d,%d) out of buffer size %d", off, off+n, b.size))
	}
	return b.data[off : off+n]
}

// Lookup finds the buffer containing [addr, addr+size) and the offset of
// addr within it. It returns nil if no single allocation covers the range.
func (s *Space) Lookup(addr Addr, size int) (*Buffer, int) {
	i := sort.Search(len(s.bufs), func(i int) bool { return s.bufs[i].addr > addr })
	if i == 0 {
		return nil, 0
	}
	b := s.bufs[i-1]
	off := int(addr - b.addr)
	if off+size > b.size {
		return nil, 0
	}
	return b, off
}

// WriteAt copies src into the space at addr, if the covering buffer is
// payload-backed; size-only targets record nothing. It then signals
// WriteCond. n is the declared length (used when src is nil for size-only
// transfers).
func (s *Space) WriteAt(addr Addr, src []byte, n int) {
	if b, off := s.Lookup(addr, n); b != nil && b.data != nil && src != nil {
		copy(b.data[off:off+n], src)
	}
	s.WriteCond.Broadcast()
}

// ReadAt returns the payload bytes at [addr, addr+n), or nil if the covering
// buffer is size-only or the range is unmapped.
func (s *Space) ReadAt(addr Addr, n int) []byte {
	b, off := s.Lookup(addr, n)
	if b == nil || b.data == nil {
		return nil
	}
	return b.data[off : off+n]
}

// Counter is an 8-byte in-memory cell written remotely (completion flags,
// barrier counters). It lives in a Space so writes wake pollers via
// WriteCond, but it is manipulated directly as an int64 for convenience.
type Counter struct {
	space *Space
	buf   *Buffer
	val   int64
}

// NewCounter allocates a zeroed counter in s.
func NewCounter(s *Space) *Counter {
	return &Counter{space: s, buf: s.Alloc(8, false)}
}

// Addr returns the counter's address (exchanged like any buffer address).
func (c *Counter) Addr() Addr { return c.buf.addr }

// Value returns the current value.
func (c *Counter) Value() int64 { return c.val }

// Set stores v and wakes pollers of the owning space.
func (c *Counter) Set(v int64) {
	c.val = v
	c.space.WriteCond.Broadcast()
}

// Add increments by delta and wakes pollers.
func (c *Counter) Add(delta int64) { c.Set(c.val + delta) }

// AwaitAtLeast blocks p until the counter value is >= want.
func (c *Counter) AwaitAtLeast(p *sim.Proc, want int64) {
	for c.val < want {
		c.space.WriteCond.Wait(p)
	}
}
