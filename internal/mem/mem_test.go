package mem

import (
	"bytes"
	"testing"
	"testing/quick"

	"repro/internal/sim"
)

func TestAllocAddressesDisjoint(t *testing.T) {
	s := NewSpace("p0")
	a := s.Alloc(100, true)
	b := s.Alloc(50, true)
	if a.Addr() == 0 || b.Addr() == 0 {
		t.Fatal("zero address allocated")
	}
	if b.Addr() < a.Addr()+Addr(a.Size()) {
		t.Fatalf("overlapping allocations: a=[%d,%d) b=%d", a.Addr(), a.Addr()+Addr(a.Size()), b.Addr())
	}
}

func TestLookupFindsContainingBuffer(t *testing.T) {
	s := NewSpace("p0")
	s.Alloc(64, false)
	b := s.Alloc(256, true)
	s.Alloc(64, false)

	got, off := s.Lookup(b.Addr()+32, 100)
	if got != b || off != 32 {
		t.Fatalf("Lookup = (%v, %d), want (b, 32)", got, off)
	}
	if got, _ := s.Lookup(b.Addr()+200, 100); got != nil {
		t.Fatal("Lookup out-of-range succeeded")
	}
	if got, _ := s.Lookup(0, 8); got != nil {
		t.Fatal("Lookup at address 0 succeeded")
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	s := NewSpace("p0")
	b := s.Alloc(128, true)
	payload := []byte("the quick brown fox")
	s.WriteAt(b.Addr()+10, payload, len(payload))
	got := s.ReadAt(b.Addr()+10, len(payload))
	if !bytes.Equal(got, payload) {
		t.Fatalf("ReadAt = %q, want %q", got, payload)
	}
}

func TestSizeOnlyBufferDropsPayload(t *testing.T) {
	s := NewSpace("p0")
	b := s.Alloc(128, false)
	s.WriteAt(b.Addr(), []byte("data"), 4)
	if got := s.ReadAt(b.Addr(), 4); got != nil {
		t.Fatalf("ReadAt on size-only buffer = %v, want nil", got)
	}
	if b.Backed() {
		t.Fatal("size-only buffer reports Backed")
	}
}

func TestSlicePanicsOutOfRange(t *testing.T) {
	s := NewSpace("p0")
	b := s.Alloc(16, true)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	b.Slice(10, 10)
}

func TestWriteWakesPoller(t *testing.T) {
	k := sim.NewKernel()
	s := NewSpace("p0")
	c := NewCounter(s)
	var sawAt sim.Time
	k.Spawn("poller", func(p *sim.Proc) {
		c.AwaitAtLeast(p, 3)
		sawAt = p.Now()
	})
	k.Spawn("writer", func(p *sim.Proc) {
		for i := 0; i < 3; i++ {
			p.Sleep(100)
			c.Add(1)
		}
	})
	k.Run()
	if len(k.Deadlocked) != 0 {
		t.Fatal("poller deadlocked")
	}
	if sawAt != 300 {
		t.Fatalf("poller released at %v, want 300", sawAt)
	}
}

func TestCounterSetAndValue(t *testing.T) {
	s := NewSpace("p0")
	c := NewCounter(s)
	if c.Value() != 0 {
		t.Fatal("counter not zeroed")
	}
	c.Set(7)
	c.Add(-2)
	if c.Value() != 5 {
		t.Fatalf("Value = %d, want 5", c.Value())
	}
	if c.Addr() == 0 {
		t.Fatal("counter has zero address")
	}
}

// Property: any sequence of writes at random offsets within a backed buffer
// reads back exactly, and never affects neighbouring allocations.
func TestPropertyWriteIsolation(t *testing.T) {
	f := func(off uint8, val []byte) bool {
		s := NewSpace("p")
		guard1 := s.Alloc(64, true)
		b := s.Alloc(256+256, true)
		guard2 := s.Alloc(64, true)
		for i := range guard1.Bytes() {
			guard1.Bytes()[i] = 0xAA
			guard2.Bytes()[i] = 0xBB
		}
		if len(val) > 256 {
			val = val[:256]
		}
		s.WriteAt(b.Addr()+Addr(off), val, len(val))
		if !bytes.Equal(s.ReadAt(b.Addr()+Addr(off), len(val)), val) {
			return false
		}
		for _, g := range guard1.Bytes() {
			if g != 0xAA {
				return false
			}
		}
		for _, g := range guard2.Bytes() {
			if g != 0xBB {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestAwaitAtLeastImmediate(t *testing.T) {
	k := sim.NewKernel()
	s := NewSpace("p")
	c := NewCounter(s)
	c.Set(5)
	var woke sim.Time
	k.Spawn("poller", func(p *sim.Proc) {
		c.AwaitAtLeast(p, 3) // already satisfied: must not block
		woke = p.Now()
	})
	k.Run()
	if woke != 0 {
		t.Fatalf("AwaitAtLeast blocked until %v despite satisfied predicate", woke)
	}
}

func TestLookupExactBoundaries(t *testing.T) {
	s := NewSpace("p")
	b := s.Alloc(128, false)
	if got, off := s.Lookup(b.Addr(), 128); got != b || off != 0 {
		t.Fatal("full-range lookup failed")
	}
	if got, _ := s.Lookup(b.Addr()+127, 1); got != b {
		t.Fatal("last-byte lookup failed")
	}
	if got, _ := s.Lookup(b.Addr()+128, 1); got != nil {
		t.Fatal("one-past-end lookup succeeded")
	}
}
