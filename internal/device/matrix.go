package device

import (
	"fmt"
	"io"
	"text/tabwriter"

	"repro/internal/fabric"
)

// WriteMatrix renders the registered profiles and their capability matrix
// as an aligned table — the output of `-device list` / `-fleet help`.
func WriteMatrix(w io.Writer) {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "PROFILE\tARM\tSPEED\tHOST PORT\tNIC PORT\tCROSS-GVMI\tDSA\tDSA PORT\tSTAGING\tPROXIES")
	for _, name := range Names() {
		p := registry[name]
		dsa, dsaPort := "-", "-"
		if p.HasDSA {
			dsa = "yes"
			dsaPort = portString(p.DSAPort)
		}
		xgvmi := "yes"
		if !p.CrossGVMI {
			xgvmi = "-"
		}
		fmt.Fprintf(tw, "%s\t%dc\t%.2fx\t%s\t%s\t%s\t%s\t%s\t%.1fGB/s\t%d\n",
			p.Name, p.ARMCores, p.ARMSpeed,
			portString(p.HostPort), portString(p.DPUPort),
			xgvmi, dsa, dsaPort, p.StagingGBps, p.ProxiesPerDPU)
	}
	tw.Flush()
	fmt.Fprintln(w)
	fmt.Fprintln(w, "Ports are overhead/bandwidth (per-message posting cost, line rate).")
	fmt.Fprintln(w, "Profiles without cross-GVMI fall back to the staged path (or the DSA")
	fmt.Fprintln(w, "engine when present). -fleet assigns profiles per node: \"bf2:2,bf3:2\".")
}

func portString(p fabric.Params) string {
	return fmt.Sprintf("%v/%.1fGB/s", p.Overhead, p.GBps)
}
