package device

import (
	"reflect"
	"strings"
	"testing"
)

func TestLookupKnownProfiles(t *testing.T) {
	for _, name := range Names() {
		p, err := Lookup(name)
		if err != nil {
			t.Fatalf("Lookup(%q): %v", name, err)
		}
		if p.Name != name {
			t.Errorf("Lookup(%q).Name = %q", name, p.Name)
		}
		if p.ARMCores <= 0 || p.ARMSpeed <= 0 || p.ProxiesPerDPU <= 0 || p.StagingGBps <= 0 {
			t.Errorf("%s has degenerate resources: %+v", name, p)
		}
		if p.HostPort.Overhead <= 0 || p.DPUPort.Overhead <= 0 {
			t.Errorf("%s has degenerate ports: %+v", name, p)
		}
		if p.HasDSA && p.DSAPort.Overhead <= 0 {
			t.Errorf("%s claims a DSA engine with a degenerate port", name)
		}
		if MustLookup(name) != p {
			t.Errorf("MustLookup(%q) disagrees with Lookup", name)
		}
	}
	if _, err := Lookup("bf9"); err == nil {
		t.Fatal("Lookup of an unknown profile succeeded")
	}
	if !sortedStrings(Names()) {
		t.Fatalf("Names() not sorted: %v", Names())
	}
}

func sortedStrings(ss []string) bool {
	for i := 1; i < len(ss); i++ {
		if ss[i-1] >= ss[i] {
			return false
		}
	}
	return true
}

func TestBaselineIsBF2(t *testing.T) {
	if BaselineName != "bf2" {
		t.Fatalf("baseline = %q, want bf2", BaselineName)
	}
	if Baseline() != MustLookup("bf2") {
		t.Fatal("Baseline() is not the bf2 profile")
	}
}

func TestGenericIsFullCapsAndUnnamed(t *testing.T) {
	g := Generic(MustLookup("bf2").HostPort, MustLookup("bf2").DPUPort)
	if g.Name != "" {
		t.Fatalf("generic profile is named %q; legacy configs must stay label-free", g.Name)
	}
	if !g.CrossGVMI {
		t.Fatal("generic profile lacks cross-GVMI; legacy datapaths would degrade")
	}
	if g.HasDSA {
		t.Fatal("generic profile claims a DSA engine the legacy simulator never had")
	}
}

func TestMergeIsWeakestCommonCapabilitySet(t *testing.T) {
	bf2, bf3 := MustLookup("bf2"), MustLookup("bf3")
	ipu := MustLookup("ipu-e2100")
	dsa := MustLookup("dsa-offpath")

	m := Merge([]Profile{bf2, bf3})
	if !m.CrossGVMI || m.HasDSA {
		t.Fatalf("bf2+bf3 merge = gvmi:%v dsa:%v, want gvmi-only", m.CrossGVMI, m.HasDSA)
	}
	m = Merge([]Profile{bf2, ipu})
	if m.CrossGVMI {
		t.Fatal("merge with a non-GVMI part kept cross-GVMI")
	}
	m = Merge([]Profile{dsa, dsa})
	if !m.HasDSA || m.CrossGVMI {
		t.Fatalf("dsa-only merge = gvmi:%v dsa:%v, want dsa-only", m.CrossGVMI, m.HasDSA)
	}
	m = Merge([]Profile{bf2, dsa})
	if m.CrossGVMI || m.HasDSA {
		t.Fatal("bf2+dsa merge kept a capability only one part has")
	}
	if Merge(nil) != Baseline() {
		t.Fatal("empty merge is not the baseline profile")
	}
	// Merging one profile is the identity on capabilities and is labelled
	// as a fleet summary, not as the part itself.
	m = Merge([]Profile{bf3})
	if !m.CrossGVMI || m.HasDSA || m.Name != "fleet" {
		t.Fatalf("single-profile merge = %+v, want bf3 caps named \"fleet\"", m)
	}
}

func TestExpandFleetGrammar(t *testing.T) {
	ok := []struct {
		spec  string
		nodes int
		want  []string
	}{
		{"bf2", 3, []string{"bf2", "bf2", "bf2"}},
		{"bf2:2,bf3:2", 4, []string{"bf2", "bf2", "bf3", "bf3"}},
		{"bf3:1,bf2:1,bf3:1", 3, []string{"bf3", "bf2", "bf3"}},
		{" bf2:2 , bf3:2 ", 4, []string{"bf2", "bf2", "bf3", "bf3"}},
	}
	for _, c := range ok {
		got, err := ExpandFleet(c.spec, c.nodes)
		if err != nil {
			t.Fatalf("ExpandFleet(%q, %d): %v", c.spec, c.nodes, err)
		}
		if !reflect.DeepEqual(got, c.want) {
			t.Fatalf("ExpandFleet(%q, %d) = %v, want %v", c.spec, c.nodes, got, c.want)
		}
	}
	bad := []struct {
		spec  string
		nodes int
	}{
		{"", 2},             // empty spec
		{"bf2:1", 2},        // counts under the node count
		{"bf2:3", 2},        // counts over the node count
		{"bf2:2,bf3:1", 4},  // sum mismatch
		{"bf9:2", 2},        // unknown profile
		{"bf2:0,bf3:2", 2},  // zero count
		{"bf2:-1,bf3:3", 2}, // negative count
		{"bf2:x", 2},        // malformed count
	}
	for _, c := range bad {
		if _, err := ExpandFleet(c.spec, c.nodes); err == nil {
			t.Errorf("ExpandFleet(%q, %d) accepted a bad spec", c.spec, c.nodes)
		}
	}
}

func TestWriteMatrixListsEveryProfile(t *testing.T) {
	var sb strings.Builder
	WriteMatrix(&sb)
	out := sb.String()
	for _, name := range Names() {
		if !strings.Contains(out, name) {
			t.Errorf("capability matrix missing %q:\n%s", name, out)
		}
	}
	if !strings.Contains(out, "CROSS-GVMI") || !strings.Contains(out, "DSA") {
		t.Errorf("capability matrix missing capability columns:\n%s", out)
	}
}
