package device

import (
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// rawPortConstants matches uses of the pre-substrate hard-coded port
// parameter sets. The constants themselves were deleted when the device
// registry absorbed them; this test keeps them from creeping back in as
// package-level copies somewhere else in the tree.
var rawPortConstants = regexp.MustCompile(
	`fabric\.(HostPortParams|DPUPortParams|HostPortParamsNDR|DPUPortParamsBF3)\b`)

// TestNoRawPortConstantsOutsideDevice walks every non-test Go source in
// the repository and fails if any package other than internal/device
// references the legacy fabric port-parameter constants. The device
// registry is the single home for vendor port parameters; everything
// else must go through a Profile.
func TestNoRawPortConstantsOutsideDevice(t *testing.T) {
	root, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(root, "go.mod")); err != nil {
		t.Fatalf("repo root not found at %s: %v", root, err)
	}
	self, err := filepath.Abs(".")
	if err != nil {
		t.Fatal(err)
	}
	err = filepath.Walk(root, func(path string, info os.FileInfo, err error) error {
		if err != nil {
			return err
		}
		if info.IsDir() {
			if info.Name() == ".git" {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
			return nil
		}
		if strings.HasPrefix(path, self+string(filepath.Separator)) {
			return nil // internal/device documents the old names in comments
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		for i, line := range strings.Split(string(data), "\n") {
			if rawPortConstants.MatchString(line) {
				t.Errorf("%s:%d references a legacy port constant: %s",
					path, i+1, strings.TrimSpace(line))
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
